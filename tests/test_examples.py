"""Smoke tests: every example script must run to completion.

Examples are documentation; a broken example is a broken promise.  Each
script is executed in a subprocess with a generous timeout and must exit
cleanly and print something.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("script", SCRIPTS, ids=lambda p: p.name)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=420,
        cwd=str(EXAMPLES_DIR.parent),
    )
    assert result.returncode == 0, f"{script.name} failed:\n{result.stderr[-2000:]}"
    assert result.stdout.strip(), f"{script.name} produced no output"


def test_all_examples_discovered():
    names = {s.name for s in SCRIPTS}
    assert "quickstart.py" in names
    assert len(names) >= 3  # the deliverable floor; we ship more
