"""Unit tests for uncertainty propagation."""

import numpy as np
import pytest

from repro.core import propagate_uncertainty, tornado_sensitivity
from repro.distributions import Lognormal, Uniform
from repro.exceptions import ModelDefinitionError


class TestPropagation:
    def test_identity_recovers_prior_mean(self, rng):
        result = propagate_uncertainty(
            lambda p: p["x"], {"x": Uniform(0.0, 2.0)}, n_samples=2000, rng=rng
        )
        assert result.mean() == pytest.approx(1.0, abs=0.03)

    def test_square_of_uniform(self, rng):
        result = propagate_uncertainty(
            lambda p: p["x"] ** 2, {"x": Uniform(0.0, 1.0)}, n_samples=4000, rng=rng
        )
        assert result.mean() == pytest.approx(1.0 / 3.0, abs=0.01)

    def test_lhs_lower_variance_than_mc(self):
        # For a monotone output, LHS stratification beats plain MC.
        def run(method, seed):
            return propagate_uncertainty(
                lambda p: p["x"],
                {"x": Uniform(0.0, 1.0)},
                n_samples=100,
                rng=np.random.default_rng(seed),
                method=method,
            ).mean()

        lhs_err = np.std([run("lhs", s) - 0.5 for s in range(30)])
        mc_err = np.std([run("mc", s) - 0.5 for s in range(30)])
        assert lhs_err < mc_err

    def test_interval_contains_mass(self, rng):
        result = propagate_uncertainty(
            lambda p: p["x"], {"x": Uniform(0.0, 1.0)}, n_samples=5000, rng=rng
        )
        low, high = result.interval(0.9)
        assert low == pytest.approx(0.05, abs=0.02)
        assert high == pytest.approx(0.95, abs=0.02)

    def test_mean_ci_shrinks_with_samples(self):
        def width(n, seed=0):
            result = propagate_uncertainty(
                lambda p: p["x"],
                {"x": Uniform(0.0, 1.0)},
                n_samples=n,
                rng=np.random.default_rng(seed),
                method="mc",
            )
            low, high = result.mean_ci()
            return high - low

        assert width(6400) < width(100) / 4

    def test_multi_parameter(self, rng):
        result = propagate_uncertainty(
            lambda p: p["x"] + p["y"],
            {"x": Uniform(0.0, 1.0), "y": Uniform(0.0, 3.0)},
            n_samples=4000,
            rng=rng,
        )
        assert result.mean() == pytest.approx(2.0, abs=0.05)

    def test_parameter_samples_recorded(self, rng):
        result = propagate_uncertainty(
            lambda p: p["x"], {"x": Uniform(0.0, 1.0)}, n_samples=50, rng=rng
        )
        assert result.parameter_samples["x"].shape == (50,)
        assert result.n_samples == 50

    def test_invalid_inputs(self, rng):
        with pytest.raises(ModelDefinitionError):
            propagate_uncertainty(lambda p: 0.0, {}, rng=rng)
        with pytest.raises(ModelDefinitionError):
            propagate_uncertainty(lambda p: 0.0, {"x": Uniform(0, 1)}, n_samples=1, rng=rng)
        with pytest.raises(ModelDefinitionError):
            propagate_uncertainty(
                lambda p: 0.0, {"x": Uniform(0, 1)}, method="bogus", rng=rng
            )

    def test_availability_model_integration(self, rng):
        # Epistemic lognormal around a failure rate: availability spread.
        from repro.nonstate import Component, ReliabilityBlockDiagram, series

        def evaluate(params):
            comp = Component.from_rates("c", params["lam"], 1.0)
            return ReliabilityBlockDiagram(series(comp)).steady_state_availability()

        prior = Lognormal.from_mean_cv(mean=0.01, cv=0.5)
        result = propagate_uncertainty(evaluate, {"lam": prior}, n_samples=500, rng=rng)
        assert 0.98 < result.mean() < 1.0
        low, high = result.interval(0.95)
        assert low < result.mean() < high


class TestPercentileTypes:
    def test_scalar_q_returns_float(self, rng):
        result = propagate_uncertainty(
            lambda p: p["x"], {"x": Uniform(0.0, 1.0)}, n_samples=100, rng=rng
        )
        value = result.percentile(50)
        assert type(value) is float
        assert 0.0 < value < 1.0

    def test_sequence_q_returns_array(self, rng):
        result = propagate_uncertainty(
            lambda p: p["x"], {"x": Uniform(0.0, 1.0)}, n_samples=100, rng=rng
        )
        values = result.percentile([5, 50, 95])
        assert isinstance(values, np.ndarray)
        assert values.shape == (3,)
        assert values[0] < values[1] < values[2]


class TestTornado:
    def test_dominant_parameter_ranked_first(self):
        rows = tornado_sensitivity(
            lambda p: p["x"] + 10 * p["y"],
            {"x": Uniform(0.0, 1.0), "y": Uniform(0.0, 1.0)},
        )
        assert rows[0][0] == "y"
        assert abs(rows[0][2] - rows[0][1]) > abs(rows[1][2] - rows[1][1])

    def test_swing_quantiles(self):
        rows = tornado_sensitivity(
            lambda p: p["x"], {"x": Uniform(0.0, 1.0)}, low_q=0.1, high_q=0.9
        )
        name, low, high = rows[0]
        assert low == pytest.approx(0.1)
        assert high == pytest.approx(0.9)

    def test_empty_priors_rejected(self):
        with pytest.raises(ModelDefinitionError):
            tornado_sensitivity(lambda p: 0.0, {})

    def test_call_count_bounded_by_2k(self):
        # Regression (engine memoization): tornado on k parameters makes
        # at most 2k unique evaluator calls.
        calls = []

        def evaluate(p):
            calls.append(dict(p))
            return p["x"] + p["y"] + p["z"]

        priors = {
            "x": Uniform(0.0, 1.0),
            "y": Uniform(0.0, 2.0),
            "z": Uniform(0.0, 4.0),
        }
        tornado_sensitivity(evaluate, priors)
        assert len(calls) <= 2 * len(priors)

    def test_degenerate_prior_deduplicated(self):
        # A point-mass prior has low == median == high, so its two swing
        # assignments coincide and must be evaluated once, not twice.
        from repro.distributions import Deterministic

        calls = []

        def evaluate(p):
            calls.append(dict(p))
            return p["x"] + p["d"]

        rows = tornado_sensitivity(
            evaluate, {"x": Uniform(0.0, 1.0), "d": Deterministic(3.0)}
        )
        assert len(calls) == 3  # 2 for x, 1 (deduplicated) for d
        d_row = next(row for row in rows if row[0] == "d")
        assert d_row[1] == d_row[2]

    def test_shared_cache_across_analyses(self):
        # A caller-supplied cache carries evaluations across calls: the
        # second identical tornado run costs zero evaluator calls.
        from repro.engine import EvaluationCache

        calls = []

        def evaluate(p):
            calls.append(1)
            return p["x"] ** 2

        cache = EvaluationCache()
        priors = {"x": Uniform(0.5, 1.5)}
        first = tornado_sensitivity(evaluate, priors, cache=cache)
        count_after_first = len(calls)
        second = tornado_sensitivity(evaluate, priors, cache=cache)
        assert len(calls) == count_after_first
        assert first == second
