"""Unit tests for parametric sensitivity analysis."""

import math

import pytest

from repro.core import parametric_sensitivity, rank_parameters
from repro.exceptions import ModelDefinitionError


class TestDerivatives:
    def test_linear_function(self):
        rows = parametric_sensitivity(lambda p: 3 * p["a"] - 2 * p["b"], {"a": 1.0, "b": 1.0})
        assert rows["a"].derivative == pytest.approx(3.0, rel=1e-6)
        assert rows["b"].derivative == pytest.approx(-2.0, rel=1e-6)

    def test_product_function(self):
        rows = parametric_sensitivity(lambda p: p["a"] * p["b"], {"a": 2.0, "b": 5.0})
        assert rows["a"].derivative == pytest.approx(5.0, rel=1e-6)
        assert rows["b"].derivative == pytest.approx(2.0, rel=1e-6)

    def test_elasticity_of_power_law(self):
        # y = x^3: elasticity = 3 everywhere.
        rows = parametric_sensitivity(lambda p: p["x"] ** 3, {"x": 7.0})
        assert rows["x"].elasticity == pytest.approx(3.0, rel=1e-5)

    def test_zero_parameter_uses_absolute_step(self):
        rows = parametric_sensitivity(lambda p: 2 * p["x"] + 1, {"x": 0.0})
        assert rows["x"].derivative == pytest.approx(2.0, rel=1e-6)
        assert math.isnan(rows["x"].elasticity)

    def test_empty_params_rejected(self):
        with pytest.raises(ModelDefinitionError):
            parametric_sensitivity(lambda p: 0.0, {})

    def test_bad_step_rejected(self):
        with pytest.raises(ModelDefinitionError):
            parametric_sensitivity(lambda p: p["x"], {"x": 1.0}, rel_step=0.0)


class TestRanking:
    def test_elasticity_ranking(self):
        rows = rank_parameters(
            lambda p: p["a"] ** 2 * p["b"], {"a": 1.0, "b": 1.0}
        )
        assert rows[0].name == "a"  # elasticity 2 vs 1

    def test_derivative_ranking(self):
        rows = rank_parameters(
            lambda p: 100 * p["a"] + p["b"], {"a": 0.001, "b": 1.0}, by="derivative"
        )
        assert rows[0].name == "a"

    def test_unknown_key_rejected(self):
        with pytest.raises(ModelDefinitionError):
            rank_parameters(lambda p: p["a"], {"a": 1.0}, by="bogus")

    def test_availability_bottleneck_identified(self):
        # Series system: the worse component dominates elasticity.
        from repro.nonstate import Component, ReliabilityBlockDiagram, series

        def evaluate(params):
            a = Component.from_rates("a", params["lam_a"], 1.0)
            b = Component.from_rates("b", params["lam_b"], 1.0)
            return ReliabilityBlockDiagram(series(a, b)).steady_state_unavailability()

        rows = rank_parameters(evaluate, {"lam_a": 0.01, "lam_b": 0.0001})
        assert rows[0].name == "lam_a"


class TestEngineRouting:
    def test_call_count_is_base_plus_2k(self):
        # Regression: k parameters cost exactly 1 + 2k evaluator calls
        # (nominal point once, up/down per parameter), never more.
        calls = []

        def evaluate(p):
            calls.append(dict(p))
            return p["a"] * 2 + p["b"]

        parametric_sensitivity(evaluate, {"a": 1.0, "b": 2.0})
        assert len(calls) == 1 + 2 * 2

    def test_shared_cache_skips_repeated_nominal_point(self):
        # Two analyses at the same nominal point share the base solve
        # (and every perturbed point) through a caller-supplied cache.
        from repro.engine import EvaluationCache

        calls = []

        def evaluate(p):
            calls.append(1)
            return p["a"] ** 2

        cache = EvaluationCache()
        first = parametric_sensitivity(evaluate, {"a": 1.5}, cache=cache)
        count = len(calls)
        second = parametric_sensitivity(evaluate, {"a": 1.5}, cache=cache)
        assert len(calls) == count
        assert first == second
        assert cache.hits >= 3

    def test_results_unchanged_by_executor(self):
        rows = parametric_sensitivity(
            lambda p: p["a"] * 10 + p["b"], {"a": 1.0, "b": 2.0}
        )
        threaded = parametric_sensitivity(
            lambda p: p["a"] * 10 + p["b"], {"a": 1.0, "b": 2.0}, executor="thread"
        )
        assert rows == threaded
