"""Unit tests for hierarchical model composition."""

import pytest

from repro.core import (
    HierarchicalModel,
    Submodel,
    export_availability,
    export_equivalent_failure_rate,
    export_mttf,
    export_unavailability,
)
from repro.exceptions import HierarchyError
from repro.markov import CTMC, MarkovDependabilityModel
from repro.nonstate import Component, ReliabilityBlockDiagram, series


def leaf_builder(lam=1.0, mu=9.0):
    def build(_params):
        chain = CTMC()
        chain.add_transition("up", "down", lam)
        chain.add_transition("down", "up", mu)
        return MarkovDependabilityModel(chain, ["up"], initial="up")

    return build


class TestAcyclic:
    def test_two_level_availability(self):
        h = HierarchicalModel()
        h.add_submodel(Submodel("leaf", leaf_builder(), exports={"a": export_availability}))

        def build_top(imports):
            return ReliabilityBlockDiagram(
                series(Component.fixed("leaf", 1.0 - imports["leaf_a"]))
            )

        h.add_submodel(
            Submodel("top", build_top, imports={"leaf_a": ("leaf", "a")},
                     exports={"a": export_availability})
        )
        solution = h.solve()
        assert solution.value("top", "a") == pytest.approx(0.9)
        assert solution.iterations == 1

    def test_three_level_chain(self):
        h = HierarchicalModel()
        h.add_submodel(Submodel("l1", leaf_builder(1.0, 9.0), exports={"a": export_availability}))
        h.add_submodel(
            Submodel(
                "l2",
                lambda imp: ReliabilityBlockDiagram(
                    series(Component.fixed("x", 1.0 - imp["a1"]))
                ),
                imports={"a1": ("l1", "a")},
                exports={"a": export_availability},
            )
        )
        h.add_submodel(
            Submodel(
                "l3",
                lambda imp: ReliabilityBlockDiagram(
                    series(Component.fixed("y", 1.0 - imp["a2"]),
                           Component.fixed("z", 0.01))
                ),
                imports={"a2": ("l2", "a")},
                exports={"a": export_availability},
            )
        )
        solution = h.solve()
        assert solution.value("l3", "a") == pytest.approx(0.9 * 0.99)

    def test_exported_mttf_and_rate(self):
        h = HierarchicalModel()
        h.add_submodel(
            Submodel(
                "leaf",
                leaf_builder(0.5, 9.0),
                exports={
                    "mttf": export_mttf,
                    "rate": export_equivalent_failure_rate,
                    "u": export_unavailability,
                },
            )
        )
        solution = h.solve()
        assert solution.value("leaf", "mttf") == pytest.approx(2.0)
        assert solution.value("leaf", "rate") == pytest.approx(0.5)
        assert solution.value("leaf", "u") == pytest.approx(0.5 / 9.5)

    def test_model_accessor(self):
        h = HierarchicalModel()
        h.add_submodel(Submodel("leaf", leaf_builder(), exports={"a": export_availability}))
        solution = h.solve()
        assert solution.model("leaf").steady_state_availability() == pytest.approx(0.9)

    def test_is_acyclic(self):
        h = HierarchicalModel()
        h.add_submodel(Submodel("leaf", leaf_builder(), exports={"a": export_availability}))
        assert h.is_acyclic()


class TestValidation:
    def test_duplicate_name_rejected(self):
        h = HierarchicalModel()
        h.add_submodel(Submodel("x", leaf_builder()))
        with pytest.raises(HierarchyError):
            h.add_submodel(Submodel("x", leaf_builder()))

    def test_unknown_import_source_rejected(self):
        h = HierarchicalModel()
        h.add_submodel(
            Submodel("top", leaf_builder(), imports={"p": ("ghost", "a")})
        )
        with pytest.raises(HierarchyError):
            h.solve()

    def test_unknown_export_rejected(self):
        h = HierarchicalModel()
        h.add_submodel(Submodel("leaf", leaf_builder(), exports={"a": export_availability}))
        h.add_submodel(Submodel("top", leaf_builder(), imports={"p": ("leaf", "zzz")}))
        with pytest.raises(HierarchyError):
            h.solve()

    def test_unknown_value_access_rejected(self):
        h = HierarchicalModel()
        h.add_submodel(Submodel("leaf", leaf_builder(), exports={"a": export_availability}))
        solution = h.solve()
        with pytest.raises(HierarchyError):
            solution.value("leaf", "nope")
        with pytest.raises(HierarchyError):
            solution.model("ghost")


class TestCyclic:
    def build_cycle(self, k1=0.01, k2=0.02):
        """Two RBDs whose failure probabilities scale with each other's
        availability — an artificial contraction with a known fixed point."""
        h = HierarchicalModel()
        h.add_submodel(
            Submodel(
                "A",
                lambda imp: ReliabilityBlockDiagram(
                    Component.fixed("a", k1 * imp.get("b_avail", 1.0))
                ),
                imports={"b_avail": ("B", "avail")},
                exports={"avail": export_availability},
            )
        )
        h.add_submodel(
            Submodel(
                "B",
                lambda imp: ReliabilityBlockDiagram(
                    Component.fixed("b", k2 * imp.get("a_avail", 1.0))
                ),
                imports={"a_avail": ("A", "avail")},
                exports={"avail": export_availability},
            )
        )
        return h

    def test_cycle_detected(self):
        assert not self.build_cycle().is_acyclic()

    def test_fixed_point_satisfies_equations(self):
        k1, k2 = 0.01, 0.02
        h = self.build_cycle(k1, k2)
        solution = h.solve()
        a = solution.value("A", "avail")
        b = solution.value("B", "avail")
        assert a == pytest.approx(1.0 - k1 * b, abs=1e-8)
        assert b == pytest.approx(1.0 - k2 * a, abs=1e-8)
        assert solution.iterations > 1

    def test_damping_also_converges(self):
        h = self.build_cycle()
        solution = h.solve(damping=0.5)
        a = solution.value("A", "avail")
        assert a == pytest.approx(1.0 - 0.01 * solution.value("B", "avail"), abs=1e-6)

    def test_initial_guess_respected(self):
        h = self.build_cycle()
        solution = h.solve(initial_guesses={("A", "avail"): 0.5, ("B", "avail"): 0.5})
        assert solution.value("A", "avail") == pytest.approx(
            1.0 - 0.01 * solution.value("B", "avail"), abs=1e-8
        )
