"""Unit tests for the fixed-point solver."""

import math

import pytest

from repro.core import FixedPointSolver
from repro.exceptions import ConvergenceError, HierarchyError


class TestConvergence:
    def test_linear_contraction(self):
        solver = FixedPointSolver(lambda x: {"v": 0.5 * x["v"] + 1.0}, {"v": 0.0})
        result = solver.solve()
        assert result.values["v"] == pytest.approx(2.0, abs=1e-9)
        assert result.converged

    def test_geometric_rate_estimate(self):
        solver = FixedPointSolver(lambda x: {"v": 0.5 * x["v"] + 1.0}, {"v": 0.0}, tol=1e-12)
        result = solver.solve()
        assert result.convergence_rate() == pytest.approx(0.5, abs=0.01)

    def test_multivariate(self):
        def update(x):
            return {"a": 0.3 * x["b"] + 0.1, "b": 0.2 * x["a"] + 0.5}

        result = FixedPointSolver(update, {"a": 0.0, "b": 0.0}).solve()
        # a = 0.3b + 0.1, b = 0.2a + 0.5 → a = 0.26596, b = 0.55319
        assert result.values["a"] == pytest.approx(0.25 / 0.94, abs=1e-8)
        assert result.values["b"] == pytest.approx(0.52 / 0.94, abs=1e-8)

    def test_nonlinear_babylonian_sqrt(self):
        update = lambda x: {"v": 0.5 * (x["v"] + 2.0 / x["v"])}
        result = FixedPointSolver(update, {"v": 1.0}).solve()
        assert result.values["v"] == pytest.approx(math.sqrt(2.0))

    def test_residual_history_decreases(self):
        solver = FixedPointSolver(lambda x: {"v": 0.5 * x["v"]}, {"v": 1.0}, tol=1e-10)
        result = solver.solve()
        assert all(b <= a * 0.6 for a, b in zip(result.residuals, result.residuals[1:]))

    def test_damping_stabilizes_oscillation(self):
        # x <- -x + 2 oscillates undamped; damping 0.5 converges to 1.
        update = lambda x: {"v": -x["v"] + 2.0}
        undamped = FixedPointSolver(update, {"v": 0.0}, max_iterations=50, raise_on_failure=False)
        assert not undamped.solve().converged
        damped = FixedPointSolver(update, {"v": 0.0}, damping=0.5)
        assert damped.solve().values["v"] == pytest.approx(1.0, abs=1e-8)

    def test_already_converged(self):
        result = FixedPointSolver(lambda x: dict(x), {"v": 1.0}).solve()
        assert result.iterations == 1


class TestFailureModes:
    def test_budget_exhaustion_raises(self):
        solver = FixedPointSolver(
            lambda x: {"v": x["v"] + 1.0}, {"v": 0.0}, max_iterations=10
        )
        with pytest.raises(ConvergenceError) as err:
            solver.solve()
        assert err.value.iterations == 10

    def test_no_raise_mode(self):
        solver = FixedPointSolver(
            lambda x: {"v": x["v"] + 1.0}, {"v": 0.0}, max_iterations=5,
            raise_on_failure=False,
        )
        result = solver.solve()
        assert not result.converged
        assert result.iterations == 5

    def test_changed_variable_set_rejected(self):
        solver = FixedPointSolver(lambda x: {"other": 1.0}, {"v": 0.0})
        with pytest.raises(HierarchyError):
            solver.solve()

    def test_empty_initial_rejected(self):
        with pytest.raises(HierarchyError):
            FixedPointSolver(lambda x: x, {})

    @pytest.mark.parametrize("bad", [-0.1, 1.0, 1.5])
    def test_bad_damping_rejected(self, bad):
        with pytest.raises(HierarchyError):
            FixedPointSolver(lambda x: x, {"v": 0.0}, damping=bad)

    def test_bad_tol_rejected(self):
        with pytest.raises(HierarchyError):
            FixedPointSolver(lambda x: x, {"v": 0.0}, tol=0.0)

    def test_rate_nan_with_few_residuals(self):
        result = FixedPointSolver(lambda x: dict(x), {"v": 1.0}).solve()
        assert math.isnan(result.convergence_rate())
