"""Unit tests for the DependabilityModel protocol and helpers."""

import math

import numpy as np
import pytest

from repro.core import DependabilityModel, mttf_from_reliability
from repro.exceptions import SolverError


class ExponentialSystem(DependabilityModel):
    """Minimal concrete model: exponential lifetime, constant availability."""

    def __init__(self, rate=2.0, avail=0.99):
        self.rate = rate
        self.avail = avail

    def reliability(self, t):
        return np.exp(-self.rate * np.asarray(t, dtype=float))

    def availability(self, t):
        t = np.asarray(t, dtype=float)
        return np.full_like(t, self.avail)

    def steady_state_availability(self):
        return self.avail


class TestDefaults:
    def test_unreliability_complements(self):
        m = ExponentialSystem()
        assert m.unreliability(0.5) == pytest.approx(1 - math.exp(-1.0))

    def test_default_mttf_integrates_reliability(self):
        m = ExponentialSystem(rate=2.0)
        assert m.mttf() == pytest.approx(0.5, rel=1e-8)

    def test_steady_state_unavailability(self):
        assert ExponentialSystem(avail=0.99).steady_state_unavailability() == pytest.approx(0.01)

    def test_interval_availability_of_constant(self):
        m = ExponentialSystem(avail=0.97)
        assert m.interval_availability(10.0) == pytest.approx(0.97)

    def test_interval_availability_requires_positive_t(self):
        with pytest.raises(SolverError):
            ExponentialSystem().interval_availability(0.0)

    def test_downtime_minutes_per_year(self):
        m = ExponentialSystem(avail=0.999)
        assert m.downtime_minutes_per_year() == pytest.approx(0.001 * 525_600)

    def test_nines(self):
        assert ExponentialSystem(avail=0.999).nines() == pytest.approx(3.0)
        assert math.isinf(ExponentialSystem(avail=1.0).nines())

    def test_unimplemented_measures_raise(self):
        class Empty(DependabilityModel):
            pass

        with pytest.raises(NotImplementedError):
            Empty().reliability(1.0)
        with pytest.raises(NotImplementedError):
            Empty().availability(1.0)
        with pytest.raises(NotImplementedError):
            Empty().steady_state_availability()


class TestMTTFHelper:
    def test_truncated_integral(self):
        mttf = mttf_from_reliability(lambda t: math.exp(-t), upper=50.0)
        assert mttf == pytest.approx(1.0, rel=1e-6)

    def test_improper_integral(self):
        mttf = mttf_from_reliability(lambda t: math.exp(-3.0 * t))
        assert mttf == pytest.approx(1 / 3, rel=1e-8)
