"""Unit tests for practitioner measures and budget helpers."""

import math

import pytest

from repro.core import (
    availability_from_downtime,
    availability_from_nines,
    defects_per_million,
    downtime_minutes_per_year,
    meets_slo,
    nines_from_availability,
    series_availability_budget,
)
from repro.exceptions import ModelDefinitionError


class TestConversions:
    @pytest.mark.parametrize("nines,avail", [(1, 0.9), (3, 0.999), (5, 0.99999)])
    def test_nines_roundtrip(self, nines, avail):
        assert availability_from_nines(nines) == pytest.approx(avail)
        assert nines_from_availability(avail) == pytest.approx(nines)

    def test_perfect_availability_infinite_nines(self):
        assert math.isinf(nines_from_availability(1.0))

    def test_downtime_conversion(self):
        assert downtime_minutes_per_year(0.999) == pytest.approx(525.6)
        assert availability_from_downtime(525.6) == pytest.approx(0.999)

    def test_five_nines_is_five_minutes(self):
        # the famous rule of thumb: five nines ~= 5.26 min/yr
        assert downtime_minutes_per_year(0.99999) == pytest.approx(5.256)

    def test_dpm(self):
        assert defects_per_million(0.999999) == pytest.approx(1.0)

    @pytest.mark.parametrize("bad", [-0.1, 1.1])
    def test_range_validation(self, bad):
        with pytest.raises(ModelDefinitionError):
            nines_from_availability(bad)
        with pytest.raises(ModelDefinitionError):
            downtime_minutes_per_year(bad)
        with pytest.raises(ModelDefinitionError):
            defects_per_million(bad)


class TestBudget:
    def test_series_product(self):
        total, _rows = series_availability_budget({"a": 0.999, "b": 0.9999})
        assert total == pytest.approx(0.999 * 0.9999)

    def test_shares_sum_to_one(self):
        _total, rows = series_availability_budget(
            {"a": 0.999, "b": 0.9999, "c": 0.99999}
        )
        assert sum(row.share for row in rows.values()) == pytest.approx(1.0)

    def test_worst_subsystem_has_largest_share(self):
        _total, rows = series_availability_budget({"good": 0.99999, "bad": 0.999})
        assert rows["bad"].share > rows["good"].share

    def test_single_subsystem_full_share(self):
        _total, rows = series_availability_budget({"only": 0.999})
        assert rows["only"].share == pytest.approx(1.0)

    def test_downtime_recorded(self):
        _total, rows = series_availability_budget({"a": 0.999})
        assert rows["a"].downtime_minutes == pytest.approx(525.6)

    def test_empty_rejected(self):
        with pytest.raises(ModelDefinitionError):
            series_availability_budget({})

    def test_zero_availability_rejected(self):
        with pytest.raises(ModelDefinitionError):
            series_availability_budget({"a": 0.0})


class TestSLO:
    def test_meets(self):
        assert meets_slo(0.9995, 3.0)
        assert not meets_slo(0.998, 3.0)

    def test_boundary(self):
        assert meets_slo(0.999, 3.0)
