"""tools/lint_repro.py — the project-specific AST lint rules."""

import importlib.util
import textwrap
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent.parent

spec = importlib.util.spec_from_file_location(
    "lint_repro", REPO_ROOT / "tools" / "lint_repro.py"
)
lint_repro = importlib.util.module_from_spec(spec)
spec.loader.exec_module(lint_repro)


def lint_source(tmp_path, source, name="mod.py"):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source))
    return lint_repro.lint_file(path)


def codes(findings):
    return [code for _path, _line, code, _msg in findings]


class TestR001DeprecatedStrategy:
    def test_flags_strategy_kwarg(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            from repro.markov.fallback import solve_steady_state
            report = solve_steady_state(q, strategy="gth")
            """,
        )
        assert codes(findings) == ["R001"]
        assert "method=" in findings[0][3]

    def test_flags_attribute_calls(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            import repro.markov.fallback as fb
            fb.steady_state_report(q, strategy="auto")
            """,
        )
        assert codes(findings) == ["R001"]

    def test_method_kwarg_is_fine(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            solve_steady_state(q, method="gth")
            other_function(strategy="whatever")
            """,
        )
        assert findings == []


class TestR002MutableDefaults:
    @pytest.mark.parametrize(
        "default", ["[]", "{}", "{1}", "list()", "dict()", "set()", "deque()"]
    )
    def test_flags_mutable_defaults(self, tmp_path, default):
        findings = lint_source(tmp_path, f"def f(x, y={default}):\n    pass\n")
        assert codes(findings) == ["R002"]
        assert "'y'" in findings[0][3]

    def test_kwonly_and_posonly_defaults(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            def f(a=1, /, b=2, *, c=[]):
                pass
            """,
        )
        assert codes(findings) == ["R002"]
        assert "'c'" in findings[0][3]

    def test_immutable_defaults_are_fine(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            def f(a=1, b=(), c=None, d="x", e=frozenset()):
                pass
            """,
        )
        assert findings == []


class TestR004AllNames:
    def test_flags_unbound_name(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            __all__ = ["present", "missing"]
            def present():
                pass
            """,
        )
        assert codes(findings) == ["R004"]
        assert "'missing'" in findings[0][3]

    def test_conditional_bindings_count(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            __all__ = ["fast", "Slow"]
            try:
                from _accel import fast
            except ImportError:
                def fast():
                    pass
            if True:
                class Slow:
                    pass
            """,
        )
        assert findings == []

    def test_pep562_lazy_module_exempt(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            __all__ = ["lazy_thing"]
            def __getattr__(name):
                raise AttributeError(name)
            """,
        )
        assert findings == []


class TestNoqaWaiver:
    def test_noqa_suppresses_matching_rule(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            solve_steady_state(q, strategy="gth")  # noqa: R001 (bit-identity)
            """,
        )
        assert findings == []

    def test_noqa_for_other_rule_does_not_suppress(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            solve_steady_state(q, strategy="gth")  # noqa: R002
            """,
        )
        assert codes(findings) == ["R001"]


class TestR003LazyNamespace:
    def _init(self, tmp_path, body):
        pkg = tmp_path / "repro"
        pkg.mkdir()
        path = pkg / "__init__.py"
        path.write_text(textwrap.dedent(body))
        return path

    def test_consistent_namespace_is_clean(self, tmp_path):
        path = self._init(
            tmp_path,
            """
            from typing import TYPE_CHECKING
            _EXPORTS = {"CTMC": "repro.markov"}
            if TYPE_CHECKING:
                from .markov import CTMC
            __all__ = ["CTMC", "__version__"]
            """,
        )
        assert lint_repro.check_lazy_namespace(path) == []

    def test_drift_is_flagged_in_all_three_directions(self, tmp_path):
        path = self._init(
            tmp_path,
            """
            from typing import TYPE_CHECKING
            _EXPORTS = {"CTMC": "repro.markov", "DTMC": "repro.markov"}
            if TYPE_CHECKING:
                from .markov import CTMC, SMP
            __all__ = ["CTMC", "Ghost"]
            """,
        )
        messages = [m for _p, _l, _c, m in lint_repro.check_lazy_namespace(path)]
        assert any("'DTMC' missing from __all__" in m for m in messages)
        assert any("'Ghost' with no export entry" in m for m in messages)
        assert any("'DTMC' missing from the TYPE_CHECKING" in m for m in messages)
        assert any("'SMP' which has no export entry" in m for m in messages)

    def test_module_exports_counted_and_exempt_from_type_checking(self, tmp_path):
        path = self._init(
            tmp_path,
            """
            from typing import TYPE_CHECKING
            _EXPORTS = {"CTMC": "repro.markov"}
            _MODULE_EXPORTS = {"sparse": "repro.sparse"}
            if TYPE_CHECKING:
                from .markov import CTMC
            __all__ = ["CTMC", "sparse", "__version__"]
            """,
        )
        assert lint_repro.check_lazy_namespace(path) == []

    def test_module_export_missing_from_all_is_flagged(self, tmp_path):
        path = self._init(
            tmp_path,
            """
            from typing import TYPE_CHECKING
            _EXPORTS = {"CTMC": "repro.markov"}
            _MODULE_EXPORTS = {"sparse": "repro.sparse"}
            if TYPE_CHECKING:
                from .markov import CTMC
            __all__ = ["CTMC", "__version__"]
            """,
        )
        messages = [m for *_rest, m in lint_repro.check_lazy_namespace(path)]
        assert any("'sparse' missing from __all__" in m for m in messages)

    def test_name_in_both_tables_is_flagged(self, tmp_path):
        path = self._init(
            tmp_path,
            """
            from typing import TYPE_CHECKING
            _EXPORTS = {"sparse": "repro.sparse.ctmc"}
            _MODULE_EXPORTS = {"sparse": "repro.sparse"}
            if TYPE_CHECKING:
                from .sparse.ctmc import sparse
            __all__ = ["sparse", "__version__"]
            """,
        )
        messages = [m for *_rest, m in lint_repro.check_lazy_namespace(path)]
        assert any("both _EXPORTS and _MODULE_EXPORTS" in m for m in messages)

    def test_missing_exports_table(self, tmp_path):
        path = self._init(tmp_path, "__all__ = []\n")
        findings = lint_repro.check_lazy_namespace(path)
        assert codes(findings) == ["R003"]


class TestRealTree:
    def test_shipping_tree_is_clean(self):
        findings = lint_repro.lint_paths(
            [REPO_ROOT / p for p in lint_repro.DEFAULT_PATHS]
        )
        assert findings == []

    def test_main_returns_zero_on_clean_tree(self, capsys):
        assert lint_repro.main([]) == 0
        assert "clean" in capsys.readouterr().out

    def test_main_returns_one_on_findings(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("def f(x=[]):\n    pass\n")
        assert lint_repro.main([str(bad)]) == 1
        out = capsys.readouterr().out
        assert "R002" in out and "1 finding(s)" in out


class TestR006StoreSqlite:
    """R006 is path-sensitive: it polices ``src/repro/store`` only."""

    def lint_at(self, tmp_path, relpath, source):
        path = tmp_path / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
        return lint_repro.lint_file(path)

    def test_flags_connect_call_in_store_module(self, tmp_path):
        findings = self.lint_at(
            tmp_path,
            "src/repro/store/helper.py",
            """
            import sqlite3
            conn = sqlite3.connect("file.sqlite")
            """,
        )
        assert codes(findings) == ["R006"]
        assert "StoreDB serializer" in findings[0][3]

    def test_flags_from_import_connect(self, tmp_path):
        findings = self.lint_at(
            tmp_path,
            "src/repro/store/other.py",
            """
            from sqlite3 import connect
            """,
        )
        assert codes(findings) == ["R006"]

    def test_db_py_is_the_permitted_home(self, tmp_path):
        findings = self.lint_at(
            tmp_path,
            "src/repro/store/db.py",
            """
            import sqlite3
            conn = sqlite3.connect("file.sqlite")
            """,
        )
        assert findings == []

    def test_outside_the_store_package_is_ignored(self, tmp_path):
        findings = self.lint_at(
            tmp_path,
            "src/repro/engine/whatever.py",
            """
            import sqlite3
            conn = sqlite3.connect("file.sqlite")
            """,
        )
        assert findings == []


class TestR007SparseDensification:
    """R007 is path-sensitive: it polices ``src/repro/sparse`` only."""

    def lint_at(self, tmp_path, relpath, source):
        path = tmp_path / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
        return lint_repro.lint_file(path)

    def test_flags_toarray_and_todense(self, tmp_path):
        findings = self.lint_at(
            tmp_path,
            "src/repro/sparse/bad.py",
            """
            dense = q.toarray()
            also = q.todense()
            """,
        )
        assert codes(findings) == ["R007", "R007"]
        assert "densifies" in findings[0][3]

    def test_flags_dense_2d_allocation(self, tmp_path):
        findings = self.lint_at(
            tmp_path,
            "src/repro/sparse/alloc.py",
            """
            import numpy as np
            big = np.zeros((n, n))
            """,
        )
        assert codes(findings) == ["R007"]
        assert "O(nnz)" in findings[0][3]

    def test_1d_vectors_allowed(self, tmp_path):
        findings = self.lint_at(
            tmp_path,
            "src/repro/sparse/ok.py",
            """
            import numpy as np
            vec = np.zeros(n)
            out = np.empty(m)
            """,
        )
        assert findings == []

    def test_other_packages_not_policed(self, tmp_path):
        findings = self.lint_at(
            tmp_path,
            "src/repro/markov/dense_ok.py",
            """
            dense = q.toarray()
            """,
        )
        assert findings == []

    def test_noqa_waives_the_result_matrix(self, tmp_path):
        findings = self.lint_at(
            tmp_path,
            "src/repro/sparse/out.py",
            """
            import numpy as np
            out = np.empty((n_times, n))  # noqa: R007
            """,
        )
        assert findings == []


class TestR008LockDiscipline:
    """R008 polices ``repro/serve``, ``repro/store``, and ``repro/obs``."""

    INSTANCE_VIOLATION = """
        import threading

        class Registry:
            def __init__(self):
                self._lock = threading.Lock()
                self._models = {}
                self._count = 0

            def register(self, name, model):
                self._models[name] = model

            def guarded(self, name, model):
                with self._lock:
                    self._models[name] = model
                    self._count += 1
        """

    MODULE_VIOLATION = """
        import threading

        _LOCK = threading.Lock()
        _CACHE = {}

        def put(key, value):
            _CACHE[key] = value

        def put_guarded(key, value):
            with _LOCK:
                _CACHE[key] = value
        """

    def lint_at(self, tmp_path, relpath, source):
        path = tmp_path / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
        return lint_repro.lint_file(path)

    def test_seeded_instance_violation(self, tmp_path):
        findings = self.lint_at(
            tmp_path, "src/repro/serve/registry.py", self.INSTANCE_VIOLATION
        )
        assert codes(findings) == ["R008"]
        assert "Registry.register" in findings[0][3]
        assert "with self." in findings[0][3]

    def test_seeded_module_violation(self, tmp_path):
        findings = self.lint_at(
            tmp_path, "src/repro/store/cache.py", self.MODULE_VIOLATION
        )
        assert codes(findings) == ["R008"]
        assert "module-level" in findings[0][3]
        assert "put()" in findings[0][3]

    def test_obs_package_is_policed_too(self, tmp_path):
        findings = self.lint_at(
            tmp_path, "src/repro/obs/metrics.py", self.MODULE_VIOLATION
        )
        assert codes(findings) == ["R008"]

    def test_mutator_method_calls_flagged(self, tmp_path):
        findings = self.lint_at(
            tmp_path,
            "src/repro/serve/batcher.py",
            """
            import threading

            class Batcher:
                def __init__(self):
                    self._cv = threading.Condition()
                    self._queue = []

                def submit(self, item):
                    self._queue.append(item)
            """,
        )
        assert codes(findings) == ["R008"]
        assert "mutator call" in findings[0][3] or "append" in findings[0][3]

    def test_init_and_locked_suffix_methods_exempt(self, tmp_path):
        findings = self.lint_at(
            tmp_path,
            "src/repro/serve/app.py",
            """
            import threading

            class App:
                def __init__(self):
                    self._lock = threading.RLock()
                    self._handlers = {}
                    self._handlers["boot"] = None

                def _install_locked(self, name, fn):
                    self._handlers[name] = fn
            """,
        )
        assert findings == []

    def test_outside_the_policed_packages_is_ignored(self, tmp_path):
        findings = self.lint_at(
            tmp_path, "src/repro/sparse/state.py", self.INSTANCE_VIOLATION
        )
        assert findings == []

    def test_lockless_class_is_ignored(self, tmp_path):
        findings = self.lint_at(
            tmp_path,
            "src/repro/serve/plain.py",
            """
            class Plain:
                def __init__(self):
                    self._models = {}

                def register(self, name, model):
                    self._models[name] = model
            """,
        )
        assert findings == []

    def test_noqa_waives_a_deliberate_unlocked_write(self, tmp_path):
        findings = self.lint_at(
            tmp_path,
            "src/repro/serve/registry.py",
            """
            import threading

            class Registry:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._models = {}

                def register(self, name, model):
                    self._models[name] = model  # noqa: R008
            """,
        )
        assert findings == []

    def test_shipping_serve_store_obs_are_clean(self):
        for pkg in ("serve", "store", "obs"):
            pkg_dir = REPO_ROOT / "src" / "repro" / pkg
            for path in sorted(pkg_dir.rglob("*.py")):
                r008 = [f for f in lint_repro.lint_file(path) if f[2] == "R008"]
                assert r008 == [], f"{path}: {r008}"
