"""Unit tests for declarative campaign designs."""

import numpy as np
import pytest

from repro.distributions import Uniform
from repro.engine import (
    EvaluationCache,
    GridCampaign,
    SamplingCampaign,
    SwingCampaign,
    run_campaign,
)
from repro.exceptions import ModelDefinitionError


def linear(p):
    return p.get("a", 0.0) + 10.0 * p.get("b", 0.0)


class TestGrid:
    def test_full_factorial(self):
        spec = GridCampaign({"a": [1.0, 2.0], "b": [0.0, 1.0, 2.0]})
        points = spec.assignments()
        assert len(points) == 6
        assert spec.shape == (2, 3)
        # first axis varies slowest (itertools.product order)
        assert points[0] == {"a": 1.0, "b": 0.0}
        assert points[-1] == {"a": 2.0, "b": 2.0}

    def test_validation(self):
        with pytest.raises(ModelDefinitionError):
            GridCampaign({})
        with pytest.raises(ModelDefinitionError):
            GridCampaign({"a": []})

    def test_run(self):
        result = run_campaign(linear, GridCampaign({"a": [1.0, 2.0], "b": [1.0]}))
        assert list(result.outputs) == [11.0, 12.0]
        assert list(result.parameter_values("a")) == [1.0, 2.0]
        with pytest.raises(ModelDefinitionError):
            result.parameter_values("zzz")


class TestSwing:
    PRIORS = {"a": Uniform(0.0, 1.0), "b": Uniform(0.0, 2.0), "c": Uniform(0.0, 4.0)}

    def test_baseline_is_medians(self):
        spec = SwingCampaign(self.PRIORS)
        assert spec.baseline == {"a": 0.5, "b": 1.0, "c": 2.0}

    def test_design_repeats_baseline_per_parameter(self):
        spec = SwingCampaign(self.PRIORS, low_q=0.25, high_q=0.75)
        points = spec.assignments()
        assert len(points) == 9
        assert points.count(spec.baseline) == 3

    def test_cache_collapses_duplicate_baselines(self):
        spec = SwingCampaign(self.PRIORS)
        cache = EvaluationCache()
        result = run_campaign(linear, spec, cache=cache)
        k = len(self.PRIORS)
        assert result.stats.cache_hits == k - 1
        assert result.stats.n_evaluated == 2 * k + 1

    def test_tornado_rows_sorted_by_swing(self):
        spec = SwingCampaign(self.PRIORS)
        result = run_campaign(linear, spec, cache=EvaluationCache())
        rows = spec.tornado_rows(result.outputs)
        assert rows[0][0] == "b"  # weight 10 on b dominates
        swings = [abs(high - low) for _, low, high in rows]
        assert swings == sorted(swings, reverse=True)

    def test_matches_tornado_sensitivity(self):
        from repro.core import tornado_sensitivity

        spec = SwingCampaign(self.PRIORS, include_baseline=False)
        result = run_campaign(linear, spec)
        assert len(result) == 6
        assert spec.tornado_rows(result.outputs) == tornado_sensitivity(linear, self.PRIORS)

    def test_output_length_validated(self):
        spec = SwingCampaign(self.PRIORS)
        with pytest.raises(ModelDefinitionError):
            spec.tornado_rows([1.0, 2.0])

    def test_validation(self):
        with pytest.raises(ModelDefinitionError):
            SwingCampaign({})
        with pytest.raises(ModelDefinitionError):
            SwingCampaign(self.PRIORS, low_q=0.9, high_q=0.1)


class TestSampling:
    def test_matches_propagation_design(self):
        # Same priors + seed + method => exactly the points
        # propagate_uncertainty evaluates.
        from repro.core import propagate_uncertainty

        priors = {"x": Uniform(0.0, 1.0), "y": Uniform(0.0, 2.0)}
        spec = SamplingCampaign(priors, n_samples=50, method="lhs")
        points = spec.assignments(np.random.default_rng(7))
        result = propagate_uncertainty(
            lambda p: p["x"] + p["y"], priors, n_samples=50,
            rng=np.random.default_rng(7), method="lhs",
        )
        outputs = np.asarray([p["x"] + p["y"] for p in points])
        assert np.array_equal(outputs, result.samples)

    def test_mc_design(self):
        spec = SamplingCampaign({"x": Uniform(0.0, 1.0)}, n_samples=10, method="mc")
        points = spec.assignments(np.random.default_rng(0))
        assert len(points) == 10
        assert all(0.0 <= p["x"] <= 1.0 for p in points)

    def test_validation(self):
        with pytest.raises(ModelDefinitionError):
            SamplingCampaign({}, n_samples=10)
        with pytest.raises(ModelDefinitionError):
            SamplingCampaign({"x": Uniform(0, 1)}, n_samples=0)
        with pytest.raises(ModelDefinitionError):
            SamplingCampaign({"x": Uniform(0, 1)}, n_samples=5, method="sobol")


class TestRunCampaign:
    def test_spec_run_shorthand(self):
        spec = GridCampaign({"a": [1.0, 2.0, 3.0]})
        result = spec.run(linear)
        assert list(result.outputs) == [1.0, 2.0, 3.0]
        assert len(result) == 3

    def test_stats_populated(self):
        result = run_campaign(linear, GridCampaign({"a": [1.0] * 1}), cache=None)
        assert result.stats.n_tasks == 1
        assert result.stats.executor == "serial"
        assert result.stats.throughput() > 0
