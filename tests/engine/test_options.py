"""Unit tests for the unified EngineOptions keyword surface."""

import numpy as np
import pytest

from repro.core.sensitivity import parametric_sensitivity
from repro.core.uncertainty import propagate_uncertainty, tornado_sensitivity
from repro.distributions import Uniform
from repro.engine import (
    EngineOptions,
    EvaluationCache,
    ThreadExecutor,
    evaluate_batch,
    resolve_options,
    run_campaign,
    GridCampaign,
)
from repro.exceptions import ModelDefinitionError
from repro.robust import FaultPolicy


def quadratic(assignment):
    return assignment["x"] ** 2


POINTS = [{"x": float(k)} for k in range(6)]


class TestResolveOptions:
    def test_defaults(self):
        opts = resolve_options()
        assert opts == EngineOptions()
        assert opts.n_jobs == 1 and opts.cache is None and opts.tracer is None

    def test_loose_kwargs_override_options_fields(self):
        base = EngineOptions(n_jobs=4, chunk_size=10)
        opts = resolve_options(base, n_jobs=2)
        assert opts.n_jobs == 2
        assert opts.chunk_size == 10  # untouched field survives
        assert base.n_jobs == 4  # original is not mutated

    def test_none_loose_kwargs_do_not_override(self):
        base = EngineOptions(n_jobs=4)
        assert resolve_options(base, n_jobs=None, cache=None) == base

    def test_rejects_wrong_type(self):
        with pytest.raises(ModelDefinitionError, match="EngineOptions"):
            resolve_options({"n_jobs": 2})

    def test_replace_and_merged(self):
        opts = EngineOptions(n_jobs=4)
        assert opts.replace(n_jobs=1).n_jobs == 1
        assert opts.merged(n_jobs=None).n_jobs == 4
        assert opts.merged(n_jobs=8).n_jobs == 8


class TestOptionsThroughEntryPoints:
    def test_evaluate_batch_accepts_options(self):
        cache = EvaluationCache()
        opts = EngineOptions(cache=cache, chunk_size=3)
        result = evaluate_batch(quadratic, POINTS + POINTS, options=opts)
        assert result.stats.cache_hits == len(POINTS)
        np.testing.assert_array_equal(result.outputs[: len(POINTS)], result.outputs[len(POINTS) :])

    def test_loose_kwarg_beats_options_field(self):
        opts = EngineOptions(executor=ThreadExecutor(2))
        result = evaluate_batch(quadratic, POINTS, options=opts, executor="serial")
        assert result.stats.executor == "serial"

    def test_run_campaign_accepts_options(self):
        spec = GridCampaign({"x": [1.0, 2.0, 3.0]})
        result = run_campaign(quadratic, spec, options=EngineOptions(n_jobs=1))
        np.testing.assert_allclose(result.outputs, [1.0, 4.0, 9.0])

    def test_uncertainty_and_sensitivity_accept_options(self):
        priors = {"x": Uniform(0.5, 1.5)}
        opts = EngineOptions(policy=FaultPolicy(on_error="skip"))
        unc = propagate_uncertainty(
            quadratic, priors, n_samples=16, rng=np.random.default_rng(3), options=opts
        )
        assert unc.samples.size == 16
        rows = tornado_sensitivity(quadratic, priors, options=opts)
        assert rows[0][0] == "x"
        sens = parametric_sensitivity(quadratic, {"x": 2.0}, options=opts)
        assert sens["x"].derivative == pytest.approx(4.0, rel=1e-4)

    def test_results_identical_options_vs_loose(self):
        cache_a, cache_b = EvaluationCache(), EvaluationCache()
        via_options = evaluate_batch(
            quadratic, POINTS, options=EngineOptions(cache=cache_a, chunk_size=2)
        )
        via_loose = evaluate_batch(quadratic, POINTS, cache=cache_b, chunk_size=2)
        np.testing.assert_array_equal(via_options.outputs, via_loose.outputs)
