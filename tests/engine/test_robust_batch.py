"""Acceptance tests for fault-tolerant batch evaluation (PR-2 tentpole).

The headline guarantee: a large batch with a few percent of injected
faults completes under ``retry`` (faults recovered) and ``skip`` (faults
reported, partial outputs), and the surviving outputs are bit-identical
across the serial, thread and process executors — the fault set is a
pure function of the assignments, never of scheduling.
"""

import numpy as np
import pytest

from repro.core.uncertainty import propagate_uncertainty
from repro.distributions import Uniform
from repro.engine import (
    EvaluationCache,
    GridCampaign,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    evaluate_batch,
    run_campaign,
)
from repro.exceptions import SolverError
from repro.robust import FaultInjector, FaultPolicy, InjectedFault

N_TASKS = 1000
FAULT_RATE = 0.05
SEED = 11

ASSIGNMENTS = [{"x": float(k), "y": float(k % 7)} for k in range(N_TASKS)]


def polynomial(assignment):
    """Module-level evaluator (picklable for the process pool)."""
    return assignment["x"] ** 2 + 3.0 * assignment["y"]


def transient_faulty():
    """A 5%-fault injector where every fault clears after one retry."""
    return FaultInjector(polynomial, mode="raise", rate=FAULT_RATE, seed=SEED, fail_attempts=1)


def persistent_faulty():
    """A 5%-fault injector whose faults never recover."""
    return FaultInjector(polynomial, mode="raise", rate=FAULT_RATE, seed=SEED, fail_attempts=None)


EXPECTED = np.array([polynomial(a) for a in ASSIGNMENTS])
FAULTY_INDICES = sorted(
    i for i, a in enumerate(ASSIGNMENTS) if transient_faulty().selects(a)
)


def test_the_injected_fault_set_is_nontrivial():
    # ~5% of 1000, and a pure function of the assignments.
    assert 20 <= len(FAULTY_INDICES) <= 90


class TestRetryCompletes:
    @pytest.mark.parametrize(
        "engine_kwargs",
        [
            {},
            {"executor": ThreadExecutor(4), "chunk_size": 16},
            {"n_jobs": 2, "chunk_size": 64},
        ],
        ids=["serial", "thread", "process"],
    )
    def test_retry_recovers_every_transient_fault(self, engine_kwargs):
        policy = FaultPolicy(on_error="retry", max_retries=2)
        batch = evaluate_batch(transient_faulty(), ASSIGNMENTS, policy=policy, **engine_kwargs)
        assert batch.n_failed == 0
        assert batch.stats.n_failed == 0
        assert batch.stats.n_retries >= len(FAULTY_INDICES)
        assert batch.stats.completion_rate() == 1.0
        # Bit-identical to the clean ground truth.
        np.testing.assert_array_equal(batch.outputs, EXPECTED)

    def test_retry_budget_exhausted_becomes_skip(self):
        policy = FaultPolicy(on_error="retry", max_retries=2)
        batch = evaluate_batch(persistent_faulty(), ASSIGNMENTS, policy=policy)
        assert batch.failed_indices == FAULTY_INDICES
        assert all(e.attempts == 3 for e in batch.errors)
        assert np.all(np.isnan(batch.outputs[FAULTY_INDICES]))


class TestSkipReportsAndContinues:
    @pytest.mark.parametrize(
        "engine_kwargs",
        [
            {},
            {"executor": ThreadExecutor(4), "chunk_size": 16},
            {"n_jobs": 2, "chunk_size": 64},
        ],
        ids=["serial", "thread", "process"],
    )
    def test_skip_partial_outputs_bit_identical(self, engine_kwargs):
        policy = FaultPolicy(on_error="skip")
        batch = evaluate_batch(persistent_faulty(), ASSIGNMENTS, policy=policy, **engine_kwargs)
        assert batch.failed_indices == FAULTY_INDICES
        assert all(e.error_type == "InjectedFault" for e in batch.errors)
        # Surviving evaluations are bit-identical to the clean run,
        # regardless of executor, worker count or chunking.
        ok = batch.ok
        assert not any(ok[i] for i in FAULTY_INDICES)
        np.testing.assert_array_equal(batch.outputs[ok], EXPECTED[ok])
        assert np.all(np.isnan(batch.outputs[~ok]))

    def test_no_policy_still_fails_fast(self):
        with pytest.raises(InjectedFault):
            evaluate_batch(persistent_faulty(), ASSIGNMENTS)

    def test_nan_as_failure_policy(self):
        injector = FaultInjector(
            polynomial, mode="nan", rate=FAULT_RATE, seed=SEED, fail_attempts=None
        )
        policy = FaultPolicy(on_error="skip", treat_nan_as_failure=True)
        batch = evaluate_batch(injector, ASSIGNMENTS, policy=policy)
        assert batch.failed_indices == FAULTY_INDICES
        assert all("non-finite" in e.message for e in batch.errors)


class TestBrokenPoolRecovery:
    ASSIGN = [{"x": float(k), "y": 0.0} for k in range(24)]

    def _crashing(self, fail_attempts):
        return FaultInjector(
            polynomial, mode="crash", rate=0.15, seed=2, fail_attempts=fail_attempts
        )

    def test_worker_crash_is_survived_and_counted(self):
        policy = FaultPolicy(on_error="retry", max_retries=1)
        batch = evaluate_batch(
            self._crashing(fail_attempts=1),
            self.ASSIGN,
            executor=ProcessExecutor(2),
            chunk_size=2,
            policy=policy,
        )
        # In the serial re-dispatch the crash downgrades to an exception,
        # which the retry policy then recovers.
        assert batch.stats.pool_recoveries >= 1
        assert batch.n_failed == 0
        expected = np.array([polynomial(a) for a in self.ASSIGN])
        np.testing.assert_array_equal(batch.outputs, expected)

    def test_recovery_disabled_propagates(self):
        policy = FaultPolicy(on_error="retry", max_retries=1, recover_broken_pool=False)
        with pytest.raises(SolverError, match="pool"):
            evaluate_batch(
                self._crashing(fail_attempts=None),
                self.ASSIGN,
                executor=ProcessExecutor(2),
                chunk_size=2,
                policy=policy,
            )


class TestFailuresAndCache:
    def test_failed_evaluations_are_not_cached(self):
        cache = EvaluationCache()
        injector = FaultInjector(polynomial, rate=1.0, seed=0, fail_attempts=1)
        policy_skip = FaultPolicy(on_error="skip")
        first = evaluate_batch(injector, ASSIGNMENTS[:8], cache=cache, policy=policy_skip)
        assert first.n_failed == 8
        assert len(cache) == 0
        # Same cache, second pass: the transient faults have cleared, the
        # points are re-evaluated (not served stale NaNs) and now cached.
        second = evaluate_batch(injector, ASSIGNMENTS[:8], cache=cache, policy=policy_skip)
        assert second.n_failed == 0
        np.testing.assert_array_equal(second.outputs, EXPECTED[:8])
        assert len(cache) == 8

    def test_duplicate_failed_points_share_the_error(self):
        cache = EvaluationCache()
        injector = FaultInjector(polynomial, rate=1.0, seed=0, fail_attempts=None)
        duplicated = [ASSIGNMENTS[0], ASSIGNMENTS[1], dict(ASSIGNMENTS[0])]
        batch = evaluate_batch(
            injector, duplicated, cache=cache, policy=FaultPolicy(on_error="skip")
        )
        assert batch.failed_indices == [0, 1, 2]
        assert np.all(np.isnan(batch.outputs))


class TestPropagationThroughAnalyses:
    def test_uncertainty_statistics_use_surviving_samples(self):
        injector = FaultInjector(polynomial, rate=0.2, seed=5, fail_attempts=None)
        result = propagate_uncertainty(
            injector,
            {"x": Uniform(0.0, 1.0), "y": Uniform(0.0, 1.0)},
            n_samples=200,
            rng=np.random.default_rng(0),
            policy=FaultPolicy(on_error="skip"),
        )
        assert 0 < result.n_failed < 200
        assert result.valid_samples.size == 200 - result.n_failed
        assert np.isfinite(result.mean())
        low, high = result.interval(0.9)
        assert low <= high

    def test_campaign_carries_errors(self):
        injector = FaultInjector(polynomial, rate=0.3, seed=1, fail_attempts=None)
        spec = GridCampaign({"x": [float(k) for k in range(10)], "y": [0.0, 1.0]})
        result = run_campaign(injector, spec, policy=FaultPolicy(on_error="skip"))
        assert result.n_failed == sum(np.isnan(result.outputs))
        assert result.n_failed > 0
        assert result.stats.n_failed == result.n_failed
