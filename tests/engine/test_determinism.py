"""Determinism suite: the engine's core guarantee is that executor
choice and worker count are pure performance decisions — for a given
seed the numbers are bit-identical across Serial/Thread/Process
backends, with and without the cache."""

import numpy as np
import pytest

from repro.core import parametric_sensitivity, propagate_uncertainty, tornado_sensitivity
from repro.distributions import Lognormal, Uniform
from repro.engine import (
    EvaluationCache,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    evaluate_batch,
)
from repro.exceptions import ModelDefinitionError

PRIORS = {
    "lam": Lognormal.from_mean_cv(1e-3, cv=0.5),
    "mu": Lognormal.from_mean_cv(0.25, cv=0.3),
    "c": Uniform(0.9, 1.0),
}


def availability_proxy(p):
    """Module-level, picklable: a cheap availability-shaped evaluator."""
    return p["c"] * p["mu"] / (p["lam"] + p["mu"])


def stochastic_proxy(p, rng):
    """Module-level stochastic evaluator (simulation-style)."""
    return p["c"] + rng.normal(scale=p["mu"])


EXECUTORS = [SerialExecutor(), ThreadExecutor(3), ProcessExecutor(2)]
IDS = ["serial", "thread", "process"]


class TestCrossExecutor:
    @pytest.mark.parametrize("executor", EXECUTORS[1:], ids=IDS[1:])
    def test_propagation_samples_bit_identical(self, executor):
        reference = propagate_uncertainty(
            availability_proxy, PRIORS, n_samples=64, rng=np.random.default_rng(42)
        )
        other = propagate_uncertainty(
            availability_proxy,
            PRIORS,
            n_samples=64,
            rng=np.random.default_rng(42),
            executor=executor,
        )
        assert np.array_equal(reference.samples, other.samples)
        for name in PRIORS:
            assert np.array_equal(
                reference.parameter_samples[name], other.parameter_samples[name]
            )

    @pytest.mark.parametrize("executor", EXECUTORS, ids=IDS)
    def test_rng_spawning_bit_identical(self, executor):
        assignments = [{"c": float(k), "mu": 1.0} for k in range(16)]
        reference = evaluate_batch(
            stochastic_proxy, assignments, rng=np.random.default_rng(5)
        ).outputs
        other = evaluate_batch(
            stochastic_proxy,
            assignments,
            rng=np.random.default_rng(5),
            executor=executor,
            chunk_size=3,
        ).outputs
        assert np.array_equal(reference, other)

    def test_n_jobs_matches_legacy_serial_loop(self):
        # The engine's serial path must reproduce the historical plain
        # for-loop bit for bit.
        rng = np.random.default_rng(2016)
        from repro.core.uncertainty import _draw_parameters

        draws = _draw_parameters(PRIORS, 32, np.random.default_rng(2016), "lhs")
        names = list(PRIORS)
        legacy = np.asarray(
            [
                availability_proxy({n: float(draws[n][k]) for n in names})
                for k in range(32)
            ]
        )
        result = propagate_uncertainty(availability_proxy, PRIORS, n_samples=32, rng=rng)
        assert np.array_equal(legacy, result.samples)


class TestCacheCorrectness:
    def test_cached_uncached_identical_through_propagation(self):
        plain = propagate_uncertainty(
            availability_proxy, PRIORS, n_samples=48, rng=np.random.default_rng(9)
        )
        cached = propagate_uncertainty(
            availability_proxy,
            PRIORS,
            n_samples=48,
            rng=np.random.default_rng(9),
            cache=EvaluationCache(),
        )
        assert np.array_equal(plain.samples, cached.samples)

    def test_sensitivity_paths_cache_invariant(self):
        point = {"lam": 1e-3, "mu": 0.25, "c": 0.95}
        shared = EvaluationCache()
        plain = parametric_sensitivity(availability_proxy, point)
        cached = parametric_sensitivity(availability_proxy, point, cache=shared)
        recached = parametric_sensitivity(availability_proxy, point, cache=shared)
        assert plain == cached == recached
        plain_rows = tornado_sensitivity(availability_proxy, PRIORS)
        cached_rows = tornado_sensitivity(availability_proxy, PRIORS, cache=EvaluationCache())
        assert plain_rows == cached_rows


class TestPicklingGuard:
    def test_propagation_with_closure_raises_clearly(self):
        scale = 2.0
        with pytest.raises(ModelDefinitionError, match="picklable"):
            propagate_uncertainty(
                lambda p: scale * p["c"], PRIORS, n_samples=8,
                rng=np.random.default_rng(0), n_jobs=2,
            )

    def test_stats_reported(self):
        result = propagate_uncertainty(
            availability_proxy, PRIORS, n_samples=16, rng=np.random.default_rng(1)
        )
        assert result.stats is not None
        assert result.stats.n_tasks == 16
        assert result.stats.n_evaluated == 16
        assert result.stats.wall_time > 0.0
        assert 0.0 < result.stats.utilization() <= 1.0


class TestSimulatorDeterminism:
    def test_structural_sim_invariant_in_worker_count(self):
        from repro.distributions import Exponential
        from repro.nonstate import Component, ReliabilityBlockDiagram, parallel
        from repro.sim import simulate_mttf, simulate_reliability

        model = ReliabilityBlockDiagram(
            parallel(
                Component("a", failure=Exponential(1e-3)),
                Component("b", failure=Exponential(2e-3)),
            )
        )
        r2 = simulate_reliability(model, 400.0, n_samples=600, rng=np.random.default_rng(8), n_jobs=2)
        r3 = simulate_reliability(model, 400.0, n_samples=600, rng=np.random.default_rng(8), n_jobs=3)
        assert r2.value == r3.value
        m2 = simulate_mttf(model, n_samples=600, rng=np.random.default_rng(8), n_jobs=2)
        m3 = simulate_mttf(model, n_samples=600, rng=np.random.default_rng(8), n_jobs=3)
        assert m2.value == m3.value
        assert m2.std_error == m3.std_error
