"""Unit tests for the engine's executor backends."""

import time

import numpy as np
import pytest

from repro.engine import (
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    evaluate_batch,
    resolve_executor,
    spawn_generators,
)
from repro.engine.executors import default_chunk_size, parallel_starmap
from repro.exceptions import ModelDefinitionError, SolverError
from repro.robust import FaultPolicy


def quadratic(assignment):
    """Module-level evaluator: picklable for the process pool."""
    return assignment["x"] ** 2 + 3.0 * assignment.get("y", 0.0)


def stochastic(assignment, rng):
    """Module-level stochastic evaluator for RNG-spawning tests."""
    return assignment["x"] + rng.normal()


def chunk_worker(n, rng):
    """Module-level starmap worker."""
    return float(rng.uniform(size=n).sum())


ASSIGNMENTS = [{"x": float(k % 5), "y": float(k // 5)} for k in range(23)]
EXPECTED = [quadratic(a) for a in ASSIGNMENTS]


class TestBackends:
    @pytest.mark.parametrize(
        "executor",
        [SerialExecutor(), ThreadExecutor(3), ProcessExecutor(2)],
        ids=["serial", "thread", "process"],
    )
    def test_outputs_in_input_order(self, executor):
        values, durations, report = executor.run(quadratic, ASSIGNMENTS)
        assert list(values) == EXPECTED
        assert durations.shape == (len(ASSIGNMENTS),)
        assert np.all(durations >= 0.0)
        assert report.n_failed == 0 and report.n_retries == 0

    @pytest.mark.parametrize("chunk_size", [1, 2, 7, 100])
    def test_chunking_never_changes_results(self, chunk_size):
        values, _, _ = ThreadExecutor(4).run(quadratic, ASSIGNMENTS, chunk_size=chunk_size)
        assert list(values) == EXPECTED

    def test_empty_batch(self):
        for executor in (SerialExecutor(), ThreadExecutor(2), ProcessExecutor(2)):
            values, durations, report = executor.run(quadratic, [])
            assert values == []
            assert durations.size == 0
            assert report.n_failed == 0

    def test_progress_reaches_total(self):
        seen = []
        SerialExecutor().run(quadratic, ASSIGNMENTS, progress=lambda d, t: seen.append((d, t)))
        assert seen[-1] == (len(ASSIGNMENTS), len(ASSIGNMENTS))
        assert [d for d, _ in seen] == sorted(d for d, _ in seen)

    def test_pool_progress_monotone(self):
        seen = []
        ThreadExecutor(3).run(
            quadratic, ASSIGNMENTS, chunk_size=4, progress=lambda d, t: seen.append(d)
        )
        assert seen[-1] == len(ASSIGNMENTS)
        assert seen == sorted(seen)

    def test_invalid_n_jobs(self):
        with pytest.raises(ModelDefinitionError):
            ThreadExecutor(0)
        with pytest.raises(ModelDefinitionError):
            ProcessExecutor(-1)

    def test_rng_length_mismatch_rejected(self):
        rngs = spawn_generators(np.random.default_rng(0), 2)
        with pytest.raises(ModelDefinitionError):
            SerialExecutor().run(stochastic, ASSIGNMENTS, rngs=rngs)


class TestResolve:
    def test_default_is_serial(self):
        assert resolve_executor().name == "serial"

    def test_n_jobs_selects_process(self):
        executor = resolve_executor(n_jobs=3)
        assert executor.name == "process"
        assert executor.n_jobs == 3

    def test_names(self):
        assert resolve_executor(executor="serial").name == "serial"
        assert resolve_executor(executor="thread").name == "thread"
        assert resolve_executor(n_jobs=4, executor="process").n_jobs == 4

    def test_named_backend_respects_n_jobs(self):
        # Regression: "thread" with n_jobs=1 used to be silently promoted
        # to a two-worker pool; a one-worker pool is a legitimate request.
        assert resolve_executor(n_jobs=1, executor="thread").n_jobs == 1
        assert resolve_executor(n_jobs=1, executor="process").n_jobs == 1
        assert resolve_executor(n_jobs=3, executor="thread").n_jobs == 3

    def test_instance_passthrough(self):
        executor = ThreadExecutor(5)
        assert resolve_executor(n_jobs=1, executor=executor) is executor

    def test_unknown_rejected(self):
        with pytest.raises(ModelDefinitionError):
            resolve_executor(executor="gpu")
        with pytest.raises(ModelDefinitionError):
            resolve_executor(n_jobs=0)


class TestPicklingGuard:
    def test_lambda_with_process_pool_raises_clearly(self):
        with pytest.raises(ModelDefinitionError, match="picklable"):
            ProcessExecutor(2).run(lambda a: a["x"], [{"x": 1.0}, {"x": 2.0}])

    def test_closure_via_evaluate_batch(self):
        offset = 2.0

        def closure(assignment):
            return assignment["x"] + offset

        # Closures over module scope do pickle; a local lambda does not.
        with pytest.raises(ModelDefinitionError, match="n_jobs=1"):
            evaluate_batch(lambda a: a["x"], [{"x": 1.0}, {"x": 2.0}], n_jobs=2)

    def test_thread_pool_accepts_lambdas(self):
        values, _, _ = ThreadExecutor(2).run(lambda a: a["x"] * 2, [{"x": 1.0}, {"x": 4.0}])
        assert values == [2.0, 8.0]


class TestSpawning:
    def test_spawn_deterministic(self):
        a = spawn_generators(np.random.default_rng(9), 5)
        b = spawn_generators(np.random.default_rng(9), 5)
        for ga, gb in zip(a, b):
            assert ga.uniform() == gb.uniform()

    def test_children_independent(self):
        children = spawn_generators(np.random.default_rng(9), 3)
        draws = {round(g.uniform(), 12) for g in children}
        assert len(draws) == 3

    def test_spawn_validation(self):
        assert spawn_generators(np.random.default_rng(0), 0) == []
        with pytest.raises(ModelDefinitionError):
            spawn_generators(np.random.default_rng(0), -1)


class TestStarmap:
    def test_serial_and_parallel_agree(self):
        rngs = spawn_generators(np.random.default_rng(4), 6)
        tasks = [(8, rng) for rng in rngs]
        serial = parallel_starmap(chunk_worker, tasks, n_jobs=1)
        rngs = spawn_generators(np.random.default_rng(4), 6)
        parallel = parallel_starmap(chunk_worker, [(8, rng) for rng in rngs], n_jobs=2)
        assert serial == parallel

    def test_pickling_guard(self):
        with pytest.raises(ModelDefinitionError, match="picklable"):
            parallel_starmap(lambda n: n, [(1,), (2,)], n_jobs=2)

    def test_invalid_n_jobs(self):
        with pytest.raises(ModelDefinitionError):
            parallel_starmap(chunk_worker, [], n_jobs=0)


def failing_at_seven(assignment):
    """Module-level evaluator that raises on one specific input."""
    if assignment["x"] == 7.0:
        raise ValueError("boom at 7")
    return assignment["x"] * 2.0


def slow_then_value(assignment):
    """Sleeps long enough to trip a tight soft timeout."""
    time.sleep(0.05)
    return assignment["x"]


class TestFaultSemantics:
    """Fail-fast default vs FaultPolicy isolation (pins PR-2 semantics)."""

    ASSIGN = [{"x": float(k)} for k in range(16)]

    @pytest.mark.parametrize(
        "executor",
        [ThreadExecutor(3), ProcessExecutor(2)],
        ids=["thread", "process"],
    )
    def test_pool_mid_batch_raise_propagates(self, executor):
        # Without a policy the first evaluator exception aborts the batch:
        # remaining chunks are cancelled and the original error surfaces.
        with pytest.raises(ValueError, match="boom at 7"):
            executor.run(failing_at_seven, self.ASSIGN, chunk_size=2)

    def test_explicit_raise_policy_matches_default(self):
        with pytest.raises(ValueError, match="boom at 7"):
            ThreadExecutor(3).run(
                failing_at_seven,
                self.ASSIGN,
                chunk_size=2,
                policy=FaultPolicy(on_error="raise"),
            )

    def test_skip_policy_isolates_the_failure(self):
        values, _, report = ThreadExecutor(3).run(
            failing_at_seven,
            self.ASSIGN,
            chunk_size=2,
            policy=FaultPolicy(on_error="skip"),
        )
        assert report.n_failed == 1
        assert report.errors[0].index == 7
        assert report.errors[0].error_type == "ValueError"
        assert np.isnan(values[7])
        clean = [v for i, v in enumerate(values) if i != 7]
        assert clean == [a["x"] * 2.0 for i, a in enumerate(self.ASSIGN) if i != 7]

    def test_thread_soft_timeout_records_failure(self):
        # The soft deadline cannot interrupt a running frame, but the
        # over-budget evaluation must come back as a timeout ErrorRecord.
        values, _, report = ThreadExecutor(2).run(
            slow_then_value,
            [{"x": 1.0}, {"x": 2.0}],
            policy=FaultPolicy(on_error="skip", timeout=0.005),
        )
        assert report.n_failed == 2
        assert all(e.error_type == "EvaluationTimeout" for e in report.errors)
        assert np.all(np.isnan(values))

    def test_timeout_generous_budget_passes(self):
        values, _, report = ThreadExecutor(2).run(
            slow_then_value,
            [{"x": 1.0}, {"x": 2.0}],
            policy=FaultPolicy(on_error="skip", timeout=30.0),
        )
        assert report.n_failed == 0
        assert values == [1.0, 2.0]


def test_default_chunk_size_heuristic():
    assert default_chunk_size(0, 4) == 1
    assert default_chunk_size(1, 4) == 1
    assert default_chunk_size(1000, 4) == 63  # ~4 chunks per worker
    assert default_chunk_size(3, 8) == 1
