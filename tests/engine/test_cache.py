"""Unit tests for the memoizing evaluation cache."""

import numpy as np
import pytest

from repro.engine import EvaluationCache, evaluate_batch, freeze_assignment
from repro.exceptions import ModelDefinitionError


class TestFreezing:
    def test_order_insensitive(self):
        assert freeze_assignment({"a": 1, "b": 2.0}) == freeze_assignment({"b": 2, "a": 1.0})

    def test_value_coercion(self):
        assert freeze_assignment({"a": 1}) == freeze_assignment({"a": 1.0})


class TestCounters:
    def test_wrap_counts_hits_and_misses(self):
        cache = EvaluationCache()
        calls = []

        def evaluate(p):
            calls.append(dict(p))
            return p["x"] * 2

        cached = cache.wrap(evaluate)
        assert cached({"x": 1.0}) == 2.0
        assert cached({"x": 1.0}) == 2.0
        assert cached({"x": 2.0}) == 4.0
        assert len(calls) == 2
        assert (cache.hits, cache.misses) == (1, 2)
        assert cache.hit_rate == pytest.approx(1.0 / 3.0)
        assert len(cache) == 2

    def test_batch_dedupes_within_and_across_batches(self):
        cache = EvaluationCache()
        calls = []

        def evaluate(p):
            calls.append(1)
            return p["x"]

        first = evaluate_batch(evaluate, [{"x": 1.0}, {"x": 1.0}, {"x": 2.0}], cache=cache)
        assert len(calls) == 2
        assert first.stats.cache_hits == 1
        assert first.stats.cache_misses == 2
        second = evaluate_batch(evaluate, [{"x": 2.0}, {"x": 3.0}], cache=cache)
        assert len(calls) == 3
        assert second.stats.cache_hits == 1
        assert list(second.outputs) == [2.0, 3.0]
        # lifetime counters accumulate across batches
        assert (cache.hits, cache.misses) == (2, 3)

    def test_all_hits_batch(self):
        cache = EvaluationCache()
        evaluate_batch(lambda p: p["x"], [{"x": 5.0}], cache=cache)
        seen = []
        result = evaluate_batch(
            lambda p: p["x"], [{"x": 5.0}, {"x": 5.0}], cache=cache,
            progress=lambda d, t: seen.append((d, t)),
        )
        assert result.stats.n_evaluated == 0
        assert result.stats.cache_hits == 2
        assert list(result.outputs) == [5.0, 5.0]
        assert seen == [(2, 2)]


class TestCorrectness:
    def test_cached_equals_uncached_randomized(self):
        # Property check: for random batches with duplicates, the cached
        # engine path returns exactly the uncached outputs.
        rng = np.random.default_rng(123)
        for _ in range(20):
            values = rng.integers(0, 4, size=12)
            assignments = [{"x": float(v), "y": float(v % 2)} for v in values]
            plain = evaluate_batch(lambda p: p["x"] ** 2 - p["y"], assignments)
            cached = evaluate_batch(
                lambda p: p["x"] ** 2 - p["y"], assignments, cache=EvaluationCache()
            )
            assert np.array_equal(plain.outputs, cached.outputs)
            assert cached.stats.cache_hits + cached.stats.n_evaluated == len(assignments)

    def test_cache_with_rng_rejected(self):
        with pytest.raises(ModelDefinitionError, match="mutually exclusive"):
            evaluate_batch(
                lambda p, rng: p["x"],
                [{"x": 1.0}],
                cache=EvaluationCache(),
                rng=np.random.default_rng(0),
            )


class TestEviction:
    def test_maxsize_bounds_entries(self):
        cache = EvaluationCache(maxsize=2)
        cached = cache.wrap(lambda p: p["x"])
        for x in (1.0, 2.0, 3.0):
            cached({"x": x})
        assert len(cache) == 2
        assert {"x": 1.0} not in cache  # least recently used fell out
        assert {"x": 3.0} in cache

    def test_lru_touch_on_hit(self):
        cache = EvaluationCache(maxsize=2)
        cached = cache.wrap(lambda p: p["x"])
        cached({"x": 1.0})
        cached({"x": 2.0})
        cached({"x": 1.0})  # refresh 1 => 2 becomes LRU
        cached({"x": 3.0})
        assert {"x": 1.0} in cache
        assert {"x": 2.0} not in cache

    def test_invalid_maxsize(self):
        with pytest.raises(ModelDefinitionError):
            EvaluationCache(maxsize=0)

    def test_clear_keeps_counters(self):
        cache = EvaluationCache()
        cached = cache.wrap(lambda p: p["x"])
        cached({"x": 1.0})
        cached({"x": 1.0})
        cache.clear()
        assert len(cache) == 0
        assert (cache.hits, cache.misses) == (1, 1)
