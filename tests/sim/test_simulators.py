"""Unit tests for the Monte Carlo simulators (cross-validation, E22).

These tests compare simulation estimates against the analytic engines
using generous confidence levels: each check allows a 99.9%-CI miss, so
spurious failures are rare while real biases are caught.
"""

import numpy as np
import pytest

from repro.distributions import Exponential, Weibull
from repro.exceptions import ModelDefinitionError, SolverError, StateSpaceError
from repro.markov import CTMC
from repro.nonstate import (
    AndGate,
    BasicEvent,
    Component,
    FaultTree,
    OrGate,
    ReliabilityBlockDiagram,
    parallel,
    series,
)
from repro.petrinet import PetriNet
from repro.sim import (
    Estimate,
    estimate_mean,
    estimate_proportion,
    simulate_mttf,
    simulate_reliability,
    simulate_reward_rate,
    simulate_steady_availability,
    simulate_steady_fraction,
    simulate_time_to_absorption,
    simulate_transient_probability,
)

LEVEL = 0.999


class TestEstimators:
    def test_mean_estimate(self):
        est = estimate_mean([1.0, 2.0, 3.0, 4.0])
        assert est.value == pytest.approx(2.5)
        low, high = est.interval(0.95)
        assert low < 2.5 < high

    def test_proportion_estimate(self):
        est = estimate_proportion(30, 100)
        assert est.value == pytest.approx(0.3)
        assert est.contains(0.3)

    def test_needs_two_samples(self):
        with pytest.raises(SolverError):
            estimate_mean([1.0])

    def test_bad_level_rejected(self):
        with pytest.raises(SolverError):
            Estimate(1.0, 0.1, 10).interval(1.5)


class TestStructuralSim:
    def test_rbd_reliability(self, rng):
        a = Component.from_rates("a", 1.0)
        b = Component.from_rates("b", 1.0)
        rbd = ReliabilityBlockDiagram(parallel(a, b))
        est = simulate_reliability(rbd, 1.0, n_samples=20_000, rng=rng)
        assert est.contains(rbd.reliability(1.0), level=LEVEL)

    def test_fault_tree_reliability(self, rng):
        tree = FaultTree(
            OrGate([AndGate([BasicEvent.from_rates("a", 1.0), BasicEvent.from_rates("b", 1.0)]),
                    BasicEvent.from_rates("c", 0.1)])
        )
        est = simulate_reliability(tree, 0.5, n_samples=20_000, rng=rng)
        assert est.contains(tree.reliability(0.5), level=LEVEL)

    def test_weibull_component_reliability(self, rng):
        a = Component("a", failure=Weibull(shape=2.0, scale=2.0))
        b = Component("b", failure=Weibull(shape=2.0, scale=2.0))
        rbd = ReliabilityBlockDiagram(parallel(a, b))
        est = simulate_reliability(rbd, 1.5, n_samples=20_000, rng=rng)
        assert est.contains(rbd.reliability(1.5), level=LEVEL)

    def test_mttf(self, rng):
        a = Component.from_rates("a", 1.0)
        b = Component.from_rates("b", 1.0)
        rbd = ReliabilityBlockDiagram(parallel(a, b))
        est = simulate_mttf(rbd, n_samples=20_000, rng=rng)
        assert est.contains(1.5, level=LEVEL)

    def test_steady_availability(self, rng):
        a = Component.from_rates("a", 1.0, 5.0)
        b = Component.from_rates("b", 1.0, 5.0)
        rbd = ReliabilityBlockDiagram(parallel(a, b))
        est = simulate_steady_availability(rbd, horizon=2000.0, n_replications=48, rng=rng)
        assert est.contains(rbd.steady_state_availability(), level=LEVEL)

    def test_fixed_component_rejected(self, rng):
        rbd = ReliabilityBlockDiagram(series(Component.fixed("a", 0.1)))
        with pytest.raises(ModelDefinitionError):
            simulate_reliability(rbd, 1.0, 100, rng)

    def test_availability_needs_repair(self, rng):
        rbd = ReliabilityBlockDiagram(series(Component.from_rates("a", 1.0)))
        with pytest.raises(ModelDefinitionError):
            simulate_steady_availability(rbd, 100.0, 8, rng=rng)


class TestMarkovSim:
    def two_state(self):
        chain = CTMC()
        chain.add_transition("up", "down", 1.0)
        chain.add_transition("down", "up", 9.0)
        return chain

    def test_transient_probability(self, rng):
        chain = self.two_state()
        est = simulate_transient_probability(chain, ["up"], 0.3, "up", 20_000, rng)
        assert est.contains(chain.transient(0.3, "up")["up"], level=LEVEL)

    def test_steady_fraction(self, rng):
        chain = self.two_state()
        est = simulate_steady_fraction(chain, ["up"], 500.0, "up", 48, rng=rng)
        assert est.contains(0.9, level=LEVEL)

    def test_time_to_absorption(self, rng):
        chain = CTMC()
        chain.add_transition(2, 1, 2.0)
        chain.add_transition(1, 0, 1.0)
        est = simulate_time_to_absorption(chain, 2, 20_000, rng)
        assert est.contains(1.5, level=LEVEL)

    def test_explicit_absorbing_set(self, rng):
        chain = self.two_state()
        est = simulate_time_to_absorption(chain, "up", 10_000, rng, absorbing=["down"])
        assert est.contains(1.0, level=LEVEL)

    def test_no_absorbing_rejected(self, rng):
        with pytest.raises(StateSpaceError):
            simulate_time_to_absorption(self.two_state(), "up", 100, rng)


class TestSPNSim:
    def test_mm1k_expected_tokens(self, rng):
        K, lam, mu = 5, 2.0, 3.0
        net = PetriNet()
        net.add_place("queue", 0)
        net.add_timed_transition("arrive", rate=lam)
        net.add_output_arc("arrive", "queue")
        net.add_inhibitor_arc("arrive", "queue", K)
        net.add_timed_transition("serve", rate=mu)
        net.add_input_arc("serve", "queue")
        from repro.petrinet import StochasticRewardNet

        srn = StochasticRewardNet(net)
        analytic = srn.expected_tokens("queue")
        est = simulate_reward_rate(net, lambda m: float(m["queue"]), 1500.0, 48, rng=rng)
        assert est.contains(analytic, level=LEVEL)

    def test_immediate_coverage_branching(self, rng):
        c = 0.8
        net = PetriNet()
        net.add_place("up", 1)
        net.add_place("deciding", 0)
        net.add_place("covered", 0)
        net.add_place("uncovered", 0)
        net.add_timed_transition("fail", rate=1.0)
        net.add_input_arc("fail", "up")
        net.add_output_arc("fail", "deciding")
        net.add_immediate_transition("cover", weight=c)
        net.add_input_arc("cover", "deciding")
        net.add_output_arc("cover", "covered")
        net.add_immediate_transition("miss", weight=1 - c)
        net.add_input_arc("miss", "deciding")
        net.add_output_arc("miss", "uncovered")
        net.add_timed_transition("fast", rate=10.0)
        net.add_input_arc("fast", "covered")
        net.add_output_arc("fast", "up")
        net.add_timed_transition("slow", rate=0.5)
        net.add_input_arc("slow", "uncovered")
        net.add_output_arc("slow", "up")
        from repro.petrinet import StochasticRewardNet

        srn = StochasticRewardNet(net)
        analytic = srn.probability(lambda m: m["up"] == 1)
        est = simulate_reward_rate(
            net, lambda m: float(m["up"]), 3000.0, 48, rng=rng
        )
        assert est.contains(analytic, level=LEVEL)
