"""Unit tests for importance-sampling rare-event estimation."""

import numpy as np
import pytest

from repro.exceptions import ModelDefinitionError, StateSpaceError
from repro.markov import CTMC
from repro.sim import (
    simulate_cycle_failure_probability,
    simulate_mttf_importance_sampling,
)


def shared_repair(lam=1e-4, mu=1.0):
    chain = CTMC()
    chain.add_transition(2, 1, 2 * lam)
    chain.add_transition(1, 0, lam)
    chain.add_transition(1, 2, mu)
    chain.add_transition(0, 1, mu)
    return chain


def is_failure(src, dst):
    return dst < src


class TestCycleProbability:
    def test_unbiased_reference_moderate_rates(self, rng):
        # With non-rare failures the IS estimate must match the exact
        # jump-chain absorption probability.
        chain = shared_repair(lam=0.2, mu=1.0)
        exact = 0.2 / 1.2  # from 2 -> 1 (certain), then race 1 -> 0 vs 1 -> 2
        est = simulate_cycle_failure_probability(
            chain, 2, [0], is_failure, bias=0.5, n_cycles=20_000, rng=rng
        )
        assert est.contains(exact, level=0.999)

    def test_rare_event_estimated_accurately(self, rng):
        lam = 1e-4
        chain = shared_repair(lam=lam, mu=1.0)
        exact = lam / (lam + 1.0)
        est = simulate_cycle_failure_probability(
            chain, 2, [0], is_failure, bias=0.5, n_cycles=20_000, rng=rng
        )
        # Relative accuracy a naive simulator could never reach at n=20k:
        assert est.value == pytest.approx(exact, rel=0.1)
        low, high = est.interval(0.999)
        assert low <= exact <= high

    def test_bias_choice_does_not_bias_estimate(self, rng):
        chain = shared_repair(lam=1e-3, mu=1.0)
        exact = 1e-3 / (1e-3 + 1.0)
        for bias in (0.3, 0.5, 0.8):
            est = simulate_cycle_failure_probability(
                chain, 2, [0], is_failure, bias=bias, n_cycles=20_000, rng=rng
            )
            assert est.value == pytest.approx(exact, rel=0.15)

    def test_invalid_bias_rejected(self, rng):
        chain = shared_repair()
        with pytest.raises(ModelDefinitionError):
            simulate_cycle_failure_probability(chain, 2, [0], is_failure, bias=1.0, rng=rng)

    def test_start_in_failure_set_rejected(self, rng):
        chain = shared_repair()
        with pytest.raises(ModelDefinitionError):
            simulate_cycle_failure_probability(chain, 2, [2], is_failure, rng=rng)


class TestMTTF:
    def test_matches_analytic_mttf(self, rng):
        lam, mu = 1e-4, 1.0
        chain = shared_repair(lam, mu)
        exact = (3 * lam + mu) / (2 * lam**2)
        mttf, _length, _p = simulate_mttf_importance_sampling(
            chain, 2, [0], is_failure, n_cycles=20_000, rng=rng
        )
        assert mttf == pytest.approx(exact, rel=0.15)

    def test_returns_component_estimates(self, rng):
        chain = shared_repair(1e-3, 1.0)
        mttf, length_est, p_est = simulate_mttf_importance_sampling(
            chain, 2, [0], is_failure, n_cycles=5_000, rng=rng
        )
        assert mttf == pytest.approx(length_est.value / p_est.value)
        assert length_est.value > 0
        assert 0 < p_est.value < 1
