"""Property-based tests for reliability graphs (hypothesis).

Invariants on random two-terminal DAGs: BDD and factoring agree exactly;
connectivity probability is monotone in every edge probability; every
minimal path intersects every minimal cut; probability is bracketed by
the best single path and the union bound.
"""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nonstate import Component, ReliabilityGraph

probs = st.floats(min_value=0.1, max_value=0.95)


@st.composite
def random_dags(draw):
    """Random layered s-t DAGs with 1-3 middle nodes and 4-9 edges."""
    n_mid = draw(st.integers(min_value=1, max_value=3))
    nodes = ["s"] + [f"m{i}" for i in range(n_mid)] + ["t"]
    n_edges = draw(st.integers(min_value=4, max_value=9))
    graph = ReliabilityGraph("s", "t", directed=True)
    p_up = {}
    for k in range(n_edges):
        i = draw(st.integers(min_value=0, max_value=len(nodes) - 2))
        j = draw(st.integers(min_value=i + 1, max_value=len(nodes) - 1))
        name = f"e{k}"
        graph.add_edge(nodes[i], nodes[j], Component.fixed(name, 0.5))
        p_up[name] = draw(probs)
    return graph, p_up


@settings(max_examples=50, deadline=None)
@given(data=random_dags())
def test_bdd_equals_factoring(data):
    graph, p_up = data
    if not graph.minimal_path_sets():
        return
    assert graph.connectivity_probability(p_up) == pytest.approx(
        graph.connectivity_by_factoring(p_up), abs=1e-10
    )


@settings(max_examples=50, deadline=None)
@given(data=random_dags())
def test_probability_matches_truth_table(data):
    graph, p_up = data
    paths = graph.minimal_path_sets()
    if not paths:
        return
    names = sorted({n for ps in paths for n in ps})
    if len(names) > 10:
        return
    brute = 0.0
    for bits in itertools.product([False, True], repeat=len(names)):
        assign = dict(zip(names, bits))
        if any(all(assign[n] for n in ps) for ps in paths):
            term = 1.0
            for name in names:
                term *= p_up[name] if assign[name] else 1 - p_up[name]
            brute += term
    assert graph.connectivity_probability(p_up) == pytest.approx(brute, abs=1e-10)


@settings(max_examples=40, deadline=None)
@given(data=random_dags(), bump=st.floats(min_value=0.01, max_value=0.04))
def test_monotone_in_edge_probability(data, bump):
    graph, p_up = data
    if not graph.minimal_path_sets():
        return
    base = graph.connectivity_probability(p_up)
    for name in p_up:
        better = dict(p_up)
        better[name] = min(1.0, better[name] + bump)
        assert graph.connectivity_probability(better) >= base - 1e-12


@settings(max_examples=40, deadline=None)
@given(data=random_dags())
def test_paths_intersect_cuts(data):
    graph, _p_up = data
    paths = graph.minimal_path_sets()
    if not paths:
        return
    cuts = graph.minimal_cut_sets()
    for path in paths:
        for cut in cuts:
            assert path & cut


@settings(max_examples=40, deadline=None)
@given(data=random_dags())
def test_bracketed_by_best_path_and_union_bound(data):
    graph, p_up = data
    paths = graph.minimal_path_sets()
    if not paths:
        return
    value = graph.connectivity_probability(p_up)

    def path_prob(ps):
        prob = 1.0
        for name in ps:
            prob *= p_up[name]
        return prob

    best_single = max(path_prob(ps) for ps in paths)
    union_bound = min(1.0, sum(path_prob(ps) for ps in paths))
    assert best_single - 1e-12 <= value <= union_bound + 1e-12
