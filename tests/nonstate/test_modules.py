"""Unit tests for fault-tree modularization."""

import pytest

from repro.exceptions import ModelDefinitionError
from repro.nonstate import (
    AndGate,
    BasicEvent,
    FaultTree,
    KofNGate,
    NotGate,
    OrGate,
    find_modules,
    modular_top_probability,
)


def events(*specs):
    return [BasicEvent.fixed(n, p) for n, p in specs]


class TestDetection:
    def test_simple_module(self):
        a, b, c = events(("a", 0.1), ("b", 0.2), ("c", 0.3))
        tree = FaultTree(OrGate([AndGate([a, b]), c]))
        mods = find_modules(tree)
        assert [sorted(ev) for _g, ev in mods] == [["a", "b"]]

    def test_nested_modules_all_reported(self):
        a, b, c, d, e = events(("a", 0.1), ("b", 0.2), ("c", 0.3), ("d", 0.15), ("e", 0.05))
        tree = FaultTree(OrGate([AndGate([a, b]), AndGate([OrGate([c, d]), e])]))
        found = {frozenset(ev) for _g, ev in find_modules(tree)}
        assert frozenset({"a", "b"}) in found
        assert frozenset({"c", "d"}) in found
        assert frozenset({"c", "d", "e"}) in found

    def test_shared_event_destroys_modularity(self):
        shared, a, b = events(("s", 0.1), ("a", 0.2), ("b", 0.3))
        tree = FaultTree(OrGate([AndGate([shared, a]), AndGate([shared, b])]))
        assert find_modules(tree) == []

    def test_largest_modules_first(self):
        a, b, c, d, e = events(("a", 0.1), ("b", 0.2), ("c", 0.3), ("d", 0.15), ("e", 0.05))
        tree = FaultTree(OrGate([AndGate([a, b]), AndGate([OrGate([c, d]), e])]))
        sizes = [len(ev) for _g, ev in find_modules(tree)]
        assert sizes == sorted(sizes, reverse=True)

    def test_non_coherent_rejected(self):
        tree = FaultTree(NotGate(BasicEvent.fixed("a", 0.1)))
        with pytest.raises(ModelDefinitionError):
            find_modules(tree)

    def test_boeing_tree_is_essentially_unmodularizable(self):
        from repro.casestudies.boeing import generate_boeing_style_tree

        # Shared ground-strap events couple the sections: with enough
        # sections every shared event is used by several, and no section
        # can be split off — the structural reason the 787 analysis
        # needed bounds rather than divide-and-conquer.
        tree = generate_boeing_style_tree(n_sections=6)
        assert find_modules(tree) == []


class TestModularQuantification:
    @pytest.mark.parametrize("seed", range(5))
    def test_equals_direct_bdd_on_random_trees(self, seed):
        import random

        rnd = random.Random(seed)
        leaves = events(*[(f"e{i}", rnd.uniform(0.05, 0.4)) for i in range(8)])

        def subtree(pool):
            if len(pool) == 1:
                return pool[0]
            split = rnd.randint(1, len(pool) - 1)
            left, right = subtree(pool[:split]), subtree(pool[split:])
            gate = rnd.choice([AndGate, OrGate])
            return gate([left, right])

        tree = FaultTree(subtree(leaves))
        modular, _mods = modular_top_probability(tree)
        assert modular == pytest.approx(tree.top_event_probability(), abs=1e-12)

    def test_with_kofn_modules(self):
        a, b, c, d = events(("a", 0.1), ("b", 0.2), ("c", 0.3), ("d", 0.15))
        tree = FaultTree(AndGate([KofNGate(2, [a, b, c]), d]))
        modular, mods = modular_top_probability(tree)
        assert modular == pytest.approx(tree.top_event_probability(), abs=1e-12)
        assert len(mods) == 1

    def test_with_repeated_events(self):
        shared, a, b = events(("s", 0.5), ("a", 0.5), ("b", 0.5))
        tree = FaultTree(OrGate([AndGate([shared, a]), AndGate([shared, b])]))
        modular, mods = modular_top_probability(tree)
        assert mods == {}  # nothing modularizable
        assert modular == pytest.approx(tree.top_event_probability(), abs=1e-12)

    def test_explicit_q(self):
        a, b, c = events(("a", 0.1), ("b", 0.2), ("c", 0.3))
        tree = FaultTree(OrGate([AndGate([a, b]), c]))
        q = {"a": 0.5, "b": 0.5, "c": 0.0}
        modular, _ = modular_top_probability(tree, q)
        assert modular == pytest.approx(0.25)

    def test_missing_probability_rejected(self):
        tree = FaultTree(OrGate([BasicEvent.from_rates("a", 1.0)]))
        with pytest.raises(ModelDefinitionError):
            modular_top_probability(tree)
