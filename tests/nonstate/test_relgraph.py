"""Unit tests for reliability graphs."""

import math

import pytest

from repro.distributions import Exponential
from repro.exceptions import ModelDefinitionError
from repro.nonstate import Component, ReliabilityGraph


def bridge(directed=False, p=0.1):
    g = ReliabilityGraph("s", "t", directed=directed)
    edges = {"e1": ("s", "a"), "e2": ("s", "b"), "e3": ("a", "t"),
             "e4": ("b", "t"), "e5": ("a", "b")}
    for name, (u, v) in edges.items():
        g.add_edge(u, v, Component.fixed(name, p))
    return g


class TestBridge:
    def test_undirected_bridge_closed_form(self):
        g = bridge(directed=False)
        p = 0.9
        expected = 2 * p**2 + 2 * p**3 - 5 * p**4 + 2 * p**5
        got = g.connectivity_probability({n: p for n in g.components})
        assert got == pytest.approx(expected)

    def test_directed_bridge_fewer_paths(self):
        undirected = bridge(directed=False)
        directed = bridge(directed=True)
        p = {n: 0.9 for n in undirected.components}
        assert directed.connectivity_probability(p) < undirected.connectivity_probability(p)

    def test_factoring_agrees_with_bdd(self):
        g = bridge(directed=False)
        p = {n: 0.85 for n in g.components}
        assert g.connectivity_by_factoring(p) == pytest.approx(
            g.connectivity_probability(p)
        )

    def test_bridge_path_sets(self):
        g = bridge(directed=False)
        paths = g.minimal_path_sets()
        assert frozenset({"e1", "e3"}) in paths
        assert frozenset({"e2", "e4"}) in paths
        assert frozenset({"e1", "e5", "e4"}) in paths
        assert frozenset({"e2", "e5", "e3"}) in paths
        assert len(paths) == 4

    def test_bridge_cut_sets(self):
        g = bridge(directed=False)
        cuts = g.minimal_cut_sets()
        assert frozenset({"e1", "e2"}) in cuts
        assert frozenset({"e3", "e4"}) in cuts
        assert frozenset({"e1", "e5", "e4"}) in cuts or frozenset({"e1", "e4", "e5"}) in cuts
        assert len(cuts) == 4


class TestSeriesParallelGraphs:
    def test_series_path(self):
        g = ReliabilityGraph("s", "t")
        g.add_edge("s", "m", Component.fixed("a", 0.1))
        g.add_edge("m", "t", Component.fixed("b", 0.2))
        assert g.connectivity_probability({"a": 0.9, "b": 0.8}) == pytest.approx(0.72)

    def test_parallel_edges(self):
        g = ReliabilityGraph("s", "t")
        g.add_edge("s", "t", Component.fixed("a", 0.1))
        g.add_edge("s", "t", Component.fixed("b", 0.2))
        assert g.connectivity_probability({"a": 0.9, "b": 0.8}) == pytest.approx(
            1 - 0.1 * 0.2
        )

    def test_shared_component_across_edges(self):
        # Same component carries two edges: perfectly correlated failures.
        g = ReliabilityGraph("s", "t")
        shared = Component.fixed("x", 0.5)
        g.add_edge("s", "m", shared)
        g.add_edge("m", "t", shared)
        # Both edges up iff x up: probability 0.5, not 0.25.
        assert g.connectivity_probability({"x": 0.5}) == pytest.approx(0.5)

    def test_disconnected_graph_probability_zero(self):
        g = ReliabilityGraph("s", "t")
        g.add_edge("s", "m", Component.fixed("a", 0.1))
        assert g.connectivity_probability({"a": 0.9}) == 0.0
        assert g.minimal_path_sets() == []


class TestValidation:
    def test_same_source_target_rejected(self):
        with pytest.raises(ModelDefinitionError):
            ReliabilityGraph("s", "s")

    def test_duplicate_component_name_rejected(self):
        g = ReliabilityGraph("s", "t")
        g.add_edge("s", "t", Component.fixed("a", 0.1))
        with pytest.raises(ModelDefinitionError):
            g.add_edge("s", "t", Component.fixed("a", 0.2))

    def test_missing_probability_rejected(self):
        g = ReliabilityGraph("s", "t")
        g.add_edge("s", "t", Component.fixed("a", 0.1))
        with pytest.raises(ModelDefinitionError):
            g.connectivity_probability({})


class TestTimeMeasures:
    def test_reliability_two_series_edges(self):
        g = ReliabilityGraph("s", "t")
        g.add_edge("s", "m", Component.from_rates("a", 1.0))
        g.add_edge("m", "t", Component.from_rates("b", 2.0))
        assert g.reliability(0.5) == pytest.approx(math.exp(-1.5))

    def test_steady_state_availability(self):
        g = ReliabilityGraph("s", "t")
        g.add_edge("s", "t", Component.from_rates("a", 1.0, 9.0))
        g.add_edge("s", "t", Component.from_rates("b", 1.0, 9.0))
        assert g.steady_state_availability() == pytest.approx(1 - 0.01)

    def test_mttf_parallel_edges(self):
        g = ReliabilityGraph("s", "t")
        g.add_edge("s", "t", Component.from_rates("a", 1.0))
        g.add_edge("s", "t", Component.from_rates("b", 1.0))
        assert g.mttf() == pytest.approx(1.5, rel=1e-6)

    def test_availability_point(self):
        g = ReliabilityGraph("s", "t")
        g.add_edge("s", "t", Component.from_rates("a", 1.0, 9.0))
        assert g.availability(0.0) == pytest.approx(1.0)

    def test_graph_beats_any_single_path(self):
        g = bridge(directed=False)
        p = {n: 0.9 for n in g.components}
        whole = g.connectivity_probability(p)
        assert whole > 0.9 * 0.9  # better than the best single path
