"""Unit tests for bounding algorithms."""

import pytest

from repro.casestudies.boeing import generate_boeing_style_tree
from repro.exceptions import ModelDefinitionError
from repro.nonstate import (
    AndGate,
    BasicEvent,
    FaultTree,
    FaultTreeBounds,
    NotGate,
    OrGate,
    esary_proschan_bounds,
    truncated_cutset_bounds,
)


def sample_tree():
    a, b, c, d = (BasicEvent.fixed(n, p) for n, p in
                  zip("abcd", (0.02, 0.03, 0.01, 0.05)))
    return FaultTree(OrGate([AndGate([a, b]), AndGate([a, c]), d]))


class TestEsaryProschan:
    def test_brackets_exact(self):
        tree = sample_tree()
        analysis = FaultTreeBounds(tree)
        exact = analysis.exact()
        lo, hi = analysis.esary_proschan()
        assert lo - 1e-12 <= exact <= hi + 1e-12

    def test_direct_function(self):
        tree = sample_tree()
        q = {n: tree.basic_events[n].component.probability for n in tree.basic_events}
        lo, hi = esary_proschan_bounds(
            tree.minimal_path_sets(), tree.minimal_cut_sets(), q
        )
        exact = tree.top_event_probability()
        assert lo <= exact <= hi

    def test_upper_bound_tight_for_small_probabilities(self):
        # In the rare-event regime the min-cut upper bound is nearly exact
        # while the min-path lower bound is loose — the textbook behaviour.
        tree = sample_tree()
        analysis = FaultTreeBounds(tree)
        exact = analysis.exact()
        lo, hi = analysis.esary_proschan()
        assert hi == pytest.approx(exact, rel=0.01)
        assert lo <= exact


class TestBonferroni:
    def test_convergence_with_depth(self):
        tree = sample_tree()
        analysis = FaultTreeBounds(tree)
        exact = analysis.exact()
        prev_width = None
        for depth in range(1, len(analysis.cut_sets) + 1):
            lo, hi = analysis.bonferroni(depth)
            assert lo - 1e-12 <= exact <= hi + 1e-12
            width = hi - lo
            if prev_width is not None:
                assert width <= prev_width + 1e-12
            prev_width = width
        assert prev_width == pytest.approx(0.0, abs=1e-12)

    def test_boeing_tree_bounds(self):
        tree = generate_boeing_style_tree(n_sections=6, seed=7)
        analysis = FaultTreeBounds(tree)
        exact = analysis.exact()
        lo, hi = analysis.bonferroni(2)
        assert lo <= exact <= hi
        # Depth-2 already very tight for rare events.
        assert hi - lo < exact * 0.01 + 1e-15


class TestTruncatedCutsets:
    def test_order_truncation_brackets_exact(self):
        tree = sample_tree()
        analysis = FaultTreeBounds(tree)
        exact = analysis.exact()
        lo, hi = analysis.truncated(max_order=1)
        assert lo - 1e-12 <= exact <= hi + 1e-12
        lo2, hi2 = analysis.truncated(max_order=2)
        assert lo2 - 1e-12 <= exact <= hi2 + 1e-12
        assert hi2 - lo2 <= hi - lo + 1e-12

    def test_probability_cutoff(self):
        tree = sample_tree()
        analysis = FaultTreeBounds(tree)
        exact = analysis.exact()
        lo, hi = analysis.truncated(probability_cutoff=1e-3)
        assert lo - 1e-12 <= exact <= hi + 1e-12

    def test_everything_dropped_gives_trivial_bounds(self):
        tree = sample_tree()
        analysis = FaultTreeBounds(tree)
        lo, hi = analysis.truncated(probability_cutoff=1.0)
        assert lo == 0.0
        assert hi >= analysis.exact()

    def test_direct_function(self):
        cuts = [{"a", "b"}, {"c"}]
        q = {"a": 0.1, "b": 0.1, "c": 0.01}
        lo, hi = truncated_cutset_bounds(cuts, q, max_order=1)
        exact = 1 - (1 - 0.01) * (1 - 0.01)  # union of {c} and {a,b}
        exact = 0.01 + 0.01 - 0.01 * 0.01
        assert lo <= exact <= hi


class TestValidation:
    def test_non_coherent_rejected(self):
        tree = FaultTree(NotGate(BasicEvent.fixed("a", 0.1)))
        with pytest.raises(ModelDefinitionError):
            FaultTreeBounds(tree)

    def test_rare_event_is_upper_bound(self):
        tree = sample_tree()
        analysis = FaultTreeBounds(tree)
        assert analysis.rare_event() >= analysis.exact()

    def test_missing_q_for_rateful_events(self):
        tree = FaultTree(OrGate([BasicEvent.from_rates("a", 1.0)]))
        analysis = FaultTreeBounds(tree)
        with pytest.raises(ModelDefinitionError):
            analysis.bonferroni(1)

    def test_explicit_q_accepted(self):
        tree = FaultTree(OrGate([BasicEvent.from_rates("a", 1.0)]))
        analysis = FaultTreeBounds(tree)
        lo, hi = analysis.bonferroni(1, q={"a": 0.25})
        assert lo <= 0.25 <= hi
