"""Unit tests for the beta-factor common-cause failure model."""

import math

import pytest

from repro.distributions import Exponential, Weibull
from repro.exceptions import ModelDefinitionError
from repro.nonstate import (
    Component,
    FaultTree,
    beta_factor_split,
    redundant_group_with_ccf,
)


class TestBetaFactorSplit:
    def test_rate_split(self):
        comp = Component.from_rates("x", 1e-3, 0.5)
        indep, common = beta_factor_split(comp, beta=0.1)
        assert indep.failure.rate == pytest.approx(9e-4)
        assert common.failure.rate == pytest.approx(1e-4)
        assert indep.repair.rate == pytest.approx(0.5)

    def test_rates_sum_to_original(self):
        comp = Component.from_rates("x", 2e-3)
        indep, common = beta_factor_split(comp, beta=0.25)
        assert indep.failure.rate + common.failure.rate == pytest.approx(2e-3)

    def test_probability_split_composes_exactly(self):
        comp = Component.fixed("x", 0.2)
        indep, common = beta_factor_split(comp, beta=0.3)
        # series of the two parts restores the original unreliability
        combined = 1 - (1 - indep.probability) * (1 - common.probability)
        assert combined == pytest.approx(0.2)

    def test_beta_zero_degenerates(self):
        comp = Component.from_rates("x", 1e-3)
        indep, common = beta_factor_split(comp, beta=0.0)
        assert indep.failure.rate == pytest.approx(1e-3)
        assert common.probability == 0.0

    def test_beta_one_degenerates(self):
        comp = Component.from_rates("x", 1e-3)
        indep, common = beta_factor_split(comp, beta=1.0)
        assert indep.probability == 0.0
        assert common.failure.rate == pytest.approx(1e-3)

    def test_custom_ccf_name(self):
        comp = Component.fixed("x", 0.1)
        _indep, common = beta_factor_split(comp, 0.1, ccf_name="shared_psu")
        assert common.name == "shared_psu"

    def test_non_exponential_rejected(self):
        comp = Component("x", failure=Weibull(shape=2.0, scale=1.0))
        with pytest.raises(ModelDefinitionError):
            beta_factor_split(comp, 0.1)

    def test_invalid_beta_rejected(self):
        with pytest.raises(ModelDefinitionError):
            beta_factor_split(Component.fixed("x", 0.1), 1.5)


class TestRedundantGroup:
    def test_ccf_dominates_redundancy(self):
        pair = [Component.fixed("a", 0.01), Component.fixed("b", 0.01)]
        with_ccf = FaultTree(redundant_group_with_ccf(pair, 2, beta=0.1))
        q = with_ccf.top_event_probability()
        assert q > 0.01 * 0.01          # far worse than independent pairs
        assert q < 0.01                 # but better than a single unit

    def test_beta_zero_equals_plain_redundancy(self):
        pair = [Component.fixed("a", 0.01), Component.fixed("b", 0.01)]
        node = redundant_group_with_ccf(pair, 2, beta=0.0)
        tree = FaultTree(node)
        assert tree.top_event_probability() == pytest.approx(1e-4, rel=1e-9)

    def test_availability_ordering_in_beta(self):
        def availability(beta):
            pair = [
                Component.from_rates("a", 1e-4, 0.5),
                Component.from_rates("b", 1e-4, 0.5),
            ]
            return FaultTree(
                redundant_group_with_ccf(pair, 2, beta=beta)
            ).steady_state_availability()

        values = [availability(b) for b in (0.0, 0.05, 0.1, 0.3)]
        assert all(b < a for a, b in zip(values, values[1:]))

    def test_one_out_of_n_uses_or(self):
        comps = [Component.fixed(f"c{i}", 0.1) for i in range(3)]
        tree = FaultTree(redundant_group_with_ccf(comps, 1, beta=0.0))
        # any single failure downs the group: q = 1 - prod(1 - q_i)
        assert tree.top_event_probability() == pytest.approx(1 - 0.9**3)

    def test_kofn_group(self):
        comps = [Component.fixed(f"c{i}", 0.2) for i in range(4)]
        tree = FaultTree(redundant_group_with_ccf(comps, 3, beta=0.0))
        from math import comb

        expected = sum(comb(4, i) * 0.2**i * 0.8 ** (4 - i) for i in range(3, 5))
        assert tree.top_event_probability() == pytest.approx(expected)

    def test_invalid_group_rejected(self):
        with pytest.raises(ModelDefinitionError):
            redundant_group_with_ccf([], 1, beta=0.1)
        with pytest.raises(ModelDefinitionError):
            redundant_group_with_ccf([Component.fixed("a", 0.1)], 2, beta=0.1)

    def test_classic_3x_redundancy_study(self):
        # With beta = 0.1, adding more replicas stops helping: the CCF
        # floor q_ccf caps the achievable reliability.
        def top_probability(n):
            comps = [Component.from_rates(f"c{i}", 1e-3) for i in range(n)]
            tree = FaultTree(redundant_group_with_ccf(comps, n, beta=0.1))
            return 1.0 - tree.reliability(100.0)

        q2, q3, q4 = (top_probability(n) for n in (2, 3, 4))
        assert q3 < q2
        floor = 1 - math.exp(-0.1 * 1e-3 * 100.0)
        assert q4 == pytest.approx(floor, rel=0.05)
