"""Unit tests for non-state-space components."""

import math

import numpy as np
import pytest

from repro.distributions import Exponential, Lognormal, Weibull
from repro.exceptions import ModelDefinitionError
from repro.nonstate import Component


class TestConstruction:
    def test_fixed(self):
        c = Component.fixed("x", 0.01)
        assert c.probability == 0.01

    def test_from_rates(self):
        c = Component.from_rates("x", failure_rate=0.001, repair_rate=0.5)
        assert isinstance(c.failure, Exponential)
        assert c.failure.rate == 0.001
        assert c.repair.rate == 0.5

    def test_from_mttf_mttr(self):
        c = Component.from_mttf_mttr("x", mttf=1000.0, mttr=10.0)
        assert c.failure.mean() == pytest.approx(1000.0)
        assert c.repair.mean() == pytest.approx(10.0)

    def test_needs_some_parameterization(self):
        with pytest.raises(ModelDefinitionError):
            Component("x")

    def test_rejects_both_probability_and_distribution(self):
        with pytest.raises(ModelDefinitionError):
            Component("x", failure=Exponential(1.0), probability=0.5)

    def test_repair_without_failure_rejected(self):
        with pytest.raises(ModelDefinitionError):
            Component("x", repair=Exponential(1.0))

    def test_empty_name_rejected(self):
        with pytest.raises(ModelDefinitionError):
            Component("", probability=0.5)

    def test_probability_out_of_range_rejected(self):
        with pytest.raises(ModelDefinitionError):
            Component.fixed("x", 1.5)


class TestReliability:
    def test_exponential_reliability(self):
        c = Component.from_rates("x", failure_rate=2.0)
        assert c.reliability(1.0) == pytest.approx(math.exp(-2.0))

    def test_fixed_probability_time_invariant(self):
        c = Component.fixed("x", 0.2)
        assert c.reliability(0.0) == pytest.approx(0.8)
        assert c.reliability(100.0) == pytest.approx(0.8)

    def test_weibull_component(self):
        w = Weibull(shape=2.0, scale=100.0)
        c = Component("x", failure=w)
        assert c.unreliability(50.0) == pytest.approx(w.cdf(50.0))

    def test_mttf(self):
        c = Component.from_rates("x", failure_rate=0.01)
        assert c.mttf() == pytest.approx(100.0)

    def test_mttf_of_fixed_rejected(self):
        with pytest.raises(ModelDefinitionError):
            Component.fixed("x", 0.1).mttf()


class TestAvailability:
    def test_steady_state_from_rates(self):
        c = Component.from_rates("x", failure_rate=1.0, repair_rate=9.0)
        assert c.steady_state_availability() == pytest.approx(0.9)

    def test_steady_state_non_exponential_uses_means(self):
        c = Component(
            "x",
            failure=Weibull.from_mean_shape(mean=90.0, shape=2.0),
            repair=Lognormal.from_mean_cv(mean=10.0, cv=1.0),
        )
        assert c.steady_state_availability() == pytest.approx(0.9)

    def test_no_repair_means_zero_steady_availability(self):
        c = Component.from_rates("x", failure_rate=1.0)
        assert c.steady_state_availability() == 0.0

    def test_point_availability_closed_form(self):
        lam, mu = 1.0, 9.0
        c = Component.from_rates("x", lam, mu)
        t = 0.25
        expected = mu / (lam + mu) + lam / (lam + mu) * math.exp(-(lam + mu) * t)
        assert c.availability(t) == pytest.approx(expected)

    def test_point_availability_at_zero_is_one(self):
        c = Component.from_rates("x", 1.0, 9.0)
        assert c.availability(0.0) == pytest.approx(1.0)

    def test_point_availability_non_exponential_raises(self):
        c = Component("x", failure=Weibull(shape=2.0, scale=1.0), repair=Exponential(1.0))
        with pytest.raises(ModelDefinitionError):
            c.availability(1.0)

    def test_no_repair_availability_equals_reliability(self):
        c = Component.from_rates("x", failure_rate=2.0)
        assert c.availability(0.5) == pytest.approx(c.reliability(0.5))


class TestFailureProbabilityHook:
    def test_steady_measure(self):
        c = Component.from_rates("x", 1.0, 9.0)
        assert c.failure_probability(None, "steady") == pytest.approx(0.1)

    def test_reliability_measure(self):
        c = Component.from_rates("x", 1.0)
        assert c.failure_probability(2.0, "reliability") == pytest.approx(1 - math.exp(-2.0))

    def test_missing_time_rejected(self):
        c = Component.from_rates("x", 1.0)
        with pytest.raises(ModelDefinitionError):
            c.failure_probability(None, "reliability")

    def test_unknown_measure_rejected(self):
        c = Component.from_rates("x", 1.0)
        with pytest.raises(ModelDefinitionError):
            c.failure_probability(1.0, "bogus")
