"""Unit tests for phased-mission analysis."""

import math

import pytest

from repro.distributions import Weibull
from repro.exceptions import ModelDefinitionError
from repro.nonstate import Component, PhasedMission, ReliabilityBlockDiagram, parallel, series


def exp_components(*specs):
    return [Component.from_rates(name, rate) for name, rate in specs]


class TestSinglePhase:
    def test_equals_rbd_parallel(self):
        comps = exp_components(("a", 0.1), ("b", 0.1))
        mission = PhasedMission(comps)
        mission.add_phase("only", 2.0, lambda bdd, v: bdd.apply_or(v("a"), v("b")))
        rbd = ReliabilityBlockDiagram(
            parallel(Component.from_rates("a", 0.1), Component.from_rates("b", 0.1))
        )
        assert mission.reliability() == pytest.approx(rbd.reliability(2.0), abs=1e-12)

    def test_equals_rbd_series(self):
        comps = exp_components(("a", 0.2), ("b", 0.3))
        mission = PhasedMission(comps)
        mission.add_phase("only", 1.5, lambda bdd, v: bdd.apply_and(v("a"), v("b")))
        assert mission.reliability() == pytest.approx(
            math.exp(-0.5 * 1.5), abs=1e-12
        )


class TestMultiPhase:
    def make_mission(self):
        comps = exp_components(("a", 0.1), ("b", 0.2), ("c", 0.05))
        mission = PhasedMission(comps)
        mission.add_phase(
            "p1", 1.0, lambda bdd, v: bdd.apply_and(v("a"), bdd.apply_or(v("b"), v("c")))
        )
        mission.add_phase(
            "p2", 2.0, lambda bdd, v: bdd.apply_or(v("a"), bdd.apply_and(v("b"), v("c")))
        )
        mission.add_phase("p3", 0.5, lambda bdd, v: v.at_least_k(["a", "b", "c"], 2))
        return mission

    def test_matches_brute_force(self):
        mission = self.make_mission()
        assert mission.reliability() == pytest.approx(
            mission.brute_force_reliability(), abs=1e-12
        )

    def test_naive_product_overestimates(self):
        mission = self.make_mission()
        assert mission.naive_product_reliability() > mission.reliability()

    def test_same_structure_all_phases_equals_single_long_phase(self):
        build = lambda bdd, v: bdd.apply_or(v("a"), v("b"))  # noqa: E731
        split = PhasedMission(exp_components(("a", 0.1), ("b", 0.1)))
        split.add_phase("p1", 1.0, build)
        split.add_phase("p2", 2.0, build)
        merged = PhasedMission(exp_components(("a", 0.1), ("b", 0.1)))
        merged.add_phase("all", 3.0, build)
        assert split.reliability() == pytest.approx(merged.reliability(), abs=1e-12)

    def test_stricter_later_phase_lowers_reliability(self):
        lenient = PhasedMission(exp_components(("a", 0.1), ("b", 0.1)))
        lenient.add_phase("p1", 1.0, lambda bdd, v: bdd.apply_or(v("a"), v("b")))
        lenient.add_phase("p2", 1.0, lambda bdd, v: bdd.apply_or(v("a"), v("b")))
        strict = PhasedMission(exp_components(("a", 0.1), ("b", 0.1)))
        strict.add_phase("p1", 1.0, lambda bdd, v: bdd.apply_or(v("a"), v("b")))
        strict.add_phase("p2", 1.0, lambda bdd, v: bdd.apply_and(v("a"), v("b")))
        assert strict.reliability() < lenient.reliability()

    def test_weibull_lifetimes(self):
        comps = [
            Component("a", failure=Weibull(shape=2.0, scale=10.0)),
            Component("b", failure=Weibull(shape=2.0, scale=10.0)),
        ]
        mission = PhasedMission(comps)
        mission.add_phase("both", 2.0, lambda bdd, v: bdd.apply_and(v("a"), v("b")))
        mission.add_phase("either", 5.0, lambda bdd, v: bdd.apply_or(v("a"), v("b")))
        assert mission.reliability() == pytest.approx(
            mission.brute_force_reliability(), abs=1e-12
        )

    @pytest.mark.parametrize("seed", range(4))
    def test_random_missions_match_brute_force(self, seed):
        import numpy as np

        rng = np.random.default_rng(seed)
        names = ["a", "b", "c", "d"][: int(rng.integers(2, 5))]
        comps = [Component.from_rates(n, float(rng.uniform(0.02, 0.3))) for n in names]
        mission = PhasedMission(comps)
        for p in range(int(rng.integers(2, 4))):
            k = int(rng.integers(1, len(names) + 1))
            mission.add_phase(
                f"p{p}",
                float(rng.uniform(0.2, 2.0)),
                lambda bdd, v, k=k, names=tuple(names): v.at_least_k(list(names), k),
            )
        assert mission.reliability() == pytest.approx(
            mission.brute_force_reliability(), abs=1e-10
        )


class TestValidation:
    def test_needs_components(self):
        with pytest.raises(ModelDefinitionError):
            PhasedMission([])

    def test_needs_lifetimes(self):
        with pytest.raises(ModelDefinitionError):
            PhasedMission([Component.fixed("a", 0.1)])

    def test_needs_phases(self):
        mission = PhasedMission(exp_components(("a", 0.1)))
        with pytest.raises(ModelDefinitionError):
            mission.reliability()

    def test_unknown_component_in_structure(self):
        mission = PhasedMission(exp_components(("a", 0.1)))
        mission.add_phase("p", 1.0, lambda bdd, v: v("ghost"))
        with pytest.raises(ModelDefinitionError):
            mission.reliability()

    def test_duplicate_names_rejected(self):
        with pytest.raises(ModelDefinitionError):
            PhasedMission(exp_components(("a", 0.1), ("a", 0.2)))
