"""Unit tests for fault trees."""

import math

import numpy as np
import pytest

from repro.distributions import Exponential
from repro.exceptions import ModelDefinitionError
from repro.nonstate import AndGate, BasicEvent, FaultTree, KofNGate, NotGate, OrGate


def ev(name, p):
    return BasicEvent.fixed(name, p)


class TestGateSemantics:
    def test_or_gate(self):
        tree = FaultTree(OrGate([ev("a", 0.1), ev("b", 0.2)]))
        assert tree.top_event_probability() == pytest.approx(1 - 0.9 * 0.8)

    def test_and_gate(self):
        tree = FaultTree(AndGate([ev("a", 0.1), ev("b", 0.2)]))
        assert tree.top_event_probability() == pytest.approx(0.02)

    def test_nested_gates(self):
        tree = FaultTree(OrGate([AndGate([ev("a", 0.1), ev("b", 0.2)]), ev("c", 0.3)]))
        assert tree.top_event_probability() == pytest.approx(1 - (1 - 0.02) * 0.7)

    def test_kofn_gate(self):
        from math import comb

        events = [ev(f"e{i}", 0.2) for i in range(5)]
        tree = FaultTree(KofNGate(3, events))
        expected = sum(comb(5, i) * 0.2**i * 0.8 ** (5 - i) for i in range(3, 6))
        assert tree.top_event_probability() == pytest.approx(expected)

    def test_not_gate_non_coherent(self):
        tree = FaultTree(NotGate(ev("a", 0.3)))
        assert not tree.is_coherent
        assert tree.top_event_probability() == pytest.approx(0.7)

    def test_xor_style_combination(self):
        # (a & !b) | (!a & b)
        a, b = ev("a", 0.3), ev("b", 0.4)
        tree = FaultTree(OrGate([AndGate([a, NotGate(b)]), AndGate([NotGate(a), b])]))
        assert tree.top_event_probability() == pytest.approx(0.3 * 0.6 + 0.7 * 0.4)

    def test_empty_gate_rejected(self):
        with pytest.raises(ModelDefinitionError):
            OrGate([])

    def test_kofn_invalid_k(self):
        with pytest.raises(ModelDefinitionError):
            KofNGate(4, [ev("a", 0.1), ev("b", 0.1)])

    def test_non_node_child_rejected(self):
        with pytest.raises(ModelDefinitionError):
            AndGate([ev("a", 0.1), "not-a-node"])


class TestRepeatedEvents:
    def test_repeated_event_exact(self):
        # top = (a & b) | (a & c); shared a must not be double-counted.
        a, b, c = ev("a", 0.5), ev("b", 0.5), ev("c", 0.5)
        tree = FaultTree(OrGate([AndGate([a, b]), AndGate([a, c])]))
        assert tree.top_event_probability() == pytest.approx(0.5 * (1 - 0.25))

    def test_naive_product_would_be_wrong(self):
        a, b, c = ev("a", 0.5), ev("b", 0.5), ev("c", 0.5)
        tree = FaultTree(OrGate([AndGate([a, b]), AndGate([a, c])]))
        naive = 1 - (1 - 0.25) ** 2  # treats the two AND terms as independent
        assert tree.top_event_probability() != pytest.approx(naive)

    def test_same_name_distinct_component_rejected(self):
        with pytest.raises(ModelDefinitionError):
            FaultTree(OrGate([ev("a", 0.1), ev("a", 0.2)]))

    def test_shared_event_object_allowed(self):
        a = ev("a", 0.1)
        tree = FaultTree(OrGate([a, AndGate([a, ev("b", 0.2)])]))
        assert tree.top_event_probability() == pytest.approx(0.1)


class TestCutSets:
    def test_minimal_cut_sets(self):
        tree = FaultTree(OrGate([AndGate([ev("a", 0.1), ev("b", 0.1)]), ev("c", 0.1)]))
        assert tree.minimal_cut_sets() == [frozenset({"c"}), frozenset({"a", "b"})]

    def test_mocus_agrees_with_bdd(self):
        a, b, c, d = (ev(n, 0.1) for n in "abcd")
        tree = FaultTree(AndGate([OrGate([a, b]), OrGate([c, d])]))
        assert tree.mocus_cut_sets() == tree.minimal_cut_sets()

    def test_mocus_with_repeated_events(self):
        a, b, c = ev("a", 0.1), ev("b", 0.1), ev("c", 0.1)
        tree = FaultTree(AndGate([OrGate([a, b]), OrGate([a, c])]))
        expected = [frozenset({"a"}), frozenset({"b", "c"})]
        assert tree.minimal_cut_sets() == expected
        assert tree.mocus_cut_sets() == expected

    def test_kofn_cut_sets(self):
        events = [ev(f"e{i}", 0.1) for i in range(4)]
        tree = FaultTree(KofNGate(2, events))
        cuts = tree.minimal_cut_sets()
        assert len(cuts) == 6  # C(4, 2)
        assert all(len(cs) == 2 for cs in cuts)

    def test_cut_sets_of_non_coherent_rejected(self):
        tree = FaultTree(NotGate(ev("a", 0.1)))
        with pytest.raises(ModelDefinitionError):
            tree.minimal_cut_sets()

    def test_path_sets_complement_cut_sets(self):
        tree = FaultTree(OrGate([AndGate([ev("a", 0.1), ev("b", 0.1)]), ev("c", 0.1)]))
        paths = tree.minimal_path_sets()
        assert paths == [frozenset({"a", "c"}), frozenset({"b", "c"})]

    def test_cut_set_limit(self):
        events = [ev(f"e{i}", 0.1) for i in range(6)]
        tree = FaultTree(KofNGate(2, events))
        limited = tree.minimal_cut_sets(limit=5)
        assert len(limited) <= 5


class TestTimeMeasures:
    def test_reliability_from_lifetimes(self):
        a = BasicEvent.from_rates("a", 1.0)
        b = BasicEvent.from_rates("b", 1.0)
        tree = FaultTree(AndGate([a, b]))  # parallel redundancy
        r = tree.reliability(1.0)
        expected = 1 - (1 - math.exp(-1.0)) ** 2
        assert r == pytest.approx(expected)

    def test_steady_state_availability(self):
        a = BasicEvent.from_rates("a", 1.0, 9.0)
        tree = FaultTree(OrGate([a]))
        assert tree.steady_state_availability() == pytest.approx(0.9)

    def test_mttf_single_component(self):
        a = BasicEvent.from_rates("a", 0.5)
        tree = FaultTree(OrGate([a]))
        assert tree.mttf() == pytest.approx(2.0, rel=1e-6)

    def test_from_distribution_constructor(self):
        e = BasicEvent.from_distribution("a", Exponential(2.0))
        tree = FaultTree(OrGate([e]))
        assert tree.reliability(1.0) == pytest.approx(math.exp(-2.0))

    def test_mixed_fixed_and_timed_needs_explicit_q(self):
        tree = FaultTree(OrGate([BasicEvent.from_rates("a", 1.0)]))
        with pytest.raises(ModelDefinitionError):
            tree.top_event_probability()  # no fixed probability available

    def test_explicit_q_overrides(self):
        tree = FaultTree(OrGate([ev("a", 0.5), ev("b", 0.5)]))
        assert tree.top_event_probability({"a": 0.0, "b": 0.0}) == 0.0


class TestBDDSize:
    def test_bdd_size_reported(self):
        events = [ev(f"e{i}", 0.1) for i in range(10)]
        tree = FaultTree(KofNGate(5, events))
        assert 0 < tree.bdd_size() <= 200

    def test_kofn_bdd_polynomial_not_exponential(self):
        events = [ev(f"e{i}", 0.1) for i in range(20)]
        tree = FaultTree(KofNGate(10, events))
        # DP construction: O(n*k) nodes, far below C(20,10).
        assert tree.bdd_size() < 500
