"""Unit tests for cut-set algebra: minimization, IE, SDP, bounds."""

import itertools

import pytest

from repro.exceptions import ModelDefinitionError
from repro.nonstate import (
    disjoint_products_probability,
    inclusion_exclusion,
    min_cut_upper_bound,
    minimize_cut_sets,
    rare_event_approximation,
    sum_of_disjoint_products,
    truncated_inclusion_exclusion,
)


def brute_force_union(cut_sets, q):
    """Exact P[union of cut events] by truth-table enumeration."""
    names = sorted({e for cs in cut_sets for e in cs})
    total = 0.0
    for bits in itertools.product([False, True], repeat=len(names)):
        assign = dict(zip(names, bits))
        if any(all(assign[e] for e in cs) for cs in cut_sets):
            term = 1.0
            for name in names:
                term *= q[name] if assign[name] else 1 - q[name]
            total += term
    return total


CUTS = [{"a", "b"}, {"c"}, {"a", "c"}, {"b", "d"}]
Q = {"a": 0.3, "b": 0.2, "c": 0.1, "d": 0.4}


class TestMinimize:
    def test_absorption(self):
        result = minimize_cut_sets([{"a"}, {"a", "b"}, {"c", "d"}])
        assert result == [frozenset({"a"}), frozenset({"c", "d"})]

    def test_duplicates_removed(self):
        result = minimize_cut_sets([{"a", "b"}, {"b", "a"}])
        assert result == [frozenset({"a", "b"})]

    def test_empty_cut_set_dominates(self):
        assert minimize_cut_sets([{"a"}, set()]) == [frozenset()]

    def test_deterministic_order(self):
        result = minimize_cut_sets([{"z"}, {"a"}, {"m", "n"}])
        assert result == [frozenset({"a"}), frozenset({"z"}), frozenset({"m", "n"})]


class TestInclusionExclusion:
    def test_exact_against_brute_force(self):
        assert inclusion_exclusion(CUTS, Q) == pytest.approx(brute_force_union(CUTS, Q))

    def test_single_cut(self):
        assert inclusion_exclusion([{"a", "b"}], Q) == pytest.approx(0.06)

    def test_disjoint_cuts_add(self):
        cuts = [{"a"}, {"c"}]
        assert inclusion_exclusion(cuts, Q) == pytest.approx(0.3 + 0.1 - 0.03)

    def test_missing_probability_rejected(self):
        with pytest.raises(ModelDefinitionError):
            inclusion_exclusion([{"zzz"}], Q)


class TestBonferroni:
    def test_brackets_exact(self):
        exact = brute_force_union(CUTS, Q)
        for depth in range(1, len(CUTS) + 1):
            lo, hi = truncated_inclusion_exclusion(CUTS, Q, depth)
            assert lo - 1e-12 <= exact <= hi + 1e-12

    def test_bounds_tighten_monotonically(self):
        widths = []
        for depth in range(1, len(CUTS) + 1):
            lo, hi = truncated_inclusion_exclusion(CUTS, Q, depth)
            widths.append(hi - lo)
        assert all(w2 <= w1 + 1e-12 for w1, w2 in zip(widths, widths[1:]))

    def test_full_depth_is_exact(self):
        lo, hi = truncated_inclusion_exclusion(CUTS, Q, len(CUTS))
        assert lo == pytest.approx(hi)
        assert lo == pytest.approx(brute_force_union(CUTS, Q))

    def test_depth_one_upper_is_rare_event(self):
        _, hi = truncated_inclusion_exclusion(CUTS, Q, 1)
        assert hi == pytest.approx(min(1.0, rare_event_approximation(CUTS, Q)))

    def test_invalid_depth_rejected(self):
        with pytest.raises(ModelDefinitionError):
            truncated_inclusion_exclusion(CUTS, Q, 0)


class TestRareEventAndEP:
    def test_rare_event_upper_bounds_exact(self):
        small_q = {k: v / 100 for k, v in Q.items()}
        exact = brute_force_union(CUTS, small_q)
        approx = rare_event_approximation(CUTS, small_q)
        assert approx >= exact
        assert approx == pytest.approx(exact, rel=0.05)

    def test_min_cut_upper_bound(self):
        exact = brute_force_union(CUTS, Q)
        assert min_cut_upper_bound(CUTS, Q) >= exact - 1e-12

    def test_min_cut_bound_exact_for_disjoint(self):
        cuts = [{"a"}, {"c"}]
        assert min_cut_upper_bound(cuts, Q) == pytest.approx(1 - 0.7 * 0.9)


class TestSDP:
    def test_sdp_matches_brute_force(self):
        terms = sum_of_disjoint_products(CUTS)
        assert disjoint_products_probability(terms, Q) == pytest.approx(
            brute_force_union(CUTS, Q)
        )

    def test_sdp_single_cut(self):
        terms = sum_of_disjoint_products([{"a", "b"}])
        assert terms == [(frozenset({"a", "b"}), frozenset())]

    def test_sdp_terms_are_disjoint(self):
        terms = sum_of_disjoint_products(CUTS)
        names = sorted({e for cs in CUTS for e in cs})
        # every truth assignment satisfies at most one term
        for bits in itertools.product([False, True], repeat=len(names)):
            assign = dict(zip(names, bits))
            matches = sum(
                1
                for pos, neg in terms
                if all(assign[e] for e in pos) and not any(assign[e] for e in neg)
            )
            assert matches <= 1

    def test_sdp_covers_union(self):
        terms = sum_of_disjoint_products(CUTS)
        names = sorted({e for cs in CUTS for e in cs})
        for bits in itertools.product([False, True], repeat=len(names)):
            assign = dict(zip(names, bits))
            in_union = any(all(assign[e] for e in cs) for cs in CUTS)
            in_terms = any(
                all(assign[e] for e in pos) and not any(assign[e] for e in neg)
                for pos, neg in terms
            )
            assert in_union == in_terms

    @pytest.mark.parametrize("seed", range(5))
    def test_sdp_random_families(self, seed):
        import random

        rnd = random.Random(seed)
        names = list("abcdef")
        cuts = [
            set(rnd.sample(names, rnd.randint(1, 3))) for _ in range(rnd.randint(2, 6))
        ]
        q = {n: rnd.uniform(0.05, 0.5) for n in names}
        terms = sum_of_disjoint_products(cuts)
        assert disjoint_products_probability(terms, q) == pytest.approx(
            brute_force_union(cuts, q)
        )
