"""Unit tests for importance measures."""

import math

import pytest

from repro.exceptions import ModelDefinitionError
from repro.nonstate import (
    AndGate,
    BasicEvent,
    FaultTree,
    OrGate,
    birnbaum,
    criticality,
    fussell_vesely,
    importance_table,
    risk_achievement_worth,
    risk_reduction_worth,
)

Q = {"a": 0.1, "b": 0.01, "c": 0.2}


def tree():
    a, b, c = (BasicEvent.fixed(n, Q[n]) for n in "abc")
    return FaultTree(OrGate([a, AndGate([b, c])]))


class TestBirnbaum:
    def test_or_component_derivative(self):
        t = tree()
        # Q = 1 - (1-qa)(1 - qb qc); dQ/dqa = 1 - qb*qc
        assert birnbaum(t.top_event_probability, Q, "a") == pytest.approx(1 - 0.01 * 0.2)

    def test_and_component_derivative(self):
        t = tree()
        # dQ/dqb = (1-qa) * qc
        assert birnbaum(t.top_event_probability, Q, "b") == pytest.approx(0.9 * 0.2)

    def test_series_single_point(self):
        t = FaultTree(OrGate([BasicEvent.fixed("a", 0.5)]))
        assert birnbaum(t.top_event_probability, {"a": 0.5}, "a") == pytest.approx(1.0)

    def test_unknown_component_rejected(self):
        t = tree()
        with pytest.raises(ModelDefinitionError):
            birnbaum(t.top_event_probability, Q, "zzz")


class TestRatioMeasures:
    def test_fussell_vesely_or_component(self):
        t = tree()
        q_sys = t.top_event_probability(Q)
        q_without_a = t.top_event_probability({**Q, "a": 0.0})
        assert fussell_vesely(t.top_event_probability, Q, "a") == pytest.approx(
            (q_sys - q_without_a) / q_sys
        )

    def test_criticality_scaling(self):
        t = tree()
        q_sys = t.top_event_probability(Q)
        expected = birnbaum(t.top_event_probability, Q, "c") * Q["c"] / q_sys
        assert criticality(t.top_event_probability, Q, "c") == pytest.approx(expected)

    def test_raw_at_least_one(self):
        t = tree()
        for name in Q:
            assert risk_achievement_worth(t.top_event_probability, Q, name) >= 1.0

    def test_rrw_at_least_one(self):
        t = tree()
        for name in Q:
            assert risk_reduction_worth(t.top_event_probability, Q, name) >= 1.0

    def test_rrw_infinite_for_only_cut(self):
        t = FaultTree(OrGate([BasicEvent.fixed("a", 0.5)]))
        assert math.isinf(risk_reduction_worth(t.top_event_probability, {"a": 0.5}, "a"))


class TestTable:
    def test_table_consistent_with_individuals(self):
        t = tree()
        table = importance_table(t.top_event_probability, Q)
        for name in Q:
            assert table[name].birnbaum == pytest.approx(
                birnbaum(t.top_event_probability, Q, name)
            )
            assert table[name].fussell_vesely == pytest.approx(
                fussell_vesely(t.top_event_probability, Q, name)
            )

    def test_dominant_component_ranked_first(self):
        t = tree()
        table = importance_table(t.top_event_probability, Q)
        # "a" is a single-point-of-failure OR input: highest Birnbaum.
        assert table["a"].birnbaum > table["b"].birnbaum
        assert table["a"].birnbaum > table["c"].birnbaum

    def test_works_on_rbd_up_function(self):
        from repro.nonstate import Component, ReliabilityBlockDiagram, series

        rbd = ReliabilityBlockDiagram(
            series(Component.fixed("a", 0.1), Component.fixed("b", 0.2))
        )

        def top(q):
            return 1.0 - rbd.system_up_probability({k: 1 - v for k, v in q.items()})

        table = importance_table(top, {"a": 0.1, "b": 0.2})
        # series: Birnbaum of a = availability of b
        assert table["a"].birnbaum == pytest.approx(0.8)
        assert table["b"].birnbaum == pytest.approx(0.9)
