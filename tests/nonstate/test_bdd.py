"""Unit tests for the ROBDD engine."""

import itertools

import pytest

from repro.exceptions import ModelDefinitionError
from repro.nonstate import BDD, TERMINAL_ONE, TERMINAL_ZERO


class TestBasics:
    def test_terminals(self):
        mgr = BDD(["a"])
        assert mgr.apply_and(TERMINAL_ONE, TERMINAL_ONE) == TERMINAL_ONE
        assert mgr.apply_and(TERMINAL_ONE, TERMINAL_ZERO) == TERMINAL_ZERO
        assert mgr.apply_or(TERMINAL_ZERO, TERMINAL_ZERO) == TERMINAL_ZERO

    def test_var_and_negation(self):
        mgr = BDD(["a"])
        a = mgr.var("a")
        assert mgr.apply_not(mgr.apply_not(a)) == a
        assert mgr.apply_and(a, mgr.apply_not(a)) == TERMINAL_ZERO
        assert mgr.apply_or(a, mgr.apply_not(a)) == TERMINAL_ONE

    def test_nvar_equals_not_var(self):
        mgr = BDD(["a"])
        assert mgr.nvar("a") == mgr.apply_not(mgr.var("a"))

    def test_unknown_variable_rejected(self):
        mgr = BDD(["a"])
        with pytest.raises(ModelDefinitionError):
            mgr.var("zzz")

    def test_duplicate_order_rejected(self):
        with pytest.raises(ModelDefinitionError):
            BDD(["a", "a"])

    def test_hash_consing_dedupes(self):
        mgr = BDD(["a", "b"])
        f1 = mgr.apply_or(mgr.var("a"), mgr.var("b"))
        f2 = mgr.apply_or(mgr.var("a"), mgr.var("b"))
        assert f1 == f2

    def test_idempotence_and_commutativity(self):
        mgr = BDD(["a", "b"])
        a, b = mgr.var("a"), mgr.var("b")
        assert mgr.apply_and(a, a) == a
        assert mgr.apply_or(a, a) == a
        assert mgr.apply_and(a, b) == mgr.apply_and(b, a)
        assert mgr.apply_or(a, b) == mgr.apply_or(b, a)

    def test_xor(self):
        mgr = BDD(["a", "b"])
        f = mgr.apply_xor(mgr.var("a"), mgr.var("b"))
        assert mgr.evaluate(f, {"a": True, "b": False})
        assert mgr.evaluate(f, {"a": False, "b": True})
        assert not mgr.evaluate(f, {"a": True, "b": True})
        assert not mgr.evaluate(f, {"a": False, "b": False})


class TestEvaluation:
    def test_prob_or(self):
        mgr = BDD(["a", "b"])
        f = mgr.apply_or(mgr.var("a"), mgr.var("b"))
        assert mgr.prob(f, {"a": 0.1, "b": 0.2}) == pytest.approx(1 - 0.9 * 0.8)

    def test_prob_and(self):
        mgr = BDD(["a", "b"])
        f = mgr.apply_and(mgr.var("a"), mgr.var("b"))
        assert mgr.prob(f, {"a": 0.1, "b": 0.2}) == pytest.approx(0.02)

    def test_prob_shared_variable_exact(self):
        # f = (a & b) | (a & c): naive product rules double-count a.
        mgr = BDD(["a", "b", "c"])
        a, b, c = mgr.var("a"), mgr.var("b"), mgr.var("c")
        f = mgr.apply_or(mgr.apply_and(a, b), mgr.apply_and(a, c))
        probs = {"a": 0.5, "b": 0.5, "c": 0.5}
        # exact: P[a & (b | c)] = 0.5 * 0.75
        assert mgr.prob(f, probs) == pytest.approx(0.375)

    def test_prob_matches_truth_table(self):
        mgr = BDD(["x", "y", "z"])
        x, y, z = mgr.var("x"), mgr.var("y"), mgr.var("z")
        f = mgr.apply_or(mgr.apply_and(x, mgr.apply_not(y)), z)
        probs = {"x": 0.3, "y": 0.6, "z": 0.2}
        brute = 0.0
        for bits in itertools.product([False, True], repeat=3):
            assign = dict(zip("xyz", bits))
            if mgr.evaluate(f, assign):
                term = 1.0
                for name, value in assign.items():
                    term *= probs[name] if value else 1 - probs[name]
                brute += term
        assert mgr.prob(f, probs) == pytest.approx(brute)

    def test_prob_missing_variable_rejected(self):
        mgr = BDD(["a", "b"])
        f = mgr.apply_and(mgr.var("a"), mgr.var("b"))
        with pytest.raises(ModelDefinitionError):
            mgr.prob(f, {"a": 0.5})

    def test_support(self):
        mgr = BDD(["a", "b", "c"])
        f = mgr.apply_and(mgr.var("a"), mgr.var("c"))
        assert mgr.support(f) == ["a", "c"]

    def test_restrict(self):
        mgr = BDD(["a", "b"])
        f = mgr.apply_and(mgr.var("a"), mgr.var("b"))
        assert mgr.restrict(f, "a", True) == mgr.var("b")
        assert mgr.restrict(f, "a", False) == TERMINAL_ZERO


class TestKofN:
    @pytest.mark.parametrize("n,k", [(3, 2), (5, 3), (7, 4), (10, 1), (10, 10)])
    def test_at_least_k_counts(self, n, k):
        names = [f"v{i}" for i in range(n)]
        mgr = BDD(names)
        f = mgr.at_least_k(names, k)
        for bits in itertools.product([False, True], repeat=n):
            expected = sum(bits) >= k
            assert mgr.evaluate(f, dict(zip(names, bits))) == expected

    def test_k_zero_and_k_over_n(self):
        mgr = BDD(["a", "b"])
        assert mgr.at_least_k(["a", "b"], 0) == TERMINAL_ONE
        assert mgr.at_least_k(["a", "b"], 3) == TERMINAL_ZERO

    def test_at_least_k_prob_binomial(self):
        n, k, p = 8, 5, 0.3
        from math import comb

        names = [f"v{i}" for i in range(n)]
        mgr = BDD(names)
        f = mgr.at_least_k(names, k)
        expected = sum(comb(n, i) * p**i * (1 - p) ** (n - i) for i in range(k, n + 1))
        assert mgr.prob(f, {name: p for name in names}) == pytest.approx(expected)


class TestStructuralOps:
    def test_negate_variables(self):
        mgr = BDD(["a", "b"])
        f = mgr.apply_and(mgr.var("a"), mgr.apply_not(mgr.var("b")))
        g = mgr.negate_variables(f)
        for a in (False, True):
            for b in (False, True):
                assert mgr.evaluate(g, {"a": a, "b": b}) == mgr.evaluate(
                    f, {"a": not a, "b": not b}
                )

    def test_dual_of_and_is_or(self):
        mgr = BDD(["a", "b"])
        f = mgr.apply_and(mgr.var("a"), mgr.var("b"))
        assert mgr.dual(f) == mgr.apply_or(mgr.var("a"), mgr.var("b"))

    def test_minimal_cut_sets_simple(self):
        mgr = BDD(["a", "b", "c"])
        a, b, c = mgr.var("a"), mgr.var("b"), mgr.var("c")
        f = mgr.apply_or(mgr.apply_and(a, b), c)
        cuts = mgr.minimal_cut_sets(f)
        assert cuts == [frozenset({"c"}), frozenset({"a", "b"})]

    def test_minimal_cut_sets_absorption(self):
        # (a) | (a & b): the second implicant is absorbed.
        mgr = BDD(["a", "b"])
        f = mgr.apply_or(mgr.var("a"), mgr.apply_and(mgr.var("a"), mgr.var("b")))
        assert mgr.minimal_cut_sets(f) == [frozenset({"a"})]

    def test_count_nodes(self):
        mgr = BDD(["a", "b", "c"])
        f = mgr.at_least_k(["a", "b", "c"], 2)
        assert mgr.count_nodes(f) >= 3
