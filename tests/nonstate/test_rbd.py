"""Unit tests for reliability block diagrams."""

import math
from math import comb

import numpy as np
import pytest

from repro.distributions import Exponential
from repro.exceptions import ModelDefinitionError
from repro.nonstate import (
    BasicBlock,
    Component,
    KofN,
    Parallel,
    ReliabilityBlockDiagram,
    Series,
    k_of_n,
    parallel,
    series,
)


def comp(name, p_fail):
    return Component.fixed(name, p_fail)


class TestSeriesParallel:
    def test_series_multiplies(self):
        rbd = ReliabilityBlockDiagram(series(comp("a", 0.1), comp("b", 0.2)))
        assert rbd.steady_state_availability() == pytest.approx(0.9 * 0.8)

    def test_parallel_complements(self):
        rbd = ReliabilityBlockDiagram(parallel(comp("a", 0.1), comp("b", 0.2)))
        assert rbd.steady_state_availability() == pytest.approx(1 - 0.1 * 0.2)

    def test_nested_structure(self):
        # (a || b) in series with c
        rbd = ReliabilityBlockDiagram(series(parallel(comp("a", 0.1), comp("b", 0.1)), comp("c", 0.05)))
        assert rbd.steady_state_availability() == pytest.approx((1 - 0.01) * 0.95)

    def test_single_component_passthrough(self):
        rbd = ReliabilityBlockDiagram(comp("a", 0.3))
        assert rbd.steady_state_availability() == pytest.approx(0.7)

    def test_empty_series_rejected(self):
        with pytest.raises(ModelDefinitionError):
            Series([])

    def test_empty_parallel_rejected(self):
        with pytest.raises(ModelDefinitionError):
            Parallel([])

    def test_series_reliability_of_exponentials_adds_rates(self):
        a = Component.from_rates("a", 1.0)
        b = Component.from_rates("b", 2.0)
        rbd = ReliabilityBlockDiagram(series(a, b))
        assert rbd.reliability(0.5) == pytest.approx(math.exp(-1.5))

    def test_parallel_mttf(self):
        # two exponential(1) in parallel: MTTF = 1 + 1/2
        a = Component.from_rates("a", 1.0)
        b = Component.from_rates("b", 1.0)
        rbd = ReliabilityBlockDiagram(parallel(a, b))
        assert rbd.mttf() == pytest.approx(1.5, rel=1e-6)

    def test_reliability_vectorized(self):
        a = Component.from_rates("a", 1.0)
        rbd = ReliabilityBlockDiagram(series(a))
        ts = np.array([0.0, 0.5, 1.0])
        np.testing.assert_allclose(rbd.reliability(ts), np.exp(-ts))


class TestKofN:
    @pytest.mark.parametrize("n,k,p", [(3, 2, 0.1), (5, 3, 0.2), (7, 5, 0.05)])
    def test_identical_components_binomial(self, n, k, p):
        comps = [comp(f"c{i}", p) for i in range(n)]
        rbd = ReliabilityBlockDiagram(KofN(k, comps))
        expected = sum(comb(n, i) * (1 - p) ** i * p ** (n - i) for i in range(k, n + 1))
        assert rbd.steady_state_availability() == pytest.approx(expected)

    def test_heterogeneous_matches_enumeration(self):
        ps = [0.1, 0.2, 0.3, 0.4]
        comps = [comp(f"c{i}", p) for i, p in enumerate(ps)]
        rbd = ReliabilityBlockDiagram(KofN(2, comps))
        import itertools

        brute = 0.0
        for bits in itertools.product([0, 1], repeat=4):  # 1 = up
            if sum(bits) >= 2:
                term = 1.0
                for p, bit in zip(ps, bits):
                    term *= (1 - p) if bit else p
                brute += term
        assert rbd.steady_state_availability() == pytest.approx(brute)

    def test_k_equal_n_is_series(self):
        comps = [comp("a", 0.1), comp("b", 0.2)]
        rbd = ReliabilityBlockDiagram(KofN(2, comps))
        assert rbd.steady_state_availability() == pytest.approx(0.9 * 0.8)

    def test_k_one_is_parallel(self):
        comps = [comp("a", 0.1), comp("b", 0.2)]
        rbd = ReliabilityBlockDiagram(KofN(1, comps))
        assert rbd.steady_state_availability() == pytest.approx(1 - 0.02)

    def test_invalid_k_rejected(self):
        with pytest.raises(ModelDefinitionError):
            KofN(0, [comp("a", 0.1)])
        with pytest.raises(ModelDefinitionError):
            KofN(3, [comp("a", 0.1), comp("b", 0.1)])

    def test_k_of_n_convenience(self):
        block = k_of_n(2, comp("a", 0.1), comp("b", 0.1), comp("c", 0.1))
        assert isinstance(block, KofN)
        assert block.k == 2


class TestRepeatedComponents:
    def test_repeated_component_detected(self):
        a = comp("a", 0.1)
        rbd = ReliabilityBlockDiagram(parallel(series(a, comp("b", 0.2)), series(a, comp("c", 0.3))))
        assert rbd.has_repeated_components

    def test_repeated_component_exact(self):
        # sys up = (a & b) | (a & c) with up-probs; exact = P[a]*(1-(1-P[b])(1-P[c]))
        a, b, c = comp("a", 0.5), comp("b", 0.5), comp("c", 0.5)
        rbd = ReliabilityBlockDiagram(parallel(series(a, b), series(a, c)))
        expected = 0.5 * (1 - 0.5 * 0.5)
        assert rbd.steady_state_availability() == pytest.approx(expected)

    def test_distinct_objects_same_name_rejected(self):
        with pytest.raises(ModelDefinitionError):
            ReliabilityBlockDiagram(series(comp("a", 0.1), comp("a", 0.2)))


class TestStructureSets:
    def test_minimal_path_sets_series(self):
        rbd = ReliabilityBlockDiagram(series(comp("a", 0.1), comp("b", 0.1)))
        assert rbd.minimal_path_sets() == [frozenset({"a", "b"})]

    def test_minimal_cut_sets_series(self):
        rbd = ReliabilityBlockDiagram(series(comp("a", 0.1), comp("b", 0.1)))
        assert rbd.minimal_cut_sets() == [frozenset({"a"}), frozenset({"b"})]

    def test_minimal_cut_sets_parallel(self):
        rbd = ReliabilityBlockDiagram(parallel(comp("a", 0.1), comp("b", 0.1)))
        assert rbd.minimal_cut_sets() == [frozenset({"a", "b"})]

    def test_2_of_3_cut_sets_are_pairs(self):
        comps = [comp(f"c{i}", 0.1) for i in range(3)]
        rbd = ReliabilityBlockDiagram(KofN(2, comps))
        cuts = rbd.minimal_cut_sets()
        assert len(cuts) == 3
        assert all(len(cs) == 2 for cs in cuts)

    def test_missing_probability_rejected(self):
        rbd = ReliabilityBlockDiagram(series(comp("a", 0.1)))
        with pytest.raises(ModelDefinitionError):
            rbd.system_up_probability({})


class TestMixedMeasures:
    def test_availability_transient_approaches_steady(self):
        a = Component.from_rates("a", 1.0, 9.0)
        b = Component.from_rates("b", 1.0, 9.0)
        rbd = ReliabilityBlockDiagram(parallel(a, b))
        assert rbd.availability(100.0) == pytest.approx(rbd.steady_state_availability(), abs=1e-9)

    def test_availability_at_zero_is_one(self):
        a = Component.from_rates("a", 1.0, 9.0)
        rbd = ReliabilityBlockDiagram(series(a))
        assert rbd.availability(0.0) == pytest.approx(1.0)

    def test_downtime_minutes_per_year(self):
        a = Component.from_rates("a", 1.0, 99.0)  # A = 0.99
        rbd = ReliabilityBlockDiagram(series(a))
        assert rbd.downtime_minutes_per_year() == pytest.approx(0.01 * 525_600)

    def test_nines(self):
        a = Component.fixed("a", 1e-4)
        rbd = ReliabilityBlockDiagram(series(a))
        assert ReliabilityBlockDiagram(series(a)).nines() == pytest.approx(4.0)
