"""Property-based tests for non-state-space models (hypothesis).

Core invariants: BDD quantification equals brute-force truth-table
evaluation on random trees; coherent structure functions are monotone;
bounds always bracket the exact value; cut-set algebra round-trips.
"""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nonstate import (
    AndGate,
    BasicEvent,
    FaultTree,
    FaultTreeBounds,
    KofNGate,
    OrGate,
    disjoint_products_probability,
    inclusion_exclusion,
    sum_of_disjoint_products,
)

probs = st.floats(min_value=0.01, max_value=0.7)


@st.composite
def coherent_trees(draw, max_events=6):
    """Random coherent fault trees over a bounded event set."""
    n_events = draw(st.integers(min_value=2, max_value=max_events))
    event_probs = [draw(probs) for _ in range(n_events)]
    events = [BasicEvent.fixed(f"e{i}", p) for i, p in enumerate(event_probs)]

    def subtree(depth):
        if depth == 0 or draw(st.booleans()):
            return events[draw(st.integers(0, n_events - 1))]
        kind = draw(st.sampled_from(["and", "or", "kofn"]))
        n_children = draw(st.integers(2, 3))
        children = [subtree(depth - 1) for _ in range(n_children)]
        if kind == "and":
            return AndGate(children)
        if kind == "or":
            return OrGate(children)
        k = draw(st.integers(1, n_children))
        return KofNGate(k, children)

    top = OrGate([subtree(2), subtree(2)])
    return FaultTree(top)


def brute_force_probability(tree):
    names = list(tree.basic_events)
    q = {n: tree.basic_events[n].component.probability for n in names}
    manager, node = tree._ensure_bdd()
    total = 0.0
    for bits in itertools.product([False, True], repeat=len(names)):
        assign = dict(zip(names, bits))
        if manager.evaluate(node, assign):
            term = 1.0
            for name in names:
                term *= q[name] if assign[name] else 1 - q[name]
            total += term
    return total


@settings(max_examples=60, deadline=None)
@given(tree=coherent_trees())
def test_bdd_probability_equals_truth_table(tree):
    assert tree.top_event_probability() == pytest.approx(brute_force_probability(tree))


@settings(max_examples=40, deadline=None)
@given(tree=coherent_trees())
def test_coherent_monotone_in_each_event(tree):
    names = list(tree.basic_events)
    q = {n: tree.basic_events[n].component.probability for n in names}
    base = tree.top_event_probability(q)
    for name in names:
        higher = dict(q)
        higher[name] = min(1.0, q[name] + 0.2)
        assert tree.top_event_probability(higher) >= base - 1e-12


@settings(max_examples=40, deadline=None)
@given(tree=coherent_trees())
def test_bounds_bracket_exact(tree):
    analysis = FaultTreeBounds(tree)
    exact = analysis.exact()
    lo, hi = analysis.esary_proschan()
    assert lo - 1e-9 <= exact <= hi + 1e-9
    lo, hi = analysis.bonferroni(min(2, len(analysis.cut_sets)))
    assert lo - 1e-9 <= exact <= hi + 1e-9


@settings(max_examples=40, deadline=None)
@given(tree=coherent_trees())
def test_cut_sets_reconstruct_probability(tree):
    q = {n: tree.basic_events[n].component.probability for n in tree.basic_events}
    cuts = tree.minimal_cut_sets()
    if not cuts or any(len(c) == 0 for c in cuts):
        return
    if len(cuts) > 8:
        return  # keep inclusion-exclusion affordable
    assert inclusion_exclusion(cuts, q) == pytest.approx(tree.top_event_probability())


@settings(max_examples=40, deadline=None)
@given(tree=coherent_trees())
def test_sdp_equals_bdd(tree):
    q = {n: tree.basic_events[n].component.probability for n in tree.basic_events}
    cuts = tree.minimal_cut_sets()
    if not cuts or any(len(c) == 0 for c in cuts) or len(cuts) > 10:
        return
    terms = sum_of_disjoint_products(cuts)
    assert disjoint_products_probability(terms, q) == pytest.approx(
        tree.top_event_probability()
    )


@settings(max_examples=30, deadline=None)
@given(tree=coherent_trees())
def test_mocus_equals_bdd_cut_sets(tree):
    assert tree.mocus_cut_sets() == tree.minimal_cut_sets()


@settings(max_examples=30, deadline=None)
@given(tree=coherent_trees())
def test_path_and_cut_sets_are_duals(tree):
    # Every path set must intersect every cut set.
    paths = tree.minimal_path_sets()
    cuts = tree.minimal_cut_sets()
    for path in paths:
        for cut in cuts:
            assert path & cut, f"path {path} misses cut {cut}"
