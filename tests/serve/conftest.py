"""Shared serve-test fixtures: one warm registry per test session.

Building :func:`repro.serve.default_registry` compiles, analyzes and
probes all nine case studies — a second or two of work that would
otherwise repeat per test.  Registration is startup-time by contract
(the registry is immutable while serving), so sharing the warmed
entries through :meth:`~repro.serve.ModelRegistry.subset` is safe; each
test still gets its *own* registry object.
"""

import pytest

from repro.serve import default_registry


@pytest.fixture(scope="session")
def warm_registry():
    """The nine case studies, compiled + analyzed + probed once."""
    return default_registry()


@pytest.fixture
def registry(warm_registry):
    """A per-test registry sharing the session's warm entries."""
    return warm_registry.subset(warm_registry.names())
