"""Transport-free API contract tests: ``ServeApp.handle`` directly."""

import json

import pytest

from repro.obs import ThreadSafeMetricsRegistry
from repro.serve import ModelRegistry, ServeApp


@pytest.fixture
def app(registry):
    app = ServeApp(registry, flush_window=0.001)
    yield app
    app.close()


def call(app, method, path, body=b""):
    status, content_type, payload = app.handle(method, path, body)
    if content_type.startswith("application/json"):
        return status, json.loads(payload)
    return status, payload.decode()


class TestRoutes:
    def test_index(self, app):
        status, payload = call(app, "GET", "/")
        assert status == 200
        assert "GET /metrics" in payload["endpoints"]
        assert "bladecenter" in payload["models"]

    def test_healthz(self, app):
        status, payload = call(app, "GET", "/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["models"] == 9
        assert payload["batching"] is True
        assert payload["uptime_s"] >= 0.0

    def test_models_listing(self, app):
        status, payload = call(app, "GET", "/models")
        assert status == 200
        names = [m["name"] for m in payload["models"]]
        assert names == sorted(names) and "sip" in names

    def test_model_detail_includes_size_and_diagnostics(self, app):
        status, payload = call(app, "GET", "/models/wfs")
        assert status == 200
        assert payload["size"]["n_states"] == 7
        assert payload["diagnostics"]["ok"] is True
        assert payload["defaults"]["n_workstations"] == 4

    def test_trailing_slash_tolerated(self, app):
        status, _ = call(app, "GET", "/models/")
        assert status == 200

    def test_unknown_model_404(self, app):
        status, payload = call(app, "GET", "/models/nope")
        assert status == 404
        assert payload["error"]["error_type"] == "UnknownModel"
        assert "bladecenter" in payload["error"]["message"]

    def test_unknown_endpoint_404(self, app):
        status, payload = call(app, "GET", "/frobnicate")
        assert status == 404
        assert payload["error"]["error_type"] == "UnknownEndpoint"

    def test_wrong_method_405(self, app):
        status, payload = call(app, "POST", "/healthz", b"{}")
        assert status == 405
        assert payload["error"]["error_type"] == "MethodNotAllowed"
        status, payload = call(app, "GET", "/models/wfs/evaluate")
        assert status == 405


class TestEvaluate:
    def test_single_point_object(self, app, registry):
        expected = registry.get("wfs").evaluate({"n_workstations": 6.0})
        status, payload = call(
            app, "POST", "/models/wfs/evaluate", b'{"n_workstations": 6}'
        )
        assert status == 200
        assert payload["value"] == expected
        assert payload["stats"]["n_points"] == 1
        assert payload["stats"]["batched"] is True

    def test_point_array(self, app, registry):
        body = json.dumps([{"coverage": 0.9}, {"coverage": 0.99}]).encode()
        status, payload = call(app, "POST", "/models/telecom/evaluate", body)
        assert status == 200
        expected = [
            registry.get("telecom").evaluate({"coverage": c}) for c in (0.9, 0.99)
        ]
        assert payload["values"] == expected

    def test_malformed_json_400(self, app):
        status, payload = call(app, "POST", "/models/wfs/evaluate", b"{nope")
        assert status == 400
        assert payload["error"]["error_type"] == "MalformedRequest"

    def test_non_numeric_parameter_400(self, app):
        status, payload = call(
            app, "POST", "/models/wfs/evaluate", b'{"n_workstations": "four"}'
        )
        assert status == 400
        assert "must be a number" in payload["error"]["message"]

    def test_wrong_shape_400(self, app):
        for body in (b"42", b"[]", b"[42]"):
            status, payload = call(app, "POST", "/models/wfs/evaluate", body)
            assert status == 400, body

    def test_bad_parameter_name_is_structured_422(self, app):
        status, payload = call(
            app, "POST", "/models/wfs/evaluate", b'{"bogus_name": 1.0}'
        )
        assert status == 422
        assert payload["value"] is None
        (error,) = payload["errors"]
        assert error["error_type"] == "ModelDefinitionError"
        assert "bogus_name" in error["message"]

    def test_partial_batch_failure_is_200_with_records(self, app):
        body = json.dumps([{"k_required": 2}, {"k_required": 2.5}]).encode()
        status, payload = call(app, "POST", "/models/wfs/evaluate", body)
        assert status == 200
        assert payload["values"][0] is not None
        assert payload["values"][1] is None
        (error,) = payload["errors"]
        assert error["index"] == 1
        assert payload["stats"]["n_failed"] == 1

    def test_cache_hits_reported(self, app):
        body = b'{"n_workstations": 5}'
        status, first = call(app, "POST", "/models/wfs/evaluate", body)
        assert first["stats"]["cache_hits"] == 0
        status, second = call(app, "POST", "/models/wfs/evaluate", body)
        assert second["stats"]["cache_hits"] == 1
        assert second["value"] == first["value"]

    def test_failures_never_cached(self, app):
        body = b'{"bogus_name": 1.0}'
        call(app, "POST", "/models/wfs/evaluate", body)
        status, payload = call(app, "POST", "/models/wfs/evaluate", body)
        assert status == 422  # re-evaluated, not replayed from cache
        assert payload["stats"]["cache_hits"] == 0

    def test_naive_mode_matches_batched(self, registry):
        batched = ServeApp(registry, flush_window=0.001)
        naive = ServeApp(registry, batching=False)
        body = b'{"n_nodes": 6, "k_required": 3}'
        try:
            _, from_batched = call(batched, "POST", "/models/sip/evaluate", body)
            _, from_naive = call(naive, "POST", "/models/sip/evaluate", body)
        finally:
            batched.close()
            naive.close()
        assert from_batched["value"] == from_naive["value"]
        assert from_naive["stats"]["batched"] is False


class TestMetricsEndpoint:
    def test_prometheus_text_format(self, app):
        call(app, "GET", "/healthz")
        call(app, "POST", "/models/wfs/evaluate", b"{}")
        status, text = call(app, "GET", "/metrics")
        assert status == 200
        assert "# TYPE repro_serve_requests counter" in text
        assert 'route="/models/{name}/evaluate"' in text
        assert "# TYPE repro_serve_request_seconds histogram" in text
        assert "repro_serve_request_seconds_bucket" in text

    def test_engine_metrics_surface_through_batcher(self, app):
        call(app, "POST", "/models/wfs/evaluate", b"{}")
        _, text = call(app, "GET", "/metrics")
        assert "repro_serve_batch_flushes" in text
        assert "repro_engine_" in text  # evaluate_batch's own counters

    def test_shared_metrics_registry_injectable(self, registry):
        metrics = ThreadSafeMetricsRegistry()
        app = ServeApp(registry, metrics=metrics, flush_window=0.001)
        try:
            call(app, "GET", "/healthz")
        finally:
            app.close()
        assert metrics.summary()["serve.requests{route=/healthz,status=200}"] == 1.0


class TestInternalErrors:
    def test_handler_exception_becomes_structured_500(self):
        registry = ModelRegistry()
        registry.register("opaque", lambda a: 1.0, probe=False)
        app = ServeApp(registry, batching=False, cache_size=0)
        # Sabotage after construction: description access works, but
        # describe() explodes when the detail route renders it.
        entry = registry.get("opaque")
        entry.size = object()  # json.dumps will choke on this
        try:
            status, _, payload = app.handle("GET", "/models/opaque")
            body = json.loads(payload)
        finally:
            app.close()
        assert status == 500
        assert body["error"]["error_type"] == "TypeError"
        assert "Traceback" not in payload.decode()

    def test_recent_spans_ring(self, app):
        call(app, "GET", "/healthz")
        call(app, "GET", "/models")
        spans = list(app.recent_spans)
        assert spans[-1]["attributes"]["path"] == "/models"
        assert spans[-1]["attributes"]["status"] == 200

    def test_requests_after_close_get_503(self, registry):
        app = ServeApp(registry, flush_window=0.001)
        app.close()
        status, _, payload = app.handle("GET", "/healthz")
        assert status == 503
        assert json.loads(payload)["error"]["error_type"] == "ServerClosing"
