"""Micro-batcher contract: coalescing, dedup, determinism, draining.

The central claim — batched evaluation is *bit-identical* to serial
direct evaluation — holds because a flush runs the exact same
:func:`~repro.engine.evaluate_batch` path a direct caller would, just
over more points at once.
"""

import threading

import pytest

from repro.engine import evaluate_batch
from repro.obs import ThreadSafeMetricsRegistry
from repro.serve import EvaluationFailed, MicroBatcher, ModelRegistry, UnknownModelError


@pytest.fixture
def tiny_registry():
    registry = ModelRegistry()
    registry.register("square", lambda a: a["x"] ** 2, probe=False)

    def picky(assignment):
        if assignment.get("x", 0.0) < 0.0:
            raise ValueError("negative x")
        return assignment.get("x", 0.0) + 1.0

    registry.register("picky", picky, probe=False)
    return registry


def make_batcher(registry, **kwargs):
    kwargs.setdefault("metrics", ThreadSafeMetricsRegistry())
    return MicroBatcher(registry, **kwargs)


class TestBatching:
    def test_single_submit_resolves(self, tiny_registry):
        batcher = make_batcher(tiny_registry)
        try:
            assert batcher.submit("square", {"x": 3.0}).result(timeout=10) == 9.0
        finally:
            batcher.close()

    def test_concurrent_submits_identical_to_serial(self, tiny_registry):
        # N client threads race distinct points through the batcher;
        # every value must equal the direct serial engine answer bit
        # for bit, regardless of how the flushes sliced the queue.
        points = [{"x": 0.1 * i} for i in range(40)]
        serial = evaluate_batch(lambda a: a["x"] ** 2, points).outputs
        batcher = make_batcher(
            tiny_registry, max_batch=8, flush_window=0.005
        )
        results = [None] * len(points)
        barrier = threading.Barrier(len(points))

        def client(i):
            barrier.wait()
            results[i] = batcher.submit("square", points[i]).result(timeout=30)

        threads = [threading.Thread(target=client, args=(i,)) for i in range(len(points))]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        batcher.close()
        assert results == list(serial)

    def test_hot_point_deduplicated_within_flush(self, tiny_registry):
        calls = []
        lock = threading.Lock()

        def counting(assignment):
            with lock:
                calls.append(dict(assignment))
            return assignment["x"]

        registry = ModelRegistry()
        registry.register("counting", counting, probe=False)
        # A long flush window so all submissions land in one burst.
        batcher = make_batcher(registry, max_batch=64, flush_window=0.2)
        futures = [batcher.submit("counting", {"x": 7.0}) for _ in range(10)]
        values = [f.result(timeout=30) for f in futures]
        batcher.close()
        assert values == [7.0] * 10
        assert len(calls) == 1  # evaluated once, fanned out ten times

    def test_mixed_models_in_one_burst(self, tiny_registry):
        batcher = make_batcher(tiny_registry, flush_window=0.05)
        square = batcher.submit("square", {"x": 2.0})
        picky = batcher.submit("picky", {"x": 2.0})
        assert square.result(timeout=30) == 4.0
        assert picky.result(timeout=30) == 3.0
        batcher.close()

    def test_poisoned_point_fails_alone(self, tiny_registry):
        batcher = make_batcher(tiny_registry, flush_window=0.05)
        good = batcher.submit("picky", {"x": 1.0})
        bad = batcher.submit("picky", {"x": -1.0})
        assert good.result(timeout=30) == 2.0
        with pytest.raises(EvaluationFailed) as excinfo:
            bad.result(timeout=30)
        batcher.close()
        assert excinfo.value.record.error_type == "ValueError"
        assert "negative x" in excinfo.value.record.message

    def test_unknown_model_fails_fast_in_caller(self, tiny_registry):
        batcher = make_batcher(tiny_registry)
        try:
            with pytest.raises(UnknownModelError):
                batcher.submit("nope", {"x": 1.0})
        finally:
            batcher.close()

    def test_metrics_flow_to_shared_registry(self, tiny_registry):
        metrics = ThreadSafeMetricsRegistry()
        batcher = make_batcher(tiny_registry, metrics=metrics, flush_window=0.05)
        futures = [batcher.submit("square", {"x": 1.0}) for _ in range(3)]
        for f in futures:
            f.result(timeout=30)
        batcher.close()
        summary = metrics.summary()
        assert summary["serve.batch.flushes"] >= 1
        assert summary["serve.batch.size.count"] >= 1
        assert summary.get("serve.batch.deduplicated{model=square}", 0) == 2


class TestClose:
    def test_close_drains_pending_work(self, tiny_registry):
        # Everything queued before close() still resolves: the
        # graceful-shutdown contract.
        batcher = make_batcher(tiny_registry, max_batch=1000, flush_window=5.0)
        futures = [batcher.submit("square", {"x": float(i)}) for i in range(10)]
        batcher.close(drain=True)  # well before the 5 s window expires
        assert [f.result(timeout=1) for f in futures] == [float(i) ** 2 for i in range(10)]

    def test_close_without_drain_fails_pending(self, tiny_registry):
        batcher = make_batcher(tiny_registry, max_batch=1000, flush_window=5.0)
        future = batcher.submit("square", {"x": 2.0})
        batcher.close(drain=False)
        with pytest.raises(EvaluationFailed, match="shut down"):
            future.result(timeout=1)

    def test_submit_after_close_raises(self, tiny_registry):
        batcher = make_batcher(tiny_registry)
        batcher.close()
        assert batcher.closed
        with pytest.raises(RuntimeError, match="closed"):
            batcher.submit("square", {"x": 1.0})

    def test_close_is_idempotent(self, tiny_registry):
        batcher = make_batcher(tiny_registry)
        batcher.close()
        batcher.close()


class TestValidation:
    def test_bad_knobs_rejected(self, tiny_registry):
        with pytest.raises(ValueError, match="max_batch"):
            MicroBatcher(tiny_registry, max_batch=0)
        with pytest.raises(ValueError, match="flush_window"):
            MicroBatcher(tiny_registry, flush_window=-1.0)
