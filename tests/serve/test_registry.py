"""Registry contract: warm-up, metadata, registration-time diagnostics."""

import pytest

from repro.compile.model import CompiledEvaluator
from repro.exceptions import ModelDefinitionError, ModelDiagnosticError
from repro.markov.ctmc import CTMC
from repro.serve import ModelRegistry, UnknownModelError, default_registry

ALL_MODELS = [
    "bladecenter",
    "boeing",
    "cisco",
    "nfvchain",
    "rejuvenation",
    "sip",
    "sun",
    "telecom",
    "wfs",
]


class TestDefaultRegistry:
    def test_preloads_all_nine_case_studies(self, registry):
        assert registry.names() == ALL_MODELS
        assert len(registry) == 9

    def test_compiled_studies_serve_warm_evaluators(self, registry):
        for name in ("bladecenter", "cisco", "sun"):
            entry = registry.get(name)
            assert entry.compiled
            assert isinstance(entry.evaluate, CompiledEvaluator)
            assert entry.parameters  # advertised from the compiled form

    def test_every_entry_advertises_size(self, registry):
        for name in registry:
            size = registry.get(name).size
            assert size is not None, name
            assert size["n_states"] + size["n_components"] > 0, name

    def test_compiled_size_matches_evaluator_size(self, registry):
        entry = registry.get("bladecenter")
        assert entry.size == entry.evaluate.size()
        assert entry.size["n_states"] > 0
        assert entry.size["n_chains"] > 0

    def test_net_backed_entry_reports_predicted_states(self, registry):
        # the structural pass sizes the NFV chain at registration time,
        # without building reachability: (replicas+1)^n_vnfs = 4^3
        size = registry.get("nfvchain").size
        assert size["predicted_states"] == 64
        assert size["predicted_states"] >= size["n_states"]

    def test_every_entry_carries_a_diagnostics_report(self, registry):
        for name in registry:
            report = registry.get(name).report
            assert report is not None, name
            assert report.ok, name  # strict registration admitted it

    def test_defaults_are_evaluable(self, registry):
        for name in registry:
            entry = registry.get(name)
            assert 0.0 < entry.evaluate(entry.defaults) <= 1.0

    def test_describe_rows(self, registry):
        rows = registry.describe()
        assert [row["name"] for row in rows] == ALL_MODELS
        for row in rows:
            assert "size" in row and "compiled" in row

    def test_verbose_describe_includes_defaults_and_diagnostics(self, registry):
        full = registry.get("telecom").describe(verbose=True)
        assert full["defaults"]["coverage"] == 0.99
        assert full["diagnostics"]["model_type"] == "CTMC"

    def test_unknown_name_raises_with_known_names(self, registry):
        with pytest.raises(UnknownModelError, match="bladecenter"):
            registry.get("nope")

    def test_subset_shares_warm_entries(self, registry):
        subset = registry.subset(["wfs", "sun"])
        assert subset.names() == ["sun", "wfs"]
        assert subset.get("sun") is registry.get("sun")
        with pytest.raises(UnknownModelError):
            subset.get("bladecenter")


def _defective_chain() -> CTMC:
    """A chain whose steady state is meaningless: no repair, absorbing."""
    chain = CTMC()
    chain.add_transition("up", "down", 1.0e-3)
    return chain


class TestRegistration:
    def test_strict_rejects_error_severity_findings(self):
        registry = ModelRegistry()
        with pytest.raises(ModelDiagnosticError, match="error"):
            registry.register(
                "broken",
                lambda a: 0.5,
                model=_defective_chain(),
                query="steady_state",
                probe=False,
            )
        assert "broken" not in registry

    def test_warn_admits_but_warns(self):
        registry = ModelRegistry()
        with pytest.warns(Warning, match="serve.register"):
            registry.register(
                "shaky",
                lambda a: 0.5,
                model=_defective_chain(),
                query="steady_state",
                diagnostics="warn",
                probe=False,
            )
        assert "shaky" in registry
        assert not registry.get("shaky").report.ok

    def test_ignore_admits_silently_but_still_stores_report(self):
        registry = ModelRegistry()
        registry.register(
            "quiet",
            lambda a: 0.5,
            model=_defective_chain(),
            query="steady_state",
            diagnostics="ignore",
            probe=False,
        )
        report = registry.get("quiet").report
        assert report is not None and not report.ok

    def test_probe_failure_rejects_registration(self):
        registry = ModelRegistry()

        def explodes(assignment):
            raise ValueError("boom")

        with pytest.raises(ValueError, match="boom"):
            registry.register("bad", explodes)
        assert "bad" not in registry

    def test_opaque_callable_without_model_has_no_report(self):
        registry = ModelRegistry()
        entry = registry.register("opaque", lambda a: 0.75)
        assert entry.report is None
        assert not entry.compiled
        assert entry.size is None

    def test_duplicate_name_rejected(self, registry):
        with pytest.raises(ModelDefinitionError, match="already registered"):
            registry.register("wfs", lambda a: 1.0, probe=False)

    def test_path_hostile_names_rejected(self):
        registry = ModelRegistry()
        for name in ("", "a/b"):
            with pytest.raises(ModelDefinitionError, match="path segment"):
                registry.register(name, lambda a: 1.0, probe=False)

    def test_invalid_diagnostics_mode_rejected(self):
        registry = ModelRegistry()
        with pytest.raises(ModelDefinitionError, match="diagnostics"):
            registry.register("x", lambda a: 1.0, diagnostics="loud", probe=False)
