"""End-to-end tests over a real socket: ephemeral-port daemon + http.client.

The byte-identity contract from ISSUE.md is pinned here: a value served
over HTTP must equal the direct :func:`~repro.engine.evaluate_batch`
answer bit for bit, JSON round-trip included.
"""

import http.client
import json
import subprocess
import sys
import threading

import pytest

from repro.engine import evaluate_batch
from repro.serve import ServeApp, create_server


@pytest.fixture
def server(registry):
    app = ServeApp(registry, flush_window=0.001)
    with create_server(app, port=0) as srv:
        yield srv


def request(server, method, path, body=None, conn=None):
    own = conn is None
    if own:
        conn = http.client.HTTPConnection(server.host, server.port, timeout=30)
    try:
        payload = None if body is None else json.dumps(body).encode()
        headers = {"Content-Type": "application/json"} if payload else {}
        conn.request(method, path, body=payload, headers=headers)
        response = conn.getresponse()
        raw = response.read()
        content_type = response.headers.get("Content-Type", "")
        if content_type.startswith("application/json"):
            return response.status, json.loads(raw)
        return response.status, raw.decode()
    finally:
        if own:
            conn.close()


class TestOverTheWire:
    def test_bladecenter_single_point_byte_identical(self, server, registry):
        # The ISSUE.md acceptance criterion, verbatim: POST the default
        # point and compare against a direct engine call — exactly, not
        # approximately.
        expected = float(
            evaluate_batch(registry.get("bladecenter").evaluate, [{}]).outputs[0]
        )
        status, payload = request(
            server, "POST", "/models/bladecenter/evaluate", body={}
        )
        assert status == 200
        assert payload["value"] == expected

    def test_batch_request_byte_identical(self, server, registry):
        points = [{"cpu_failure_rate": r} for r in (1e-6, 2e-6, 4e-6)]
        expected = evaluate_batch(registry.get("bladecenter").evaluate, points)
        status, payload = request(
            server, "POST", "/models/bladecenter/evaluate", body=points
        )
        assert status == 200
        assert payload["values"] == [float(v) for v in expected.outputs]

    def test_all_models_serve_their_defaults(self, server, registry):
        status, listing = request(server, "GET", "/models")
        assert status == 200
        for row in listing["models"]:
            name = row["name"]
            expected = registry.get(name).evaluate({})
            status, payload = request(
                server, "POST", f"/models/{name}/evaluate", body={}
            )
            assert status == 200, name
            assert payload["value"] == expected, name

    def test_keep_alive_connection_reuse(self, server):
        conn = http.client.HTTPConnection(server.host, server.port, timeout=30)
        try:
            for _ in range(3):
                status, payload = request(server, "GET", "/healthz", conn=conn)
                assert status == 200 and payload["status"] == "ok"
        finally:
            conn.close()

    def test_concurrent_clients_coalesce_and_agree(self, server, registry):
        serial = evaluate_batch(
            registry.get("wfs").evaluate,
            [{"n_workstations": float(n)} for n in range(3, 11)],
        ).outputs
        results = [None] * 8
        barrier = threading.Barrier(8)

        def client(i):
            barrier.wait()
            _, payload = request(
                server,
                "POST",
                "/models/wfs/evaluate",
                body={"n_workstations": i + 3},
            )
            results[i] = payload["value"]

        threads = [threading.Thread(target=client, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert results == [float(v) for v in serial]


class TestWireErrors:
    def test_malformed_json_400(self, server):
        conn = http.client.HTTPConnection(server.host, server.port, timeout=30)
        try:
            conn.request(
                "POST", "/models/wfs/evaluate", body=b"{not json",
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            payload = json.loads(response.read())
        finally:
            conn.close()
        assert response.status == 400
        assert payload["error"]["error_type"] == "MalformedRequest"

    def test_unknown_model_404(self, server):
        status, payload = request(
            server, "POST", "/models/atlantis/evaluate", body={}
        )
        assert status == 404
        assert payload["error"]["error_type"] == "UnknownModel"

    def test_method_not_allowed_405(self, server):
        status, payload = request(server, "PUT", "/models/wfs/evaluate", body={})
        assert status == 405
        assert payload["error"]["error_type"] == "MethodNotAllowed"

    def test_failed_single_point_422(self, server):
        status, payload = request(
            server, "POST", "/models/wfs/evaluate", body={"k_required": 2.5}
        )
        assert status == 422
        assert payload["value"] is None
        assert payload["errors"][0]["error_type"] == "ModelDefinitionError"


class TestMetricsOverTheWire:
    def test_prometheus_exposition_parses(self, server):
        request(server, "POST", "/models/sun/evaluate", body={})
        status, text = request(server, "GET", "/metrics")
        assert status == 200
        seen_types = {}
        for line in text.splitlines():
            if line.startswith("# TYPE "):
                _, _, name, kind = line.split(" ")
                seen_types[name] = kind
            elif line and not line.startswith("#"):
                # Every sample line is "name[{labels}] value".
                name_part, _, value = line.rpartition(" ")
                float(value)  # parses
                assert name_part.split("{", 1)[0].startswith("repro_")
        assert seen_types.get("repro_serve_requests") == "counter"
        assert seen_types.get("repro_serve_request_seconds") == "histogram"
        assert seen_types.get("repro_serve_batch_flushes") == "counter"

    def test_cache_counters_advance(self, server):
        body = {"n_workstations": 7}
        request(server, "POST", "/models/wfs/evaluate", body=body)
        request(server, "POST", "/models/wfs/evaluate", body=body)
        _, health = request(server, "GET", "/healthz")
        assert health["cache"]["hits"] >= 1
        assert health["cache"]["models"]["wfs"]["entries"] >= 1


class TestGracefulShutdown:
    def test_close_drains_inflight_requests(self, registry):
        # A slow in-flight request must complete while close() waits
        # for the drain, and the daemon must refuse new work afterwards.
        app = ServeApp(registry, flush_window=0.2, max_batch=1000)
        server = create_server(app, port=0).start()
        outcome = {}

        def slow_client():
            conn = http.client.HTTPConnection(server.host, server.port, timeout=30)
            try:
                conn.request(
                    "POST",
                    "/models/wfs/evaluate",
                    body=json.dumps({"n_workstations": 5}).encode(),
                    headers={"Content-Type": "application/json"},
                )
                response = conn.getresponse()
                outcome["status"] = response.status
                outcome["payload"] = json.loads(response.read())
            finally:
                conn.close()

        thread = threading.Thread(target=slow_client)
        thread.start()
        # Wait until the request is actually in flight (parked in the
        # 0.2 s flush window), then shut down underneath it.
        import time

        deadline = time.monotonic() + 5.0
        while not app._inflight and time.monotonic() < deadline:
            time.sleep(0.001)
        server.close()
        thread.join(timeout=30)
        assert outcome["status"] == 200
        assert outcome["payload"]["value"] is not None

    def test_close_is_idempotent(self, registry):
        server = create_server(ServeApp(registry, flush_window=0.001), port=0).start()
        server.close()
        server.close()


class TestSelfcheck:
    def test_module_selfcheck_exits_zero(self):
        # The tools/check.sh gate, exercised exactly as CI runs it.
        result = subprocess.run(
            [sys.executable, "-m", "repro.serve", "--selfcheck", "-q"],
            capture_output=True,
            text=True,
            timeout=600,
        )
        assert result.returncode == 0, result.stdout + result.stderr
