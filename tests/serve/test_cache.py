"""Result-cache semantics and the canonical-key bit-identity contract."""

import math

import numpy as np
import pytest

from repro.engine import EvaluationCache, canonical_point_key, evaluate_batch
from repro.engine.cache import freeze_assignment
from repro.serve import ResultCache


class TestCanonicalPointKey:
    def test_is_the_engine_key_function_itself(self):
        # The serve cache's key and the engine cache's key must be
        # bit-identical; the implementation makes drift impossible by
        # aliasing, and this test pins that choice.
        assert freeze_assignment is canonical_point_key

    def test_order_insensitive(self):
        assert canonical_point_key({"b": 2.0, "a": 1.0}) == canonical_point_key(
            {"a": 1.0, "b": 2.0}
        )

    def test_numeric_normalization(self):
        assert canonical_point_key({"x": 1}) == canonical_point_key({"x": 1.0})
        assert canonical_point_key({"x": np.float64(1.0)}) == canonical_point_key(
            {"x": 1.0}
        )
        assert canonical_point_key({"x": -0.0}) == canonical_point_key({"x": 0.0})

    def test_bit_identity_with_engine_cache_entries(self):
        # A point cached by the batch engine is found by the serve-side
        # key (and vice versa) — same key function, same cache class.
        cache = EvaluationCache()
        evaluate_batch(lambda p: p["x"] ** 2, [{"x": 3.0}], cache=cache)
        found, value = cache.peek(canonical_point_key({"x": 3}))
        assert found and value == 9.0

    def test_distinct_points_distinct_keys(self):
        assert canonical_point_key({"x": 1.0}) != canonical_point_key({"x": 2.0})
        assert canonical_point_key({"x": 1.0}) != canonical_point_key({"y": 1.0})


class TestResultCache:
    def test_miss_then_hit(self):
        cache = ResultCache(maxsize=4)
        found, _ = cache.get("m", {"x": 1.0})
        assert not found
        cache.put("m", {"x": 1.0}, 0.25)
        found, value = cache.get("m", {"x": 1})  # int 1 == float 1.0
        assert found and value == 0.25

    def test_models_are_isolated(self):
        cache = ResultCache()
        cache.put("a", {"x": 1.0}, 0.5)
        found, _ = cache.get("b", {"x": 1.0})
        assert not found

    def test_lru_eviction_per_model(self):
        cache = ResultCache(maxsize=2)
        cache.put("m", {"x": 1.0}, 1.0)
        cache.put("m", {"x": 2.0}, 2.0)
        cache.get("m", {"x": 1.0})  # touch 1 -> 2 becomes LRU
        cache.put("m", {"x": 3.0}, 3.0)
        assert cache.get("m", {"x": 1.0})[0]
        assert not cache.get("m", {"x": 2.0})[0]
        assert cache.get("m", {"x": 3.0})[0]

    def test_stats_aggregate_and_break_down(self):
        cache = ResultCache()
        cache.get("a", {"x": 1.0})
        cache.put("a", {"x": 1.0}, 0.5)
        cache.get("a", {"x": 1.0})
        cache.get("b", {"y": 2.0})
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 2
        assert stats["entries"] == 1
        assert stats["models"]["a"]["hits"] == 1
        assert stats["models"]["b"]["misses"] == 1

    def test_maxsize_zero_disables(self):
        cache = ResultCache(maxsize=0)
        assert not cache.enabled
        cache.put("m", {"x": 1.0}, 0.5)
        found, value = cache.get("m", {"x": 1.0})
        assert not found and math.isnan(value)
        assert cache.stats()["hits"] == 0 and cache.stats()["misses"] == 0

    def test_clear_keeps_counters(self):
        cache = ResultCache()
        cache.put("m", {"x": 1.0}, 0.5)
        cache.get("m", {"x": 1.0})
        cache.clear()
        assert not cache.get("m", {"x": 1.0})[0]
        assert cache.stats()["hits"] == 1

    def test_negative_maxsize_rejected(self):
        from repro.exceptions import ModelDefinitionError

        with pytest.raises(ModelDefinitionError, match=">= 0"):
            ResultCache(maxsize=-1)
