"""Shared pytest fixtures.

Also makes the test suite runnable straight from a source checkout by
putting ``src/`` on ``sys.path`` when the package is not installed.
"""

import pathlib
import sys

import numpy as np
import pytest

_SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    try:
        import repro  # noqa: F401
    except ImportError:  # pragma: no cover - source-checkout fallback
        sys.path.insert(0, str(_SRC))


@pytest.fixture
def rng():
    """A deterministic random generator per test."""
    return np.random.default_rng(20160628)
