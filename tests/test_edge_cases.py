"""Edge-case tests across packages (paths the main suites exercise lightly)."""

import numpy as np
import pytest

from repro.distributions import (
    Deterministic,
    EmpiricalDistribution,
    Erlang,
    Exponential,
    HyperExponential,
)
from repro.exceptions import ModelDefinitionError, SolverError
from repro.markov import (
    CTMC,
    MarkovDependabilityModel,
    PhaseType,
    SemiMarkovProcess,
    acyclic_transient,
    as_phase_type,
)
from repro.nonstate import BasicEvent, FaultTree, FaultTreeBounds, KofNGate, OrGate
from repro.petrinet import PetriNet, StochasticRewardNet


class TestCTMCEdges:
    def test_ode_with_unsorted_times(self):
        chain = CTMC()
        chain.add_transition("a", "b", 1.0)
        chain.add_transition("b", "a", 2.0)
        sorted_result = chain.transient(np.array([0.5, 1.0, 2.0]), "a", method="ode")
        shuffled = chain.transient(np.array([2.0, 0.5, 1.0]), "a", method="ode")
        np.testing.assert_allclose(shuffled[1], sorted_result[0], atol=1e-8)
        np.testing.assert_allclose(shuffled[0], sorted_result[2], atol=1e-8)

    def test_transient_empty_times(self):
        chain = CTMC()
        chain.add_transition("a", "b", 1.0)
        out = chain.transient(np.array([]), "a")
        assert out.shape == (0, 2)

    def test_interval_availability_rejects_zero(self):
        chain = CTMC()
        chain.add_transition("u", "d", 1.0)
        chain.add_transition("d", "u", 1.0)
        model = MarkovDependabilityModel(chain, ["u"], "u")
        with pytest.raises(SolverError):
            model.interval_availability(0.0)

    def test_generator_cache_invalidated_on_mutation(self):
        chain = CTMC()
        chain.add_transition("a", "b", 1.0)
        q1 = chain.generator().toarray()
        chain.add_transition("b", "a", 3.0)
        q2 = chain.generator().toarray()
        assert q1.shape != q2.shape or not np.allclose(q1, q2)

    def test_negative_times_rejected(self):
        chain = CTMC()
        chain.add_transition("a", "b", 1.0)
        with pytest.raises(SolverError):
            chain.transient(np.array([-1.0]), "a")


class TestSMPEdges:
    def test_transient_all_zero_horizon(self):
        smp = SemiMarkovProcess()
        smp.add_transition("u", "d", 1.0, Exponential(1.0))
        smp.add_transition("d", "u", 1.0, Exponential(1.0))
        out = smp.transient(np.array([0.0, 0.0]), "u")
        assert out[0, smp.states.index("u")] == pytest.approx(1.0)

    def test_transient_empty_times(self):
        smp = SemiMarkovProcess()
        smp.add_transition("u", "d", 1.0, Exponential(1.0))
        smp.add_transition("d", "u", 1.0, Exponential(1.0))
        assert smp.transient(np.array([]), "u").shape == (0, 2)

    def test_from_competing_single_target_kept_analytic(self):
        smp = SemiMarkovProcess.from_competing(
            {"u": {"d": Deterministic(2.0)}, "d": {"u": Exponential(1.0)}}
        )
        # single-clock states keep the original distribution object
        (target, prob, holding), = smp._transitions["u"]
        assert isinstance(holding, Deterministic)
        assert prob == 1.0

    def test_zero_probability_transition_ignored(self):
        smp = SemiMarkovProcess()
        smp.add_transition("u", "d", 0.0, Exponential(1.0))
        smp.add_transition("u", "d", 1.0, Exponential(1.0))
        smp.add_transition("d", "u", 1.0, Exponential(1.0))
        assert len(smp._transitions["u"]) == 1


class TestPhaseTypeEdges:
    def test_mixture_weight_bounds(self):
        a = as_phase_type(Exponential(1.0))
        with pytest.raises(Exception):
            a.mixture(a, weight=1.5)

    def test_hyperexp_absorbing_ctmc(self):
        ph = as_phase_type(HyperExponential([0.5, 0.5], [1.0, 2.0]))
        chain = ph.to_absorbing_ctmc()
        # mean time to absorption from a 50/50 start over the two phases
        mtta = 0.5 * chain.mean_time_to_absorption("ph0") + 0.5 * chain.mean_time_to_absorption("ph1")
        assert mtta == pytest.approx(ph.mean())

    def test_moment_zero(self):
        ph = as_phase_type(Erlang(2, 1.0))
        assert ph.moment(0) == 1.0


class TestAcyclicEdges:
    def test_reliability_accepts_scalar_and_array(self):
        chain = CTMC()
        chain.add_transition("u", "d", 1.0)
        sol = acyclic_transient(chain, "u")
        scalar = sol.reliability(["u"], 0.5)
        array = sol.reliability(["u"], np.array([0.5, 1.0]))
        assert scalar == pytest.approx(array[0])

    def test_all_absorbing_initial(self):
        chain = CTMC()
        chain.add_transition("u", "d", 1.0)
        sol = acyclic_transient(chain, "d")
        assert sol.probability("d", 10.0) == pytest.approx(1.0)


class TestBoundsEdges:
    def test_cut_set_limit_flags_truncation(self):
        events = [BasicEvent.fixed(f"e{i}", 0.1) for i in range(6)]
        tree = FaultTree(KofNGate(2, events))  # 15 cut sets
        analysis = FaultTreeBounds(tree, cut_set_limit=5)
        assert analysis.truncated_enumeration
        assert len(analysis.cut_sets) == 5

    def test_untruncated_flag(self):
        tree = FaultTree(OrGate([BasicEvent.fixed("a", 0.1)]))
        analysis = FaultTreeBounds(tree)
        assert not analysis.truncated_enumeration


class TestEmpiricalEdges:
    def test_pdf_piecewise_constant(self):
        d = EmpiricalDistribution([0.0, 1.0, 3.0], [0.0, 0.5, 1.0])
        assert d.pdf(0.5) == pytest.approx(0.5)
        assert d.pdf(2.0) == pytest.approx(0.25)
        assert d.pdf(5.0) == 0.0

    def test_variance_of_uniform_grid(self):
        # CDF linear on [0, 2] == Uniform(0, 2)
        d = EmpiricalDistribution([0.0, 2.0], [0.0, 1.0])
        assert d.variance() == pytest.approx(4.0 / 12.0, rel=1e-6)

    def test_equality_and_hash(self):
        a = EmpiricalDistribution([0.0, 1.0], [0.0, 1.0])
        b = EmpiricalDistribution([0.0, 1.0], [0.0, 1.0])
        assert a == b
        assert hash(a) == hash(b)


class TestSRNEdges:
    def test_transient_probability_series(self):
        net = PetriNet()
        net.add_place("q", 0)
        net.add_timed_transition("in", rate=1.0)
        net.add_output_arc("in", "q")
        net.add_inhibitor_arc("in", "q", 2)
        net.add_timed_transition("out", rate=1.0)
        net.add_input_arc("out", "q")
        srn = StochasticRewardNet(net)
        probs = srn.transient_probability(lambda m: m["q"] == 0, [0.0, 1000.0])
        assert probs[0] == pytest.approx(1.0)
        assert probs[1] == pytest.approx(srn.probability(lambda m: m["q"] == 0), abs=1e-8)

    def test_zero_rate_timed_transition_never_fires(self):
        net = PetriNet()
        net.add_place("p", 1)
        net.add_place("x", 0)
        net.add_timed_transition("never", rate=lambda m: 0.0)
        net.add_input_arc("never", "p")
        net.add_output_arc("never", "x")
        net.add_timed_transition("tick", rate=1.0)
        net.add_input_arc("tick", "p")
        net.add_output_arc("tick", "p")  # self-cycle keeps chain alive
        srn = StochasticRewardNet(net)
        assert srn.n_tangible == 1

    def test_negative_rate_rejected(self):
        net = PetriNet()
        net.add_place("p", 1)
        net.add_timed_transition("bad", rate=lambda m: -1.0)
        net.add_input_arc("bad", "p")
        with pytest.raises(ModelDefinitionError):
            StochasticRewardNet(net).steady_state()
