"""Unit tests for stochastic reward nets and the SRN dependability adapter."""

import numpy as np
import pytest

from repro.exceptions import ModelDefinitionError, StateSpaceError
from repro.petrinet import PetriNet, SRNDependabilityModel, StochasticRewardNet


def mm1k(K=5, lam=2.0, mu=3.0):
    net = PetriNet()
    net.add_place("queue", 0)
    net.add_timed_transition("arrive", rate=lam)
    net.add_output_arc("arrive", "queue")
    net.add_inhibitor_arc("arrive", "queue", K)
    net.add_timed_transition("serve", rate=mu)
    net.add_input_arc("serve", "queue")
    return net


def mm1k_analytic(K, lam, mu):
    rho = lam / mu
    return {n: (1 - rho) * rho**n / (1 - rho ** (K + 1)) for n in range(K + 1)}


class TestMeasures:
    def test_steady_state_mm1k(self):
        K, lam, mu = 5, 2.0, 3.0
        srn = StochasticRewardNet(mm1k(K, lam, mu))
        analytic = mm1k_analytic(K, lam, mu)
        pi = srn.steady_state()
        for marking, prob in pi.items():
            assert prob == pytest.approx(analytic[marking["queue"]], rel=1e-10)

    def test_expected_tokens(self):
        K, lam, mu = 5, 2.0, 3.0
        srn = StochasticRewardNet(mm1k(K, lam, mu))
        analytic = mm1k_analytic(K, lam, mu)
        expected = sum(n * analytic[n] for n in range(K + 1))
        assert srn.expected_tokens("queue") == pytest.approx(expected)

    def test_probability_condition(self):
        K, lam, mu = 5, 2.0, 3.0
        srn = StochasticRewardNet(mm1k(K, lam, mu))
        analytic = mm1k_analytic(K, lam, mu)
        assert srn.probability(lambda m: m["queue"] == 0) == pytest.approx(analytic[0])

    def test_throughput_effective_arrival_rate(self):
        K, lam, mu = 5, 2.0, 3.0
        srn = StochasticRewardNet(mm1k(K, lam, mu))
        analytic = mm1k_analytic(K, lam, mu)
        # flow balance: throughput(serve) == effective arrival rate
        assert srn.throughput("serve") == pytest.approx(lam * (1 - analytic[K]))
        assert srn.throughput("arrive") == pytest.approx(srn.throughput("serve"))

    def test_throughput_immediate_rejected(self):
        net = mm1k()
        net.add_place("aux", 0)
        net.add_immediate_transition("imm", weight=1.0)
        net.add_input_arc("imm", "aux")
        srn = StochasticRewardNet(net)
        with pytest.raises(ModelDefinitionError):
            srn.throughput("imm")

    def test_unknown_transition_rejected(self):
        srn = StochasticRewardNet(mm1k())
        with pytest.raises(ModelDefinitionError):
            srn.throughput("zzz")

    def test_transient_reward_starts_at_initial(self):
        srn = StochasticRewardNet(mm1k())
        out = srn.transient_reward_rate(lambda m: float(m["queue"]), [0.0])
        assert out[0] == pytest.approx(0.0)

    def test_transient_converges_to_steady(self):
        srn = StochasticRewardNet(mm1k())
        out = srn.transient_reward_rate(lambda m: float(m["queue"]), [200.0])
        assert out[0] == pytest.approx(srn.expected_tokens("queue"), abs=1e-6)

    def test_mean_time_to_full(self):
        srn = StochasticRewardNet(mm1k(K=2, lam=1.0, mu=1.0))
        # birth-death 0->1->2 with backward service; MTTA from 0 to 2
        value = srn.mean_time_to(lambda m: m["queue"] == 2)
        # hand CTMC
        from repro.markov import CTMC

        chain = CTMC()
        chain.add_transition(0, 1, 1.0)
        chain.add_transition(1, 0, 1.0)
        chain.add_transition(1, 2, 1.0)
        assert value == pytest.approx(chain.mean_time_to_absorption(0, absorbing=[2]))

    def test_mean_time_to_unreachable_rejected(self):
        srn = StochasticRewardNet(mm1k(K=2))
        with pytest.raises(StateSpaceError):
            srn.mean_time_to(lambda m: m["queue"] == 99)


class TestDependabilityAdapter:
    def machine_repair(self, n=2, lam=0.1, mu=1.0):
        net = PetriNet().add_place("up", n).add_place("down", 0)
        net.add_timed_transition("fail", rate=lambda m: lam * m["up"])
        net.add_input_arc("fail", "up")
        net.add_output_arc("fail", "down")
        net.add_timed_transition("repair", rate=mu)  # single crew
        net.add_input_arc("repair", "down")
        net.add_output_arc("repair", "up")
        return StochasticRewardNet(net)

    def test_availability_matches_hand_ctmc(self):
        srn = self.machine_repair()
        model = SRNDependabilityModel(srn, up=lambda m: m["up"] >= 1)
        from repro.markov import CTMC

        chain = CTMC()
        chain.add_transition(2, 1, 0.2)
        chain.add_transition(1, 0, 0.1)
        chain.add_transition(1, 2, 1.0)
        chain.add_transition(0, 1, 1.0)
        pi = chain.steady_state()
        assert model.steady_state_availability() == pytest.approx(pi[2] + pi[1])

    def test_mttf_matches_hand_ctmc(self):
        srn = self.machine_repair()
        model = SRNDependabilityModel(srn, up=lambda m: m["up"] >= 1)
        from repro.markov import CTMC

        chain = CTMC()
        chain.add_transition(2, 1, 0.2)
        chain.add_transition(1, 0, 0.1)
        chain.add_transition(1, 2, 1.0)
        assert model.mttf() == pytest.approx(chain.mean_time_to_absorption(2))

    def test_reliability_monotone_decreasing(self):
        srn = self.machine_repair()
        model = SRNDependabilityModel(srn, up=lambda m: m["up"] >= 1)
        r = model.reliability(np.array([0.0, 5.0, 20.0, 100.0]))
        assert r[0] == pytest.approx(1.0)
        assert np.all(np.diff(r) <= 1e-12)

    def test_availability_at_least_reliability(self):
        srn = self.machine_repair()
        model = SRNDependabilityModel(srn, up=lambda m: m["up"] >= 1)
        t = 30.0
        assert model.availability(t) >= model.reliability(t) - 1e-12

    def test_no_up_marking_rejected(self):
        srn = self.machine_repair()
        with pytest.raises(ModelDefinitionError):
            SRNDependabilityModel(srn, up=lambda m: m["up"] >= 99)
