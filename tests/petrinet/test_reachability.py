"""Unit tests for reachability analysis and vanishing elimination."""

import numpy as np
import pytest

from repro.exceptions import StateSpaceError
from repro.petrinet import PetriNet, StochasticRewardNet, build_reachability


def mm1k(K=3, lam=1.0, mu=2.0):
    net = PetriNet()
    net.add_place("queue", 0)
    net.add_timed_transition("arrive", rate=lam)
    net.add_output_arc("arrive", "queue")
    net.add_inhibitor_arc("arrive", "queue", K)
    net.add_timed_transition("serve", rate=mu)
    net.add_input_arc("serve", "queue")
    return net


class TestTangibleGraph:
    def test_mm1k_state_count(self):
        result = build_reachability(mm1k(K=3))
        assert len(result.tangible) == 4
        assert result.n_vanishing == 0

    def test_generated_rates(self):
        result = build_reachability(mm1k(K=2, lam=1.5, mu=3.0))
        chain = result.chain
        states = {m["queue"]: m for m in chain.states}
        assert chain.rate(states[0], states[1]) == pytest.approx(1.5)
        assert chain.rate(states[1], states[0]) == pytest.approx(3.0)

    def test_initial_distribution_tangible(self):
        result = build_reachability(mm1k())
        ((marking, prob),) = result.initial.items()
        assert marking["queue"] == 0
        assert prob == 1.0

    def test_max_markings_cap(self):
        # Unbounded net: arrivals with no inhibitor.
        net = PetriNet().add_place("p", 0)
        net.add_timed_transition("t", rate=1.0)
        net.add_output_arc("t", "p")
        with pytest.raises(StateSpaceError):
            build_reachability(net, max_markings=50)

    def test_marking_dependent_rates_generated(self):
        # machine-repair: n machines, rate proportional to up count
        n = 3
        net = PetriNet().add_place("up", n).add_place("down", 0)
        net.add_timed_transition("fail", rate=lambda m: 0.1 * m["up"])
        net.add_input_arc("fail", "up")
        net.add_output_arc("fail", "down")
        net.add_timed_transition("repair", rate=1.0)
        net.add_input_arc("repair", "down")
        net.add_output_arc("repair", "up")
        result = build_reachability(net)
        assert len(result.tangible) == n + 1
        states = {m["up"]: m for m in result.chain.states}
        assert result.chain.rate(states[3], states[2]) == pytest.approx(0.3)


class TestVanishingElimination:
    def coverage_net(self, c=0.9):
        """Failure branches immediately into covered/uncovered."""
        net = PetriNet()
        net.add_place("up", 1)
        net.add_place("deciding", 0)
        net.add_place("covered", 0)
        net.add_place("uncovered", 0)
        net.add_timed_transition("fail", rate=1.0)
        net.add_input_arc("fail", "up")
        net.add_output_arc("fail", "deciding")
        net.add_immediate_transition("cover", weight=c)
        net.add_input_arc("cover", "deciding")
        net.add_output_arc("cover", "covered")
        net.add_immediate_transition("miss", weight=1 - c)
        net.add_input_arc("miss", "deciding")
        net.add_output_arc("miss", "uncovered")
        net.add_timed_transition("fast", rate=10.0)
        net.add_input_arc("fast", "covered")
        net.add_output_arc("fast", "up")
        net.add_timed_transition("slow", rate=0.5)
        net.add_input_arc("slow", "uncovered")
        net.add_output_arc("slow", "up")
        return net

    def test_vanishing_markings_removed(self):
        result = build_reachability(self.coverage_net())
        assert result.n_vanishing == 1
        for marking in result.tangible:
            assert marking["deciding"] == 0

    def test_split_rates(self):
        c = 0.9
        result = build_reachability(self.coverage_net(c))
        chain = result.chain
        up = next(m for m in chain.states if m["up"] == 1)
        covered = next(m for m in chain.states if m["covered"] == 1)
        uncovered = next(m for m in chain.states if m["uncovered"] == 1)
        assert chain.rate(up, covered) == pytest.approx(1.0 * c)
        assert chain.rate(up, uncovered) == pytest.approx(1.0 * (1 - c))

    def test_steady_state_matches_hand_ctmc(self):
        c = 0.9
        srn = StochasticRewardNet(self.coverage_net(c))
        from repro.markov import CTMC

        hand = CTMC()
        hand.add_transition("up", "cov", c)
        hand.add_transition("up", "unc", 1 - c)
        hand.add_transition("cov", "up", 10.0)
        hand.add_transition("unc", "up", 0.5)
        pi_hand = hand.steady_state()
        assert srn.probability(lambda m: m["up"] == 1) == pytest.approx(pi_hand["up"])

    def test_vanishing_initial_marking(self):
        net = PetriNet()
        net.add_place("start", 1)
        net.add_place("a", 0)
        net.add_place("b", 0)
        net.add_immediate_transition("toA", weight=3.0)
        net.add_input_arc("toA", "start")
        net.add_output_arc("toA", "a")
        net.add_immediate_transition("toB", weight=1.0)
        net.add_input_arc("toB", "start")
        net.add_output_arc("toB", "b")
        net.add_timed_transition("loopA", rate=1.0)
        net.add_input_arc("loopA", "a")
        net.add_output_arc("loopA", "b")
        net.add_timed_transition("loopB", rate=1.0)
        net.add_input_arc("loopB", "b")
        net.add_output_arc("loopB", "a")
        result = build_reachability(net)
        probs = {m: p for m, p in result.initial.items()}
        a_marking = next(m for m in probs if m["a"] == 1)
        assert probs[a_marking] == pytest.approx(0.75)

    def test_immediate_loop_resolved(self):
        # Immediate ping-pong with an escape: geometric series must sum.
        net = PetriNet()
        net.add_place("x", 1)
        net.add_place("y", 0)
        net.add_place("out", 0)
        net.add_immediate_transition("xy", weight=1.0)
        net.add_input_arc("xy", "x")
        net.add_output_arc("xy", "y")
        net.add_immediate_transition("yx", weight=0.5)
        net.add_input_arc("yx", "y")
        net.add_output_arc("yx", "x")
        net.add_immediate_transition("escape", weight=0.5)
        net.add_input_arc("escape", "y")
        net.add_output_arc("escape", "out")
        net.add_timed_transition("back", rate=1.0)
        net.add_input_arc("back", "out")
        net.add_output_arc("back", "x")
        result = build_reachability(net)
        ((marking, prob),) = result.initial.items()
        assert marking["out"] == 1
        assert prob == pytest.approx(1.0)

    def test_timeless_trap_detected(self):
        net = PetriNet()
        net.add_place("x", 1)
        net.add_place("y", 0)
        net.add_immediate_transition("xy", weight=1.0)
        net.add_input_arc("xy", "x")
        net.add_output_arc("xy", "y")
        net.add_immediate_transition("yx", weight=1.0)
        net.add_input_arc("yx", "y")
        net.add_output_arc("yx", "x")
        with pytest.raises(StateSpaceError):
            build_reachability(net)
