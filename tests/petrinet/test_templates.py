"""Unit tests for the SRN template builders."""

import pytest

from repro.exceptions import ModelDefinitionError
from repro.markov import CTMC
from repro.petrinet import StochasticRewardNet
from repro.petrinet.templates import (
    machine_repairman,
    queue_with_breakdowns,
    redundant_pool_with_coverage,
)


class TestMachineRepairman:
    def test_state_count(self):
        srn = StochasticRewardNet(machine_repairman(4, 0.1, 1.0))
        assert srn.n_tangible == 5

    def test_single_crew_matches_hand_ctmc(self):
        srn = StochasticRewardNet(machine_repairman(3, 0.1, 1.0, n_crews=1))
        chain = CTMC()
        for up in range(3, 0, -1):
            chain.add_transition(up, up - 1, 0.1 * up)
        for up in range(0, 3):
            chain.add_transition(up, up + 1, 1.0)
        pi = chain.steady_state()
        for up in range(4):
            assert srn.probability(lambda m, u=up: m["up"] == u) == pytest.approx(pi[up])

    def test_more_crews_higher_availability(self):
        one = StochasticRewardNet(machine_repairman(4, 0.3, 1.0, n_crews=1))
        two = StochasticRewardNet(machine_repairman(4, 0.3, 1.0, n_crews=2))
        up = lambda m: m["up"] >= 2  # noqa: E731
        assert two.probability(up) > one.probability(up)

    def test_crew_saturation(self):
        # with n crews == n machines, repair rate scales fully
        srn = StochasticRewardNet(machine_repairman(2, 0.5, 1.0, n_crews=2))
        chain = CTMC()
        chain.add_transition(2, 1, 1.0)
        chain.add_transition(1, 0, 0.5)
        chain.add_transition(1, 2, 1.0)
        chain.add_transition(0, 1, 2.0)
        pi = chain.steady_state()
        assert srn.probability(lambda m: m["up"] == 2) == pytest.approx(pi[2])

    def test_validation(self):
        with pytest.raises(ModelDefinitionError):
            machine_repairman(0, 0.1, 1.0)
        with pytest.raises(ModelDefinitionError):
            machine_repairman(2, 0.1, 1.0, n_crews=0)


class TestRedundantPool:
    def test_uncovered_failure_causes_outage(self):
        net = redundant_pool_with_coverage(
            3, failure_rate=0.01, repair_rate=1.0, coverage=0.9,
            uncovered_recovery_rate=2.0,
        )
        srn = StochasticRewardNet(net)
        assert srn.probability(lambda m: m["outage"] > 0) > 0.0
        assert srn.n_vanishing > 0

    def test_perfect_coverage_never_outages(self):
        net = redundant_pool_with_coverage(
            3, failure_rate=0.01, repair_rate=1.0, coverage=1.0,
            uncovered_recovery_rate=2.0,
        )
        srn = StochasticRewardNet(net)
        assert srn.probability(lambda m: m["outage"] > 0) == pytest.approx(0.0)

    def test_coverage_monotone(self):
        def outage_probability(c):
            net = redundant_pool_with_coverage(
                3, failure_rate=0.05, repair_rate=1.0, coverage=c,
                uncovered_recovery_rate=2.0,
            )
            return StochasticRewardNet(net).probability(lambda m: m["outage"] > 0)

        values = [outage_probability(c) for c in (0.8, 0.9, 0.99)]
        assert values[0] > values[1] > values[2]

    def test_token_conservation(self):
        net = redundant_pool_with_coverage(
            4, failure_rate=0.1, repair_rate=1.0, coverage=0.95,
            uncovered_recovery_rate=2.0,
        )
        srn = StochasticRewardNet(net)
        for marking in srn.chain.states:
            total = (
                marking["up"] + marking["deciding"] + marking["repairing"] + marking["outage"]
            )
            assert total == 4


class TestQueueWithBreakdowns:
    def test_state_count(self):
        srn = StochasticRewardNet(queue_with_breakdowns(3, 1.0, 2.0, 0.01, 0.5))
        assert srn.n_tangible == 2 * 4  # queue 0..3 x server up/down

    def test_breakdowns_grow_queue(self):
        reliable = StochasticRewardNet(queue_with_breakdowns(10, 1.0, 2.0, 1e-9, 1.0))
        flaky = StochasticRewardNet(queue_with_breakdowns(10, 1.0, 2.0, 0.1, 0.2))
        assert flaky.expected_tokens("queue") > reliable.expected_tokens("queue")

    def test_reliable_limit_is_mm1k(self):
        K, lam, mu = 5, 1.0, 2.0
        srn = StochasticRewardNet(queue_with_breakdowns(K, lam, mu, 1e-12, 1.0))
        rho = lam / mu
        analytic = sum(
            n * (1 - rho) * rho**n / (1 - rho ** (K + 1)) for n in range(K + 1)
        )
        assert srn.expected_tokens("queue") == pytest.approx(analytic, rel=1e-3)

    def test_server_availability(self):
        srn = StochasticRewardNet(queue_with_breakdowns(5, 1.0, 2.0, 0.1, 0.4))
        assert srn.probability(lambda m: m["server_up"] == 1) == pytest.approx(
            0.4 / 0.5, rel=1e-9
        )
