"""Property-based tests for SRN generation (hypothesis).

Invariants: generated birth-death chains match the analytic stationary
distribution; token count is conserved in conservative nets; vanishing
markings never survive into the tangible chain; throughput balances at
steady state.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.markov import CTMC
from repro.petrinet import PetriNet, StochasticRewardNet

rates = st.floats(min_value=0.05, max_value=20.0)


@st.composite
def birth_death_nets(draw):
    k = draw(st.integers(min_value=1, max_value=8))
    lam = draw(rates)
    mu = draw(rates)
    net = PetriNet()
    net.add_place("queue", 0)
    net.add_timed_transition("arrive", rate=lam)
    net.add_output_arc("arrive", "queue")
    net.add_inhibitor_arc("arrive", "queue", k)
    net.add_timed_transition("serve", rate=mu)
    net.add_input_arc("serve", "queue")
    return net, k, lam, mu


@settings(max_examples=40, deadline=None)
@given(data=birth_death_nets())
def test_birth_death_matches_analytic(data):
    net, k, lam, mu = data
    srn = StochasticRewardNet(net)
    rho = lam / mu
    if abs(rho - 1.0) < 1e-9:
        return
    norm = sum(rho**n for n in range(k + 1))
    pi = srn.steady_state()
    for marking, prob in pi.items():
        assert prob == pytest.approx(rho ** marking["queue"] / norm, rel=1e-8)


@settings(max_examples=40, deadline=None)
@given(data=birth_death_nets())
def test_flow_balance(data):
    net, k, lam, mu = data
    srn = StochasticRewardNet(net)
    # At steady state, arrival throughput equals service throughput.
    assert srn.throughput("arrive") == pytest.approx(srn.throughput("serve"), rel=1e-8)


@st.composite
def repairman_nets(draw):
    n = draw(st.integers(min_value=1, max_value=6))
    lam = draw(rates)
    mu = draw(rates)
    crews = draw(st.integers(min_value=1, max_value=3))
    net = PetriNet()
    net.add_place("up", n)
    net.add_place("down", 0)
    net.add_timed_transition("fail", rate=lambda m, l=lam: l * m["up"])
    net.add_input_arc("fail", "up")
    net.add_output_arc("fail", "down")
    net.add_timed_transition("repair", rate=lambda m, r=mu, c=crews: r * min(m["down"], c))
    net.add_input_arc("repair", "down")
    net.add_output_arc("repair", "up")
    return net, n, lam, mu, crews


@settings(max_examples=40, deadline=None)
@given(data=repairman_nets())
def test_token_conservation(data):
    net, n, _lam, _mu, _crews = data
    srn = StochasticRewardNet(net)
    for marking in srn.chain.states:
        assert marking["up"] + marking["down"] == n


@settings(max_examples=30, deadline=None)
@given(data=repairman_nets())
def test_repairman_matches_hand_ctmc(data):
    net, n, lam, mu, crews = data
    srn = StochasticRewardNet(net)
    chain = CTMC()
    for up in range(n, 0, -1):
        chain.add_transition(up, up - 1, lam * up)
    for up in range(0, n):
        chain.add_transition(up, up + 1, mu * min(n - up, crews))
    pi = chain.steady_state()
    for up in range(n + 1):
        assert srn.probability(lambda m, u=up: m["up"] == u) == pytest.approx(
            pi[up], abs=1e-10
        )


@st.composite
def coverage_nets(draw):
    c = draw(st.floats(min_value=0.05, max_value=0.95))
    fast = draw(rates)
    slow = draw(rates)
    fail = draw(rates)
    net = PetriNet()
    net.add_place("up", 1)
    net.add_place("deciding", 0)
    net.add_place("fast_fix", 0)
    net.add_place("slow_fix", 0)
    net.add_timed_transition("fail", rate=fail)
    net.add_input_arc("fail", "up")
    net.add_output_arc("fail", "deciding")
    net.add_immediate_transition("cover", weight=c)
    net.add_input_arc("cover", "deciding")
    net.add_output_arc("cover", "fast_fix")
    net.add_immediate_transition("miss", weight=1 - c)
    net.add_input_arc("miss", "deciding")
    net.add_output_arc("miss", "slow_fix")
    net.add_timed_transition("quick", rate=fast)
    net.add_input_arc("quick", "fast_fix")
    net.add_output_arc("quick", "up")
    net.add_timed_transition("slow", rate=slow)
    net.add_input_arc("slow", "slow_fix")
    net.add_output_arc("slow", "up")
    return net, c, fail, fast, slow


@settings(max_examples=40, deadline=None)
@given(data=coverage_nets())
def test_vanishing_elimination_matches_hand_split(data):
    net, c, fail, fast, slow = data
    srn = StochasticRewardNet(net)
    for marking in srn.chain.states:
        assert marking["deciding"] == 0
    chain = CTMC()
    chain.add_transition("up", "fast", fail * c)
    chain.add_transition("up", "slow", fail * (1 - c))
    chain.add_transition("fast", "up", fast)
    chain.add_transition("slow", "up", slow)
    pi = chain.steady_state()
    assert srn.probability(lambda m: m["up"] == 1) == pytest.approx(pi["up"], abs=1e-10)
