"""Unit tests for the Petri-net structure layer."""

import pytest

from repro.exceptions import ModelDefinitionError
from repro.petrinet import Marking, PetriNet


def mm1k(K=3, lam=1.0, mu=2.0):
    net = PetriNet()
    net.add_place("queue", 0)
    net.add_timed_transition("arrive", rate=lam)
    net.add_output_arc("arrive", "queue")
    net.add_inhibitor_arc("arrive", "queue", K)
    net.add_timed_transition("serve", rate=mu)
    net.add_input_arc("serve", "queue")
    return net


class TestMarking:
    def test_access_by_name(self):
        m = Marking(("p", "q"), (2, 0))
        assert m["p"] == 2
        assert m["q"] == 0

    def test_unknown_place_rejected(self):
        m = Marking(("p",), (1,))
        with pytest.raises(ModelDefinitionError):
            m["zzz"]

    def test_hashable_and_equal(self):
        a = Marking(("p",), (1,))
        b = Marking(("p",), (1,))
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_with_delta(self):
        m = Marking(("p", "q"), (2, 0))
        m2 = m.with_delta({0: -1, 1: 2})
        assert m2.tokens == (1, 2)

    def test_negative_tokens_rejected(self):
        m = Marking(("p",), (0,))
        with pytest.raises(ModelDefinitionError):
            m.with_delta({0: -1})

    def test_as_dict(self):
        assert Marking(("p", "q"), (1, 2)).as_dict() == {"p": 1, "q": 2}


class TestNetConstruction:
    def test_duplicate_place_rejected(self):
        net = PetriNet().add_place("p")
        with pytest.raises(ModelDefinitionError):
            net.add_place("p")

    def test_duplicate_transition_rejected(self):
        net = PetriNet().add_timed_transition("t", rate=1.0)
        with pytest.raises(ModelDefinitionError):
            net.add_timed_transition("t", rate=2.0)

    def test_transition_needs_rate_xor_weight(self):
        from repro.petrinet import Transition

        with pytest.raises(ModelDefinitionError):
            Transition("t")
        with pytest.raises(ModelDefinitionError):
            Transition("t", rate=1.0, weight=1.0)

    def test_arc_to_unknown_place_rejected(self):
        net = PetriNet().add_timed_transition("t", rate=1.0)
        with pytest.raises(ModelDefinitionError):
            net.add_input_arc("t", "nowhere")

    def test_zero_multiplicity_rejected(self):
        net = mm1k()
        with pytest.raises(ModelDefinitionError):
            net.add_input_arc("serve", "queue", 0)

    def test_initial_marking(self):
        net = PetriNet().add_place("a", 3).add_place("b", 0)
        m = net.initial_marking()
        assert m["a"] == 3 and m["b"] == 0


class TestEnabling:
    def test_input_arc_requires_tokens(self):
        net = mm1k()
        empty = net.initial_marking()
        serve = net.transitions["serve"]
        assert not serve.is_enabled(empty)
        assert serve.is_enabled(Marking(("queue",), (1,)))

    def test_inhibitor_disables(self):
        net = mm1k(K=2)
        arrive = net.transitions["arrive"]
        assert arrive.is_enabled(Marking(("queue",), (1,)))
        assert not arrive.is_enabled(Marking(("queue",), (2,)))

    def test_guard(self):
        net = PetriNet().add_place("p", 1)
        net.add_timed_transition("t", rate=1.0, guard=lambda m: m["p"] >= 2)
        assert not net.transitions["t"].is_enabled(net.initial_marking())

    def test_marking_dependent_rate(self):
        net = PetriNet().add_place("p", 3)
        net.add_timed_transition("t", rate=lambda m: 0.5 * m["p"])
        net.add_input_arc("t", "p")
        assert net.transitions["t"].rate_in(net.initial_marking()) == pytest.approx(1.5)

    def test_immediate_priority_filtering(self):
        net = PetriNet().add_place("p", 1)
        net.add_immediate_transition("low", weight=1.0, priority=1)
        net.add_input_arc("low", "p")
        net.add_immediate_transition("high", weight=1.0, priority=2)
        net.add_input_arc("high", "p")
        enabled = net.enabled_transitions(net.initial_marking())
        assert [t.name for t in enabled] == ["high"]

    def test_vanishing_detection(self):
        net = PetriNet().add_place("p", 1)
        net.add_immediate_transition("imm", weight=1.0)
        net.add_input_arc("imm", "p")
        net.add_timed_transition("timed", rate=1.0)
        net.add_input_arc("timed", "p")
        assert net.is_vanishing(net.initial_marking())

    def test_firing_moves_tokens(self):
        net = mm1k()
        arrive = net.transitions["arrive"]
        m1 = arrive.fire(net.initial_marking())
        assert m1["queue"] == 1
