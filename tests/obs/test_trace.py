"""Unit tests for the tracing core: spans, tracers, context propagation."""

import json

import numpy as np
import pytest

from repro.obs import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    activate_tracer,
    format_trace,
    get_tracer,
    record_span,
    span_signature,
    trace,
)


class TestSpan:
    def test_nesting_and_iteration(self):
        with trace("root") as t:
            with t.span("outer", index=0):
                with t.span("inner", index=1):
                    pass
            with t.span("sibling"):
                pass
        names = [s.name for s in t.root.iter()]
        assert names == ["root", "outer", "inner", "sibling"]
        assert [s.name for s in t.root.find("inner")] == ["inner"]

    def test_set_and_observe(self):
        class Obs:
            def to_dict(self):
                return {"value": 7}

        span = Span("work")
        span.set(method="gth", n_states=4).observe(Obs(), key="report")
        assert span.attributes["method"] == "gth"
        assert span.attributes["report"] == {"value": 7}

    def test_durations_stamped(self):
        with trace("root") as t:
            with t.span("work"):
                pass
        assert t.root.children[0].duration >= 0.0
        t.close()
        assert t.root.duration >= t.root.children[0].duration

    def test_exception_annotated_and_reraised(self):
        with pytest.raises(ValueError, match="boom"):
            with trace("root") as t:
                with t.span("work"):
                    raise ValueError("boom")
        assert t.root.children[0].attributes["error"] == "ValueError: boom"

    def test_round_trip_through_dict(self):
        with trace("root") as t:
            with t.span("outer", method="gth", residual=1e-12):
                with t.span("inner", count=np.int64(3)):
                    pass
        wire = t.root.to_dict()
        rebuilt = Span.from_dict(wire)
        assert span_signature(rebuilt) == span_signature(t.root)
        # numpy values are converted to plain JSON types on the wire
        assert json.loads(json.dumps(wire))["children"][0]["children"][0][
            "attributes"
        ] == {"count": 3}

    def test_signature_ignores_float_attributes(self):
        a = Span("s", {"method": "gth", "residual": 1e-9})
        b = Span("s", {"method": "gth", "residual": 2e-7})
        c = Span("s", {"method": "power", "residual": 1e-9})
        assert span_signature(a) == span_signature(b)
        assert span_signature(a) != span_signature(c)


class TestActiveTracer:
    def test_default_is_null(self):
        tracer = get_tracer()
        assert isinstance(tracer, NullTracer)
        assert not tracer.enabled

    def test_trace_installs_and_restores(self):
        assert get_tracer() is NULL_TRACER
        with trace("root") as t:
            assert get_tracer() is t
            assert t.enabled
        assert get_tracer() is NULL_TRACER

    def test_activate_tracer_restores_on_error(self):
        tracer = Tracer("manual")
        with pytest.raises(RuntimeError):
            with activate_tracer(tracer):
                assert get_tracer() is tracer
                raise RuntimeError("boom")
        assert get_tracer() is NULL_TRACER

    def test_null_tracer_is_inert(self):
        span = NULL_TRACER.span("anything", key="value")
        with span as s:
            s.set(more="attrs").observe(object)  # never stored
        assert NULL_TRACER.root.children == []
        NULL_TRACER.metrics.counter("x").inc()
        assert NULL_TRACER.metrics.to_dict() == {}


class TestRecordSpan:
    def test_envelope_returns_result_and_span_dict(self):
        result, span_dict = record_span(
            lambda x: x * 2, (21,), None, name="task", attributes={"index": 5}
        )
        assert result == 42
        assert span_dict["name"] == "task"
        assert span_dict["attributes"]["index"] == 5

    def test_nested_instrumented_calls_are_captured(self):
        def inner_work():
            with get_tracer().span("nested"):
                return "done"

        result, span_dict = record_span(inner_work, name="task")
        assert result == "done"
        assert [c["name"] for c in span_dict["children"]] == ["nested"]

    def test_graft_preserves_structure(self):
        _, span_dict = record_span(lambda: None, name="task", attributes={"index": 0})
        with trace("root") as t:
            with t.span("batch"):
                t.graft(span_dict)
        batch = t.root.children[0]
        assert [c.name for c in batch.children] == ["task"]
        assert batch.children[0].attributes["index"] == 0


class TestExport:
    def test_to_json_carries_trace_and_metrics(self):
        with trace("root") as t:
            with t.span("work", method="gth"):
                t.metrics.counter("ops").inc(3)
        doc = json.loads(t.to_json())
        assert doc["trace"]["name"] == "root"
        assert doc["trace"]["children"][0]["attributes"]["method"] == "gth"
        assert doc["metrics"]["ops"] == {"kind": "counter", "value": 3}

    def test_format_trace_renders_tree(self):
        with trace("root") as t:
            with t.span("solver.stage", method="gth"):
                pass
        text = format_trace(t)
        assert "root" in text
        assert "solver.stage" in text
        assert "method=gth" in text

    def test_format_trace_respects_max_depth(self):
        with trace("root") as t:
            with t.span("level1"):
                with t.span("level2"):
                    pass
        shallow = format_trace(t, max_depth=2)
        assert "level1" in shallow
        assert "level2" not in shallow
        assert "… (1 spans)" in shallow
