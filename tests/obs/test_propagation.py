"""Trace propagation across executors and through real workloads.

The contract under test: a traced batch produces the *same span tree* —
modulo timings — whether it runs serially, on a thread pool or on a
process pool, because pool backends record worker-side spans into
envelopes and graft them back in deterministic chunk order.
"""

import json

import numpy as np
import pytest

from repro.casestudies.bladecenter import evaluate_availability
from repro.engine import (
    EngineOptions,
    GridCampaign,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    evaluate_batch,
    run_campaign,
)
from repro.markov import CTMC
from repro.obs import span_signature, to_prometheus, trace

ASSIGNMENTS = [{"x": float(k)} for k in range(8)]


def quadratic(assignment):
    """Module-level evaluator: picklable for the process pool."""
    return assignment["x"] ** 2


def availability(assignment):
    """Evaluator that exercises instrumented solver code in the worker."""
    lam = 1e-4 * (1.0 + assignment["x"])
    chain = CTMC()
    chain.add_transition("up", "down", lam)
    chain.add_transition("down", "up", 0.5)
    pi = chain.steady_state(method="auto")
    return pi["up"]


def _traced_batch(evaluate, executor):
    with trace("batch") as t:
        result = evaluate_batch(
            evaluate, ASSIGNMENTS, executor=executor, chunk_size=4
        )
    return result, t


class TestCrossExecutorIdentity:
    @pytest.mark.parametrize(
        "executor", [ThreadExecutor(2), ProcessExecutor(2)], ids=["thread", "process"]
    )
    def test_span_tree_matches_serial(self, executor):
        serial_result, serial_trace = _traced_batch(quadratic, SerialExecutor())
        pool_result, pool_trace = _traced_batch(quadratic, executor)
        np.testing.assert_array_equal(serial_result.outputs, pool_result.outputs)
        serial_batch = serial_trace.root.find("engine.batch")[0]
        pool_batch = pool_trace.root.find("engine.batch")[0]
        # The executor name legitimately differs; chunk structure must not.
        serial_chunks = [span_signature(c) for c in serial_batch.children]
        pool_chunks = [span_signature(c) for c in pool_batch.children]
        assert serial_chunks == pool_chunks
        assert len(serial_chunks) == 2  # 8 tasks / chunk_size 4

    @pytest.mark.parametrize(
        "executor", [ThreadExecutor(2), ProcessExecutor(2)], ids=["thread", "process"]
    )
    def test_worker_side_solver_spans_graft_back(self, executor):
        _, pool_trace = _traced_batch(availability, executor)
        _, serial_trace = _traced_batch(availability, SerialExecutor())
        # Each of the 2 chunks carries the solver spans its 4 tasks opened.
        pool_solves = pool_trace.root.find("solver.steady_state")
        assert len(pool_solves) == len(ASSIGNMENTS)
        serial_batch = serial_trace.root.find("engine.batch")[0]
        pool_batch = pool_trace.root.find("engine.batch")[0]
        assert [span_signature(c) for c in serial_batch.children] == [
            span_signature(c) for c in pool_batch.children
        ]

    def test_chunk_spans_arrive_in_chunk_order(self):
        _, t = _traced_batch(quadratic, ProcessExecutor(2))
        batch = t.root.find("engine.batch")[0]
        assert [c.attributes["index"] for c in batch.children] == [0, 1]


class TestUntracedPathsUnchanged:
    def test_outputs_bit_identical_with_and_without_tracing(self):
        untraced = evaluate_batch(quadratic, ASSIGNMENTS, chunk_size=4)
        with trace("batch"):
            traced = evaluate_batch(quadratic, ASSIGNMENTS, chunk_size=4)
        np.testing.assert_array_equal(untraced.outputs, traced.outputs)

    def test_no_tracer_records_nothing(self):
        from repro.obs import NULL_TRACER, get_tracer

        evaluate_batch(quadratic, ASSIGNMENTS)
        assert get_tracer() is NULL_TRACER


class TestOptionsTracer:
    def test_tracer_via_engine_options(self):
        from repro.obs import Tracer

        tracer = Tracer("opts")
        result = evaluate_batch(
            quadratic, ASSIGNMENTS, options=EngineOptions(chunk_size=4, tracer=tracer)
        )
        assert result.outputs.size == len(ASSIGNMENTS)
        assert len(tracer.root.find("engine.chunk")) == 2


class TestEndToEndCampaign:
    def test_bladecenter_campaign_trace(self):
        spec = GridCampaign({"cpu_failure_rate": [1e-6, 2e-6, 3e-6, 4e-6]})
        # compile=False: this test pins the *uncompiled* per-point route,
        # whose trace descends into solver.steady_state spans (the compiled
        # route reports compile.* counters instead — see the next test).
        with trace("bladecenter") as t:
            result = run_campaign(
                evaluate_availability, spec, chunk_size=2, compile=False
            )
        assert np.all((result.outputs > 0.99) & (result.outputs <= 1.0))
        # campaign → batch → chunks → solver stages, one nested tree
        campaign = t.root.find("engine.campaign")
        assert len(campaign) == 1
        assert campaign[0].attributes["spec"] == "GridCampaign"
        batch = campaign[0].find("engine.batch")
        assert len(batch) == 1
        chunks = batch[0].children
        assert [c.name for c in chunks] == ["engine.chunk", "engine.chunk"]
        assert t.root.find("solver.steady_state")
        assert t.root.find("solver.stage")
        # the batch span archives the run's EngineStats observation
        assert batch[0].attributes["stats"]["n_tasks"] == 4.0

        doc = json.loads(t.to_json())
        assert doc["trace"]["name"] == "bladecenter"
        assert doc["metrics"]["engine.tasks"]["value"] == 4

        text = to_prometheus(t)
        assert "repro_engine_tasks 4" in text
        assert "# TYPE repro_engine_eval_seconds histogram" in text

    def test_bladecenter_campaign_compiled_trace(self):
        spec = GridCampaign({"cpu_failure_rate": [1e-6, 2e-6, 3e-6, 4e-6]})
        with trace("bladecenter") as t:
            result = run_campaign(evaluate_availability, spec, chunk_size=2)
        assert np.all((result.outputs > 0.99) & (result.outputs <= 1.0))
        # Same campaign → batch → chunk skeleton, but the evaluations run
        # through the compiled kernel: no solver spans, compile.* counters.
        campaign = t.root.find("engine.campaign")
        assert len(campaign) == 1
        assert not t.root.find("solver.steady_state")
        metrics = t.metrics.to_dict()
        assert any(k.startswith("engine.compiled_batches") for k in metrics)
        assert any(k.startswith("compile.reuse") for k in metrics)

    def test_simulation_trial_chunks_traced(self):
        from repro.nonstate import Component, ReliabilityBlockDiagram, parallel
        from repro.sim.structural import simulate_reliability

        a = Component.from_rates("a", failure_rate=1e-3)
        b = Component.from_rates("b", failure_rate=1e-3)
        system = ReliabilityBlockDiagram(parallel(a, b))
        with trace("sim") as t:
            simulate_reliability(system, t=100.0, n_samples=256, rng=np.random.default_rng(7))
        sim_span = t.root.find("sim.reliability")
        assert len(sim_span) == 1
        assert sim_span[0].attributes["n_samples"] == 256
        assert t.root.find("sim.trial_chunk")
