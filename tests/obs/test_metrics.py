"""Unit tests for counters, gauges, histograms and their exporters."""

import pytest

from repro.obs import (
    DEFAULT_BUCKETS,
    NULL_METRICS,
    MetricsRegistry,
    to_prometheus,
)


class TestInstruments:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        registry.counter("engine.tasks").inc()
        registry.counter("engine.tasks").inc(4.0)
        assert registry.counter("engine.tasks").value == 5.0

    def test_counter_rejects_negative_increments(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match=">= 0"):
            registry.counter("x").inc(-1.0)

    def test_gauge_moves_both_ways(self):
        gauge = MetricsRegistry().gauge("queue.depth")
        gauge.set(10.0)
        gauge.inc(2.0)
        gauge.dec(5.0)
        assert gauge.value == 7.0

    def test_labels_address_distinct_instruments(self):
        registry = MetricsRegistry()
        registry.counter("solver.stage", method="gth").inc()
        registry.counter("solver.stage", method="power").inc(2)
        assert registry.counter("solver.stage", method="gth").value == 1.0
        assert registry.counter("solver.stage", method="power").value == 2.0
        assert len(registry.instruments()) == 2

    def test_histogram_cumulative_buckets(self):
        hist = MetricsRegistry().histogram("eval", buckets=(0.1, 1.0, 10.0))
        hist.observe_many([0.05, 0.5, 0.5, 5.0, 50.0])
        assert hist.bucket_counts == [1, 3, 4, 5]  # cumulative, +Inf last
        assert hist.count == 5
        assert hist.mean() == pytest.approx(56.05 / 5)

    def test_histogram_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            MetricsRegistry().histogram("bad", buckets=(1.0, 0.5))

    def test_default_buckets_span_microseconds_to_seconds(self):
        assert DEFAULT_BUCKETS[0] == pytest.approx(1e-6)
        assert DEFAULT_BUCKETS[-1] == pytest.approx(100.0)


class TestExport:
    def test_to_dict_and_summary(self):
        registry = MetricsRegistry()
        registry.counter("engine.tasks").inc(3)
        registry.histogram("eval", buckets=(1.0,)).observe(0.5)
        doc = registry.to_dict()
        assert doc["engine.tasks"] == {"kind": "counter", "value": 3}
        assert doc["eval"]["count"] == 1
        flat = registry.summary()
        assert flat["engine.tasks"] == 3.0
        assert flat["eval.count"] == 1.0
        assert flat["eval.sum"] == 0.5

    def test_prometheus_counter_and_name_sanitization(self):
        registry = MetricsRegistry()
        registry.counter("engine.cache.hits").inc(7)
        text = to_prometheus(registry)
        assert "# TYPE repro_engine_cache_hits counter" in text
        assert "repro_engine_cache_hits 7" in text

    def test_prometheus_labels_and_histogram_series(self):
        registry = MetricsRegistry()
        registry.counter("solver.stage", method="gth").inc()
        registry.histogram("eval_seconds", buckets=(1.0,)).observe(0.5)
        text = to_prometheus(registry)
        assert 'repro_solver_stage{method="gth"} 1' in text
        assert 'repro_eval_seconds_bucket{le="1"} 1' in text
        assert 'repro_eval_seconds_bucket{le="+Inf"} 1' in text
        assert "repro_eval_seconds_sum 0.5" in text
        assert "repro_eval_seconds_count 1" in text

    def test_null_registry_is_silent(self):
        NULL_METRICS.counter("anything").inc(100)
        NULL_METRICS.histogram("h").observe(1.0)
        assert NULL_METRICS.to_dict() == {}
        assert NULL_METRICS.summary() == {}
        assert to_prometheus(NULL_METRICS) == ""
