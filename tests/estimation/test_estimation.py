"""Unit tests for the parameter-estimation package."""

import math

import numpy as np
import pytest

from repro.distributions import Exponential, Weibull
from repro.estimation import (
    estimate_availability,
    estimate_rate,
    fit_weibull_mle,
    fit_weibull_moments,
    kaplan_meier,
    rate_confidence_interval,
    zero_failure_rate_upper_bound,
)
from repro.exceptions import DistributionError


class TestExponentialRate:
    def test_complete_sample_mle(self):
        est = estimate_rate([10.0, 20.0, 30.0])
        assert est.rate == pytest.approx(3 / 60.0)
        assert est.mttf == pytest.approx(20.0)

    def test_censoring_adds_exposure_not_failures(self):
        est = estimate_rate([100.0, 300.0], censoring_times=[600.0])
        assert est.failures == 2
        assert est.total_time == pytest.approx(1000.0)
        assert est.rate == pytest.approx(0.002)

    def test_recovers_true_rate(self, rng):
        true_rate = 0.05
        data = Exponential(true_rate).sample(rng, 20_000)
        est = estimate_rate(data)
        assert est.rate == pytest.approx(true_rate, rel=0.03)

    def test_ci_contains_point_estimate(self):
        lo, hi = rate_confidence_interval(5, 1000.0)
        assert lo < 5 / 1000.0 < hi

    def test_ci_narrows_with_failures(self):
        lo1, hi1 = rate_confidence_interval(2, 1000.0)
        lo2, hi2 = rate_confidence_interval(200, 100_000.0)
        assert (hi2 - lo2) / (200 / 100_000.0) < (hi1 - lo1) / (2 / 1000.0)

    def test_ci_coverage_simulation(self, rng):
        true_rate = 0.01
        covered = 0
        trials = 300
        for _ in range(trials):
            data = Exponential(true_rate).sample(rng, 20)
            est = estimate_rate(data)
            lo, hi = est.confidence_interval(0.9)
            if lo <= true_rate <= hi:
                covered += 1
        assert covered / trials == pytest.approx(0.9, abs=0.06)

    def test_zero_failures_lower_bound_zero(self):
        lo, hi = rate_confidence_interval(0, 1000.0)
        assert lo == 0.0
        assert hi > 0.0

    def test_zero_failure_bound_formula(self):
        assert zero_failure_rate_upper_bound(10_000.0, 0.95) == pytest.approx(
            -math.log(0.05) / 10_000.0
        )

    def test_invalid_inputs(self):
        with pytest.raises(DistributionError):
            estimate_rate([])
        with pytest.raises(DistributionError):
            estimate_rate([-1.0])
        with pytest.raises(DistributionError):
            rate_confidence_interval(2, 0.0)
        with pytest.raises(DistributionError):
            zero_failure_rate_upper_bound(100.0, 1.5)


class TestWeibullFit:
    def test_mle_recovers_parameters(self, rng):
        data = Weibull(shape=2.0, scale=10.0).sample(rng, 5000)
        est = fit_weibull_mle(data)
        assert est.shape == pytest.approx(2.0, rel=0.05)
        assert est.scale == pytest.approx(10.0, rel=0.05)

    def test_mle_exponential_special_case(self, rng):
        data = Exponential(0.1).sample(rng, 5000)
        est = fit_weibull_mle(data)
        assert est.shape == pytest.approx(1.0, rel=0.05)
        assert est.scale == pytest.approx(10.0, rel=0.05)

    def test_mle_with_censoring_less_biased(self, rng):
        # Heavy right censoring at t=8 on Weibull(2, 10): ignoring the
        # censored units badly underestimates the scale.
        full = Weibull(shape=2.0, scale=10.0).sample(rng, 4000)
        observed = full[full <= 8.0]
        censored = np.full((full > 8.0).sum(), 8.0)
        naive = fit_weibull_mle(observed)
        proper = fit_weibull_mle(observed, censoring_times=censored)
        assert abs(proper.scale - 10.0) < abs(naive.scale - 10.0)
        assert proper.scale == pytest.approx(10.0, rel=0.1)

    def test_moments_fit(self, rng):
        data = Weibull(shape=3.0, scale=5.0).sample(rng, 5000)
        est = fit_weibull_moments(data)
        assert est.shape == pytest.approx(3.0, rel=0.1)
        assert est.scale == pytest.approx(5.0, rel=0.05)

    def test_distribution_accessor(self, rng):
        data = Weibull(shape=2.0, scale=1.0).sample(rng, 500)
        est = fit_weibull_mle(data)
        assert est.distribution().mean() == pytest.approx(data.mean(), rel=0.1)

    def test_needs_two_points(self):
        with pytest.raises(DistributionError):
            fit_weibull_mle([1.0])
        with pytest.raises(DistributionError):
            fit_weibull_moments([1.0])

    def test_positive_times_required(self):
        with pytest.raises(DistributionError):
            fit_weibull_mle([1.0, 0.0])


class TestKaplanMeier:
    def test_no_censoring_is_ecdf(self):
        km = kaplan_meier([1.0, 2.0, 3.0, 4.0])
        np.testing.assert_allclose(km.survival, [0.75, 0.5, 0.25, 0.0])

    def test_censoring_redistributes(self):
        km = kaplan_meier([1.0, 3.0], censoring_times=[2.0])
        # at t=1: 3 at risk -> 2/3; at t=3: 1 at risk -> 0
        np.testing.assert_allclose(km.survival, [2 / 3, 0.0])

    def test_step_function_evaluation(self):
        km = kaplan_meier([1.0, 2.0])
        assert km.survival_at(0.5) == 1.0
        assert km.survival_at(1.5) == 0.5
        assert km.survival_at(5.0) == 0.0

    def test_matches_true_survival(self, rng):
        dist = Exponential(1.0)
        data = dist.sample(rng, 5000)
        km = kaplan_meier(data)
        for t in (0.5, 1.0, 2.0):
            assert km.survival_at(t) == pytest.approx(dist.sf(t), abs=0.03)

    def test_confidence_band_orders(self):
        km = kaplan_meier([1.0, 2.0, 3.0, 4.0, 5.0], censoring_times=[2.5])
        low, high = km.confidence_band(0.9)
        assert np.all(low <= km.survival + 1e-12)
        assert np.all(km.survival <= high + 1e-12)

    def test_median(self):
        km = kaplan_meier([1.0, 2.0, 3.0, 4.0])
        assert km.median_lifetime() == 2.0

    def test_needs_failures(self):
        with pytest.raises(DistributionError):
            kaplan_meier([], censoring_times=[1.0])


class TestAvailabilityEstimation:
    def test_point_estimate(self):
        est = estimate_availability([99.0, 101.0, 100.0], [1.0, 1.0, 1.0])
        assert est.availability == pytest.approx(100 / 101)
        assert est.n_cycles == 3

    def test_recovers_true_availability(self, rng):
        up = Exponential(0.01).sample(rng, 2000)   # MTTF 100
        down = Exponential(1.0).sample(rng, 2000)  # MTTR 1
        est = estimate_availability(up, down)
        assert est.availability == pytest.approx(100 / 101, abs=0.002)
        lo, hi = est.confidence_interval(0.99)
        assert lo <= 100 / 101 <= hi

    def test_ci_clipped_to_unit_interval(self):
        est = estimate_availability([1.0, 1.0], [0.0, 0.0])
        lo, hi = est.confidence_interval()
        assert 0.0 <= lo <= hi <= 1.0

    def test_downtime_annualization(self):
        est = estimate_availability([99.0, 99.0], [1.0, 1.0])
        assert est.downtime_minutes_per_year == pytest.approx(0.01 * 525_600)

    def test_needs_two_cycles(self):
        with pytest.raises(DistributionError):
            estimate_availability([1.0], [1.0])
