"""Unit tests for Markov regenerative processes."""

import math

import numpy as np
import pytest

from repro.distributions import Deterministic, Erlang, Exponential
from repro.exceptions import ModelDefinitionError, StateSpaceError
from repro.markov import CTMC, MarkovRegenerativeProcess, SemiMarkovProcess


class TestConstruction:
    def test_overlapping_general_regions_rejected(self):
        mrgp = MarkovRegenerativeProcess()
        mrgp.add_exponential("a", "b", 1.0)
        mrgp.add_general("g1", Deterministic(1.0), ["a"], {"a": "b"})
        with pytest.raises(ModelDefinitionError):
            mrgp.add_general("g2", Deterministic(2.0), ["a"], {"a": "b"})

    def test_missing_target_rejected(self):
        mrgp = MarkovRegenerativeProcess()
        with pytest.raises(ModelDefinitionError):
            mrgp.add_general("g", Deterministic(1.0), ["a", "b"], {"a": "c"})

    def test_self_loop_rejected(self):
        with pytest.raises(ModelDefinitionError):
            MarkovRegenerativeProcess().add_exponential("a", "a", 1.0)


class TestDegenerateCases:
    def test_pure_exponential_matches_ctmc(self):
        mrgp = MarkovRegenerativeProcess()
        mrgp.add_exponential("up", "down", 1.0)
        mrgp.add_exponential("down", "up", 9.0)
        pi = mrgp.steady_state()
        assert pi["up"] == pytest.approx(0.9)

    def test_deterministic_repair_matches_smp(self):
        mrgp = MarkovRegenerativeProcess()
        mrgp.add_exponential("up", "down", 0.01)
        mrgp.add_general("repair", Deterministic(5.0), ["down"], {"down": "up"})
        pi = mrgp.steady_state()
        assert pi["up"] == pytest.approx(100.0 / 105.0, rel=1e-9)

    def test_exponential_general_matches_ctmc(self):
        # A "general" transition that happens to be exponential must agree
        # with the plain CTMC answer (quadrature path).
        mrgp = MarkovRegenerativeProcess()
        mrgp.add_exponential("up", "down", 1.0)
        mrgp.add_general("rep", Exponential(9.0), ["down"], {"down": "up"})
        pi = mrgp.steady_state(n_quadrature=256)
        assert pi["up"] == pytest.approx(0.9, rel=1e-3)

    def test_erlang_general(self):
        mrgp = MarkovRegenerativeProcess()
        mrgp.add_exponential("up", "down", 0.1)
        mrgp.add_general("rep", Erlang.from_mean(2.0, stages=4), ["down"], {"down": "up"})
        pi = mrgp.steady_state(n_quadrature=256)
        assert pi["up"] == pytest.approx(10.0 / 12.0, rel=1e-3)


class TestTimerAcrossStates:
    def rejuvenation(self, tau):
        mrgp = MarkovRegenerativeProcess()
        mrgp.add_exponential("robust", "degraded", 0.1)
        mrgp.add_exponential("degraded", "failed", 0.05)
        mrgp.add_exponential("failed", "robust", 2.0)
        mrgp.add_exponential("rejuv", "robust", 6.0)
        mrgp.add_general(
            "timer", Deterministic(tau), ["robust", "degraded"],
            {"robust": "rejuv", "degraded": "rejuv"},
        )
        return mrgp

    def test_probabilities_sum_to_one(self):
        pi = self.rejuvenation(8.0).steady_state()
        assert sum(pi.values()) == pytest.approx(1.0, abs=1e-9)

    def test_short_timer_increases_planned_downtime(self):
        short = self.rejuvenation(2.0).steady_state()
        long = self.rejuvenation(50.0).steady_state()
        assert short["rejuv"] > long["rejuv"]
        assert short["failed"] < long["failed"]

    def test_timer_longer_than_any_activity_approaches_no_rejuvenation(self):
        pi = self.rejuvenation(100_000.0).steady_state()
        baseline = CTMC()
        baseline.add_transition("robust", "degraded", 0.1)
        baseline.add_transition("degraded", "failed", 0.05)
        baseline.add_transition("failed", "robust", 2.0)
        pi_base = baseline.steady_state()
        assert pi["failed"] == pytest.approx(pi_base["failed"], rel=0.01)
        assert pi["rejuv"] == pytest.approx(0.0, abs=1e-3)

    def test_agreement_with_simulation(self, rng):
        tau = 8.0
        pi = self.rejuvenation(tau).steady_state()
        # hand-rolled discrete-event simulation of the same MRGP
        horizon = 200_000.0
        t, state, timer = 0.0, "robust", tau
        occupancy = {"robust": 0.0, "degraded": 0.0, "failed": 0.0, "rejuv": 0.0}
        rates = {"robust": [("degraded", 0.1)], "degraded": [("failed", 0.05)],
                 "failed": [("robust", 2.0)], "rejuv": [("robust", 6.0)]}
        while t < horizon:
            moves = rates[state]
            total = sum(r for _, r in moves)
            dwell = rng.exponential(1 / total)
            if state in ("robust", "degraded") and dwell >= timer:
                occupancy[state] += timer
                t += timer
                state, timer = "rejuv", tau
                continue
            occupancy[state] += dwell
            t += dwell
            if state in ("robust", "degraded"):
                timer -= dwell
            nxt = moves[0][0]
            if state in ("failed", "rejuv"):
                timer = tau  # timer rearms on re-entering the up region
            state = nxt
        total_time = sum(occupancy.values())
        for s in occupancy:
            assert occupancy[s] / total_time == pytest.approx(pi[s], abs=0.01)


class TestErrors:
    def test_absorbing_state_rejected(self):
        mrgp = MarkovRegenerativeProcess()
        mrgp.add_exponential("a", "b", 1.0)  # b is absorbing
        with pytest.raises(StateSpaceError):
            mrgp.steady_state()

    def test_reward_rate(self):
        mrgp = MarkovRegenerativeProcess()
        mrgp.add_exponential("up", "down", 0.01)
        mrgp.add_general("rep", Deterministic(5.0), ["down"], {"down": "up"})
        assert mrgp.expected_reward_rate({"up": 1.0}) == pytest.approx(100 / 105, rel=1e-9)
        assert mrgp.steady_state_availability(["up"]) == pytest.approx(100 / 105, rel=1e-9)
