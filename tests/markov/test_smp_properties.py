"""Property-based tests for semi-Markov processes (hypothesis).

The headline invariant is *insensitivity*: the SMP steady state depends
on holding-time distributions only through their means, so swapping any
holding distribution for another with the same mean cannot change the
long-run state probabilities.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributions import Deterministic, Erlang, Exponential, Lognormal, Uniform
from repro.markov import SemiMarkovProcess

means = st.floats(min_value=0.1, max_value=50.0)


def dist_with_mean(kind: str, mean: float):
    if kind == "exp":
        return Exponential(1.0 / mean)
    if kind == "det":
        return Deterministic(mean)
    if kind == "erlang":
        return Erlang.from_mean(mean, stages=3)
    if kind == "lognormal":
        return Lognormal.from_mean_cv(mean, cv=1.2)
    return Uniform(0.5 * mean, 1.5 * mean)


KINDS = ["exp", "det", "erlang", "lognormal", "uniform"]


@st.composite
def cyclic_smps(draw):
    """A random cycle of 2-5 states with random holding kinds & means."""
    n = draw(st.integers(min_value=2, max_value=5))
    hold_means = [draw(means) for _ in range(n)]
    kinds = [draw(st.sampled_from(KINDS)) for _ in range(n)]
    smp = SemiMarkovProcess()
    for i in range(n):
        smp.add_transition(i, (i + 1) % n, 1.0, dist_with_mean(kinds[i], hold_means[i]))
    return smp, hold_means, kinds


@settings(max_examples=50, deadline=None)
@given(data=cyclic_smps())
def test_cycle_steady_state_proportional_to_means(data):
    smp, hold_means, _kinds = data
    pi = smp.steady_state()
    total = sum(hold_means)
    for i, mean in enumerate(hold_means):
        assert pi[i] == pytest.approx(mean / total, rel=1e-9)


@settings(max_examples=50, deadline=None)
@given(data=cyclic_smps(), swap_kind=st.sampled_from(KINDS))
def test_insensitivity_to_holding_shape(data, swap_kind):
    smp, hold_means, kinds = data
    pi_before = smp.steady_state()
    # Rebuild with state 0's holding swapped for a same-mean alternative.
    rebuilt = SemiMarkovProcess()
    n = len(hold_means)
    for i in range(n):
        kind = swap_kind if i == 0 else kinds[i]
        rebuilt.add_transition(i, (i + 1) % n, 1.0, dist_with_mean(kind, hold_means[i]))
    pi_after = rebuilt.steady_state()
    for state in pi_before:
        assert pi_after[state] == pytest.approx(pi_before[state], rel=1e-9)


@settings(max_examples=40, deadline=None)
@given(
    branch=st.floats(min_value=0.05, max_value=0.95),
    m_fast=means,
    m_slow=means,
    m_up=means,
)
def test_branching_steady_state_closed_form(branch, m_fast, m_slow, m_up):
    smp = SemiMarkovProcess()
    smp.add_transition("up", "fast", branch, Exponential(1.0 / m_up))
    smp.add_transition("up", "slow", 1.0 - branch, Exponential(1.0 / m_up))
    smp.add_transition("fast", "up", 1.0, Deterministic(m_fast))
    smp.add_transition("slow", "up", 1.0, Lognormal.from_mean_cv(m_slow, cv=0.8))
    pi = smp.steady_state()
    cycle = m_up + branch * m_fast + (1.0 - branch) * m_slow
    assert pi["up"] == pytest.approx(m_up / cycle, rel=1e-9)
    assert pi["fast"] == pytest.approx(branch * m_fast / cycle, rel=1e-9)


@settings(max_examples=40, deadline=None)
@given(data=cyclic_smps())
def test_mean_sojourns_positive_and_match_inputs(data):
    smp, hold_means, _kinds = data
    for i, mean in enumerate(hold_means):
        assert smp.mean_sojourn(i) == pytest.approx(mean, rel=1e-9)
