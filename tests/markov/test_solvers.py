"""Unit tests for the numeric solver kernels."""

import math

import numpy as np
import pytest
from scipy import sparse
from scipy.linalg import expm

from repro.exceptions import ModelDefinitionError, SolverError
from repro.markov import (
    cumulative_uniformization,
    gth_solve,
    poisson_truncation_point,
    steady_state_direct,
    steady_state_power,
    transient_uniformization,
    uniformized_matrix,
)


def random_generator(n, seed, stiff=False):
    rng = np.random.default_rng(seed)
    q = rng.uniform(0.1, 2.0, size=(n, n))
    if stiff:
        q *= 10.0 ** rng.integers(-4, 4, size=(n, n))
    np.fill_diagonal(q, 0.0)
    np.fill_diagonal(q, -q.sum(axis=1))
    return q


class TestGTH:
    def test_two_state(self):
        q = np.array([[-1.0, 1.0], [9.0, -9.0]])
        pi = gth_solve(q)
        np.testing.assert_allclose(pi, [0.9, 0.1])

    def test_single_state(self):
        np.testing.assert_allclose(gth_solve(np.zeros((1, 1))), [1.0])

    @pytest.mark.parametrize("seed", range(4))
    def test_random_chain_satisfies_balance(self, seed):
        q = random_generator(8, seed)
        pi = gth_solve(q)
        np.testing.assert_allclose(pi @ q, 0.0, atol=1e-12)
        assert pi.sum() == pytest.approx(1.0)
        assert np.all(pi > 0)

    def test_stiff_chain_accuracy(self):
        # Rates spanning 8 orders of magnitude: GTH must stay accurate.
        q = np.array(
            [
                [-1e-8, 1e-8, 0.0],
                [1.0, -1.0 - 1e-8, 1e-8],
                [0.0, 1e4, -1e4],
            ]
        )
        pi = gth_solve(q)
        np.testing.assert_allclose(pi @ q, 0.0, atol=1e-18)
        assert pi.sum() == pytest.approx(1.0)

    def test_reducible_chain_rejected(self):
        q = np.array([[-1.0, 1.0, 0.0], [1.0, -1.0, 0.0], [0.0, 0.0, 0.0]])
        # State 2 is absorbing and unreachable-from block structure breaks GTH.
        with pytest.raises(SolverError):
            gth_solve(q)

    def test_non_square_rejected(self):
        with pytest.raises(ModelDefinitionError):
            gth_solve(np.zeros((2, 3)))


class TestDirectAndPower:
    @pytest.mark.parametrize("seed", range(3))
    def test_all_methods_agree(self, seed):
        q = random_generator(10, seed)
        pi_gth = gth_solve(q)
        pi_direct = steady_state_direct(sparse.csr_matrix(q))
        pi_power = steady_state_power(sparse.csr_matrix(q))
        np.testing.assert_allclose(pi_direct, pi_gth, atol=1e-8)
        np.testing.assert_allclose(pi_power, pi_gth, atol=1e-8)

    def test_power_on_periodic_structure(self):
        # A 2-cycle: uniformization damping must still converge.
        q = np.array([[-1.0, 1.0], [1.0, -1.0]])
        pi = steady_state_power(sparse.csr_matrix(q))
        np.testing.assert_allclose(pi, [0.5, 0.5], atol=1e-9)


class TestUniformization:
    def test_uniformized_matrix_stochastic(self):
        q = random_generator(6, 1)
        p, lam = uniformized_matrix(sparse.csr_matrix(q))
        np.testing.assert_allclose(np.asarray(p.sum(axis=1)).ravel(), 1.0)
        assert lam >= -q.diagonal().max()

    def test_all_absorbing_gives_identity(self):
        q = sparse.csr_matrix((3, 3))
        p, lam = uniformized_matrix(q)
        np.testing.assert_allclose(p.toarray(), np.eye(3))

    def test_poisson_truncation_monotone(self):
        assert poisson_truncation_point(10.0, 1e-12) > poisson_truncation_point(10.0, 1e-4)
        assert poisson_truncation_point(0.0, 1e-10) == 0

    def test_matches_matrix_exponential(self):
        q = random_generator(5, 3)
        p0 = np.zeros(5)
        p0[0] = 1.0
        times = np.array([0.0, 0.1, 1.0, 5.0])
        got = transient_uniformization(sparse.csr_matrix(q), p0, times, tol=1e-12)
        for k, t in enumerate(times):
            expected = p0 @ expm(q * t)
            np.testing.assert_allclose(got[k], expected, atol=1e-9)

    def test_rows_sum_to_one(self):
        q = random_generator(6, 4)
        p0 = np.full(6, 1 / 6)
        got = transient_uniformization(sparse.csr_matrix(q), p0, np.array([2.0]), tol=1e-12)
        assert got[0].sum() == pytest.approx(1.0, abs=1e-10)

    def test_absorbing_chain_transient(self):
        q = np.array([[-2.0, 2.0], [0.0, 0.0]])
        p0 = np.array([1.0, 0.0])
        got = transient_uniformization(sparse.csr_matrix(q), p0, np.array([1.0]))
        assert got[0, 0] == pytest.approx(math.exp(-2.0), abs=1e-9)


class TestCumulative:
    def test_two_state_closed_form(self):
        lam, mu = 1.0, 9.0
        q = np.array([[-lam, lam], [mu, -mu]])
        p0 = np.array([1.0, 0.0])
        t = 0.7
        got = cumulative_uniformization(sparse.csr_matrix(q), p0, np.array([t]), tol=1e-12)
        a_ss = mu / (lam + mu)
        expected_up = a_ss * t + (lam / (lam + mu) ** 2) * (1 - math.exp(-(lam + mu) * t))
        assert got[0, 0] == pytest.approx(expected_up, rel=1e-8)

    def test_row_sums_equal_time(self):
        q = random_generator(5, 9)
        p0 = np.zeros(5)
        p0[2] = 1.0
        times = np.array([0.5, 2.0, 10.0])
        got = cumulative_uniformization(sparse.csr_matrix(q), p0, times, tol=1e-12)
        np.testing.assert_allclose(got.sum(axis=1), times, rtol=1e-8)

    def test_zero_time(self):
        q = random_generator(4, 2)
        p0 = np.full(4, 0.25)
        got = cumulative_uniformization(sparse.csr_matrix(q), p0, np.array([0.0]))
        np.testing.assert_allclose(got[0], 0.0)
