"""Unit tests for the CTMC class and its dependability adapter."""

import math

import numpy as np
import pytest

from repro.exceptions import ModelDefinitionError, SolverError, StateSpaceError
from repro.markov import CTMC, MarkovDependabilityModel


def two_state(lam=1.0, mu=9.0):
    chain = CTMC()
    chain.add_transition("up", "down", lam)
    chain.add_transition("down", "up", mu)
    return chain


def shared_repair(lam=0.001, mu=0.1):
    chain = CTMC()
    chain.add_transition(2, 1, 2 * lam)
    chain.add_transition(1, 0, lam)
    chain.add_transition(1, 2, mu)
    chain.add_transition(0, 1, mu)
    return chain


class TestConstruction:
    def test_states_registered_in_order(self):
        chain = two_state()
        assert chain.states == ["up", "down"]
        assert chain.n_states == 2

    def test_rates_accumulate(self):
        chain = CTMC()
        chain.add_transition("a", "b", 1.0)
        chain.add_transition("a", "b", 2.0)
        assert chain.rate("a", "b") == pytest.approx(3.0)

    def test_self_loop_rejected(self):
        with pytest.raises(ModelDefinitionError):
            CTMC().add_transition("a", "a", 1.0)

    def test_invalid_rate_rejected(self):
        with pytest.raises(Exception):
            CTMC().add_transition("a", "b", -1.0)

    def test_generator_rows_sum_to_zero(self):
        q = shared_repair().generator().toarray()
        np.testing.assert_allclose(q.sum(axis=1), 0.0, atol=1e-15)

    def test_exit_rate(self):
        chain = shared_repair()
        assert chain.exit_rate(1) == pytest.approx(0.001 + 0.1)

    def test_unknown_state_rejected(self):
        with pytest.raises(ModelDefinitionError):
            two_state().index_of("nope")

    def test_absorbing_states(self):
        chain = CTMC()
        chain.add_transition("a", "b", 1.0)
        assert chain.absorbing_states() == ["b"]


class TestSteadyState:
    def test_two_state_balance(self):
        pi = two_state(1.0, 9.0).steady_state()
        assert pi["up"] == pytest.approx(0.9)
        assert pi["down"] == pytest.approx(0.1)

    @pytest.mark.parametrize("method", ["gth", "direct", "power"])
    def test_methods_agree(self, method):
        pi = shared_repair().steady_state(method)
        assert pi[2] + pi[1] == pytest.approx(0.99980396, abs=1e-8)

    def test_unknown_method_rejected(self):
        with pytest.raises(SolverError):
            two_state().steady_state("bogus")

    def test_expected_reward_rate(self):
        chain = two_state(1.0, 9.0)
        assert chain.expected_reward_rate({"up": 2.0}) == pytest.approx(1.8)


class TestTransient:
    def test_two_state_closed_form(self):
        lam, mu = 1.0, 9.0
        chain = two_state(lam, mu)
        for t in (0.0, 0.1, 0.5, 2.0):
            p = chain.transient(t, "up")
            expected = mu / (lam + mu) + lam / (lam + mu) * math.exp(-(lam + mu) * t)
            assert p["up"] == pytest.approx(expected, abs=1e-10)

    def test_ode_matches_uniformization(self):
        chain = shared_repair(0.1, 1.0)
        ts = np.array([0.5, 2.0, 10.0])
        uni = chain.transient(ts, 2)
        ode = chain.transient(ts, 2, method="ode")
        np.testing.assert_allclose(uni, ode, atol=1e-6)

    def test_initial_distribution(self):
        chain = two_state()
        p = chain.transient(0.0, {"up": 0.6, "down": 0.4})
        assert p["up"] == pytest.approx(0.6)

    def test_bad_initial_distribution_rejected(self):
        with pytest.raises(ModelDefinitionError):
            two_state().transient(1.0, {"up": 0.5})

    def test_transient_approaches_steady_state(self):
        chain = shared_repair(0.1, 1.0)
        pi = chain.steady_state()
        p = chain.transient(1000.0, 2)
        for state in chain.states:
            assert p[state] == pytest.approx(pi[state], abs=1e-8)

    def test_cumulative_transient_rows(self):
        chain = two_state()
        cum = chain.cumulative_transient([2.0], "up")
        assert cum[0].sum() == pytest.approx(2.0, rel=1e-8)


class TestAbsorbing:
    def test_mtta_two_unit_no_repair(self):
        chain = CTMC()
        chain.add_transition(2, 1, 2.0)
        chain.add_transition(1, 0, 1.0)
        assert chain.mean_time_to_absorption(2) == pytest.approx(1.5)

    def test_mtta_with_repair(self):
        # 2-unit parallel, shared repair, failure absorbs at 0:
        # MTTF = (3λ + μ) / (2λ²)
        lam, mu = 0.01, 1.0
        chain = CTMC()
        chain.add_transition(2, 1, 2 * lam)
        chain.add_transition(1, 2, mu)
        chain.add_transition(1, 0, lam)
        expected = (3 * lam + mu) / (2 * lam**2)
        assert chain.mean_time_to_absorption(2) == pytest.approx(expected, rel=1e-9)

    def test_explicit_absorbing_set(self):
        chain = shared_repair()
        mttf = chain.mean_time_to_absorption(2, absorbing=[0])
        lam, mu = 0.001, 0.1
        assert mttf == pytest.approx((3 * lam + mu) / (2 * lam**2), rel=1e-9)

    def test_no_absorbing_states_rejected(self):
        with pytest.raises(StateSpaceError):
            two_state().mean_time_to_absorption("up")

    def test_absorption_probabilities_split(self):
        chain = CTMC()
        chain.add_transition("s", "a", 1.0)
        chain.add_transition("s", "b", 3.0)
        probs = chain.absorption_probabilities("s")
        assert probs["a"] == pytest.approx(0.25)
        assert probs["b"] == pytest.approx(0.75)

    def test_absorption_probabilities_sum_to_one(self):
        chain = CTMC()
        chain.add_transition("s", "m", 2.0)
        chain.add_transition("m", "s", 1.0)
        chain.add_transition("m", "dead", 0.5)
        chain.add_transition("s", "gone", 0.1)
        probs = chain.absorption_probabilities("s")
        assert sum(probs.values()) == pytest.approx(1.0)

    def test_first_passage_mean(self):
        chain = two_state(2.0, 1.0)
        # up -> down first passage = 1/2
        assert chain.first_passage_mean("up", ["down"]) == pytest.approx(0.5)


class TestUtilities:
    def test_restricted(self):
        chain = shared_repair()
        sub = chain.restricted([2, 1])
        assert set(sub.states) == {2, 1}
        assert sub.rate(2, 1) == pytest.approx(0.002)

    def test_with_absorbing(self):
        chain = two_state()
        frozen = chain.with_absorbing(["down"])
        assert frozen.rate("down", "up") == 0.0
        assert frozen.rate("up", "down") == pytest.approx(1.0)


class TestDependabilityAdapter:
    def make(self):
        return MarkovDependabilityModel(shared_repair(), up_states=[2, 1], initial=2)

    def test_steady_state_availability(self):
        assert self.make().steady_state_availability() == pytest.approx(
            0.99980396, abs=1e-8
        )

    def test_availability_starts_at_one(self):
        assert self.make().availability(0.0) == pytest.approx(1.0)

    def test_reliability_below_availability(self):
        model = self.make()
        t = 500.0
        assert model.reliability(t) <= model.availability(t) + 1e-12

    def test_mttf_closed_form(self):
        lam, mu = 0.001, 0.1
        assert self.make().mttf() == pytest.approx((3 * lam + mu) / (2 * lam**2), rel=1e-9)

    def test_interval_availability_between_point_values(self):
        model = self.make()
        a_interval = model.interval_availability(1000.0)
        assert model.steady_state_availability() <= a_interval <= 1.0

    def test_unknown_up_state_rejected(self):
        with pytest.raises(ModelDefinitionError):
            MarkovDependabilityModel(shared_repair(), up_states=[99], initial=2)

    def test_empty_up_states_rejected(self):
        with pytest.raises(ModelDefinitionError):
            MarkovDependabilityModel(shared_repair(), up_states=[], initial=2)

    def test_downtime_minutes(self):
        model = self.make()
        expected = model.steady_state_unavailability() * 525_600
        assert model.downtime_minutes_per_year() == pytest.approx(expected)
