"""Unit tests for phase-type distributions and CTMC expansion."""

import math

import numpy as np
import pytest

from repro.distributions import (
    Erlang,
    Exponential,
    HyperExponential,
    HypoExponential,
    Lognormal,
    Weibull,
)
from repro.exceptions import DistributionError
from repro.markov import (
    CTMC,
    MarkovDependabilityModel,
    PhaseType,
    as_phase_type,
    expand_two_state_availability,
    fit_phase_type,
)


class TestRepresentation:
    def test_hypoexp_moments(self):
        ph = PhaseType([1.0, 0.0], [[-2.0, 2.0], [0.0, -3.0]])
        assert ph.mean() == pytest.approx(1 / 2 + 1 / 3)
        hypo = HypoExponential([2.0, 3.0])
        assert ph.variance() == pytest.approx(hypo.variance())

    def test_cdf_matches_analytic(self):
        ph = as_phase_type(HypoExponential([2.0, 3.0]))
        hypo = HypoExponential([2.0, 3.0])
        for t in (0.1, 0.5, 1.0, 3.0):
            assert ph.cdf(t) == pytest.approx(hypo.cdf(t), abs=1e-10)

    def test_pdf_matches_analytic(self):
        ph = as_phase_type(Exponential(2.0))
        assert ph.pdf(0.5) == pytest.approx(2.0 * math.exp(-1.0))

    def test_atom_at_zero(self):
        ph = PhaseType([0.7], [[-1.0]])
        assert ph.cdf(0.0) == pytest.approx(0.3)

    def test_invalid_subgenerator_rejected(self):
        with pytest.raises(DistributionError):
            PhaseType([1.0], [[1.0]])  # positive diagonal
        with pytest.raises(DistributionError):
            PhaseType([1.0, 0.0], [[-1.0, 2.0], [0.0, -1.0]])  # row sum > 0

    def test_alpha_validation(self):
        with pytest.raises(DistributionError):
            PhaseType([0.7, 0.7], [[-1.0, 0.0], [0.0, -1.0]])


class TestConversion:
    def test_exponential(self):
        ph = as_phase_type(Exponential(3.0))
        assert ph.n_phases == 1
        assert ph.mean() == pytest.approx(1 / 3)

    def test_erlang(self):
        e = Erlang(stages=4, rate=2.0)
        ph = as_phase_type(e)
        assert ph.n_phases == 4
        assert ph.mean() == pytest.approx(e.mean())
        assert ph.variance() == pytest.approx(e.variance())

    def test_hyperexponential(self):
        h = HyperExponential([0.4, 0.6], [1.0, 5.0])
        ph = as_phase_type(h)
        assert ph.mean() == pytest.approx(h.mean())
        for t in (0.2, 1.0, 4.0):
            assert ph.cdf(t) == pytest.approx(h.cdf(t), abs=1e-10)

    def test_unsupported_raises(self):
        with pytest.raises(DistributionError):
            as_phase_type(Weibull(shape=2.0, scale=1.0))

    def test_fit_weibull_two_moments(self):
        w = Weibull(shape=2.0, scale=1.0)
        ph = fit_phase_type(w)
        assert ph.mean() == pytest.approx(w.mean(), rel=1e-9)


class TestClosure:
    def test_convolution_mean_adds(self):
        a = as_phase_type(Exponential(1.0))
        b = as_phase_type(Erlang(stages=2, rate=4.0))
        conv = a.convolve(b)
        assert conv.mean() == pytest.approx(1.0 + 0.5)
        assert conv.variance() == pytest.approx(1.0 + 2 / 16)

    def test_mixture(self):
        a = as_phase_type(Exponential(1.0))
        b = as_phase_type(Exponential(2.0))
        mix = a.mixture(b, weight=0.3)
        assert mix.mean() == pytest.approx(0.3 * 1.0 + 0.7 * 0.5)

    def test_minimum_of_exponentials(self):
        a = as_phase_type(Exponential(2.0))
        b = as_phase_type(Exponential(3.0))
        assert a.minimum(b).mean() == pytest.approx(0.2)

    def test_minimum_cdf_dominates(self):
        a = as_phase_type(Erlang(stages=2, rate=1.0))
        b = as_phase_type(Exponential(0.5))
        m = a.minimum(b)
        for t in (0.5, 1.0, 2.0):
            assert m.cdf(t) >= max(a.cdf(t), b.cdf(t)) - 1e-9


class TestSampling:
    def test_sample_mean(self, rng):
        ph = as_phase_type(HypoExponential([1.0, 2.0]))
        draws = ph.sample(rng, 30_000)
        assert draws.mean() == pytest.approx(1.5, rel=0.03)

    def test_hyperexp_sample(self, rng):
        ph = as_phase_type(HyperExponential([0.5, 0.5], [1.0, 10.0]))
        draws = ph.sample(rng, 30_000)
        assert draws.mean() == pytest.approx(0.55, rel=0.05)


class TestExpansion:
    def test_to_absorbing_ctmc_mtta_is_mean(self):
        ph = as_phase_type(Erlang(stages=3, rate=2.0))
        chain = ph.to_absorbing_ctmc()
        assert chain.mean_time_to_absorption("ph0") == pytest.approx(1.5)

    def test_two_state_expansion_availability(self):
        chain, ups, downs = expand_two_state_availability(
            Erlang(2, 2.0), Exponential(4.0)
        )
        model = MarkovDependabilityModel(chain, ups, initial=ups[0])
        assert model.steady_state_availability() == pytest.approx(1.0 / 1.25)

    def test_expansion_fits_non_ph_uptime(self):
        w = Weibull(shape=2.0, scale=1.0)
        chain, ups, downs = expand_two_state_availability(w, Exponential(4.0))
        model = MarkovDependabilityModel(chain, ups, initial=ups[0])
        exact = w.mean() / (w.mean() + 0.25)
        assert model.steady_state_availability() == pytest.approx(exact, rel=1e-9)

    def test_expansion_phase_counts(self):
        chain, ups, downs = expand_two_state_availability(
            Erlang(3, 1.0), Erlang(2, 1.0)
        )
        assert len(ups) == 3
        assert len(downs) == 2
        assert chain.n_states == 5
