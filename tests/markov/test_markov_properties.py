"""Property-based tests for Markov analysis (hypothesis).

Invariants: steady-state vectors are distributions satisfying global
balance; the three solvers agree; transients conserve probability and
converge to the stationary vector; MTTA decomposes over first steps.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.markov import CTMC, gth_solve

rates = st.floats(min_value=0.01, max_value=50.0)


@st.composite
def irreducible_chains(draw, max_states=6):
    """Random irreducible CTMCs (a cycle backbone plus random extras)."""
    n = draw(st.integers(min_value=2, max_value=max_states))
    chain = CTMC()
    for i in range(n):
        chain.add_transition(i, (i + 1) % n, draw(rates))
    n_extra = draw(st.integers(min_value=0, max_value=n))
    for _ in range(n_extra):
        i = draw(st.integers(0, n - 1))
        j = draw(st.integers(0, n - 1))
        if i != j:
            chain.add_transition(i, j, draw(rates))
    return chain


@settings(max_examples=60, deadline=None)
@given(chain=irreducible_chains())
def test_steady_state_is_distribution(chain):
    pi = chain.steady_state()
    values = np.array(list(pi.values()))
    assert values.sum() == pytest.approx(1.0, abs=1e-9)
    assert np.all(values >= -1e-12)


@settings(max_examples=60, deadline=None)
@given(chain=irreducible_chains())
def test_global_balance(chain):
    pi = chain.steady_state()
    q = chain.generator().toarray()
    vec = np.array([pi[s] for s in chain.states])
    np.testing.assert_allclose(vec @ q, 0.0, atol=1e-9)


@settings(max_examples=30, deadline=None)
@given(chain=irreducible_chains())
def test_solver_agreement(chain):
    pi_gth = chain.steady_state("gth")
    pi_direct = chain.steady_state("direct")
    for state in chain.states:
        assert pi_direct[state] == pytest.approx(pi_gth[state], abs=1e-7)


@settings(max_examples=40, deadline=None)
@given(chain=irreducible_chains(), t=st.floats(min_value=0.0, max_value=20.0))
def test_transient_conserves_probability(chain, t):
    probs = chain.transient(np.array([t]), chain.states[0])
    assert probs[0].sum() == pytest.approx(1.0, abs=1e-8)
    assert np.all(probs[0] >= -1e-10)


@settings(max_examples=15, deadline=None)
@given(chain=irreducible_chains())
def test_transient_converges_to_steady_state(chain):
    pi = chain.steady_state()
    # mixing time scales with 1/min_rate; 60/min_exit is generous while
    # keeping the uniformization horizon affordable
    horizon = 60.0 / min(chain.exit_rate(s) for s in chain.states)
    probs = chain.transient(np.array([horizon]), chain.states[0], tol=1e-8)
    for idx, state in enumerate(chain.states):
        assert probs[0][idx] == pytest.approx(pi[state], abs=1e-4)


@settings(max_examples=30, deadline=None)
@given(chain=irreducible_chains(), t=st.floats(min_value=0.1, max_value=10.0))
def test_cumulative_rows_sum_to_time(chain, t):
    cum = chain.cumulative_transient([t], chain.states[0])
    assert cum[0].sum() == pytest.approx(t, rel=1e-6)


@settings(max_examples=30, deadline=None)
@given(chain=irreducible_chains(), rate=rates)
def test_mtta_first_step_decomposition(chain, rate):
    # Add an absorbing exit from state 0; check m_0 = h_0 + sum p_0j m_j.
    chain.add_transition(0, "dead", rate)
    states = [s for s in chain.states if s != "dead"]
    m = {s: chain.mean_time_to_absorption(s) for s in states}
    exit_rate = chain.exit_rate(0)
    expected = 1.0 / exit_rate
    for target in states:
        r = chain.rate(0, target)
        if r > 0:
            expected += (r / exit_rate) * m[target]
    assert m[0] == pytest.approx(expected, rel=1e-6)
