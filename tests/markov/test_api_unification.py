"""The unified solver API: ``method=`` everywhere, ``strategy=`` deprecated."""

import warnings

import numpy as np
import pytest

from repro.exceptions import ModelDefinitionError, SolverError
from repro.markov import CTMC, solve_steady_state, solve_transient
from repro.markov.fallback import resolve_method_kwarg

TWO_STATE = np.array([[-1e-3, 1e-3], [0.5, -0.5]])


def _chain() -> CTMC:
    chain = CTMC()
    chain.add_transition("up", "down", 1e-3)
    chain.add_transition("down", "up", 0.5)
    return chain


class TestDeprecatedStrategyKwarg:
    def test_warns_exactly_once_per_call(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            solve_steady_state(TWO_STATE, strategy="gth")
        deprecations = [w for w in caught if issubclass(w.category, DeprecationWarning)]
        assert len(deprecations) == 1
        assert "strategy=" in str(deprecations[0].message)
        assert "method=" in str(deprecations[0].message)

    @pytest.mark.parametrize("name", ["auto", "gth", "direct", "power"])
    def test_result_bit_identical_to_method(self, name):
        with pytest.warns(DeprecationWarning):
            old = solve_steady_state(TWO_STATE, strategy=name)
        new = solve_steady_state(TWO_STATE, method=name)
        assert np.array_equal(old.pi, new.pi)  # bit-identical, not just close
        assert old.method == new.method
        assert old.order == new.order

    def test_conflicting_values_raise(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ModelDefinitionError, match="method= only"):
                solve_steady_state(TWO_STATE, method="gth", strategy="power")

    def test_agreeing_values_accepted(self):
        with pytest.warns(DeprecationWarning):
            report = solve_steady_state(TWO_STATE, method="gth", strategy="gth")
        assert report.method == "gth"

    def test_method_alone_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            solve_steady_state(TWO_STATE, method="gth")

    def test_steady_state_report_shim(self):
        chain = _chain()
        with pytest.warns(DeprecationWarning):
            old = chain.steady_state_report(strategy="gth")
        new = chain.steady_state_report(method="gth")
        assert np.array_equal(old.pi, new.pi)

    def test_resolve_method_kwarg_default(self):
        assert resolve_method_kwarg(None, None, "f") == "auto"
        assert resolve_method_kwarg(None, None, "f", default="gth") == "gth"
        assert resolve_method_kwarg("power", None, "f") == "power"


class TestTransientFrontDoor:
    times = np.array([0.5, 2.0, 10.0])
    initial = np.array([1.0, 0.0])

    def test_auto_matches_uniformization(self):
        auto = solve_transient(TWO_STATE, self.initial, self.times, method="auto")
        uni = solve_transient(TWO_STATE, self.initial, self.times, method="uniformization")
        np.testing.assert_array_equal(auto, uni)

    def test_ode_agrees_with_uniformization(self):
        uni = solve_transient(TWO_STATE, self.initial, self.times, method="uniformization")
        ode = solve_transient(TWO_STATE, self.initial, self.times, method="ode", tol=1e-10)
        np.testing.assert_allclose(ode, uni, atol=1e-7)

    def test_unknown_method_rejected(self):
        with pytest.raises(ModelDefinitionError, match="transient method"):
            solve_transient(TWO_STATE, self.initial, self.times, method="magic")

    def test_ctmc_transient_accepts_auto(self):
        chain = _chain()
        auto = chain.transient(self.times, initial="up", method="auto")
        default = chain.transient(self.times, initial="up")
        np.testing.assert_array_equal(auto, default)

    def test_ctmc_transient_unknown_method_still_rejected(self):
        with pytest.raises(SolverError, match="transient method"):
            _chain().transient(1.0, initial="up", method="magic")


class TestSolverSpans:
    def test_steady_state_spans_record_stages(self):
        from repro.obs import trace

        with trace("solve") as t:
            report = solve_steady_state(TWO_STATE, method="auto")
        outer = t.root.find("solver.steady_state")
        assert len(outer) == 1
        assert outer[0].attributes["method"] == "auto"
        stages = outer[0].find("solver.stage")
        assert [s.attributes["method"] for s in stages] == [report.method]
        assert stages[0].attributes["success"] is True
        # the report is archived on the span as an Observation
        assert outer[0].attributes["solver_report"]["ok"] is True
        assert t.metrics.counter("solver.stage.success", method=report.method).value == 1.0

    def test_transient_span_records_truncation_point(self):
        from repro.obs import trace

        with trace("solve") as t:
            solve_transient(TWO_STATE, np.array([1.0, 0.0]), [1.0, 5.0])
        spans = t.root.find("solver.transient")
        assert len(spans) == 1
        assert spans[0].attributes["method"] == "uniformization"
        assert spans[0].attributes["truncation_point"] >= 1

    def test_transient_overflow_fallback_annotated(self):
        from repro.obs import trace

        with trace("solve") as t:
            solve_transient(
                TWO_STATE,
                np.array([1.0, 0.0]),
                [10.0],
                method="uniformization",
                max_terms=2,
            )
        uni = [
            s
            for s in t.root.find("solver.transient")
            if s.attributes.get("fallback") == "krylov"
        ]
        assert len(uni) == 1
        assert uni[0].find("solver.transient")[1].attributes["method"] == "krylov"
