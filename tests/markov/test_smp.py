"""Unit tests for semi-Markov processes."""

import numpy as np
import pytest

from repro.distributions import Deterministic, Erlang, Exponential, Lognormal, Weibull
from repro.exceptions import ModelDefinitionError, StateSpaceError
from repro.markov import CTMC, SemiMarkovProcess


def up_down_smp(up_dist, down_dist):
    smp = SemiMarkovProcess()
    smp.add_transition("up", "down", 1.0, up_dist)
    smp.add_transition("down", "up", 1.0, down_dist)
    return smp


class TestSteadyState:
    def test_exponential_matches_ctmc(self):
        smp = up_down_smp(Exponential(1.0), Exponential(9.0))
        pi = smp.steady_state()
        assert pi["up"] == pytest.approx(0.9)

    def test_deterministic_repair(self):
        smp = up_down_smp(Exponential(0.01), Deterministic(5.0))
        pi = smp.steady_state()
        assert pi["up"] == pytest.approx(100.0 / 105.0)

    @pytest.mark.parametrize(
        "repair",
        [
            Exponential(0.2),
            Deterministic(5.0),
            Erlang.from_mean(5.0, stages=4),
            Weibull.from_mean_shape(5.0, shape=2.0),
            Lognormal.from_mean_cv(5.0, cv=1.5),
        ],
    )
    def test_insensitivity_to_repair_shape(self, repair):
        # Steady-state availability depends only on the repair MEAN.
        smp = up_down_smp(Exponential(0.01), repair)
        assert smp.steady_state()["up"] == pytest.approx(100.0 / 105.0, rel=1e-9)

    def test_three_state_cycle(self):
        smp = SemiMarkovProcess()
        smp.add_transition("a", "b", 1.0, Deterministic(1.0))
        smp.add_transition("b", "c", 1.0, Deterministic(2.0))
        smp.add_transition("c", "a", 1.0, Deterministic(3.0))
        pi = smp.steady_state()
        assert pi["a"] == pytest.approx(1 / 6)
        assert pi["b"] == pytest.approx(2 / 6)
        assert pi["c"] == pytest.approx(3 / 6)

    def test_branching_probabilities(self):
        smp = SemiMarkovProcess()
        smp.add_transition("up", "minor", 0.8, Exponential(1.0))
        smp.add_transition("up", "major", 0.2, Exponential(1.0))
        smp.add_transition("minor", "up", 1.0, Deterministic(0.5))
        smp.add_transition("major", "up", 1.0, Deterministic(10.0))
        pi = smp.steady_state()
        # mean cycle = 1 + 0.8*0.5 + 0.2*10 ... per embedded visit weights
        total = 1.0 + 0.8 * 0.5 + 0.2 * 10.0
        assert pi["up"] == pytest.approx(1.0 / total)

    def test_unnormalized_probabilities_rejected(self):
        smp = SemiMarkovProcess()
        smp.add_transition("a", "b", 0.5, Exponential(1.0))
        smp.add_transition("b", "a", 1.0, Exponential(1.0))
        with pytest.raises(ModelDefinitionError):
            smp.steady_state()

    def test_expected_reward_rate(self):
        smp = up_down_smp(Exponential(0.01), Deterministic(5.0))
        assert smp.expected_reward_rate({"up": 1.0}) == pytest.approx(100 / 105)


class TestMTTA:
    def test_two_stage_path(self):
        smp = SemiMarkovProcess()
        smp.add_transition("a", "b", 1.0, Deterministic(2.0))
        smp.add_transition("b", "dead", 1.0, Deterministic(3.0))
        smp.add_state("dead")
        assert smp.mean_time_to_absorption("a") == pytest.approx(5.0)

    def test_with_retry_loop(self):
        smp = SemiMarkovProcess()
        smp.add_transition("work", "retry", 0.5, Exponential(1.0))
        smp.add_transition("work", "done", 0.5, Exponential(1.0))
        smp.add_transition("retry", "work", 1.0, Deterministic(1.0))
        smp.add_state("done")
        # m_w = 1 + 0.5 (1 + m_w) -> m_w = 3
        assert smp.mean_time_to_absorption("work") == pytest.approx(3.0)

    def test_absorbing_start_is_zero(self):
        smp = SemiMarkovProcess()
        smp.add_transition("a", "dead", 1.0, Exponential(1.0))
        smp.add_state("dead")
        assert smp.mean_time_to_absorption("dead") == 0.0

    def test_no_absorbing_rejected(self):
        smp = up_down_smp(Exponential(1.0), Exponential(1.0))
        with pytest.raises(StateSpaceError):
            smp.mean_time_to_absorption("up")

    def test_mean_sojourn_of_absorbing_rejected(self):
        smp = SemiMarkovProcess()
        smp.add_transition("a", "dead", 1.0, Exponential(1.0))
        with pytest.raises(StateSpaceError):
            smp.mean_sojourn("dead")


class TestCompeting:
    def test_exponential_race_matches_ctmc(self):
        smp = SemiMarkovProcess.from_competing(
            {
                "up": {"fail": Exponential(1.0), "degrade": Exponential(2.0)},
                "fail": {"up": Exponential(10.0)},
                "degrade": {"up": Exponential(5.0)},
            }
        )
        ctmc = CTMC()
        ctmc.add_transition("up", "fail", 1.0)
        ctmc.add_transition("up", "degrade", 2.0)
        ctmc.add_transition("fail", "up", 10.0)
        ctmc.add_transition("degrade", "up", 5.0)
        pi_smp = smp.steady_state()
        pi_ctmc = ctmc.steady_state()
        for state in pi_ctmc:
            assert pi_smp[state] == pytest.approx(pi_ctmc[state], rel=1e-3)

    def test_race_branch_probabilities(self):
        smp = SemiMarkovProcess.from_competing(
            {"s": {"a": Exponential(1.0), "b": Exponential(3.0)}, "a": {"s": Exponential(1.0)}, "b": {"s": Exponential(1.0)}}
        )
        dtmc = smp.embedded_dtmc()
        p = dtmc.transition_matrix()
        i, j = dtmc.index_of("s"), dtmc.index_of("b")
        assert p[i, j] == pytest.approx(0.75, rel=1e-3)

    def test_deterministic_beats_slow_exponential(self):
        smp = SemiMarkovProcess.from_competing(
            {
                "s": {"timer": Deterministic(1.0), "fail": Exponential(0.01)},
                "timer": {"s": Exponential(1.0)},
                "fail": {"s": Exponential(1.0)},
            }
        )
        dtmc = smp.embedded_dtmc()
        p = dtmc.transition_matrix()
        i = dtmc.index_of("s")
        # P[timer wins] = P[Exp(0.01) > 1] = e^-0.01 ≈ 0.99
        assert p[i, dtmc.index_of("timer")] == pytest.approx(np.exp(-0.01), rel=1e-3)


class TestTransient:
    def test_matches_ctmc_for_exponential_kernels(self):
        smp = up_down_smp(Exponential(1.0), Exponential(9.0))
        ctmc = CTMC()
        ctmc.add_transition("up", "down", 1.0)
        ctmc.add_transition("down", "up", 9.0)
        times = np.array([0.2, 0.5, 1.0])
        got = smp.transient(times, "up")
        expected = ctmc.transient(times, "up")
        np.testing.assert_allclose(got, expected, atol=5e-3)

    def test_deterministic_cycle_phases(self):
        smp = SemiMarkovProcess()
        smp.add_transition("a", "b", 1.0, Deterministic(1.0))
        smp.add_transition("b", "a", 1.0, Deterministic(1.0))
        probs = smp.transient(np.array([0.5, 1.5]), "a")
        a_idx = smp.states.index("a")
        b_idx = smp.states.index("b")
        assert probs[0, a_idx] == pytest.approx(1.0, abs=0.01)
        assert probs[1, b_idx] == pytest.approx(1.0, abs=0.01)

    def test_time_zero(self):
        smp = up_down_smp(Exponential(1.0), Exponential(9.0))
        probs = smp.transient(np.array([0.0]), "up")
        assert probs[0, smp.states.index("up")] == pytest.approx(1.0)
