"""Unit tests for the pluggable solver-method registry."""

import numpy as np
import pytest
from scipy import sparse

from repro.exceptions import SolverError
from repro.markov.fallback import solve_steady_state
from repro.markov.registry import (
    GTH_DENSE_LIMIT,
    STEADY_STATE,
    TRANSIENT,
    SolverMethod,
    SolverRegistry,
)


def q2():
    return sparse.csr_matrix(np.array([[-1.0, 1.0], [2.0, -2.0]]))


class TestSolverMethod:
    def test_pre_checks_run_in_order_before_kernel(self):
        calls = []

        def check_a(*a, **k):
            calls.append("a")

        def check_b(*a, **k):
            calls.append("b")

        def kernel(*a, **k):
            calls.append("kernel")
            return "result"

        method = SolverMethod("m", kernel, pre_checks=(check_a, check_b))
        assert method("arg") == "result"
        assert calls == ["a", "b", "kernel"]

    def test_failing_pre_check_blocks_kernel(self):
        ran = []

        def guard(*a, **k):
            raise SolverError("nope")

        method = SolverMethod("m", lambda *a: ran.append(True), pre_checks=(guard,))
        with pytest.raises(SolverError, match="nope"):
            method("arg")
        assert not ran


class TestSolverRegistry:
    def test_register_resolve_get(self):
        reg = SolverRegistry("test")
        reg.register_method("fast", lambda q: q, aliases=("quick",))
        assert reg.resolve("quick") == "fast"
        assert "quick" in reg and "fast" in reg
        assert reg.get("quick") is reg.get("fast")
        assert reg.names() == ("fast",)

    def test_unknown_method_lists_registered(self):
        reg = SolverRegistry("test")
        reg.register_method("only", lambda q: q)
        with pytest.raises(SolverError, match=r"unknown test method 'nope'.*only"):
            reg.get("nope")

    def test_override_guard(self):
        reg = SolverRegistry("test")
        reg.register_method("taken", lambda q: 1, aliases=("also",))
        with pytest.raises(SolverError, match=r"\['taken'\] already registered"):
            reg.register_method("taken", lambda q: 2)
        with pytest.raises(SolverError, match="already registered"):
            reg.register_method("fresh", lambda q: 2, aliases=("also",))
        assert reg.get("taken")(None) == 1

    def test_replace_overrides(self):
        reg = SolverRegistry("test")
        reg.register_method("m", lambda q: 1)
        reg.register_method("m", lambda q: 2, replace=True)
        assert reg.get("m")(None) == 2

    def test_stages_returns_fresh_dict(self):
        stages = STEADY_STATE.stages()
        stages["gth"] = None
        assert STEADY_STATE.stages()["gth"] is not None


class TestBuiltinRegistries:
    def test_steady_state_names(self):
        assert set(STEADY_STATE.names()) == {
            "gth",
            "direct",
            "power",
            "gmres",
            "bicgstab",
        }

    def test_transient_names_and_alias(self):
        assert set(TRANSIENT.names()) == {"uniformization", "ode", "krylov"}
        assert TRANSIENT.resolve("expm_multiply") == "krylov"

    def test_gth_pre_check_refuses_dense_blowup(self):
        n = GTH_DENSE_LIMIT + 1
        huge = sparse.identity(n, format="csr") * 0.0
        with pytest.raises(SolverError, match="dense"):
            STEADY_STATE.get("gth")(huge)

    def test_gth_supports_predicate_bounds_auto(self):
        method = STEADY_STATE.get("gth")

        class Diag:
            n_states = GTH_DENSE_LIMIT + 1

        assert method.supports is not None
        assert not method.supports(Diag())
        Diag.n_states = 10
        assert method.supports(Diag())


class TestFrontDoorIntegration:
    def test_custom_method_reaches_front_door(self):
        name = "test_only_custom"

        def kernel(q):
            # the true stationary vector of q2 — the front door's
            # residual guard verifies whatever a custom kernel returns
            return np.array([2.0 / 3.0, 1.0 / 3.0])

        STEADY_STATE.register_method(name, kernel)
        try:
            report = solve_steady_state(q2(), method=name)
            assert report.method == name
            np.testing.assert_allclose(report.pi, [2.0 / 3.0, 1.0 / 3.0])
        finally:
            STEADY_STATE._methods.pop(name, None)

    def test_all_builtin_methods_agree(self):
        q = q2()
        exact = solve_steady_state(q, method="gth").pi
        for method in STEADY_STATE.names():
            pi = solve_steady_state(q, method=method).pi
            np.testing.assert_allclose(pi, exact, atol=1e-8, err_msg=method)

    def test_unknown_front_door_method_rejected(self):
        with pytest.raises(SolverError, match="unknown method"):
            solve_steady_state(q2(), method="jacobi-seidel")
