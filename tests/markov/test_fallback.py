"""Tests for the steady-state solver fallback chain and its diagnostics."""

import numpy as np
import pytest
from scipy import sparse

from repro.exceptions import ModelDefinitionError, SolverError
from repro.markov import (
    CTMC,
    GeneratorDiagnostics,
    SolverReport,
    generator_diagnostics,
    gth_solve,
    solve_steady_state,
    transient_ode,
    transient_uniformization,
    validate_generator,
)
from repro.markov.solvers import poisson_truncation_point
from repro.robust import FailingCallable

TWO_STATE = np.array([[-1.0, 1.0], [2.0, -2.0]])
TWO_STATE_PI = np.array([2.0 / 3.0, 1.0 / 3.0])


def stiff_generator():
    """A repairable system with rates spanning 9 orders of magnitude."""
    lam, mu = 1e-8, 10.0
    return np.array(
        [
            [-2 * lam, 2 * lam, 0.0],
            [mu, -(mu + lam), lam],
            [0.0, mu, -mu],
        ]
    )


def birth_death(n, lam=1.0, mu=2.0):
    q = sparse.lil_matrix((n, n))
    for i in range(n - 1):
        q[i, i + 1] = lam
        q[i + 1, i] = mu
    diag = -np.asarray(q.sum(axis=1)).ravel()
    q.setdiag(diag)
    return q.tocsr()


class TestValidateGenerator:
    def test_accepts_valid_dense_and_sparse(self):
        assert validate_generator(TWO_STATE) == 2
        assert validate_generator(sparse.csr_matrix(TWO_STATE)) == 2

    def test_rejects_non_square(self):
        with pytest.raises(ModelDefinitionError, match="square"):
            validate_generator(np.zeros((2, 3)))

    def test_rejects_bad_row_sum_naming_the_row(self):
        q = np.array([[-1.0, 1.0], [2.0, -1.5]])
        with pytest.raises(ModelDefinitionError, match="row 1"):
            validate_generator(q)

    def test_rejects_negative_off_diagonal(self):
        q = np.array([[-1.0, 1.0], [-0.5, 0.5]])
        with pytest.raises(ModelDefinitionError, match="negative off-diagonal"):
            validate_generator(q)

    def test_rejects_non_finite(self):
        q = np.array([[-np.inf, np.inf], [1.0, -1.0]])
        with pytest.raises(ModelDefinitionError, match="finite"):
            validate_generator(q)

    def test_tolerance_scales_with_magnitude(self):
        # A row-sum error far below the rate magnitudes must pass.
        q = np.array([[-1e9, 1e9 + 1e-4], [2.0, -2.0]])
        assert validate_generator(q) == 2

    def test_all_solvers_share_the_validation(self):
        from repro.markov import steady_state_direct, steady_state_power

        bad = np.array([[-1.0, 1.0], [2.0, -1.0]])
        for solver in (gth_solve, steady_state_direct, steady_state_power):
            with pytest.raises(ModelDefinitionError):
                solver(bad)


class TestDiagnostics:
    def test_basic_facts(self):
        diag = generator_diagnostics(TWO_STATE)
        assert isinstance(diag, GeneratorDiagnostics)
        assert diag.n_states == 2
        assert diag.nnz == 2
        assert diag.max_rate == 2.0
        assert diag.min_rate == 1.0
        assert diag.stiffness_ratio == 2.0
        assert diag.irreducible

    def test_stiffness_reflects_rate_span(self):
        diag = generator_diagnostics(stiff_generator())
        assert diag.stiffness_ratio >= 1e8

    def test_reducible_chain_detected(self):
        q = np.array([[-1.0, 1.0, 0.0], [1.0, -1.0, 0.0], [0.0, 0.0, 0.0]])
        diag = generator_diagnostics(q)
        assert diag.n_strong_components == 2
        assert not diag.irreducible

    def test_never_raises_on_defective_input(self):
        # Observational: a broken generator still gets diagnosed.
        q = np.array([[-1.0, 0.5], [2.0, -2.0]])
        diag = generator_diagnostics(q)
        assert diag.max_row_sum_error == pytest.approx(0.5)


class TestSolveSteadyState:
    def test_auto_solves_and_reports(self):
        report = solve_steady_state(TWO_STATE)
        assert isinstance(report, SolverReport)
        assert report.ok
        assert report.method == "gth"
        assert report.fallbacks_used == 0
        np.testing.assert_allclose(report.pi, TWO_STATE_PI, atol=1e-12)
        assert report.attempts[0].residual <= 1e-8

    def test_stiff_chain_solved_by_gth_first(self):
        report = solve_steady_state(stiff_generator())
        assert report.order[0] == "gth"
        assert report.ok
        assert np.isclose(report.pi.sum(), 1.0)

    def test_large_well_conditioned_chain_prefers_direct(self):
        q = birth_death(50)
        report = solve_steady_state(q, dense_limit=10)
        assert report.order[0] == "direct"
        assert report.method == "direct"
        expected = solve_steady_state(q, method="gth").pi
        np.testing.assert_allclose(report.pi, expected, atol=1e-10)

    def test_single_stage_methods_agree(self):
        results = {
            name: solve_steady_state(TWO_STATE, method=name).pi
            for name in ("gth", "direct", "power")
        }
        for pi in results.values():
            np.testing.assert_allclose(pi, TWO_STATE_PI, atol=1e-9)

    def test_forced_first_stage_failure_falls_back(self):
        failing = FailingCallable(lambda q: gth_solve(q.toarray()), n_failures=1)
        report = solve_steady_state(TWO_STATE, stages={"gth": failing})
        assert report.method == "direct"
        assert report.fallbacks_used == 1
        assert not report.attempts[0].success
        assert "injected solver failure" in report.attempts[0].error
        np.testing.assert_allclose(report.pi, TWO_STATE_PI, atol=1e-10)

    def test_nan_corruption_is_caught_by_the_guard(self):
        corrupting = FailingCallable(
            lambda q: gth_solve(q.toarray()), n_failures=1, corrupt=True
        )
        report = solve_steady_state(TWO_STATE, stages={"gth": corrupting})
        assert report.method == "direct"
        assert "non-finite" in report.attempts[0].error

    def test_residual_guard_rejects_wrong_vectors(self):
        wrong = lambda q: np.array([0.5, 0.5])  # normalized but not stationary
        report = solve_steady_state(TWO_STATE, stages={"gth": wrong})
        assert not report.attempts[0].success
        assert "residual" in report.attempts[0].error
        assert report.method == "direct"

    def test_every_stage_failing_raises_with_report(self):
        always = FailingCallable(lambda q: None, n_failures=None)
        with pytest.raises(SolverError) as excinfo:
            solve_steady_state(
                TWO_STATE, stages={"gth": always, "direct": always, "power": always}
            )
        report = excinfo.value.report
        assert len(report.attempts) == 3
        assert not report.ok

    def test_reducible_chain_rejected_before_solving(self):
        q = np.array([[-1.0, 1.0, 0.0], [1.0, -1.0, 0.0], [0.0, 0.0, 0.0]])
        with pytest.raises(ModelDefinitionError, match="irreducible"):
            solve_steady_state(q)

    def test_unknown_method_and_stage_rejected(self):
        with pytest.raises(SolverError, match="method"):
            solve_steady_state(TWO_STATE, method="magic")
        with pytest.raises(SolverError, match="stage"):
            solve_steady_state(TWO_STATE, order=["gth", "quantum"])

    def test_explicit_order_is_honoured(self):
        report = solve_steady_state(TWO_STATE, order=["power", "gth"])
        assert report.order == ("power", "gth")
        assert report.method == "power"


class TestCTMCIntegration:
    def _chain(self):
        chain = CTMC()
        chain.add_transition("up", "down", 1.0)
        chain.add_transition("down", "up", 2.0)
        return chain

    def test_auto_method_matches_gth(self):
        chain = self._chain()
        auto = chain.steady_state(method="auto")
        gth = chain.steady_state(method="gth")
        for state in ("up", "down"):
            assert auto[state] == pytest.approx(gth[state], abs=1e-12)

    def test_default_method_unchanged(self):
        # Existing call sites see exactly the old behaviour.
        pi = self._chain().steady_state()
        assert pi["up"] == pytest.approx(2.0 / 3.0)

    def test_report_accessor(self):
        report = self._chain().steady_state_report()
        assert report.ok
        assert report.diagnostics.n_states == 2


class TestPoissonTruncationGuard:
    def test_too_small_limit_raises_instead_of_truncating(self):
        with pytest.raises(SolverError, match="Poisson truncation"):
            poisson_truncation_point(50.0, 1e-10, limit=10)

    def test_default_limit_is_generous(self):
        for lam_t in (0.5, 10.0, 500.0, 5000.0):
            k = poisson_truncation_point(lam_t, 1e-12)
            assert k > lam_t

    def test_tight_tolerance_still_terminates(self):
        # Near machine epsilon the cumulative sum plateaus; the geometric
        # tail bound must stop the walk instead of raising.
        k = poisson_truncation_point(62.9238, 1e-15)
        assert 62 < k < 300


class TestTransientOdeFallback:
    def _chain_matrices(self):
        q = sparse.csr_matrix(TWO_STATE)
        p0 = np.array([1.0, 0.0])
        ts = np.array([0.1, 0.5, 2.0])
        return q, p0, ts

    def test_ode_matches_uniformization(self):
        q, p0, ts = self._chain_matrices()
        uni = transient_uniformization(q, p0, ts)
        ode = transient_ode(q, p0, ts)
        np.testing.assert_allclose(ode, uni, atol=1e-6)

    def test_unsorted_times_are_returned_in_input_order(self):
        q, p0, _ = self._chain_matrices()
        ts = np.array([2.0, 0.1, 0.5])
        ode = transient_ode(q, p0, ts)
        sorted_out = transient_ode(q, p0, np.sort(ts))
        np.testing.assert_allclose(ode[1], sorted_out[0], atol=1e-12)
        np.testing.assert_allclose(ode[0], sorted_out[2], atol=1e-12)

    def test_huge_lambda_t_falls_back_to_ode(self):
        # Λt so large the truncation point exceeds max_terms: the guard
        # must reroute to the ODE integrator, not blow up or silently
        # truncate.
        q, p0, _ = self._chain_matrices()
        ts = np.array([1.0])
        guarded = transient_uniformization(q, p0, ts, max_terms=3)
        reference = transient_uniformization(q, p0, ts)
        np.testing.assert_allclose(guarded, reference, atol=1e-6)
