"""Unit tests for exact CTMC steady-state sensitivities."""

import numpy as np
import pytest

from repro.exceptions import ModelDefinitionError
from repro.markov import CTMC, reward_rate_derivative, steady_state_derivative


def two_state(lam=0.1, mu=1.0):
    chain = CTMC()
    chain.add_transition("up", "down", lam)
    chain.add_transition("down", "up", mu)
    return chain


def shared_repair(lam=0.01, mu=1.0):
    chain = CTMC()
    chain.add_transition(2, 1, 2 * lam)
    chain.add_transition(1, 0, lam)
    chain.add_transition(1, 2, mu)
    chain.add_transition(0, 1, mu)
    return chain


class TestTwoState:
    def test_closed_form_derivative_in_lambda(self):
        lam, mu = 0.1, 1.0
        d = steady_state_derivative(two_state(lam, mu), {("up", "down"): 1.0})
        assert d["up"] == pytest.approx(-mu / (lam + mu) ** 2)
        assert d["down"] == pytest.approx(mu / (lam + mu) ** 2)

    def test_closed_form_derivative_in_mu(self):
        lam, mu = 0.1, 1.0
        d = steady_state_derivative(two_state(lam, mu), {("down", "up"): 1.0})
        assert d["up"] == pytest.approx(lam / (lam + mu) ** 2)

    def test_derivatives_sum_to_zero(self):
        d = steady_state_derivative(two_state(), {("up", "down"): 1.0})
        assert sum(d.values()) == pytest.approx(0.0, abs=1e-14)


class TestAgainstFiniteDifferences:
    @pytest.mark.parametrize("which", ["lambda", "mu"])
    def test_shared_repair_availability(self, which):
        lam, mu = 0.01, 1.0
        h = 1e-7

        def availability(l_, m_):
            pi = shared_repair(l_, m_).steady_state()
            return pi[2] + pi[1]

        if which == "lambda":
            # lambda appears as 2λ on (2,1) and λ on (1,0)
            exact = reward_rate_derivative(
                shared_repair(lam, mu),
                {2: 1.0, 1: 1.0},
                {(2, 1): 2.0, (1, 0): 1.0},
            )
            numeric = (availability(lam + h, mu) - availability(lam - h, mu)) / (2 * h)
        else:
            exact = reward_rate_derivative(
                shared_repair(lam, mu),
                {2: 1.0, 1: 1.0},
                {(1, 2): 1.0, (0, 1): 1.0},
            )
            numeric = (availability(lam, mu + h) - availability(lam, mu - h)) / (2 * h)
        assert exact == pytest.approx(numeric, rel=1e-5)

    @pytest.mark.parametrize("seed", range(3))
    def test_random_chains(self, seed):
        rng = np.random.default_rng(seed)
        n = 5
        chain = CTMC()
        edges = []
        for i in range(n):
            j = (i + 1) % n
            rate = float(rng.uniform(0.5, 2.0))
            chain.add_transition(i, j, rate)
            edges.append((i, j, rate))
        target = edges[0]
        d = steady_state_derivative(chain, {(target[0], target[1]): 1.0})
        # finite differences
        h = 1e-7
        def pi_of(bump):
            c2 = CTMC()
            for (i, j, rate) in edges:
                c2.add_transition(i, j, rate + (bump if (i, j) == (target[0], target[1]) else 0.0))
            return c2.steady_state()
        hi, lo = pi_of(h), pi_of(-h)
        for state in chain.states:
            numeric = (hi[state] - lo[state]) / (2 * h)
            assert d[state] == pytest.approx(numeric, abs=1e-6)


class TestValidation:
    def test_unknown_transition_rejected(self):
        with pytest.raises(ModelDefinitionError):
            steady_state_derivative(two_state(), {("down", "down"): 1.0})
        with pytest.raises(ModelDefinitionError):
            steady_state_derivative(two_state(), {("up", "ghost"): 1.0})

    def test_nonexistent_edge_rejected(self):
        chain = shared_repair()
        with pytest.raises(ModelDefinitionError):
            steady_state_derivative(chain, {(2, 0): 1.0})

    def test_zero_derivative_of_unrelated_edge(self):
        chain = shared_repair()
        d = steady_state_derivative(chain, {(2, 1): 0.0})
        assert all(abs(v) < 1e-14 for v in d.values())
