"""Unit tests for the DTMC class."""

import numpy as np
import pytest

from repro.exceptions import ModelDefinitionError, StateSpaceError
from repro.markov import DTMC


def weather():
    chain = DTMC()
    chain.add_transition("sunny", "sunny", 0.8)
    chain.add_transition("sunny", "rainy", 0.2)
    chain.add_transition("rainy", "sunny", 0.5)
    chain.add_transition("rainy", "rainy", 0.5)
    return chain


def gambler(p=0.4, n=4):
    """Gambler's ruin on {0..n}, absorbing at 0 and n."""
    chain = DTMC()
    for i in range(1, n):
        chain.add_transition(i, i + 1, p)
        chain.add_transition(i, i - 1, 1 - p)
    chain.add_state(0)
    chain.add_state(n)
    return chain


class TestBasics:
    def test_transition_matrix_rows(self):
        p = weather().transition_matrix()
        np.testing.assert_allclose(p.sum(axis=1), 1.0)

    def test_bad_rows_rejected(self):
        chain = DTMC()
        chain.add_transition("a", "b", 0.5)
        with pytest.raises(ModelDefinitionError):
            chain.transition_matrix()

    def test_absorbing_detection(self):
        assert set(gambler().absorbing_states()) == {0, 4}

    def test_invalid_probability_rejected(self):
        with pytest.raises(ModelDefinitionError):
            DTMC().add_transition("a", "b", 1.5)


class TestSteadyState:
    def test_weather(self):
        pi = weather().steady_state()
        assert pi["sunny"] == pytest.approx(5 / 7)
        assert pi["rainy"] == pytest.approx(2 / 7)

    def test_symmetric_chain_uniform(self):
        chain = DTMC()
        for a, b in [("x", "y"), ("y", "z"), ("z", "x")]:
            chain.add_transition(a, b, 1.0)
        pi = chain.steady_state()
        for value in pi.values():
            assert value == pytest.approx(1 / 3)


class TestTransient:
    def test_zero_steps_identity(self):
        p = weather().transient(0, "sunny")
        assert p["sunny"] == 1.0

    def test_one_step(self):
        p = weather().transient(1, "sunny")
        assert p["rainy"] == pytest.approx(0.2)

    def test_many_steps_converge(self):
        p = weather().transient(200, "rainy")
        assert p["sunny"] == pytest.approx(5 / 7, abs=1e-9)

    def test_negative_steps_rejected(self):
        with pytest.raises(ModelDefinitionError):
            weather().transient(-1, "sunny")


class TestAbsorbing:
    def test_gambler_ruin_probability(self):
        # Classic closed form with p=0.4, q=0.6, start 2 of 4:
        p, n, start = 0.4, 4, 2
        r = (1 - p) / p
        expected_win = (1 - r**start) / (1 - r**n)
        probs = gambler(p, n).absorption_probabilities(start)
        assert probs[n] == pytest.approx(expected_win)
        assert probs[0] == pytest.approx(1 - expected_win)

    def test_expected_steps_positive(self):
        steps = gambler().expected_steps_to_absorption(2)
        assert steps > 0

    def test_fundamental_matrix_visits(self):
        # Simple 1-transient-state chain: visits to s before absorbing = 1/(1-p_ss)
        chain = DTMC()
        chain.add_transition("s", "s", 0.5)
        chain.add_transition("s", "done", 0.5)
        visits = chain.expected_visits("s")
        assert visits["s"] == pytest.approx(2.0)

    def test_expected_steps_geometric(self):
        chain = DTMC()
        chain.add_transition("s", "s", 0.75)
        chain.add_transition("s", "done", 0.25)
        assert chain.expected_steps_to_absorption("s") == pytest.approx(4.0)

    def test_no_absorbing_rejected(self):
        with pytest.raises(StateSpaceError):
            weather().absorption_probabilities("sunny")

    def test_explicit_absorbing_override(self):
        chain = weather()
        probs = chain.absorption_probabilities("sunny", absorbing=["rainy"])
        assert probs["rainy"] == pytest.approx(1.0)
