"""Unit tests for SMP / MRGP dependability adapters."""

import math

import numpy as np
import pytest

from repro.distributions import Deterministic, Erlang, Exponential
from repro.exceptions import ModelDefinitionError
from repro.markov import (
    CTMC,
    MarkovDependabilityModel,
    MarkovRegenerativeProcess,
    MRGPAvailabilityModel,
    SemiMarkovDependabilityModel,
    SemiMarkovProcess,
)


def up_down_smp(fail=Exponential(0.01), repair=Deterministic(5.0)):
    smp = SemiMarkovProcess()
    smp.add_transition("up", "down", 1.0, fail)
    smp.add_transition("down", "up", 1.0, repair)
    return smp


class TestSMPAdapter:
    def test_steady_state_availability(self):
        model = SemiMarkovDependabilityModel(up_down_smp(), ["up"], "up")
        assert model.steady_state_availability() == pytest.approx(100 / 105)

    def test_mttf_is_mean_uptime(self):
        model = SemiMarkovDependabilityModel(up_down_smp(), ["up"], "up")
        assert model.mttf() == pytest.approx(100.0)

    def test_reliability_is_survival_of_first_failure(self):
        model = SemiMarkovDependabilityModel(up_down_smp(), ["up"], "up")
        assert model.reliability(50.0) == pytest.approx(math.exp(-0.5), abs=1e-6)

    def test_availability_exceeds_reliability(self):
        model = SemiMarkovDependabilityModel(up_down_smp(), ["up"], "up")
        t = 200.0
        assert model.availability(t) > model.reliability(t)

    def test_agreement_with_ctmc_adapter(self):
        smp = up_down_smp(Exponential(1.0), Exponential(9.0))
        smp_model = SemiMarkovDependabilityModel(smp, ["up"], "up")
        chain = CTMC()
        chain.add_transition("up", "down", 1.0)
        chain.add_transition("down", "up", 9.0)
        ctmc_model = MarkovDependabilityModel(chain, ["up"], "up")
        assert smp_model.steady_state_availability() == pytest.approx(
            ctmc_model.steady_state_availability()
        )
        assert smp_model.mttf() == pytest.approx(ctmc_model.mttf())
        assert smp_model.availability(0.5) == pytest.approx(
            ctmc_model.availability(0.5), abs=5e-3
        )

    def test_unknown_up_state_rejected(self):
        with pytest.raises(ModelDefinitionError):
            SemiMarkovDependabilityModel(up_down_smp(), ["nope"], "up")

    def test_empty_up_states_rejected(self):
        with pytest.raises(ModelDefinitionError):
            SemiMarkovDependabilityModel(up_down_smp(), [], "up")


class TestMRGPAdapter:
    def build(self):
        mrgp = MarkovRegenerativeProcess()
        mrgp.add_exponential("up", "down", 0.01)
        mrgp.add_general("repair", Erlang.from_mean(5.0, stages=2), ["down"], {"down": "up"})
        return mrgp

    def test_steady_state_availability(self):
        model = MRGPAvailabilityModel(self.build(), ["up"], n_quadrature=256)
        assert model.steady_state_availability() == pytest.approx(100 / 105, rel=1e-3)

    def test_downtime_helper_via_protocol(self):
        model = MRGPAvailabilityModel(self.build(), ["up"], n_quadrature=128)
        expected = model.steady_state_unavailability() * 525_600
        assert model.downtime_minutes_per_year() == pytest.approx(expected)

    def test_unknown_up_state_rejected(self):
        with pytest.raises(ModelDefinitionError):
            MRGPAvailabilityModel(self.build(), ["ghost"])
