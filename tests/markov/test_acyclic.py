"""Unit tests for the closed-form acyclic transient solver (ACE)."""

import math

import numpy as np
import pytest
from scipy.stats import erlang as erlang_dist

from repro.exceptions import StateSpaceError
from repro.markov import CTMC, acyclic_transient
from repro.markov.acyclic import ExpPolynomial


class TestExpPolynomial:
    def test_single_exponential(self):
        f = ExpPolynomial.exponential(2.0, 3.0)
        assert f(0.0) == pytest.approx(2.0)
        assert f(1.0) == pytest.approx(2.0 * math.exp(-3.0))

    def test_addition_and_scaling(self):
        f = ExpPolynomial.exponential(1.0, 1.0) + ExpPolynomial.exponential(1.0, 1.0)
        assert f(0.5) == pytest.approx(2.0 * math.exp(-0.5))
        assert f.scale(0.5)(0.5) == pytest.approx(math.exp(-0.5))

    def test_zero_terms_dropped(self):
        f = ExpPolynomial.exponential(1.0, 2.0) + ExpPolynomial.exponential(-1.0, 2.0)
        assert f.terms == {}
        assert f(1.0) == 0.0

    def test_ode_homogeneous(self):
        # y' + 2y = 0, y(0)=3 -> 3 e^{-2t}
        f = ExpPolynomial().solve_linear_ode(2.0, 3.0)
        assert f(1.0) == pytest.approx(3.0 * math.exp(-2.0))

    def test_ode_with_forcing(self):
        # y' + 2y = e^{-t}, y(0)=0 -> e^{-t} - e^{-2t}
        forcing = ExpPolynomial.exponential(1.0, 1.0)
        f = forcing.solve_linear_ode(2.0, 0.0)
        for t in (0.1, 1.0, 3.0):
            assert f(t) == pytest.approx(math.exp(-t) - math.exp(-2 * t), abs=1e-12)

    def test_ode_resonance(self):
        # y' + y = e^{-t}, y(0)=0 -> t e^{-t}
        forcing = ExpPolynomial.exponential(1.0, 1.0)
        f = forcing.solve_linear_ode(1.0, 0.0)
        for t in (0.2, 1.0, 4.0):
            assert f(t) == pytest.approx(t * math.exp(-t), abs=1e-12)


class TestAcyclicSolver:
    def test_single_transition(self):
        chain = CTMC()
        chain.add_transition("up", "down", 2.0)
        sol = acyclic_transient(chain, "up")
        assert sol.probability("up", 0.5) == pytest.approx(math.exp(-1.0))
        assert sol.probability("down", 0.5) == pytest.approx(1 - math.exp(-1.0))

    def test_two_unit_parallel_no_repair(self):
        chain = CTMC()
        chain.add_transition(2, 1, 2.0)
        chain.add_transition(1, 0, 1.0)
        sol = acyclic_transient(chain, 2)
        t = 1.0
        # R(t) = 1 - (1 - e^-t)^2 for two exp(1) units in parallel
        assert sol.reliability([2, 1], t) == pytest.approx(1 - (1 - math.exp(-t)) ** 2)

    def test_erlang_absorption(self):
        chain = CTMC()
        chain.add_transition("a", "b", 2.0)
        chain.add_transition("b", "c", 2.0)
        chain.add_transition("c", "d", 2.0)
        sol = acyclic_transient(chain, "a")
        t = 0.7
        assert sol.probability("d", t) == pytest.approx(
            erlang_dist.cdf(t, 3, scale=0.5), abs=1e-12
        )

    def test_matches_uniformization(self):
        chain = CTMC()
        chain.add_transition("s", "x", 1.0)
        chain.add_transition("s", "y", 3.0)
        chain.add_transition("x", "z", 0.5)
        chain.add_transition("y", "z", 2.0)
        sol = acyclic_transient(chain, "s")
        ts = np.array([0.1, 0.5, 2.0, 10.0])
        exact = sol.evaluate(ts)
        uni = chain.transient(ts, "s", tol=1e-13)
        np.testing.assert_allclose(exact, uni, atol=1e-10)

    def test_probability_conservation(self):
        chain = CTMC()
        chain.add_transition("a", "b", 1.0)
        chain.add_transition("a", "c", 2.0)
        chain.add_transition("b", "d", 3.0)
        chain.add_transition("c", "d", 0.7)
        sol = acyclic_transient(chain, "a")
        ts = np.linspace(0, 5, 21)
        np.testing.assert_allclose(sol.evaluate(ts).sum(axis=1), 1.0, atol=1e-12)

    def test_initial_distribution(self):
        chain = CTMC()
        chain.add_transition("a", "b", 1.0)
        sol = acyclic_transient(chain, {"a": 0.4, "b": 0.6})
        assert sol.probability("a", 0.0) == pytest.approx(0.4)
        assert sol.probability("b", 0.0) == pytest.approx(0.6)

    def test_cycle_rejected(self):
        chain = CTMC()
        chain.add_transition("up", "down", 1.0)
        chain.add_transition("down", "up", 9.0)
        with pytest.raises(StateSpaceError):
            acyclic_transient(chain, "up")

    def test_repeated_rates_resonance_in_chain(self):
        # long chain with identical rates: polynomial terms t^m appear
        chain = CTMC()
        states = list(range(6))
        for a, b in zip(states, states[1:]):
            chain.add_transition(a, b, 1.0)
        sol = acyclic_transient(chain, 0)
        t = 2.0
        # state k occupied = Poisson-like term e^{-t} t^k / k!
        for k in range(5):
            assert sol.probability(k, t) == pytest.approx(
                math.exp(-t) * t**k / math.factorial(k), abs=1e-12
            )

    def test_term_count_reported(self):
        chain = CTMC()
        chain.add_transition(2, 1, 2.0)
        chain.add_transition(1, 0, 1.0)
        sol = acyclic_transient(chain, 2)
        assert sol.n_terms() >= 3
