"""Unit tests for Markov reward models."""

import math

import numpy as np
import pytest

from repro.exceptions import ModelDefinitionError
from repro.markov import CTMC, MarkovRewardModel


def up_down(lam=1.0, mu=9.0):
    chain = CTMC()
    chain.add_transition("up", "down", lam)
    chain.add_transition("down", "up", mu)
    return chain


def multiprocessor(n=3, lam=0.1, mu=1.0):
    """n processors, independent repair; state = number up."""
    chain = CTMC()
    for k in range(n, 0, -1):
        chain.add_transition(k, k - 1, k * lam)
    for k in range(0, n):
        chain.add_transition(k, k + 1, (n - k) * mu)
    return chain


class TestSteadyState:
    def test_binary_reward_is_availability(self):
        model = MarkovRewardModel(up_down(), {"up": 1.0})
        assert model.steady_state_reward_rate() == pytest.approx(0.9)

    def test_capacity_reward(self):
        n, lam, mu = 3, 0.1, 1.0
        chain = multiprocessor(n, lam, mu)
        model = MarkovRewardModel(chain, {k: float(k) for k in range(n + 1)})
        # independent units: E[#up] = n * mu/(lam+mu)
        assert model.steady_state_reward_rate() == pytest.approx(n * mu / (lam + mu))

    def test_unknown_reward_state_rejected(self):
        with pytest.raises(ModelDefinitionError):
            MarkovRewardModel(up_down(), {"bogus": 1.0})


class TestTransient:
    def test_expected_reward_rate_at_zero(self):
        model = MarkovRewardModel(up_down(), {"up": 1.0}, initial="up")
        assert model.expected_reward_rate(0.0) == pytest.approx(1.0)

    def test_expected_reward_rate_closed_form(self):
        lam, mu = 1.0, 9.0
        model = MarkovRewardModel(up_down(lam, mu), {"up": 1.0}, initial="up")
        t = 0.4
        expected = mu / (lam + mu) + lam / (lam + mu) * math.exp(-(lam + mu) * t)
        assert model.expected_reward_rate(t) == pytest.approx(expected, abs=1e-10)

    def test_accumulated_reward_closed_form(self):
        lam, mu = 1.0, 9.0
        model = MarkovRewardModel(up_down(lam, mu), {"up": 1.0}, initial="up")
        t = 0.7
        a_ss = mu / (lam + mu)
        expected = a_ss * t + lam / (lam + mu) ** 2 * (1 - math.exp(-(lam + mu) * t))
        assert model.expected_accumulated_reward(t) == pytest.approx(expected, rel=1e-8)

    def test_time_averaged_reward_interval_availability(self):
        model = MarkovRewardModel(up_down(), {"up": 1.0}, initial="up")
        t = 5.0
        avg = model.time_averaged_reward(t)
        assert model.steady_state_reward_rate() < avg < 1.0

    def test_time_average_requires_positive_t(self):
        model = MarkovRewardModel(up_down(), {"up": 1.0}, initial="up")
        with pytest.raises(ModelDefinitionError):
            model.time_averaged_reward(0.0)

    def test_missing_initial_rejected(self):
        model = MarkovRewardModel(up_down(), {"up": 1.0})
        with pytest.raises(ModelDefinitionError):
            model.expected_reward_rate(1.0)

    def test_initial_override(self):
        model = MarkovRewardModel(up_down(), {"up": 1.0}, initial="up")
        assert model.expected_reward_rate(0.0, initial="down") == pytest.approx(0.0)


class TestAbsorbing:
    def test_accumulated_until_absorption_is_mean_up_time(self):
        # up -> down(absorbing): E[Y(inf)] with reward 1 on up = 1/lam
        chain = CTMC()
        chain.add_transition("up", "down", 0.5)
        model = MarkovRewardModel(chain, {"up": 1.0}, initial="up")
        assert model.accumulated_reward_until_absorption() == pytest.approx(2.0)

    def test_weighted_sojourns(self):
        chain = CTMC()
        chain.add_transition("a", "b", 1.0)
        chain.add_transition("b", "done", 2.0)
        model = MarkovRewardModel(chain, {"a": 1.0, "b": 10.0}, initial="a")
        # E[time in a] = 1, E[time in b] = 0.5 → 1*1 + 10*0.5
        assert model.accumulated_reward_until_absorption() == pytest.approx(6.0)

    def test_no_absorbing_rejected(self):
        model = MarkovRewardModel(up_down(), {"up": 1.0}, initial="up")
        with pytest.raises(ModelDefinitionError):
            model.accumulated_reward_until_absorption()
