"""Unit tests for software reliability growth models."""

import math

import numpy as np
import pytest

from repro.exceptions import DistributionError, ModelDefinitionError
from repro.srgm import (
    DelayedSShaped,
    GoelOkumoto,
    MusaOkumoto,
    fit_goel_okumoto,
    laplace_trend,
)


class TestGoelOkumoto:
    def test_mean_value_saturates_at_a(self):
        m = GoelOkumoto(a=100.0, b=0.05)
        assert m.mean_value(0.0) == 0.0
        assert m.mean_value(1e6) == pytest.approx(100.0)

    def test_intensity_is_derivative(self):
        m = GoelOkumoto(a=50.0, b=0.1)
        t, h = 7.0, 1e-6
        numeric = (m.mean_value(t + h) - m.mean_value(t - h)) / (2 * h)
        assert m.intensity(t) == pytest.approx(numeric, rel=1e-6)

    def test_remaining_faults(self):
        m = GoelOkumoto(a=100.0, b=0.05)
        assert m.expected_remaining(0.0) == pytest.approx(100.0)
        assert m.expected_remaining(20.0) == pytest.approx(100 * math.exp(-1.0))

    def test_reliability_improves_with_testing(self):
        m = GoelOkumoto(a=100.0, b=0.05)
        assert m.reliability(1.0, after=100.0) > m.reliability(1.0, after=0.0)

    def test_expected_failures_interval(self):
        m = GoelOkumoto(a=100.0, b=0.05)
        assert m.expected_failures(0.0, 20.0) == pytest.approx(m.mean_value(20.0))

    def test_invalid_parameters(self):
        with pytest.raises(DistributionError):
            GoelOkumoto(a=0.0, b=1.0)

    def test_negative_time_rejected(self):
        m = GoelOkumoto(a=10.0, b=0.1)
        with pytest.raises(ModelDefinitionError):
            m.reliability(-1.0)


class TestDelayedSShaped:
    def test_intensity_starts_at_zero_and_peaks(self):
        m = DelayedSShaped(a=100.0, b=0.1)
        assert m.intensity(0.0) == 0.0
        # peak at t = 1/b
        assert m.intensity(10.0) > m.intensity(1.0)
        assert m.intensity(10.0) > m.intensity(100.0)

    def test_mean_value_saturates(self):
        m = DelayedSShaped(a=100.0, b=0.1)
        assert m.mean_value(1e6) == pytest.approx(100.0)

    def test_s_shape_slower_start_than_go(self):
        go = GoelOkumoto(a=100.0, b=0.1)
        ds = DelayedSShaped(a=100.0, b=0.1)
        assert ds.mean_value(1.0) < go.mean_value(1.0)


class TestMusaOkumoto:
    def test_initial_intensity(self):
        m = MusaOkumoto(initial_intensity=10.0, decay=0.05)
        assert m.intensity(0.0) == pytest.approx(10.0)

    def test_infinite_failures(self):
        m = MusaOkumoto(initial_intensity=10.0, decay=0.05)
        assert m.mean_value(1e9) > 100.0  # unbounded, unlike GO

    def test_intensity_decays_with_failures(self):
        m = MusaOkumoto(initial_intensity=10.0, decay=0.05)
        # λ(m) = λ0 e^{-θ m}: check via the identity λ(t) = λ0 exp(-θ m(t))
        t = 3.0
        assert m.intensity(t) == pytest.approx(
            10.0 * math.exp(-0.05 * m.mean_value(t)), rel=1e-9
        )


class TestSimulationAndFit:
    def test_sampled_count_matches_mean(self, rng):
        m = GoelOkumoto(a=200.0, b=0.02)
        counts = [len(m.sample_failure_times(100.0, rng)) for _ in range(200)]
        assert np.mean(counts) == pytest.approx(m.mean_value(100.0), rel=0.05)

    def test_mle_recovers_parameters(self, rng):
        truth = GoelOkumoto(a=500.0, b=0.03)
        times = truth.sample_failure_times(150.0, rng)
        fit = fit_goel_okumoto(times, 150.0)
        assert fit.a == pytest.approx(500.0, rel=0.25)
        assert fit.b == pytest.approx(0.03, rel=0.25)

    def test_fitted_model_roundtrip(self, rng):
        truth = GoelOkumoto(a=300.0, b=0.05)
        times = truth.sample_failure_times(120.0, rng)
        fit = fit_goel_okumoto(times, 120.0)
        model = fit.model()
        assert model.mean_value(120.0) == pytest.approx(len(times), rel=0.05)

    def test_no_growth_rejected(self):
        # Uniformly spread failures: mean time = T/2, MLE does not exist.
        times = np.linspace(1.0, 99.0, 50)
        with pytest.raises(DistributionError):
            fit_goel_okumoto(times, 100.0)

    def test_needs_three_failures(self):
        with pytest.raises(DistributionError):
            fit_goel_okumoto([1.0, 2.0], 10.0)


class TestLaplaceTrend:
    def test_growth_detected(self):
        trend = laplace_trend([1.0, 2.0, 4.0, 8.0], 100.0)
        assert trend.statistic < -2.0
        assert trend.p_value_growth < 0.05

    def test_homogeneous_process_no_trend(self, rng):
        stats = []
        for _ in range(100):
            times = np.sort(rng.uniform(0, 100, size=30))
            stats.append(laplace_trend(times, 100.0).statistic)
        assert abs(np.mean(stats)) < 0.3
        assert np.std(stats) == pytest.approx(1.0, abs=0.3)

    def test_decay_detected(self):
        trend = laplace_trend([92.0, 96.0, 98.0, 99.0], 100.0)
        assert trend.statistic > 2.0

    def test_validation(self):
        with pytest.raises(DistributionError):
            laplace_trend([1.0], 10.0)
        with pytest.raises(DistributionError):
            laplace_trend([5.0, 20.0], 10.0)
