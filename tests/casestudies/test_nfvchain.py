"""NFV service chain: spec validation and three-route cross-validation."""

import numpy as np
import pytest

from repro.casestudies import nfvchain
from repro.exceptions import ModelDefinitionError
from repro.markov.fallback import solve_steady_state


class TestSpec:
    def test_default_state_count(self):
        assert nfvchain.state_count(nfvchain.NFVChainSpec()) == 64

    def test_state_count_scales(self):
        spec = nfvchain.NFVChainSpec(n_vnfs=6, replicas=6)
        assert nfvchain.state_count(spec) == 7**6  # 117 649

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_vnfs": 0},
            {"replicas": 0},
            {"min_replicas": 0},
            {"min_replicas": 4},  # > replicas=3
            {"repair_crews": 0},
            {"failure_rate": 0.0},
            {"repair_rate": -1.0},
        ],
    )
    def test_invalid_spec_rejected(self, kwargs):
        with pytest.raises(ModelDefinitionError):
            nfvchain.NFVChainSpec(**kwargs)


class TestResolveParameters:
    def test_partial_assignment_merges_defaults(self):
        spec = nfvchain.resolve_parameters({"n_vnfs": 5})
        assert spec.n_vnfs == 5 and spec.replicas == 3

    def test_unknown_name_listed(self):
        with pytest.raises(ModelDefinitionError, match="unknown NFV parameter"):
            nfvchain.resolve_parameters({"n_vnf": 2})

    def test_non_integer_count_rejected(self):
        with pytest.raises(ModelDefinitionError, match="whole number"):
            nfvchain.resolve_parameters({"replicas": 2.5})

    def test_non_finite_rejected(self):
        with pytest.raises(ModelDefinitionError, match="finite"):
            nfvchain.resolve_parameters({"failure_rate": float("nan")})


class TestCrossValidation:
    def test_lazy_srn_matches_analytic(self):
        spec = nfvchain.NFVChainSpec()
        model = nfvchain.build_nfv_model(spec)
        assert model.steady_state_availability() == pytest.approx(
            nfvchain.analytic_availability(spec), abs=1e-12
        )

    def test_eager_srn_matches_analytic(self):
        spec = nfvchain.NFVChainSpec(n_vnfs=2, replicas=2)
        model = nfvchain.build_nfv_model(spec, lazy=False)
        assert model.steady_state_availability() == pytest.approx(
            nfvchain.analytic_availability(spec), abs=1e-12
        )

    def test_product_form_generator_matches_analytic(self):
        spec = nfvchain.NFVChainSpec()
        q, mask = nfvchain.build_nfv_generator(spec)
        assert q.shape == (64, 64)
        np.testing.assert_allclose(
            np.asarray(q.sum(axis=1)).ravel(), 0.0, atol=1e-12
        )
        pi = solve_steady_state(q).pi
        assert float(pi[mask].sum()) == pytest.approx(
            nfvchain.analytic_availability(spec), abs=1e-12
        )

    def test_generator_matches_exact_product_distribution(self):
        spec = nfvchain.NFVChainSpec(n_vnfs=2, replicas=3)
        q, _ = nfvchain.build_nfv_generator(spec)
        pi = solve_steady_state(q).pi
        # independent stages: π(s) = Π_i marginal(digit_i)
        from repro.markov.ctmc import CTMC

        chain = CTMC()
        for k in range(spec.replicas, 0, -1):
            chain.add_transition(k, k - 1, k * spec.failure_rate)
        for k in range(spec.replicas):
            chain.add_transition(
                k, k + 1, spec.repair_rate * min(spec.replicas - k, spec.repair_crews)
            )
        marg_d = chain.steady_state()
        marg = np.array([marg_d[k] for k in range(spec.replicas + 1)])
        radix = spec.replicas + 1
        idx = np.arange(len(pi))
        exact = marg[idx % radix] * marg[(idx // radix) % radix]
        np.testing.assert_allclose(pi, exact, atol=1e-10)

    def test_min_replicas_tightens_availability(self):
        loose = nfvchain.analytic_availability(nfvchain.NFVChainSpec(min_replicas=1))
        tight = nfvchain.analytic_availability(nfvchain.NFVChainSpec(min_replicas=3))
        assert tight < loose

    def test_up_mask_attached_by_lazy_build(self):
        chain = nfvchain.build_nfv_srn(nfvchain.NFVChainSpec()).chain
        assert chain.up_mask is not None
        assert 0 < chain.up_mask.sum() < chain.n_states


class TestEvaluator:
    def test_defaults(self):
        a = nfvchain.evaluate_availability({})
        assert a == pytest.approx(
            nfvchain.analytic_availability(nfvchain.NFVChainSpec()), abs=1e-10
        )

    def test_above_solver_limit_uses_analytic(self):
        big = {"n_vnfs": 8, "replicas": 6}  # 7^8 ≈ 5.8e6 states
        a = nfvchain.evaluate_availability(big, solver_limit=200_000)
        spec = nfvchain.resolve_parameters(big)
        assert a == pytest.approx(nfvchain.analytic_availability(spec), abs=1e-14)

    def test_registered_in_default_registry(self):
        from repro.serve import default_registry

        entry = default_registry(probe=False).get("nfvchain")
        assert entry.size["n_states"] == 64
        assert "replicas" in entry.parameters
        assert entry.report is not None and entry.report.ok
