"""Tests for the telephone-switching DPM case study."""

import pytest

from repro.casestudies.telecom import (
    LOSS_FRACTION,
    TelecomParameters,
    build_switch,
    call_loss_dpm,
    dpm_table,
)


class TestModelStructure:
    def test_states(self):
        chain = build_switch(TelecomParameters())
        assert set(chain.states) == {"duplex", "failover", "manual", "simplex", "down"}

    def test_steady_state_sums_to_one(self):
        chain = build_switch(TelecomParameters())
        assert sum(chain.steady_state().values()) == pytest.approx(1.0)

    def test_loss_fractions_cover_states(self):
        chain = build_switch(TelecomParameters())
        assert set(LOSS_FRACTION) == set(chain.states)


class TestDPM:
    def test_decomposition_adds_up(self):
        result = call_loss_dpm(TelecomParameters())
        assert result["total_dpm"] == pytest.approx(
            result["steady_dpm"] + result["impulse_dpm"]
        )

    def test_availability_hides_call_loss(self):
        # The availability number looks superb while DPM is non-trivial —
        # the case study's point.
        result = call_loss_dpm(TelecomParameters())
        assert result["availability"] > 0.999999
        assert result["total_dpm"] > 0.1

    def test_dpm_decreases_with_coverage(self):
        rows = dpm_table((0.9, 0.99, 0.999))
        totals = [row[4] for row in rows]
        assert totals[0] > totals[1] > totals[2]

    def test_coverage_gain_saturates(self):
        # Going 0.9 -> 0.99 buys much more than 0.999 -> 0.9999: the
        # switchover blackout + dropped calls set a floor coverage
        # cannot remove.
        rows = dpm_table((0.9, 0.99, 0.999, 0.9999))
        first_gain = rows[0][4] - rows[1][4]
        last_gain = rows[2][4] - rows[3][4]
        assert first_gain > 10 * last_gain

    def test_impulse_loss_immune_to_coverage(self):
        rows = dpm_table((0.9, 0.9999))
        # impulse loss (covered switchover drops) does NOT fall with
        # coverage — it slightly rises as more failures are covered.
        assert rows[1][3] >= rows[0][3]

    def test_faster_switchover_reduces_dpm(self):
        slow = call_loss_dpm(TelecomParameters(failover_rate=60.0))
        fast = call_loss_dpm(TelecomParameters(failover_rate=3600.0))
        assert fast["total_dpm"] < slow["total_dpm"]

    def test_hitless_switchover_limit(self):
        # No dropped calls and instant switchover: impulse goes to zero
        # and the steady loss approaches manual+down only.
        result = call_loss_dpm(
            TelecomParameters(calls_dropped_per_switchover=0.0, failover_rate=3.6e6)
        )
        assert result["impulse_dpm"] == 0.0
        # remaining loss is the uncovered-manual + double-failure floor
        assert result["total_dpm"] < call_loss_dpm(TelecomParameters())["total_dpm"]
        assert result["total_dpm"] < 0.5
