"""Tests for the tutorial case studies: each module must reproduce its
qualitative claim (who wins, by roughly what factor)."""

import numpy as np
import pytest

from repro.casestudies import bladecenter, boeing, cisco, rejuvenation, sip, sun, wfs


class TestCisco:
    def test_redundancy_beats_simplex(self):
        params = cisco.CiscoParameters()
        simplex = cisco.build_simplex_processor(params)
        redundant = cisco.build_redundant_processor(params)
        assert (
            redundant.steady_state_availability() > simplex.steady_state_availability()
        )
        # Order-of-magnitude gain on downtime:
        assert simplex.downtime_minutes_per_year() > 10 * redundant.downtime_minutes_per_year()

    def test_coverage_dominates_residual_downtime(self):
        base = cisco.CiscoParameters()
        better_coverage = cisco.CiscoParameters(coverage=0.999)
        a0 = cisco.build_redundant_processor(base).downtime_minutes_per_year()
        a1 = cisco.build_redundant_processor(better_coverage).downtime_minutes_per_year()
        assert a1 < a0

    def test_full_router_table_shape(self):
        rows = cisco.downtime_table()
        assert len(rows) == 4
        names = [r[0] for r in rows]
        assert any("simplex" in n for n in names)
        for _name, avail, downtime in rows:
            assert 0.99 < avail <= 1.0
            assert downtime == pytest.approx((1 - avail) * 525_600, rel=1e-9)

    def test_router_availability_below_processor(self):
        params = cisco.CiscoParameters()
        router = cisco.build_router(params, redundant=True)
        proc = cisco.build_redundant_processor(params)
        assert router.steady_state_availability() < proc.steady_state_availability()


class TestBladeCenter:
    def test_blade_dominates_downtime_budget(self):
        rows = {name: downtime for name, _a, downtime in bladecenter.downtime_budget()}
        chassis_downtime = rows["power"] + rows["cooling"] + rows["management"] + rows["switch"]
        assert rows["blade server"] > 10 * chassis_downtime

    def test_system_availability_near_four_nines(self):
        rows = {name: avail for name, avail, _d in bladecenter.downtime_budget()}
        assert 0.99995 > rows["system (chassis + blade)"] > 0.999

    def test_redundant_pair_better_than_single(self):
        params = bladecenter.BladeCenterParameters()
        pair = bladecenter.build_redundant_pair(
            params.power_failure_rate, params.chassis_repair_rate
        )
        single_unavail = params.power_failure_rate / (
            params.power_failure_rate + params.chassis_repair_rate
        )
        assert pair.steady_state_unavailability() < single_unavail / 100

    def test_hierarchy_consistent_with_direct_product(self):
        params = bladecenter.BladeCenterParameters()
        solution = bladecenter.build_bladecenter(params).solve()
        direct = (
            solution.value("chassis", "availability")
            * solution.value("blade", "availability")
        )
        assert solution.value("system", "availability") == pytest.approx(direct, rel=1e-12)

    def test_shared_vs_independent_repair_ordering(self):
        params = bladecenter.BladeCenterParameters()
        shared = bladecenter.build_redundant_pair(1e-3, 0.25, shared_repair=True)
        independent = bladecenter.build_redundant_pair(1e-3, 0.25, shared_repair=False)
        assert (
            independent.steady_state_availability() > shared.steady_state_availability()
        )


class TestSun:
    def test_immediate_beats_deferred(self):
        rows = {name: avail for name, avail, _d, _dpm in sun.policy_table()}
        assert rows["immediate"] > rows["deferred"]

    def test_dpm_definition(self):
        for _name, avail, _downtime, dpm_value in sun.policy_table():
            assert dpm_value == pytest.approx((1 - avail) * 1e6, rel=1e-9)

    def test_coverage_sweep_monotone(self):
        rows = sun.coverage_sweep(np.linspace(0.9, 0.9999, 8))
        dpms = [row[2] for row in rows]
        assert all(b < a for a, b in zip(dpms, dpms[1:]))

    def test_coverage_blowup_factor(self):
        rows = sun.coverage_sweep([0.9, 0.9999])
        # dropping coverage from 4 nines to 1 nine costs >10x the DPM
        assert rows[0][2] > 10 * rows[1][2]


class TestSIP:
    def test_report_levels_ordered(self):
        report = sip.availability_report()
        # Composition can only lose availability vs its parts:
        assert report["node"] <= min(report["software"], report["hardware"]) + 1e-12
        assert report["service"] <= report["proxies"] + 1e-12

    def test_software_dominates_hardware(self):
        report = sip.availability_report()
        assert report["software"] < report["hardware"]

    def test_restart_coverage_sensitivity(self):
        base = sip.availability_report(sip.SIPParameters())["service"]
        better = sip.availability_report(sip.SIPParameters(restart_coverage=0.99))["service"]
        assert better > base

    def test_cluster_redundancy_masks_node_failures(self):
        report = sip.availability_report()
        assert report["service"] > report["node"]


class TestBoeing:
    def test_generator_reproducible(self):
        t1 = boeing.generate_boeing_style_tree(seed=5)
        t2 = boeing.generate_boeing_style_tree(seed=5)
        assert t1.top_event_probability() == t2.top_event_probability()

    def test_tree_has_repeated_events(self):
        tree = boeing.generate_boeing_style_tree()
        shared_used = sum(
            1 for cs in tree.minimal_cut_sets() for e in cs if e.startswith("shared")
        )
        assert shared_used > 0

    def test_bounds_converge_monotonically(self):
        tree = boeing.generate_boeing_style_tree(n_sections=6)
        rows = boeing.bounds_convergence_table(tree, depths=[1, 2, 3, 4])
        exact = rows[0][3]
        widths = [hi - lo for _d, lo, hi, _e in rows]
        for _depth, lo, hi, _exact in rows:
            assert lo - 1e-18 <= exact <= hi + 1e-18
        assert all(b <= a + 1e-18 for a, b in zip(widths, widths[1:]))

    def test_scaling_knobs(self):
        small = boeing.generate_boeing_style_tree(n_sections=4)
        large = boeing.generate_boeing_style_tree(n_sections=10)
        assert len(large.basic_events) > len(small.basic_events)


class TestRejuvenation:
    def test_rejuvenation_reduces_total_downtime(self):
        baseline = rejuvenation.downtime_fraction(None)
        tuned = rejuvenation.downtime_fraction(120.0)
        assert tuned["total"] < baseline["total"]

    def test_downtime_split_consistent(self):
        split = rejuvenation.downtime_fraction(100.0)
        assert split["total"] == pytest.approx(split["planned"] + split["unplanned"])
        assert split["availability"] == pytest.approx(1 - split["total"])

    def test_finite_optimal_interval(self):
        grid = np.linspace(12.0, 800.0, 30)
        best_tau, best_cost = rejuvenation.optimal_interval(grid)
        # optimum strictly inside the grid: the classic U-shape
        assert grid[0] < best_tau < grid[-1]
        rows = rejuvenation.interval_sweep([grid[0], grid[-1]])
        assert best_cost < rows[0][3]
        assert best_cost < rows[1][3]

    def test_aggressive_rejuvenation_is_mostly_planned(self):
        split = rejuvenation.downtime_fraction(12.0)
        assert split["planned"] > split["unplanned"]

    def test_lazy_rejuvenation_is_mostly_unplanned(self):
        split = rejuvenation.downtime_fraction(2000.0)
        assert split["unplanned"] > split["planned"]

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError):
            rejuvenation.build_rejuvenation_mrgp(0.0)


class TestWFS:
    def test_hierarchical_equals_monolithic(self):
        params = wfs.WFSParameters()
        assert wfs.hierarchical_availability(params) == pytest.approx(
            wfs.monolithic_availability(params), abs=1e-12
        )

    @pytest.mark.parametrize("n,k", [(2, 1), (4, 2), (6, 3), (8, 5)])
    def test_agreement_across_sizes(self, n, k):
        params = wfs.WFSParameters(n_workstations=n, k_required=k)
        assert wfs.hierarchical_availability(params) == pytest.approx(
            wfs.monolithic_availability(params), abs=1e-12
        )

    def test_state_count(self):
        params = wfs.WFSParameters(n_workstations=4)
        assert wfs.monolithic_state_count(params) == 10

    def test_more_required_workstations_less_available(self):
        loose = wfs.WFSParameters(k_required=1)
        strict = wfs.WFSParameters(k_required=4)
        assert wfs.hierarchical_availability(strict) < wfs.hierarchical_availability(loose)
