"""The curated lazy top-level namespace (``repro.__all__`` + PEP 562)."""

import importlib
import pkgutil
import subprocess
import sys
import warnings

import pytest

import repro


class TestLazyExports:
    def test_every_public_name_resolves(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None, name

    def test_unknown_name_raises_attribute_error(self):
        with pytest.raises(AttributeError, match="no attribute 'definitely_not_here'"):
            repro.definitely_not_here

    def test_dir_lists_the_curated_surface(self):
        listing = dir(repro)
        for name in ("CTMC", "trace", "evaluate_batch", "EngineOptions", "FaultTree"):
            assert name in listing

    def test_exports_map_is_consistent(self):
        # every _EXPORTS entry points at a module that really defines it
        for name, module_name in repro._EXPORTS.items():
            module = importlib.import_module(module_name)
            assert hasattr(module, name), f"{module_name} does not define {name}"

    def test_resolution_is_cached(self):
        first = repro.CTMC
        assert "CTMC" in vars(repro)  # cached into the module dict
        assert repro.CTMC is first

    def test_flagship_flat_import(self):
        from repro import CTMC, EngineOptions, evaluate_batch, trace  # noqa: F401

    def test_import_repro_is_lazy(self):
        # a fresh interpreter importing repro must not pull in the heavy
        # submodules until a name is touched
        code = (
            "import sys; import repro; "
            "print('repro.markov.ctmc' in sys.modules, repro.CTMC.__name__, "
            "'repro.markov.ctmc' in sys.modules)"
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            check=True,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
            cwd=str(__import__("pathlib").Path(__file__).resolve().parent.parent),
        )
        assert out.stdout.split() == ["False", "CTMC", "True"]


class TestNoDeprecatedInternalUsage:
    """Library code must never call its own deprecated kwargs."""

    def test_importing_every_submodule_emits_no_deprecation_warnings(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
                importlib.import_module(info.name)

    def test_representative_workloads_emit_no_deprecation_warnings(self):
        import numpy as np

        from repro import CTMC, GridCampaign, run_campaign, solve_steady_state
        from repro.casestudies.bladecenter import evaluate_availability

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            chain = CTMC()
            chain.add_transition("up", "down", 1e-3)
            chain.add_transition("down", "up", 0.5)
            chain.steady_state(method="auto")
            chain.steady_state_report()
            chain.transient([1.0, 5.0], initial="up", method="auto")
            solve_steady_state(chain.generator())
            run_campaign(
                evaluate_availability,
                GridCampaign({"cpu_failure_rate": [1e-6, 2e-6]}),
            )
            np.testing.assert_allclose(
                solve_steady_state(chain.generator(), method="gth").pi.sum(), 1.0
            )
