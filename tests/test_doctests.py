"""Run the doctest examples embedded in the public modules.

Keeps every ``Examples`` block in the docstrings executable — the
cheapest guarantee that the documentation never rots.
"""

import doctest

import pytest

import repro
import repro.core.fixedpoint
import repro.core.measures
import repro.core.sensitivity
import repro.core.uncertainty
import repro.engine.batch
import repro.engine.cache
import repro.engine.campaign
import repro.engine.stats
import repro.distributions.degenerate
import repro.distributions.empirical
import repro.distributions.exponential
import repro.distributions.fitting
import repro.distributions.gamma
import repro.distributions.hyperexp
import repro.distributions.hypoexp
import repro.distributions.lognormal
import repro.distributions.weibull
import repro.estimation.availability
import repro.estimation.exponential
import repro.estimation.nonparametric
import repro.markov.acyclic
import repro.markov.ctmc
import repro.markov.dtmc
import repro.markov.fallback
import repro.markov.mrgp
import repro.markov.mrm
import repro.markov.phase
import repro.markov.sensitivity
import repro.markov.smp
import repro.nonstate.bdd
import repro.nonstate.ccf
import repro.robust.faultinject
import repro.robust.policy
import repro.robust.shutdown
import repro.store.cache
import repro.store.resumable
import repro.nonstate.faulttree
import repro.nonstate.importance
import repro.nonstate.modules
import repro.nonstate.phased
import repro.nonstate.rbd
import repro.nonstate.relgraph
import repro.petrinet.net
import repro.petrinet.srn
import repro.petrinet.templates
import repro.serve.cache
import repro.srgm.fitting
import repro.srgm.models

MODULES = [
    repro,
    repro.core.fixedpoint,
    repro.core.measures,
    repro.core.sensitivity,
    repro.core.uncertainty,
    repro.engine.batch,
    repro.engine.cache,
    repro.engine.campaign,
    repro.engine.stats,
    repro.distributions.degenerate,
    repro.distributions.empirical,
    repro.distributions.exponential,
    repro.distributions.fitting,
    repro.distributions.gamma,
    repro.distributions.hyperexp,
    repro.distributions.hypoexp,
    repro.distributions.lognormal,
    repro.distributions.weibull,
    repro.estimation.availability,
    repro.estimation.exponential,
    repro.estimation.nonparametric,
    repro.markov.acyclic,
    repro.markov.ctmc,
    repro.markov.dtmc,
    repro.markov.fallback,
    repro.markov.mrgp,
    repro.markov.mrm,
    repro.markov.phase,
    repro.markov.sensitivity,
    repro.markov.smp,
    repro.robust.faultinject,
    repro.robust.policy,
    repro.robust.shutdown,
    repro.store.cache,
    repro.store.resumable,
    repro.nonstate.bdd,
    repro.nonstate.ccf,
    repro.nonstate.faulttree,
    repro.nonstate.importance,
    repro.nonstate.modules,
    repro.nonstate.phased,
    repro.nonstate.rbd,
    repro.nonstate.relgraph,
    repro.petrinet.net,
    repro.petrinet.srn,
    repro.petrinet.templates,
    repro.serve.cache,
    repro.srgm.fitting,
    repro.srgm.models,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False, raise_on_error=False)
    assert results.failed == 0, f"{results.failed} doctest failure(s) in {module.__name__}"
