"""Integration tests: multi-package workflows a practitioner actually runs.

Each test chains several subsystems — estimation → model → uncertainty,
SRN leaves inside hierarchies, MRGP optimization, phased missions over
fitted parameters — to catch interface drift that unit tests miss.
"""

import numpy as np
import pytest

from repro.core import (
    HierarchicalModel,
    Submodel,
    export_availability,
    propagate_uncertainty,
    series_availability_budget,
)
from repro.distributions import Exponential, Lognormal, Weibull
from repro.estimation import estimate_rate, fit_weibull_mle
from repro.markov import CTMC, MarkovDependabilityModel, reward_rate_derivative
from repro.nonstate import Component, PhasedMission, ReliabilityBlockDiagram, parallel, series
from repro.petrinet import PetriNet, SRNDependabilityModel, StochasticRewardNet
from repro.sim import simulate_steady_fraction


class TestEstimateThenModel:
    def test_fitted_rates_drive_rbd(self, rng):
        # 1. "field data" from known truth; 2. fit; 3. model from fits.
        true_rate = 1.0 / 800.0
        failures = Exponential(true_rate).sample(rng, 400)
        est = estimate_rate(failures)

        comp = Component.from_rates("srv", est.rate, 0.25)
        rbd = ReliabilityBlockDiagram(series(comp))
        expected = (1 / true_rate) / (1 / true_rate + 4.0)
        assert rbd.steady_state_availability() == pytest.approx(expected, rel=0.02)

    def test_weibull_fit_into_phased_mission(self, rng):
        truth = Weibull(shape=2.0, scale=500.0)
        fit = fit_weibull_mle(truth.sample(rng, 3000))
        comps = [
            Component("a", failure=fit.distribution()),
            Component("b", failure=fit.distribution()),
        ]
        mission = PhasedMission(comps)
        mission.add_phase("strict", 10.0, lambda bdd, v: bdd.apply_and(v("a"), v("b")))
        mission.add_phase("lenient", 50.0, lambda bdd, v: bdd.apply_or(v("a"), v("b")))
        got = mission.reliability()
        assert got == pytest.approx(mission.brute_force_reliability(), abs=1e-12)
        # sanity vs truth-parameter mission
        comps_true = [Component("a", failure=truth), Component("b", failure=truth)]
        mission_true = PhasedMission(comps_true)
        mission_true.add_phase("strict", 10.0, lambda bdd, v: bdd.apply_and(v("a"), v("b")))
        mission_true.add_phase("lenient", 50.0, lambda bdd, v: bdd.apply_or(v("a"), v("b")))
        assert got == pytest.approx(mission_true.reliability(), abs=0.01)


class TestSRNInsideHierarchy:
    def test_srn_leaf_exports_availability(self):
        def build_srn_leaf(_params):
            net = PetriNet()
            net.add_place("up", 2)
            net.add_place("down", 0)
            net.add_timed_transition("fail", rate=lambda m: 0.01 * m["up"])
            net.add_input_arc("fail", "up")
            net.add_output_arc("fail", "down")
            net.add_timed_transition("repair", rate=1.0)
            net.add_input_arc("repair", "down")
            net.add_output_arc("repair", "up")
            return SRNDependabilityModel(
                StochasticRewardNet(net), up=lambda m: m["up"] >= 1
            )

        def build_top(imports):
            return ReliabilityBlockDiagram(
                series(
                    Component.fixed("pool", 1.0 - imports["pool_avail"]),
                    Component.from_rates("net", 1e-4, 0.5),
                )
            )

        h = HierarchicalModel()
        h.add_submodel(Submodel("pool", build_srn_leaf, exports={"a": export_availability}))
        h.add_submodel(
            Submodel(
                "system", build_top,
                imports={"pool_avail": ("pool", "a")},
                exports={"a": export_availability},
            )
        )
        solution = h.solve()
        pool_avail = solution.value("pool", "a")
        net_avail = 0.5 / (0.5 + 1e-4)
        assert solution.value("system", "a") == pytest.approx(
            pool_avail * net_avail, rel=1e-10
        )


class TestUncertaintyOverStateSpaceModel:
    def test_epistemic_interval_on_ctmc_availability(self, rng):
        def evaluate(params):
            chain = CTMC()
            chain.add_transition(2, 1, 2 * params["lam"])
            chain.add_transition(1, 0, params["lam"])
            chain.add_transition(1, 2, params["mu"])
            chain.add_transition(0, 1, params["mu"])
            model = MarkovDependabilityModel(chain, [2, 1], initial=2)
            return model.steady_state_availability()

        priors = {
            "lam": Lognormal.from_mean_cv(0.01, cv=0.4),
            "mu": Lognormal.from_mean_cv(1.0, cv=0.2),
        }
        result = propagate_uncertainty(evaluate, priors, n_samples=300, rng=rng)
        low, high = result.interval(0.9)
        point = evaluate({"lam": 0.01, "mu": 1.0})
        assert low < point < high
        assert high <= 1.0

    def test_exact_sensitivity_agrees_with_sampling_direction(self, rng):
        chain = CTMC()
        chain.add_transition("up", "down", 0.02)
        chain.add_transition("down", "up", 1.0)
        d_avail = reward_rate_derivative(chain, {"up": 1.0}, {("up", "down"): 1.0})
        assert d_avail < 0  # higher failure rate, lower availability


class TestSimulatorClosesTheLoop:
    def test_hierarchy_top_level_vs_simulation(self, rng):
        lam, mu = 0.05, 1.0
        chain = CTMC()
        chain.add_transition(2, 1, 2 * lam)
        chain.add_transition(1, 0, lam)
        chain.add_transition(1, 2, mu)
        chain.add_transition(0, 1, mu)
        analytic = MarkovDependabilityModel(chain, [2, 1], initial=2)
        est = simulate_steady_fraction(chain, [2, 1], 3000.0, 2, 48, rng=rng)
        assert est.contains(analytic.steady_state_availability(), level=0.999)

    def test_budget_of_modelled_subsystems(self):
        # compose three availability numbers from three different model
        # classes into one downtime budget
        ctmc = CTMC()
        ctmc.add_transition("u", "d", 0.01)
        ctmc.add_transition("d", "u", 1.0)
        a_ctmc = MarkovDependabilityModel(ctmc, ["u"], "u").steady_state_availability()

        rbd = ReliabilityBlockDiagram(
            parallel(Component.from_rates("x", 0.02, 1.0), Component.from_rates("y", 0.02, 1.0))
        )
        a_rbd = rbd.steady_state_availability()

        net = PetriNet()
        net.add_place("ok", 1)
        net.add_place("ko", 0)
        net.add_timed_transition("f", rate=0.005)
        net.add_input_arc("f", "ok")
        net.add_output_arc("f", "ko")
        net.add_timed_transition("r", rate=0.2)
        net.add_input_arc("r", "ko")
        net.add_output_arc("r", "ok")
        a_srn = SRNDependabilityModel(
            StochasticRewardNet(net), up=lambda m: m["ok"] == 1
        ).steady_state_availability()

        total, rows = series_availability_budget(
            {"markov": a_ctmc, "rbd": a_rbd, "srn": a_srn}
        )
        assert total == pytest.approx(a_ctmc * a_rbd * a_srn)
        assert sum(r.share for r in rows.values()) == pytest.approx(1.0)
        # the SRN subsystem (1% unavail) dominates the budget
        assert rows["srn"].share == max(r.share for r in rows.values())
