"""Integration tests: the same system modeled in several formalisms must
produce the same numbers — the tutorial's central consistency story."""

import numpy as np
import pytest

from repro.distributions import Deterministic, Erlang, Exponential
from repro.markov import (
    CTMC,
    MarkovDependabilityModel,
    MarkovRegenerativeProcess,
    MarkovRewardModel,
    SemiMarkovProcess,
    expand_two_state_availability,
)
from repro.nonstate import Component, FaultTree, OrGate, BasicEvent, ReliabilityBlockDiagram, parallel, series
from repro.petrinet import PetriNet, SRNDependabilityModel, StochasticRewardNet


class TestTwoUnitSharedRepair:
    """2-unit parallel redundant system, one repair crew, λ=0.01, μ=1."""

    LAM, MU = 0.01, 1.0

    def ctmc_model(self):
        chain = CTMC()
        chain.add_transition(2, 1, 2 * self.LAM)
        chain.add_transition(1, 0, self.LAM)
        chain.add_transition(1, 2, self.MU)
        chain.add_transition(0, 1, self.MU)
        return MarkovDependabilityModel(chain, up_states=[2, 1], initial=2)

    def srn_model(self):
        net = PetriNet()
        net.add_place("up", 2)
        net.add_place("down", 0)
        net.add_timed_transition("fail", rate=lambda m: self.LAM * m["up"])
        net.add_input_arc("fail", "up")
        net.add_output_arc("fail", "down")
        net.add_timed_transition("repair", rate=self.MU)  # single crew
        net.add_input_arc("repair", "down")
        net.add_output_arc("repair", "up")
        return SRNDependabilityModel(StochasticRewardNet(net), up=lambda m: m["up"] >= 1)

    def smp_model(self):
        chain = self.ctmc_model().chain
        smp = SemiMarkovProcess.from_competing(
            {
                2: {1: Exponential(2 * self.LAM)},
                1: {0: Exponential(self.LAM), 2: Exponential(self.MU)},
                0: {1: Exponential(self.MU)},
            }
        )
        return smp

    def test_ctmc_equals_srn_availability(self):
        assert self.ctmc_model().steady_state_availability() == pytest.approx(
            self.srn_model().steady_state_availability(), rel=1e-12
        )

    def test_ctmc_equals_srn_mttf(self):
        assert self.ctmc_model().mttf() == pytest.approx(self.srn_model().mttf(), rel=1e-10)

    def test_ctmc_equals_smp_steady_state(self):
        pi_smp = self.smp_model().steady_state()
        a_smp = pi_smp[2] + pi_smp[1]
        assert a_smp == pytest.approx(self.ctmc_model().steady_state_availability(), rel=1e-4)

    def test_transient_availability_agreement(self):
        ctmc = self.ctmc_model()
        srn = self.srn_model()
        for t in (1.0, 10.0, 100.0):
            assert ctmc.availability(t) == pytest.approx(srn.availability(t), abs=1e-9)

    def test_independence_assumption_overestimates(self):
        # RBD with per-unit availability computed as if repairs were
        # independent overestimates the shared-repair truth.
        unit_avail = self.MU / (self.LAM + self.MU)
        rbd = ReliabilityBlockDiagram(
            parallel(
                Component.fixed("u1", 1 - unit_avail),
                Component.fixed("u2", 1 - unit_avail),
            )
        )
        assert rbd.steady_state_availability() > self.ctmc_model().steady_state_availability()


class TestUpDownAcrossFormalisms:
    """Exponential up, Erlang-2 down: SMP vs PH-expanded CTMC vs MRGP."""

    UP_RATE = 0.02
    DOWN = Erlang.from_mean(4.0, stages=2)

    def expected(self):
        mttf = 1 / self.UP_RATE
        return mttf / (mttf + self.DOWN.mean())

    def test_smp(self):
        smp = SemiMarkovProcess()
        smp.add_transition("up", "down", 1.0, Exponential(self.UP_RATE))
        smp.add_transition("down", "up", 1.0, self.DOWN)
        assert smp.steady_state()["up"] == pytest.approx(self.expected(), rel=1e-12)

    def test_phase_type_expansion(self):
        chain, ups, downs = expand_two_state_availability(
            Exponential(self.UP_RATE), self.DOWN
        )
        model = MarkovDependabilityModel(chain, ups, initial=ups[0])
        assert model.steady_state_availability() == pytest.approx(self.expected(), rel=1e-12)

    def test_mrgp(self):
        mrgp = MarkovRegenerativeProcess()
        mrgp.add_exponential("up", "down", self.UP_RATE)
        mrgp.add_general("repair", self.DOWN, ["down"], {"down": "up"})
        pi = mrgp.steady_state(n_quadrature=512)
        assert pi["up"] == pytest.approx(self.expected(), rel=1e-3)


class TestHierarchyVsMonolith:
    def test_ft_over_ctmc_leaves_equals_product_chain(self):
        # Two independent repairable units in series; leaves as CTMCs,
        # top as a fault tree — must equal the 4-state product CTMC.
        lam1, mu1, lam2, mu2 = 0.01, 1.0, 0.005, 0.5

        def leaf(lam, mu):
            chain = CTMC()
            chain.add_transition("up", "down", lam)
            chain.add_transition("down", "up", mu)
            return MarkovDependabilityModel(chain, ["up"], initial="up")

        a1 = leaf(lam1, mu1).steady_state_availability()
        a2 = leaf(lam2, mu2).steady_state_availability()
        tree = FaultTree(
            OrGate([BasicEvent.fixed("u1", 1 - a1), BasicEvent.fixed("u2", 1 - a2)])
        )
        hierarchical = tree.steady_state_availability()

        product = CTMC()
        for s1 in ("u", "d"):
            for s2 in ("u", "d"):
                state = (s1, s2)
                if s1 == "u":
                    product.add_transition(state, ("d", s2), lam1)
                else:
                    product.add_transition(state, ("u", s2), mu1)
                if s2 == "u":
                    product.add_transition(state, (s1, "d"), lam2)
                else:
                    product.add_transition(state, (s1, "u"), mu2)
        pi = product.steady_state()
        monolithic = pi[("u", "u")]
        assert hierarchical == pytest.approx(monolithic, rel=1e-12)

    def test_reward_model_equals_adapter_interval_availability(self):
        chain = CTMC()
        chain.add_transition("up", "down", 1.0)
        chain.add_transition("down", "up", 9.0)
        adapter = MarkovDependabilityModel(chain, ["up"], initial="up")
        mrm = MarkovRewardModel(chain, {"up": 1.0}, initial="up")
        t = 3.0
        assert adapter.interval_availability(t) == pytest.approx(
            mrm.time_averaged_reward(t), rel=1e-8
        )


class TestDeterministicActivityAgreement:
    def test_smp_and_mrgp_agree_on_deterministic_repair(self):
        lam, tau = 0.05, 3.0
        smp = SemiMarkovProcess()
        smp.add_transition("up", "down", 1.0, Exponential(lam))
        smp.add_transition("down", "up", 1.0, Deterministic(tau))

        mrgp = MarkovRegenerativeProcess()
        mrgp.add_exponential("up", "down", lam)
        mrgp.add_general("repair", Deterministic(tau), ["down"], {"down": "up"})

        assert smp.steady_state()["up"] == pytest.approx(
            mrgp.steady_state()["up"], rel=1e-10
        )
