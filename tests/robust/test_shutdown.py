"""GracefulShutdown — the two-stage SIGTERM/SIGINT drain contract."""

import signal

import pytest

from repro.robust import GracefulShutdown


class TestFlagSemantics:
    def test_starts_clear(self):
        shutdown = GracefulShutdown(signals=())
        assert not shutdown.requested
        assert not shutdown
        assert shutdown() is False

    def test_request_sets_the_flag_once(self):
        fired = []
        shutdown = GracefulShutdown(signals=(), on_first=lambda: fired.append(1))
        shutdown.request()
        assert shutdown.requested
        assert shutdown() is True
        shutdown.request()  # in-process request() is idempotent, no force-exit
        assert fired == [1]

    def test_wait_returns_on_request(self):
        shutdown = GracefulShutdown(signals=())
        assert shutdown.wait(timeout=0.01) is False
        shutdown.request()
        assert shutdown.wait(timeout=0.01) is True

    def test_flag_is_set_before_the_callback_fires(self):
        def boom():
            raise RuntimeError("drain hook failed")

        shutdown = GracefulShutdown(signals=(), on_first=boom)
        with pytest.raises(RuntimeError):
            shutdown.request()
        assert shutdown.requested  # the flag was flipped first

    def test_doubles_as_should_stop(self):
        """The instance is the ``should_stop`` callable ResumableCampaign
        polls between chunks."""
        shutdown = GracefulShutdown(signals=())
        stops = [shutdown() for _ in range(2)]
        shutdown.request()
        stops.append(shutdown())
        assert stops == [False, False, True]


class TestInstallation:
    def test_install_uninstall_restores_handlers(self):
        before = signal.getsignal(signal.SIGTERM)
        shutdown = GracefulShutdown()
        shutdown.install()
        assert signal.getsignal(signal.SIGTERM) is not before
        shutdown.uninstall()
        assert signal.getsignal(signal.SIGTERM) is before

    def test_context_manager_installs_and_restores(self):
        before = signal.getsignal(signal.SIGINT)
        with GracefulShutdown() as shutdown:
            assert signal.getsignal(signal.SIGINT) is not before
            assert not shutdown.requested
        assert signal.getsignal(signal.SIGINT) is before

    def test_first_real_signal_sets_flag_without_dying(self):
        """One genuine SIGTERM delivered to this process: the handler
        absorbs it (no KeyboardInterrupt, no exit) and sets the flag."""
        fired = []
        with GracefulShutdown(on_first=lambda: fired.append(1)) as shutdown:
            signal.raise_signal(signal.SIGTERM)
            assert shutdown.requested
            assert fired == [1]

    def test_install_and_uninstall_are_idempotent(self):
        before = signal.getsignal(signal.SIGTERM)
        shutdown = GracefulShutdown()
        shutdown.install()
        installed = signal.getsignal(signal.SIGTERM)
        shutdown.install()  # no-op: does not stack handlers
        assert signal.getsignal(signal.SIGTERM) is installed
        shutdown.uninstall()
        shutdown.uninstall()
        assert signal.getsignal(signal.SIGTERM) is before
