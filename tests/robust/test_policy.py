"""Unit tests for FaultPolicy, ErrorRecord and FaultReport."""

import pytest

from repro.exceptions import ModelDefinitionError
from repro.robust import ErrorRecord, FaultPolicy, FaultReport


class TestFaultPolicy:
    def test_defaults_are_fail_fast(self):
        policy = FaultPolicy()
        assert policy.on_error == "raise"
        assert policy.max_attempts == 1
        assert not policy.should_retry(1)

    def test_retry_budget(self):
        policy = FaultPolicy(on_error="retry", max_retries=2)
        assert policy.max_attempts == 3
        assert policy.should_retry(1)
        assert policy.should_retry(2)
        assert not policy.should_retry(3)

    def test_skip_never_retries(self):
        policy = FaultPolicy(on_error="skip", max_retries=5)
        assert policy.max_attempts == 1
        assert not policy.should_retry(1)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"on_error": "explode"},
            {"max_retries": -1},
            {"backoff": -0.5},
            {"backoff_jitter": 1.5},
            {"timeout": 0.0},
            {"timeout": -1.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ModelDefinitionError):
            FaultPolicy(**kwargs)

    def test_retry_delay_deterministic_and_exponential(self):
        policy = FaultPolicy(on_error="retry", backoff=0.1, backoff_jitter=0.1)
        first = policy.retry_delay(3, 1)
        assert first == policy.retry_delay(3, 1)  # pure in (index, attempt)
        assert 0.1 <= first <= 0.1 * 1.1
        second = policy.retry_delay(3, 2)
        assert 0.2 <= second <= 0.2 * 1.1
        # Different tasks get different jitter.
        assert policy.retry_delay(4, 1) != first

    def test_zero_backoff_is_free(self):
        policy = FaultPolicy(on_error="retry", backoff=0.0)
        assert policy.retry_delay(0, 1) == 0.0
        assert policy.retry_delay(9, 3) == 0.0


class TestErrorRecord:
    def test_with_index_readdresses(self):
        record = ErrorRecord(3, "ValueError", "boom", attempts=2, duration=0.5)
        moved = record.with_index(11)
        assert moved.index == 11
        assert moved.error_type == "ValueError"
        assert moved.attempts == 2
        assert record.index == 3  # original untouched (frozen)

    def test_str_mentions_the_essentials(self):
        text = str(ErrorRecord(5, "SolverError", "singular", attempts=3))
        assert "task 5" in text and "SolverError" in text and "3 attempts" in text


class TestFaultReport:
    def test_record_folds_outcomes(self):
        report = FaultReport()
        report.record(None, attempts=1)  # clean first try
        report.record(None, attempts=3)  # recovered after two retries
        report.record(ErrorRecord(7, "ValueError", "boom", attempts=3), attempts=3)
        assert report.n_failed == 1
        assert report.n_retries == 4
        assert report.errors[0].index == 7
