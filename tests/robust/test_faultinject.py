"""Unit tests for the deterministic fault-injection harness."""

import pickle

import numpy as np
import pytest

from repro.exceptions import SolverError
from repro.robust import FailingCallable, FaultInjector, InjectedFault


def linear(assignment):
    """Module-level evaluator (picklable)."""
    return assignment["x"] * 2.0


ASSIGNMENTS = [{"x": float(k)} for k in range(400)]


class TestHashProgram:
    def test_fault_set_is_deterministic(self):
        a = FaultInjector(linear, rate=0.05, seed=3)
        b = FaultInjector(linear, rate=0.05, seed=3)
        assert [a.selects(p) for p in ASSIGNMENTS] == [b.selects(p) for p in ASSIGNMENTS]

    def test_fault_rate_is_approximately_honoured(self):
        injector = FaultInjector(linear, rate=0.05, seed=0)
        hits = sum(injector.selects(p) for p in ASSIGNMENTS)
        assert 0.01 < hits / len(ASSIGNMENTS) < 0.12

    def test_different_seeds_differ(self):
        a = FaultInjector(linear, rate=0.2, seed=0)
        b = FaultInjector(linear, rate=0.2, seed=1)
        assert [a.selects(p) for p in ASSIGNMENTS] != [b.selects(p) for p in ASSIGNMENTS]

    def test_transient_fault_recovers_on_second_attempt(self):
        injector = FaultInjector(linear, rate=1.0, seed=0, fail_attempts=1)
        with pytest.raises(InjectedFault):
            injector({"x": 4.0})
        assert injector({"x": 4.0}) == 8.0  # retry in the same process succeeds

    def test_persistent_fault_never_recovers(self):
        injector = FaultInjector(linear, rate=1.0, seed=0, fail_attempts=None)
        for _ in range(3):
            with pytest.raises(InjectedFault):
                injector({"x": 4.0})

    def test_unselected_assignments_flow_through(self):
        injector = FaultInjector(linear, rate=0.0, seed=0)
        assert [injector(p) for p in ASSIGNMENTS[:5]] == [
            linear(p) for p in ASSIGNMENTS[:5]
        ]
        assert injector.faults_fired == 0
        assert injector.calls == 5


class TestCallProgram:
    def test_kth_call_faults(self):
        injector = FaultInjector(linear, fail_calls=[2])
        assert injector({"x": 1.0}) == 2.0
        with pytest.raises(InjectedFault):
            injector({"x": 1.0})
        assert injector({"x": 1.0}) == 2.0


class TestModes:
    def test_nan_mode_returns_nan(self):
        injector = FaultInjector(linear, mode="nan", rate=1.0, fail_attempts=None)
        assert np.isnan(injector({"x": 1.0}))

    def test_crash_mode_downgrades_in_main_process(self):
        injector = FaultInjector(linear, mode="crash", rate=1.0, fail_attempts=None)
        with pytest.raises(InjectedFault, match="downgraded"):
            injector({"x": 1.0})

    def test_validation(self):
        with pytest.raises(SolverError):
            FaultInjector(linear, mode="meltdown")
        with pytest.raises(SolverError):
            FaultInjector(linear, rate=1.5)
        with pytest.raises(SolverError):
            FaultInjector(linear, fail_attempts=0)
        with pytest.raises(SolverError):
            FaultInjector(linear, delay=-1.0)


class TestPickling:
    def test_counters_reset_across_the_boundary(self):
        injector = FaultInjector(linear, rate=1.0, seed=0, fail_attempts=1)
        with pytest.raises(InjectedFault):
            injector({"x": 4.0})
        clone = pickle.loads(pickle.dumps(injector))
        assert clone.calls == 0
        # A fresh worker sees the fault again: first attempt there faults.
        with pytest.raises(InjectedFault):
            clone({"x": 4.0})
        assert clone({"x": 4.0}) == 8.0

    def test_fault_program_survives_pickling(self):
        injector = FaultInjector(linear, rate=0.1, seed=7)
        clone = pickle.loads(pickle.dumps(injector))
        assert [injector.selects(p) for p in ASSIGNMENTS] == [
            clone.selects(p) for p in ASSIGNMENTS
        ]


class TestFailingCallable:
    def test_fails_then_recovers(self):
        wrapped = FailingCallable(lambda x: x + 1, n_failures=2)
        with pytest.raises(SolverError):
            wrapped(1)
        with pytest.raises(SolverError):
            wrapped(1)
        assert wrapped(1) == 2
        assert wrapped.calls == 3

    def test_custom_exception(self):
        wrapped = FailingCallable(lambda: 0, n_failures=1, exception=ValueError)
        with pytest.raises(ValueError):
            wrapped()

    def test_corrupt_mode_nans_the_output(self):
        wrapped = FailingCallable(lambda: np.ones(3), n_failures=1, corrupt=True)
        assert np.all(np.isnan(wrapped()))
        assert np.all(wrapped() == 1.0)

    def test_always_failing(self):
        wrapped = FailingCallable(lambda: 0, n_failures=None)
        for _ in range(4):
            with pytest.raises(SolverError):
                wrapped()
