"""Unit tests for the shared validation helpers and exception hierarchy."""

import numpy as np
import pytest

from repro._validation import (
    as_time_array,
    check_non_negative,
    check_positive,
    check_probability,
    check_rate,
    check_time,
    check_times,
    check_unique_names,
)
from repro.exceptions import (
    ConvergenceError,
    DistributionError,
    HierarchyError,
    ModelDefinitionError,
    ReproError,
    SolverError,
    StateSpaceError,
)


class TestCheckers:
    def test_probability_accepts_bounds(self):
        assert check_probability(0.0) == 0.0
        assert check_probability(1.0) == 1.0
        assert check_probability(0.5) == 0.5

    @pytest.mark.parametrize("bad", [-0.01, 1.01, float("nan")])
    def test_probability_rejects(self, bad):
        with pytest.raises(ModelDefinitionError):
            check_probability(bad)

    def test_positive(self):
        assert check_positive(2.5) == 2.5
        for bad in (0.0, -1.0, float("inf"), float("nan")):
            with pytest.raises(DistributionError):
                check_positive(bad)

    def test_non_negative(self):
        assert check_non_negative(0.0) == 0.0
        with pytest.raises(DistributionError):
            check_non_negative(-1e-9)

    def test_rate_alias(self):
        assert check_rate(3.0) == 3.0
        with pytest.raises(DistributionError):
            check_rate(0.0)

    def test_time(self):
        assert check_time(0.0) == 0.0
        with pytest.raises(DistributionError):
            check_time(-1.0)

    def test_times_array(self):
        out = check_times([0.0, 1.0, 2.0])
        np.testing.assert_array_equal(out, [0.0, 1.0, 2.0])

    def test_times_rejects_negative(self):
        with pytest.raises(ModelDefinitionError):
            check_times([1.0, -1.0])

    def test_times_rejects_2d(self):
        with pytest.raises(ModelDefinitionError):
            check_times(np.zeros((2, 2)))

    def test_as_time_array_scalar(self):
        arr, scalar = as_time_array(1.5)
        assert scalar
        np.testing.assert_array_equal(arr, [1.5])

    def test_as_time_array_sequence(self):
        arr, scalar = as_time_array([1.0, 2.0])
        assert not scalar
        assert arr.shape == (2,)

    def test_unique_names(self):
        check_unique_names(["a", "b", "c"])
        with pytest.raises(ModelDefinitionError):
            check_unique_names(["a", "a"])


class TestExceptionHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            ModelDefinitionError,
            SolverError,
            ConvergenceError,
            StateSpaceError,
            DistributionError,
            HierarchyError,
        ],
    )
    def test_all_derive_from_base(self, exc):
        assert issubclass(exc, ReproError)

    def test_convergence_error_carries_diagnostics(self):
        err = ConvergenceError("no", iterations=7, residual=0.5)
        assert err.iterations == 7
        assert err.residual == 0.5

    def test_convergence_is_solver_error(self):
        assert issubclass(ConvergenceError, SolverError)

    def test_catchable_as_base(self):
        with pytest.raises(ReproError):
            raise StateSpaceError("boom")
