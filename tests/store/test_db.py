"""StoreDB — the single-writer sqlite serializer."""

import sqlite3
import threading

import pytest

from repro.exceptions import ModelDefinitionError, SolverError
from repro.store.db import SCHEMA_VERSION, StoreDB


class TestSerializer:
    def test_run_executes_on_the_serializer_thread(self):
        with StoreDB(":memory:") as db:
            main = threading.current_thread()
            ran_on = db.run(lambda conn: threading.current_thread())
            assert ran_on is not main
            assert ran_on.name.startswith("repro-store-")

    def test_jobs_are_serialized_in_order(self):
        with StoreDB(":memory:") as db:
            db.run(lambda conn: conn.execute("CREATE TABLE t (v INTEGER)"))
            for v in range(20):
                db.submit(lambda conn, v=v: conn.execute("INSERT INTO t VALUES (?)", (v,)))
            rows = db.run(
                lambda conn: [r[0] for r in conn.execute("SELECT v FROM t ORDER BY rowid")]
            )
            assert rows == list(range(20))

    def test_closure_is_one_transaction_rollback_on_error(self, tmp_path):
        path = str(tmp_path / "t.sqlite")
        with StoreDB(path) as db:
            db.run(lambda conn: conn.execute("CREATE TABLE t (v INTEGER)"))

            def half_write(conn):
                conn.execute("INSERT INTO t VALUES (1)")
                raise RuntimeError("mid-transaction death")

            with pytest.raises(RuntimeError):
                db.run(half_write)
            count = db.run(lambda conn: conn.execute("SELECT COUNT(*) FROM t").fetchone()[0])
            assert count == 0  # the partial insert rolled back

    def test_exceptions_propagate_to_the_caller(self):
        with StoreDB(":memory:") as db:
            with pytest.raises(sqlite3.OperationalError):
                db.run(lambda conn: conn.execute("SELECT * FROM missing_table"))
            # the serializer survives a failed job
            assert db.run(lambda conn: conn.execute("SELECT 1").fetchone()[0]) == 1

    def test_concurrent_submitters(self):
        with StoreDB(":memory:") as db:
            db.run(lambda conn: conn.execute("CREATE TABLE t (v INTEGER)"))

            def writer(lo):
                for v in range(lo, lo + 25):
                    db.run(lambda conn, v=v: conn.execute("INSERT INTO t VALUES (?)", (v,)))

            threads = [threading.Thread(target=writer, args=(k * 25,)) for k in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            count = db.run(lambda conn: conn.execute("SELECT COUNT(*) FROM t").fetchone()[0])
            assert count == 100


class TestLifecycle:
    def test_close_is_idempotent_and_blocks_submit(self):
        db = StoreDB(":memory:")
        db.close()
        db.close()
        assert db.closed
        with pytest.raises(SolverError, match="closed"):
            db.run(lambda conn: None)

    def test_invalid_timeout(self):
        with pytest.raises(ModelDefinitionError, match="timeout"):
            StoreDB(":memory:", timeout=0.0)

    def test_boot_error_propagates_to_constructor(self, tmp_path):
        target = tmp_path / "no" / "such" / "dir" / "s.sqlite"
        with pytest.raises(sqlite3.OperationalError):
            StoreDB(str(target))


class TestSchema:
    def test_schema_version_row_is_written(self, tmp_path):
        path = str(tmp_path / "s.sqlite")
        with StoreDB(path) as db:
            row = db.run(
                lambda conn: conn.execute(
                    "SELECT value FROM meta WHERE key = 'schema_version'"
                ).fetchone()
            )
            assert int(row[0]) == SCHEMA_VERSION

    def test_refuses_foreign_schema_version(self, tmp_path):
        path = str(tmp_path / "s.sqlite")
        with StoreDB(path) as db:
            db.run(
                lambda conn: conn.execute(
                    "UPDATE meta SET value = '999' WHERE key = 'schema_version'"
                )
            )
        with pytest.raises(SolverError, match="schema version 999"):
            StoreDB(path)

    def test_reopen_existing_file_keeps_data(self, tmp_path):
        path = str(tmp_path / "s.sqlite")
        with StoreDB(path) as db:
            db.run(
                lambda conn: conn.execute(
                    "INSERT INTO results (model, point_key, status, value, created_at) "
                    "VALUES ('m', '[]', 'ok', 1.5, 0.0)"
                )
            )
        with StoreDB(path) as db:
            value = db.run(
                lambda conn: conn.execute("SELECT value FROM results").fetchone()[0]
            )
            assert value == 1.5

    def test_wal_mode_is_active_on_file_stores(self, tmp_path):
        path = str(tmp_path / "s.sqlite")
        with StoreDB(path) as db:
            mode = db.run(
                lambda conn: conn.execute("PRAGMA journal_mode").fetchone()[0]
            )
            assert mode == "wal"
