"""ResumableCampaign, resume_campaign, run_campaign(store=...), StoreBackedCache."""

import numpy as np
import pytest

from repro.engine import EngineOptions, GridCampaign, PointsCampaign, run_campaign
from repro.exceptions import ModelDefinitionError
from repro.robust import FaultPolicy
from repro.store import (
    CampaignStore,
    ResumableCampaign,
    StoreBackedCache,
    campaign_id_for,
    resume_campaign,
)


def square(p):
    return p["x"] ** 2


POINTS = [{"x": float(x)} for x in range(10)]


@pytest.fixture()
def store():
    with CampaignStore(":memory:") as s:
        yield s


class TestFreshRun:
    def test_outputs_match_direct_evaluation(self, store):
        result = ResumableCampaign(square, POINTS, store, model="sq", chunk_size=3).run()
        assert result.outputs.tolist() == [square(p) for p in POINTS]
        assert not result.errors

    def test_grid_spec_matches_plain_run_campaign(self, store):
        spec = GridCampaign({"x": [0.0, 1.0, 2.0], "y": [5.0, 6.0]})
        plain = run_campaign(lambda p: p["x"] + p["y"], spec)
        durable = ResumableCampaign(
            lambda p: p["x"] + p["y"], spec, store, model="add", chunk_size=2
        ).run()
        assert durable.outputs.tobytes() == plain.outputs.tobytes()

    def test_validation(self, store):
        with pytest.raises(ModelDefinitionError, match="chunk_size"):
            ResumableCampaign(square, POINTS, store, model="sq", chunk_size=0)
        with pytest.raises(ModelDefinitionError, match="lease_ttl"):
            ResumableCampaign(square, POINTS, store, model="sq", lease_ttl=0.0)
        with pytest.raises(ModelDefinitionError, match="neither"):
            ResumableCampaign(None, POINTS, store)

    def test_campaign_id_is_deterministic(self, store):
        c1 = ResumableCampaign(square, POINTS, store, model="sq", chunk_size=3)
        c1.run()
        expected = campaign_id_for(
            "sq", [k for k in store.campaign_points(c1.campaign_id)], chunk_size=3
        )
        assert c1.campaign_id == expected


class TestResume:
    def test_interrupted_run_resumes_where_it_stopped(self, store):
        calls = {"n": 0}

        def counted(p):
            calls["n"] += 1
            return square(p)

        first = ResumableCampaign(counted, POINTS, store, model="sq", chunk_size=3)
        partial = first.run(max_chunks=2, wait=False)
        assert calls["n"] == 6
        assert not first.complete
        assert np.isnan(partial.outputs).sum() == 4  # unclaimed tail

        second = ResumableCampaign(counted, POINTS, store, model="sq", chunk_size=3)
        result = second.run()
        assert second.complete
        assert calls["n"] == 10  # only the remaining 4 points were evaluated
        assert second.evaluated_points == 4
        assert second.skipped_points == 6
        serial = np.array([square(p) for p in POINTS])
        assert result.outputs.tobytes() == serial.tobytes()

    def test_should_stop_finishes_cleanly_between_chunks(self, store):
        stops = iter([False, True])
        campaign = ResumableCampaign(square, POINTS, store, model="sq", chunk_size=3)
        campaign.run(should_stop=lambda: next(stops))
        assert campaign.committed_chunks == 1
        assert not campaign.complete

    def test_resume_campaign_needs_only_the_store(self, store):
        """A fresh host resumes from the durable record alone: the
        evaluator is resolved from the stored model name."""
        declared = ResumableCampaign(
            None,
            POINTS,
            store,
            model="tests.store.crash_model:evaluate",
            chunk_size=4,
        )
        declared.run(max_chunks=1, wait=False)
        result = resume_campaign(store, declared.campaign_id)
        from tests.store.crash_model import evaluate

        assert result.outputs.tolist() == [evaluate(p) for p in POINTS]
        assert result.campaign.complete
        assert result.campaign.evaluated_points == 6

    def test_resume_campaign_unknown_id(self, store):
        from repro.exceptions import SolverError

        with pytest.raises(SolverError, match="unknown campaign"):
            resume_campaign(store, "nope")


class TestFailureRedispatch:
    def test_stored_failures_are_retried_and_overwritten(self, store):
        attempt = {"broken": True}

        def flaky(p):
            if attempt["broken"] and p["x"] >= 6.0:
                raise ValueError("transient outage")
            return square(p)

        policy = FaultPolicy(on_error="skip")
        first = ResumableCampaign(
            flaky, POINTS, store, model="sq", chunk_size=3,
            options=EngineOptions(policy=policy),
        )
        r1 = first.run()
        assert first.complete
        assert len(r1.errors) == 4  # x = 6..9 failed but the campaign drained
        assert len(store.failures("sq")) == 4

        attempt["broken"] = False  # the outage ends
        second = ResumableCampaign(
            flaky, POINTS, store, model="sq", chunk_size=3,
            options=EngineOptions(policy=policy),
        )
        r2 = second.run()
        assert not r2.errors
        assert store.failures("sq") == []
        # only the reopened chunks re-ran: points 0..5 were never touched
        assert second.evaluated_points == 4
        serial = np.array([square(p) for p in POINTS])
        assert r2.outputs.tobytes() == serial.tobytes()

    def test_retry_failures_false_leaves_errors_in_place(self, store):
        def broken(p):
            raise ValueError("down")

        policy = FaultPolicy(on_error="skip")
        ResumableCampaign(
            broken, POINTS[:4], store, model="sq", chunk_size=2,
            options=EngineOptions(policy=policy),
        ).run()
        campaign = ResumableCampaign(
            square, POINTS[:4], store, model="sq", chunk_size=2, retry_failures=False
        )
        result = campaign.run()
        assert campaign.evaluated_points == 0
        assert len(result.errors) == 4


class TestRunCampaignRouting:
    def test_store_path_is_bit_identical_to_in_memory(self, tmp_path):
        spec = GridCampaign({"x": [float(x) for x in range(8)]})
        plain = run_campaign(square, spec)
        path = str(tmp_path / "c.sqlite")
        durable = run_campaign(square, spec, store=path, chunk_size=3)
        assert durable.outputs.tobytes() == plain.outputs.tobytes()
        assert durable.stats.executor == "store"
        # warm rerun: everything served from the store file
        warm = run_campaign(square, spec, store=path, chunk_size=3)
        assert warm.outputs.tobytes() == plain.outputs.tobytes()
        assert warm.stats.cache_hits == 8
        assert warm.stats.cache_misses == 0

    def test_open_store_instance_is_not_closed(self, store):
        spec = PointsCampaign(POINTS[:4])
        run_campaign(square, spec, store=store, chunk_size=2)
        assert store.counts()["ok"] == 4  # still open and queryable

    def test_resume_false_records_but_reevaluates(self, store):
        calls = {"n": 0}

        def counted(p):
            calls["n"] += 1
            return square(p)

        counted.__store_name__ = "sq"
        spec = PointsCampaign(POINTS[:4])
        run_campaign(counted, spec, store=store)
        assert calls["n"] == 4
        rerun = run_campaign(counted, spec, store=store, resume=False)
        assert calls["n"] == 8  # evaluated fresh despite stored rows
        assert store.counts("sq")["ok"] == 4
        assert rerun.outputs.tolist() == [square(p) for p in POINTS[:4]]

    def test_store_must_be_path_or_campaign_store(self):
        from repro.exceptions import ModelDefinitionError

        spec = PointsCampaign(POINTS[:2])
        with pytest.raises(ModelDefinitionError, match="path or a repro.store"):
            run_campaign(square, spec, store=123)

    def test_store_accepts_pathlike(self, tmp_path):
        spec = PointsCampaign(POINTS[:2])
        result = run_campaign(square, spec, store=tmp_path / "p.sqlite")
        assert result.outputs.tolist() == [square(p) for p in POINTS[:2]]


class TestStoreBackedCache:
    def test_survives_the_memory_tier(self, store):
        calls = {"n": 0}

        def counted(p):
            calls["n"] += 1
            return square(p)

        cache = StoreBackedCache(store, model="sq")
        wrapped = cache.wrap(counted)
        assert wrapped({"x": 3.0}) == 9.0
        cache.clear()  # simulate a process restart: memory tier gone
        assert wrapped({"x": 3.0}) == 9.0
        assert calls["n"] == 1
        assert cache.store_hits == 1

    def test_stored_failure_reads_as_a_miss(self, store):
        from repro.robust import ErrorRecord

        store.record_failure(
            "sq",
            {"x": 3.0},
            ErrorRecord(index=0, error_type="ValueError", message="x", attempts=1),
        )
        cache = StoreBackedCache(store, model="sq")
        assert {"x": 3.0} not in cache
        wrapped = cache.wrap(square)
        assert wrapped({"x": 3.0}) == 9.0  # re-evaluated...
        assert store.lookup("sq", {"x": 3.0}).ok  # ...and healed durably

    def test_read_only_mode_never_writes(self, store):
        cache = StoreBackedCache(store, model="sq", write_through=False)
        cache.wrap(square)({"x": 2.0})
        assert store.lookup("sq", {"x": 2.0}) is None

    def test_warm_preloads_memory(self, store):
        for p in POINTS[:5]:
            store.record_success("sq", p, square(p))
        cache = StoreBackedCache(store, model="sq")
        assert cache.warm() == 5
        assert len(cache) == 5
        assert cache.warm(limit=2) == 2

    def test_engine_integration(self, store):
        cache = StoreBackedCache(store, model="sq")
        spec = PointsCampaign(POINTS[:6])
        run_campaign(square, spec, cache=cache)
        assert store.counts("sq")["ok"] == 6
        fresh = StoreBackedCache(store, model="sq")
        rerun = run_campaign(square, spec, cache=fresh)
        assert fresh.store_hits == 6
        assert rerun.stats.cache_hits == 6


class TestPointsCampaign:
    def test_round_trip(self):
        spec = PointsCampaign(POINTS[:3])
        assert spec.assignments() == POINTS[:3]
        assert len(spec.assignments()) == 3

    def test_rejects_empty(self):
        with pytest.raises(ModelDefinitionError):
            PointsCampaign([])
