"""End-to-end crash recovery: SIGKILL a real worker subprocess mid-campaign,
resume, and require bit-identity with an uninterrupted serial run.

This is the acceptance harness for the durability story: the worker dies
hard (``kill -9`` semantics — no atexit, no flush), so anything it had
not committed is genuinely gone.  The chunk checkpoint contract says the
blast radius is at most the chunk in flight, and a resumed worker
re-evaluates only that.
"""

import os
import signal
import subprocess
import sys

import numpy as np
import pytest

from repro.store import CampaignStore, ResumableCampaign, campaign_id_for, encode_point_key
from tests.store.crash_model import evaluate

POINTS = [{"x": 0.25 * k} for k in range(20)]
CHUNK = 4
MODEL = "tests.store.crash_model:evaluate"


def worker_env():
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    root = os.path.join(os.path.dirname(__file__), "..", "..")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [os.path.abspath(src), os.path.abspath(root), env.get("PYTHONPATH", "")]
    )
    return env


def worker_cmd(path, *extra):
    return [
        sys.executable, "-u", "-m", "repro.store", "resume",
        "--store", path, "--worker-id", "w-test", "--quiet", *extra,
    ]


@pytest.fixture()
def declared(tmp_path):
    path = str(tmp_path / "crash.sqlite")
    campaign_id = campaign_id_for(
        MODEL, [encode_point_key(p) for p in POINTS], chunk_size=CHUNK
    )
    with CampaignStore(path) as store:
        store.create_campaign(campaign_id, MODEL, POINTS, chunk_size=CHUNK)
    return path, campaign_id


class TestSigkillRecovery:
    def test_kill_resume_bit_identity(self, declared):
        path, campaign_id = declared
        baseline = np.asarray([evaluate(p) for p in POINTS], dtype=float)

        # the worker SIGKILLs itself on its 10th evaluation: mid-chunk,
        # with two committed chunks behind it
        proc = subprocess.run(
            worker_cmd(path, "--kill-after", "10"),
            env=worker_env(), capture_output=True, timeout=120,
        )
        assert proc.returncode == -signal.SIGKILL

        with CampaignStore(path) as store:
            mid = store.counts(MODEL)["ok"]
        assert 0 < mid < len(POINTS), "the kill lost work but not everything"
        assert mid % CHUNK == 0, "partial chunks never reach the store"
        assert mid == 8, "exactly the two committed chunks survived"

        proc = subprocess.run(
            worker_cmd(path), env=worker_env(), capture_output=True, timeout=120
        )
        assert proc.returncode == 0, proc.stderr.decode()

        # in-process verification pass: everything is served durably and
        # the assembled array is byte-identical to the uninterrupted run
        with CampaignStore(path) as store:
            verify = ResumableCampaign(
                evaluate, POINTS, store, model=MODEL, chunk_size=CHUNK
            )
            outputs = verify.run().outputs
            assert verify.evaluated_points == 0
        assert outputs.tobytes() == baseline.tobytes()

    def test_resume_reevaluates_at_most_one_chunk_boundary(self, declared):
        """The kill loses at most the in-flight chunk: the resume's work
        is exactly total - committed, where committed is chunk-aligned."""
        path, _ = declared
        # short lease: the dead worker's in-flight chunk becomes claimable
        # quickly for the differently-named verifier below
        subprocess.run(
            worker_cmd(path, "--kill-after", "10", "--ttl", "2"),
            env=worker_env(), capture_output=True, timeout=120,
        )
        with CampaignStore(path) as store:
            committed = store.counts(MODEL)["ok"]
            resumed = ResumableCampaign(
                evaluate, POINTS, store, model=MODEL, chunk_size=CHUNK,
                worker_id="w-verify",
            )
            resumed.run()
        lost = 10 - committed  # evaluations the killed worker had made but not committed
        assert 0 <= lost < CHUNK + 1
        assert resumed.evaluated_points == len(POINTS) - committed
        assert resumed.skipped_points == committed


class TestSigtermGracefulDrain:
    def test_first_sigterm_commits_and_exits_zero(self, declared):
        """Satellite: a campaign worker traps SIGTERM, finishes the chunk
        in flight, commits it, and exits 0."""
        path, _ = declared
        proc = subprocess.Popen(
            worker_cmd(path, "--throttle", "0.2"),
            env=worker_env(), stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        )
        try:
            # let it claim and start the first chunk, then ask it to stop
            import time

            time.sleep(1.0)
            proc.send_signal(signal.SIGTERM)
            rc = proc.wait(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
        assert rc == 0, proc.stderr.read().decode()

        with CampaignStore(path) as store:
            done = store.counts(MODEL)["ok"]
        assert done % CHUNK == 0, "the drain committed whole chunks only"
        assert 0 < done < len(POINTS), "it stopped early but not empty-handed"
