"""Lease semantics: claims, expiry reclamation, heartbeats, racing workers.

The clock is injected (``CampaignStore(now=...)``) so lease expiry is
tested deterministically, without sleeping.
"""

import pytest

from repro.store import CampaignStore, ResumableCampaign


class Clock:
    def __init__(self, t=0.0):
        self.t = float(t)

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


@pytest.fixture()
def clock():
    return Clock()


@pytest.fixture()
def store(clock):
    with CampaignStore(":memory:", now=clock) as s:
        s.create_campaign("c1", "m", [{"x": float(x)} for x in range(6)], chunk_size=2)
        yield s


class TestClaims:
    def test_claims_are_exclusive_until_expiry(self, store):
        assert store.claim_chunk("c1", "w1", ttl=60.0) == 0
        assert store.claim_chunk("c1", "w2", ttl=60.0) == 1
        assert store.claim_chunk("c1", "w3", ttl=60.0) == 2
        # everything leased and live: nothing claimable for a newcomer
        assert store.claim_chunk("c1", "w4", ttl=60.0) is None

    def test_claim_is_reentrant_for_the_holder(self, store):
        assert store.claim_chunk("c1", "w1", ttl=60.0) == 0
        # the same worker asking again gets its own chunk back
        assert store.claim_chunk("c1", "w1", ttl=60.0) == 0

    def test_expired_lease_is_reclaimed(self, store, clock):
        assert store.claim_chunk("c1", "w1", ttl=30.0) == 0
        clock.advance(10.0)
        assert store.claim_chunk("c1", "w2", ttl=60.0) == 1  # 0 still live
        clock.advance(25.0)  # w1's lease expired at t=30, w2's lives to t=70
        assert store.claim_chunk("c1", "w3", ttl=60.0) == 0  # reclaimed from w1
        states = {s["chunk_id"]: s for s in store.chunk_states("c1")}
        assert states[0]["worker_id"] == "w3"

    def test_completed_chunks_are_never_claimable(self, store):
        chunk = store.claim_chunk("c1", "w1", ttl=60.0)
        store.record_chunk("c1", chunk, "m", [], worker_id="w1")
        assert store.claim_chunk("c1", "w2", ttl=60.0) == 1
        states = {s["chunk_id"]: s for s in store.chunk_states("c1")}
        assert states[0]["completed"] is True


class TestHeartbeat:
    def test_heartbeat_extends_the_lease(self, store, clock):
        store.claim_chunk("c1", "w1", ttl=30.0)
        clock.advance(20.0)
        assert store.heartbeat("c1", 0, "w1", ttl=30.0) is True  # now expires at t=50
        clock.advance(15.0)  # t=35: past the original expiry, inside the extension
        assert store.claim_chunk("c1", "w2", ttl=60.0) == 1  # chunk 0 still owned
        clock.advance(20.0)  # t=55: extension lapsed too
        assert store.claim_chunk("c1", "w3", ttl=60.0) == 0

    def test_heartbeat_reports_a_lost_lease(self, store, clock):
        store.claim_chunk("c1", "w1", ttl=10.0)
        clock.advance(20.0)
        store.claim_chunk("c1", "w2", ttl=60.0)  # w2 reclaims chunk 0
        assert store.heartbeat("c1", 0, "w1", ttl=10.0) is False
        assert store.heartbeat("c1", 0, "w2", ttl=60.0) is True

    def test_release_gives_the_chunk_back(self, store):
        store.claim_chunk("c1", "w1", ttl=60.0)
        assert store.release_chunk("c1", 0, "w1") is True
        assert store.release_chunk("c1", 0, "w1") is False  # already released
        assert store.claim_chunk("c1", "w2", ttl=60.0) == 0


class TestRacingWorkers:
    def test_race_loser_gets_a_fresh_claim_and_no_double_commit(self, store, clock):
        """Two workers end up on one chunk (expiry race); the loser's
        commit writes zero duplicate rows."""
        assert store.claim_chunk("c1", "w1", ttl=10.0) == 0
        clock.advance(20.0)  # w1 looks dead
        assert store.claim_chunk("c1", "w2", ttl=60.0) == 0  # w2 reclaims
        # ... but w1 was only slow, and both now evaluate chunk 0
        rows = [({"x": 0.0}, 10.0, None, 0.0, 1), ({"x": 1.0}, 11.0, None, 0.0, 1)]
        written_w2, dup_w2 = store.record_chunk("c1", 0, "m", rows, worker_id="w2")
        written_w1, dup_w1 = store.record_chunk("c1", 0, "m", rows, worker_id="w1")
        assert (written_w2, dup_w2) == (2, 0)
        assert (written_w1, dup_w1) == (0, 2)  # first writer won; no double commit
        # stored values are w2's (identical values either way — but provenance shows it)
        assert store.lookup("m", {"x": 0.0}).worker_id == "w2"
        # the loser moves on to a fresh claim
        assert store.claim_chunk("c1", "w1", ttl=60.0) == 1

    def test_two_workers_drain_disjoint_chunks(self, store):
        seen = {"w1": [], "w2": []}
        while True:
            c1 = store.claim_chunk("c1", "w1", ttl=60.0)
            if c1 is not None:
                seen["w1"].append(c1)
                store.record_chunk("c1", c1, "m", [], worker_id="w1")
            c2 = store.claim_chunk("c1", "w2", ttl=60.0)
            if c2 is not None:
                seen["w2"].append(c2)
                store.record_chunk("c1", c2, "m", [], worker_id="w2")
            if c1 is None and c2 is None:
                break
        assert sorted(seen["w1"] + seen["w2"]) == [0, 1, 2]
        assert not (set(seen["w1"]) & set(seen["w2"]))


class TestResumeNeverReevaluates:
    def test_stored_successes_are_not_reevaluated(self):
        """A resumed run's evaluation-call counter stays at zero."""
        calls = {"n": 0}

        def evaluate(p):
            calls["n"] += 1
            return p["x"] * 2

        points = [{"x": float(x)} for x in range(10)]
        with CampaignStore(":memory:") as store:
            first = ResumableCampaign(evaluate, points, store, model="m", chunk_size=3)
            first.run()
            assert calls["n"] == 10
            second = ResumableCampaign(evaluate, points, store, model="m", chunk_size=3)
            result = second.run()
            assert calls["n"] == 10  # not a single re-evaluation
            assert second.evaluated_points == 0
            assert second.skipped_points == 10
            assert result.outputs.tolist() == [x * 2.0 for x in range(10)]
