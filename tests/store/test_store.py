"""CampaignStore — durable result semantics and campaign bookkeeping."""

import math

import pytest

from repro.exceptions import ModelDefinitionError, SolverError
from repro.robust import ErrorRecord
from repro.store import (
    CampaignStore,
    decode_point_key,
    encode_point_key,
)


@pytest.fixture()
def store():
    with CampaignStore(":memory:") as s:
        yield s


def error(message="boom", attempts=2):
    return ErrorRecord(
        index=0, error_type="ValueError", message=message, attempts=attempts, duration=0.25
    )


class TestPointKeys:
    def test_round_trip_is_exact(self):
        point = {"a": 0.1, "b": 1e-300, "c": 3.141592653589793, "d": -7.0}
        key = encode_point_key(point)
        assert decode_point_key(key) == tuple(sorted((k, float(v)) for k, v in point.items()))

    def test_insertion_order_is_canonicalized(self):
        assert encode_point_key({"b": 2, "a": 1}) == encode_point_key({"a": 1.0, "b": 2.0})

    def test_accepts_frozen_keys(self):
        key = (("a", 1.0), ("b", 2.0))
        assert encode_point_key(key) == encode_point_key({"a": 1, "b": 2})

    def test_negative_zero_collapses(self):
        assert encode_point_key({"x": -0.0}) == encode_point_key({"x": 0.0})


class TestResultSemantics:
    def test_success_round_trip(self, store):
        assert store.record_success("m", {"x": 1.0}, 0.75, worker_id="w1") is True
        result = store.lookup("m", {"x": 1.0})
        assert result.ok and result.value == 0.75 and result.worker_id == "w1"

    def test_first_success_wins(self, store):
        store.record_success("m", {"x": 1.0}, 0.5)
        assert store.record_success("m", {"x": 1.0}, 0.9) is False
        assert store.lookup("m", {"x": 1.0}).value == 0.5

    def test_failure_never_clobbers_success(self, store):
        store.record_success("m", {"x": 1.0}, 0.5)
        assert store.record_failure("m", {"x": 1.0}, error()) is False
        assert store.lookup("m", {"x": 1.0}).ok

    def test_success_overwrites_failure(self, store):
        store.record_failure("m", {"x": 1.0}, error())
        assert store.record_success("m", {"x": 1.0}, 0.5) is True
        assert store.lookup("m", {"x": 1.0}).value == 0.5

    def test_failure_carries_the_error_record(self, store):
        store.record_failure("m", {"x": 2.0}, error("kaput", attempts=3))
        stored = store.lookup("m", {"x": 2.0})
        assert not stored.ok
        assert math.isnan(stored.value)
        record = stored.to_error_record(index=7)
        assert record.index == 7
        assert record.error_type == "ValueError"
        assert record.message == "kaput"
        assert record.attempts == 3

    def test_to_error_record_refuses_success(self, store):
        store.record_success("m", {"x": 1.0}, 0.5)
        with pytest.raises(ModelDefinitionError):
            store.lookup("m", {"x": 1.0}).to_error_record()

    def test_seed_partitions_results(self, store):
        store.record_success("m", {"x": 1.0}, 0.1, seed="a")
        store.record_success("m", {"x": 1.0}, 0.2, seed="b")
        assert store.lookup("m", {"x": 1.0}, seed="a").value == 0.1
        assert store.lookup("m", {"x": 1.0}, seed="b").value == 0.2
        assert store.lookup("m", {"x": 1.0}) is None

    def test_lookup_many(self, store):
        points = [{"x": float(x)} for x in range(5)]
        for p in points[:3]:
            store.record_success("m", p, p["x"] * 2)
        found = store.lookup_many("m", points)
        assert len(found) == 3
        assert found[encode_point_key(points[0])].value == 0.0

    def test_record_many_counts(self, store):
        rows = [({"x": 1.0}, 1.0, None, 0.0, 1), ({"x": 2.0}, 2.0, None, 0.0, 1)]
        assert store.record_many("m", rows) == (2, 0)
        assert store.record_many("m", rows) == (0, 2)  # all duplicates

    def test_counts_failures_and_clear(self, store):
        store.record_success("m", {"x": 1.0}, 1.0)
        store.record_failure("m", {"x": 2.0}, error())
        store.record_failure("other", {"x": 3.0}, error())
        assert store.counts("m") == {"ok": 1, "error": 1}
        assert store.counts() == {"ok": 1, "error": 2}
        assert len(store.failures("m")) == 1
        assert store.clear_failures("m") == 1
        assert store.counts("m") == {"ok": 1, "error": 0}
        assert store.clear_failures() == 1  # the 'other' failure

    def test_export_json(self, store):
        store.record_success("m", {"x": 1.0}, 0.5)
        store.record_failure("m", {"x": 2.0}, error())
        rows = store.export_json("m")
        assert len(rows) == 2
        by_status = {row["status"]: row for row in rows}
        assert by_status["ok"]["point"] == {"x": 1.0}
        assert by_status["ok"]["value"] == 0.5
        assert by_status["error"]["error_type"] == "ValueError"


class TestCampaigns:
    def test_create_is_idempotent(self, store):
        points = [{"x": float(x)} for x in range(5)]
        n1 = store.create_campaign("c1", "m", points, chunk_size=2)
        n2 = store.create_campaign("c1", "m", points, chunk_size=2)
        assert n1 == n2 == 3
        assert store.campaign_ids() == ["c1"]

    def test_create_refuses_shape_change(self, store):
        points = [{"x": float(x)} for x in range(5)]
        store.create_campaign("c1", "m", points, chunk_size=2)
        with pytest.raises(SolverError, match="refusing to redeclare"):
            store.create_campaign("c1", "m", points, chunk_size=3)
        with pytest.raises(SolverError, match="refusing to redeclare"):
            store.create_campaign("c1", "other", points, chunk_size=2)

    def test_campaign_header_and_points(self, store):
        points = [{"x": float(x)} for x in range(3)]
        store.create_campaign("c1", "m", points, chunk_size=2, seed="s")
        header = store.campaign("c1")
        assert header["model"] == "m"
        assert header["seed"] == "s"
        assert header["n_points"] == 3
        keys = store.campaign_points("c1")
        assert [dict(decode_point_key(k)) for k in keys] == points

    def test_unknown_campaign_raises(self, store):
        with pytest.raises(SolverError, match="unknown campaign"):
            store.campaign("nope")
        with pytest.raises(SolverError, match="unknown campaign"):
            store.campaign_points("nope")

    def test_validation(self, store):
        with pytest.raises(ModelDefinitionError):
            store.create_campaign("c1", "m", [], chunk_size=2)
        with pytest.raises(ModelDefinitionError):
            store.create_campaign("c1", "m", [{"x": 1.0}], chunk_size=0)

    def test_status_snapshot(self, store):
        points = [{"x": float(x)} for x in range(4)]
        store.create_campaign("c1", "m", points, chunk_size=2)
        store.record_success("m", points[0], 1.0)
        snap = store.status()
        assert snap["models"]["m"]["ok"] == 1
        (campaign,) = snap["campaigns"]
        assert campaign["chunks"] == 2
        assert campaign["chunks_completed"] == 0
        assert campaign["points_ok"] == 1
