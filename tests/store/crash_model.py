"""A tiny module-importable evaluator for crash-recovery subprocess tests.

The worker subprocess resolves its evaluator from the stored model name
(``tests.store.crash_model:evaluate``), so this must live in a real
module, importable from the repository root.
"""


def evaluate(assignment):
    x = float(assignment["x"])
    return 1.0 / (1.0 + x * x)
