"""``python -m repro.store`` — the operational verbs, exercised in-process."""

import json

import pytest

from repro.store import CampaignStore, ResumableCampaign
from repro.store.__main__ import main
from tests.store.crash_model import evaluate

POINTS = [{"x": float(x)} for x in range(8)]


@pytest.fixture()
def store_path(tmp_path):
    """A store file with one half-drained campaign and one stray failure."""
    from repro.robust import ErrorRecord

    path = str(tmp_path / "cli.sqlite")
    with CampaignStore(path) as store:
        campaign = ResumableCampaign(
            evaluate, POINTS, store, model="tests.store.crash_model:evaluate",
            chunk_size=2,
        )
        campaign.run(max_chunks=2, wait=False)
        store.record_failure(
            "other",
            {"x": 99.0},
            ErrorRecord(index=0, error_type="ValueError", message="x", attempts=1),
        )
    return path


class TestStatus:
    def test_human_output(self, store_path, capsys):
        assert main(["status", "--store", store_path]) == 0
        out = capsys.readouterr().out
        assert "schema v1" in out
        assert "2/4 chunks" in out
        assert "4/8 points ok" in out

    def test_json_output(self, store_path, capsys):
        assert main(["status", "--store", store_path, "--json"]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        (campaign,) = snapshot["campaigns"]
        assert campaign["chunks_completed"] == 2
        assert snapshot["models"]["other"]["error"] == 1

    def test_missing_store_file(self, tmp_path, capsys):
        assert main(["status", "--store", str(tmp_path / "nope.sqlite")]) == 2
        assert "no store file" in capsys.readouterr().err


class TestResume:
    def test_drains_the_campaign(self, store_path, capsys):
        assert main(["resume", "--store", store_path, "--no-wait"]) == 0
        out = capsys.readouterr().out
        assert "complete" in out
        assert "4 evaluated" in out  # the remaining half; stored half untouched
        with CampaignStore(store_path) as store:
            assert store.counts("tests.store.crash_model:evaluate")["ok"] == 8

    def test_unknown_campaign(self, store_path, capsys):
        assert main(["resume", "--store", store_path, "--campaign", "bogus"]) == 2
        assert "unknown campaign" in capsys.readouterr().err


class TestRetryFailed:
    def test_drops_failures(self, store_path, capsys):
        assert main(["retry-failed", "--store", store_path, "--model", "other"]) == 0
        assert "dropped 1 stored failure" in capsys.readouterr().out
        with CampaignStore(store_path) as store:
            assert store.counts("other") == {"ok": 0, "error": 0}


class TestVacuumExport:
    def test_vacuum(self, store_path, capsys):
        assert main(["vacuum", "--store", store_path]) == 0
        assert "bytes" in capsys.readouterr().out

    def test_export(self, store_path, capsys):
        assert main(["export", "--store", store_path, "--model", "other"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert len(rows) == 1
        assert rows[0]["status"] == "error"
        assert rows[0]["value"] is None  # strict JSON: no NaN

    def test_export_compact_is_one_line(self, store_path, capsys):
        assert main(["export", "--store", store_path, "--compact"]) == 0
        assert len(capsys.readouterr().out.strip().splitlines()) == 1


class TestTopLevel:
    def test_no_verb_prints_help(self, capsys):
        assert main([]) == 2
        assert "resume" in capsys.readouterr().out
