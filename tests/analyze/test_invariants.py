"""repro.analyze.invariants — structural truth vs the built state space.

The load-bearing contract of the structural pass: every prediction is a
*certificate*.  The P-invariant state bound must dominate the measured
lazy-BFS state count on every case-study net the library ships, with
equality where the analysis claims exactness; the pre-flight must refuse
an over-budget net before expanding a single marking.
"""

import math
import time

import pytest

from repro.analyze.invariants import (
    Invariant,
    compute_p_invariants,
    compute_t_invariants,
    incidence_matrix,
    maximal_empty_siphon,
    minimal_siphons,
    minimal_traps,
    place_bounds,
    state_space_bound,
    structural_analysis,
    unboundedness_certificates,
)
from repro.exceptions import StateSpaceError
from repro.petrinet import PetriNet
from repro.petrinet.templates import (
    machine_repairman,
    queue_with_breakdowns,
    redundant_pool_with_coverage,
)
from repro.sparse import build_sparse_reachability


def mm1k(K=5, lam=2.0, mu=3.0):
    net = PetriNet()
    net.add_place("queue", 0)
    net.add_timed_transition("arrive", rate=lam)
    net.add_output_arc("arrive", "queue")
    net.add_inhibitor_arc("arrive", "queue", K)
    net.add_timed_transition("serve", rate=mu)
    net.add_input_arc("serve", "queue")
    return net


def nfv_net(n_vnfs=3, replicas=3):
    from repro.casestudies.nfvchain import NFVChainSpec, build_nfv_net

    return build_nfv_net(NFVChainSpec(n_vnfs=n_vnfs, replicas=replicas))


#: the same SRN case-study shapes tests/sparse pins for bit-identity
CASE_STUDIES = {
    "mm1k": mm1k,
    "machine_repairman": lambda: machine_repairman(4, 0.1, 1.0, n_crews=2),
    "coverage_pool": lambda: redundant_pool_with_coverage(3, 0.01, 0.5, 0.95, 0.2),
    "queue_breakdowns": lambda: queue_with_breakdowns(5, 1.0, 2.0, 0.01, 0.5),
    "nfvchain": nfv_net,
}

#: models where the P-invariant bound equals the measured count
EXACT_VALUE = {"mm1k", "machine_repairman", "queue_breakdowns", "nfvchain"}

#: (n_vnfs, replicas) zoo; predicted |states| = (replicas + 1) ** n_vnfs
NFV_ZOO = [(2, 2), (2, 3), (3, 3), (4, 4), (5, 6)]


class TestInvariantAlgebra:
    """Exact-integer invariants on hand-checkable nets."""

    def test_machine_repairman_conservation(self):
        net = machine_repairman(4, 0.1, 1.0, n_crews=2)
        invs = compute_p_invariants(net)
        assert len(invs) >= 1
        # every invariant annihilates the incidence matrix exactly
        C = incidence_matrix(net)
        for inv in invs:
            for j in range(len(C[0])):
                assert sum(inv.coefficients[i] * C[i][j] for i in range(len(C))) == 0
        # the machine-count law is among them, with the right total
        sums = {inv.token_sum for inv in invs}
        assert 4 in sums

    def test_t_invariants_are_cycles(self):
        net = machine_repairman(2, 0.1, 1.0)
        tinvs = compute_t_invariants(net)
        assert tinvs, "fail/repair loop must yield a T-invariant"
        C = incidence_matrix(net)
        for inv in tinvs:
            for i in range(len(C)):
                assert sum(C[i][j] * inv.coefficients[j] for j in range(len(C[0]))) == 0
            assert inv.token_sum is None
            assert inv.render().endswith("(cycle)")

    def test_invariant_coefficients_are_normalized(self):
        net = machine_repairman(3, 0.1, 1.0)
        for inv in compute_p_invariants(net):
            g = 0
            for c in inv.support_coefficients:
                assert c > 0
                g = math.gcd(g, c)
            assert g == 1

    def test_open_net_has_no_p_invariant(self):
        net = PetriNet()
        net.add_place("sink", 0)
        net.add_timed_transition("src", rate=1.0)
        net.add_output_arc("src", "sink")
        assert compute_p_invariants(net) == []
        certs = unboundedness_certificates(net)
        assert "sink" in certs

    def test_siphons_and_traps_on_fork_join(self):
        net = machine_repairman(2, 0.1, 1.0)
        siphons = minimal_siphons(net)
        traps = minimal_traps(net)
        assert siphons and traps
        assert maximal_empty_siphon(net) == frozenset()


@pytest.mark.parametrize("name", sorted(CASE_STUDIES))
class TestBoundDominance:
    """predicted >= measured on every shipped case study."""

    def test_bound_dominates_lazy_bfs_count(self, name):
        net = CASE_STUDIES[name]()
        analysis = structural_analysis(net)
        assert analysis.complete
        assert analysis.structurally_bounded
        assert analysis.state_bound is not None
        actual = len(build_sparse_reachability(net).tangible)
        assert analysis.state_bound >= actual
        if name in EXACT_VALUE:
            assert analysis.state_bound == actual

    def test_no_proven_dead_transitions_on_live_models(self, name):
        net = CASE_STUDIES[name]()
        analysis = structural_analysis(net)
        assert analysis.dead_transitions == {}
        assert analysis.conservation_violations == []

    def test_place_bounds_dominate_observed_tokens(self, name):
        net = CASE_STUDIES[name]()
        bounds, _sources = place_bounds(net)
        result = build_sparse_reachability(net)
        names = [p.name for p in net._places]
        observed = {n: 0 for n in names}
        for marking in result.tangible:
            for n in names:
                observed[n] = max(observed[n], marking[n])
        for n in names:
            assert bounds[n] is not None
            assert bounds[n] >= observed[n]


class TestExactness:
    def test_exact_flag_only_on_clean_nets(self):
        # machine repairman: pure P-invariant partition, no guards/inhibitors
        exact_net = machine_repairman(4, 0.1, 1.0, n_crews=2)
        bound, exact = state_space_bound(exact_net)
        assert (bound, exact) == (5, True)
        # mm1k needs an inhibitor bound: right value, not claimed exact
        bound, exact = state_space_bound(mm1k())
        assert bound == 6
        assert exact is False

    @pytest.mark.parametrize("n_vnfs,replicas", NFV_ZOO)
    def test_nfv_zoo_closed_form(self, n_vnfs, replicas):
        net = nfv_net(n_vnfs, replicas)
        analysis = structural_analysis(net)
        assert analysis.state_bound == (replicas + 1) ** n_vnfs
        assert analysis.state_bound_exact
        if analysis.state_bound <= 5_000:
            actual = len(build_sparse_reachability(net).tangible)
            assert analysis.state_bound == actual

    def test_analysis_is_fast(self):
        # the pre-flight promise: sizing costs ~nothing vs building
        for build in CASE_STUDIES.values():
            net = build()
            t0 = time.perf_counter()
            structural_analysis(net)
            assert time.perf_counter() - t0 < 0.1


class TestPreflight:
    def test_refuses_overbudget_net_with_certificate(self):
        # 10^7-state synthetic chain: (9+1)^7 markings, default budget 5e6
        net = nfv_net(n_vnfs=7, replicas=9)
        with pytest.raises(StateSpaceError) as exc:
            build_sparse_reachability(net)
        cert = exc.value.certificate
        assert cert is not None
        assert cert.state_bound == 10**7
        assert cert.state_bound_exact

    def test_refusal_happens_before_any_expansion(self):
        net = nfv_net(n_vnfs=7, replicas=9)
        fired = []
        original = net.enabled_transitions

        def spy(marking):
            fired.append(marking)
            return original(marking)

        net.enabled_transitions = spy
        t0 = time.perf_counter()
        with pytest.raises(StateSpaceError):
            build_sparse_reachability(net)
        assert time.perf_counter() - t0 < 0.1
        assert fired == []

    def test_explicit_budget_still_enforced(self):
        with pytest.raises(StateSpaceError) as exc:
            build_sparse_reachability(mm1k(K=50), max_markings=10)
        assert exc.value.certificate is not None

    def test_preflight_false_restores_bfs_guard(self):
        # opting out still trips the in-BFS max_markings guard
        with pytest.raises(StateSpaceError) as exc:
            build_sparse_reachability(mm1k(K=50), max_markings=10, preflight=False)
        assert exc.value.certificate is None

    def test_preflight_does_not_change_the_build(self):
        net = mm1k()
        on = build_sparse_reachability(net, preflight=True)
        off = build_sparse_reachability(net, preflight=False)
        q_on = on.chain.generator().tocsr()
        q_off = off.chain.generator().tocsr()
        q_on.sort_indices()
        q_off.sort_indices()
        assert q_on.indptr.tobytes() == q_off.indptr.tobytes()
        assert q_on.indices.tobytes() == q_off.indices.tobytes()
        assert q_on.data.tobytes() == q_off.data.tobytes()


class TestObservationProtocol:
    def test_to_dict_summary_render(self):
        analysis = structural_analysis(machine_repairman(4, 0.1, 1.0, n_crews=2))
        d = analysis.to_dict()
        assert d["structurally_bounded"] is True
        assert d["state_bound"] == 5
        assert d["state_bound_exact"] is True
        assert all(isinstance(v, float) for v in analysis.summary().values())
        text = analysis.render()
        assert "P-invariants" in text
        assert "5" in text

    def test_invariant_render_forms(self):
        inv = Invariant(
            kind="P",
            coefficients=(1, 2),
            names=("up", "down"),
            support_coefficients=(1, 2),
            token_sum=4,
        )
        assert inv.render() == "up + 2·down = 4"
