"""The strict validators and the analyzer share one defect scan.

``validate_generator`` delegates to ``generator_defects`` and
``CompiledCTMC.validate`` delegates to ``validate_terms`` — so the
raise-mode messages and the collect-mode diagnostics cannot drift.
These tests pin that contract: same defect, same message, same
exception type, same precedence order.
"""

import numpy as np
import pytest

from repro.analyze.compiled import validate_terms
from repro.analyze.markov import generator_defects
from repro.compile.ctmc import CompiledCTMC, Param
from repro.exceptions import DistributionError, ModelDefinitionError
from repro.markov.solvers import validate_generator

BAD_GENERATORS = [
    np.array([[-1.0, 0.5], [2.0, -2.0]]),            # M001 row sum
    np.array([[1.0, -1.0], [2.0, -2.0]]),            # M002 negative off-diag
    np.array([[np.nan, np.nan], [2.0, -2.0]]),       # M003 non-finite
    np.array([[-1.0, 1.0, 0.0], [2.0, -2.0, 0.0]]),  # M004 non-square
]


class TestGeneratorBitIdentity:
    @pytest.mark.parametrize("q", BAD_GENERATORS, ids=["M001", "M002", "M003", "M004"])
    def test_raise_message_equals_first_defect_message(self, q):
        _n, defects = generator_defects(q, 1e-8)
        assert defects
        with pytest.raises(ModelDefinitionError) as excinfo:
            validate_generator(q)
        assert str(excinfo.value) == defects[0].message

    def test_clean_generator_agrees(self):
        q = np.array([[-1e-3, 1e-3], [0.5, -0.5]])
        assert validate_generator(q) == 2
        n, defects = generator_defects(q, 1e-8)
        assert (n, defects) == (2, [])

    def test_tolerance_scaling_agrees(self):
        # row-sum deviation 1e-4 against entries of 1e9: inside the
        # relative tolerance for both the validator and the analyzer.
        q = np.array([[-1e9, 1e9 + 1e-4], [2.0, -2.0]])
        assert validate_generator(q) == 2
        assert generator_defects(q, 1e-8)[1] == []

    def test_negative_tolerance_still_rejected(self):
        with pytest.raises(ModelDefinitionError, match="tolerance must be >= 0"):
            validate_generator(np.eye(2), tol=-1.0)


class TestCompiledValidateBitIdentity:
    def _chain(self):
        return CompiledCTMC(
            ["up", "down"], [(0, 1, Param("lam")), (1, 0, Param("mu"))]
        )

    def test_missing_parameter_same_keyerror(self):
        chain = self._chain()
        with pytest.raises(KeyError) as via_method:
            chain.validate({"lam": 1.0})
        with pytest.raises(KeyError) as via_shared:
            validate_terms(chain._slot_terms, {"lam": 1.0})
        assert str(via_method.value) == str(via_shared.value)

    def test_bad_rate_same_distribution_error(self):
        chain = self._chain()
        values = {"lam": -1.0, "mu": 2.0}
        with pytest.raises(DistributionError) as via_method:
            chain.validate(values)
        with pytest.raises(DistributionError) as via_shared:
            validate_terms(chain._slot_terms, values)
        assert str(via_method.value) == str(via_shared.value)

    def test_clean_values_pass_both(self):
        chain = self._chain()
        values = {"lam": 1e-3, "mu": 0.5}
        chain.validate(values)
        validate_terms(chain._slot_terms, values)
