"""The ``diagnostics=`` mode threaded through every solver front door."""

import warnings

import numpy as np
import pytest

from repro.engine import EngineOptions, evaluate_batch
from repro.engine.executors import ProcessExecutor, SerialExecutor, ThreadExecutor
from repro.exceptions import (
    DiagnosticWarning,
    ModelDefinitionError,
    ModelDiagnosticError,
)
from repro.markov import CTMC
from repro.markov.fallback import solve_steady_state
from repro.markov.solvers import solve_transient

CLEAN_Q = np.array([[-1e-3, 1e-3], [0.5, -0.5]])


def no_repair_chain():
    return CTMC().add_transition("up", "down", 1e-3)


def stiff_chain():
    """Irreducible (so it solves) but stiff (so warn mode has a finding)."""
    return (
        CTMC()
        .add_transition("up", "down", 1e-9)
        .add_transition("down", "up", 10.0)
    )


class TestSolverFrontDoors:
    def test_ctmc_steady_state_strict_raises(self):
        with pytest.raises(ModelDiagnosticError) as excinfo:
            no_repair_chain().steady_state(diagnostics="strict")
        assert {"M101", "M102"} <= set(excinfo.value.report.codes)

    def test_ctmc_steady_state_warn_warns_and_solves(self):
        with pytest.warns(DiagnosticWarning, match="M103"):
            pi = stiff_chain().steady_state(diagnostics="warn")
        assert pi["up"] == pytest.approx(1.0, abs=1e-6)

    def test_ctmc_steady_state_ignore_is_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            stiff_chain().steady_state()  # default is "ignore"

    def test_ctmc_transient_strict_passes_no_repair(self):
        # transient questions are fine on absorbing chains: the
        # steady-state structure codes are suppressed for this query.
        probs = no_repair_chain().transient(
            [0.0, 100.0], {"up": 1.0}, diagnostics="strict"
        )
        assert probs[0, 0] == pytest.approx(1.0)

    def test_solve_steady_state_strict_raises(self):
        q = no_repair_chain().generator().toarray()
        with pytest.raises(ModelDiagnosticError) as excinfo:
            solve_steady_state(q, diagnostics="strict")
        assert {"M101", "M102"} <= set(excinfo.value.report.codes)

    def test_solve_steady_state_warn_matches_ignore_bitwise(self):
        q = stiff_chain().generator().toarray()
        with pytest.warns(DiagnosticWarning, match="M103"):
            warned = solve_steady_state(q, diagnostics="warn")
        silent = solve_steady_state(q)
        np.testing.assert_array_equal(warned.pi, silent.pi)

    def test_solve_transient_strict_on_malformed_generator(self):
        q = np.array([[-1.0, 0.5], [2.0, -2.0]])  # M001
        with pytest.raises(ModelDiagnosticError):
            solve_transient(q, np.array([1.0, 0.0]), np.array([1.0]), diagnostics="strict")

    def test_solve_transient_clean_is_warning_free(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            out = solve_transient(
                CLEAN_Q, np.array([1.0, 0.0]), np.array([0.0, 1.0]), diagnostics="warn"
            )
        assert out.shape == (2, 2)

    @pytest.mark.parametrize("mode", ["loud", "", None, "Strict"])
    def test_invalid_mode_rejected(self, mode):
        with pytest.raises(ModelDefinitionError, match="diagnostics must be one of"):
            no_repair_chain().steady_state(diagnostics=mode)


class TestEngineFrontDoor:
    """Pre-flight diagnostics for compiled sweeps, once per batch."""

    def _evaluator(self):
        from repro.casestudies import bladecenter

        return bladecenter.evaluate_availability

    def test_options_field_default(self):
        assert EngineOptions().diagnostics == "ignore"

    @pytest.mark.parametrize(
        "executor", [None, SerialExecutor(), ThreadExecutor(n_jobs=2)],
        ids=["auto", "serial", "thread"],
    )
    def test_strict_clean_sweep_solves(self, executor):
        batch = evaluate_batch(
            self._evaluator(),
            [{}, {"cpu_failure_rate": 2e-4}],
            executor=executor,
            diagnostics="strict",
        )
        assert batch.outputs[0] == pytest.approx(0.9999398296568841)

    def test_strict_clean_sweep_process_executor(self):
        batch = evaluate_batch(
            self._evaluator(),
            [{}, {}],
            executor=ProcessExecutor(n_jobs=2),
            diagnostics="strict",
        )
        assert batch.outputs[0] == pytest.approx(0.9999398296568841)

    def test_strict_rejects_unknown_parameter_before_evaluating(self):
        with pytest.raises(ModelDiagnosticError) as excinfo:
            evaluate_batch(
                self._evaluator(),
                [{"cpu_failure_rte": 2e-4}],  # typo
                diagnostics="strict",
            )
        assert "U001" in excinfo.value.report.codes

    def test_warn_mode_emits_single_warning_then_evaluation_rejects(self):
        # warn surfaces the typo once for the whole batch; the evaluator's
        # own validation still rejects it per point (warn never masks it).
        with pytest.warns(DiagnosticWarning) as record:
            with pytest.raises(ModelDefinitionError, match="cpu_failure_rte"):
                evaluate_batch(
                    self._evaluator(),
                    [{"cpu_failure_rte": 2e-4} for _ in range(10)],
                    diagnostics="warn",
                )
        assert len([w for w in record if w.category is DiagnosticWarning]) == 1

    def test_mode_via_engine_options(self):
        with pytest.raises(ModelDiagnosticError):
            evaluate_batch(
                self._evaluator(),
                [{"no_such_param": 1.0}],
                options=EngineOptions(diagnostics="strict"),
            )

    def test_plain_function_is_opaque_but_mode_still_validated(self):
        # plain callables can't be analyzed — strict must not reject them
        batch = evaluate_batch(lambda a: a["x"], [{"x": 2.0}], diagnostics="strict")
        assert batch.outputs[0] == 2.0
        with pytest.raises(ModelDefinitionError, match="diagnostics must be one of"):
            evaluate_batch(lambda a: a["x"], [{"x": 2.0}], diagnostics="loud")
