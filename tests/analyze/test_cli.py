"""``python -m repro.analyze`` — the CLI gate over the case studies."""

import pytest

from repro.analyze.__main__ import CASE_STUDIES, lint_case_study, main


class TestMain:
    def test_all_case_studies_exit_zero(self, capsys):
        assert main([]) == 0
        out = capsys.readouterr().out
        assert "OK" in out
        for case in CASE_STUDIES:
            assert case in out

    def test_single_case(self, capsys):
        assert main(["bladecenter"]) == 0
        out = capsys.readouterr().out
        assert "bladecenter" in out
        assert "sip" not in out

    def test_quiet_mode(self, capsys):
        assert main(["-q", "bladecenter"]) == 0
        quiet = capsys.readouterr().out
        main(["bladecenter"])
        loud = capsys.readouterr().out
        assert len(quiet) < len(loud)

    def test_unknown_case_is_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["no_such_case"])
        assert excinfo.value.code == 2
        assert "no_such_case" in capsys.readouterr().err


class TestAcceptance:
    """Every shipped case study is clean or carries an acknowledgment."""

    @pytest.mark.parametrize("case", sorted(CASE_STUDIES))
    def test_case_study_has_no_unacknowledged_findings(self, case):
        reports, failures = lint_case_study(case)
        assert reports, f"case {case} produced no models to lint"
        assert failures == []

    def test_acknowledgments_documented_with_reasons(self):
        from repro.analyze.__main__ import _acknowledged

        for case in CASE_STUDIES:
            for code, reason in _acknowledged(case).items():
                assert code[0] in "MPSHCU" and code[1:].isdigit()
                assert isinstance(reason, str) and reason.strip()
