"""``python -m repro.analyze`` — the CLI gate over the case studies."""

import json

import pytest

from repro.analyze.__main__ import CASE_STUDIES, lint_case_study, main


class TestMain:
    def test_all_case_studies_exit_zero(self, capsys):
        assert main([]) == 0
        out = capsys.readouterr().out
        assert "OK" in out
        for case in CASE_STUDIES:
            assert case in out

    def test_single_case(self, capsys):
        assert main(["bladecenter"]) == 0
        out = capsys.readouterr().out
        assert "bladecenter" in out
        assert "sip" not in out

    def test_quiet_mode(self, capsys):
        assert main(["-q", "bladecenter"]) == 0
        quiet = capsys.readouterr().out
        main(["bladecenter"])
        loud = capsys.readouterr().out
        assert len(quiet) < len(loud)

    def test_unknown_case_is_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["no_such_case"])
        assert excinfo.value.code == 2
        assert "no_such_case" in capsys.readouterr().err


class TestJsonMode:
    def test_json_document_shape_and_exit_code(self, capsys):
        assert main(["--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["exit_code"] == 0
        assert doc["n_errors"] == 0
        assert doc["failures"] == []
        assert set(doc["cases"]) == set(CASE_STUDIES)
        for models in doc["cases"].values():
            for entry in models:
                assert {"label", "acknowledged", "structural"} <= set(entry)

    def test_json_carries_the_structural_prediction(self, capsys):
        assert main(["--json", "nfvchain"]) == 0
        doc = json.loads(capsys.readouterr().out)
        structural = [
            entry["structural"]
            for entry in doc["cases"]["nfvchain"]
            if entry["structural"] is not None
        ]
        assert structural, "the nfvchain net must get a structural pass"
        net_pass = structural[0]
        assert net_pass["state_bound"] == 64
        assert net_pass["state_bound_exact"] is True
        assert net_pass["structurally_bounded"] is True
        assert len(net_pass["p_invariants"]) >= 3


class TestAcceptance:
    """Every shipped case study is clean or carries an acknowledgment."""

    @pytest.mark.parametrize("case", sorted(CASE_STUDIES))
    def test_case_study_has_no_unacknowledged_findings(self, case):
        reports, failures = lint_case_study(case)
        assert reports, f"case {case} produced no models to lint"
        assert failures == []

    def test_acknowledgments_documented_with_reasons(self):
        from repro.analyze.__main__ import _acknowledged

        for case in CASE_STUDIES:
            for code, reason in _acknowledged(case).items():
                assert code[0] in "MPSHCU" and code[1:].isdigit()
                assert isinstance(reason, str) and reason.strip()
