"""Diagnostic / AnalysisReport data-model tests."""

import pytest

from repro.analyze import AnalysisReport, Diagnostic
from repro.exceptions import ModelDiagnosticError


class TestDiagnostic:
    def test_severity_defaults_from_code_table(self):
        assert Diagnostic("M001", "bad row sum").severity == "error"
        assert Diagnostic("M101", "absorbing").severity == "warning"
        assert Diagnostic("M104", "transient states").severity == "info"
        assert Diagnostic("S004", "repeated").severity == "info"
        assert Diagnostic("P105", "isolated").severity == "info"

    def test_explicit_severity_overrides_table(self):
        d = Diagnostic("M101", "absorbing", severity="error")
        assert d.severity == "error"

    def test_unknown_code_without_severity_raises(self):
        with pytest.raises(ValueError):
            Diagnostic("Z999", "mystery")

    def test_unknown_severity_raises(self):
        with pytest.raises(ValueError):
            Diagnostic("M001", "msg", severity="fatal")

    def test_render_with_and_without_location(self):
        d = Diagnostic("M001", "row 0 sums to 1", location="row 0")
        assert d.render() == "M001 error [row 0]: row 0 sums to 1"
        d = Diagnostic("M103", "stiff")
        assert d.render() == "M103 warning: stiff"

    def test_frozen(self):
        d = Diagnostic("M001", "msg")
        with pytest.raises(Exception):
            d.message = "other"


class TestAnalysisReport:
    def _report(self):
        return AnalysisReport(
            "CTMC",
            diagnostics=[
                Diagnostic("M001", "bad row"),
                Diagnostic("M101", "absorbing state"),
                Diagnostic("M104", "transient"),
            ],
            passes=["markov"],
        )

    def test_severity_buckets(self):
        r = self._report()
        assert [d.code for d in r.errors] == ["M001"]
        assert [d.code for d in r.warnings] == ["M101"]
        assert [d.code for d in r.infos] == ["M104"]
        assert r.codes == ["M001", "M101", "M104"]
        assert not r.ok

    def test_ok_when_no_errors(self):
        r = AnalysisReport("CTMC", diagnostics=[Diagnostic("M103", "stiff")])
        assert r.ok  # warnings do not flip ok
        assert AnalysisReport("CTMC").ok

    def test_filter(self):
        r = self._report()
        assert [d.code for d in r.filter(severity="error")] == ["M001"]
        assert [d.code for d in r.filter(code="M104")] == ["M104"]

    def test_sequence_protocol(self):
        r = self._report()
        assert len(r) == 3
        assert r[0].code == "M001"
        assert [d.code for d in r] == r.codes

    def test_raise_if_errors(self):
        r = self._report()
        with pytest.raises(ModelDiagnosticError) as excinfo:
            r.raise_if_errors()
        assert excinfo.value.report is r
        assert "1 error(s)" in str(excinfo.value)
        # no errors -> no raise
        AnalysisReport("CTMC", diagnostics=[Diagnostic("M103", "x")]).raise_if_errors()

    def test_to_dict_and_summary(self):
        r = self._report()
        d = r.to_dict()
        assert d["model_type"] == "CTMC"
        assert d["ok"] is False
        assert d["n_errors"] == 1
        assert len(d["diagnostics"]) == 3
        s = r.summary()
        assert s["n_errors"] == 1.0
        assert s["n_diagnostics"] == 3.0
        assert "M001" in r.render()
