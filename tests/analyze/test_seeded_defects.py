"""One deliberately broken model per diagnostic code.

Every code in the :data:`repro.analyze.diagnostics.CODES` table gets a
fixture seeded with exactly the defect it describes, and the test
asserts the analyzer finds it (right code, right severity).  This is
the acceptance contract for the static-analysis pass: the codes are
stable identifiers, so these tests pin their trigger conditions.
"""

import numpy as np
import pytest

from repro.analyze import analyze
from repro.compile.ctmc import CompiledCTMC, Param
from repro.core.hierarchy import HierarchicalModel, Submodel
from repro.markov import CTMC, DTMC
from repro.markov.mrgp import MarkovRegenerativeProcess
from repro.nonstate import (
    Component,
    FaultTree,
    ReliabilityBlockDiagram,
    ReliabilityGraph,
)
from repro.nonstate.faulttree import AndGate, BasicEvent, OrGate
from repro.nonstate.rbd import KofN, Series, parallel, series
from repro.petrinet import PetriNet


def codes_of(report):
    return set(report.codes)


def find(report, code):
    hits = report.filter(code=code)
    assert hits, f"expected {code} in {report.codes}"
    return hits[0]


# --------------------------------------------------------------- M: markov
class TestGeneratorDefects:
    def test_m001_row_sum(self):
        q = np.array([[-1.0, 0.5], [2.0, -2.0]])
        report = analyze(q)
        d = find(report, "M001")
        assert d.severity == "error"
        assert "row 0" in d.location

    def test_m002_negative_off_diagonal(self):
        q = np.array([[1.0, -1.0], [2.0, -2.0]])
        d = find(analyze(q), "M002")
        assert d.severity == "error"

    def test_m003_non_finite(self):
        q = np.array([[-np.nan, np.nan], [2.0, -2.0]])
        d = find(analyze(q), "M003")
        assert d.severity == "error"

    def test_m004_not_square(self):
        q = np.array([[-1.0, 1.0, 0.0], [2.0, -2.0, 0.0]])
        d = find(analyze(q), "M004")
        assert d.severity == "error"
        assert "(2, 3)" in d.location

    def test_m004_empty_chain(self):
        d = find(analyze(CTMC()), "M004")
        assert d.severity == "error"


def no_repair_chain():
    """Failure with no repair: absorbing + reducible + transient states."""
    return (
        CTMC()
        .add_transition("up", "degraded", 2e-3)
        .add_transition("degraded", "down", 1e-3)
    )


class TestChainStructure:
    def test_m101_m102_m104_on_no_repair_chain(self):
        report = analyze(no_repair_chain())
        assert {"M101", "M102", "M104"} <= codes_of(report)
        assert find(report, "M101").severity == "warning"
        assert find(report, "M102").severity == "warning"
        assert find(report, "M104").severity == "info"
        assert "'down'" in find(report, "M101").message

    def test_steady_state_query_escalates_to_error(self):
        report = analyze(no_repair_chain(), query="steady_state")
        assert find(report, "M101").severity == "error"
        assert find(report, "M102").severity == "error"
        assert not report.ok

    def test_transient_query_suppresses_structure_warnings(self):
        report = analyze(no_repair_chain(), query="transient")
        assert codes_of(report) == set()
        assert report.ok

    def test_m103_stiffness(self):
        chain = (
            CTMC()
            .add_transition("up", "down", 1e-9)
            .add_transition("down", "up", 10.0)
        )
        d = find(analyze(chain), "M103")
        assert d.severity == "warning"
        assert "stiffness ratio" in d.message

    def test_m110_dtmc_bad_row(self):
        dtmc = (
            DTMC()
            .add_transition("a", "b", 0.5)
            .add_transition("a", "a", 0.5)
            .add_transition("b", "a", 1.0)
        )
        # add_transition validates on the way in, so seed the defect by
        # mutation — exactly what a hand-edited model file would produce.
        dtmc._probs[(0, 1)] = 0.9
        d = find(analyze(dtmc), "M110")
        assert d.severity == "error"
        assert "'a'" in d.message

    def test_mrgp_no_repair(self):
        mrgp = MarkovRegenerativeProcess().add_exponential("up", "down", 1e-3)
        report = analyze(mrgp)
        assert {"M101", "M102"} <= codes_of(report)


# ----------------------------------------------------------- P: petri nets
class TestPetriDefects:
    def test_p101_heuristic_when_guard_blocks_the_proof(self):
        # The producer carries a guard, so the structural pass can prove
        # nothing either way: no P-invariant covers 'buffer' and the
        # pumping multiset is disqualified by the guard.  Heuristic P101.
        net = PetriNet().add_place("buffer")
        net.add_timed_transition(
            "arrive", rate=1.0, guard=lambda m: True
        ).add_output_arc("arrive", "buffer")
        net.add_timed_transition("serve", rate=2.0).add_input_arc("serve", "buffer")
        d = find(analyze(net), "P101")
        assert d.severity == "warning"
        assert "'buffer'" in d.location
        assert "heuristic" in d.message
        assert "P106" not in codes_of(analyze(net))

    def test_p101_heuristic_without_structural_pass(self):
        from repro.analyze import lint_petri_net

        net = PetriNet().add_place("buffer")
        net.add_timed_transition("arrive", rate=1.0).add_output_arc("arrive", "buffer")
        net.add_timed_transition("serve", rate=2.0).add_input_arc("serve", "buffer")
        diags = lint_petri_net(net, structural=False)
        hits = [d for d in diags if d.code == "P101"]
        assert hits and "heuristic" in hits[0].message
        assert "'arrive'" in hits[0].location

    def test_p101_silenced_by_inhibitor(self):
        net = PetriNet().add_place("buffer")
        net.add_timed_transition("arrive", rate=1.0).add_output_arc("arrive", "buffer")
        net.add_inhibitor_arc("arrive", "buffer", 5)
        net.add_timed_transition("serve", rate=2.0).add_input_arc("serve", "buffer")
        report = analyze(net)
        assert "P101" not in codes_of(report)
        assert "P106" not in codes_of(report)

    def test_p102_heuristic_without_structural_pass(self):
        from repro.analyze import lint_petri_net

        net = PetriNet().add_place("spare", initial=0).add_place("pool", initial=1)
        net.add_timed_transition("swap", rate=1.0)
        net.add_input_arc("swap", "spare").add_output_arc("swap", "pool")
        net.add_timed_transition("drain", rate=1.0).add_input_arc("drain", "pool")
        diags = lint_petri_net(net, structural=False)
        hits = [d for d in diags if d.code == "P102"]
        assert hits and hits[0].severity == "warning"
        assert "heuristic" in hits[0].message

    def test_p102_upgrades_to_p108_with_structural_pass(self):
        # Same net as above: the structural pass proves the deadness
        # (empty siphon), so the proven code replaces the heuristic one.
        net = PetriNet().add_place("spare", initial=0).add_place("pool", initial=1)
        net.add_timed_transition("swap", rate=1.0)
        net.add_input_arc("swap", "spare").add_output_arc("swap", "pool")
        net.add_timed_transition("drain", rate=1.0).add_input_arc("drain", "pool")
        report = analyze(net)
        assert "P102" not in codes_of(report)
        d = find(report, "P108")
        assert "can never fire" in d.message
        assert "'swap'" in d.location

    def test_p106_unbounded_producer_with_certificate(self):
        # No guard, no inhibitor: the structural pass *proves* the
        # unboundedness and names the pumping multiset.  Proven P106
        # replaces heuristic P101 for this place.
        net = PetriNet().add_place("buffer")
        net.add_timed_transition("arrive", rate=1.0).add_output_arc("arrive", "buffer")
        net.add_timed_transition("serve", rate=2.0).add_input_arc("serve", "buffer")
        report = analyze(net)
        d = find(report, "P106")
        assert d.severity == "warning"
        assert "'buffer'" in d.location
        assert "arrive" in d.message
        p101_at_buffer = [
            x for x in report if x.code == "P101" and "'buffer'" in x.location
        ]
        assert p101_at_buffer == []

    def test_p107_conservation_violation_names_the_breaker(self):
        # Leaky repairman: repair returns two machines for every one
        # that failed, so no conservation law covers up/down — but
        # removing either transition restores one.  P107 names the
        # breaker and the law it breaks.
        net = PetriNet().add_place("up", initial=4).add_place("down")
        net.add_timed_transition("fail", rate=0.1)
        net.add_input_arc("fail", "up").add_output_arc("fail", "down")
        net.add_timed_transition("repair", rate=1.0)
        net.add_input_arc("repair", "down").add_output_arc("repair", "up", 2)
        report = analyze(net)
        hits = [d for d in report if d.code == "P107"]
        assert hits
        assert all(d.severity == "warning" for d in hits)
        named = {d.location for d in hits}
        assert named & {"transition 'fail'", "transition 'repair'"} or any(
            "fail" in loc or "repair" in loc for loc in named
        )
        assert any("=" in d.message for d in hits)  # the broken law, rendered

    def test_p109_predicted_count_exceeds_budget(self):
        from repro.analyze import lint_petri_net

        # mm1k(K=5): proven bound 6 states; a budget of 3 must trip the
        # predicted-size warning without building reachability.
        net = PetriNet().add_place("queue")
        net.add_timed_transition("arrive", rate=1.0).add_output_arc("arrive", "queue")
        net.add_inhibitor_arc("arrive", "queue", 5)
        net.add_timed_transition("serve", rate=2.0).add_input_arc("serve", "queue")
        diags = lint_petri_net(net, max_markings=3)
        hits = [d for d in diags if d.code == "P109"]
        assert hits and hits[0].severity == "warning"
        assert "6" in hits[0].message and "3" in hits[0].message
        # a sufficient budget stays quiet
        assert [d for d in lint_petri_net(net, max_markings=10) if d.code == "P109"] == []

    def test_p103_immediate_cycle(self):
        net = PetriNet().add_place("a", initial=1).add_place("b")
        net.add_immediate_transition("t1").add_input_arc("t1", "a")
        net.add_output_arc("t1", "b")
        net.add_immediate_transition("t2").add_input_arc("t2", "b")
        net.add_output_arc("t2", "a")
        d = find(analyze(net), "P103")
        assert d.severity == "warning"
        assert "cycle" in d.message

    def test_p104_zero_weight_immediate(self):
        net = PetriNet().add_place("a", initial=1).add_place("done")
        net.add_immediate_transition("choose", weight=0.0)
        net.add_input_arc("choose", "a").add_output_arc("choose", "done")
        d = find(analyze(net), "P104")
        assert d.severity == "warning"

    def test_p105_isolated_place(self):
        net = PetriNet().add_place("used", initial=1).add_place("orphan")
        net.add_timed_transition("t", rate=1.0).add_input_arc("t", "used")
        d = find(analyze(net), "P105")
        assert d.severity == "info"
        assert "'orphan'" in d.location


# ----------------------------------------------------------- S: structure
class TestStructureDefects:
    def test_s001_probability_out_of_range(self):
        c = Component.fixed("x", 0.5)
        c.probability = 1.5  # constructor validates; seed by mutation
        rbd = ReliabilityBlockDiagram(series(c, Component.fixed("y", 0.1)))
        d = find(analyze(rbd), "S001")
        assert d.severity == "error"
        assert "1.5" in d.message

    def test_s002_k_of_n_arity(self):
        block = KofN(2, [Component.fixed("a", 0.1), Component.fixed("b", 0.1)])
        block.k = 5  # constructor validates; seed by mutation
        d = find(analyze(ReliabilityBlockDiagram(block)), "S002")
        assert d.severity == "error"
        assert "5-of-2" in d.message

    def test_s003_single_child_series(self):
        rbd = ReliabilityBlockDiagram(
            parallel(Series([Component.fixed("a", 0.1)]), Component.fixed("b", 0.1))
        )
        d = find(analyze(rbd), "S003")
        assert d.severity == "warning"
        assert "identity" in d.message

    def test_s004_repeated_components(self):
        shared = Component.fixed("shared", 0.1)
        rbd = ReliabilityBlockDiagram(
            parallel(series(shared, Component.fixed("x", 0.2)), shared)
        )
        d = find(analyze(rbd), "S004")
        assert d.severity == "info"
        assert "'shared'" in d.message

    def test_s003_single_input_gate(self):
        tree = FaultTree(
            OrGate(
                [
                    AndGate([BasicEvent(Component.fixed("a", 0.1))]),
                    BasicEvent(Component.fixed("b", 0.1)),
                ]
            )
        )
        d = find(analyze(tree), "S003")
        assert "1 input(s)" in d.message

    def test_s005_unreachable_relgraph_edge(self):
        g = ReliabilityGraph("s", "t")
        g.add_edge("s", "t", Component.fixed("direct", 0.1))
        g.add_edge("t", "x", Component.fixed("dangling", 0.2))
        d = find(analyze(g), "S005")
        assert d.severity == "warning"
        assert "'dangling'" in d.message
        assert "'direct'" not in [x.message for x in analyze(g).filter(code="S005")]

    def test_s006_component_without_parameterization(self):
        c = Component.fixed("x", 0.5)
        c.probability = None  # constructor forbids; seed by mutation
        rbd = ReliabilityBlockDiagram(series(c, Component.fixed("y", 0.1)))
        d = find(analyze(rbd), "S006")
        assert d.severity == "info"
        assert "q=" in d.message


# ---------------------------------------------------------- H: hierarchy
def _leaf_builder(**_params):
    raise AssertionError("analysis must never build submodels")


class TestHierarchyDefects:
    def test_h001_unknown_submodel(self):
        h = HierarchicalModel().add_submodel(
            Submodel("top", _leaf_builder, imports={"p": ("ghost", "out")})
        )
        d = find(analyze(h), "H001")
        assert d.severity == "error"
        assert "'ghost'" in d.message

    def test_h001_unknown_export(self):
        h = (
            HierarchicalModel()
            .add_submodel(Submodel("leaf", _leaf_builder, exports={"avail": len}))
            .add_submodel(
                Submodel("top", _leaf_builder, imports={"p": ("leaf", "mttf")})
            )
        )
        d = find(analyze(h), "H001")
        assert "'mttf'" in d.message

    def test_h002_cyclic_imports(self):
        h = (
            HierarchicalModel()
            .add_submodel(
                Submodel(
                    "a", _leaf_builder, exports={"x": len}, imports={"p": ("b", "y")}
                )
            )
            .add_submodel(
                Submodel(
                    "b", _leaf_builder, exports={"y": len}, imports={"q": ("a", "x")}
                )
            )
        )
        report = analyze(h)
        d = find(report, "H002")
        assert d.severity == "info"
        assert "cyclic" in d.message
        assert report.ok  # legal, just informational


# ----------------------------------------------------------- C/U: compiled
def two_state_compiled():
    return CompiledCTMC(
        ["up", "down"], [(0, 1, Param("lam")), (1, 0, Param("mu"))]
    )


class TestCompiledDefects:
    def test_c001_missing_parameter(self):
        report = analyze(two_state_compiled(), params={"lam": 1e-3})
        d = find(report, "C001")
        assert d.severity == "error"
        assert "'mu'" in d.message
        assert "'up'" in d.location or "'down'" in d.location

    def test_c002_invalid_rate_value(self):
        report = analyze(two_state_compiled(), params={"lam": -1.0, "mu": 2.0})
        d = find(report, "C002")
        assert d.severity == "error"

    def test_compiled_clean_point_runs_markov_lint(self):
        # one-way chain: value checks pass, then the filled generator is
        # linted and the no-repair structure surfaces.
        compiled = CompiledCTMC(["up", "down"], [(0, 1, Param("lam"))])
        report = analyze(compiled, params={"lam": 1e-3})
        assert {"M101", "M102"} <= codes_of(report)

    def test_u001_unknown_assignment_key(self):
        from repro.compile.model import CompiledEvaluator

        class TinyEvaluator(CompiledEvaluator):
            parameters = ("lam", "mu")

            def __init__(self):
                self.chain = two_state_compiled()

        report = analyze(TinyEvaluator(), params={"lam": 1e-3, "lambda_": 2.0})
        d = find(report, "U001")
        assert d.severity == "error"
        assert "'lambda_'" in d.message

    def test_c001_orphaned_embedded_parameter(self):
        from repro.compile.model import CompiledEvaluator

        class LeakyEvaluator(CompiledEvaluator):
            parameters = ("lam",)  # chain also reads 'mu': orphaned

            def __init__(self):
                self.chain = two_state_compiled()

        report = analyze(LeakyEvaluator(), params={"lam": 1e-3})
        d = find(report, "C001")
        assert "'mu'" in d.message
        assert "chain" in d.location


# ------------------------------------------------- clean models stay clean
class TestCleanModels:
    @pytest.mark.parametrize(
        "model",
        [
            CTMC().add_transition("up", "down", 1e-3).add_transition("down", "up", 0.5),
            np.array([[-1e-3, 1e-3], [0.5, -0.5]]),
            ReliabilityBlockDiagram(
                series(Component.fixed("a", 0.1), Component.fixed("b", 0.2))
            ),
        ],
        ids=["ctmc", "generator", "rbd"],
    )
    def test_no_findings(self, model):
        report = analyze(model, query="steady_state")
        assert report.ok
        assert report.codes == []
