"""Unit tests for hypo/hyper-exponential, deterministic, uniform, empirical."""

import math

import numpy as np
import pytest

from repro.distributions import (
    Deterministic,
    EmpiricalDistribution,
    Exponential,
    HyperExponential,
    HypoExponential,
    Uniform,
)
from repro.exceptions import DistributionError


class TestHypoExponential:
    def test_mean_and_variance(self):
        h = HypoExponential(rates=[1.0, 2.0, 4.0])
        assert h.mean() == pytest.approx(1.0 + 0.5 + 0.25)
        assert h.variance() == pytest.approx(1.0 + 0.25 + 0.0625)

    def test_single_stage_is_exponential(self):
        h = HypoExponential(rates=[3.0])
        e = Exponential(3.0)
        t = np.linspace(0, 2, 20)
        np.testing.assert_allclose(h.sf(t), e.sf(t), rtol=1e-12)

    def test_repeated_rates_fall_back_to_matrix_form(self):
        h = HypoExponential(rates=[2.0, 2.0])
        # Erlang(2, 2): sf(t) = e^{-2t} (1 + 2t)
        t = 0.7
        assert h.sf(t) == pytest.approx(math.exp(-1.4) * (1 + 1.4), rel=1e-9)

    def test_distinct_rates_partial_fractions(self):
        h = HypoExponential(rates=[1.0, 2.0])
        # sf(t) = 2 e^{-t} - e^{-2t}
        t = 0.9
        assert h.sf(t) == pytest.approx(2 * math.exp(-0.9) - math.exp(-1.8))

    def test_pdf_non_negative(self):
        h = HypoExponential(rates=[1.0, 5.0, 9.0])
        assert np.all(np.asarray(h.pdf(np.linspace(0, 10, 100))) >= 0)

    def test_cv_below_one(self):
        assert HypoExponential(rates=[1.0, 2.0]).cv() < 1.0

    def test_sampling(self, rng):
        h = HypoExponential(rates=[1.0, 3.0])
        assert h.sample(rng, 100_000).mean() == pytest.approx(h.mean(), rel=0.02)

    def test_empty_rates_rejected(self):
        with pytest.raises(DistributionError):
            HypoExponential(rates=[])

    def test_nearly_equal_rates_numerically_stable(self):
        # Regression (found by hypothesis): rates differing by one ULP
        # previously went down the partial-fraction path and suffered
        # catastrophic cancellation; they must route to the matrix form.
        d = HypoExponential([0.010000000000000002, 0.01])
        assert d.cdf(d.ppf(0.5)) == pytest.approx(0.5, abs=1e-9)
        d2 = HypoExponential([1.0, 1.0000001])
        assert d2.cdf(d2.ppf(0.9)) == pytest.approx(0.9, abs=1e-6)
        assert d2.mean() == pytest.approx(2.0, rel=1e-6)


class TestHyperExponential:
    def test_mean(self):
        h = HyperExponential(probs=[0.3, 0.7], rates=[1.0, 2.0])
        assert h.mean() == pytest.approx(0.3 + 0.35)

    def test_cv_above_one(self):
        h = HyperExponential(probs=[0.9, 0.1], rates=[10.0, 0.1])
        assert h.cv() > 1.0

    def test_degenerate_single_branch(self):
        h = HyperExponential(probs=[1.0], rates=[2.0])
        e = Exponential(2.0)
        t = np.linspace(0, 3, 10)
        np.testing.assert_allclose(h.sf(t), e.sf(t), rtol=1e-12)

    def test_probs_must_sum_to_one(self):
        with pytest.raises(DistributionError):
            HyperExponential(probs=[0.5, 0.4], rates=[1.0, 2.0])

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(DistributionError):
            HyperExponential(probs=[0.5, 0.5], rates=[1.0])

    def test_sampling(self, rng):
        h = HyperExponential(probs=[0.5, 0.5], rates=[1.0, 4.0])
        assert h.sample(rng, 200_000).mean() == pytest.approx(h.mean(), rel=0.02)

    def test_moment_formula(self):
        h = HyperExponential(probs=[0.25, 0.75], rates=[1.0, 2.0])
        assert h.moment(2) == pytest.approx(0.25 * 2.0 + 0.75 * 0.5)


class TestDeterministic:
    def test_step_cdf(self):
        d = Deterministic(5.0)
        assert d.cdf(4.999) == 0.0
        assert d.cdf(5.0) == 1.0
        assert d.cdf(5.001) == 1.0

    def test_moments(self):
        d = Deterministic(3.0)
        assert d.mean() == 3.0
        assert d.variance() == 0.0
        assert d.moment(3) == 27.0
        assert d.cv() == 0.0

    def test_ppf_constant(self):
        d = Deterministic(2.0)
        assert d.ppf(0.01) == 2.0
        assert d.ppf(0.99) == 2.0

    def test_sampling_constant(self, rng):
        d = Deterministic(7.0)
        assert d.sample(rng) == 7.0
        np.testing.assert_array_equal(d.sample(rng, 5), np.full(5, 7.0))

    def test_zero_allowed(self):
        assert Deterministic(0.0).mean() == 0.0


class TestUniform:
    def test_moments(self):
        u = Uniform(1.0, 3.0)
        assert u.mean() == pytest.approx(2.0)
        assert u.variance() == pytest.approx(4.0 / 12.0)

    def test_cdf_linear(self):
        u = Uniform(0.0, 2.0)
        assert u.cdf(1.0) == pytest.approx(0.5)
        assert u.cdf(-1.0) == 0.0
        assert u.cdf(5.0) == 1.0

    def test_ppf(self):
        u = Uniform(2.0, 4.0)
        assert u.ppf(0.25) == pytest.approx(2.5)

    def test_invalid_order_rejected(self):
        with pytest.raises(DistributionError):
            Uniform(3.0, 1.0)

    def test_sampling_bounds(self, rng):
        u = Uniform(1.0, 2.0)
        draws = u.sample(rng, 10_000)
        assert draws.min() >= 1.0 and draws.max() <= 2.0


class TestEmpirical:
    def test_linear_cdf_mean(self):
        d = EmpiricalDistribution([0.0, 1.0, 2.0], [0.0, 0.5, 1.0])
        assert d.mean() == pytest.approx(1.0)

    def test_matches_source_distribution(self, rng):
        src = Exponential(2.0)
        grid = np.linspace(0.0, 10.0, 4000)
        d = EmpiricalDistribution(grid, src.cdf(grid))
        assert d.mean() == pytest.approx(src.mean(), rel=1e-3)
        assert d.cdf(0.5) == pytest.approx(src.cdf(0.5), abs=1e-4)

    def test_from_samples(self, rng):
        src = Exponential(1.0)
        d = EmpiricalDistribution.from_samples(src.sample(rng, 50_000))
        assert d.mean() == pytest.approx(1.0, rel=0.05)

    def test_ppf_inverts_cdf(self):
        d = EmpiricalDistribution([0.0, 1.0, 2.0], [0.0, 0.5, 1.0])
        assert d.ppf(0.25) == pytest.approx(0.5)

    def test_bad_cdf_rejected(self):
        with pytest.raises(DistributionError):
            EmpiricalDistribution([0.0, 1.0], [0.0, 0.7])
        with pytest.raises(DistributionError):
            EmpiricalDistribution([0.0, 1.0, 0.5], [0.0, 0.5, 1.0])

    def test_sampling_roundtrip(self, rng):
        d = EmpiricalDistribution([0.0, 1.0, 2.0], [0.0, 0.5, 1.0])
        draws = d.sample(rng, 50_000)
        assert draws.mean() == pytest.approx(1.0, rel=0.03)
