"""Unit tests for the exponential distribution."""

import math

import numpy as np
import pytest

from repro.distributions import Exponential
from repro.exceptions import DistributionError


class TestConstruction:
    def test_rate_stored(self):
        assert Exponential(2.0).rate == 2.0

    def test_from_mean(self):
        assert Exponential.from_mean(4.0).rate == pytest.approx(0.25)

    @pytest.mark.parametrize("bad", [0.0, -1.0, float("inf"), float("nan")])
    def test_invalid_rate_rejected(self, bad):
        with pytest.raises(DistributionError):
            Exponential(bad)


class TestMoments:
    def test_mean(self):
        assert Exponential(2.0).mean() == pytest.approx(0.5)

    def test_variance(self):
        assert Exponential(2.0).variance() == pytest.approx(0.25)

    def test_cv_is_one(self):
        assert Exponential(3.7).cv() == pytest.approx(1.0)

    @pytest.mark.parametrize("k", [0, 1, 2, 3, 4])
    def test_raw_moments_closed_form(self, k):
        d = Exponential(1.5)
        assert d.moment(k) == pytest.approx(math.factorial(k) / 1.5**k)

    def test_second_moment_consistent_with_variance(self):
        d = Exponential(0.3)
        assert d.moment(2) == pytest.approx(d.variance() + d.mean() ** 2)


class TestPointwise:
    def test_sf_at_zero(self):
        assert Exponential(1.0).sf(0.0) == pytest.approx(1.0)

    def test_cdf_sf_complementary(self):
        d = Exponential(0.7)
        t = np.linspace(0, 10, 11)
        np.testing.assert_allclose(d.cdf(t) + d.sf(t), 1.0)

    def test_sf_closed_form(self):
        d = Exponential(2.0)
        assert d.sf(1.5) == pytest.approx(math.exp(-3.0))

    def test_pdf_integrates_to_cdf(self):
        d = Exponential(1.3)
        t = np.linspace(0, 5, 2001)
        integral = np.trapezoid(d.pdf(t), t)
        assert integral == pytest.approx(d.cdf(5.0), abs=1e-6)

    def test_hazard_is_constant(self):
        d = Exponential(0.4)
        np.testing.assert_allclose(d.hazard(np.array([0.1, 1.0, 10.0])), 0.4)

    def test_negative_time_handled(self):
        d = Exponential(1.0)
        assert d.pdf(-1.0) == 0.0
        assert d.cdf(-1.0) == 0.0
        assert d.sf(-1.0) == 1.0

    def test_ppf_roundtrip(self):
        d = Exponential(2.5)
        for q in (0.1, 0.5, 0.9, 0.999):
            assert d.cdf(d.ppf(q)) == pytest.approx(q)

    def test_median(self):
        assert Exponential(1.0).median() == pytest.approx(math.log(2.0))


class TestSampling:
    def test_sample_mean_converges(self, rng):
        d = Exponential(2.0)
        draws = d.sample(rng, size=200_000)
        assert draws.mean() == pytest.approx(0.5, rel=0.02)

    def test_scalar_sample(self, rng):
        assert np.isscalar(Exponential(1.0).sample(rng)) or np.ndim(
            Exponential(1.0).sample(rng)
        ) == 0

    def test_memorylessness_empirical(self, rng):
        d = Exponential(1.0)
        draws = d.sample(rng, size=200_000)
        conditional = draws[draws > 1.0] - 1.0
        assert conditional.mean() == pytest.approx(1.0, rel=0.05)
