"""Unit tests for Weibull, lognormal, gamma and Erlang distributions."""

import math

import numpy as np
import pytest

from repro.distributions import Erlang, Exponential, Gamma, Lognormal, Weibull
from repro.exceptions import DistributionError


class TestWeibull:
    def test_shape_one_is_exponential(self):
        w = Weibull(shape=1.0, scale=2.0)
        e = Exponential(rate=0.5)
        t = np.linspace(0.01, 10, 50)
        np.testing.assert_allclose(w.sf(t), e.sf(t), rtol=1e-12)

    def test_mean_closed_form(self):
        w = Weibull(shape=2.0, scale=3.0)
        assert w.mean() == pytest.approx(3.0 * math.gamma(1.5))

    def test_from_mean_shape_recovers_mean(self):
        w = Weibull.from_mean_shape(mean=5.0, shape=1.7)
        assert w.mean() == pytest.approx(5.0)

    def test_increasing_hazard_for_shape_above_one(self):
        w = Weibull(shape=2.5, scale=1.0)
        h = w.hazard(np.array([0.5, 1.0, 2.0]))
        assert h[0] < h[1] < h[2]

    def test_decreasing_hazard_for_shape_below_one(self):
        w = Weibull(shape=0.5, scale=1.0)
        h = w.hazard(np.array([0.5, 1.0, 2.0]))
        assert h[0] > h[1] > h[2]

    def test_moment_matches_quadrature_fallback(self):
        w = Weibull(shape=1.8, scale=2.0)
        # closed form vs the survival-integral identity
        t = np.linspace(0, 60, 600_001)
        numeric = np.trapezoid(3 * t**2 * w.sf(t), t)
        assert w.moment(3) == pytest.approx(numeric, rel=1e-5)

    def test_sampling_mean(self, rng):
        w = Weibull(shape=2.0, scale=1.0)
        assert w.sample(rng, 100_000).mean() == pytest.approx(w.mean(), rel=0.02)

    def test_cv_below_one_for_wearout(self):
        assert Weibull(shape=3.0, scale=1.0).cv() < 1.0

    @pytest.mark.parametrize("shape,scale", [(0.0, 1.0), (1.0, 0.0), (-1.0, 1.0)])
    def test_invalid_parameters(self, shape, scale):
        with pytest.raises(DistributionError):
            Weibull(shape=shape, scale=scale)


class TestLognormal:
    def test_median_is_exp_mu(self):
        assert Lognormal(mu=1.2, sigma=0.4).median() == pytest.approx(math.exp(1.2))

    def test_mean_closed_form(self):
        d = Lognormal(mu=0.0, sigma=1.0)
        assert d.mean() == pytest.approx(math.exp(0.5))

    def test_from_mean_cv(self):
        d = Lognormal.from_mean_cv(mean=4.0, cv=1.5)
        assert d.mean() == pytest.approx(4.0)
        assert d.cv() == pytest.approx(1.5)

    def test_moments_closed_form(self):
        d = Lognormal(mu=0.3, sigma=0.7)
        assert d.moment(2) == pytest.approx(math.exp(0.6 + 2 * 0.49))

    def test_cdf_zero_below_support(self):
        d = Lognormal(mu=0.0, sigma=1.0)
        assert d.cdf(0.0) == 0.0
        assert d.cdf(-1.0) == 0.0

    def test_sampling_median(self, rng):
        d = Lognormal(mu=0.5, sigma=0.8)
        draws = d.sample(rng, 100_000)
        assert np.median(draws) == pytest.approx(d.median(), rel=0.02)


class TestGammaErlang:
    def test_gamma_mean_var(self):
        g = Gamma(shape=3.0, rate=2.0)
        assert g.mean() == pytest.approx(1.5)
        assert g.variance() == pytest.approx(0.75)

    def test_gamma_moment(self):
        g = Gamma(shape=2.0, rate=1.0)
        assert g.moment(2) == pytest.approx(6.0)  # Γ(4)/Γ(2) = 6

    def test_erlang_is_integer_gamma(self):
        e = Erlang(stages=3, rate=2.0)
        g = Gamma(shape=3.0, rate=2.0)
        t = np.linspace(0.01, 5, 40)
        np.testing.assert_allclose(e.cdf(t), g.cdf(t), rtol=1e-12)

    def test_erlang_squared_cv(self):
        assert Erlang(stages=4, rate=1.0).squared_cv() == pytest.approx(0.25)

    def test_erlang_from_mean(self):
        e = Erlang.from_mean(10.0, stages=5)
        assert e.mean() == pytest.approx(10.0)
        assert e.stages == 5

    def test_erlang_rejects_fractional_stages(self):
        with pytest.raises(DistributionError):
            Erlang(stages=2.5, rate=1.0)

    def test_erlang_one_stage_is_exponential(self):
        e = Erlang(stages=1, rate=3.0)
        x = Exponential(rate=3.0)
        t = np.linspace(0, 3, 30)
        np.testing.assert_allclose(e.sf(t), x.sf(t), rtol=1e-12)

    def test_erlang_sampling(self, rng):
        e = Erlang(stages=4, rate=2.0)
        draws = e.sample(rng, 50_000)
        assert draws.mean() == pytest.approx(2.0, rel=0.02)
        assert draws.var() == pytest.approx(1.0, rel=0.05)

    def test_erlang_scalar_sample(self, rng):
        value = Erlang(stages=2, rate=1.0).sample(rng)
        assert isinstance(value, float)
