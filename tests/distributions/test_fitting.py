"""Unit tests for two-moment phase-type fitting."""

import pytest

from repro.distributions import (
    Erlang,
    Exponential,
    HyperExponential,
    HypoExponential,
    Lognormal,
    Weibull,
    erlang_stages_for_cv,
    fit_distribution,
    fit_two_moments,
)
from repro.exceptions import DistributionError


class TestFitTwoMoments:
    def test_cv2_one_gives_exponential(self):
        d = fit_two_moments(mean=3.0, cv2=1.0)
        assert isinstance(d, Exponential)
        assert d.mean() == pytest.approx(3.0)

    @pytest.mark.parametrize("cv2", [1.5, 2.0, 4.0, 25.0])
    def test_hyperexponential_branch_exact(self, cv2):
        d = fit_two_moments(mean=2.0, cv2=cv2)
        assert isinstance(d, HyperExponential)
        assert d.mean() == pytest.approx(2.0, rel=1e-12)
        assert d.squared_cv() == pytest.approx(cv2, rel=1e-9)

    @pytest.mark.parametrize("cv2", [0.55, 0.7, 0.9, 0.99])
    def test_hypoexponential_branch_exact(self, cv2):
        d = fit_two_moments(mean=5.0, cv2=cv2)
        assert d.mean() == pytest.approx(5.0, rel=1e-9)
        assert d.squared_cv() == pytest.approx(cv2, rel=1e-6)

    def test_cv2_half_gives_two_stage_erlang(self):
        d = fit_two_moments(mean=1.0, cv2=0.5)
        assert d.mean() == pytest.approx(1.0)
        assert d.squared_cv() == pytest.approx(0.5, rel=1e-9)

    @pytest.mark.parametrize("cv2", [0.3, 0.1, 0.05])
    def test_low_cv2_erlang_mean_exact(self, cv2):
        d = fit_two_moments(mean=4.0, cv2=cv2)
        assert isinstance(d, Erlang)
        assert d.mean() == pytest.approx(4.0)
        # CV matched from below by the stage count
        assert d.squared_cv() <= cv2 + 1e-12

    def test_invalid_inputs(self):
        with pytest.raises(DistributionError):
            fit_two_moments(mean=0.0, cv2=1.0)
        with pytest.raises(DistributionError):
            fit_two_moments(mean=1.0, cv2=0.0)


class TestErlangStages:
    @pytest.mark.parametrize("cv2,expected", [(1.0, 1), (0.5, 2), (0.34, 3), (0.25, 4)])
    def test_stage_counts(self, cv2, expected):
        assert erlang_stages_for_cv(cv2) == expected

    def test_invalid(self):
        with pytest.raises(DistributionError):
            erlang_stages_for_cv(0.0)


class TestFitDistribution:
    def test_weibull_moments_preserved(self):
        w = Weibull(shape=2.0, scale=3.0)
        approx = fit_distribution(w)
        assert approx.mean() == pytest.approx(w.mean(), rel=1e-9)

    def test_lognormal_high_cv_preserved(self):
        d = Lognormal.from_mean_cv(mean=2.0, cv=2.5)
        approx = fit_distribution(d)
        assert isinstance(approx, HyperExponential)
        assert approx.mean() == pytest.approx(2.0, rel=1e-9)
        assert approx.squared_cv() == pytest.approx(6.25, rel=1e-6)

    def test_exponential_fixed_point(self):
        e = Exponential(5.0)
        approx = fit_distribution(e)
        assert isinstance(approx, Exponential)
        assert approx.rate == pytest.approx(5.0)
