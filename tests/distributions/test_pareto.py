"""Unit tests for the Pareto distribution."""

import math

import numpy as np
import pytest

from repro.distributions import Exponential, Pareto
from repro.exceptions import DistributionError
from repro.markov import SemiMarkovProcess


class TestMoments:
    def test_mean_closed_form(self):
        assert Pareto(shape=3.0, minimum=2.0).mean() == pytest.approx(3.0)

    def test_infinite_mean_for_shape_at_most_one(self):
        assert math.isinf(Pareto(shape=1.0, minimum=1.0).mean())
        assert math.isinf(Pareto(shape=0.5, minimum=1.0).mean())

    def test_infinite_variance_for_shape_at_most_two(self):
        assert math.isinf(Pareto(shape=2.0, minimum=1.0).variance())
        assert math.isfinite(Pareto(shape=2.5, minimum=1.0).variance())

    def test_moment_divergence_threshold(self):
        p = Pareto(shape=2.5, minimum=1.0)
        assert math.isfinite(p.moment(2))
        assert math.isinf(p.moment(3))

    def test_variance_closed_form(self):
        p = Pareto(shape=3.0, minimum=1.0)
        assert p.variance() == pytest.approx(3.0 / (4.0 * 1.0))


class TestPointwise:
    def test_support_starts_at_minimum(self):
        p = Pareto(shape=2.0, minimum=5.0)
        assert p.cdf(4.999) == 0.0
        assert p.sf(3.0) == 1.0
        assert p.pdf(1.0) == 0.0

    def test_sf_power_law(self):
        p = Pareto(shape=2.0, minimum=1.0)
        assert p.sf(10.0) == pytest.approx(0.01)

    def test_ppf_roundtrip(self):
        p = Pareto(shape=1.5, minimum=2.0)
        for q in (0.1, 0.5, 0.9, 0.999):
            assert p.cdf(p.ppf(q)) == pytest.approx(q)

    def test_hazard_decreasing(self):
        p = Pareto(shape=2.0, minimum=1.0)
        h = p.hazard(np.array([1.0, 2.0, 10.0]))
        assert h[0] > h[1] > h[2]

    def test_heavier_tail_than_exponential(self):
        p = Pareto(shape=3.0, minimum=2.0)     # mean 3
        e = Exponential.from_mean(3.0)
        assert p.sf(30.0) > e.sf(30.0)

    def test_invalid_parameters(self):
        with pytest.raises(DistributionError):
            Pareto(shape=0.0, minimum=1.0)
        with pytest.raises(DistributionError):
            Pareto(shape=1.0, minimum=0.0)


class TestSampling:
    def test_sample_mean(self, rng):
        p = Pareto(shape=3.0, minimum=2.0)
        draws = p.sample(rng, 200_000)
        assert draws.mean() == pytest.approx(3.0, rel=0.02)
        assert draws.min() >= 2.0

    def test_smp_steady_state_with_pareto_repair(self):
        # The tutorial point: SMP steady state needs only the MEAN, so a
        # heavy-tailed (infinite-variance) repair still has a well-defined
        # availability as long as shape > 1.
        repair = Pareto(shape=1.5, minimum=1.0)  # mean 3, infinite variance
        smp = SemiMarkovProcess()
        smp.add_transition("up", "down", 1.0, Exponential(0.01))
        smp.add_transition("down", "up", 1.0, repair)
        assert smp.steady_state()["up"] == pytest.approx(100.0 / 103.0)
