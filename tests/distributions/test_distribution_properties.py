"""Property-based tests on the distribution interface (hypothesis).

Invariants every lifetime distribution must satisfy: CDFs are monotone
in [0,1], sf + cdf == 1, moments are consistent, quantiles invert the
CDF, and two-moment fits hit their targets.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributions import (
    Deterministic,
    Erlang,
    Exponential,
    HyperExponential,
    HypoExponential,
    Lognormal,
    Uniform,
    Weibull,
    fit_two_moments,
)

rates = st.floats(min_value=0.01, max_value=100.0, allow_nan=False)
shapes = st.floats(min_value=0.3, max_value=8.0, allow_nan=False)
times = st.floats(min_value=0.0, max_value=50.0, allow_nan=False)


def dist_strategy():
    return st.one_of(
        rates.map(Exponential),
        st.tuples(shapes, rates).map(lambda p: Weibull(shape=p[0], scale=p[1])),
        st.tuples(st.floats(-2, 2), st.floats(0.1, 2)).map(
            lambda p: Lognormal(mu=p[0], sigma=p[1])
        ),
        st.tuples(st.integers(1, 6), rates).map(lambda p: Erlang(stages=p[0], rate=p[1])),
        st.lists(rates, min_size=1, max_size=4).map(HypoExponential),
        st.floats(0.01, 20.0).map(Deterministic),
        st.tuples(st.floats(0.0, 5.0), st.floats(0.1, 5.0)).map(
            lambda p: Uniform(p[0], p[0] + p[1])
        ),
    )


@settings(max_examples=80, deadline=None)
@given(dist=dist_strategy(), t=times)
def test_cdf_in_unit_interval(dist, t):
    value = float(np.asarray(dist.cdf(t)))
    assert -1e-9 <= value <= 1.0 + 1e-9


@settings(max_examples=80, deadline=None)
@given(dist=dist_strategy(), t1=times, t2=times)
def test_cdf_monotone(dist, t1, t2):
    lo, hi = min(t1, t2), max(t1, t2)
    assert float(np.asarray(dist.cdf(lo))) <= float(np.asarray(dist.cdf(hi))) + 1e-9


@settings(max_examples=80, deadline=None)
@given(dist=dist_strategy(), t=times)
def test_sf_complements_cdf(dist, t):
    cdf = float(np.asarray(dist.cdf(t)))
    sf = float(np.asarray(dist.sf(t)))
    assert abs(cdf + sf - 1.0) < 1e-9


@settings(max_examples=60, deadline=None)
@given(dist=dist_strategy())
def test_variance_non_negative(dist):
    assert dist.variance() >= -1e-9


@settings(max_examples=60, deadline=None)
@given(dist=dist_strategy())
def test_mean_positive(dist):
    assert dist.mean() >= 0.0


@settings(max_examples=60, deadline=None)
@given(dist=dist_strategy(), q=st.floats(min_value=0.01, max_value=0.99))
def test_ppf_inverts_cdf(dist, q):
    if isinstance(dist, Deterministic):
        return  # step CDF: ppf lands on the atom, cdf jumps past q
    t = float(np.asarray(dist.ppf(q)))
    assert abs(float(np.asarray(dist.cdf(t))) - q) < 1e-6


@settings(max_examples=60, deadline=None)
@given(
    mean=st.floats(min_value=0.1, max_value=50.0),
    cv2=st.floats(min_value=0.5, max_value=30.0),
)
def test_fit_two_moments_hits_targets(mean, cv2):
    d = fit_two_moments(mean, cv2)
    assert abs(d.mean() - mean) / mean < 1e-6
    assert abs(d.squared_cv() - cv2) / cv2 < 1e-5


@settings(max_examples=40, deadline=None)
@given(
    mean=st.floats(min_value=0.1, max_value=50.0),
    cv2=st.floats(min_value=0.01, max_value=0.5),
)
def test_fit_low_cv_preserves_mean(mean, cv2):
    d = fit_two_moments(mean, cv2)
    assert abs(d.mean() - mean) / mean < 1e-9
    assert d.squared_cv() <= cv2 + 1e-9
