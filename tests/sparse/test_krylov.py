"""Cross-backend agreement and error paths for the sparse solver kernels."""

import numpy as np
import pytest
from scipy import sparse

from repro.exceptions import ConvergenceError, SolverError
from repro.markov.fallback import solve_steady_state
from repro.markov.solvers import (
    solve_transient,
    gth_solve,
    transient_uniformization,
)
from repro.sparse import (
    augmented_system,
    steady_state_bicgstab,
    steady_state_gmres,
    steady_state_iterative,
    transient_krylov,
)


def birth_death(n=50, lam=0.4, mu=1.0):
    rows, cols, vals = [], [], []
    for k in range(n - 1):
        rows += [k, k + 1]
        cols += [k + 1, k]
        vals += [lam, mu]
    q = sparse.coo_matrix((vals, (rows, cols)), shape=(n, n)).tolil()
    diag = -np.asarray(q.sum(axis=1)).ravel()
    q.setdiag(diag)
    return q.tocsr()


class TestAugmentedSystem:
    def test_shapes_and_normalization_row(self):
        q = birth_death(10)
        a, b = augmented_system(q)
        assert a.shape == (10, 10)
        assert b[-1] == 1.0 and b[:-1].sum() == 0.0
        np.testing.assert_allclose(a.tocsr()[-1].toarray().ravel(), np.ones(10))

    def test_solution_of_augmented_system_is_pi(self):
        q = birth_death(20)
        a, b = augmented_system(q)
        pi = sparse.linalg.spsolve(a.tocsc(), b)
        np.testing.assert_allclose(np.abs(pi @ q).max(), 0.0, atol=1e-12)
        assert pi.sum() == pytest.approx(1.0)


class TestIterativeSteadyState:
    @pytest.mark.parametrize(
        "backend,preconditioner",
        [
            (steady_state_gmres, "jacobi"),
            (steady_state_gmres, "ilu"),
            (steady_state_gmres, "none"),
            (steady_state_bicgstab, "jacobi"),
            (steady_state_bicgstab, "ilu"),
        ],
    )
    def test_agrees_with_gth(self, backend, preconditioner):
        q = birth_death(80)
        exact = gth_solve(q.toarray())
        pi = backend(q, preconditioner=preconditioner)
        np.testing.assert_allclose(pi, exact, atol=1e-8)

    def test_unpreconditioned_bicgstab_breakdown_is_solver_error(self):
        # why "jacobi" is the default: bare BiCGSTAB can break down on
        # the augmented system, and the breakdown must surface as a
        # stage-failing SolverError (not a silent wrong vector)
        with pytest.raises(SolverError, match="broke down"):
            steady_state_bicgstab(birth_death(80), preconditioner="none")

    def test_unknown_method_rejected(self):
        with pytest.raises(SolverError, match="method"):
            steady_state_iterative(birth_death(5), method="cg")

    def test_unknown_preconditioner_rejected(self):
        with pytest.raises(SolverError, match="preconditioner"):
            steady_state_iterative(birth_death(5), preconditioner="amg")

    def test_convergence_error_on_iteration_cap(self):
        q = birth_death(200, lam=0.999, mu=1.0)
        with pytest.raises(ConvergenceError):
            steady_state_iterative(
                q, method="gmres", max_iterations=1, restart=1, preconditioner="none"
            )

    def test_registered_in_front_door(self):
        q = birth_death(40)
        exact = gth_solve(q.toarray())
        for method in ("gmres", "bicgstab"):
            report = solve_steady_state(q, method=method)
            assert report.method == method
            np.testing.assert_allclose(report.pi, exact, atol=1e-8)

    def test_auto_selects_iterative_above_limit(self):
        q = birth_death(30)
        report = solve_steady_state(q, iterative_limit=20)
        assert report.method == "gmres"  # the winning stage
        assert report.attempts[0].method == "gmres"


class TestKrylovTransient:
    def test_agrees_with_uniformization(self):
        q = birth_death(60)
        p0 = np.zeros(60)
        p0[0] = 1.0
        ts = np.array([0.1, 1.0, 10.0])
        uni = transient_uniformization(q, p0, ts)
        kry = transient_krylov(q, p0, ts)
        np.testing.assert_allclose(kry, uni, atol=1e-9)

    def test_unsorted_times_returned_in_input_order(self):
        q = birth_death(20)
        p0 = np.zeros(20)
        p0[0] = 1.0
        shuffled = np.array([5.0, 0.5, 2.0])
        out = transient_krylov(q, p0, shuffled)
        ordered = transient_krylov(q, p0, np.sort(shuffled))
        np.testing.assert_allclose(out[0], ordered[2], atol=1e-12)
        np.testing.assert_allclose(out[1], ordered[0], atol=1e-12)

    def test_time_zero_is_initial(self):
        q = birth_death(10)
        p0 = np.zeros(10)
        p0[3] = 1.0
        out = transient_krylov(q, p0, [0.0])
        np.testing.assert_allclose(out[0], p0)

    def test_negative_times_rejected(self):
        q = birth_death(5)
        with pytest.raises(SolverError, match="non-negative"):
            transient_krylov(q, np.eye(5)[0], [-1.0])

    def test_bad_initial_shape_rejected(self):
        q = birth_death(5)
        with pytest.raises(SolverError, match="shape"):
            transient_krylov(q, np.ones(3), [1.0])

    def test_front_door_method_and_alias(self):
        q = birth_death(30)
        p0 = np.eye(30)[0]
        ts = np.array([1.0, 4.0])
        direct = transient_krylov(q, p0, ts)
        for method in ("krylov", "expm_multiply"):
            out = solve_transient(q, p0, ts, method=method)
            np.testing.assert_allclose(out, direct, atol=1e-12)

    def test_rows_remain_distributions(self):
        q = birth_death(40)
        out = transient_krylov(q, np.eye(40)[0], [0.5, 5.0, 50.0])
        np.testing.assert_allclose(out.sum(axis=1), 1.0, atol=1e-9)
        assert out.min() > -1e-12
