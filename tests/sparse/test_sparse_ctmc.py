"""Unit tests for :class:`repro.sparse.SparseCTMC`."""

import numpy as np
import pytest
from scipy import sparse

from repro.exceptions import ModelDefinitionError, SolverError
from repro.markov.ctmc import CTMC
from repro.sparse import SparseCTMC


def two_state(lam=1e-3, mu=0.1):
    q = sparse.csr_matrix(np.array([[-lam, lam], [mu, -mu]]))
    return SparseCTMC(
        q, labels=["up", "down"], up=np.array([True, False])
    )


def dict_two_state(lam=1e-3, mu=0.1):
    return CTMC().add_transition("up", "down", lam).add_transition("down", "up", mu)


class TestConstruction:
    def test_non_square_rejected(self):
        with pytest.raises(ModelDefinitionError, match="square"):
            SparseCTMC(sparse.csr_matrix(np.zeros((2, 3))))

    def test_label_count_mismatch_rejected(self):
        q = sparse.identity(3) * 0.0
        with pytest.raises(ModelDefinitionError, match="labels"):
            SparseCTMC(q, labels=["a", "b"])

    def test_bad_initial_rejected(self):
        q = two_state().generator()
        with pytest.raises(ModelDefinitionError, match="probability"):
            SparseCTMC(q, initial=np.array([0.7, 0.7]))
        with pytest.raises(ModelDefinitionError, match="shape"):
            SparseCTMC(q, initial=np.array([1.0]))

    def test_bad_up_mask_shape_rejected(self):
        q = two_state().generator()
        with pytest.raises(ModelDefinitionError, match="up mask"):
            SparseCTMC(q, up=np.array([True]))

    def test_structure_properties(self):
        chain = two_state()
        assert chain.n_states == 2
        assert chain.nnz == 4
        assert list(chain.states) == ["up", "down"]
        assert chain.index_of("down") == 1
        with pytest.raises(ModelDefinitionError, match="unknown state label"):
            chain.index_of("nope")

    def test_unlabeled_states_are_indices(self):
        chain = SparseCTMC(two_state().generator())
        assert list(chain.states) == [0, 1]
        assert chain.index_of(1) == 1
        with pytest.raises(ModelDefinitionError, match="out of range"):
            chain.index_of(5)

    def test_default_initial_mass_on_state_zero(self):
        p0 = two_state().initial_vector
        assert p0[0] == 1.0 and p0.sum() == 1.0


class TestSolving:
    def test_steady_state_matches_analytic(self):
        lam, mu = 1e-3, 0.1
        pi = two_state(lam, mu).steady_state()
        assert pi == pytest.approx([mu / (lam + mu), lam / (lam + mu)], rel=1e-10)

    def test_steady_state_report_carries_method(self):
        report = two_state().steady_state_report()
        assert report.method == "gth"  # auto lands on GTH for 2 states
        assert report.pi.shape == (2,)

    def test_explicit_method_routes_through_registry(self):
        chain = two_state()
        auto = chain.steady_state()
        for method in ("gth", "direct", "power", "gmres", "bicgstab"):
            assert chain.steady_state(method=method) == pytest.approx(auto, abs=1e-9)

    def test_transient_matches_dict_ctmc(self):
        ts = [0.0, 1.0, 10.0]
        probs = two_state().transient(ts)
        expected = dict_two_state().transient(ts, {"up": 1.0})
        np.testing.assert_allclose(probs, expected, atol=1e-10)

    def test_scalar_time_yields_vector(self):
        out = two_state().transient(1.0)
        assert out.shape == (2,)

    def test_transient_krylov_method(self):
        chain = two_state()
        uni = chain.transient([1.0, 5.0], method="uniformization")
        kry = chain.transient([1.0, 5.0], method="krylov")
        np.testing.assert_allclose(kry, uni, atol=1e-9)


class TestRewards:
    def test_probability_and_expected_reward(self):
        chain = two_state()
        pi = chain.steady_state()
        assert chain.probability("up") == pytest.approx(pi[0])
        assert chain.probability(["up", "down"]) == pytest.approx(1.0)
        assert chain.expected_reward(np.array([1.0, 0.0])) == pytest.approx(pi[0])

    def test_reward_shape_mismatch_rejected(self):
        with pytest.raises(ModelDefinitionError, match="reward vector"):
            two_state().expected_reward(np.ones(3))

    def test_availability_needs_up_mask(self):
        chain = SparseCTMC(two_state().generator())
        with pytest.raises(ModelDefinitionError, match="up mask"):
            chain.availability()

    def test_availability_matches_probability(self):
        chain = two_state()
        assert chain.availability() == pytest.approx(chain.probability("up"))

    def test_callable_evaluator_protocol(self):
        chain = two_state()
        assert chain() == pytest.approx(chain.availability())
        assert chain({}) == pytest.approx(chain.availability())
        with pytest.raises(SolverError, match="empty"):
            chain({"lam": 2.0})


class TestConversions:
    def test_from_ctmc_round_trip(self):
        chain = SparseCTMC.from_ctmc(dict_two_state())
        assert list(chain.states) == ["up", "down"]
        pi_vec = chain.steady_state()
        pi_dict = dict_two_state().steady_state()
        assert pi_vec[0] == pytest.approx(pi_dict["up"], rel=1e-10)

    def test_to_ctmc_round_trip(self):
        back = two_state().to_ctmc()
        expected = dict_two_state().steady_state()
        got = back.steady_state()
        for label in ("up", "down"):
            assert got[label] == pytest.approx(expected[label], rel=1e-10)

    def test_to_ctmc_refuses_large(self):
        n = 10_001
        diag = sparse.diags([-1.0] * n)
        chain = SparseCTMC(diag + sparse.eye(n, k=1) * 0)
        with pytest.raises(ModelDefinitionError, match="refusing"):
            chain.to_ctmc()
