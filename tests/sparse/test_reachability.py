"""Lazy CSR reachability vs the eager dict-built path.

The load-bearing contract: ``lazy=True`` replicates the eager BFS
exactly — same state order, same triplet order, hence *bit-identical*
CSR generators — on every SRN shape the library ships (plain timed
nets, marking-dependent rates, immediate transitions with vanishing
elimination, guards and inhibitors).
"""

import numpy as np
import pytest

from repro.exceptions import ModelDefinitionError, StateSpaceError
from repro.petrinet import PetriNet, StochasticRewardNet
from repro.petrinet.reachability import build_reachability
from repro.petrinet.templates import (
    machine_repairman,
    queue_with_breakdowns,
    redundant_pool_with_coverage,
)
from repro.sparse import SparseCTMC, build_sparse_reachability


def mm1k(K=5, lam=2.0, mu=3.0):
    net = PetriNet()
    net.add_place("queue", 0)
    net.add_timed_transition("arrive", rate=lam)
    net.add_output_arc("arrive", "queue")
    net.add_inhibitor_arc("arrive", "queue", K)
    net.add_timed_transition("serve", rate=mu)
    net.add_input_arc("serve", "queue")
    return net


def nfv_default():
    from repro.casestudies.nfvchain import NFVChainSpec, build_nfv_net

    return build_nfv_net(NFVChainSpec())


#: every SRN case-study shape in the library, one net builder each
CASE_STUDIES = {
    "mm1k": mm1k,
    "machine_repairman": lambda: machine_repairman(4, 0.1, 1.0, n_crews=2),
    "coverage_pool": lambda: redundant_pool_with_coverage(3, 0.01, 0.5, 0.95, 0.2),
    "queue_breakdowns": lambda: queue_with_breakdowns(5, 1.0, 2.0, 0.01, 0.5),
    "nfvchain": nfv_default,
}


@pytest.mark.parametrize("name", sorted(CASE_STUDIES))
class TestLazyEagerEquality:
    def test_generator_bit_identical(self, name):
        net = CASE_STUDIES[name]()
        eager = build_reachability(net, 200_000)
        lazy = build_reachability(net, 200_000, lazy=True)
        qe = eager.chain.generator().tocsr()
        ql = lazy.chain.generator().tocsr()
        qe.sort_indices()
        ql.sort_indices()
        assert qe.shape == ql.shape
        assert qe.indptr.tobytes() == ql.indptr.tobytes()
        assert qe.indices.tobytes() == ql.indices.tobytes()
        assert qe.data.tobytes() == ql.data.tobytes()

    def test_state_order_and_counts_match(self, name):
        net = CASE_STUDIES[name]()
        eager = build_reachability(net, 200_000)
        lazy = build_reachability(net, 200_000, lazy=True)
        assert len(lazy.tangible) == len(eager.tangible)
        assert lazy.n_vanishing == eager.n_vanishing
        assert list(lazy.chain.states) == list(eager.chain.states)

    def test_steady_state_measures_agree(self, name):
        net = CASE_STUDIES[name]()
        eager_srn = StochasticRewardNet(net)
        lazy_srn = StochasticRewardNet(net, lazy=True)
        pi_dict = eager_srn.steady_state()
        pi_vec = lazy_srn.steady_state()
        order = list(lazy_srn.chain.states)
        np.testing.assert_allclose(
            pi_vec, [pi_dict[m] for m in order], atol=1e-10
        )


class TestLazyMode:
    def test_lazy_yields_sparse_ctmc(self):
        result = build_reachability(mm1k(), 1000, lazy=True)
        assert isinstance(result.chain, SparseCTMC)

    def test_lazy_options_without_lazy_rejected(self):
        with pytest.raises(ModelDefinitionError, match="lazy=True"):
            StochasticRewardNet(mm1k(), memory_limit_mb=64.0)

    def test_max_markings_guard(self):
        with pytest.raises(StateSpaceError):
            build_sparse_reachability(mm1k(K=50), max_markings=10)

    def test_memory_guard_fires(self):
        from repro.casestudies.nfvchain import NFVChainSpec, build_nfv_net

        big = build_nfv_net(NFVChainSpec(n_vnfs=5, replicas=6))
        with pytest.raises(StateSpaceError, match="memory"):
            build_sparse_reachability(big, memory_limit_mb=0.05, chunk=512)

    def test_up_predicate_becomes_mask(self):
        net = machine_repairman(3, 0.1, 1.0)
        result = build_sparse_reachability(net, up=lambda m: m["up"] >= 2)
        chain = result.chain
        assert chain.up_mask is not None
        expected = [m["up"] >= 2 for m in chain.states]
        assert chain.up_mask.tolist() == expected

    def test_labels_materialize_lazily_and_index(self):
        result = build_reachability(mm1k(K=3), 1000, lazy=True)
        chain = result.chain
        first = chain.states[0]
        assert first["queue"] == 0
        assert chain.index_of(first) == 0

    def test_initial_distribution_on_interned_states(self):
        result = build_reachability(mm1k(K=3), 1000, lazy=True)
        p0 = result.chain.initial_vector
        assert p0.sum() == pytest.approx(1.0)
        assert p0[0] == pytest.approx(1.0)


class TestLazySRNMeasures:
    def test_expected_tokens_matches_eager(self):
        net = mm1k()
        eager = StochasticRewardNet(net).expected_tokens("queue")
        lazy = StochasticRewardNet(net, lazy=True).expected_tokens("queue")
        assert lazy == pytest.approx(eager, rel=1e-10)

    def test_throughput_matches_eager(self):
        net = queue_with_breakdowns(5, 1.0, 2.0, 0.01, 0.5)
        eager = StochasticRewardNet(net).throughput("serve")
        lazy = StochasticRewardNet(net, lazy=True).throughput("serve")
        assert lazy == pytest.approx(eager, rel=1e-10)

    def test_mean_time_to_matches_eager(self):
        net = machine_repairman(3, 0.1, 1.0)
        cond = lambda m: m["up"] == 0  # noqa: E731
        eager = StochasticRewardNet(net).mean_time_to(cond)
        lazy = StochasticRewardNet(net, lazy=True).mean_time_to(cond)
        assert lazy == pytest.approx(eager, rel=1e-8)

    def test_transient_reward_matches_eager(self):
        net = mm1k()
        ts = [0.5, 2.0]
        eager = StochasticRewardNet(net).transient_reward_rate(
            lambda m: float(m["queue"]), ts
        )
        lazy = StochasticRewardNet(net, lazy=True).transient_reward_rate(
            lambda m: float(m["queue"]), ts
        )
        np.testing.assert_allclose(lazy, eager, atol=1e-9)
