"""CompiledStructureFunction: one lowering, vectorized bit-identical sweeps."""

import pickle
import struct

import numpy as np
import pytest

from repro.compile import CompiledStructureFunction
from repro.exceptions import ModelDefinitionError
from repro.nonstate.components import Component
from repro.nonstate.faulttree import AndGate, BasicEvent, FaultTree, KofNGate, OrGate
from repro.nonstate.rbd import ReliabilityBlockDiagram, k_of_n, parallel, series


def bits(x) -> bytes:
    return struct.pack("<d", float(x))


def comp(name: str) -> Component:
    return Component.fixed(name, 0.01)


def tree_rbd() -> ReliabilityBlockDiagram:
    """Series / parallel / k-of-n mix without repeated components."""
    return ReliabilityBlockDiagram(
        series(
            comp("a"),
            parallel(comp("b"), comp("c")),
            k_of_n(2, comp("d"), comp("e"), comp("f")),
        )
    )


def repeated_rbd() -> ReliabilityBlockDiagram:
    """Repeated component 'shared' forces the BDD path."""
    shared = comp("shared")
    return ReliabilityBlockDiagram(
        parallel(series(shared, comp("x")), series(shared, comp("y")))
    )


def probe_points(names, n_points, seed=11):
    rng = np.random.default_rng(seed)
    return [
        {name: float(p) for name, p in zip(names, row)}
        for row in rng.uniform(0.05, 0.999, size=(n_points, len(names)))
    ]


class TestTreeMode:
    def test_single_point_bit_identical(self):
        rbd = tree_rbd()
        sf = CompiledStructureFunction.from_rbd(rbd)
        for p_up in probe_points(sf.names, 25):
            assert bits(sf.prob(p_up)) == bits(rbd.system_up_probability(p_up))

    def test_vectorized_matrix_matches_loop(self):
        rbd = tree_rbd()
        sf = CompiledStructureFunction.from_rbd(rbd)
        points = probe_points(sf.names, 40)
        P = np.array([[p[name] for name in sf.names] for p in points])
        vec = sf.evaluate(P)
        for k, p_up in enumerate(points):
            assert bits(vec[k]) == bits(rbd.system_up_probability(p_up))

    def test_missing_component_message_matches(self):
        rbd = tree_rbd()
        sf = CompiledStructureFunction.from_rbd(rbd)
        partial = {"a": 0.9, "d": 0.9}
        with pytest.raises(ModelDefinitionError) as compiled_exc:
            sf.prob(partial)
        with pytest.raises(ModelDefinitionError) as uncompiled_exc:
            rbd.system_up_probability(partial)
        assert str(compiled_exc.value) == str(uncompiled_exc.value)


class TestBDDMode:
    def test_repeated_components_bit_identical(self):
        rbd = repeated_rbd()
        sf = CompiledStructureFunction.from_rbd(rbd)
        assert rbd.has_repeated_components
        for p_up in probe_points(sf.names, 25):
            assert bits(sf.prob(p_up)) == bits(rbd.system_up_probability(p_up))

    def test_vectorized_matches_loop(self):
        rbd = repeated_rbd()
        sf = CompiledStructureFunction.from_rbd(rbd)
        points = probe_points(sf.names, 30)
        P = np.array([[p[name] for name in sf.names] for p in points])
        vec = sf.evaluate(P)
        for k, p_up in enumerate(points):
            assert bits(vec[k]) == bits(rbd.system_up_probability(p_up))

    def test_missing_component_message_matches(self):
        rbd = repeated_rbd()
        sf = CompiledStructureFunction.from_rbd(rbd)
        partial = {"shared": 0.9}
        with pytest.raises(ModelDefinitionError) as compiled_exc:
            sf.prob(partial)
        with pytest.raises(ModelDefinitionError) as uncompiled_exc:
            rbd.system_up_probability(partial)
        assert str(compiled_exc.value) == str(uncompiled_exc.value)


class TestFaultTree:
    def build(self) -> FaultTree:
        # A repeated basic event must be the *same* object in both gates.
        power = BasicEvent.fixed("power", 0.01)
        pump_a = BasicEvent.fixed("pump_a", 0.05)
        pump_b = BasicEvent.fixed("pump_b", 0.05)
        valve = BasicEvent.fixed("valve", 0.02)
        top = OrGate(
            [
                AndGate([power, pump_a]),
                AndGate([power, pump_b]),
                KofNGate(2, [pump_a, pump_b, valve]),
            ]
        )
        return FaultTree(top)

    def test_top_event_bit_identical(self):
        tree = self.build()
        sf = CompiledStructureFunction.from_fault_tree(tree)
        assert sf.kind == "event"
        for q in probe_points(sf.names, 25, seed=5):
            assert bits(sf.prob(q)) == bits(tree.top_event_probability(q))

    def test_missing_variable_message_matches(self):
        tree = self.build()
        sf = CompiledStructureFunction.from_fault_tree(tree)
        partial = {"power": 0.1}
        with pytest.raises(ModelDefinitionError) as compiled_exc:
            sf.prob(partial)
        with pytest.raises(ModelDefinitionError) as uncompiled_exc:
            tree.top_event_probability(partial)
        assert str(compiled_exc.value) == str(uncompiled_exc.value)


class TestContract:
    def test_wrong_shape_rejected(self):
        sf = CompiledStructureFunction.from_rbd(tree_rbd())
        with pytest.raises(ModelDefinitionError, match="matrix"):
            sf.evaluate(np.ones((4, 2)))
        with pytest.raises(ModelDefinitionError, match="matrix"):
            sf.evaluate(np.ones(6))

    def test_exactly_one_program_required(self):
        with pytest.raises(ModelDefinitionError, match="exactly one"):
            CompiledStructureFunction(["a"])

    def test_pickle_roundtrip(self):
        for build in (tree_rbd, repeated_rbd):
            rbd = build()
            sf = CompiledStructureFunction.from_rbd(rbd)
            clone = pickle.loads(pickle.dumps(sf))
            for p_up in probe_points(sf.names, 5, seed=3):
                assert bits(clone.prob(p_up)) == bits(rbd.system_up_probability(p_up))
