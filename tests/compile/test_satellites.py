"""Satellite changes riding with the compile PR.

* the fallback chain validates the generator exactly once and records
  it on the :class:`~repro.markov.SolverReport`;
* Poisson truncation points are memoized on ``(λt, tol)``;
* ``CTMC.generator()`` assembles from incrementally maintained COO
  buffers that survive build-modify-build cycles.
"""

import numpy as np
import pytest

from repro.markov.ctmc import CTMC
from repro.markov.fallback import solve_steady_state
from repro.markov.solvers import _truncation_point_cached, poisson_truncation_point


def two_state_q():
    return np.array([[-1.0, 1.0], [2.0, -2.0]])


class TestValidateOnce:
    def test_report_records_single_validation(self):
        report = solve_steady_state(two_state_q())
        assert report.ok
        assert report.validations == 1
        assert report.validation_seconds >= 0.0

    def test_to_dict_carries_validation_fields(self):
        payload = solve_steady_state(two_state_q()).to_dict()
        assert payload["validations"] == 1
        assert payload["validation_seconds"] >= 0.0

    @pytest.mark.parametrize("method", ["gth", "direct", "power"])
    def test_single_stage_methods_still_solve(self, method):
        report = solve_steady_state(two_state_q(), method=method)
        assert report.ok and report.method == method
        assert report.validations == 1

    def test_validated_stages_match_unvalidated(self):
        from repro.markov.solvers import (
            gth_solve,
            steady_state_direct,
            steady_state_power,
        )

        q = two_state_q()
        assert gth_solve(q, validated=True).tobytes() == gth_solve(q).tobytes()
        assert (
            steady_state_direct(q, validated=True).tobytes()
            == steady_state_direct(q).tobytes()
        )
        assert (
            steady_state_power(q, validated=True).tobytes()
            == steady_state_power(q).tobytes()
        )


class TestTruncationMemo:
    def test_cached_value_matches_direct_walk(self):
        _truncation_point_cached.cache_clear()
        for lam_t, tol in [(0.5, 1e-10), (25.0, 1e-12), (400.0, 1e-8)]:
            assert _truncation_point_cached(lam_t, tol) == poisson_truncation_point(
                lam_t, tol
            )

    def test_repeat_calls_hit_the_cache(self):
        _truncation_point_cached.cache_clear()
        _truncation_point_cached(30.0, 1e-10)
        before = _truncation_point_cached.cache_info()
        _truncation_point_cached(30.0, 1e-10)
        after = _truncation_point_cached.cache_info()
        assert after.hits == before.hits + 1
        assert after.misses == before.misses

    def test_failures_are_not_cached(self):
        from repro.exceptions import SolverError

        _truncation_point_cached.cache_clear()
        with pytest.raises(SolverError):
            poisson_truncation_point(1e6, 1e-12, limit=3)
        assert _truncation_point_cached.cache_info().currsize == 0

    def test_transient_sweep_reuses_truncation(self):
        _truncation_point_cached.cache_clear()
        chain = CTMC()
        chain.add_transition("up", "down", 1e-3)
        chain.add_transition("down", "up", 0.1)
        for coverage in (0.9, 0.95, 0.99):  # rates identical across points
            _ = coverage
            chain.transient(times=[10.0, 100.0], initial="up")
        info = _truncation_point_cached.cache_info()
        assert info.hits >= info.misses  # later sweep points were dict hits


class TestGeneratorCOOBuffers:
    def test_build_modify_build_matches_fresh_chain(self):
        chain = CTMC()
        chain.add_transition("a", "b", 0.5)
        chain.add_transition("b", "a", 1.5)
        first = chain.generator().toarray()
        chain.add_transition("a", "c", 0.25)
        chain.add_transition("c", "a", 2.0)
        second = chain.generator().toarray()

        fresh = CTMC()
        fresh.add_transition("a", "b", 0.5)
        fresh.add_transition("b", "a", 1.5)
        fresh.add_transition("a", "c", 0.25)
        fresh.add_transition("c", "a", 2.0)
        assert np.array_equal(second, fresh.generator().toarray())
        assert first.shape == (2, 2) and second.shape == (3, 3)

    def test_accumulating_duplicates_updates_single_slot(self):
        chain = CTMC()
        chain.add_transition("a", "b", 0.5)
        chain.add_transition("b", "a", 1.0)
        chain.generator()
        chain.add_transition("a", "b", 0.25)  # accumulate onto existing slot
        q = chain.generator()
        assert q.nnz <= 4  # one slot per (i, j) pair plus diagonal
        assert q.toarray()[0, 1] == 0.5 + 0.25
        assert chain.rate("a", "b") == 0.5 + 0.25

    def test_generator_cache_invalidation(self):
        chain = CTMC()
        chain.add_transition("a", "b", 1.0)
        chain.add_transition("b", "a", 1.0)
        q1 = chain.generator()
        assert chain.generator() is q1  # cached
        chain.add_transition("a", "b", 1.0)
        q2 = chain.generator()
        assert q2 is not q1
        assert q2.toarray()[0, 1] == 2.0
