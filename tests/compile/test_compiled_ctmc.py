"""CompiledCTMC: frozen structure, bit-identical fills and solves.

Every test here asserts *exact* (bitwise) equality against the
uncompiled :class:`repro.CTMC` route — compilation is a performance
decision, never a numerical one.
"""

import pickle
import struct

import numpy as np
import pytest

from repro.compile import CompiledCTMC
from repro.compile.ctmc import Complement, Const, Param, Scaled, Times
from repro.exceptions import DistributionError, ModelDefinitionError, SolverError
from repro.markov.ctmc import CTMC
from repro.markov.solvers import solve_transient


def bits(x) -> bytes:
    return struct.pack("<d", float(x))


def build_pair(lam: float, mu: float) -> CTMC:
    """2-unit redundant pair, shared repair — states added as [2, 1, 0]."""
    chain = CTMC()
    chain.add_transition(2, 1, 2.0 * lam)
    chain.add_transition(1, 0, lam)
    chain.add_transition(1, 2, mu)
    chain.add_transition(0, 1, mu)
    return chain


def compiled_pair() -> CompiledCTMC:
    return CompiledCTMC(
        [2, 1, 0],
        [
            (0, 1, Scaled(2.0, "lam")),
            (1, 2, Param("lam")),
            (1, 0, Param("mu")),
            (2, 1, Param("mu")),
        ],
    )


POINTS = [
    {"lam": 1e-3, "mu": 0.25},
    {"lam": 7.3e-5, "mu": 0.5},
    {"lam": 0.9, "mu": 1.1},
]


class TestFill:
    def test_fill_matches_uncompiled_generator(self):
        cc = compiled_pair()
        for values in POINTS:
            dense = cc.fill(values)
            reference = build_pair(**values).generator().toarray()
            assert np.array_equal(dense, reference)

    def test_csr_generator_matches_uncompiled(self):
        cc = compiled_pair()
        for values in POINTS:
            q = cc.generator(values)
            ref = build_pair(**values).generator()
            assert np.array_equal(q.toarray(), ref.toarray())

    def test_duplicate_transitions_accumulate_in_order(self):
        chain = CTMC()
        chain.add_transition("a", "b", 0.3)
        chain.add_transition("a", "b", 0.4)
        chain.add_transition("b", "a", 1.0)
        cc = CompiledCTMC(
            ["a", "b"],
            [(0, 1, Const(0.3)), (0, 1, Const(0.4)), (1, 0, Const(1.0))],
        )
        assert np.array_equal(cc.fill({}), chain.generator().toarray())

    def test_fill_buffer_is_reused(self):
        cc = compiled_pair()
        first = cc.fill(POINTS[0])
        second = cc.fill(POINTS[1])
        assert first is second  # same preallocated workspace


class TestSolve:
    @pytest.mark.parametrize("method", ["gth", "direct", "power"])
    def test_steady_state_bit_identical(self, method):
        cc = compiled_pair()
        for values in POINTS:
            pi = cc.steady_state(values, method=method)
            reference = build_pair(**values).steady_state(method=method)
            for state in (2, 1, 0):
                assert bits(pi[cc.index_of(state)]) == bits(reference[state]), (
                    method,
                    values,
                    state,
                )

    def test_direct_pattern_reused_across_points(self):
        cc = compiled_pair()
        cc.steady_state(POINTS[0], method="direct")
        pattern = cc._direct_pattern
        cc.steady_state(POINTS[1], method="direct")
        assert cc._direct_pattern is pattern

    def test_direct_matches_reference_route(self):
        cc = compiled_pair()
        for values in POINTS:
            fast = cc.steady_state(values, method="direct")
            slow = cc.steady_state_direct_reference(values)
            assert fast.tobytes() == slow.tobytes()

    def test_unknown_method_raises(self):
        with pytest.raises(SolverError, match="unknown steady-state method"):
            compiled_pair().steady_state(POINTS[0], method="qr")

    def test_transient_bit_identical(self):
        cc = compiled_pair()
        times = np.array([0.0, 1.0, 10.0, 100.0])
        for values in POINTS:
            got = cc.transient(values, times, initial=2)
            chain = build_pair(**values)
            p0 = np.zeros(3)
            p0[chain.index_of(2)] = 1.0
            ref = solve_transient(chain.generator(), p0, times)
            assert got.tobytes() == ref.tobytes()


class TestErrors:
    @pytest.mark.parametrize("bad", [-1.0, float("nan"), float("inf"), np.float64(-2.5)])
    def test_bad_rate_message_matches_add_transition(self, bad):
        cc = CompiledCTMC(["a", "b"], [(0, 1, Param("lam")), (1, 0, Const(1.0))])
        with pytest.raises(DistributionError) as compiled_exc:
            cc.fill({"lam": bad})
        with pytest.raises(DistributionError) as uncompiled_exc:
            CTMC().add_transition("a", "b", bad)
        assert str(compiled_exc.value) == str(uncompiled_exc.value)

    def test_self_loop_rejected(self):
        with pytest.raises(ModelDefinitionError, match="self-loops"):
            CompiledCTMC(["a", "b"], [(0, 0, Const(1.0))])

    def test_out_of_range_transition_rejected(self):
        with pytest.raises(ModelDefinitionError, match="outside"):
            CompiledCTMC(["a", "b"], [(0, 2, Const(1.0))])

    def test_duplicate_states_rejected(self):
        with pytest.raises(ModelDefinitionError, match="duplicate state labels"):
            CompiledCTMC(["a", "a"], [])

    def test_unknown_state_label(self):
        with pytest.raises(ModelDefinitionError, match="unknown state"):
            compiled_pair().index_of("nope")


class TestStructure:
    def test_from_ctmc_freezes_exact_generator(self):
        chain = build_pair(lam=2e-4, mu=0.125)
        cc = CompiledCTMC.from_ctmc(chain)
        assert cc.states == (2, 1, 0)
        assert np.array_equal(cc.fill({}), chain.generator().toarray())
        pi = cc.steady_state({})
        ref = chain.steady_state()
        for state in (2, 1, 0):
            assert bits(pi[cc.index_of(state)]) == bits(ref[state])

    def test_parameters_in_first_use_order(self):
        cc = CompiledCTMC(
            ["a", "b", "c"],
            [
                (0, 1, Times(Param("lam"), Complement(Param("c")))),
                (1, 2, Scaled(3.0, "mu")),
                (2, 0, Param("lam")),
            ],
        )
        assert cc.parameters() == ("lam", "c", "mu")

    def test_pickle_roundtrip_bit_identical(self):
        cc = compiled_pair()
        cc.steady_state(POINTS[0])  # warm the thread-local workspace
        clone = pickle.loads(pickle.dumps(cc))
        for values in POINTS:
            assert (
                clone.steady_state(values).tobytes()
                == compiled_pair().steady_state(values).tobytes()
            )

    def test_n_states(self):
        assert compiled_pair().n_states == 3


class TestSolveMemo:
    def test_hit_returns_the_same_bits(self):
        cc = compiled_pair()
        first = cc.steady_state_cached(POINTS[0])
        again = cc.steady_state_cached(POINTS[0])
        assert again is first  # memo shares the array
        assert first.tobytes() == cc.steady_state(POINTS[0]).tobytes()

    def test_distinct_points_get_distinct_entries(self):
        cc = compiled_pair()
        a = cc.steady_state_cached(POINTS[0])
        b = cc.steady_state_cached(POINTS[1])
        assert a.tobytes() != b.tobytes()
        assert cc.memoized(POINTS[0]) and cc.memoized(POINTS[1])

    def test_validate_matches_fill_errors(self):
        cc = compiled_pair()
        bad = {"lam": -1.0, "mu": 0.5}
        with pytest.raises(DistributionError) as fill_exc:
            cc.fill(bad)
        with pytest.raises(DistributionError) as validate_exc:
            cc.validate(bad)
        assert str(validate_exc.value) == str(fill_exc.value)

    def test_failures_are_never_cached(self):
        cc = compiled_pair()
        bad = {"lam": -1.0, "mu": 0.5}
        for _ in range(2):  # second call must raise again, not hit a memo
            with pytest.raises(DistributionError):
                cc.steady_state_cached(bad)
        assert not cc._memo

    def test_memo_dropped_on_pickle(self):
        cc = compiled_pair()
        cc.steady_state_cached(POINTS[0])
        clone = pickle.loads(pickle.dumps(cc))
        assert clone._memo == {}
        assert (
            clone.steady_state_cached(POINTS[0]).tobytes()
            == cc.steady_state_cached(POINTS[0]).tobytes()
        )

    def test_memo_bounded(self):
        cc = compiled_pair()
        cc._MEMO_LIMIT = 4
        for k in range(10):
            cc.steady_state_cached({"lam": 1e-3 * (k + 1), "mu": 0.25})
        assert len(cc._memo) <= 4
