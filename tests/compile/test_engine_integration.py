"""Engine auto-compilation: substitution is invisible except in speed.

Across Serial/Thread/Process, with and without the cache and a fault
policy, a batch over a case-study evaluator must produce the same bits
— and the same ErrorRecords — whether or not the engine swapped in the
compiled form.
"""

import math
import pickle
import struct

import numpy as np
import pytest

from repro.casestudies import bladecenter, sun
from repro.compile import compile_model
from repro.core import propagate_uncertainty, tornado_sensitivity
from repro.distributions import Lognormal
from repro.engine import (
    EngineOptions,
    EvaluationCache,
    GridCampaign,
    evaluate_batch,
    run_campaign,
)
from repro.engine.executors import _ShippedEvaluator
from repro.exceptions import ModelDefinitionError
from repro.obs import Tracer, activate_tracer
from repro.robust import FaultPolicy


def bits(values) -> list:
    return [b"nan" if math.isnan(v) else struct.pack("<d", float(v)) for v in values]


POINTS = [{"disk_failure_rate": 1e-5 * (1.0 + 0.07 * k)} for k in range(10)]

EXECUTORS = [None, "thread", "process"]
IDS = ["serial", "thread", "process"]


@pytest.fixture(scope="module")
def reference():
    return bits(
        evaluate_batch(bladecenter.evaluate_availability, POINTS, compile=False).outputs
    )


class TestSubstitution:
    @pytest.mark.parametrize("executor", EXECUTORS, ids=IDS)
    @pytest.mark.parametrize("with_cache", [False, True], ids=["nocache", "cache"])
    def test_bit_identical_across_executors(self, executor, with_cache, reference):
        result = evaluate_batch(
            bladecenter.evaluate_availability,
            POINTS,
            executor=executor,
            n_jobs=1 if executor is None else 2,
            cache=EvaluationCache() if with_cache else None,
        )
        assert bits(result.outputs) == reference

    def test_compile_false_disables_substitution(self, reference):
        tracer = Tracer()
        with activate_tracer(tracer):
            result = evaluate_batch(
                bladecenter.evaluate_availability, POINTS, compile=False
            )
        assert bits(result.outputs) == reference
        assert "engine.compiled_batches" not in str(tracer.metrics.to_dict())

    def test_compile_true_forces_substitution(self, reference):
        tracer = Tracer()
        with activate_tracer(tracer):
            result = evaluate_batch(
                bladecenter.evaluate_availability, POINTS, compile=True
            )
        assert bits(result.outputs) == reference
        snapshot = tracer.metrics.to_dict()
        assert any("engine.compiled_batches" in key for key in snapshot)

    def test_compile_true_without_compiled_form_raises(self):
        with pytest.raises(ModelDefinitionError, match="cannot compile"):
            evaluate_batch(lambda a: 1.0, [{}], compile=True)

    def test_compile_true_with_rng_raises(self):
        with pytest.raises(ModelDefinitionError, match="rng"):
            evaluate_batch(
                lambda a, rng: 1.0,
                [{}],
                rng=np.random.default_rng(0),
                compile=True,
            )

    def test_rng_skips_auto_compilation(self):
        # Stochastic evaluators are left alone even when auto mode is on.
        result = evaluate_batch(
            _stochastic, [{"x": 1.0}] * 4, rng=np.random.default_rng(3)
        )
        assert all(math.isfinite(v) for v in result.outputs)

    def test_precompiled_evaluator_accepted_directly(self, reference):
        compiled = compile_model(bladecenter.evaluate_availability)
        result = evaluate_batch(compiled, POINTS)
        assert bits(result.outputs) == reference

    def test_options_object_carries_compile(self, reference):
        opts = EngineOptions(compile=True)
        result = evaluate_batch(bladecenter.evaluate_availability, POINTS, options=opts)
        assert bits(result.outputs) == reference


def _stochastic(p, rng):
    return p["x"] + rng.normal()


class TestFaultPolicyParity:
    BAD_POINTS = [
        {"disk_failure_rate": 1e-5},
        {"disk_failure_rate": -1.0},
        {"disk_failure_rate": float("nan")},
        {"unknown_knob": 1.0},
        {"disk_failure_rate": 2e-5},
    ]

    @pytest.mark.parametrize("executor", EXECUTORS, ids=IDS)
    def test_error_records_match_uncompiled(self, executor):
        policy = FaultPolicy(on_error="skip")
        ref = evaluate_batch(
            bladecenter.evaluate_availability,
            self.BAD_POINTS,
            policy=policy,
            compile=False,
        )
        got = evaluate_batch(
            bladecenter.evaluate_availability,
            self.BAD_POINTS,
            policy=policy,
            executor=executor,
            n_jobs=1 if executor is None else 2,
        )
        assert bits(got.outputs) == bits(ref.outputs)
        assert len(got.errors) == len(ref.errors) == 3
        for mine, theirs in zip(got.errors, ref.errors):
            assert mine.index == theirs.index
            assert mine.error_type == theirs.error_type
            assert mine.message == theirs.message


class TestShipOnce:
    def test_placeholder_pickles_without_evaluator(self):
        compiled = compile_model(bladecenter.evaluate_availability)
        placeholder = _ShippedEvaluator("ship-test", compiled)
        payload = pickle.dumps(placeholder)
        # The placeholder must not drag the compiled structure along.
        assert len(payload) < len(pickle.dumps(compiled))
        clone = pickle.loads(payload)
        assert clone._evaluate is None  # resolved via the worker registry

    def test_parent_side_placeholder_still_callable(self):
        compiled = compile_model(bladecenter.evaluate_availability)
        placeholder = _ShippedEvaluator("ship-test-2", compiled)
        # Broken-pool serial re-dispatch calls the parent-held instance.
        assert placeholder({}) == compiled({})

    def test_process_run_ships_once(self):
        tracer = Tracer()
        with activate_tracer(tracer):
            evaluate_batch(
                bladecenter.evaluate_availability,
                POINTS,
                executor="process",
                n_jobs=2,
            )
        snapshot = tracer.metrics.to_dict()
        shipped = [key for key in snapshot if "engine.shipped_evaluators" in key]
        assert shipped and snapshot[shipped[0]]["value"] == 1.0


class TestHigherLevelEntryPoints:
    PRIORS = {"disk_failure_rate": Lognormal.from_mean_cv(1e-5, cv=0.4)}

    def test_propagate_uncertainty_bit_identical(self):
        ref = propagate_uncertainty(
            bladecenter.evaluate_availability,
            self.PRIORS,
            n_samples=16,
            rng=np.random.default_rng(9),
            compile=False,
        )
        got = propagate_uncertainty(
            bladecenter.evaluate_availability,
            self.PRIORS,
            n_samples=16,
            rng=np.random.default_rng(9),
        )
        assert np.asarray(got.samples).tobytes() == np.asarray(ref.samples).tobytes()

    def test_tornado_bit_identical(self):
        ref = tornado_sensitivity(
            sun.evaluate_availability,
            {"coverage": Lognormal.from_mean_cv(0.99, cv=0.001)},
            compile=False,
        )
        got = tornado_sensitivity(
            sun.evaluate_availability,
            {"coverage": Lognormal.from_mean_cv(0.99, cv=0.001)},
        )
        assert bits(v for row in got for v in row[1:]) == bits(
            v for row in ref for v in row[1:]
        )

    def test_run_campaign_bit_identical(self):
        spec = GridCampaign({"disk_failure_rate": [1e-5, 2e-5, 4e-5]})
        ref = run_campaign(bladecenter.evaluate_availability, spec, compile=False)
        got = run_campaign(bladecenter.evaluate_availability, spec)
        assert bits(got.outputs) == bits(ref.outputs)
