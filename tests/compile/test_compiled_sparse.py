"""Compiled sparse sweeps: frozen-CSR refills, warm starts, wiring."""

import pickle

import numpy as np
import pytest

from repro.casestudies import nfvchain
from repro.casestudies.nfvchain import (
    NFVChainSpec,
    analytic_availability,
    compile_nfv_chain,
)
from repro.compile import (
    CompiledNFVChain,
    CompiledSparseCTMC,
    Scaled,
    compile_model,
    continuation_order,
    supports_compilation,
)
from repro.compile.ctmc import Param
from repro.exceptions import ModelDefinitionError, SolverError
from repro.obs import Tracer, activate_tracer
from repro.petrinet.templates import (
    machine_repairman,
    queue_with_breakdowns,
    redundant_pool_with_coverage,
)
from repro.sparse.reachability import build_sparse_reachability


def _repairman_case():
    net = machine_repairman(6, failure_rate=0.01, repair_rate=1.0, n_crews=2)

    def terms(tr, m):
        if tr.name == "fail":
            return Scaled(float(m["up"]), "failure_rate")
        return Scaled(float(min(m["down"], 2)), "repair_rate")

    values = {"failure_rate": 0.01, "repair_rate": 1.0}
    up = lambda m: m["up"] >= 1  # noqa: E731
    return net, terms, values, up


def _pool_case():
    net = redundant_pool_with_coverage(
        5, failure_rate=0.01, repair_rate=1.0, coverage=0.95,
        uncovered_recovery_rate=0.5,
    )

    def terms(tr, m):
        if tr.name == "fail":
            return Scaled(float(m["up"]), "failure_rate")
        if tr.name == "repair":
            return Scaled(float(m["repairing"]), "repair_rate")
        return Param("uncovered_recovery_rate")

    values = {
        "failure_rate": 0.01,
        "repair_rate": 1.0,
        "uncovered_recovery_rate": 0.5,
    }
    up = lambda m: m["outage"] == 0 and m["up"] >= 1  # noqa: E731
    return net, terms, values, up


def _queue_case():
    net = queue_with_breakdowns(
        8, arrival_rate=2.0, service_rate=5.0, failure_rate=0.05,
        repair_rate=1.0,
    )

    def terms(tr, m):
        return {
            "arrive": Param("arrival_rate"),
            "serve": Param("service_rate"),
            "break": Param("failure_rate"),
            "fix": Param("repair_rate"),
        }[tr.name]

    values = {
        "arrival_rate": 2.0,
        "service_rate": 5.0,
        "failure_rate": 0.05,
        "repair_rate": 1.0,
    }
    up = lambda m: m["server_up"] >= 1  # noqa: E731
    return net, terms, values, up


def _queue_transition_names():
    net = queue_with_breakdowns(
        2, arrival_rate=1.0, service_rate=2.0, failure_rate=0.1, repair_rate=1.0
    )
    return sorted(net.transitions)


CASES = [
    pytest.param(_repairman_case, id="machine_repairman"),
    pytest.param(_pool_case, id="redundant_pool_with_coverage"),
    pytest.param(_queue_case, id="queue_with_breakdowns"),
]


def _build(case):
    net, terms, values, up = case()
    result = build_sparse_reachability(
        net, up=up, rate_terms=terms, rate_values=values
    )
    return result, values


class TestFrozenStructureRefill:
    @pytest.mark.parametrize("case", CASES)
    def test_refill_leaves_pattern_byte_identical(self, case):
        result, values = _build(case)
        compiled = result.compiled
        q = result.chain.generator()
        before = (q.indices.tobytes(), q.indptr.tobytes())
        perturbed = {k: v * 3.7 for k, v in values.items()}
        for point in (values, perturbed, values):
            compiled.fill(point)
            qc = compiled.generator(point)
            assert qc.indices.tobytes() == before[0]
            assert qc.indptr.tobytes() == before[1]

    @pytest.mark.parametrize("case", CASES)
    def test_refill_at_build_values_matches_lazy_data(self, case):
        result, values = _build(case)
        data = result.compiled.fill(values)
        expected = result.chain.generator().data
        if result.compiled._has_duplicates:
            np.testing.assert_allclose(data, expected, rtol=1e-15, atol=0.0)
        else:
            assert data.tobytes() == expected.tobytes()

    @pytest.mark.parametrize("case", CASES)
    def test_availability_matches_uncompiled_chain(self, case):
        result, values = _build(case)
        assert result.compiled.availability(values) == pytest.approx(
            result.chain.availability(), abs=1e-12
        )

    def test_no_rate_terms_means_no_compiled(self):
        net, _, _, up = _repairman_case()
        result = build_sparse_reachability(net, up=up)
        assert result.compiled is None

    def test_distinct_terms_are_interned_once(self):
        result, _ = _build(_queue_case)
        # constant-rate net: one term per transition name, shared by
        # every firing of that transition across the state space
        assert len(result.compiled._terms) == len(_queue_transition_names())

    def test_availability_requires_up_mask(self):
        net, terms, values, _ = _repairman_case()
        result = build_sparse_reachability(
            net, rate_terms=terms, rate_values=values
        )
        with pytest.raises(ModelDefinitionError, match="up-state mask"):
            result.compiled.availability(values)

    def test_rejects_unknown_parameter(self):
        result, values = _build(_repairman_case)
        with pytest.raises(ModelDefinitionError, match="unknown parameter"):
            result.compiled({"nope": 1.0})

    def test_pickle_roundtrip(self):
        result, values = _build(_repairman_case)
        clone = pickle.loads(pickle.dumps(result.compiled))
        assert clone.availability(values) == result.compiled.availability(values)
        assert clone.parameters == result.compiled.parameters


class TestSweep:
    def test_sweep_matches_cold_solves(self):
        result, values = _build(_repairman_case)
        compiled = result.compiled
        points = [dict(values, failure_rate=f) for f in np.geomspace(1e-3, 0.1, 9)]
        swept = compiled.sweep(points)
        cold = np.array([compiled(p) for p in points])
        np.testing.assert_allclose(swept, cold, rtol=0.0, atol=1e-12)
        stats = compiled.last_sweep_stats
        assert stats.points == len(points)

    def test_sweep_continuation_order_returns_input_order(self):
        result, values = _build(_repairman_case)
        compiled = result.compiled
        fs = np.geomspace(1e-3, 0.1, 9)
        points = [dict(values, failure_rate=f) for f in fs]
        shuffled = [points[i] for i in (4, 0, 8, 2, 6, 1, 5, 3, 7)]
        swept = compiled.sweep(shuffled, order="continuation")
        expected = np.array([compiled(p) for p in shuffled])
        np.testing.assert_allclose(swept, expected, rtol=0.0, atol=1e-12)

    def test_sweep_rejects_unknown_order_and_preconditioner(self):
        result, values = _build(_repairman_case)
        with pytest.raises(ModelDefinitionError, match="unknown sweep order"):
            result.compiled.sweep([values], order="zigzag")

    def test_steady_state_rejects_unknown_x0_policy(self):
        result, values = _build(_repairman_case)
        with pytest.raises(SolverError, match="x0 policy"):
            result.compiled.steady_state(values, x0="previous")


class TestContinuationOrder:
    def test_sorts_a_shuffled_geometric_sweep(self):
        fs = np.geomspace(1e-4, 1.0, 9)
        shuffle = [4, 0, 8, 2, 6, 1, 5, 3, 7]
        points = [{"failure_rate": float(fs[i])} for i in shuffle]
        order = continuation_order(points)
        visited = [float(points[i]["failure_rate"]) for i in order]
        diffs = np.diff(np.log10(visited))
        # a greedy NN tour over a shuffled 1-D geometric grid walks
        # monotonically from its start point in each direction
        assert np.all(diffs > 0) or np.all(diffs < 0) or (
            np.abs(diffs) <= np.abs(np.log10(fs[1] / fs[0])) * (len(fs) - 1)
        ).all()
        assert sorted(order) == list(range(len(points)))

    def test_is_a_permutation_and_deterministic(self):
        rng = np.random.default_rng(7)
        points = [
            {"a": float(x), "b": float(y)}
            for x, y in rng.uniform(0.1, 10.0, size=(40, 2))
        ]
        order = continuation_order(points)
        assert sorted(order) == list(range(40))
        assert order == continuation_order(points)

    def test_short_and_oversized_inputs_pass_through(self):
        assert continuation_order([]) == []
        assert continuation_order([{"a": 1.0}]) == [0]
        assert continuation_order([{"a": 1.0}, {"a": 2.0}]) == [0, 1]
        big = [{"a": float(i)} for i in range(4097)]
        assert continuation_order(big) == list(range(4097))

    def test_explicit_parameter_subset(self):
        points = [{"a": 1.0, "b": 9.0}, {"a": 3.0, "b": 1.0}, {"a": 1.1, "b": 5.0}]
        order = continuation_order(points, parameters=["a"])
        assert order == [0, 2, 1]


class TestNFVChainCompiled:
    def test_structure_cache_reuses_frozen_structure(self):
        nfvchain._STRUCTURE_CACHE.clear()
        spec = NFVChainSpec()
        first = compile_nfv_chain(spec)
        # rate-only respins hit the cache; count changes rebuild
        assert compile_nfv_chain(NFVChainSpec(failure_rate=0.02)) is first
        assert compile_nfv_chain(NFVChainSpec(repair_rate=2.0)) is first
        other = compile_nfv_chain(NFVChainSpec(replicas=2))
        assert other is not first
        assert len(nfvchain._STRUCTURE_CACHE) == 2

    def test_structure_cache_is_bounded(self):
        nfvchain._STRUCTURE_CACHE.clear()
        for n in range(1, nfvchain._STRUCTURE_CACHE_LIMIT + 3):
            compile_nfv_chain(NFVChainSpec(n_vnfs=1, replicas=n))
        assert len(nfvchain._STRUCTURE_CACHE) == nfvchain._STRUCTURE_CACHE_LIMIT

    def test_no_rebfs_across_rate_only_sweep(self):
        nfvchain._STRUCTURE_CACHE.clear()
        tracer = Tracer("test")
        with activate_tracer(tracer):
            nfvchain.evaluate_availability({})
            after_build = tracer.metrics.counter("sparse.reachability.markings").value
            builds = tracer.metrics.counter("compile.sparse.structure_builds").value
            for f in np.geomspace(1e-4, 1e-2, 5):
                nfvchain.evaluate_availability({"failure_rate": float(f)})
            assert (
                tracer.metrics.counter("sparse.reachability.markings").value
                == after_build
            )
            assert (
                tracer.metrics.counter("compile.sparse.structure_builds").value
                == builds
            )

    def test_evaluate_availability_matches_analytic_oracle(self):
        for f in np.geomspace(1e-4, 1e-2, 5):
            spec = NFVChainSpec(failure_rate=float(f))
            assert nfvchain.evaluate_availability(
                {"failure_rate": float(f)}
            ) == pytest.approx(analytic_availability(spec), abs=1e-9)

    def test_compiled_sweep_matches_oracle_and_warm_starts(self):
        spec = NFVChainSpec(n_vnfs=4, replicas=9, min_replicas=2)  # 10^4 states
        compiled = compile_nfv_chain(spec)
        assert compiled.n_states == nfvchain.state_count(spec)
        fs = np.geomspace(5e-4, 5e-3, 6)
        points = [
            {"failure_rate": float(f), "repair_rate": spec.repair_rate} for f in fs
        ]
        swept = compiled.sweep(points)
        oracle = [
            analytic_availability(
                NFVChainSpec(
                    n_vnfs=4, replicas=9, min_replicas=2, failure_rate=float(f)
                )
            )
            for f in fs
        ]
        np.testing.assert_allclose(swept, oracle, rtol=0.0, atol=1e-9)
        stats = compiled.last_sweep_stats
        assert stats.warm_solves == len(points) - 1
        assert stats.precond_builds == 1
        assert stats.precond_reuses == len(points) - 1


class TestModelWiring:
    def test_supports_compilation_names_and_objects(self):
        assert supports_compilation("nfvchain")
        assert supports_compilation(nfvchain.evaluate_availability)
        result, _ = _build(_repairman_case)
        assert supports_compilation(result.compiled)
        assert compile_model(result.compiled) is result.compiled

    def test_compile_model_nfvchain_is_shared_singleton(self):
        a = compile_model("nfvchain")
        b = compile_model(nfvchain.evaluate_availability)
        assert a is b
        assert isinstance(a, CompiledNFVChain)
        assert a({"failure_rate": 2e-3}) == nfvchain.evaluate_availability(
            {"failure_rate": 2e-3}
        )
        assert a.size()["n_states"] == nfvchain.state_count(NFVChainSpec())

    def test_compile_model_lazy_srn_returns_chain(self):
        srn = nfvchain.build_nfv_srn()
        assert supports_compilation(srn)
        assert compile_model(srn) is srn.chain

    def test_compile_model_rejects_eager_srn(self):
        srn = nfvchain.build_nfv_srn(
            NFVChainSpec(n_vnfs=2, replicas=2), lazy=False
        )
        assert not supports_compilation(srn)
        with pytest.raises(ModelDefinitionError, match="eager SRN"):
            compile_model(srn)

    def test_compiled_sparse_exported_at_top_level(self):
        import repro

        assert repro.CompiledSparseCTMC is CompiledSparseCTMC
        assert repro.continuation_order is continuation_order


class TestEngineIntegration:
    def test_process_sweep_bit_identical_to_serial(self):
        from repro.engine import run_campaign
        from repro.engine.campaign import PointsCampaign

        points = [
            {"failure_rate": float(f)} for f in np.geomspace(5e-4, 5e-3, 6)
        ]
        spec = PointsCampaign(points)
        serial = run_campaign(nfvchain.evaluate_availability, spec, compile=True)
        procs = run_campaign(
            nfvchain.evaluate_availability,
            spec,
            compile=True,
            executor="process",
            n_jobs=2,
        )
        assert serial.outputs.tobytes() == procs.outputs.tobytes()

    def test_continuation_order_bit_identical_and_unpermuted(self):
        from repro.engine import run_campaign
        from repro.engine.campaign import PointsCampaign

        rng = np.random.default_rng(3)
        fs = rng.permutation(np.geomspace(5e-4, 5e-3, 8))
        spec = PointsCampaign([{"failure_rate": float(f)} for f in fs])
        plain = run_campaign(nfvchain.evaluate_availability, spec, compile=True)
        ordered = run_campaign(
            nfvchain.evaluate_availability, spec, compile=True, order="continuation"
        )
        assert plain.outputs.tobytes() == ordered.outputs.tobytes()

    def test_order_validation(self):
        from repro.engine import run_campaign
        from repro.engine.campaign import PointsCampaign

        spec = PointsCampaign([{"failure_rate": 1e-3}])
        with pytest.raises(ModelDefinitionError, match="unknown campaign order"):
            run_campaign(nfvchain.evaluate_availability, spec, order="zigzag")
        with pytest.raises(ModelDefinitionError, match="not supported with store="):
            run_campaign(
                nfvchain.evaluate_availability,
                spec,
                order="continuation",
                store="/tmp/never-created.sqlite",
            )

    def test_continuation_order_remaps_error_indices(self):
        from repro.engine import run_campaign
        from repro.engine.campaign import PointsCampaign
        from repro.robust import FaultPolicy

        def fragile(assignment):
            if assignment["x"] == 3.0:
                raise ValueError("boom")
            return assignment["x"]

        spec = PointsCampaign([{"x": float(v)} for v in (5.0, 1.0, 3.0, 4.0, 2.0)])
        result = run_campaign(
            fragile,
            spec,
            order="continuation",
            policy=FaultPolicy(on_error="skip"),
        )
        assert len(result.errors) == 1
        assert result.errors[0].index == 2
        assert np.isnan(result.outputs[2])
        assert result.outputs[0] == 5.0

    def test_serve_registry_compiles_nfvchain(self):
        from repro.serve import default_registry

        entry = default_registry().get("nfvchain")
        assert entry.compiled
        # explicit registration metadata survives compilation
        assert entry.size["n_states"] == nfvchain.state_count(NFVChainSpec())


class TestSolverReportIterations:
    def test_gmres_records_iterations_and_x0_warm_start(self):
        from repro.markov.fallback import solve_steady_state

        result, values = _build(_repairman_case)
        q = result.compiled.generator(values)
        cold = solve_steady_state(q, method="gmres")
        assert cold.iterations is not None and cold.iterations > 0
        warm = solve_steady_state(q, method="gmres", x0=cold.pi)
        assert warm.iterations is not None
        assert warm.iterations <= cold.iterations
        np.testing.assert_allclose(warm.pi, cold.pi, rtol=0.0, atol=1e-10)

    def test_direct_methods_report_no_iterations(self):
        from repro.markov.fallback import solve_steady_state

        result, values = _build(_repairman_case)
        q = result.compiled.generator(values)
        report = solve_steady_state(q, method="gth", x0=np.ones(q.shape[0]))
        assert report.iterations is None
