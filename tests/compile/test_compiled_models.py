"""Compiled case-study evaluators: bit-identity and error-contract parity."""

import pickle
import struct

import numpy as np
import pytest

from repro.casestudies import bladecenter, cisco, sun
from repro.compile import compile_model, supports_compilation
from repro.compile.model import (
    CompiledBladeCenter,
    CompiledCiscoRouter,
    CompiledEvaluator,
    CompiledSunPlatform,
)
from repro.exceptions import ModelDefinitionError
from repro.markov.ctmc import CTMC
from repro.nonstate.components import Component
from repro.nonstate.faulttree import AndGate, BasicEvent, FaultTree
from repro.nonstate.rbd import ReliabilityBlockDiagram, series


def bits(x) -> bytes:
    return struct.pack("<d", float(x))


CASES = [
    pytest.param(
        bladecenter.evaluate_availability,
        CompiledBladeCenter,
        [
            {},
            {"disk_failure_rate": 3e-5},
            {"blower_failure_rate": 1e-4, "chassis_repair_rate": 0.05},
            {"software_failure_rate": 2e-3, "nic_failure_rate": 1e-6},
        ],
        id="bladecenter",
    ),
    pytest.param(
        cisco.evaluate_availability,
        CompiledCiscoRouter,
        [
            {},
            {"coverage": 0.9},
            {"processor_failure_rate": 1e-4, "failover_rate": 60.0},
            {"linecard_failure_rate": 5e-5, "fabric_repair_rate": 0.25},
        ],
        id="cisco",
    ),
    pytest.param(
        sun.evaluate_availability,
        CompiledSunPlatform,
        [
            {},
            {"coverage": 0.95},
            {"failure_rate": 1e-4, "repair_rate": 0.1},
            {"uncovered_recovery_rate": 0.5, "failover_rate": 360.0},
        ],
        id="sun",
    ),
]


class TestBitIdentity:
    @pytest.mark.parametrize("evaluate, cls, points", CASES)
    def test_single_point(self, evaluate, cls, points):
        compiled = compile_model(evaluate)
        assert isinstance(compiled, cls)
        for assignment in points:
            assert bits(compiled(assignment)) == bits(evaluate(assignment))

    @pytest.mark.parametrize("evaluate, cls, points", CASES)
    def test_evaluate_many(self, evaluate, cls, points):
        compiled = compile_model(evaluate)
        batch = compiled.evaluate_many(points)
        for k, assignment in enumerate(points):
            assert bits(batch[k]) == bits(evaluate(assignment))

    @pytest.mark.parametrize("evaluate, cls, points", CASES)
    def test_pickle_roundtrip(self, evaluate, cls, points):
        clone = pickle.loads(pickle.dumps(compile_model(evaluate)))
        for assignment in points:
            assert bits(clone(assignment)) == bits(evaluate(assignment))


class TestErrorParity:
    @pytest.mark.parametrize("evaluate, cls, points", CASES)
    @pytest.mark.parametrize(
        "bad", [{"coverage": -0.5}, {"coverage": float("nan")}, {"no_such_knob": 1.0}]
    )
    def test_same_exception_and_message(self, evaluate, cls, points, bad):
        if "coverage" in bad and "coverage" not in compile_model(evaluate).parameters:
            bad = {"failure_rate" if cls is CompiledSunPlatform else "disk_failure_rate": next(iter(bad.values()))}
        compiled = compile_model(evaluate)
        with pytest.raises(ModelDefinitionError) as uncompiled_exc:
            evaluate(bad)
        with pytest.raises(ModelDefinitionError) as compiled_exc:
            compiled(bad)
        assert str(compiled_exc.value) == str(uncompiled_exc.value)


class TestCompileModel:
    def test_names_resolve_to_singletons(self):
        for name, cls in (
            ("bladecenter", CompiledBladeCenter),
            ("cisco", CompiledCiscoRouter),
            ("sun", CompiledSunPlatform),
        ):
            first = compile_model(name)
            assert isinstance(first, cls)
            assert compile_model(name) is first  # structure built once

    def test_evaluator_and_name_share_instance(self):
        assert compile_model("cisco") is compile_model(cisco.evaluate_availability)

    def test_compiled_passthrough(self):
        compiled = compile_model("sun")
        assert compile_model(compiled) is compiled

    def test_ctmc_dispatch(self):
        chain = CTMC()
        chain.add_transition("up", "down", 1e-3)
        chain.add_transition("down", "up", 0.1)
        compiled = compile_model(chain)
        pi = compiled.steady_state({})
        ref = chain.steady_state()
        assert bits(pi[compiled.index_of("up")]) == bits(ref["up"])

    def test_rbd_and_fault_tree_dispatch(self):
        rbd = ReliabilityBlockDiagram(
            series(Component.fixed("a", 0.01), Component.fixed("b", 0.02))
        )
        sf = compile_model(rbd)
        p_up = {"a": 0.97, "b": 0.96}
        assert bits(sf.prob(p_up)) == bits(rbd.system_up_probability(p_up))
        ev = BasicEvent.fixed("e", 0.1)
        tree = FaultTree(AndGate([ev, BasicEvent.fixed("f", 0.2)]))
        tf = compile_model(tree)
        q = {"e": 0.3, "f": 0.4}
        assert bits(tf.prob(q)) == bits(tree.top_event_probability(q))

    def test_unknown_name_raises(self):
        with pytest.raises(ModelDefinitionError, match="unknown model name"):
            compile_model("boeing")

    def test_uncompilable_target_raises(self):
        with pytest.raises(ModelDefinitionError, match="cannot compile"):
            compile_model(lambda a: 1.0)

    def test_bad_compiles_to_advertisement_raises(self):
        def fake(a):
            return 1.0

        fake.__compiles_to__ = "repro.exceptions:ModelDefinitionError"  # not an evaluator
        with pytest.raises(ModelDefinitionError, match="CompiledEvaluator"):
            compile_model(fake)

    def test_supports_compilation(self):
        assert supports_compilation(bladecenter.evaluate_availability)
        assert supports_compilation("sun")
        assert supports_compilation(compile_model("cisco"))
        assert supports_compilation(CTMC([("a")]))
        assert not supports_compilation("boeing")
        assert not supports_compilation(lambda a: 1.0)

    def test_ship_once_flag(self):
        assert CompiledEvaluator.__ship_once__ is True
        assert compile_model("bladecenter").__ship_once__ is True

    def test_parameters_advertised(self):
        compiled = compile_model("bladecenter")
        assert compiled.parameters == tuple(
            bladecenter.BladeCenterParameters.__dataclass_fields__
        )
