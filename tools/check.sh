#!/bin/sh
# Repository check gate: static checks + custom lint + test suite.
#
# ruff and mypy are optional — environments without them (e.g. the
# minimal CI image, which bakes in only numpy/scipy/networkx/pytest)
# skip those stages with a notice instead of failing.  The custom AST
# lint (tools/lint_repro.py) and the test suite always run: they need
# nothing beyond the standard library and the test dependencies.
#
# Usage: sh tools/check.sh [--no-tests]
set -eu

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

status=0

if command -v ruff >/dev/null 2>&1; then
    echo "== ruff =="
    ruff check src/repro tools tests benchmarks || status=1
else
    echo "== ruff == (not installed; skipped)"
fi

if command -v mypy >/dev/null 2>&1; then
    echo "== mypy =="
    mypy || status=1
else
    echo "== mypy == (not installed; skipped)"
fi

echo "== lint_repro =="
python tools/lint_repro.py || status=1

echo "== analyze (case studies) =="
python -m repro.analyze || status=1

echo "== analyze --json (machine-readable gate: exit 0 clean / 1 warnings / 2 errors) =="
python -m repro.analyze --json >/dev/null || status=1

echo "== serve (selfcheck) =="
python -m repro.serve --selfcheck -q || status=1

echo "== store (selfcheck: create -> kill -> resume -> verify) =="
python -m repro.store --selfcheck -q || status=1

echo "== bench e37 (smoke: 10^4-state sparse chain under budget) =="
python benchmarks/bench_e37_sparse.py --smoke || status=1

echo "== bench e38 (smoke: 50-point compiled sparse sweep, zero re-BFS) =="
python benchmarks/bench_e38_sparse_sweep.py --smoke || status=1

echo "== bench e39 (smoke: structural pre-flight sizes nets without BFS) =="
python benchmarks/bench_e39_invariants.py --smoke || status=1

if [ "${1:-}" != "--no-tests" ]; then
    echo "== pytest =="
    python -m pytest -q || status=1
fi

exit $status
