#!/usr/bin/env python
"""Project-specific AST lint — rules no off-the-shelf tool enforces.

Stdlib-only (runs in the minimal CI image, where ruff/mypy may be
absent).  Rules:

``R001 deprecated-strategy-kwarg``
    Internal callers must not pass the deprecated ``strategy=`` keyword
    to the steady-state front doors (``solve_steady_state``,
    ``steady_state_report``); the unified spelling is ``method=``.  The
    shim exists for *external* callers only — tests exercising the
    deprecation path are exempt (the ``tests/`` tree is not scanned).

``R002 mutable-default-arg``
    A ``def f(x=[])`` / ``def f(x={})`` / ``def f(x=set())`` default is
    shared across calls; use ``None`` plus an in-body default.

``R003 lazy-namespace-drift``
    ``src/repro/__init__.py`` keeps parallel listings of the public
    surface: the ``_EXPORTS`` lazy-import table (attributes), the
    ``_MODULE_EXPORTS`` table (lazily-imported submodules), ``__all__``
    and the ``TYPE_CHECKING`` import block.  They must agree, or a name
    either fails to resolve at runtime or is invisible to type
    checkers.  A name must not appear in both tables (the ``__getattr__``
    lookup order would silently shadow one), and module exports are
    *not* required in ``TYPE_CHECKING`` — they resolve to real modules.

``R004 all-name-undefined``
    Every string in a module's ``__all__`` must be bound at module top
    level (def / class / import / assignment).

``R005 serve-swallowed-exception``
    In the serving daemon (``src/repro/serve``) a broad handler —
    ``except Exception`` / ``except BaseException`` / bare ``except:``
    — must either build a structured ``ErrorRecord`` or re-raise.  The
    daemon's contract is that no failure ever leaves as a bare
    traceback (or vanishes silently), so a handler that swallows
    broadly without producing a record is a bug by construction.

``R006 store-bare-sqlite``
    All sqlite access in ``src/repro/store`` goes through the
    single-writer serializer (``StoreDB`` in ``db.py``); a
    ``sqlite3.connect`` anywhere else under the package bypasses the
    one-connection-one-thread invariant the store's durability
    guarantees are built on.

``R007 sparse-densification``
    ``src/repro/sparse`` exists to keep 10^5+-state chains in CSR
    form end to end; a ``.toarray()`` / ``.todense()`` call or a dense
    2-D allocation (``np.zeros((n, n))`` and friends) on those solver
    hot paths silently reintroduces the O(n²) memory wall the
    subsystem was built to remove.

``R008 lock-discipline``
    The concurrent subsystems (``src/repro/serve``, ``src/repro/store``,
    ``src/repro/obs``) guard shared mutable state with explicit locks.
    In a class that owns a ``Lock``/``RLock``/``Condition`` attribute,
    container state (attributes initialized to ``dict``/``list``/...)
    must only be mutated — subscript assignment, ``.append()`` and
    friends, ``+=`` on counter attributes — inside a ``with
    self.<lock>:`` block; likewise module-level mutable state in a
    module that creates a module-level lock.  Methods whose name ends
    with ``_locked`` are exempt (the caller-holds-the-lock convention),
    as is ``__init__`` (no concurrent access before construction
    completes).  Waivable with ``# noqa: R008`` for state that is
    genuinely single-threaded.

Usage::

    python tools/lint_repro.py [paths...]

Defaults to ``src/repro``, ``examples``, ``benchmarks`` and ``tools``.
Prints ``path:line: CODE message`` per finding; exits 1 when any fired.
"""

import ast
import sys
from pathlib import Path
from typing import List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_PATHS = ("src/repro", "examples", "benchmarks", "tools")

#: front doors whose ``strategy=`` keyword is deprecated (R001)
DEPRECATED_STRATEGY_CALLEES = {"solve_steady_state", "steady_state_report"}

Finding = Tuple[str, int, str, str]  # (path, line, code, message)


def _callee_name(func: ast.expr) -> str:
    """Trailing name of a call target: ``f`` for ``f(...)`` and ``m.f(...)``."""
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def check_strategy_kwarg(tree: ast.AST, path: str) -> List[Finding]:
    """R001: deprecated ``strategy=`` keyword on the steady-state front doors."""
    findings = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        if _callee_name(node.func) not in DEPRECATED_STRATEGY_CALLEES:
            continue
        for keyword in node.keywords:
            if keyword.arg == "strategy":
                findings.append(
                    (
                        path,
                        node.lineno,
                        "R001",
                        f"deprecated strategy= keyword in call to "
                        f"{_callee_name(node.func)}(); use method=",
                    )
                )
    return findings


_MUTABLE_DISPLAYS = (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
_MUTABLE_CONSTRUCTORS = {"list", "dict", "set", "bytearray", "defaultdict", "deque"}


def _is_mutable_default(default: ast.expr) -> bool:
    if isinstance(default, _MUTABLE_DISPLAYS):
        return True
    if isinstance(default, ast.Call) and _callee_name(default.func) in _MUTABLE_CONSTRUCTORS:
        return True
    return False


def check_mutable_defaults(tree: ast.AST, path: str) -> List[Finding]:
    """R002: mutable default argument values."""
    findings = []
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        args = node.args
        defaults = list(zip(args.posonlyargs + args.args, _padded(args)))
        defaults += [(a, d) for a, d in zip(args.kwonlyargs, args.kw_defaults)]
        for arg, default in defaults:
            if default is not None and _is_mutable_default(default):
                findings.append(
                    (
                        path,
                        default.lineno,
                        "R002",
                        f"mutable default for argument {arg.arg!r} of "
                        f"{node.name}(); use None and fill in the body",
                    )
                )
    return findings


def _padded(args: ast.arguments):
    """Positional defaults left-padded with None to align with the args."""
    positional = args.posonlyargs + args.args
    pad = [None] * (len(positional) - len(args.defaults))
    return pad + list(args.defaults)


def _string_elements(node: ast.expr) -> List[str]:
    """Constant string elements of a list/tuple display (starred skipped)."""
    if not isinstance(node, (ast.List, ast.Tuple)):
        return []
    return [
        element.value
        for element in node.elts
        if isinstance(element, ast.Constant) and isinstance(element.value, str)
    ]


def _toplevel_bindings(tree: ast.Module) -> set:
    """Names bound at module top level (defs, imports, assignments)."""
    bound = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            bound.add(node.name)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                bound.add((alias.asname or alias.name).split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if alias.name != "*":
                    bound.add(alias.asname or alias.name)
        elif isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                for name_node in ast.walk(target):
                    if isinstance(name_node, ast.Name):
                        bound.add(name_node.id)
        elif isinstance(node, (ast.If, ast.Try)):
            # conditionally-bound names (TYPE_CHECKING / fallback imports)
            # count as bindings for __all__ purposes
            bound |= _toplevel_bindings(ast.Module(body=node.body, type_ignores=[]))
            for handler in getattr(node, "handlers", []):
                bound |= _toplevel_bindings(ast.Module(body=handler.body, type_ignores=[]))
            bound |= _toplevel_bindings(
                ast.Module(body=getattr(node, "orelse", []), type_ignores=[])
            )
    return bound


def check_all_names(tree: ast.Module, path: str) -> List[Finding]:
    """R004: every constant string in ``__all__`` is bound in the module."""
    findings = []
    all_node = None
    for node in tree.body:
        if isinstance(node, ast.Assign) and any(
            isinstance(t, ast.Name) and t.id == "__all__" for t in node.targets
        ):
            all_node = node
    if all_node is None:
        return findings
    names = _string_elements(all_node.value)
    has_starred = isinstance(all_node.value, (ast.List, ast.Tuple)) and any(
        isinstance(e, ast.Starred) for e in all_node.value.elts
    )
    bound = _toplevel_bindings(tree)
    lazy = "__getattr__" in bound  # PEP 562 module: names resolve lazily
    for name in names:
        if name in bound or name == "__version__":
            continue
        if lazy or has_starred:
            continue
        findings.append(
            (path, all_node.lineno, "R004", f"__all__ lists {name!r} but the module never binds it")
        )
    return findings


def check_serve_error_records(tree: ast.AST, path: str) -> List[Finding]:
    """R005: serve-path broad except handlers must emit an ErrorRecord.

    Only files under ``src/repro/serve`` are checked.  A handler
    passes when its body references the name ``ErrorRecord`` (building
    the structured record that becomes the wire error) or contains a
    bare ``raise`` (propagating to a handler that does).
    """
    if "repro/serve" not in path.replace("\\", "/"):
        return []
    findings = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if node.type is None:
            broad = True  # bare except:
        else:
            caught = [
                name.id for name in ast.walk(node.type) if isinstance(name, ast.Name)
            ]
            broad = any(name in ("Exception", "BaseException") for name in caught)
        if not broad:
            continue
        handles = False
        for stmt in node.body:
            for sub in ast.walk(stmt):
                if isinstance(sub, ast.Name) and sub.id == "ErrorRecord":
                    handles = True
                if isinstance(sub, ast.Raise) and sub.exc is None:
                    handles = True
        if not handles:
            findings.append(
                (
                    path,
                    node.lineno,
                    "R005",
                    "broad except in serve code must build an ErrorRecord or "
                    "re-raise; the daemon never swallows failures bare",
                )
            )
    return findings


def check_store_sqlite(tree: ast.AST, path: str) -> List[Finding]:
    """R006: ``sqlite3.connect`` only in the store's serializer module.

    Checks files under ``src/repro/store``; the single permitted home
    is ``db.py`` (the ``StoreDB`` serializer).  Both spellings are
    caught: ``sqlite3.connect(...)`` and ``from sqlite3 import
    connect``.
    """
    normalized = path.replace("\\", "/")
    if "repro/store" not in normalized or normalized.endswith("/db.py"):
        return []
    findings = []
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "connect"
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "sqlite3"
        ):
            findings.append(
                (
                    path,
                    node.lineno,
                    "R006",
                    "bare sqlite3.connect outside repro/store/db.py; all store "
                    "database access goes through the StoreDB serializer",
                )
            )
        elif isinstance(node, ast.ImportFrom) and node.module == "sqlite3" and any(
            alias.name == "connect" for alias in node.names
        ):
            findings.append(
                (
                    path,
                    node.lineno,
                    "R006",
                    "importing sqlite3.connect outside repro/store/db.py; all "
                    "store database access goes through the StoreDB serializer",
                )
            )
    return findings


#: dense-allocation constructors checked by R007
_DENSE_ALLOCATORS = {"zeros", "ones", "empty", "full"}


def check_sparse_densification(tree: ast.AST, path: str) -> List[Finding]:
    """R007: no densification on the sparse solver hot paths.

    Checks files under ``src/repro/sparse`` and the compiled-sparse
    sweep kernel ``src/repro/compile/sparse.py`` (same O(nnz) memory
    contract): flags ``.toarray()`` / ``.todense()`` calls and 2-D
    dense allocations (``np.zeros((n, m))``,
    ``np.ones``/``np.empty``/``np.full`` likewise).  1-D vectors are
    the working currency of the iterative solvers and stay allowed.
    """
    norm = path.replace("\\", "/")
    if "repro/sparse" not in norm and "repro/compile/sparse" not in norm:
        return []
    findings = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        name = _callee_name(node.func)
        if name in ("toarray", "todense") and isinstance(node.func, ast.Attribute):
            findings.append(
                (
                    path,
                    node.lineno,
                    "R007",
                    f".{name}() densifies the operator on a sparse hot path; "
                    "keep the CSR/LinearOperator form",
                )
            )
        elif name in _DENSE_ALLOCATORS and node.args:
            shape = node.args[0]
            if isinstance(shape, (ast.Tuple, ast.List)) and len(shape.elts) >= 2:
                findings.append(
                    (
                        path,
                        node.lineno,
                        "R007",
                        f"dense 2-D {name}() allocation on a sparse hot path; "
                        "the subsystem contract is O(nnz) memory, not O(n^2)",
                    )
                )
    return findings


#: lock-like constructors that establish ownership for R008
_LOCK_CONSTRUCTORS = {"Lock", "RLock", "Condition"}
#: method calls that mutate a container in place
_MUTATOR_METHODS = {
    "append",
    "extend",
    "insert",
    "add",
    "update",
    "pop",
    "popitem",
    "remove",
    "discard",
    "clear",
    "setdefault",
    "appendleft",
    "popleft",
    "move_to_end",
}
_R008_MUTABLE_CONSTRUCTORS = _MUTABLE_CONSTRUCTORS | {"OrderedDict", "Counter"}


def _is_mutable_value(value: ast.expr) -> bool:
    """A value expression that creates a shared mutable container."""
    if isinstance(value, _MUTABLE_DISPLAYS):
        return True
    return (
        isinstance(value, ast.Call)
        and _callee_name(value.func) in _R008_MUTABLE_CONSTRUCTORS
    )


def _is_self_attr(node: ast.expr, attrs) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
        and node.attr in attrs
    )


def _scan_mutations(body, is_state, is_lock, locked, report) -> None:
    """Recursively flag in-place mutations of tracked state outside a lock.

    ``is_state(expr)`` recognises the guarded container/counter,
    ``is_lock(expr)`` recognises the ``with`` context manager that
    acquires the owning lock; ``report(node, description)`` records a
    finding.  ``with`` bodies whose items include the lock are scanned
    with ``locked=True``.
    """
    for stmt in body:
        if isinstance(stmt, ast.With):
            now_locked = locked or any(
                is_lock(item.context_expr) for item in stmt.items
            )
            _scan_mutations(stmt.body, is_state, is_lock, now_locked, report)
            continue
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # A nested function may run later (e.g. a worker thread):
            # scan it as unlocked — acquiring inside still passes.
            _scan_mutations(stmt.body, is_state, is_lock, False, report)
            continue
        if not locked:
            if isinstance(stmt, (ast.Assign, ast.AugAssign)):
                targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
                for target in targets:
                    if isinstance(target, ast.Subscript) and is_state(target.value):
                        report(stmt, "subscript assignment")
                    elif isinstance(stmt, ast.AugAssign) and is_state(target):
                        report(stmt, "augmented assignment")
            elif isinstance(stmt, ast.Delete):
                for target in stmt.targets:
                    if isinstance(target, ast.Subscript) and is_state(target.value):
                        report(stmt, "subscript deletion")
            for sub in ast.walk(stmt):
                if (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and sub.func.attr in _MUTATOR_METHODS
                    and is_state(sub.func.value)
                ):
                    report(sub, f".{sub.func.attr}() call")
        # recurse into compound statements (if/for/while/try bodies)
        for field in ("body", "orelse", "finalbody"):
            inner = getattr(stmt, field, None)
            if inner and not isinstance(stmt, ast.With):
                _scan_mutations(inner, is_state, is_lock, locked, report)
        for handler in getattr(stmt, "handlers", []):
            _scan_mutations(handler.body, is_state, is_lock, locked, report)


def check_lock_discipline(tree: ast.AST, path: str) -> List[Finding]:
    """R008: guarded mutable state only mutated under its lock.

    Checks files under ``src/repro/serve``, ``src/repro/store`` and
    ``src/repro/obs``.  Two ownership patterns:

    * **instance** — a class binding ``self.X = Lock()/RLock()/
      Condition()`` owns every mutable-container attribute and every
      numeric counter attribute initialized in ``__init__``; methods
      other than ``__init__`` (and the ``*_locked`` helpers, which run
      with the caller holding the lock) must mutate them only inside
      ``with self.<lock>:``;
    * **module** — a module binding a top-level lock owns its top-level
      mutable containers; functions must mutate them only inside
      ``with <lockname>:``.
    """
    norm = path.replace("\\", "/")
    if not any(f"repro/{pkg}/" in norm or norm.endswith(f"repro/{pkg}.py") for pkg in ("serve", "store", "obs")):
        return []
    findings: List[Finding] = []

    # ---- module-level pattern ------------------------------------------
    module_locks, module_mutables = set(), set()
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if not isinstance(target, ast.Name):
                    continue
                if (
                    isinstance(node.value, ast.Call)
                    and _callee_name(node.value.func) in _LOCK_CONSTRUCTORS
                ):
                    module_locks.add(target.id)
                elif _is_mutable_value(node.value):
                    module_mutables.add(target.id)
    if module_locks and module_mutables:

        def is_mod_state(expr):
            return isinstance(expr, ast.Name) and expr.id in module_mutables

        def is_mod_lock(expr):
            return isinstance(expr, ast.Name) and expr.id in module_locks

        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                _scan_mutations(
                    node.body,
                    is_mod_state,
                    is_mod_lock,
                    False,
                    lambda n, what, fn=node: findings.append(
                        (
                            path,
                            n.lineno,
                            "R008",
                            f"module-level mutable state mutated ({what}) in "
                            f"{fn.name}() outside `with <lock>:` although this "
                            f"module owns a lock",
                        )
                    ),
                )

    # ---- instance pattern ----------------------------------------------
    for cls in [n for n in ast.walk(tree) if isinstance(n, ast.ClassDef)]:
        lock_attrs, state_attrs = set(), set()
        for method in cls.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for sub in ast.walk(method):
                if not isinstance(sub, ast.Assign):
                    continue
                for target in sub.targets:
                    if not (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        continue
                    if (
                        isinstance(sub.value, ast.Call)
                        and _callee_name(sub.value.func) in _LOCK_CONSTRUCTORS
                    ):
                        lock_attrs.add(target.attr)
                    elif method.name == "__init__" and _is_mutable_value(sub.value):
                        state_attrs.add(target.attr)
                    elif (
                        method.name == "__init__"
                        and isinstance(sub.value, ast.Constant)
                        and isinstance(sub.value.value, (int, float))
                        and not isinstance(sub.value.value, bool)
                    ):
                        state_attrs.add(target.attr)
        if not lock_attrs or not state_attrs:
            continue

        def is_inst_state(expr, attrs=frozenset(state_attrs)):
            return _is_self_attr(expr, attrs)

        def is_inst_lock(expr, attrs=frozenset(lock_attrs)):
            return _is_self_attr(expr, attrs)

        for method in cls.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if method.name == "__init__" or method.name.endswith("_locked"):
                continue
            _scan_mutations(
                method.body,
                is_inst_state,
                is_inst_lock,
                False,
                lambda n, what, m=method: findings.append(
                    (
                        path,
                        n.lineno,
                        "R008",
                        f"guarded instance state mutated ({what}) in "
                        f"{cls.name}.{m.name}() outside `with self.<lock>:` "
                        f"although the class owns a lock",
                    )
                ),
            )
    return findings


def check_lazy_namespace(init_path: Path) -> List[Finding]:
    """R003: ``_EXPORTS``/``_MODULE_EXPORTS`` vs ``__all__`` vs ``TYPE_CHECKING``."""
    findings: List[Finding] = []
    path = str(init_path)
    tree = ast.parse(init_path.read_text())
    exports, export_line = set(), 1
    module_exports, module_line = set(), 1
    all_names, all_starred, all_line = set(), False, 1
    type_checking: set = set()
    for node in tree.body:
        if isinstance(node, ast.Assign):
            target_ids = [t.id for t in node.targets if isinstance(t, ast.Name)]
            if "_EXPORTS" in target_ids and isinstance(node.value, ast.Dict):
                export_line = node.lineno
                for key in node.value.keys:
                    if isinstance(key, ast.Constant) and isinstance(key.value, str):
                        exports.add(key.value)
            if "_MODULE_EXPORTS" in target_ids and isinstance(node.value, ast.Dict):
                module_line = node.lineno
                for key in node.value.keys:
                    if isinstance(key, ast.Constant) and isinstance(key.value, str):
                        module_exports.add(key.value)
            if "__all__" in target_ids:
                all_line = node.lineno
                all_names = set(_string_elements(node.value))
                all_starred = isinstance(node.value, (ast.List, ast.Tuple)) and any(
                    isinstance(e, ast.Starred) for e in node.value.elts
                )
        elif isinstance(node, ast.If):
            test = node.test
            is_tc = (isinstance(test, ast.Name) and test.id == "TYPE_CHECKING") or (
                isinstance(test, ast.Attribute) and test.attr == "TYPE_CHECKING"
            )
            if is_tc:
                type_checking |= _toplevel_bindings(
                    ast.Module(body=node.body, type_ignores=[])
                )
    if not exports:
        return [(path, 1, "R003", "no _EXPORTS table found in the lazy namespace")]
    for name in sorted(exports & module_exports):
        findings.append(
            (
                path,
                module_line,
                "R003",
                f"{name!r} appears in both _EXPORTS and _MODULE_EXPORTS; "
                "the __getattr__ lookup order would silently shadow one",
            )
        )
    if not all_starred:
        # with a literal __all__, every export must be listed explicitly
        for name in sorted((exports | module_exports) - all_names):
            findings.append(
                (path, all_line, "R003", f"export entry {name!r} missing from __all__")
            )
        for name in sorted(all_names - exports - module_exports - {"__version__"}):
            findings.append(
                (path, all_line, "R003", f"__all__ lists {name!r} with no export entry")
            )
    for name in sorted(exports - type_checking):
        findings.append(
            (
                path,
                export_line,
                "R003",
                f"_EXPORTS entry {name!r} missing from the TYPE_CHECKING import block",
            )
        )
    for name in sorted(type_checking - exports - module_exports):
        findings.append(
            (
                path,
                export_line,
                "R003",
                f"TYPE_CHECKING imports {name!r} which has no export entry",
            )
        )
    return findings


def lint_file(py_path: Path) -> List[Finding]:
    """All per-file rules over one source file.

    A ``# noqa: R00x`` comment on the flagged line waives that rule
    there — for code that exists *to* exercise a deprecated path (e.g.
    the strategy=/method= bit-identity benchmark).
    """
    path = str(py_path)
    source = py_path.read_text()
    tree = ast.parse(source, filename=path)
    findings = check_strategy_kwarg(tree, path)
    findings += check_mutable_defaults(tree, path)
    findings += check_all_names(tree, path)
    findings += check_serve_error_records(tree, path)
    findings += check_store_sqlite(tree, path)
    findings += check_sparse_densification(tree, path)
    findings += check_lock_discipline(tree, path)
    lines = source.splitlines()
    return [
        f
        for f in findings
        if f"noqa: {f[2]}" not in (lines[f[1] - 1] if 0 < f[1] <= len(lines) else "")
    ]


def lint_paths(paths) -> List[Finding]:
    """All rules over files/trees; adds the R003 namespace check when
    the scanned set includes the top-level ``repro/__init__.py``."""
    findings: List[Finding] = []
    files: List[Path] = []
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            files.extend(sorted(entry.rglob("*.py")))
        elif entry.suffix == ".py":
            files.append(entry)
    for py_path in files:
        findings.extend(lint_file(py_path))
        if py_path.name == "__init__.py" and py_path.parent.name == "repro":
            findings.extend(check_lazy_namespace(py_path))
    return findings


def main(argv=None) -> int:
    paths = (argv if argv is not None else sys.argv[1:]) or [
        REPO_ROOT / p for p in DEFAULT_PATHS
    ]
    findings = lint_paths(paths)
    for path, line, code, message in findings:
        print(f"{path}:{line}: {code} {message}")
    if findings:
        print(f"{len(findings)} finding(s)")
        return 1
    print("lint_repro: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
