"""E16 — fixed-point iteration on cyclic import graphs.

Tutorial claim: cyclic hierarchical models (mutual parameter imports)
converge geometrically under fixed-point iteration; damping trades a
slower rate for stability on oscillating maps.  We measure residual
decay on a two-model cycle and the damping ablation.
"""

import pytest

from conftest import print_table
from repro.core import FixedPointSolver, HierarchicalModel, Submodel, export_availability
from repro.nonstate import Component, ReliabilityBlockDiagram


def cyclic_hierarchy(k1=0.02, k2=0.04):
    h = HierarchicalModel()
    h.add_submodel(
        Submodel(
            "A",
            lambda imp: ReliabilityBlockDiagram(
                Component.fixed("a", k1 * imp.get("b_avail", 1.0))
            ),
            imports={"b_avail": ("B", "avail")},
            exports={"avail": export_availability},
        )
    )
    h.add_submodel(
        Submodel(
            "B",
            lambda imp: ReliabilityBlockDiagram(
                Component.fixed("b", k2 * imp.get("a_avail", 1.0))
            ),
            imports={"a_avail": ("A", "avail")},
            exports={"avail": export_availability},
        )
    )
    return h


def test_cyclic_solve(benchmark):
    h = cyclic_hierarchy()
    solution = benchmark(lambda: cyclic_hierarchy().solve(tol=1e-12))
    a = solution.value("A", "avail")
    b = solution.value("B", "avail")
    assert a == pytest.approx(1 - 0.02 * b, abs=1e-10)


def test_report():
    # Residual decay of the underlying fixed-point map.
    def update(x):
        a = 1.0 - 0.02 * x["b"]
        b = 1.0 - 0.04 * x["a"]
        return {"a": a, "b": b}

    result = FixedPointSolver(update, {"a": 0.5, "b": 0.5}, tol=1e-14).solve()
    rows = [(i + 1, r) for i, r in enumerate(result.residuals)]
    print_table("E16: fixed-point residual decay", ["iteration", "residual"], rows[:10])
    rate = result.convergence_rate()
    spectral = (0.02 * 0.04) ** 0.5  # spectral radius of the cycle Jacobian
    print(f"  estimated geometric rate: {rate:.3e} (spectral radius: {spectral:.3e})")
    assert rate < 0.1  # geometric, and fast for weak coupling

    # Damping ablation on an oscillating map x <- 1.6 - 0.9 x.
    damp_rows = []
    for damping in (0.0, 0.3, 0.6, 0.9):
        solver = FixedPointSolver(
            lambda x: {"v": 1.6 - 0.9 * x["v"]},
            {"v": 0.0},
            tol=1e-10,
            max_iterations=5000,
            damping=damping,
            raise_on_failure=False,
        )
        res = solver.solve()
        damp_rows.append((damping, res.iterations, res.converged))
        assert res.converged
        assert res.values["v"] == pytest.approx(1.6 / 1.9, abs=1e-8)
    print_table(
        "E16b: damping ablation on an oscillating map",
        ["damping", "iterations", "converged"],
        damp_rows,
    )
