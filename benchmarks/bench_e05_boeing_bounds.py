"""E05 — Boeing-787-style bounding of very large fault trees.

Tutorial claim: when exact quantification is infeasible, truncated
bounds (a) always bracket the truth, (b) converge monotonically with
depth, and (c) are orders of magnitude cheaper at scale.  The synthetic
generator reproduces the structural features of the 787 current-return
network (repetition-heavy, rare events).
"""

import time

import pytest

from conftest import print_table
from repro.casestudies.boeing import bounds_convergence_table, generate_boeing_style_tree
from repro.nonstate import FaultTreeBounds


def test_exact_quantification(benchmark):
    tree = generate_boeing_style_tree(n_sections=8)
    result = benchmark(lambda: tree.top_event_probability())
    assert result > 0.0


def test_depth2_bounds(benchmark):
    tree = generate_boeing_style_tree(n_sections=8)
    analysis = FaultTreeBounds(tree)
    lo, hi = benchmark(lambda: analysis.bonferroni(2))
    assert lo <= analysis.exact() <= hi


def test_esary_proschan(benchmark):
    # Min-path bounds need the minimal path sets, whose count explodes
    # combinatorially for this redundancy-heavy topology (the reason the
    # actual 787 analysis used cut-set-based bounds).  Benchmark the
    # method where it is feasible — a small tree — and let E05b's scaling
    # table carry the cut-set story.
    tree = generate_boeing_style_tree(n_sections=3)
    analysis = FaultTreeBounds(tree)
    lo, hi = benchmark(analysis.esary_proschan)
    assert lo <= analysis.exact() <= hi


def test_report():
    tree = generate_boeing_style_tree(n_sections=8)
    rows = []
    for depth, lo, hi, exact in bounds_convergence_table(tree, depths=[1, 2, 3, 4]):
        rows.append((depth, lo, hi, exact, hi - lo))
        assert lo - 1e-18 <= exact <= hi + 1e-18
    widths = [r[4] for r in rows]
    assert all(b <= a + 1e-18 for a, b in zip(widths, widths[1:]))
    print_table(
        "E05: Bonferroni bound convergence (8-section tree)",
        ["depth", "lower", "upper", "exact", "width"],
        rows,
    )

    # Scaling: bound cost vs exact cost as the tree grows.
    scale_rows = []
    for n_sections in (8, 16, 32, 64):
        tree = generate_boeing_style_tree(n_sections=n_sections)
        analysis = FaultTreeBounds(tree)
        start = time.perf_counter()
        lo, hi = analysis.bonferroni(2)
        bound_ms = (time.perf_counter() - start) * 1e3
        start = time.perf_counter()
        exact = analysis.exact()
        exact_ms = (time.perf_counter() - start) * 1e3
        assert lo - 1e-18 <= exact <= hi + 1e-18
        rel_width = (hi - lo) / exact if exact else 0.0
        scale_rows.append((n_sections, len(analysis.cut_sets), rel_width, bound_ms, exact_ms))
    print_table(
        "E05b: bound tightness & cost vs tree size",
        ["sections", "cut sets", "rel width", "bound ms", "exact ms"],
        scale_rows,
    )
    # Depth-2 bounds stay tight (<1%) in the rare-event regime:
    assert all(r[2] < 0.01 for r in scale_rows)
