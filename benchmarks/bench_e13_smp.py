"""E13 — non-exponential repair via SMP: shape (in)sensitivity.

Tutorial claims: (a) *steady-state* availability depends on the repair
distribution only through its mean — deterministic, Weibull, lognormal
repairs with equal means give identical steady states; (b) the
*transient* behaviour differs visibly — which is why the SMP machinery
exists at all.
"""

import numpy as np
import pytest

from conftest import print_table
from repro.distributions import Deterministic, Erlang, Exponential, Lognormal, Weibull
from repro.markov import SemiMarkovProcess

FAIL_RATE = 0.02
REPAIR_MEAN = 5.0

REPAIRS = {
    "exponential": Exponential(1.0 / REPAIR_MEAN),
    "deterministic": Deterministic(REPAIR_MEAN),
    "erlang-4": Erlang.from_mean(REPAIR_MEAN, stages=4),
    "weibull(k=2)": Weibull.from_mean_shape(REPAIR_MEAN, shape=2.0),
    "lognormal(cv=1.5)": Lognormal.from_mean_cv(REPAIR_MEAN, cv=1.5),
}


def build(repair):
    smp = SemiMarkovProcess()
    smp.add_transition("up", "down", 1.0, Exponential(FAIL_RATE))
    smp.add_transition("down", "up", 1.0, repair)
    return smp


def test_steady_state_solve(benchmark):
    smp = build(REPAIRS["lognormal(cv=1.5)"])
    result = benchmark(smp.steady_state)
    assert result["up"] == pytest.approx(50.0 / 55.0, rel=1e-9)


def test_transient_solve(benchmark):
    smp = build(REPAIRS["deterministic"])
    times = np.linspace(0.0, 40.0, 5)
    result = benchmark(lambda: smp.transient(times, "up", dt=0.05))
    assert result.shape == (5, 2)


def test_report():
    expected = (1.0 / FAIL_RATE) / (1.0 / FAIL_RATE + REPAIR_MEAN)
    rows = []
    for name, repair in REPAIRS.items():
        smp = build(repair)
        pi = smp.steady_state()
        rows.append((name, repair.mean(), pi["up"]))
        assert pi["up"] == pytest.approx(expected, rel=1e-9)
    print_table(
        "E13: steady-state availability is insensitive to repair shape",
        ["repair dist", "mean", "A_ss"],
        rows,
    )

    # Transient availability DOES depend on the shape.
    t_probe = np.array([4.0])
    t_rows = []
    up_probs = {}
    for name in ("exponential", "deterministic"):
        smp = build(REPAIRS[name])
        probs = smp.transient(t_probe, "down", dt=0.02)
        up_probs[name] = float(probs[0, smp.states.index("up")])
        t_rows.append((name, up_probs[name]))
    print_table(
        "E13b: transient P[up at t=4 | down at 0] differs by shape",
        ["repair dist", "P[up](4)"],
        t_rows,
    )
    # Deterministic(5) repair cannot possibly have finished by t=4:
    assert up_probs["deterministic"] < 0.02
    assert up_probs["exponential"] > 0.4
