"""E04 — reliability graphs: bridge factoring and BDD agreement.

Tutorial claim: reliability graphs strictly generalize series-parallel
RBDs (bridge network), and factoring/BDD produce identical exact
answers.  We benchmark both algorithms on the classic bridge and on
random two-terminal meshes.
"""

import numpy as np
import pytest

from conftest import print_table
from repro.nonstate import Component, ReliabilityGraph


def bridge(p_fail=0.1):
    g = ReliabilityGraph("s", "t", directed=False)
    for name, (u, v) in {
        "e1": ("s", "a"), "e2": ("s", "b"), "e3": ("a", "t"),
        "e4": ("b", "t"), "e5": ("a", "b"),
    }.items():
        g.add_edge(u, v, Component.fixed(name, p_fail))
    return g


def random_mesh(n_mid, n_edges, seed):
    rng = np.random.default_rng(seed)
    nodes = ["s"] + [f"m{i}" for i in range(n_mid)] + ["t"]
    g = ReliabilityGraph("s", "t", directed=True)
    for k in range(n_edges):
        i = int(rng.integers(0, len(nodes) - 1))
        j = int(rng.integers(i + 1, len(nodes)))
        g.add_edge(nodes[i], nodes[j], Component.fixed(f"e{k}", 0.1))
    return g


def test_bridge_closed_form(benchmark):
    g = bridge()
    p = {n: 0.9 for n in g.components}
    result = benchmark(lambda: g.connectivity_probability(p))
    expected = 2 * 0.9**2 + 2 * 0.9**3 - 5 * 0.9**4 + 2 * 0.9**5
    assert result == pytest.approx(expected)


def test_bridge_factoring(benchmark):
    g = bridge()
    p = {n: 0.9 for n in g.components}
    result = benchmark(lambda: g.connectivity_by_factoring(p))
    assert result == pytest.approx(g.connectivity_probability(p))


@pytest.mark.parametrize("seed", [1, 2])
def test_random_mesh_bdd(benchmark, seed):
    g = random_mesh(4, 12, seed)
    p = {n: 0.9 for n in g.components}
    relevant = {name for ps in g.minimal_path_sets() for name in ps}
    if not relevant:
        pytest.skip("mesh disconnected for this seed")
    result = benchmark(lambda: g.connectivity_probability(p))
    assert 0.0 <= result <= 1.0


def test_report():
    rows = []
    g = bridge()
    p_values = (0.5, 0.8, 0.9, 0.95, 0.99)
    for p in p_values:
        probs = {n: p for n in g.components}
        bdd = g.connectivity_probability(probs)
        factoring = g.connectivity_by_factoring(probs)
        closed = 2 * p**2 + 2 * p**3 - 5 * p**4 + 2 * p**5
        assert bdd == pytest.approx(closed, rel=1e-12)
        assert factoring == pytest.approx(closed, rel=1e-12)
        rows.append((p, bdd, factoring, closed))
    print_table(
        "E04: bridge network — BDD vs factoring vs closed form",
        ["p(edge up)", "BDD", "factoring", "closed form"],
        rows,
    )

    mesh_rows = []
    for seed in range(5):
        g = random_mesh(5, 14, seed)
        if not g.minimal_path_sets():
            continue
        p = {n: 0.9 for n in g.components}
        bdd = g.connectivity_probability(p)
        factoring = g.connectivity_by_factoring(p)
        assert bdd == pytest.approx(factoring, rel=1e-9)
        mesh_rows.append((seed, len(g.minimal_path_sets()), bdd))
    print_table(
        "E04b: random meshes — algorithm agreement",
        ["seed", "min paths", "P[s-t up]"],
        mesh_rows,
    )
