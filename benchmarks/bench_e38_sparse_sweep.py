"""E38 — compiled sparse sweeps: build-once CSR, warm-started campaigns.

Performance claims for :class:`repro.compile.CompiledSparseCTMC` on the
NFV service-chain zoo: a 200-point rate sweep over the ~10^5-state
chain (6 VNFs × 6 replicas → 7^6 = 117 649 tangible markings)

1. runs the BFS **once** — zero re-BFS across the whole campaign,
   asserted on the ``sparse.reachability.markings`` and
   ``compile.sparse.structure_builds`` counters;
2. is ≥ 5× faster end-to-end (structure build + 200 warm-started
   refill-and-solve points) than the pre-compile baseline that rebuilds
   lazy reachability and cold-starts the solver at every point
   (baseline measured on a few points and extrapolated — 200 real
   rebuilds would run for the better part of an hour, which is the
   point of this PR);
3. matches the independent-stages analytic oracle at **every** point
   within solver tolerance.

Wall-clock, per-point milliseconds, speedup and sweep statistics land
in ``BENCH_e38.json``.  The module doubles as the CI smoke gate::

    python benchmarks/bench_e38_sparse_sweep.py --smoke

sweeps 50 points over the 10^4-state chain under a time budget with the
same zero-re-BFS and oracle assertions.
"""

import argparse
import json
import pathlib
import resource
import sys
import time

import numpy as np

from conftest import print_table, write_record
from repro.casestudies import nfvchain
from repro.obs import Tracer, activate_tracer

# 6 VNFs x 6 replicas -> 7^6 = 117 649 tangible markings.
BIG = nfvchain.NFVChainSpec(n_vnfs=6, replicas=6, min_replicas=1)
# 4 VNFs x 9 replicas -> 10^4 exactly: the smoke-gate chain.
SMOKE = nfvchain.NFVChainSpec(n_vnfs=4, replicas=9, min_replicas=2)

N_POINTS = 200
SMOKE_POINTS = 50
#: lazy-rebuild baseline points actually measured (extrapolated to N_POINTS)
BASELINE_POINTS = 3
#: headline claim: compiled sweep vs per-point lazy rebuild
MIN_SPEEDUP = 5.0
#: per-point availability error vs the analytic oracle (the Krylov
#: relative-residual target is 1e-12; same gate as bench_e37)
MAX_ORACLE_ERR = 1e-8
SMOKE_BUDGET_S = 120.0
SMOKE_MAX_RSS_MB = 2_048.0

RECORD = {}


def _persist():
    """Write RECORD merged over the committed file: a partial run (one
    pytest test, the smoke gate) must not clobber the other legs."""
    merged = {}
    path = pathlib.Path(__file__).resolve().parent / "BENCH_e38.json"
    if path.exists():
        merged.update(json.loads(path.read_text()))
    merged.update(RECORD)
    write_record("e38", merged)


def _peak_rss_mb():
    """Process peak RSS in MB (ru_maxrss is KB on Linux)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def _rate_points(spec, n_points):
    """A failure-rate sweep around the spec's nominal value."""
    return [
        {"failure_rate": float(f)}
        for f in np.geomspace(spec.failure_rate / 5.0, spec.failure_rate * 5.0, n_points)
    ]


def _oracle(spec, points):
    from dataclasses import replace

    return np.array(
        [
            nfvchain.analytic_availability(replace(spec, **p))
            for p in points
        ]
    )


def _lazy_rebuild_baseline(spec, points):
    """The pre-compile path: rebuild lazy reachability, cold-solve.

    Exactly what ``evaluate_availability`` did before the compiled
    structure cache: ``build_nfv_model(spec)`` (BFS + interning from
    scratch) followed by a cold front-door solve, per point.
    """
    from dataclasses import replace

    t0 = time.perf_counter()
    for p in points:
        model = nfvchain.build_nfv_model(replace(spec, **p))
        float(model.steady_state_availability())
    return (time.perf_counter() - t0) / len(points)


def _run_sweep(spec, n_points):
    """Compile once, sweep ``n_points``, assert zero re-BFS; return record."""
    points = _rate_points(spec, n_points)
    tracer = Tracer("bench-e38")
    with activate_tracer(tracer):
        t0 = time.perf_counter()
        compiled = nfvchain.compile_nfv_chain(spec)
        build_s = time.perf_counter() - t0
        markings_after_build = tracer.metrics.counter(
            "sparse.reachability.markings"
        ).value
        builds_after_build = tracer.metrics.counter(
            "compile.sparse.structure_builds"
        ).value

        t0 = time.perf_counter()
        outputs = compiled.sweep(points)
        sweep_s = time.perf_counter() - t0

        rebfs = (
            tracer.metrics.counter("sparse.reachability.markings").value
            - markings_after_build
        )
        rebuilds = (
            tracer.metrics.counter("compile.sparse.structure_builds").value
            - builds_after_build
        )
    oracle_err = float(np.abs(outputs - _oracle(spec, points)).max())
    stats = compiled.last_sweep_stats.to_dict()
    return {
        "n_states": compiled.n_states,
        "nnz": compiled.nnz,
        "n_points": n_points,
        "build_s": build_s,
        "sweep_s": sweep_s,
        "per_point_ms": 1e3 * sweep_s / n_points,
        "oracle_err": oracle_err,
        "rebfs_markings": rebfs,
        "structure_rebuilds": rebuilds,
        "sweep_stats": stats,
        "peak_rss_mb": _peak_rss_mb(),
    }


def test_200_point_sweep_beats_lazy_rebuild_5x():
    """The headline: 200 warm-started points on 117 649 states, ≥ 5×
    over per-point lazy rebuild, zero re-BFS, every point on the oracle."""
    nfvchain._STRUCTURE_CACHE.clear()
    leg = _run_sweep(BIG, N_POINTS)

    baseline_pp = _lazy_rebuild_baseline(BIG, _rate_points(BIG, BASELINE_POINTS))
    leg["baseline_points_measured"] = BASELINE_POINTS
    leg["baseline_per_point_s"] = baseline_pp
    leg["baseline_extrapolated_s"] = baseline_pp * N_POINTS
    compiled_total = leg["build_s"] + leg["sweep_s"]
    leg["compiled_total_s"] = compiled_total
    leg["speedup"] = leg["baseline_extrapolated_s"] / compiled_total
    RECORD["big_sweep"] = leg
    _persist()

    assert leg["n_states"] >= 100_000
    assert leg["rebfs_markings"] == 0, "sweep re-ran BFS reachability"
    assert leg["structure_rebuilds"] == 0, "sweep rebuilt the compiled structure"
    assert leg["oracle_err"] < MAX_ORACLE_ERR
    assert leg["sweep_stats"]["warm_solves"] == N_POINTS - 1
    assert leg["speedup"] >= MIN_SPEEDUP

    print_table(
        f"E38: {N_POINTS}-point rate sweep, NFV chain {BIG.n_vnfs} VNFs x "
        f"{BIG.replicas} replicas ({leg['n_states']} states, {leg['nnz']} nnz)",
        ["quantity", "value"],
        [
            ("structure build s", leg["build_s"]),
            ("sweep s", leg["sweep_s"]),
            ("per point ms", leg["per_point_ms"]),
            ("baseline s/point (lazy rebuild)", leg["baseline_per_point_s"]),
            ("speedup (extrapolated)", leg["speedup"]),
            ("max oracle err", leg["oracle_err"]),
            ("re-BFS markings", leg["rebfs_markings"]),
            ("mean Krylov iterations", leg["sweep_stats"]["mean_iterations"]),
            ("precond builds/reuses", f"{leg['sweep_stats']['precond_builds']}"
             f"/{leg['sweep_stats']['precond_reuses']}"),
            ("peak RSS MB", leg["peak_rss_mb"]),
        ],
    )


def smoke():
    """CI gate: 50 points over the 10^4-state chain under a budget."""
    nfvchain._STRUCTURE_CACHE.clear()
    start = time.perf_counter()
    leg = _run_sweep(SMOKE, SMOKE_POINTS)
    wall = time.perf_counter() - start
    leg["wall_s"] = wall
    RECORD["smoke"] = leg
    _persist()

    failures = []
    if wall > SMOKE_BUDGET_S:
        failures.append(f"wall {wall:.1f}s > budget {SMOKE_BUDGET_S}s")
    if leg["peak_rss_mb"] > SMOKE_MAX_RSS_MB:
        failures.append(
            f"peak RSS {leg['peak_rss_mb']:.0f} MB > {SMOKE_MAX_RSS_MB} MB"
        )
    if leg["rebfs_markings"] != 0:
        failures.append(f"re-BFS: {leg['rebfs_markings']} markings re-interned")
    if leg["structure_rebuilds"] != 0:
        failures.append(f"{leg['structure_rebuilds']} structure rebuilds")
    if leg["oracle_err"] > MAX_ORACLE_ERR:
        failures.append(f"oracle err {leg['oracle_err']:.2e} > {MAX_ORACLE_ERR}")

    print(
        f"bench_e38 --smoke: {leg['n_states']} states, {leg['n_points']} points, "
        f"build={leg['build_s']:.2f}s, sweep={leg['sweep_s']:.2f}s "
        f"({leg['per_point_ms']:.1f} ms/pt, warm={leg['sweep_stats']['warm_solves']}), "
        f"err={leg['oracle_err']:.1e}, RSS={leg['peak_rss_mb']:.0f} MB, "
        f"wall={wall:.1f}s"
    )
    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run only the 10^4-state 50-point CI gate (time budget)",
    )
    cli_args = parser.parse_args()
    if cli_args.smoke:
        sys.exit(smoke())
    test_200_point_sweep_beats_lazy_rebuild_5x()
    print("bench_e38: all legs passed")
