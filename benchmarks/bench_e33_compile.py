"""E33 — compiled sweep kernels: build structure once, solve many points.

Claim: compiling the BladeCenter hierarchy (frozen CTMC sparsity +
vectorized structure functions, :mod:`repro.compile`) makes a serial
200-point availability sweep at least 5x faster than rebuilding the
model at every point, while producing the same numbers — the engine's
auto-substitution is bit-identical, so the tolerance check here is a
formality.  The wall-clock record lands in ``BENCH_e33.json`` so the
perf trajectory is tracked across revisions.
"""

import os
import time

import numpy as np
import pytest

from conftest import print_table, write_record
from repro.casestudies.bladecenter import evaluate_availability
from repro.compile import compile_model
from repro.engine import evaluate_batch

N_POINTS = 200

POINTS = [
    {
        "disk_failure_rate": 1e-5 * (1.0 + 0.005 * k),
        "software_failure_rate": 1.0 / 1440.0 * (1.0 + 0.002 * k),
    }
    for k in range(N_POINTS)
]

def test_compiled_sweep_speedup():
    """Serial 200-point BladeCenter sweep: compiled >= 5x uncompiled."""
    # Warm both paths outside the timed region (imports, BDD build,
    # compiled-structure singletons, numpy caches).
    evaluate_availability(POINTS[0])
    compiled = compile_model(evaluate_availability)
    compiled(POINTS[0])

    start = time.perf_counter()
    uncompiled = evaluate_batch(evaluate_availability, POINTS, compile=False)
    uncompiled_s = time.perf_counter() - start

    start = time.perf_counter()
    fast = evaluate_batch(evaluate_availability, POINTS)  # auto-compiles
    compiled_s = time.perf_counter() - start

    speedup = uncompiled_s / compiled_s
    print_table(
        f"E33: {N_POINTS}-point BladeCenter sweep, uncompiled vs compiled (serial)",
        ["path", "wall s", "points/s"],
        [
            ("uncompiled", uncompiled_s, N_POINTS / uncompiled_s),
            ("compiled", compiled_s, N_POINTS / compiled_s),
            ("speedup", speedup, 0.0),
        ],
    )

    ref = np.asarray(uncompiled.outputs)
    got = np.asarray(fast.outputs)
    assert np.max(np.abs(got - ref)) <= 1e-12
    # Substitution is in fact bit-identical, not merely within tolerance.
    assert got.tobytes() == ref.tobytes()

    write_record(
        "e33",
        {
            "points": N_POINTS,
            "uncompiled_s": uncompiled_s,
            "compiled_s": compiled_s,
            "speedup": speedup,
        },
    )

    cpus = os.cpu_count() or 1
    if cpus < 2:
        pytest.skip(f"speedup assertion needs >= 2 CPUs for stable timing, found {cpus}")
    assert speedup >= 5.0, f"compiled path only {speedup:.2f}x faster"


def test_evaluate_many_matches_per_point_calls():
    """The batched kernel equals the one-at-a-time compiled calls."""
    compiled = compile_model(evaluate_availability)
    batch = compiled.evaluate_many(POINTS[:20])
    singles = np.array([compiled(p) for p in POINTS[:20]])
    assert batch.tobytes() == singles.tobytes()
