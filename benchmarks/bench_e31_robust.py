"""E31 — fault-tolerant batch evaluation: overhead, completion, fallback.

Robustness claims: (1) carrying a FaultPolicy through a clean 10k-eval
batch costs < 5% wall-clock over the policy-free engine; (2) a batch
with 5% injected transient faults completes at rate 1.0 under a retry
policy and reports exactly the faulted points under skip; (3) the
steady-state fallback chain solves a stiff availability model even when
its first-choice solver is forced to fail, at sub-millisecond overhead
per solve.
"""

import time

import numpy as np

from conftest import print_table, write_record
from repro.engine import evaluate_batch
from repro.markov.fallback import solve_steady_state
from repro.markov.solvers import gth_solve
from repro.robust import FailingCallable, FaultInjector, FaultPolicy

N_CLEAN = 10_000
N_FAULTY = 2_000
FAULT_RATE = 0.05
SEED = 31

ASSIGNMENTS_CLEAN = [{"x": float(k), "y": float(k % 11)} for k in range(N_CLEAN)]
ASSIGNMENTS_FAULTY = [{"x": float(k), "y": float(k % 11)} for k in range(N_FAULTY)]


def polynomial(assignment):
    """A cheap evaluator: isolates the engine's bookkeeping cost."""
    return assignment["x"] ** 2 + 3.0 * assignment["y"]


def _time_batch(policy, repeats=5):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        batch = evaluate_batch(polynomial, ASSIGNMENTS_CLEAN, policy=policy)
        best = min(best, time.perf_counter() - start)
    return batch, best


def test_fault_policy_overhead_under_5_percent():
    """Skip-policy bookkeeping on a clean 10k batch costs < 5% wall-clock."""
    baseline_batch, baseline_s = _time_batch(None)
    policy_batch, policy_s = _time_batch(FaultPolicy(on_error="skip"))
    overhead = policy_s / baseline_s - 1.0
    print_table(
        "E31: clean 10k-eval batch, policy-free vs FaultPolicy('skip')",
        ["configuration", "wall s", "evals/s", "overhead %"],
        [
            ("policy=None", baseline_s, N_CLEAN / baseline_s, 0.0),
            ("skip policy", policy_s, N_CLEAN / policy_s, 100.0 * overhead),
        ],
    )
    np.testing.assert_array_equal(baseline_batch.outputs, policy_batch.outputs)
    write_record(
        "e31",
        {
            "evals": N_CLEAN,
            "baseline_s": baseline_s,
            "policy_s": policy_s,
            "overhead_fraction": overhead,
            "baseline_evals_per_s": N_CLEAN / baseline_s,
            "policy_evals_per_s": N_CLEAN / policy_s,
        },
    )
    assert policy_batch.stats.n_failed == 0
    assert overhead < 0.05


def test_completion_under_injected_faults():
    """5% transient faults: retry completes 100%, skip isolates exactly them."""
    expected = np.array([polynomial(a) for a in ASSIGNMENTS_FAULTY])

    def injector(fail_attempts):
        return FaultInjector(
            polynomial, mode="raise", rate=FAULT_RATE, seed=SEED, fail_attempts=fail_attempts
        )

    n_faulty = sum(injector(1).selects(a) for a in ASSIGNMENTS_FAULTY)

    start = time.perf_counter()
    retried = evaluate_batch(
        injector(1), ASSIGNMENTS_FAULTY, policy=FaultPolicy(on_error="retry", max_retries=2)
    )
    retry_s = time.perf_counter() - start

    start = time.perf_counter()
    skipped = evaluate_batch(
        injector(None), ASSIGNMENTS_FAULTY, policy=FaultPolicy(on_error="skip")
    )
    skip_s = time.perf_counter() - start

    print_table(
        f"E31: {N_FAULTY} evals, {n_faulty} injected faults ({FAULT_RATE:.0%} rate)",
        ["policy", "completed", "failed", "retries", "wall s"],
        [
            ("retry(2)", retried.stats.completion_rate(), retried.n_failed,
             retried.stats.n_retries, retry_s),
            ("skip", skipped.stats.completion_rate(), skipped.n_failed,
             skipped.stats.n_retries, skip_s),
        ],
    )
    # Retry: every transient fault recovered, outputs bit-identical to clean.
    assert retried.stats.completion_rate() == 1.0
    np.testing.assert_array_equal(retried.outputs, expected)
    # Skip: exactly the injected set failed, survivors bit-identical.
    assert skipped.n_failed == n_faulty
    ok = skipped.ok
    np.testing.assert_array_equal(skipped.outputs[ok], expected[ok])


def test_solver_fallback_overhead_and_recovery():
    """The fallback front-end solves a stiff model through a forced failure."""
    lam, mu = 1e-8, 10.0
    q = np.array(
        [
            [-2 * lam, 2 * lam, 0.0],
            [mu, -(mu + lam), lam],
            [0.0, mu, -mu],
        ]
    )
    repeats = 200

    start = time.perf_counter()
    for _ in range(repeats):
        pi_raw = gth_solve(q)
    raw_s = (time.perf_counter() - start) / repeats

    start = time.perf_counter()
    for _ in range(repeats):
        report = solve_steady_state(q)
    chained_s = (time.perf_counter() - start) / repeats

    forced = solve_steady_state(
        q, stages={"gth": FailingCallable(lambda g: gth_solve(g.toarray()), n_failures=1)}
    )

    print_table(
        "E31: stiff 3-state model, raw GTH vs diagnosed fallback chain",
        ["configuration", "ms/solve", "method", "fallbacks"],
        [
            ("gth_solve", 1e3 * raw_s, "gth", 0),
            ("solve_steady_state", 1e3 * chained_s, report.method, report.fallbacks_used),
            ("forced gth failure", 0.0, forced.method, forced.fallbacks_used),
        ],
    )
    np.testing.assert_allclose(report.pi, pi_raw, atol=1e-15)
    assert report.method == "gth"  # stiff chain -> GTH leads and wins
    assert forced.method == "direct"  # first stage failed, second recovered
    np.testing.assert_allclose(forced.pi, pi_raw, atol=1e-10)
    assert chained_s - raw_s < 1e-3  # diagnostics + guards < 1 ms per solve
