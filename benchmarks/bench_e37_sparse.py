"""E37 — large-state-space solver path: lazy generation + sparse backends.

Scalability claims on the NFV service-chain zoo
(:mod:`repro.casestudies.nfvchain`): (1) a ≥10^5-state chain generates
lazily into CSR at thousands of states/sec with peak RSS bounded far
below the dense footprint (a dense generator alone would be
``8 n²`` ≈ 110 GB at n = 117 649); (2) steady-state through the
standard ``solve_steady_state`` front door auto-selects the iterative
backend and matches the independent-stages analytic oracle, and
transient through ``solve_transient`` auto-selects Krylov stepping and
matches the per-stage transient product; (3) the memory guard turns a
would-be blow-up into a clean :class:`~repro.exceptions.StateSpaceError`;
(4) on small models the lazy path is *bit-identical* to the eager
dict-built path — same BFS order, same triplet order, same generator
bytes.

Wall-clock, states/sec and peak-RSS land in ``BENCH_e37.json``.  The
module doubles as the CI smoke gate::

    python benchmarks/bench_e37_sparse.py --smoke

builds and solves a 10^4-state chain under a time/memory budget and
exits non-zero on any miss — the cheap end-to-end proof that the
sparse path works in this environment.
"""

import argparse
import json
import pathlib
import resource
import sys
import time

import numpy as np

from conftest import print_table, write_record
from repro.casestudies import nfvchain
from repro.exceptions import StateSpaceError
from repro.markov.ctmc import CTMC

# 6 VNFs x 6 replicas -> 7^6 = 117 649 tangible markings.
BIG = nfvchain.NFVChainSpec(n_vnfs=6, replicas=6, min_replicas=1)
# 4 VNFs x 9 replicas -> 10^4 exactly: the smoke-gate chain.
SMOKE = nfvchain.NFVChainSpec(n_vnfs=4, replicas=9, min_replicas=2)

#: generation throughput floor (measured ~14k states/s; 10x headroom)
MIN_STATES_PER_SEC = 1_400.0
#: absolute peak-RSS ceiling for the whole big-model leg
MAX_PEAK_RSS_MB = 4_096.0
#: smoke budget: 10^4 states, build + steady state + transient
SMOKE_BUDGET_S = 120.0
SMOKE_MAX_RSS_MB = 2_048.0

RECORD = {}


def _persist():
    """Write RECORD merged over the committed file: a partial run (one
    pytest test, the smoke gate) must not clobber the other legs."""
    merged = {}
    path = pathlib.Path(__file__).resolve().parent / "BENCH_e37.json"
    if path.exists():
        merged.update(json.loads(path.read_text()))
    merged.update(RECORD)
    write_record("e37", merged)


def _peak_rss_mb():
    """Process peak RSS in MB (ru_maxrss is KB on Linux)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def _stage_transient_up(spec, times):
    """P[stage up at t | all replicas up at 0] from the small stage chain."""
    chain = CTMC()
    for k in range(spec.replicas, 0, -1):
        chain.add_transition(k, k - 1, k * spec.failure_rate)
    for k in range(spec.replicas):
        chain.add_transition(
            k, k + 1, spec.repair_rate * min(spec.replicas - k, spec.repair_crews)
        )
    probs = chain.transient(times, {spec.replicas: 1.0})
    states = list(chain.states)
    idx = [i for i, s in enumerate(states) if s >= spec.min_replicas]
    return probs[:, idx].sum(axis=1)


def _run_chain(spec, times):
    """Build lazily and solve steady state + transient; return the record."""
    n_expected = nfvchain.state_count(spec)
    t0 = time.perf_counter()
    model = nfvchain.build_nfv_model(spec)
    chain = model.srn.chain
    build_s = time.perf_counter() - t0
    assert chain.n_states == n_expected

    t0 = time.perf_counter()
    report = chain.steady_state_report()
    steady_s = time.perf_counter() - t0
    availability = float(report.pi[chain.up_mask].sum())

    ts = np.asarray(times, dtype=float)
    t0 = time.perf_counter()
    probs = chain.transient(ts)
    transient_s = time.perf_counter() - t0
    avail_t = probs[:, chain.up_mask].sum(axis=1)

    exact = nfvchain.analytic_availability(spec)
    exact_t = _stage_transient_up(spec, ts) ** spec.n_vnfs
    return {
        "n_states": chain.n_states,
        "nnz": chain.nnz,
        "build_s": build_s,
        "states_per_sec": chain.n_states / build_s,
        "steady_state_s": steady_s,
        "steady_state_method": report.method,
        "transient_s": transient_s,
        "availability": availability,
        "availability_err": abs(availability - exact),
        "transient_err": float(np.abs(avail_t - exact_t).max()),
        "peak_rss_mb": _peak_rss_mb(),
    }


def test_1e5_state_chain_end_to_end():
    """≥10^5 states: lazy build at gated states/sec, iterative steady
    state and Krylov transient through the standard front doors, both
    matching the independent-stages oracle, peak RSS bounded."""
    leg = _run_chain(BIG, times=[10.0, 100.0, 1000.0])
    RECORD["big"] = leg
    _persist()

    assert leg["n_states"] >= 100_000
    assert leg["states_per_sec"] >= MIN_STATES_PER_SEC
    assert leg["steady_state_method"] in ("gmres", "bicgstab")
    assert leg["availability_err"] < 1e-8
    assert leg["transient_err"] < 1e-6
    assert leg["peak_rss_mb"] < MAX_PEAK_RSS_MB

    print_table(
        f"E37: NFV chain {BIG.n_vnfs} VNFs x {BIG.replicas} replicas "
        f"({leg['n_states']} states, {leg['nnz']} nnz)",
        ["quantity", "value"],
        [
            ("build s", leg["build_s"]),
            ("states/sec", leg["states_per_sec"]),
            ("steady state s", leg["steady_state_s"]),
            ("method", leg["steady_state_method"]),
            ("transient s", leg["transient_s"]),
            ("availability", leg["availability"]),
            ("avail err", leg["availability_err"]),
            ("transient err", leg["transient_err"]),
            ("peak RSS MB", leg["peak_rss_mb"]),
        ],
    )


def test_memory_guard_raises_cleanly():
    """An absurdly small memory budget dies with StateSpaceError, not OOM."""
    start = time.perf_counter()
    try:
        nfvchain.build_nfv_srn(BIG, memory_limit_mb=0.25).chain
    except StateSpaceError as exc:
        guard_s = time.perf_counter() - start
        RECORD["memory_guard"] = {
            "limit_mb": 0.25,
            "raised": type(exc).__name__,
            "wall_s": guard_s,
        }
        _persist()
    else:  # pragma: no cover - the guard must fire
        raise AssertionError("memory guard did not fire at a 0.25 MB budget")


def test_small_model_lazy_eager_bit_identical():
    """Default 64-state spec: lazy CSR == eager CSR, byte for byte."""
    spec = nfvchain.NFVChainSpec()
    eager = nfvchain.build_nfv_srn(spec, lazy=False).chain.generator().tocsr()
    lazy = nfvchain.build_nfv_srn(spec).chain.generator().tocsr()
    eager.sort_indices()
    lazy.sort_indices()
    assert eager.shape == lazy.shape
    assert eager.indptr.tobytes() == lazy.indptr.tobytes()
    assert eager.indices.tobytes() == lazy.indices.tobytes()
    assert eager.data.tobytes() == lazy.data.tobytes()
    RECORD["bit_identity"] = {"n_states": eager.shape[0], "identical": True}
    _persist()


def smoke():
    """CI gate: the 10^4-state chain end-to-end under a fixed budget."""
    start = time.perf_counter()
    leg = _run_chain(SMOKE, times=[10.0, 100.0])
    wall = time.perf_counter() - start
    leg["wall_s"] = wall
    RECORD["smoke"] = leg
    _persist()

    failures = []
    if wall > SMOKE_BUDGET_S:
        failures.append(f"wall {wall:.1f}s > budget {SMOKE_BUDGET_S}s")
    if leg["peak_rss_mb"] > SMOKE_MAX_RSS_MB:
        failures.append(
            f"peak RSS {leg['peak_rss_mb']:.0f} MB > {SMOKE_MAX_RSS_MB} MB"
        )
    if leg["availability_err"] > 1e-8:
        failures.append(f"availability err {leg['availability_err']:.2e} > 1e-8")
    if leg["transient_err"] > 1e-6:
        failures.append(f"transient err {leg['transient_err']:.2e} > 1e-6")

    print(
        f"bench_e37 --smoke: {leg['n_states']} states, "
        f"{leg['states_per_sec']:.0f} states/s, steady={leg['steady_state_s']:.2f}s "
        f"({leg['steady_state_method']}), transient={leg['transient_s']:.2f}s, "
        f"RSS={leg['peak_rss_mb']:.0f} MB, wall={wall:.1f}s"
    )
    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run only the 10^4-state CI gate (time/memory budget)",
    )
    cli_args = parser.parse_args()
    if cli_args.smoke:
        sys.exit(smoke())
    test_small_model_lazy_eager_bit_identical()
    test_memory_guard_raises_cleanly()
    test_1e5_state_chain_end_to_end()
    print("bench_e37: all legs passed")
