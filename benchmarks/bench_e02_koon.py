"""E02 — k-of-n closed form vs the general DP/BDD algorithms.

Tutorial claim: identical-component k-of-n systems have the binomial
closed form; the library's general algorithms must reproduce it exactly
and remain fast at n = 64 (where naive subset enumeration has 2^64 terms).
"""

from math import comb

import pytest

from conftest import print_table
from repro.nonstate import BasicEvent, Component, FaultTree, KofN, KofNGate, ReliabilityBlockDiagram


def binomial_up(n, k, p_fail):
    p = 1 - p_fail
    return sum(comb(n, i) * p**i * (1 - p) ** (n - i) for i in range(k, n + 1))


@pytest.mark.parametrize("n,k", [(3, 2), (5, 3), (32, 20), (64, 40)])
def test_rbd_kofn(benchmark, n, k):
    comps = [Component.fixed(f"c{i}", 0.05) for i in range(n)]
    rbd = ReliabilityBlockDiagram(KofN(k, comps))
    result = benchmark(rbd.steady_state_availability)
    assert result == pytest.approx(binomial_up(n, k, 0.05), rel=1e-12)


@pytest.mark.parametrize("n,k", [(5, 3), (32, 20), (64, 40)])
def test_fault_tree_kofn_bdd(benchmark, n, k):
    # failure-space: system fails when n-k+1 of n fail
    events = [BasicEvent.fixed(f"e{i}", 0.05) for i in range(n)]
    tree = FaultTree(KofNGate(n - k + 1, events))
    result = benchmark(lambda: tree.top_event_probability())
    assert 1 - result == pytest.approx(binomial_up(n, k, 0.05), rel=1e-12)


def test_report():
    rows = []
    for n, k in [(3, 2), (5, 3), (16, 10), (32, 20), (64, 40)]:
        comps = [Component.fixed(f"c{i}", 0.05) for i in range(n)]
        rbd = ReliabilityBlockDiagram(KofN(k, comps))
        got = rbd.steady_state_availability()
        expected = binomial_up(n, k, 0.05)
        rows.append((f"{k}-of-{n}", got, expected, abs(got - expected)))
        assert got == pytest.approx(expected, rel=1e-12)
    print_table(
        "E02: k-of-n general algorithm vs binomial closed form",
        ["system", "computed", "closed form", "abs err"],
        rows,
    )
