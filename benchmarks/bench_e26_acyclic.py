"""E26 (extension) — closed-form acyclic transients vs uniformization.

Extension ablation: for no-repair reliability chains (acyclic), the ACE
symbolic solution has zero truncation error and costs nothing per extra
evaluation point; uniformization pays per time point and per tolerance
digit.  Both must agree to solver precision.
"""

import time

import numpy as np
import pytest

from conftest import print_table
from repro.markov import CTMC, acyclic_transient


def pipeline_chain(n_stages, base_rate=1.0):
    """A no-repair degradation chain with well-separated rates.

    Geometric spacing keeps the partial-fraction coefficients
    well-conditioned (the closed form degrades when many nearly equal
    but distinct rates share a path — see the module note).
    """
    chain = CTMC()
    for i in range(n_stages):
        chain.add_transition(i, i + 1, base_rate * 1.35**i)
    return chain


def redundancy_chain():
    """2-unit parallel + spare: a small acyclic reliability model."""
    chain = CTMC()
    chain.add_transition("2+spare", "2", 0.05)
    chain.add_transition("2+spare", "1+spare", 0.2)
    chain.add_transition("2", "1", 0.2)
    chain.add_transition("1+spare", "1", 0.05)
    chain.add_transition("1+spare", "2", 0.5)
    chain.add_transition("1", "0", 0.1)
    return chain


@pytest.mark.parametrize("n", [5, 12, 24])
def test_symbolic_solve_cost(benchmark, n):
    chain = pipeline_chain(n)
    solution = benchmark(lambda: acyclic_transient(chain, 0))
    assert solution.n_terms() > 0


def test_uniformization_cost(benchmark):
    chain = pipeline_chain(12)
    times = np.linspace(0.1, 10.0, 50)
    result = benchmark(lambda: chain.transient(times, 0, tol=1e-12))
    assert result.shape == (50, 13)


def test_report():
    rows = []
    for n in (4, 8, 12, 18, 24):
        chain = pipeline_chain(n)
        times = np.linspace(0.1, 10.0, 100)

        start = time.perf_counter()
        solution = acyclic_transient(chain, 0)
        exact = solution.evaluate(times)
        symbolic_ms = (time.perf_counter() - start) * 1e3

        start = time.perf_counter()
        uni = chain.transient(times, 0, tol=1e-12)
        uni_ms = (time.perf_counter() - start) * 1e3

        gap = float(np.abs(exact - uni).max())
        rows.append((n, solution.n_terms(), gap, symbolic_ms, uni_ms))
        assert gap < 1e-9
    print_table(
        "E26: acyclic chains — symbolic (ACE) vs uniformization",
        ["states", "symbolic terms", "max gap", "symbolic ms", "uniform ms"],
        rows,
    )

    # The redundancy model: reliability curve from the symbolic solution.
    chain = redundancy_chain()
    solution = acyclic_transient(chain, "2+spare")
    up = ["2+spare", "2", "1+spare", "1"]
    series = [(t, float(solution.reliability(up, t))) for t in (1.0, 5.0, 10.0, 20.0)]
    print_table("E26b: spare-pool reliability (closed form)", ["t", "R(t)"], series)
    values = [r for _t, r in series]
    assert all(b < a for a, b in zip(values, values[1:]))
