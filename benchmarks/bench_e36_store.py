"""E36 — durable campaign store: crash recovery, sharding, warm overhead.

Durability claims: (1) a 200-point compiled BladeCenter campaign whose
worker is SIGKILLed at ~50% resumes to byte-identical results, with the
resume re-evaluating only the uncommitted points — the kill loses at
most the one chunk in flight; (2) two workers draining one shared store
commit every chunk exactly once (zero duplicate result rows); (3) a
fully-warm rerun through the store-backed cache costs within 5% of the
pure in-memory cache, because the memory LRU fronts the sqlite tier.

The wall-clock and recovery record lands in ``BENCH_e36.json``.
"""

import os
import signal
import subprocess
import sys
import threading
import time

import numpy as np

from conftest import print_table, write_record
from repro.casestudies.bladecenter import evaluate_availability
from repro.engine import EvaluationCache, evaluate_batch
from repro.store import (
    CampaignStore,
    ResumableCampaign,
    StoreBackedCache,
    campaign_id_for,
    encode_point_key,
)

N_POINTS = 200
CHUNK = 25  # 8 chunks
KILL_AFTER = 103  # dies mid-chunk-5: 4 chunks (100 points) committed

POINTS = [
    {
        "disk_failure_rate": 1e-5 * (1.0 + 0.005 * k),
        "software_failure_rate": 1.0 / 1440.0 * (1.0 + 0.002 * k),
    }
    for k in range(N_POINTS)
]

RECORD = {}


def _worker_cmd(path):
    return [
        sys.executable, "-m", "repro.store", "resume",
        "--store", path, "--worker-id", "bench-e36", "--quiet",
    ]


def _worker_env():
    src = os.path.join(os.path.dirname(__file__), "..", "src")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
    return env


def test_kill_at_half_resume_bit_identical(tmp_path):
    """SIGKILL at ~50%: whole chunks survive, resume re-evaluates only
    the uncommitted tail, final outputs byte-identical to uninterrupted."""
    baseline = np.asarray(
        evaluate_batch(evaluate_availability, POINTS).outputs, dtype=float
    )

    path = str(tmp_path / "e36.sqlite")
    campaign_id = campaign_id_for(
        "bladecenter", [encode_point_key(p) for p in POINTS], chunk_size=CHUNK
    )
    with CampaignStore(path) as store:
        store.create_campaign(campaign_id, "bladecenter", POINTS, chunk_size=CHUNK)

    start = time.perf_counter()
    proc = subprocess.run(
        _worker_cmd(path) + ["--kill-after", str(KILL_AFTER)],
        env=_worker_env(), capture_output=True, timeout=600,
    )
    kill_leg_s = time.perf_counter() - start
    assert proc.returncode == -signal.SIGKILL

    with CampaignStore(path) as store:
        committed = store.counts("bladecenter")["ok"]
    assert committed % CHUNK == 0, "partial chunks never reach the store"
    assert 0 < committed < N_POINTS
    lost = KILL_AFTER - committed  # evaluated but unflushed at the kill
    assert 0 <= lost <= CHUNK, "the kill loses at most the chunk in flight"

    start = time.perf_counter()
    proc = subprocess.run(
        _worker_cmd(path), env=_worker_env(), capture_output=True, timeout=600
    )
    resume_leg_s = time.perf_counter() - start
    assert proc.returncode == 0, proc.stderr.decode()

    with CampaignStore(path) as store:
        verify = ResumableCampaign(
            evaluate_availability, POINTS, store, model="bladecenter", chunk_size=CHUNK
        )
        outputs = verify.run().outputs
        assert verify.evaluated_points == 0  # everything served durably
    assert outputs.tobytes() == baseline.tobytes()

    print_table(
        f"E36: {N_POINTS}-point BladeCenter campaign, SIGKILL at eval {KILL_AFTER}",
        ["quantity", "value"],
        [
            ("points committed at kill", float(committed)),
            ("evaluations lost to the kill", float(lost)),
            ("chunk size (max loss)", float(CHUNK)),
            ("kill leg wall s", kill_leg_s),
            ("resume leg wall s", resume_leg_s),
        ],
    )
    RECORD["crash_recovery"] = {
        "points": N_POINTS,
        "chunk_size": CHUNK,
        "killed_at_evaluation": KILL_AFTER,
        "points_committed_at_kill": committed,
        "evaluations_lost": lost,
        "resume_reevaluated": N_POINTS - committed,
        "bit_identical": True,
        "kill_leg_s": kill_leg_s,
        "resume_leg_s": resume_leg_s,
    }
    write_record("e36", RECORD)


def test_two_workers_share_one_store_without_duplicates(tmp_path):
    """Two workers drain one store: all points exactly once, zero
    duplicate commits, disjoint chunk ownership."""
    path = str(tmp_path / "e36_shard.sqlite")
    with CampaignStore(path) as store:
        workers = [
            ResumableCampaign(
                evaluate_availability, POINTS, store, model="bladecenter",
                chunk_size=CHUNK, worker_id=f"w{k}",
            )
            for k in range(2)
        ]
        start = time.perf_counter()
        threads = [threading.Thread(target=w.run) for w in workers]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        shared_s = time.perf_counter() - start

        assert all(w.complete for w in workers)
        assert sum(w.evaluated_points for w in workers) == N_POINTS
        assert sum(w.duplicate_commits for w in workers) == 0
        assert sum(w.committed_chunks for w in workers) == N_POINTS // CHUNK
        assert store.counts("bladecenter")["ok"] == N_POINTS

    print_table(
        "E36b: two workers, one shared store",
        ["worker", "evaluated", "chunks", "duplicates"],
        [
            (w.worker_id, float(w.evaluated_points), float(w.committed_chunks),
             float(w.duplicate_commits))
            for w in workers
        ],
    )
    RECORD["shared_store"] = {
        "workers": 2,
        "points": N_POINTS,
        "evaluated_per_worker": [w.evaluated_points for w in workers],
        "chunks_per_worker": [w.committed_chunks for w in workers],
        "duplicate_commits": 0,
        "wall_s": shared_s,
    }
    write_record("e36", RECORD)


def test_warm_rerun_overhead_under_5_percent():
    """Fully-warm rerun: StoreBackedCache within 5% of EvaluationCache.

    Both caches are pre-warmed so every point is a memory-tier hit; the
    gate bounds what the durable tier adds to the hot path (nothing —
    the LRU front absorbs it).  Best-of-repeats wall clock.
    """
    values = {encode_point_key(p): 1.0 - 1e-5 * k for k, p in enumerate(POINTS)}

    def fake_evaluate(p):  # never called once warm; cheap if it ever is
        return values[encode_point_key(p)]

    memory = EvaluationCache()
    evaluate_batch(fake_evaluate, POINTS, cache=memory)

    with CampaignStore(":memory:") as store:
        durable = StoreBackedCache(store, model="warm-bench")
        evaluate_batch(fake_evaluate, POINTS, cache=durable)
        durable.warm()

        def best_of(cache, repeats=25):
            best = float("inf")
            result = None
            for _ in range(repeats):
                start = time.perf_counter()
                result = evaluate_batch(fake_evaluate, POINTS, cache=cache)
                best = min(best, time.perf_counter() - start)
            return result, best

        mem_batch, mem_s = best_of(memory)
        store_batch, store_s = best_of(durable)

    assert mem_batch.stats.cache_hits == N_POINTS
    assert store_batch.stats.cache_hits == N_POINTS
    assert store_batch.outputs.tobytes() == mem_batch.outputs.tobytes()
    overhead = store_s / mem_s - 1.0

    print_table(
        f"E36c: fully-warm {N_POINTS}-point rerun, memory vs store-backed cache",
        ["cache", "wall s", "points/s", "overhead %"],
        [
            ("EvaluationCache", mem_s, N_POINTS / mem_s, 0.0),
            ("StoreBackedCache", store_s, N_POINTS / store_s, 100.0 * overhead),
        ],
    )
    RECORD["warm_rerun"] = {
        "points": N_POINTS,
        "memory_cache_s": mem_s,
        "store_cache_s": store_s,
        "overhead_fraction": overhead,
    }
    write_record("e36", RECORD)
    assert overhead <= 0.05, f"store-tier warm overhead {overhead:.1%} > 5%"
