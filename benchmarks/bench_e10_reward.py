"""E10 — Markov reward models: capacity-oriented availability.

Tutorial claim (multiprocessor example): plain availability ("at least
one processor up") wildly overstates delivered value; the
capacity-oriented measure — reward = number of working processors —
tells the truth, and both are the same machinery with different reward
vectors.
"""

import pytest

from conftest import print_table
from repro.markov import CTMC, MarkovRewardModel

N = 4
LAM, MU = 0.05, 1.0


def multiprocessor():
    """N processors, single shared repair crew; state = #up."""
    chain = CTMC()
    for k in range(N, 0, -1):
        chain.add_transition(k, k - 1, k * LAM)
    for k in range(0, N):
        chain.add_transition(k, k + 1, MU)
    return chain


def test_steady_reward(benchmark):
    chain = multiprocessor()
    model = MarkovRewardModel(chain, {k: float(k) for k in range(N + 1)}, initial=N)
    result = benchmark(model.steady_state_reward_rate)
    assert 0.0 < result <= N


def test_accumulated_reward(benchmark):
    chain = multiprocessor()
    model = MarkovRewardModel(chain, {k: float(k) for k in range(N + 1)}, initial=N)
    result = benchmark(lambda: model.expected_accumulated_reward(100.0))
    assert result == pytest.approx(model.steady_state_reward_rate() * 100.0, rel=0.05)


def test_report():
    chain = multiprocessor()
    capacity = MarkovRewardModel(chain, {k: float(k) for k in range(N + 1)}, initial=N)
    binary = MarkovRewardModel(chain, {k: 1.0 for k in range(1, N + 1)}, initial=N)

    coa = capacity.steady_state_reward_rate() / N  # capacity-oriented availability
    plain = binary.steady_state_reward_rate()

    rows = [("plain availability", plain), ("capacity-oriented", coa)]
    print_table("E10: plain vs capacity-oriented availability", ["measure", "value"], rows)
    # Plain availability hides degradation; COA is strictly lower:
    assert plain > coa
    assert plain > 0.999
    assert coa < 0.99

    # Transient accumulated capacity (processor-hours delivered):
    t_rows = []
    for t in (10.0, 100.0, 1000.0):
        delivered = capacity.expected_accumulated_reward(t)
        ideal = N * t
        t_rows.append((t, delivered, ideal, delivered / ideal))
    print_table(
        "E10b: expected delivered processor-hours",
        ["t (h)", "E[Y(t)]", "ideal", "efficiency"],
        t_rows,
    )
    assert all(r[3] < 1.0 for r in t_rows)
