"""E29 (extension) — switching-system DPM: availability is not enough.

The telecom-performability classic: a system with six-nines availability
still loses calls — during switchover blackouts and as dropped
in-progress calls — and past a point, better coverage cannot reduce the
loss; only faster/hitless switchover can.
"""

import pytest

from conftest import print_table
from repro.casestudies.telecom import TelecomParameters, call_loss_dpm, dpm_table


def test_dpm_solve(benchmark):
    result = benchmark(lambda: call_loss_dpm(TelecomParameters()))
    assert result["total_dpm"] > 0


def test_report():
    rows = dpm_table((0.9, 0.99, 0.999, 0.9999))
    print_table(
        "E29: call-loss DPM vs coverage",
        ["coverage", "availability", "steady DPM", "impulse DPM", "total DPM"],
        rows,
    )
    # Availability looks superb everywhere while DPM varies 10x:
    assert all(avail > 0.999996 for _c, avail, *_ in rows)
    totals = [row[4] for row in rows]
    assert totals[0] > 10 * totals[-1]
    # Saturation: the last coverage decade buys almost nothing.
    assert (totals[0] - totals[1]) > 10 * (totals[2] - totals[3])

    # Switchover-speed sweep at fixed coverage: the remaining lever.
    speed_rows = []
    for failover_seconds in (30.0, 6.0, 1.0, 0.1):
        params = TelecomParameters(failover_rate=3600.0 / failover_seconds)
        speed_rows.append((failover_seconds, call_loss_dpm(params)["total_dpm"]))
    print_table(
        "E29b: total DPM vs switchover blackout duration",
        ["switchover s", "total DPM"],
        speed_rows,
    )
    values = [v for _s, v in speed_rows]
    assert all(b < a for a, b in zip(values, values[1:]))
