"""E21 — IBM SIP/WebSphere composite availability model.

Regenerates the per-level availability report of the largest hierarchy.
Reproduced claims: software dominates hardware; cluster k-of-n
redundancy masks node failures; the proxy pair is not the bottleneck;
and sensitivity analysis points at software recovery parameters, not
hardware.
"""

import pytest

from conftest import print_table
from repro.casestudies import sip
from repro.core import rank_parameters


def test_full_hierarchy_solve(benchmark):
    report = benchmark(sip.availability_report)
    assert report["service"] > 0.999


def test_report():
    report = sip.availability_report()
    print_table(
        "E21: SIP/WebSphere per-level availability",
        ["level", "availability"],
        list(report.items()),
    )
    assert report["software"] < report["hardware"]         # software dominates
    assert report["service"] > report["node"]              # cluster masks nodes
    assert report["service"] == pytest.approx(report["proxies"], abs=1e-4)

    # Cluster-size sweep: more nodes, higher service availability.
    size_rows = []
    for n in (2, 3, 4, 6):
        params = sip.SIPParameters(n_nodes=n, k_required=2)
        size_rows.append((n, sip.availability_report(params)["service"]))
    print_table("E21b: service availability vs cluster size (k=2)", ["n nodes", "A"], size_rows)
    values = [a for _n, a in size_rows]
    assert all(b >= a - 1e-12 for a, b in zip(values, values[1:]))

    # Sensitivity ranking: software parameters beat hardware.
    base = sip.SIPParameters()
    names = [
        "software_failure_rate",
        "restart_coverage",
        "node_reboot_rate",
        "hardware_failure_rate",
    ]

    def evaluate(params):
        merged = sip.SIPParameters(**{**base.__dict__, **params})
        return 1.0 - sip.availability_report(merged)["service"]

    rows = rank_parameters(evaluate, {n: getattr(base, n) for n in names}, rel_step=1e-2)
    print_table(
        "E21c: sensitivity ranking of service unavailability",
        ["parameter", "derivative", "elasticity"],
        [(r.name, r.derivative, r.elasticity) for r in rows],
    )
    software_rank = [r.name for r in rows].index("software_failure_rate")
    hardware_rank = [r.name for r in rows].index("hardware_failure_rate")
    assert software_rank < hardware_rank
