"""E23 — sensitivity rankings: state-space derivatives vs importance measures.

Tutorial claim: the two bottleneck-finding tools — parametric sensitivity
of the CTMC/hierarchy measures and Birnbaum/criticality importance on the
structural side — agree on *which component matters most*, which is what
justifies using the cheaper one at scale.
"""

import pytest

from conftest import print_table
from repro.core import rank_parameters
from repro.nonstate import (
    AndGate,
    BasicEvent,
    Component,
    FaultTree,
    OrGate,
    ReliabilityBlockDiagram,
    importance_table,
    parallel,
    series,
)

# Three subsystems with very different quality: a mediocre server pair,
# a good network link, an excellent power feed.
Q = {"server1": 2e-3, "server2": 2e-3, "network": 5e-4, "power": 1e-5}


def build_tree():
    return FaultTree(
        OrGate(
            [
                AndGate([BasicEvent.fixed("server1", Q["server1"]),
                         BasicEvent.fixed("server2", Q["server2"])]),
                BasicEvent.fixed("network", Q["network"]),
                BasicEvent.fixed("power", Q["power"]),
            ]
        )
    )


def test_importance_cost(benchmark):
    tree = build_tree()
    table = benchmark(lambda: importance_table(tree.top_event_probability, Q))
    assert len(table) == 4


def test_sensitivity_cost(benchmark):
    tree = build_tree()
    rows = benchmark(
        lambda: rank_parameters(lambda p: tree.top_event_probability(p), Q)
    )
    assert len(rows) == 4


def test_report():
    tree = build_tree()
    table = importance_table(tree.top_event_probability, Q)
    imp_rows = sorted(table.values(), key=lambda r: r.criticality, reverse=True)
    print_table(
        "E23: importance measures (structural side)",
        ["component", "Birnbaum", "criticality", "FV"],
        [(r.name, r.birnbaum, r.criticality, r.fussell_vesely) for r in imp_rows],
    )

    sens_rows = rank_parameters(lambda p: tree.top_event_probability(p), Q)
    print_table(
        "E23b: parametric sensitivity (derivative side)",
        ["parameter", "dQ/dq", "elasticity"],
        [(r.name, r.derivative, r.elasticity) for r in sens_rows],
    )

    # The rankings agree: Birnbaum IS dQ/dq for structural models.
    for row in sens_rows:
        assert row.derivative == pytest.approx(table[row.name].birnbaum, rel=1e-4)
    # criticality == elasticity (both scale by q/Q):
    for row in sens_rows:
        assert row.elasticity == pytest.approx(table[row.name].criticality, rel=1e-3)
    # And the single-point-of-failure network outranks the redundant servers:
    assert imp_rows[0].name == "network"
    assert [r.name for r in sens_rows][0] == "network"

    # State-space side: exact (adjoint) derivative of availability vs
    # central differences on the shared-repair chain.
    from repro.markov import CTMC, reward_rate_derivative

    lam, mu = 0.01, 1.0
    chain = CTMC()
    chain.add_transition(2, 1, 2 * lam)
    chain.add_transition(1, 0, lam)
    chain.add_transition(1, 2, mu)
    chain.add_transition(0, 1, mu)
    exact = reward_rate_derivative(
        chain, {2: 1.0, 1: 1.0}, {(2, 1): 2.0, (1, 0): 1.0}
    )

    def availability(l_):
        c = CTMC()
        c.add_transition(2, 1, 2 * l_)
        c.add_transition(1, 0, l_)
        c.add_transition(1, 2, mu)
        c.add_transition(0, 1, mu)
        pi = c.steady_state()
        return pi[2] + pi[1]

    h = 1e-7
    numeric = (availability(lam + h) - availability(lam - h)) / (2 * h)
    print_table(
        "E23c: exact dA/dlambda (adjoint) vs central difference",
        ["method", "dA/dlambda"],
        [("exact linear solve", exact), ("central difference", numeric)],
    )
    assert exact == pytest.approx(numeric, rel=1e-5)
