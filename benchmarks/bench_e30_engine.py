"""E30 — batch-evaluation engine: parallel speedup, determinism, memoization.

Engine claims: (1) a chunked process pool beats the serial loop by
>= 1.5x at two or more workers on a real case-study sweep; (2) executor
choice never changes the numbers — Serial/Thread/Process produce
bit-identical samples for the same seed; (3) the memoizing cache turns
the tornado design's repeated baseline points into hits, and a repeated
analysis into pure cache traffic.
"""

import os
import time

import numpy as np
import pytest

from conftest import print_table, write_record
from repro.casestudies.bladecenter import BladeCenterParameters, evaluate_availability
from repro.core import propagate_uncertainty, tornado_sensitivity
from repro.distributions import Lognormal
from repro.engine import (
    EvaluationCache,
    ProcessExecutor,
    SerialExecutor,
    SwingCampaign,
    ThreadExecutor,
    run_campaign,
)

POINT = BladeCenterParameters()
PRIORS = {
    "disk_failure_rate": Lognormal.from_mean_cv(POINT.disk_failure_rate, cv=0.5),
    "memory_failure_rate": Lognormal.from_mean_cv(POINT.memory_failure_rate, cv=0.5),
    "software_failure_rate": Lognormal.from_mean_cv(POINT.software_failure_rate, cv=0.5),
    "switch_failure_rate": Lognormal.from_mean_cv(POINT.switch_failure_rate, cv=0.5),
    "blade_repair_rate": Lognormal.from_mean_cv(POINT.blade_repair_rate, cv=0.3),
}


def _sweep(n_samples, seed=2016, **engine_kwargs):
    start = time.perf_counter()
    result = propagate_uncertainty(
        evaluate_availability,
        PRIORS,
        n_samples=n_samples,
        rng=np.random.default_rng(seed),
        **engine_kwargs,
    )
    return result, time.perf_counter() - start


def test_process_pool_speedup():
    """>= 1.5x over serial at 2+ workers on a 2k-sample BladeCenter sweep.

    The measurement, bit-identity check, and ``BENCH_e30.json`` record
    all run unconditionally; only the speedup gate needs 2+ CPUs.
    """
    cpus = os.cpu_count() or 1
    n_jobs = min(4, max(2, cpus))
    serial_result, serial_s = _sweep(2000)
    parallel_result, parallel_s = _sweep(2000, n_jobs=n_jobs)
    speedup = serial_s / parallel_s
    print_table(
        "E30: 2000-sample BladeCenter sweep, serial vs process pool",
        ["configuration", "wall s", "solves/s"],
        [
            ("serial", serial_s, serial_result.stats.throughput()),
            (f"process x{n_jobs}", parallel_s, parallel_result.stats.throughput()),
            ("speedup", speedup, 0.0),
        ],
    )
    assert np.array_equal(serial_result.samples, parallel_result.samples)
    write_record(
        "e30",
        {
            "samples": 2000,
            "n_jobs": n_jobs,
            "serial_s": serial_s,
            "parallel_s": parallel_s,
            "speedup": speedup,
            "serial_solves_per_s": serial_result.stats.throughput(),
            "parallel_solves_per_s": parallel_result.stats.throughput(),
            "n_cpus": cpus,
            "gate_ran": cpus >= 2,
        },
    )
    if cpus < 2:
        pytest.skip(f"speedup gate needs >= 2 CPUs, found {cpus}")
    assert speedup > 1.5


def test_executors_bit_identical():
    """Same seed => identical samples across Serial/Thread/Process."""
    rows = []
    samples = {}
    for executor in (SerialExecutor(), ThreadExecutor(3), ProcessExecutor(2)):
        result, wall = _sweep(200, executor=executor)
        samples[executor.name] = result.samples
        rows.append((executor.name, wall, result.stats.utilization()))
    print_table("E30b: executor ablation (200 samples)", ["executor", "wall s", "util"], rows)
    assert np.array_equal(samples["serial"], samples["thread"])
    assert np.array_equal(samples["serial"], samples["process"])


def test_tornado_cache_hits():
    """The OAT tornado design produces non-zero cache hits, and a
    repeated analysis through a shared cache is free."""
    cache = EvaluationCache()
    spec = SwingCampaign(PRIORS)
    campaign = run_campaign(evaluate_availability, spec, cache=cache)
    k = len(PRIORS)
    assert campaign.stats.cache_hits == k - 1  # duplicate baselines collapse
    assert campaign.stats.cache_hit_rate() > 0.0
    assert campaign.stats.n_evaluated == 2 * k + 1

    # The classic tornado (low/high only) reuses every swing point.
    calls = []

    def counting(p):
        calls.append(1)
        return evaluate_availability(p)

    rows = tornado_sensitivity(counting, PRIORS, cache=cache)
    assert len(calls) == 0  # fully served from the campaign's cache
    assert len(rows) == k
    print_table(
        "E30c: tornado memoization",
        ["quantity", "value"],
        [
            ("campaign points", float(len(campaign))),
            ("unique solves", float(campaign.stats.n_evaluated)),
            ("campaign cache hits", float(campaign.stats.cache_hits)),
            ("tornado extra solves", float(len(calls))),
            ("lifetime hit rate", cache.hit_rate),
        ],
    )


def test_sweep_cost(benchmark):
    result = benchmark(lambda: _sweep(100)[0])
    assert 0.999 < result.mean() < 1.0
