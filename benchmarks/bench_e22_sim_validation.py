"""E22 — Monte Carlo cross-validation of every analytic engine.

Tutorial practice: never trust a model you haven't validated a second
way.  Each analytic result (RBD reliability/MTTF, CTMC transient/steady
state/MTTA, SRN reward) must fall inside the simulator's 99.9%
confidence interval.
"""

import numpy as np
import pytest

from conftest import print_table
from repro.markov import CTMC
from repro.nonstate import Component, ReliabilityBlockDiagram, parallel, series
from repro.petrinet import PetriNet, StochasticRewardNet
from repro.sim import (
    simulate_mttf,
    simulate_reliability,
    simulate_reward_rate,
    simulate_steady_fraction,
    simulate_time_to_absorption,
    simulate_transient_probability,
)

LEVEL = 0.999


def rbd_system():
    a = Component.from_rates("a", 1.0, 4.0)
    b = Component.from_rates("b", 1.0, 4.0)
    c = Component.from_rates("c", 0.2, 4.0)
    return ReliabilityBlockDiagram(series(parallel(a, b), c))


def ctmc_system():
    chain = CTMC()
    chain.add_transition(2, 1, 0.2)
    chain.add_transition(1, 0, 0.1)
    chain.add_transition(1, 2, 1.0)
    chain.add_transition(0, 1, 1.0)
    return chain


def srn_system():
    net = PetriNet()
    net.add_place("queue", 0)
    net.add_timed_transition("arrive", rate=1.0)
    net.add_output_arc("arrive", "queue")
    net.add_inhibitor_arc("arrive", "queue", 4)
    net.add_timed_transition("serve", rate=1.5)
    net.add_input_arc("serve", "queue")
    return net


def test_sim_reliability_cost(benchmark):
    rng = np.random.default_rng(1)
    rbd = rbd_system()
    est = benchmark(lambda: simulate_reliability(rbd, 1.0, 2000, rng))
    assert 0 <= est.value <= 1


def test_report():
    rng = np.random.default_rng(20160628)
    rows = []

    rbd = rbd_system()
    analytic = rbd.reliability(1.0)
    est = simulate_reliability(rbd, 1.0, 40_000, rng)
    rows.append(("RBD R(1)", analytic, est.value, est.contains(analytic, LEVEL)))

    analytic = rbd.mttf()
    est = simulate_mttf(rbd, 40_000, rng)
    rows.append(("RBD MTTF", analytic, est.value, est.contains(analytic, LEVEL)))

    chain = ctmc_system()
    analytic = chain.transient(3.0, 2)[2]
    est = simulate_transient_probability(chain, [2], 3.0, 2, 40_000, rng)
    rows.append(("CTMC P[2 up](3)", analytic, est.value, est.contains(analytic, LEVEL)))

    pi = chain.steady_state()
    analytic = pi[2] + pi[1]
    est = simulate_steady_fraction(chain, [2, 1], 3000.0, 2, 48, rng=rng)
    rows.append(("CTMC A_ss", analytic, est.value, est.contains(analytic, LEVEL)))

    absorbing = chain.with_absorbing([0])
    analytic = absorbing.mean_time_to_absorption(2, absorbing=[0])
    est = simulate_time_to_absorption(absorbing, 2, 20_000, rng, absorbing=[0])
    rows.append(("CTMC MTTA", analytic, est.value, est.contains(analytic, LEVEL)))

    net = srn_system()
    srn = StochasticRewardNet(net)
    analytic = srn.expected_tokens("queue")
    est = simulate_reward_rate(net, lambda m: float(m["queue"]), 3000.0, 48, rng=rng)
    rows.append(("SRN E[N]", analytic, est.value, est.contains(analytic, LEVEL)))

    print_table(
        "E22: analytic vs simulation (99.9% CI containment)",
        ["measure", "analytic", "simulated", "inside CI"],
        rows,
    )
    assert all(row[3] for row in rows)
