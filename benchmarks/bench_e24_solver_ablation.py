"""E24 — steady-state solver ablation: GTH vs sparse-direct vs power.

DESIGN.md's ablation: GTH is the default because it stays accurate on
*stiff* chains (rates spanning many orders of magnitude — the normal
situation in availability models).  We measure accuracy (residual of
global balance) and runtime for all three on benign and stiff chains.
"""

import time

import numpy as np
import pytest

from conftest import print_table
from repro.markov import CTMC


def benign_chain(n, seed=0):
    rng = np.random.default_rng(seed)
    chain = CTMC()
    for i in range(n):
        chain.add_transition(i, (i + 1) % n, float(rng.uniform(0.5, 2.0)))
        j = int(rng.integers(0, n))
        if j != i:
            chain.add_transition(i, j, float(rng.uniform(0.5, 2.0)))
    return chain


def stiff_chain(n, seed=0):
    """Availability-style stiffness: failures ~1e-5, repairs ~1e+1."""
    rng = np.random.default_rng(seed)
    chain = CTMC()
    for i in range(n - 1):
        chain.add_transition(i, i + 1, float(10.0 ** rng.uniform(-6, -4)))
        chain.add_transition(i + 1, i, float(10.0 ** rng.uniform(0, 2)))
    return chain


def residual(chain, pi):
    q = chain.generator().toarray()
    vec = np.array([pi[s] for s in chain.states])
    return float(np.abs(vec @ q).max())


@pytest.mark.parametrize("method", ["gth", "direct", "power"])
def test_solver_cost_benign(benchmark, method):
    chain = benign_chain(100)
    pi = benchmark(lambda: chain.steady_state(method))
    assert residual(chain, pi) < 1e-6


@pytest.mark.parametrize("method", ["gth", "direct"])
def test_solver_cost_stiff(benchmark, method):
    chain = stiff_chain(60)
    pi = benchmark(lambda: chain.steady_state(method))
    assert residual(chain, pi) < 1e-8


def test_report():
    rows = []
    for label, chain in (
        ("benign n=50", benign_chain(50)),
        ("benign n=200", benign_chain(200)),
        ("stiff n=50", stiff_chain(50)),
        ("stiff n=200", stiff_chain(200)),
    ):
        for method in ("gth", "direct", "power"):
            if method == "power" and label.startswith("stiff"):
                # power iteration needs ~1/gap iterations: hopeless on
                # stiff chains; that IS the ablation result.
                rows.append((label, method, float("nan"), float("nan")))
                continue
            start = time.perf_counter()
            pi = chain.steady_state(method)
            ms = (time.perf_counter() - start) * 1e3
            rows.append((label, method, residual(chain, pi), ms))
    print_table(
        "E24: steady-state solver ablation",
        ["chain", "method", "balance residual", "ms"],
        rows,
    )
    # GTH residual on stiff chains stays tiny:
    stiff_gth = [r for r in rows if r[0].startswith("stiff") and r[1] == "gth"]
    assert all(r[2] < 1e-12 for r in stiff_gth)

    # Agreement between methods on benign chains:
    chain = benign_chain(80, seed=3)
    pi_gth = chain.steady_state("gth")
    pi_direct = chain.steady_state("direct")
    pi_power = chain.steady_state("power")
    gaps = [
        ("gth vs direct", max(abs(pi_gth[s] - pi_direct[s]) for s in chain.states)),
        ("gth vs power", max(abs(pi_gth[s] - pi_power[s]) for s in chain.states)),
    ]
    print_table("E24b: cross-method agreement (benign n=80)", ["pair", "max gap"], gaps)
    assert all(g < 1e-8 for _n, g in gaps)
