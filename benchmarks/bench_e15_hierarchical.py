"""E15 — hierarchical composition vs monolithic CTMC (WFS example).

Tutorial claim: where the repair facilities are independent, the
hierarchy is *exact* — the WFS decomposition matches the product-space
CTMC to solver precision at a fraction of the state count, and the gap
in cost widens with system size.
"""

import time

import pytest

from conftest import print_table
from repro.casestudies import wfs


@pytest.mark.parametrize("n", [4, 8, 16])
def test_hierarchical_cost(benchmark, n):
    params = wfs.WFSParameters(n_workstations=n, k_required=max(1, n // 2))
    result = benchmark(lambda: wfs.hierarchical_availability(params))
    assert 0.99 < result < 1.0


@pytest.mark.parametrize("n", [4, 8, 16])
def test_monolithic_cost(benchmark, n):
    params = wfs.WFSParameters(n_workstations=n, k_required=max(1, n // 2))
    result = benchmark(lambda: wfs.monolithic_availability(params))
    assert 0.99 < result < 1.0


def test_report():
    rows = []
    for n in (2, 4, 8, 16, 32):
        params = wfs.WFSParameters(n_workstations=n, k_required=max(1, n // 2))
        start = time.perf_counter()
        hier = wfs.hierarchical_availability(params)
        hier_ms = (time.perf_counter() - start) * 1e3
        start = time.perf_counter()
        mono = wfs.monolithic_availability(params)
        mono_ms = (time.perf_counter() - start) * 1e3
        assert hier == pytest.approx(mono, abs=1e-11)
        rows.append(
            (n, wfs.monolithic_state_count(params), hier, abs(hier - mono), hier_ms, mono_ms)
        )
    print_table(
        "E15: WFS hierarchical vs monolithic",
        ["n ws", "mono states", "availability", "abs gap", "hier ms", "mono ms"],
        rows,
    )
    # The hierarchy solves two small chains — (n+1) and 2 states — where
    # the monolith solves their product, 2(n+1) states; the multiplicative
    # gap grows with the number of independent subsystems.
    n_last = 32
    assert rows[-1][1] == 2 * (n_last + 1)
    assert (n_last + 1) + 2 < rows[-1][1]
