"""E19 — IBM BladeCenter downtime budget.

Regenerates the hierarchical availability table.  Reproduced claims: the
redundant chassis infrastructure contributes a negligible share of
downtime; the blade server (software + disks) dominates; overall
per-blade service availability lands near four nines.
"""

import pytest

from conftest import print_table
from repro.casestudies import bladecenter


def test_hierarchy_solve(benchmark):
    params = bladecenter.BladeCenterParameters()
    solution = benchmark(lambda: bladecenter.build_bladecenter(params).solve())
    assert solution.value("system", "availability") > 0.999


def test_budget_table(benchmark):
    rows = benchmark(bladecenter.downtime_budget)
    assert len(rows) == 7


def test_report():
    rows = bladecenter.downtime_budget()
    print_table(
        "E19: BladeCenter downtime budget",
        ["subsystem", "availability", "min/yr"],
        rows,
    )
    table = {name: downtime for name, _a, downtime in rows}
    infra = table["power"] + table["cooling"] + table["management"] + table["switch"]
    assert table["blade server"] > 10 * infra          # blade dominates
    avail = {name: a for name, a, _d in rows}
    assert 0.9999 < avail["system (chassis + blade)"] + 1e-4  # ~4 nines
    assert avail["system (chassis + blade)"] < avail["blade server"]

    # Sensitivity of the blade to its software repair (reboot) speed:
    sweep = []
    for reboot_minutes in (5.0, 10.0, 30.0, 60.0):
        params = bladecenter.BladeCenterParameters(
            software_repair_rate=60.0 / reboot_minutes
        )
        blade = bladecenter.build_blade_server(params)
        sweep.append((reboot_minutes, blade.downtime_minutes_per_year()))
    print_table(
        "E19b: blade downtime vs OS reboot time",
        ["reboot min", "blade min/yr"],
        sweep,
    )
    downs = [d for _m, d in sweep]
    assert all(b > a for a, b in zip(downs, downs[1:]))
