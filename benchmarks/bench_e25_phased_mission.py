"""E25 (extension) — phased-mission analysis: BDD vs naive product.

Extension experiment: the Zang–Sun–Trivedi BDD method gives the exact
mission reliability; the naive per-phase product ignores component state
carrying over between phases and *overestimates*.  The error grows with
the number of phases.
"""

import pytest

from conftest import print_table
from repro.nonstate import Component, PhasedMission


def build_mission(n_phases):
    comps = [Component.from_rates(n, r) for n, r in
             [("a", 0.15), ("b", 0.25), ("c", 0.08)]]
    mission = PhasedMission(comps)
    for p in range(n_phases):
        if p % 2 == 0:
            mission.add_phase(
                f"p{p}", 0.8,
                lambda bdd, v: bdd.apply_and(v("a"), bdd.apply_or(v("b"), v("c"))),
            )
        else:
            mission.add_phase(
                f"p{p}", 0.8, lambda bdd, v: v.at_least_k(["a", "b", "c"], 2)
            )
    return mission


@pytest.mark.parametrize("n_phases", [2, 4, 8])
def test_bdd_cost(benchmark, n_phases):
    mission = build_mission(n_phases)
    result = benchmark(mission.reliability)
    assert 0.0 < result < 1.0


def test_exactness_small():
    mission = build_mission(3)
    assert mission.reliability() == pytest.approx(
        mission.brute_force_reliability(), abs=1e-12
    )


def test_report():
    rows = []
    for n_phases in (1, 2, 3, 4, 6):
        mission = build_mission(n_phases)
        exact = mission.reliability()
        naive = mission.naive_product_reliability()
        if n_phases <= 4:
            brute = mission.brute_force_reliability()
            assert exact == pytest.approx(brute, abs=1e-12)
        rows.append((n_phases, exact, naive, naive - exact))
    print_table(
        "E25: phased missions — exact BDD vs naive per-phase product",
        ["phases", "exact", "naive product", "overestimate"],
        rows,
    )
    errors = [r[3] for r in rows]
    # Naive is never pessimistic and its error grows with phase count:
    assert all(e >= -1e-12 for e in errors)
    assert errors[-1] > errors[1] > 0.0
