"""E01 — non-state-space methods handle hundreds of components.

Tutorial claim: RBD/FT algorithms scale to systems with hundreds of
components (cost polynomial in n), which is what makes them the first
tool of practice.  We time steady-state availability of a
series-of-parallel-pairs RBD and a k-of-n fault tree as n grows, and
assert the known closed forms still hold at n = 500.
"""

import pytest

from conftest import print_table
from repro.nonstate import (
    BasicEvent,
    Component,
    FaultTree,
    KofNGate,
    ReliabilityBlockDiagram,
    Series,
    Parallel,
)


def build_series_of_pairs(n_pairs):
    blocks = []
    for i in range(n_pairs):
        blocks.append(
            Parallel(
                [Component.fixed(f"p{i}a", 1e-3), Component.fixed(f"p{i}b", 1e-3)]
            )
        )
    return ReliabilityBlockDiagram(Series(blocks))


def build_kofn_tree(n, k):
    events = [BasicEvent.fixed(f"e{i}", 1e-3) for i in range(n)]
    return FaultTree(KofNGate(k, events))


@pytest.mark.parametrize("n_pairs", [50, 250, 500])
def test_rbd_scaling(benchmark, n_pairs):
    rbd = build_series_of_pairs(n_pairs)
    result = benchmark(rbd.steady_state_availability)
    assert result == pytest.approx((1 - 1e-6) ** n_pairs, rel=1e-9)


@pytest.mark.parametrize("n", [50, 250, 500])
def test_kofn_fault_tree_scaling(benchmark, n):
    k = n // 2
    tree = build_kofn_tree(n, k)
    result = benchmark(lambda: tree.top_event_probability())
    assert 0.0 <= result <= 1.0


def test_report():
    import time

    rows = []
    for n in (10, 50, 100, 250, 500, 1000):
        rbd = build_series_of_pairs(n)
        start = time.perf_counter()
        avail = rbd.steady_state_availability()
        elapsed = time.perf_counter() - start
        rows.append((n, avail, elapsed * 1e3))
    print_table(
        "E01: RBD series-of-pairs scalability",
        ["n pairs", "availability", "ms"],
        rows,
    )
    # Polynomial growth: 100x more components costs far less than 10^4 x.
    assert rows[-1][2] < max(rows[0][2], 0.05) * 2000
