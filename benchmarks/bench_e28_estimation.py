"""E28 (extension) — parameter estimation and SRGM prediction quality.

Extension experiment closing the loop from data to model: (a) the exact
chi-square CIs for exponential rates hit their nominal coverage; (b) the
Goel–Okumoto fit predicts residual fault content usefully from partial
test data; (c) Kaplan–Meier tracks the true survival curve.
"""

import numpy as np
import pytest

from conftest import print_table
from repro.distributions import Exponential, Weibull
from repro.estimation import estimate_rate, fit_weibull_mle, kaplan_meier
from repro.srgm import GoelOkumoto, fit_goel_okumoto


def test_rate_estimation_cost(benchmark, rng=None):
    rng = np.random.default_rng(0)
    data = Exponential(0.01).sample(rng, 1000)
    est = benchmark(lambda: estimate_rate(data))
    assert est.rate == pytest.approx(0.01, rel=0.15)


def test_weibull_fit_cost(benchmark):
    rng = np.random.default_rng(1)
    data = Weibull(shape=2.0, scale=100.0).sample(rng, 2000)
    est = benchmark(lambda: fit_weibull_mle(data))
    assert est.shape == pytest.approx(2.0, rel=0.1)


def test_report():
    rng = np.random.default_rng(2016)

    # (a) CI coverage of the chi-square interval at three sample sizes.
    true_rate = 0.02
    coverage_rows = []
    for n in (5, 20, 80):
        hits = 0
        trials = 400
        for _ in range(trials):
            data = Exponential(true_rate).sample(rng, n)
            lo, hi = estimate_rate(data).confidence_interval(0.90)
            if lo <= true_rate <= hi:
                hits += 1
        coverage_rows.append((n, hits / trials))
    print_table(
        "E28: chi-square CI coverage (nominal 0.90)",
        ["n failures", "coverage"],
        coverage_rows,
    )
    for _n, cov in coverage_rows:
        assert cov == pytest.approx(0.90, abs=0.05)

    # (b) SRGM residual-fault prediction from the first 60% of test time.
    truth = GoelOkumoto(a=400.0, b=0.015)
    horizon = 300.0
    times = truth.sample_failure_times(horizon, rng)
    cutoff = 0.6 * horizon
    fit = fit_goel_okumoto(times[times <= cutoff], cutoff)
    predicted_total = fit.a
    observed_by_end = len(times)
    srgm_rows = [
        ("true fault content", 400.0),
        ("fitted a (from 60% of test)", predicted_total),
        ("failures seen by 60%", float((times <= cutoff).sum())),
        ("failures seen by 100%", float(observed_by_end)),
        ("predicted remaining at 60%", fit.model().expected_remaining(cutoff)),
    ]
    print_table("E28b: Goel-Okumoto prediction", ["quantity", "value"], srgm_rows)
    assert predicted_total == pytest.approx(400.0, rel=0.25)

    # (c) Kaplan-Meier tracks the truth under 30% censoring.
    dist = Weibull(shape=2.0, scale=50.0)
    lifetimes = dist.sample(rng, 3000)
    censor_at = np.quantile(lifetimes, 0.7)
    observed = lifetimes[lifetimes <= censor_at]
    censored = np.full((lifetimes > censor_at).sum(), censor_at)
    km = kaplan_meier(observed, censoring_times=censored)
    km_rows = []
    for t in (10.0, 25.0, 40.0):
        km_rows.append((t, float(km.survival_at(t)), float(dist.sf(t))))
        assert km.survival_at(t) == pytest.approx(dist.sf(t), abs=0.03)
    print_table("E28c: Kaplan-Meier vs truth (30% censoring)", ["t", "KM", "true"], km_rows)
