"""E17 — parametric uncertainty propagation.

Tutorial claim: point estimates of availability hide epistemic spread;
sampling-based propagation yields intervals, the mean-CI width shrinks
as 1/sqrt(n), and LHS beats plain MC for the same budget.
"""

import numpy as np
import pytest

from conftest import print_table
from repro.core import propagate_uncertainty
from repro.distributions import Lognormal
from repro.nonstate import Component, ReliabilityBlockDiagram, parallel, series

POINT = {"lam_server": 1 / 2000.0, "lam_net": 1 / 50_000.0, "mu": 0.25}


def availability(params):
    s1 = Component.from_rates("s1", params["lam_server"], params["mu"])
    s2 = Component.from_rates("s2", params["lam_server"], params["mu"])
    net = Component.from_rates("net", params["lam_net"], params["mu"])
    return ReliabilityBlockDiagram(series(parallel(s1, s2), net)).steady_state_availability()


PRIORS = {
    "lam_server": Lognormal.from_mean_cv(POINT["lam_server"], cv=0.5),
    "lam_net": Lognormal.from_mean_cv(POINT["lam_net"], cv=0.5),
    "mu": Lognormal.from_mean_cv(POINT["mu"], cv=0.3),
}


def test_propagation_cost(benchmark):
    rng = np.random.default_rng(0)
    result = benchmark(
        lambda: propagate_uncertainty(availability, PRIORS, n_samples=200, rng=rng)
    )
    assert 0.99 < result.mean() < 1.0


def test_report():
    point = availability(POINT)
    result = propagate_uncertainty(
        availability, PRIORS, n_samples=3000, rng=np.random.default_rng(42)
    )
    low, high = result.interval(0.90)
    rows = [
        ("point estimate", point),
        ("epistemic mean", result.mean()),
        ("5th percentile", low),
        ("95th percentile", high),
        ("interval width", high - low),
    ]
    print_table("E17: availability under parametric uncertainty", ["quantity", "value"], rows)
    assert low < point < high
    # Epistemic spread dwarfs any solver error:
    assert (high - low) > 1e-5

    # CI width ~ 1/sqrt(n):
    widths = []
    for n in (100, 400, 1600, 6400):
        res = propagate_uncertainty(
            availability, PRIORS, n_samples=n, rng=np.random.default_rng(7), method="mc"
        )
        lo, hi = res.mean_ci(0.95)
        widths.append((n, hi - lo))
    print_table("E17b: mean-CI width vs sample count", ["n", "CI width"], widths)
    assert widths[-1][1] < widths[0][1] / 4  # 64x samples -> ~8x narrower

    # LHS variance reduction:
    def run(method, seed):
        return propagate_uncertainty(
            availability, PRIORS, n_samples=64, rng=np.random.default_rng(seed), method=method
        ).mean()

    lhs_sd = float(np.std([run("lhs", s) for s in range(25)]))
    mc_sd = float(np.std([run("mc", s) for s in range(25)]))
    print(f"  mean-estimator sd: LHS {lhs_sd:.3e} vs MC {mc_sd:.3e}")
    assert lhs_sd < mc_sd
