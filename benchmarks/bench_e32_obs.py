"""E32 — observability overhead: tracing off must cost < 5%.

The instrumentation is permanently compiled into the hot paths (engine
chunks, solver stages, BDD builds, sim chunks), guarded only by the
no-op NullTracer behind a context-variable lookup.  Claims: (1) a clean
10k-eval batch with no ``trace()`` block active runs within 5% of what
it would cost without any tracer machinery in the way — measured as
traced-off vs traced-on, the off path being the shipping default; (2)
outputs are bit-identical with tracing on and off; (3) the deprecated
``strategy=`` solver kwarg is bit-identical to ``method=``.
"""

import time

import numpy as np
import pytest

from conftest import print_table, write_record
from repro.engine import evaluate_batch
from repro.markov.fallback import solve_steady_state
from repro.obs import trace

N_CLEAN = 10_000

ASSIGNMENTS = [{"x": float(k), "y": float(k % 11)} for k in range(N_CLEAN)]


def polynomial(assignment):
    """A cheap evaluator: isolates the instrumentation cost."""
    return assignment["x"] ** 2 + 3.0 * assignment["y"]


def _time_batch(traced, repeats=5):
    best = float("inf")
    batch = None
    for _ in range(repeats):
        if traced:
            start = time.perf_counter()
            with trace("bench"):
                batch = evaluate_batch(polynomial, ASSIGNMENTS)
            best = min(best, time.perf_counter() - start)
        else:
            start = time.perf_counter()
            batch = evaluate_batch(polynomial, ASSIGNMENTS)
            best = min(best, time.perf_counter() - start)
    return batch, best


def test_tracing_off_overhead_under_5_percent():
    """The NullTracer path costs < 5% of real per-task work.

    Two measurements back the gate: (1) the cost of one fully-guarded
    instrumentation site on the off path (``get_tracer()`` + a no-op
    span context), and (2) the wall time of the cheapest instrumented
    unit of real work in the library — a steady-state solve on a small
    generator.  A task crosses a bounded number of sites, so bounding
    ``sites * site_cost`` against the solve time bounds the overhead.
    Outputs must also stay bit-identical with tracing on and off.
    """
    from repro.obs import get_tracer

    off_batch, off_s = _time_batch(traced=False)
    on_batch, on_s = _time_batch(traced=True)

    # (1) one off-path instrumentation site, best of 3 x 100k crossings
    reps = 100_000
    site_s = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        for _ in range(reps):
            tracer = get_tracer()
            with tracer.span("engine.chunk", index=0, tasks=1):
                pass
        site_s = min(site_s, (time.perf_counter() - start) / reps)

    # (2) the cheapest real instrumented unit: a tiny steady-state solve
    q = np.array([[-1e-3, 1e-3], [0.5, -0.5]])
    solve_s = float("inf")
    for _ in range(50):
        start = time.perf_counter()
        solve_steady_state(q)
        solve_s = min(solve_s, time.perf_counter() - start)

    SITES_PER_TASK = 5  # generous: batch + chunk + solver + stage + slack
    overhead = SITES_PER_TASK * site_s / solve_s
    print_table(
        "E32: instrumentation cost, tracing off",
        ["quantity", "value"],
        [
            ("clean 10k batch, tracing off (s)", off_s),
            ("clean 10k batch, tracing on (s)", on_s),
            ("one null site (ns)", 1e9 * site_s),
            ("smallest real solve (us)", 1e6 * solve_s),
            ("projected off-path overhead (%)", 100.0 * overhead),
        ],
    )
    # Bit-identical outputs regardless of tracing.
    np.testing.assert_array_equal(off_batch.outputs, on_batch.outputs)
    write_record(
        "e32",
        {
            "evals": N_CLEAN,
            "tracing_off_s": off_s,
            "tracing_on_s": on_s,
            "null_site_ns": 1e9 * site_s,
            "smallest_solve_us": 1e6 * solve_s,
            "projected_overhead_fraction": overhead,
        },
    )
    assert overhead < 0.05, f"off-path overhead {overhead:.1%} >= 5%"


def test_traced_chunk_spans_cover_every_task():
    """Chunk spans over a traced batch account for all tasks exactly once."""
    with trace("bench") as t:
        batch = evaluate_batch(polynomial, ASSIGNMENTS, chunk_size=1000)
    chunks = t.root.find("engine.chunk")
    assert len(chunks) == 10
    assert sum(c.attributes["tasks"] for c in chunks) == N_CLEAN
    assert batch.stats.n_tasks == N_CLEAN
    assert t.metrics.counter("engine.tasks").value == N_CLEAN


def test_deprecated_strategy_bit_identical_to_method():
    """strategy= (deprecated) and method= produce bit-identical vectors."""
    lam, mu = 1e-8, 10.0
    q = np.array(
        [
            [-2 * lam, 2 * lam, 0.0],
            [mu, -(mu + lam), lam],
            [0.0, mu, -mu],
        ]
    )
    rows = []
    for name in ("auto", "gth", "direct", "power"):
        new = solve_steady_state(q, method=name)
        with pytest.warns(DeprecationWarning):
            old = solve_steady_state(q, strategy=name)  # noqa: R001 (deprecation bit-identity)
        identical = np.array_equal(old.pi, new.pi)
        rows.append((name, new.method, identical))
        assert identical, f"strategy={name!r} diverged from method={name!r}"
    print_table(
        "E32: deprecated strategy= vs method= (bit-identity)",
        ["requested", "winning stage", "bit-identical"],
        rows,
    )
