"""E20 — Sun carrier-grade platform: policies, coverage and DPM.

Regenerates the policy table and coverage sweep.  Reproduced claims:
deferred repair trades availability for service cost; DPM blows up as
failover coverage degrades — the curve practitioners use to justify
investment in failure detection.
"""

import numpy as np
import pytest

from conftest import print_table
from repro.casestudies import sun


def test_policy_solve(benchmark):
    rows = benchmark(sun.policy_table)
    assert len(rows) == 2


def test_coverage_sweep(benchmark):
    coverages = np.linspace(0.9, 0.9999, 12)
    rows = benchmark(lambda: sun.coverage_sweep(coverages))
    assert len(rows) == 12


def test_report():
    rows = sun.policy_table()
    print_table(
        "E20: repair-policy comparison",
        ["policy", "availability", "min/yr", "DPM"],
        rows,
    )
    table = {name: dpm for name, _a, _d, dpm in rows}
    assert table["deferred"] > table["immediate"]

    sweep = sun.coverage_sweep([0.9, 0.95, 0.99, 0.999, 0.9999])
    print_table("E20b: DPM vs failover coverage", ["coverage", "availability", "DPM"], sweep)
    dpms = [row[2] for row in sweep]
    assert all(b < a for a, b in zip(dpms, dpms[1:]))
    # An order of magnitude of coverage buys roughly an order of DPM:
    assert dpms[0] > 5 * dpms[-1]

    # Deferred-dispatch interval sweep: longer deferral, more exposure.
    defer_rows = []
    for dispatch_h in (8.0, 24.0, 72.0, 168.0):
        params = sun.SunParameters(deferred_dispatch_rate=1.0 / dispatch_h)
        model = sun.build_platform(params, policy="deferred")
        defer_rows.append((dispatch_h, sun.dpm(model)))
    print_table("E20c: DPM vs deferred-dispatch delay", ["dispatch h", "DPM"], defer_rows)
    values = [d for _h, d in defer_rows]
    assert all(b >= a for a, b in zip(values, values[1:]))
