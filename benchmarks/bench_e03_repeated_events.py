"""E03 — repeated events defeat naive methods; BDD stays exact and fast.

Tutorial claim: once a basic event appears under several gates, the
bottom-up product rules are *wrong* and inclusion–exclusion over cut sets
is *exponential*; BDD quantification remains exact with cost governed by
BDD size.  We build trees with a pool of shared events and compare.
"""

import time

import numpy as np
import pytest

from conftest import print_table
from repro.nonstate import (
    AndGate,
    BasicEvent,
    FaultTree,
    OrGate,
    inclusion_exclusion,
)


def shared_event_tree(n_gates, n_shared=4, seed=0):
    rng = np.random.default_rng(seed)
    shared = [BasicEvent.fixed(f"s{i}", 0.02) for i in range(n_shared)]
    gates = []
    for g in range(n_gates):
        local = BasicEvent.fixed(f"l{g}", 0.01)
        pick = shared[int(rng.integers(0, n_shared))]
        gates.append(AndGate([local, pick]))
    return FaultTree(OrGate(gates))


@pytest.mark.parametrize("n_gates", [5, 10, 20])
def test_bdd_quantification(benchmark, n_gates):
    tree = shared_event_tree(n_gates)
    result = benchmark(lambda: tree.top_event_probability())
    assert 0.0 < result < 1.0


def test_bdd_equals_inclusion_exclusion_small():
    tree = shared_event_tree(8)
    q = {n: e.component.probability for n, e in tree.basic_events.items()}
    cuts = tree.minimal_cut_sets()
    assert tree.top_event_probability() == pytest.approx(inclusion_exclusion(cuts, q))


def test_report():
    rows = []
    for n_gates in (4, 8, 12, 16, 20):
        tree = shared_event_tree(n_gates)
        q = {n: e.component.probability for n, e in tree.basic_events.items()}

        start = time.perf_counter()
        exact = tree.top_event_probability()
        bdd_ms = (time.perf_counter() - start) * 1e3

        cuts = tree.minimal_cut_sets()
        if len(cuts) <= 16:
            start = time.perf_counter()
            ie = inclusion_exclusion(cuts, q)
            ie_ms = (time.perf_counter() - start) * 1e3
            assert ie == pytest.approx(exact, rel=1e-9)
        else:
            ie_ms = float("nan")

        # The naive "independent subtrees" product rule:
        naive = 1.0
        for cut in cuts:
            prob = 1.0
            for e in cut:
                prob *= q[e]
            naive *= 1 - prob
        naive = 1 - naive
        rows.append((n_gates, exact, naive, bdd_ms, ie_ms))
    print_table(
        "E03: repeated events — BDD exact vs naive product vs IE cost",
        ["gates", "BDD exact", "naive product", "BDD ms", "IE ms"],
        rows,
    )
    # The naive rule really is wrong with shared events:
    assert any(abs(r[1] - r[2]) > 1e-6 for r in rows)
