"""E06 — state-space explosion: CTMC size vs non-state-space cost.

Tutorial claim: modeling n independent-ish components as one CTMC costs
2^n states while the RBD stays linear — the fundamental trade that
motivates hierarchical modeling.  We build both for the same system of n
repairable units (independent repair so both are exact) and compare cost
and agreement.
"""

import itertools
import time

import pytest

from conftest import print_table
from repro.markov import CTMC
from repro.nonstate import Component, ReliabilityBlockDiagram, Series

LAM, MU = 0.01, 1.0


def product_ctmc(n):
    """Full 2^n-state CTMC of n independent repairable units."""
    chain = CTMC()
    for state in itertools.product((0, 1), repeat=n):
        for i in range(n):
            flipped = list(state)
            flipped[i] = 1 - flipped[i]
            target = tuple(flipped)
            rate = LAM if state[i] == 1 else MU
            chain.add_transition(state, target, rate)
    return chain


def series_availability_ctmc(n):
    chain = product_ctmc(n)
    pi = chain.steady_state(method="direct")
    all_up = tuple([1] * n)
    return pi[all_up]


def series_availability_rbd(n):
    comps = [Component.from_rates(f"c{i}", LAM, MU) for i in range(n)]
    return ReliabilityBlockDiagram(Series(comps)).steady_state_availability()


@pytest.mark.parametrize("n", [4, 8, 10])
def test_ctmc_cost(benchmark, n):
    result = benchmark(lambda: series_availability_ctmc(n))
    assert result == pytest.approx((MU / (LAM + MU)) ** n, rel=1e-6)


@pytest.mark.parametrize("n", [4, 64, 512])
def test_rbd_cost(benchmark, n):
    result = benchmark(lambda: series_availability_rbd(n))
    assert result == pytest.approx((MU / (LAM + MU)) ** n, rel=1e-9)


def test_report():
    rows = []
    for n in (2, 4, 6, 8, 10, 12):
        start = time.perf_counter()
        a_ctmc = series_availability_ctmc(n)
        ctmc_ms = (time.perf_counter() - start) * 1e3
        start = time.perf_counter()
        a_rbd = series_availability_rbd(n)
        rbd_ms = (time.perf_counter() - start) * 1e3
        assert a_ctmc == pytest.approx(a_rbd, rel=1e-6)
        rows.append((n, 2**n, ctmc_ms, rbd_ms))
    print_table(
        "E06: state-space explosion — CTMC (2^n states) vs RBD (n blocks)",
        ["n units", "CTMC states", "CTMC ms", "RBD ms"],
        rows,
    )
    # CTMC cost explodes; RBD cost stays flat.
    assert rows[-1][2] > 10 * rows[0][2]
    assert rows[-1][3] < 50 * max(rows[0][3], 0.01)
