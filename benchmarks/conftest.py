"""Benchmark-suite helpers.

Each ``bench_eXX_*.py`` file regenerates one experiment from DESIGN.md's
index: it asserts the tutorial's qualitative claim and prints the
table/series rows (visible with ``pytest benchmarks/ -s``).
"""

import pathlib
import sys

_SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
try:
    import repro  # noqa: F401
except ImportError:  # pragma: no cover - source-checkout fallback
    sys.path.insert(0, str(_SRC))


def print_table(title, header, rows):
    """Uniform table printer for benchmark output."""
    print()
    print(f"--- {title} ---")
    print("  " + "  ".join(f"{h:>14s}" for h in header))
    for row in rows:
        cells = []
        for value in row:
            if isinstance(value, float):
                cells.append(f"{value:>14.6g}")
            else:
                cells.append(f"{str(value):>14s}")
        print("  " + "  ".join(cells))
