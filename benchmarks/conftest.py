"""Benchmark-suite helpers.

Each ``bench_eXX_*.py`` file regenerates one experiment from DESIGN.md's
index: it asserts the tutorial's qualitative claim and prints the
table/series rows (visible with ``pytest benchmarks/ -s``).  Wall-clock
records land in ``BENCH_<name>.json`` (via :func:`write_record`) so the
perf trajectory is tracked across revisions; writing the record must
happen *before* any environment-dependent gate (CPU-count skips and the
like), so a record exists for every run, gated or not.
"""

import json
import pathlib
import sys

_SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
try:
    import repro  # noqa: F401
except ImportError:  # pragma: no cover - source-checkout fallback
    sys.path.insert(0, str(_SRC))


def write_record(name, payload):
    """Persist one experiment's machine-readable record.

    Writes ``benchmarks/BENCH_<name>.json`` (e.g. ``write_record("e33",
    {...})``) and returns the path.  Keep the payload plain JSON — these
    files are committed, diffed across revisions, and read by humans.
    """
    path = pathlib.Path(__file__).resolve().parent / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def print_table(title, header, rows):
    """Uniform table printer for benchmark output."""
    print()
    print(f"--- {title} ---")
    print("  " + "  ".join(f"{h:>14s}" for h in header))
    for row in rows:
        cells = []
        for value in row:
            if isinstance(value, float):
                cells.append(f"{value:>14.6g}")
            else:
                cells.append(f"{str(value):>14s}")
        print("  " + "  ".join(cells))
