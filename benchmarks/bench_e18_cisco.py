"""E18 — Cisco GSR 12000 availability table.

Regenerates the case-study table: availability and downtime minutes/year
for the simplex vs redundant route processor and for the full router.
Reproduced claims: the redundant pair gains >10x on processor downtime;
residual downtime is coverage-dominated; the full router is limited by
its non-redundant parts.
"""

import pytest

from conftest import print_table
from repro.casestudies import cisco


def test_processor_models(benchmark):
    params = cisco.CiscoParameters()

    def run():
        return (
            cisco.build_simplex_processor(params).steady_state_availability(),
            cisco.build_redundant_processor(params).steady_state_availability(),
        )

    simplex, redundant = benchmark(run)
    assert redundant > simplex


def test_full_table(benchmark):
    rows = benchmark(cisco.downtime_table)
    assert len(rows) == 4


def test_report():
    rows = cisco.downtime_table()
    print_table(
        "E18: Cisco GSR 12000 availability",
        ["configuration", "availability", "min/yr"],
        rows,
    )
    table = {name: (avail, downtime) for name, avail, downtime in rows}
    simplex_a, simplex_d = table["simplex processor"]
    redundant_key = next(k for k in table if k.startswith("redundant"))
    redundant_a, redundant_d = table[redundant_key]
    assert redundant_d < simplex_d / 10          # >10x downtime gain
    assert redundant_a > 0.999999                # six nines for the pair
    # The full router is dominated by its simplex parts:
    router_a, router_d = table["router w/ redundant"]
    assert router_d > redundant_d * 10

    # Coverage sweep: residual processor downtime ~ linear in (1 - c).
    sweep = []
    for c in (0.999, 0.99, 0.95, 0.9):
        p = cisco.CiscoParameters(coverage=c)
        model = cisco.build_redundant_processor(p)
        sweep.append((c, model.downtime_minutes_per_year()))
    print_table("E18b: redundant-pair downtime vs coverage", ["coverage", "min/yr"], sweep)
    downs = [d for _c, d in sweep]
    assert all(b > a for a, b in zip(downs, downs[1:]))
