"""E39 — structural pre-flight: sizing nets without building them.

Performance and correctness claims for ``repro.analyze.invariants``:

1. the full structural pass (P/T-invariants, bounds, siphon, dead
   transitions, state bound) completes in **< 100 ms** on every
   registered case-study net — orders of magnitude below the BFS it
   pre-sizes;
2. the P-invariant state bound **dominates** the measured lazy-BFS
   tangible count on every net (ratio >= 1.0), with equality where the
   analysis claims exactness;
3. the pre-flight refuses a 10^7-marking synthetic chain in **< 100 ms**
   without expanding a single marking, returning the refusal
   certificate on :class:`~repro.exceptions.StateSpaceError`;
4. pre-flight overhead on a real lazy CSR build (the 10^4-state NFV
   chain of the E38 smoke gate) is **<= 2 %** wall-clock.

Per-case timings, prediction-vs-actual ratios and the overhead land in
``BENCH_e39.json``.  The module doubles as the CI smoke gate::

    python benchmarks/bench_e39_invariants.py --smoke
"""

import argparse
import json
import pathlib
import sys
import time

from conftest import print_table, write_record
from repro.analyze.invariants import structural_analysis
from repro.casestudies.nfvchain import NFVChainSpec, build_nfv_net
from repro.exceptions import StateSpaceError
from repro.petrinet import PetriNet
from repro.petrinet.templates import (
    machine_repairman,
    queue_with_breakdowns,
    redundant_pool_with_coverage,
)
from repro.sparse import build_sparse_reachability

#: every structural pass must finish below this, per net
MAX_ANALYSIS_MS = 100.0
#: the 10^7-marking refusal must also land below this
MAX_REFUSAL_MS = 100.0
#: pre-flight cost on a real lazy CSR build (E38 smoke chain)
MAX_OVERHEAD_FRAC = 0.02
#: best-of-N timing to cut scheduler noise
REPS = 3

#: 4 VNFs x 9 replicas -> exactly 10^4 markings (the E38 smoke chain)
OVERHEAD_SPEC = NFVChainSpec(n_vnfs=4, replicas=9, min_replicas=2)
#: 7 VNFs x 9 replicas -> exactly 10^7 markings, above the 5e6 default
REFUSAL_SPEC = NFVChainSpec(n_vnfs=7, replicas=9, min_replicas=2)


def mm1k(K=5, lam=2.0, mu=3.0):
    net = PetriNet()
    net.add_place("queue", 0)
    net.add_timed_transition("arrive", rate=lam)
    net.add_output_arc("arrive", "queue")
    net.add_inhibitor_arc("arrive", "queue", K)
    net.add_timed_transition("serve", rate=mu)
    net.add_input_arc("serve", "queue")
    return net


#: same net zoo the sparse bit-identity tests pin
CASE_STUDIES = {
    "mm1k": mm1k,
    "machine_repairman": lambda: machine_repairman(4, 0.1, 1.0, n_crews=2),
    "coverage_pool": lambda: redundant_pool_with_coverage(3, 0.01, 0.5, 0.95, 0.2),
    "queue_breakdowns": lambda: queue_with_breakdowns(5, 1.0, 2.0, 0.01, 0.5),
    "nfvchain": lambda: build_nfv_net(NFVChainSpec()),
}

RECORD = {}


def _persist():
    """Merge RECORD over the committed file so a partial run (one pytest
    test, the smoke gate) does not clobber the other legs."""
    merged = {}
    path = pathlib.Path(__file__).resolve().parent / "BENCH_e39.json"
    if path.exists():
        merged.update(json.loads(path.read_text()))
    merged.update(RECORD)
    write_record("e39", merged)


def _best_of(fn, reps=REPS):
    best = float("inf")
    result = None
    for _ in range(reps):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _analysis_leg():
    """Leg 1+2: per-net analysis time and prediction-vs-actual ratio."""
    rows = []
    for name, build in sorted(CASE_STUDIES.items()):
        net = build()
        analysis_s, analysis = _best_of(lambda: structural_analysis(net))
        actual = len(build_sparse_reachability(net).tangible)
        rows.append(
            {
                "case": name,
                "analysis_ms": 1e3 * analysis_s,
                "predicted": analysis.state_bound,
                "exact": analysis.state_bound_exact,
                "actual": actual,
                "ratio": analysis.state_bound / actual,
                "n_p_invariants": len(analysis.p_invariants),
                "complete": analysis.complete,
            }
        )
    return rows


def _refusal_leg():
    """Leg 3: the 10^7-marking chain is refused before any expansion."""
    net = build_nfv_net(REFUSAL_SPEC)

    def refuse():
        try:
            build_sparse_reachability(net)
        except StateSpaceError as exc:
            return exc.certificate
        raise AssertionError("10^7-marking chain was not refused")

    refusal_s, certificate = _best_of(refuse)
    return {
        "refusal_ms": 1e3 * refusal_s,
        "predicted": certificate.state_bound,
        "exact": certificate.state_bound_exact,
    }


def _overhead_leg():
    """Leg 4: pre-flight cost on the 10^4-state lazy CSR build."""
    net = build_nfv_net(OVERHEAD_SPEC)
    with_s, _ = _best_of(lambda: build_sparse_reachability(net, preflight=True))
    without_s, _ = _best_of(lambda: build_sparse_reachability(net, preflight=False))
    return {
        "n_states": 10**4,
        "build_with_preflight_s": with_s,
        "build_without_preflight_s": without_s,
        "overhead_frac": max(0.0, with_s / without_s - 1.0),
    }


def _check(rows, refusal, overhead):
    failures = []
    for row in rows:
        if row["analysis_ms"] > MAX_ANALYSIS_MS:
            failures.append(
                f"{row['case']}: analysis {row['analysis_ms']:.1f} ms "
                f"> {MAX_ANALYSIS_MS} ms"
            )
        if not row["complete"]:
            failures.append(f"{row['case']}: Farkas budget exceeded")
        if row["predicted"] is None or row["ratio"] < 1.0:
            failures.append(
                f"{row['case']}: prediction {row['predicted']} below "
                f"actual {row['actual']}"
            )
        if row["exact"] and row["predicted"] != row["actual"]:
            failures.append(
                f"{row['case']}: claimed exact but {row['predicted']} "
                f"!= {row['actual']}"
            )
    if refusal["refusal_ms"] > MAX_REFUSAL_MS:
        failures.append(
            f"refusal {refusal['refusal_ms']:.1f} ms > {MAX_REFUSAL_MS} ms"
        )
    if refusal["predicted"] != 10**7:
        failures.append(f"refusal certificate predicts {refusal['predicted']}")
    if overhead is not None and overhead["overhead_frac"] > MAX_OVERHEAD_FRAC:
        failures.append(
            f"pre-flight overhead {100 * overhead['overhead_frac']:.2f}% "
            f"> {100 * MAX_OVERHEAD_FRAC}%"
        )
    return failures


def test_structural_pass_sizes_every_case_study():
    """Legs 1-4 as one pytest test: the numbers land in BENCH_e39.json."""
    rows = _analysis_leg()
    refusal = _refusal_leg()
    overhead = _overhead_leg()
    RECORD.update({"cases": rows, "refusal": refusal, "overhead": overhead})
    _persist()

    failures = _check(rows, refusal, overhead)
    assert not failures, "; ".join(failures)

    print_table(
        "E39: structural pre-flight (analysis ms, predicted vs actual)",
        ["case", "ms", "predicted", "actual", "ratio", "exact"],
        [
            (
                r["case"],
                f"{r['analysis_ms']:.2f}",
                r["predicted"],
                r["actual"],
                f"{r['ratio']:.2f}",
                r["exact"],
            )
            for r in rows
        ],
    )
    print(
        f"refusal of 10^7 markings: {refusal['refusal_ms']:.1f} ms; "
        f"pre-flight overhead on 10^4-state build: "
        f"{100 * overhead['overhead_frac']:.2f}%"
    )


def smoke():
    """CI gate: analysis + refusal legs only (skips the 10^4 builds of
    the overhead leg; E38's smoke covers that path's wall budget)."""
    start = time.perf_counter()
    rows = _analysis_leg()
    refusal = _refusal_leg()
    RECORD.update({"smoke_cases": rows, "smoke_refusal": refusal})
    _persist()

    failures = _check(rows, refusal, overhead=None)
    worst_ms = max(r["analysis_ms"] for r in rows)
    print(
        f"bench_e39 --smoke: {len(rows)} nets sized, worst analysis "
        f"{worst_ms:.2f} ms, 10^7-marking refusal {refusal['refusal_ms']:.1f} ms, "
        f"wall={time.perf_counter() - start:.1f}s"
    )
    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run only the analysis + refusal legs (no 10^4-state builds)",
    )
    cli_args = parser.parse_args()
    if cli_args.smoke:
        sys.exit(smoke())
    test_structural_pass_sizes_every_case_study()
    print("bench_e39: all legs passed")
