"""E34 — static diagnostics overhead: pre-flight costs < 2% of a sweep.

Claim: the :mod:`repro.analyze` pre-flight runs *once per batch* in the
parent process, so turning ``diagnostics="warn"`` on for a 200-point
compiled BladeCenter sweep costs less than 2% extra wall time.  A
second measurement records raw analyzer throughput — full lint passes
per second over the largest CTMC the case studies build — so the cost
of one pass is tracked across revisions in ``BENCH_e34.json``.
"""

import time

import numpy as np

from conftest import print_table, write_record
from repro.analyze import analyze
from repro.casestudies.bladecenter import evaluate_availability
from repro.engine import evaluate_batch

N_POINTS = 200

POINTS = [
    {
        "disk_failure_rate": 1e-5 * (1.0 + 0.005 * k),
        "software_failure_rate": 1.0 / 1440.0 * (1.0 + 0.002 * k),
    }
    for k in range(N_POINTS)
]

def _largest_casestudy_ctmc():
    """The biggest chain any case study builds (SIP composite model)."""
    best = None
    from repro.analyze.__main__ import CASE_STUDIES
    from repro.markov import CTMC

    for case, build in sorted(CASE_STUDIES.items()):
        for label, model, _params, _query in build():
            chain = model.chain if hasattr(model, "chain") else model
            if isinstance(chain, CTMC):
                if best is None or chain.n_states > best[2].n_states:
                    best = (case, label, chain)
    return best


def _time_sweep(repeats=5, **kwargs):
    best, batch = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        batch = evaluate_batch(evaluate_availability, POINTS, **kwargs)
        best = min(best, time.perf_counter() - start)
    return batch, best


def test_diagnostics_overhead_under_2_percent():
    """``diagnostics="warn"`` on a 200-point compiled sweep: < 2% extra."""
    # Warm both paths (compile cache, imports, analyzer dispatch).
    _time_sweep(repeats=1)
    _time_sweep(repeats=1, diagnostics="warn")

    off_batch, off_s = _time_sweep()
    on_batch, on_s = _time_sweep(diagnostics="warn")

    overhead = on_s / off_s - 1.0

    case, label, chain = _largest_casestudy_ctmc()
    reps = 20
    analyze(chain, query="steady_state")  # warm
    start = time.perf_counter()
    for _ in range(reps):
        analyze(chain, query="steady_state")
    per_pass = (time.perf_counter() - start) / reps

    print_table(
        f"E34: {N_POINTS}-point BladeCenter sweep, diagnostics off vs warn",
        ["quantity", "value"],
        [
            ("sweep, diagnostics=ignore (s)", off_s),
            ("sweep, diagnostics=warn (s)", on_s),
            ("overhead (%)", 100.0 * overhead),
            (f"lint pass over {case}:{label} ({chain.n_states} states) (ms)",
             1e3 * per_pass),
            ("lint passes / s", 1.0 / per_pass),
        ],
    )

    # Diagnostics never perturb the numbers, only observe them.
    np.testing.assert_array_equal(
        np.asarray(off_batch.outputs), np.asarray(on_batch.outputs)
    )
    assert overhead < 0.02, f"diagnostics overhead {overhead:.1%} >= 2%"

    write_record(
        "e34",
        {
            "points": N_POINTS,
            "sweep_ignore_s": off_s,
            "sweep_warn_s": on_s,
            "overhead_fraction": overhead,
            "largest_ctmc": f"{case}:{label}",
            "largest_ctmc_states": chain.n_states,
            "lint_pass_s": per_pass,
            "lint_passes_per_s": 1.0 / per_pass,
        },
    )


if __name__ == "__main__":
    test_diagnostics_overhead_under_2_percent()
