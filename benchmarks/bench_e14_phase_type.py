"""E14 — phase-type expansion: folding non-exponential activities into CTMCs.

Tutorial claim: replacing a non-exponential activity with a moment-matched
phase-type distribution recovers a (larger) CTMC whose measures match the
SMP truth — exactly for PH activities, and two-moment-accurately for
fitted ones.  State count grows linearly in the number of phases.
"""

import numpy as np
import pytest

from conftest import print_table
from repro.distributions import Erlang, Exponential, HyperExponential, Weibull, fit_two_moments
from repro.markov import (
    MarkovDependabilityModel,
    SemiMarkovProcess,
    as_phase_type,
    expand_two_state_availability,
    fit_phase_type,
)

FAIL = Exponential(0.02)


def smp_availability(repair):
    smp = SemiMarkovProcess()
    smp.add_transition("up", "down", 1.0, FAIL)
    smp.add_transition("down", "up", 1.0, repair)
    return smp.steady_state()["up"]


def ph_availability(repair):
    chain, ups, downs = expand_two_state_availability(FAIL, repair)
    model = MarkovDependabilityModel(chain, ups, initial=ups[0])
    return model.steady_state_availability(), chain.n_states


def test_expansion_cost(benchmark):
    repair = Erlang.from_mean(5.0, stages=8)

    def run():
        return ph_availability(repair)[0]

    assert benchmark(run) == pytest.approx(smp_availability(repair), rel=1e-9)


def test_report():
    rows = []
    for name, repair in (
        ("exponential", Exponential(0.2)),
        ("erlang-2", Erlang.from_mean(5.0, stages=2)),
        ("erlang-8", Erlang.from_mean(5.0, stages=8)),
        ("hyperexp", HyperExponential([0.3, 0.7], [0.05, 1.0])),
        ("weibull k=2 (fitted)", Weibull.from_mean_shape(5.0, shape=2.0)),
    ):
        a_smp = smp_availability(repair)
        a_ph, n_states = ph_availability(repair)
        rows.append((name, n_states, a_ph, a_smp, abs(a_ph - a_smp)))
        assert a_ph == pytest.approx(a_smp, rel=1e-9)
    print_table(
        "E14: PH-expanded CTMC vs SMP steady state",
        ["repair dist", "states", "PH CTMC", "SMP", "abs err"],
        rows,
    )

    # Transient accuracy of fitting a Weibull with increasing phase counts:
    # an Erlang-k matches a low-CV Weibull better as k -> 1/cv^2.
    target = Weibull.from_mean_shape(5.0, shape=3.0)  # cv2 ~ 0.132
    t_grid = np.linspace(0.0, 15.0, 151)
    fit_rows = []
    for k in (1, 2, 4, 8):
        approx = Erlang.from_mean(target.mean(), stages=k)
        max_gap = float(np.abs(np.asarray(approx.cdf(t_grid)) - np.asarray(target.cdf(t_grid))).max())
        fit_rows.append((k, approx.squared_cv(), target.squared_cv(), max_gap))
    print_table(
        "E14b: Erlang-k CDF distance to Weibull(k=3) vs phases",
        ["phases", "fit cv^2", "target cv^2", "max CDF gap"],
        fit_rows,
    )
    gaps = [r[3] for r in fit_rows]
    assert all(b < a for a, b in zip(gaps, gaps[1:]))
