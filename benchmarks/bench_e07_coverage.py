"""E07 — imperfect coverage collapses redundancy gains.

Tutorial claim (the classic 2-unit standby example): with perfect
coverage a standby buys orders of magnitude of MTTF and availability;
each percent of coverage lost eats most of the gain, because an
uncovered failure bypasses the redundancy entirely.

Two views of the same chain:

* **availability** — every non-operational state (failover switch,
  manual recovery, double failure) counts as down;
* **mission reliability / MTTF** — the covered failover (~30 s, masked
  by protocols) is survivable; mission failure = uncovered failure or
  exhaustion of both units.
"""

import numpy as np
import pytest

from conftest import print_table
from repro.markov import CTMC, MarkovDependabilityModel

LAM = 1e-3      # unit failure rate
MU = 1.0        # repair rate
DELTA = 120.0   # failover rate (covered case, ~30 s)
BETA = 2.0      # manual recovery rate (uncovered case, 30 min)


def standby_chain(coverage):
    chain = CTMC()
    if coverage > 0.0:
        chain.add_transition("2", "swap", LAM * coverage)
        chain.add_transition("swap", "1", DELTA)
    if coverage < 1.0:
        chain.add_transition("2", "manual", LAM * (1 - coverage))
        chain.add_transition("manual", "1", BETA)
    chain.add_transition("2", "1", LAM)           # standby (detected) failure
    chain.add_transition("1", "2", MU)
    chain.add_transition("1", "0", LAM)
    chain.add_transition("0", "1", MU)
    return chain


def availability_model(coverage):
    """All transient outage states count as down."""
    return MarkovDependabilityModel(
        standby_chain(coverage), up_states=["2", "1"], initial="2"
    )


def mttf_model(coverage):
    """Covered failover is survivable; uncovered or double failure is not."""
    chain = standby_chain(coverage)
    up = ["2", "1"] + (["swap"] if coverage > 0.0 else [])
    return MarkovDependabilityModel(chain, up_states=up, initial="2")


@pytest.mark.parametrize("coverage", [1.0, 0.99, 0.9])
def test_availability_solve(benchmark, coverage):
    model = availability_model(coverage)
    result = benchmark(model.steady_state_availability)
    assert 0.9 < result <= 1.0


def test_report():
    rows = []
    for coverage in (1.0, 0.999, 0.99, 0.95, 0.9):
        avail = availability_model(coverage).steady_state_availability()
        mttf = mttf_model(coverage).mttf()
        rows.append((coverage, avail, (1 - avail) * 525_600, mttf))
    print_table(
        "E07: imperfect coverage — availability & mission MTTF vs c",
        ["coverage", "availability", "min/yr down", "MTTF h"],
        rows,
    )
    perfect = rows[0]
    worst = rows[-1]
    # Losing 10% of coverage costs a large factor in downtime:
    assert (1 - worst[1]) > 4 * (1 - perfect[1])
    # ... and destroys the MTTF gain of the standby (orders of magnitude):
    assert perfect[3] > 20 * worst[3]
    # Downtime is monotone in coverage:
    downtimes = [r[2] for r in rows]
    assert all(b >= a for a, b in zip(downtimes, downtimes[1:]))
    # MTTF is monotone in coverage:
    mttfs = [r[3] for r in rows]
    assert all(b <= a for a, b in zip(mttfs, mttfs[1:]))
