"""E35 — serving throughput: micro-batching + result cache vs naive.

Claim: for a concurrent mixed workload over the eight case-study
models, the daemon's micro-batcher (which coalesces and deduplicates
concurrent queries into single :func:`~repro.engine.evaluate_batch`
calls) sustains materially higher qps than the naive
one-engine-call-per-request mode, and the result cache compounds the
win on repeated points.  Sustained qps and client-observed p99 latency
for all three modes are recorded in ``BENCH_e35.json``.

The 3x gate (batched >= 3x naive qps) needs real request concurrency,
so it is skipped on machines with fewer than two CPUs — but the record
is always written, skip or not.
"""

import http.client
import json
import os
import threading
import time

import numpy as np

from conftest import print_table, write_record
from repro.serve import ServeApp, create_server, default_registry

N_CLIENTS = 8
REQUESTS_PER_CLIENT = 25


def _workload(models):
    """Per-client request scripts: hot default points with sweep points mixed in.

    Roughly 70% of requests hit a model's default point — the pattern a
    dashboard polling availability produces — which gives both the
    batcher's dedup and the result cache something to coalesce.
    """
    sweeps = {
        "bladecenter": ("cpu_failure_rate", (1e-6, 2e-6, 4e-6)),
        "cisco": ("coverage", (0.9, 0.95, 0.99)),
        "sun": ("coverage", (0.9, 0.95, 0.99)),
        "wfs": ("n_workstations", (3, 5, 8)),
        "sip": ("n_nodes", (4, 6, 8)),
        "telecom": ("coverage", (0.9, 0.95, 0.99)),
        "rejuvenation": ("interval", (120.0, 240.0, 480.0)),
        "boeing": ("event_probability", (5e-4, 1e-3, 2e-3)),
    }
    scripts = []
    for c in range(N_CLIENTS):
        script = []
        for r in range(REQUESTS_PER_CLIENT):
            model = models[(c + r) % len(models)]
            if r % 10 < 7:
                script.append((model, {}))
            else:
                key, values = sweeps[model]
                script.append((model, {key: values[r % len(values)]}))
        scripts.append(script)
    return scripts


def _run_mode(label, registry, scripts, **app_kwargs):
    """Serve one mode on an ephemeral port; return qps + latency stats."""
    app = ServeApp(registry, **app_kwargs)
    latencies = [[] for _ in scripts]
    failures = []
    with create_server(app, port=0) as server:
        barrier = threading.Barrier(len(scripts) + 1)

        def client(i):
            conn = http.client.HTTPConnection(server.host, server.port, timeout=60)
            try:
                barrier.wait()
                for model, point in scripts[i]:
                    body = json.dumps(point).encode()
                    start = time.perf_counter()
                    conn.request(
                        "POST",
                        f"/models/{model}/evaluate",
                        body=body,
                        headers={"Content-Type": "application/json"},
                    )
                    response = conn.getresponse()
                    payload = json.loads(response.read())
                    latencies[i].append(time.perf_counter() - start)
                    if response.status != 200 or payload.get("value") is None:
                        failures.append((model, point, response.status))
            finally:
                conn.close()

        threads = [
            threading.Thread(target=client, args=(i,)) for i in range(len(scripts))
        ]
        for t in threads:
            t.start()
        barrier.wait()
        started = time.perf_counter()
        for t in threads:
            t.join()
        wall = time.perf_counter() - started
        cache_stats = app.cache.stats()
    assert not failures, f"{label}: failed requests {failures[:3]}"
    flat = np.array([s for per_client in latencies for s in per_client])
    return {
        "mode": label,
        "requests": int(flat.size),
        "wall_s": wall,
        "qps": flat.size / wall,
        "mean_ms": 1e3 * float(flat.mean()),
        "p50_ms": 1e3 * float(np.percentile(flat, 50)),
        "p99_ms": 1e3 * float(np.percentile(flat, 99)),
        "cache_hits": cache_stats["hits"],
    }


def test_serving_throughput():
    """Mixed 8-model workload: naive vs batched vs batched+cache."""
    registry = default_registry()
    models = registry.names()
    scripts = _workload(models)

    naive = _run_mode("naive", registry, scripts, batching=False, cache_size=0)
    batched = _run_mode("batched", registry, scripts, cache_size=0)
    cached = _run_mode("batched+cache", registry, scripts, cache_size=1024)

    rows = [
        (m["mode"], m["qps"], m["mean_ms"], m["p50_ms"], m["p99_ms"], m["cache_hits"])
        for m in (naive, batched, cached)
    ]
    print_table(
        f"E35: {N_CLIENTS} clients x {REQUESTS_PER_CLIENT} requests, "
        f"mixed {len(models)}-model workload",
        ["mode", "qps", "mean ms", "p50 ms", "p99 ms", "cache hits"],
        rows,
    )

    n_cpus = os.cpu_count() or 1
    gate_ran = n_cpus >= 2
    speedup = batched["qps"] / naive["qps"]

    write_record(
        "e35",
        {
            "clients": N_CLIENTS,
            "requests_per_client": REQUESTS_PER_CLIENT,
            "models": models,
            "modes": [naive, batched, cached],
            "batched_vs_naive_speedup": speedup,
            "cached_vs_naive_speedup": cached["qps"] / naive["qps"],
            "n_cpus": n_cpus,
            "gate_ran": gate_ran,
        },
    )

    # The cache must actually have been exercised in cached mode only.
    assert naive["cache_hits"] == 0 and batched["cache_hits"] == 0
    assert cached["cache_hits"] > 0

    if not gate_ran:
        print(f"  (3x throughput gate skipped: {n_cpus} CPU(s) < 2; record written)")
        return
    assert speedup >= 3.0, (
        f"batched qps only {speedup:.2f}x naive (need >= 3x); see BENCH_e35.json"
    )


if __name__ == "__main__":
    test_serving_throughput()
