"""E12 — software rejuvenation: the finite optimal timer (MRGP).

Tutorial headline result (Huang et al. / Garg & Trivedi): the expected
cost rate over the rejuvenation interval is U-shaped — pure CTMC
reasoning cannot even pose the question because the timer is
deterministic.  The benchmark regenerates the sweep and locates the
optimum.
"""

import numpy as np
import pytest

from conftest import print_table
from repro.casestudies.rejuvenation import (
    RejuvenationParameters,
    build_rejuvenation_mrgp,
    downtime_fraction,
    interval_sweep,
    optimal_interval,
)


def test_mrgp_solve(benchmark):
    mrgp = build_rejuvenation_mrgp(96.0)
    result = benchmark(mrgp.steady_state)
    assert sum(result.values()) == pytest.approx(1.0, abs=1e-9)


def test_sweep(benchmark):
    grid = np.linspace(24.0, 480.0, 8)
    rows = benchmark(lambda: interval_sweep(grid))
    assert len(rows) == 8


def test_report():
    params = RejuvenationParameters()
    baseline = downtime_fraction(None, params)
    grid = np.array([12, 24, 48, 96, 192, 384, 768, 1536], dtype=float)
    rows = []
    for tau, unplanned, planned, cost in interval_sweep(grid, params):
        rows.append((tau, unplanned, planned, unplanned + planned, cost))
    print_table(
        "E12: rejuvenation interval sweep",
        ["tau (h)", "unplanned", "planned", "total", "cost"],
        rows,
    )
    print(f"  baseline (no rejuvenation): unplanned={baseline['unplanned']:.6f}")

    costs = [r[4] for r in rows]
    # U-shape: the minimum is strictly interior.
    best_idx = int(np.argmin(costs))
    assert 0 < best_idx < len(costs) - 1

    fine = np.linspace(12.0, 1536.0, 100)
    best_tau, best_cost = optimal_interval(fine, params)
    print(f"  optimal interval ~= {best_tau:.0f} h, cost rate {best_cost:.6f}")
    # Rejuvenation at the optimum beats never rejuvenating on cost:
    assert best_cost < baseline["unplanned"]
    # And unplanned downtime is strictly reduced at any finite timer:
    assert all(r[1] < baseline["unplanned"] for r in rows)
    # Long timers converge to the no-rejuvenation baseline:
    assert rows[-1][1] == pytest.approx(baseline["unplanned"], rel=0.05)
