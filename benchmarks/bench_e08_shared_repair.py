"""E08 — shared repair: the error of the independence assumption.

Tutorial claim: a non-state-space model must assume independent repair;
with a single shared crew the truth is worse, and the gap grows with
repair contention (λ/μ).  The CTMC quantifies exactly how optimistic the
RBD is.
"""

import pytest

from conftest import print_table
from repro.markov import CTMC, MarkovDependabilityModel
from repro.nonstate import Component, ReliabilityBlockDiagram, parallel


def shared_model(lam, mu):
    chain = CTMC()
    chain.add_transition(2, 1, 2 * lam)
    chain.add_transition(1, 0, lam)
    chain.add_transition(1, 2, mu)
    chain.add_transition(0, 1, mu)      # single crew
    return MarkovDependabilityModel(chain, up_states=[2, 1], initial=2)


def independent_model(lam, mu):
    chain = CTMC()
    chain.add_transition(2, 1, 2 * lam)
    chain.add_transition(1, 0, lam)
    chain.add_transition(1, 2, mu)
    chain.add_transition(0, 1, 2 * mu)  # two crews
    return MarkovDependabilityModel(chain, up_states=[2, 1], initial=2)


def rbd_model(lam, mu):
    a = Component.from_rates("a", lam, mu)
    b = Component.from_rates("b", lam, mu)
    return ReliabilityBlockDiagram(parallel(a, b))


def test_shared_repair_solve(benchmark):
    model = shared_model(0.01, 0.5)
    result = benchmark(model.steady_state_availability)
    assert 0.99 < result < 1.0


def test_rbd_equals_independent_ctmc():
    lam, mu = 0.01, 0.5
    assert rbd_model(lam, mu).steady_state_availability() == pytest.approx(
        independent_model(lam, mu).steady_state_availability(), rel=1e-12
    )


def test_report():
    rows = []
    mu = 1.0
    for lam in (0.001, 0.01, 0.05, 0.1, 0.3):
        shared = shared_model(lam, mu).steady_state_unavailability()
        indep = rbd_model(lam, mu).steady_state_unavailability()
        rows.append((lam / mu, indep, shared, shared / indep, shared - indep))
        # RBD (independent repair) is always optimistic:
        assert shared >= indep - 1e-15
    print_table(
        "E08: shared vs independent repair — unavailability",
        ["lambda/mu", "RBD (indep)", "CTMC (shared)", "ratio", "abs gap"],
        rows,
    )
    ratios = [r[3] for r in rows]
    gaps = [r[4] for r in rows]
    # In the rare-failure regime a shared crew roughly DOUBLES the
    # unavailability (ratio -> 2); the ratio relaxes toward 1 as
    # contention saturates, while the absolute error keeps growing.
    assert ratios[0] == pytest.approx(2.0, rel=0.01)
    assert all(1.0 < r <= 2.0 + 1e-9 for r in ratios)
    assert all(b > a for a, b in zip(gaps, gaps[1:]))
