"""E09 — transient solver ablation: uniformization vs ODE vs analytic.

Tutorial claim: uniformization is the method of choice for CTMC
transients — error-controlled and robust.  We verify both solvers hit
the 2-state closed form, measure agreement on random chains, and time
them (the ablation DESIGN.md calls out).
"""

import math

import numpy as np
import pytest

from conftest import print_table
from repro.markov import CTMC


def two_state(lam=1.0, mu=9.0):
    chain = CTMC()
    chain.add_transition("up", "down", lam)
    chain.add_transition("down", "up", mu)
    return chain


def random_chain(n, seed):
    rng = np.random.default_rng(seed)
    chain = CTMC()
    for i in range(n):
        chain.add_transition(i, (i + 1) % n, float(rng.uniform(0.5, 2.0)))
        j = int(rng.integers(0, n))
        if j != i:
            chain.add_transition(i, j, float(rng.uniform(0.1, 1.0)))
    return chain


TIMES = np.array([0.1, 0.5, 1.0, 5.0])


def test_uniformization(benchmark):
    chain = random_chain(40, 1)
    result = benchmark(lambda: chain.transient(TIMES, 0))
    np.testing.assert_allclose(result.sum(axis=1), 1.0, atol=1e-9)


def test_ode(benchmark):
    chain = random_chain(40, 1)
    result = benchmark(lambda: chain.transient(TIMES, 0, method="ode"))
    np.testing.assert_allclose(result.sum(axis=1), 1.0, atol=1e-5)


def test_report():
    # Accuracy vs the analytic 2-state solution over a tolerance sweep.
    lam, mu = 1.0, 9.0
    chain = two_state(lam, mu)
    t = 0.35
    analytic = mu / (lam + mu) + lam / (lam + mu) * math.exp(-(lam + mu) * t)
    rows = []
    for tol in (1e-4, 1e-6, 1e-8, 1e-10, 1e-12):
        got = chain.transient(np.array([t]), "up", tol=tol)[0][chain.index_of("up")]
        err = abs(got - analytic)
        rows.append((tol, got, err))
        assert err <= tol * 10  # truncation error under control
    print_table(
        "E09: uniformization truncation-error control (2-state analytic)",
        ["tol", "P[up](0.35)", "abs error"],
        rows,
    )

    # Solver agreement on random chains.
    agree_rows = []
    for seed in range(4):
        chain = random_chain(25, seed)
        uni = chain.transient(TIMES, 0, tol=1e-10)
        ode = chain.transient(TIMES, 0, method="ode", tol=1e-10)
        max_gap = float(np.abs(uni - ode).max())
        agree_rows.append((seed, max_gap))
        assert max_gap < 1e-5
    print_table("E09b: uniformization vs ODE (max abs gap)", ["seed", "max gap"], agree_rows)
