"""E11 — SRN automatic CTMC generation vs hand-built chains.

Tutorial claim: the SRN description is the scalable way to *specify*
dependent-failure Markov models — the generated chain is identical to a
careful hand construction, and vanishing markings never inflate it.
"""

import pytest

from conftest import print_table
from repro.markov import CTMC
from repro.petrinet import PetriNet, StochasticRewardNet


def mm1k_net(K, lam=2.0, mu=3.0):
    net = PetriNet()
    net.add_place("queue", 0)
    net.add_timed_transition("arrive", rate=lam)
    net.add_output_arc("arrive", "queue")
    net.add_inhibitor_arc("arrive", "queue", K)
    net.add_timed_transition("serve", rate=mu)
    net.add_input_arc("serve", "queue")
    return net


def coverage_net(c=0.95):
    net = PetriNet()
    net.add_place("up", 2)
    net.add_place("deciding", 0)
    net.add_place("benign", 0)
    net.add_place("severe", 0)
    net.add_timed_transition("fail", rate=lambda m: 0.01 * m["up"])
    net.add_input_arc("fail", "up")
    net.add_output_arc("fail", "deciding")
    net.add_immediate_transition("covered", weight=c)
    net.add_input_arc("covered", "deciding")
    net.add_output_arc("covered", "benign")
    net.add_immediate_transition("uncovered", weight=1 - c)
    net.add_input_arc("uncovered", "deciding")
    net.add_output_arc("uncovered", "severe")
    net.add_timed_transition("quick", rate=2.0)
    net.add_input_arc("quick", "benign")
    net.add_output_arc("quick", "up")
    net.add_timed_transition("slow", rate=0.1)
    net.add_input_arc("slow", "severe")
    net.add_output_arc("slow", "up")
    return net


@pytest.mark.parametrize("K", [10, 50, 200])
def test_generation_cost(benchmark, K):
    def run():
        return StochasticRewardNet(mm1k_net(K)).n_tangible

    assert benchmark(run) == K + 1


def test_steady_state_cost(benchmark):
    srn = StochasticRewardNet(mm1k_net(100))
    result = benchmark(lambda: srn.expected_tokens("queue"))
    assert result > 0


def test_report():
    # Generated M/M/1/K chains match the analytic distribution.
    rows = []
    for K in (5, 20, 100):
        lam, mu = 2.0, 3.0
        srn = StochasticRewardNet(mm1k_net(K, lam, mu))
        rho = lam / mu
        analytic_en = sum(
            n * (1 - rho) * rho**n / (1 - rho ** (K + 1)) for n in range(K + 1)
        )
        got = srn.expected_tokens("queue")
        rows.append((K, srn.n_tangible, got, analytic_en))
        assert got == pytest.approx(analytic_en, rel=1e-9)
    print_table(
        "E11: SRN-generated M/M/1/K vs analytic E[N]",
        ["K", "states", "SRN E[N]", "analytic"],
        rows,
    )

    # Vanishing elimination: immediates never appear in the final chain.
    c = 0.95
    srn = StochasticRewardNet(coverage_net(c))
    p_all_up = srn.probability(lambda m: m["up"] == 2)
    van_rows = [("tangible", srn.n_tangible), ("vanishing removed", srn.n_vanishing),
                ("P[2 up]", p_all_up)]
    print_table("E11b: vanishing-marking elimination", ["quantity", "value"], van_rows)
    assert srn.n_vanishing >= 2
    for marking in srn.chain.states:
        assert marking["deciding"] == 0
