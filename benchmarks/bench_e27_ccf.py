"""E27 (extension) — common-cause failures cap the value of redundancy.

Extension experiment (beta-factor model): as replicas are added, the
independent-failure contribution vanishes like q^n but the common-cause
floor βλ stays — redundancy investment saturates.  The sweep quantifies
the saturation point for a typical β = 5–10%.
"""

import math

import pytest

from conftest import print_table
from repro.nonstate import Component, FaultTree, redundant_group_with_ccf

LAM = 1e-4
MU = 0.5
MISSION_T = 1000.0


def group_tree(n, beta):
    comps = [Component.from_rates(f"c{i}", LAM, MU) for i in range(n)]
    return FaultTree(redundant_group_with_ccf(comps, n, beta=beta))


@pytest.mark.parametrize("n", [2, 4, 8])
def test_ccf_quantification(benchmark, n):
    tree = group_tree(n, beta=0.1)
    result = benchmark(lambda: 1.0 - tree.reliability(MISSION_T))
    assert 0.0 < result < 1.0


def test_report():
    rows = []
    for beta in (0.0, 0.02, 0.05, 0.1):
        row = [beta]
        for n in (2, 3, 4):
            tree = group_tree(n, beta)
            row.append(1.0 - tree.reliability(MISSION_T))
        rows.append(tuple(row))
    print_table(
        "E27: mission failure probability vs replicas and beta",
        ["beta", "n=2", "n=3", "n=4"],
        rows,
    )
    # Without CCF, each extra replica buys orders of magnitude:
    no_ccf = rows[0]
    assert no_ccf[2] < no_ccf[1] / 5
    assert no_ccf[3] < no_ccf[2] / 5
    # With beta = 0.1 the third and fourth replicas barely help:
    with_ccf = rows[-1]
    floor = 1.0 - math.exp(-0.1 * LAM * MISSION_T)
    assert with_ccf[3] == pytest.approx(floor, rel=0.1)
    assert with_ccf[3] > with_ccf[2] * 0.8  # saturation

    # Availability view: steady-state unavailability vs beta for a pair.
    avail_rows = []
    for beta in (0.0, 0.02, 0.05, 0.1, 0.2):
        tree = group_tree(2, beta)
        avail_rows.append((beta, tree.steady_state_availability()))
    print_table("E27b: redundant-pair availability vs beta", ["beta", "A_ss"], avail_rows)
    values = [a for _b, a in avail_rows]
    assert all(b < a for a, b in zip(values, values[1:]))
