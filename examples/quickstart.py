"""Quickstart: one tour through every model class in the library.

Run with ``python examples/quickstart.py``.

The scenario is the same small system viewed through each formalism: a
redundant pair of servers with a shared repair crew, a network link, and
a deterministic reboot — showing where each model class earns its keep.
"""

from repro.distributions import Deterministic, Exponential
from repro.markov import CTMC, MarkovDependabilityModel, SemiMarkovProcess
from repro.nonstate import Component, FaultTree, OrGate, AndGate, BasicEvent
from repro.nonstate import ReliabilityBlockDiagram, parallel, series
from repro.petrinet import PetriNet, SRNDependabilityModel, StochasticRewardNet

SERVER_MTTF_H = 2_000.0
SERVER_MTTR_H = 4.0
LINK_MTTF_H = 10_000.0
LINK_MTTR_H = 1.0


def rbd_view() -> None:
    """Non-state-space view: independent repairs (optimistic)."""
    s1 = Component.from_mttf_mttr("server1", SERVER_MTTF_H, SERVER_MTTR_H)
    s2 = Component.from_mttf_mttr("server2", SERVER_MTTF_H, SERVER_MTTR_H)
    link = Component.from_mttf_mttr("link", LINK_MTTF_H, LINK_MTTR_H)
    system = ReliabilityBlockDiagram(series(parallel(s1, s2), link))
    print("== RBD (independent repair) ==")
    print(f"  steady-state availability : {system.steady_state_availability():.9f}")
    print(f"  downtime                  : {system.downtime_minutes_per_year():8.3f} min/year")
    print(f"  mission reliability R(720h): {system.reliability(720.0):.6f}")
    print(f"  minimal cut sets          : {system.minimal_cut_sets()}")


def fault_tree_view() -> None:
    """Failure-space view of the same structure."""
    tree = FaultTree(
        OrGate(
            [
                AndGate(
                    [
                        BasicEvent.from_rates("server1", 1 / SERVER_MTTF_H, 1 / SERVER_MTTR_H),
                        BasicEvent.from_rates("server2", 1 / SERVER_MTTF_H, 1 / SERVER_MTTR_H),
                    ]
                ),
                BasicEvent.from_rates("link", 1 / LINK_MTTF_H, 1 / LINK_MTTR_H),
            ]
        )
    )
    print("== Fault tree ==")
    print(f"  steady-state availability : {tree.steady_state_availability():.9f}")
    print(f"  BDD size                  : {tree.bdd_size()} nodes")


def ctmc_view() -> CTMC:
    """State-space view: a single shared repair crew (the RBD can't say this)."""
    lam, mu = 1 / SERVER_MTTF_H, 1 / SERVER_MTTR_H
    chain = CTMC()
    chain.add_transition(2, 1, 2 * lam)
    chain.add_transition(1, 0, lam)
    chain.add_transition(1, 2, mu)   # one crew: repair rate does not double
    chain.add_transition(0, 1, mu)
    model = MarkovDependabilityModel(chain, up_states=[2, 1], initial=2)
    print("== CTMC (shared repair crew) ==")
    print(f"  steady-state availability : {model.steady_state_availability():.9f}")
    print(f"  MTTF                      : {model.mttf():,.0f} h")
    print(f"  point availability A(24h) : {model.availability(24.0):.9f}")
    return chain


def smp_view() -> None:
    """Semi-Markov view: deterministic 4-hour reboots instead of exponential."""
    smp = SemiMarkovProcess()
    smp.add_transition("up", "down", 1.0, Exponential(1 / SERVER_MTTF_H))
    smp.add_transition("down", "up", 1.0, Deterministic(SERVER_MTTR_H))
    pi = smp.steady_state()
    print("== SMP (deterministic repair) ==")
    print(f"  steady-state availability : {pi['up']:.9f}")
    print("  (same mean repair time -> same steady state: the insensitivity result)")


def srn_view() -> None:
    """Stochastic reward net: the CTMC generated automatically from a net."""
    lam, mu = 1 / SERVER_MTTF_H, 1 / SERVER_MTTR_H
    net = PetriNet()
    net.add_place("up", 2)
    net.add_place("down", 0)
    net.add_timed_transition("fail", rate=lambda m: lam * m["up"])
    net.add_input_arc("fail", "up")
    net.add_output_arc("fail", "down")
    net.add_timed_transition("repair", rate=mu)  # single crew
    net.add_input_arc("repair", "down")
    net.add_output_arc("repair", "up")
    srn = StochasticRewardNet(net)
    model = SRNDependabilityModel(srn, up=lambda m: m["up"] >= 1)
    print("== SRN (auto-generated CTMC) ==")
    print(f"  tangible markings         : {srn.n_tangible}")
    print(f"  steady-state availability : {model.steady_state_availability():.9f}")
    print(f"  MTTF                      : {model.mttf():,.0f} h")


def main() -> None:
    rbd_view()
    fault_tree_view()
    ctmc_view()
    smp_view()
    srn_view()
    print()
    print("Note how the RBD (independent repair) is more optimistic than the")
    print("CTMC/SRN with a shared crew — the dependency non-state-space models miss.")


if __name__ == "__main__":
    main()
