"""Phased-mission analysis of an aircraft electrical system.

A flight is a phased mission: taxi, takeoff, cruise, approach — each
phase tolerates different failures (takeoff needs everything; cruise
tolerates one generator; approach needs the essential bus but can shed
galley loads).  Components age across the whole flight, so per-phase
reliabilities cannot simply be multiplied; this example quantifies the
error of doing so.

Run with ``python examples/phased_flight.py``.
"""

from repro.nonstate import Component, PhasedMission

# Components (per-hour failure rates, flight-scale).
COMPONENTS = [
    ("gen1", 1e-4),    # engine-driven generator 1
    ("gen2", 1e-4),    # engine-driven generator 2
    ("apu", 5e-4),     # APU generator (backup)
    ("bus", 1e-6),     # essential bus
    ("inv1", 2e-5),    # inverter 1
    ("inv2", 2e-5),    # inverter 2
]

PHASES = [
    # (name, hours)
    ("taxi", 0.3),
    ("takeoff", 0.1),
    ("cruise", 5.0),
    ("approach", 0.4),
]


def power_ok(bdd, v, generators_needed):
    """At least `generators_needed` of the three power sources, plus bus."""
    sources = bdd.disjoin([]) if generators_needed == 0 else v.at_least_k(
        ["gen1", "gen2", "apu"], generators_needed
    )
    return bdd.apply_and(sources, v("bus"))


def build_mission() -> PhasedMission:
    mission = PhasedMission([Component.from_rates(n, r) for n, r in COMPONENTS])
    # taxi: relaxed — one power source, one inverter
    mission.add_phase(
        "taxi", PHASES[0][1],
        lambda bdd, v: bdd.apply_and(
            power_ok(bdd, v, 1), bdd.apply_or(v("inv1"), v("inv2"))
        ),
    )
    # takeoff: strict — both main generators, both inverters
    mission.add_phase(
        "takeoff", PHASES[1][1],
        lambda bdd, v: bdd.conjoin([v("gen1"), v("gen2"), v("bus"), v("inv1"), v("inv2")]),
    )
    # cruise: two of three power sources, one inverter
    mission.add_phase(
        "cruise", PHASES[2][1],
        lambda bdd, v: bdd.apply_and(
            power_ok(bdd, v, 2), bdd.apply_or(v("inv1"), v("inv2"))
        ),
    )
    # approach: one power source, one inverter (load shedding allowed)
    mission.add_phase(
        "approach", PHASES[3][1],
        lambda bdd, v: bdd.apply_and(
            power_ok(bdd, v, 1), bdd.apply_or(v("inv1"), v("inv2"))
        ),
    )
    return mission


def main() -> None:
    mission = build_mission()
    exact = mission.reliability()
    naive = mission.naive_product_reliability()
    brute = mission.brute_force_reliability()

    print("== Flight mission reliability ==")
    print(f"  exact (BDD, state carries over) : {exact:.9f}")
    print(f"  brute-force oracle              : {brute:.9f}")
    print(f"  naive per-phase product         : {naive:.9f}")
    print(f"  naive overestimates failure-free odds by "
          f"{(naive - exact) / (1 - exact):+.1%} of the true failure probability")
    print(f"  mission failure probability     : {1 - exact:.3e}")

    print()
    print("== What-if: longer cruise ==")
    for cruise_hours in (2.0, 5.0, 10.0, 15.0):
        mission = PhasedMission([Component.from_rates(n, r) for n, r in COMPONENTS])
        mission.add_phase("taxi", 0.3, build_mission().phases[0].build_structure)
        mission.add_phase("takeoff", 0.1, build_mission().phases[1].build_structure)
        mission.add_phase("cruise", cruise_hours, build_mission().phases[2].build_structure)
        mission.add_phase("approach", 0.4, build_mission().phases[3].build_structure)
        print(f"  cruise {cruise_hours:5.1f} h : P[loss] = {1 - mission.reliability():.3e}")


if __name__ == "__main__":
    main()
