"""Hierarchical availability study of a small data-center service.

A BladeCenter-style two-level model — CTMC leaves for the redundant
infrastructure, an RBD top level — followed by the two analyses a
practitioner runs next:

* **sensitivity ranking** — which parameter should the next reliability
  dollar improve?
* **parametric uncertainty** — what does the 90% epistemic interval on
  availability look like when the failure rates themselves are uncertain?

Run with ``python examples/datacenter_availability.py``.
"""

import numpy as np

from repro.core import (
    HierarchicalModel,
    Submodel,
    export_availability,
    propagate_uncertainty,
    rank_parameters,
)
from repro.distributions import Lognormal
from repro.markov import CTMC, MarkovDependabilityModel
from repro.nonstate import Component, ReliabilityBlockDiagram, series

# Point estimates (per hour).
PARAMS = {
    "power_failure_rate": 1.0 / 500_000.0,
    "cooling_failure_rate": 1.0 / 400_000.0,
    "server_failure_rate": 1.0 / 2_000.0,
    "network_failure_rate": 1.0 / 50_000.0,
    "repair_rate": 0.25,           # 4 h MTTR
    "server_repair_rate": 0.5,     # 2 h MTTR
}


def redundant_pair(failure_rate: float, repair_rate: float) -> MarkovDependabilityModel:
    """2-unit redundant subsystem with one shared repair crew."""
    chain = CTMC()
    chain.add_transition(2, 1, 2 * failure_rate)
    chain.add_transition(1, 0, failure_rate)
    chain.add_transition(1, 2, repair_rate)
    chain.add_transition(0, 1, repair_rate)
    return MarkovDependabilityModel(chain, up_states=[2, 1], initial=2)


def build_service(params) -> HierarchicalModel:
    hierarchy = HierarchicalModel()
    for name, rate_key in (
        ("power", "power_failure_rate"),
        ("cooling", "cooling_failure_rate"),
        ("servers", "server_failure_rate"),
    ):
        repair = params["server_repair_rate" if name == "servers" else "repair_rate"]
        hierarchy.add_submodel(
            Submodel(
                name,
                (lambda rate, mu: (lambda _imp: redundant_pair(rate, mu)))(
                    params[rate_key], repair
                ),
                exports={"availability": export_availability},
            )
        )

    def build_top(imports):
        blocks = [
            Component.fixed(name, 1.0 - imports[f"{name}_avail"])
            for name in ("power", "cooling", "servers")
        ]
        blocks.append(
            Component.from_rates(
                "network", params["network_failure_rate"], params["repair_rate"]
            )
        )
        return ReliabilityBlockDiagram(series(*blocks))

    hierarchy.add_submodel(
        Submodel(
            "service",
            build_top,
            imports={
                "power_avail": ("power", "availability"),
                "cooling_avail": ("cooling", "availability"),
                "servers_avail": ("servers", "availability"),
            },
            exports={"availability": export_availability},
        )
    )
    return hierarchy


def service_availability(params) -> float:
    return build_service(params).solve().value("service", "availability")


def main() -> None:
    solution = build_service(PARAMS).solve()
    print("== Hierarchical availability ==")
    for name in ("power", "cooling", "servers", "service"):
        avail = solution.value(name, "availability")
        print(f"  {name:10s} A = {avail:.9f}  ({(1 - avail) * 525600:9.3f} min/yr)")

    print()
    print("== Sensitivity ranking (elasticity of service unavailability) ==")
    rows = rank_parameters(
        lambda p: 1.0 - service_availability(p), PARAMS, rel_step=1e-3
    )
    for row in rows:
        print(f"  {row.name:22s} elasticity = {row.elasticity:+8.4f}")

    print()
    print("== Parametric uncertainty (lognormal priors, CV 0.4, LHS n=300) ==")
    priors = {
        key: Lognormal.from_mean_cv(value, cv=0.4)
        for key, value in PARAMS.items()
        if key.endswith("failure_rate")
    }

    def evaluate(sampled):
        merged = {**PARAMS, **sampled}
        return service_availability(merged)

    result = propagate_uncertainty(
        evaluate, priors, n_samples=300, rng=np.random.default_rng(2016)
    )
    low, high = result.interval(0.90)
    print(f"  mean availability : {result.mean():.9f}")
    print(f"  90% interval      : [{low:.9f}, {high:.9f}]")
    print(f"  downtime interval : [{(1-high)*525600:.2f}, {(1-low)*525600:.2f}] min/yr")


if __name__ == "__main__":
    main()
