"""Estimating a 10^8-hour MTTF by importance sampling.

A triple-modular-redundant (TMR) controller with voter fails only when
two modules are down simultaneously — a rare event.  Naive simulation
would need ~10^8 trajectories to see a handful of failures; failure
biasing gets a tight estimate from 30 000 short regenerative cycles, and
the analytic solver confirms it.

Run with ``python examples/rare_event_mttf.py``.
"""

import time

import numpy as np

from repro.markov import CTMC
from repro.sim import simulate_mttf_importance_sampling

LAM = 1e-5     # module failure rate (/h)
MU = 0.25      # repair rate (4 h MTTR, single crew)


def build_tmr() -> CTMC:
    """State = number of healthy modules; system fails at 1 (voter outvoted)."""
    chain = CTMC()
    chain.add_transition(3, 2, 3 * LAM)
    chain.add_transition(2, 1, 2 * LAM)   # second failure = system failure
    chain.add_transition(2, 3, MU)
    chain.add_transition(1, 2, MU)        # repair continues after failure
    return chain


def main() -> None:
    chain = build_tmr()
    exact = chain.mean_time_to_absorption(3, absorbing=[1])
    print(f"analytic MTTF                : {exact:,.0f} h "
          f"({exact / 8760:,.0f} years)")

    rng = np.random.default_rng(7)
    start = time.perf_counter()
    mttf, cycle_est, p_est = simulate_mttf_importance_sampling(
        chain,
        start=3,
        failure_states=[1],
        is_failure_transition=lambda src, dst: dst < src,
        bias=0.5,
        n_cycles=30_000,
        rng=rng,
    )
    elapsed = time.perf_counter() - start

    print(f"IS estimate (30k cycles)     : {mttf:,.0f} h   "
          f"[{elapsed:.1f} s wall]")
    print(f"  per-cycle failure prob     : {p_est.value:.3e} "
          f"± {p_est.std_error:.1e}")
    print(f"  mean regenerative cycle    : {cycle_est.value:,.1f} h")
    print(f"  relative error vs analytic : {abs(mttf - exact) / exact:+.2%}")
    print()
    print("naive simulation would need ~1/p ≈ "
          f"{1 / p_est.value:,.0f} cycles per observed failure —")
    print("failure biasing turned that into a 30k-cycle job.")


if __name__ == "__main__":
    main()
