"""Network reliability: reliability graphs, bounds and importance.

Models a small ISP-style backbone as a reliability graph (the formalism
series-parallel RBDs cannot express), quantifies s-t availability
exactly via BDD, cross-checks with the factoring algorithm, then runs
the two analyses that matter at scale: cut-set bounding (the Boeing
recipe) and importance ranking of links.

Run with ``python examples/network_reliability.py``.
"""

from repro.nonstate import (
    Component,
    ReliabilityGraph,
    esary_proschan_bounds,
    importance_table,
    truncated_inclusion_exclusion,
)

#: (u, v, MTTF hours, MTTR hours) for each backbone link
LINKS = [
    ("pop_a", "core1", 8_000.0, 2.0),
    ("pop_a", "core2", 8_000.0, 2.0),
    ("core1", "core2", 20_000.0, 2.0),
    ("core1", "core3", 12_000.0, 3.0),
    ("core2", "core3", 12_000.0, 3.0),
    ("core1", "pop_b", 8_000.0, 2.0),
    ("core3", "pop_b", 8_000.0, 2.0),
]


def build_backbone() -> ReliabilityGraph:
    graph = ReliabilityGraph("pop_a", "pop_b", directed=False)
    for idx, (u, v, mttf, mttr) in enumerate(LINKS):
        graph.add_edge(u, v, Component.from_mttf_mttr(f"link{idx}_{u}-{v}", mttf, mttr))
    return graph


def main() -> None:
    graph = build_backbone()
    p_up = {
        name: comp.steady_state_availability() for name, comp in graph.components.items()
    }
    q = {name: 1.0 - p for name, p in p_up.items()}

    exact_bdd = graph.connectivity_probability(p_up)
    exact_factoring = graph.connectivity_by_factoring(p_up)
    print("== Exact s-t availability (pop_a -> pop_b) ==")
    print(f"  BDD        : {exact_bdd:.10f}")
    print(f"  factoring  : {exact_factoring:.10f}")
    print(f"  minimal paths: {len(graph.minimal_path_sets())}, "
          f"minimal cuts: {len(graph.minimal_cut_sets())}")

    print()
    print("== Bounds from cut sets (what you'd do if exact were infeasible) ==")
    cuts = graph.minimal_cut_sets()
    paths = graph.minimal_path_sets()
    lo_ep, hi_ep = esary_proschan_bounds(paths, cuts, q)
    print(f"  Esary-Proschan unavailability bounds : [{lo_ep:.3e}, {hi_ep:.3e}]")
    for depth in (1, 2, 3):
        lo, hi = truncated_inclusion_exclusion(cuts, q, depth)
        print(f"  Bonferroni depth {depth}                   : [{lo:.3e}, {hi:.3e}]")
    print(f"  exact unavailability                 : {1 - exact_bdd:.3e}")

    print()
    print("== Link importance (which link to upgrade first) ==")

    def top(q_assign):
        return 1.0 - graph.connectivity_probability(
            {name: 1.0 - value for name, value in q_assign.items()}
        )

    table = importance_table(top, q)
    ranked = sorted(table.values(), key=lambda row: row.birnbaum, reverse=True)
    print(f"  {'link':28s} {'Birnbaum':>10s} {'FV':>10s} {'RAW':>8s}")
    for row in ranked:
        print(f"  {row.name:28s} {row.birnbaum:10.3e} {row.fussell_vesely:10.3e} {row.raw:8.2f}")
    print()
    print(f"upgrade candidate: {ranked[0].name}")


if __name__ == "__main__":
    main()
