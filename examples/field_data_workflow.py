"""End-to-end field-data workflow: from logs to a defensible model.

The step most modeling papers skip, walked through explicitly:

1. estimate component failure/repair parameters from (censored) field
   data, with confidence intervals;
2. check the software failure log for reliability growth and fit an
   SRGM to predict residual faults;
3. build the availability model from the *fitted* parameters;
4. propagate the estimation uncertainty (not a guessed prior — the
   fitted CIs) into the availability claim.

Run with ``python examples/field_data_workflow.py``.
"""

import numpy as np

from repro.core import propagate_uncertainty, series_availability_budget
from repro.distributions import Exponential, Lognormal, Weibull
from repro.estimation import (
    estimate_availability,
    estimate_rate,
    fit_weibull_mle,
    kaplan_meier,
)
from repro.nonstate import Component, ReliabilityBlockDiagram, parallel, series
from repro.srgm import GoelOkumoto, fit_goel_okumoto, laplace_trend

RNG = np.random.default_rng(2016)


def synthesize_field_data():
    """Stand-in for real logs: draws from known ground-truth processes."""
    # 200 disks on test for a year; Weibull wear-out, most survive.
    disk_truth = Weibull.from_mean_shape(mean=20_000.0, shape=1.8)
    lifetimes = disk_truth.sample(RNG, 200)
    window = 8_760.0
    disk_failures = lifetimes[lifetimes <= window]
    disk_censored = np.full((lifetimes > window).sum(), window)

    # Power supply failures: exponential, sparse.
    psu_failures = Exponential(1 / 150_000.0).sample(RNG, 3)
    psu_censored = np.full(57, 8_760.0)

    # Repair log: 25 completed repairs.
    repairs = Lognormal.from_mean_cv(mean=6.0, cv=0.9).sample(RNG, 25)

    # Software failure log over 2000 h of system test.
    sw_truth = GoelOkumoto(a=160.0, b=0.002)
    sw_times = sw_truth.sample_failure_times(2_000.0, RNG)
    return disk_failures, disk_censored, psu_failures, psu_censored, repairs, sw_times


def main() -> None:
    (disk_fail, disk_cens, psu_fail, psu_cens, repairs, sw_times) = synthesize_field_data()

    print("== 1. Hardware parameter estimation ==")
    disk_fit = fit_weibull_mle(disk_fail, censoring_times=disk_cens)
    print(f"  disks  : Weibull shape={disk_fit.shape:.2f} scale={disk_fit.scale:,.0f} h "
          f"(mean {disk_fit.distribution().mean():,.0f} h)")
    psu_est = estimate_rate(psu_fail, censoring_times=psu_cens)
    lo, hi = psu_est.confidence_interval(0.90)
    print(f"  PSUs   : λ̂={psu_est.rate:.3e}/h  90% CI [{lo:.3e}, {hi:.3e}]")
    repair_mean = float(np.mean(repairs))
    print(f"  repairs: MTTR ≈ {repair_mean:.2f} h from {len(repairs)} work orders")
    km = kaplan_meier(disk_fail, censoring_times=disk_cens)
    print(f"  disk survival at 8760 h (Kaplan–Meier): {km.survival_at(8759.0):.4f}")

    print()
    print("== 2. Software reliability growth ==")
    trend = laplace_trend(sw_times, 2_000.0)
    print(f"  Laplace statistic: {trend.statistic:.2f} "
          f"({'growth' if trend.statistic < -2 else 'no clear growth'})")
    sw_fit = fit_goel_okumoto(sw_times, 2_000.0)
    model = sw_fit.model()
    print(f"  Goel–Okumoto: â={sw_fit.a:.0f} faults, b̂={sw_fit.b:.4f}")
    print(f"  detected so far: {sw_fit.n_failures}, "
          f"predicted remaining: {model.expected_remaining(2_000.0):.1f}")
    sw_intensity = model.intensity(2_000.0)
    print(f"  release-time failure intensity: {sw_intensity:.3e}/h")

    print()
    print("== 3. Availability model from fitted parameters ==")

    def build(params):
        disk1 = Component.from_mttf_mttr("disk1", params["disk_mttf"], params["mttr"])
        disk2 = Component.from_mttf_mttr("disk2", params["disk_mttf"], params["mttr"])
        psu = Component.from_rates("psu", params["psu_rate"], 1.0 / params["mttr"])
        software = Component.from_rates("software", params["sw_rate"], 6.0)  # 10 min reboot
        return ReliabilityBlockDiagram(series(parallel(disk1, disk2), psu, software))

    point = {
        "disk_mttf": disk_fit.distribution().mean(),
        "psu_rate": psu_est.rate,
        "mttr": repair_mean,
        "sw_rate": sw_intensity,
    }
    system = build(point)
    print(f"  point availability: {system.steady_state_availability():.6f} "
          f"({system.downtime_minutes_per_year():.1f} min/yr)")
    disk_pair_availability = ReliabilityBlockDiagram(
        parallel(
            Component.from_mttf_mttr("d1", point["disk_mttf"], point["mttr"]),
            Component.from_mttf_mttr("d2", point["disk_mttf"], point["mttr"]),
        )
    ).steady_state_availability()
    total, budget = series_availability_budget(
        {
            "disk pair": disk_pair_availability,
            "psu": 1.0 / (1.0 + point["psu_rate"] * point["mttr"]),
            "software": 6.0 / (6.0 + point["sw_rate"]),
        }
    )
    for name, row in sorted(budget.items(), key=lambda kv: -kv[1].share):
        print(f"    {name:10s} share of downtime: {row.share:6.1%}")

    print()
    print("== 4. Estimation uncertainty -> availability interval ==")
    priors = {
        "disk_mttf": Lognormal.from_mean_cv(point["disk_mttf"], cv=0.3),
        "psu_rate": Lognormal.from_mean_cv(point["psu_rate"], cv=0.6),
        "mttr": Lognormal.from_mean_cv(point["mttr"], cv=0.2),
        "sw_rate": Lognormal.from_mean_cv(point["sw_rate"], cv=0.4),
    }
    result = propagate_uncertainty(
        lambda p: build(p).steady_state_availability(), priors,
        n_samples=400, rng=RNG,
    )
    low, high = result.interval(0.90)
    print(f"  availability 90% interval: [{low:.6f}, {high:.6f}]")
    print(f"  downtime interval: [{(1-high)*525600:.1f}, {(1-low)*525600:.1f}] min/yr")


if __name__ == "__main__":
    main()
