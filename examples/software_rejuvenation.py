"""Software rejuvenation: choosing the optimal restart timer.

Reproduces the tutorial's classic MRGP result: an aging software system
is rejuvenated on a deterministic timer; too-frequent rejuvenation wastes
uptime on planned restarts, too-rare rejuvenation lets crashes dominate —
the total cost curve is U-shaped with a finite optimum.

Run with ``python examples/software_rejuvenation.py``.
"""

import numpy as np

from repro.casestudies.rejuvenation import (
    RejuvenationParameters,
    downtime_fraction,
    interval_sweep,
    optimal_interval,
)


def main() -> None:
    params = RejuvenationParameters()
    baseline = downtime_fraction(None, params)
    print("== Without rejuvenation ==")
    print(f"  availability        : {baseline['availability']:.6f}")
    print(f"  unplanned downtime  : {baseline['unplanned']:.6f}")

    print()
    print("== Rejuvenation interval sweep (cost: repair 1.0, rejuvenation 0.2) ==")
    print(f"  {'tau (h)':>8s} {'unplanned':>11s} {'planned':>11s} {'cost rate':>11s}")
    grid = np.array([12, 24, 48, 96, 168, 336, 720, 1440], dtype=float)
    for tau, unplanned, planned, cost in interval_sweep(grid, params):
        print(f"  {tau:8.0f} {unplanned:11.6f} {planned:11.6f} {cost:11.6f}")

    fine = np.linspace(12.0, 1440.0, 120)
    best_tau, best_cost = optimal_interval(fine, params)
    print()
    print(f"optimal rejuvenation interval ≈ {best_tau:.0f} h (cost rate {best_cost:.6f})")
    best = downtime_fraction(best_tau, params)
    print(f"availability at the optimum    : {best['availability']:.6f}")
    print(f"vs no rejuvenation             : {baseline['availability']:.6f}")
    if best["total"] < baseline["total"]:
        print("rejuvenation reduces even TOTAL downtime here, not just cost.")


if __name__ == "__main__":
    main()
