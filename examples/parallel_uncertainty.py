"""Parallel uncertainty propagation on the IBM BladeCenter model.

The tutorial's closing challenge — propagate epistemic parameter
uncertainty through a real hierarchical availability model — is a batch
workload: thousands of independent model solves.  This example runs the
BladeCenter sweep through :mod:`repro.engine`:

* ``n_jobs=4`` fans the solves out to a chunked process pool (results
  are bit-identical to the serial run for the same seed);
* a :class:`~repro.engine.ProgressPrinter` reports sweep progress;
* a shared :class:`~repro.engine.EvaluationCache` memoizes the tornado
  and central-difference analyses that follow, so their repeated
  median/nominal points are solved once;
* the :class:`~repro.engine.EngineStats` attached to the result shows
  throughput, per-solve latency and cache effectiveness.

Run with ``python examples/parallel_uncertainty.py``.
"""

import numpy as np

from repro.casestudies.bladecenter import BladeCenterParameters, evaluate_availability
from repro.core import propagate_uncertainty, tornado_sensitivity
from repro.distributions import Lognormal
from repro.engine import EvaluationCache, ProgressPrinter, SwingCampaign, run_campaign

# Epistemic priors: lognormals centered on the published point
# estimates — generous cv for field-data rates, tighter for repair.
POINT = BladeCenterParameters()
PRIORS = {
    "disk_failure_rate": Lognormal.from_mean_cv(POINT.disk_failure_rate, cv=0.5),
    "memory_failure_rate": Lognormal.from_mean_cv(POINT.memory_failure_rate, cv=0.5),
    "software_failure_rate": Lognormal.from_mean_cv(POINT.software_failure_rate, cv=0.5),
    "blade_repair_rate": Lognormal.from_mean_cv(POINT.blade_repair_rate, cv=0.3),
}

N_SAMPLES = 400
N_JOBS = 4


def main():
    print(f"BladeCenter availability sweep: {N_SAMPLES} LHS samples, n_jobs={N_JOBS}")
    result = propagate_uncertainty(
        evaluate_availability,
        PRIORS,
        n_samples=N_SAMPLES,
        rng=np.random.default_rng(2016),
        n_jobs=N_JOBS,
        progress=ProgressPrinter(n_reports=5, prefix="  swept "),
    )

    point = evaluate_availability({})
    low, high = result.interval(0.90)
    print(f"\n  point estimate        {point:.6f}")
    print(f"  epistemic mean        {result.mean():.6f}")
    print(f"  90% interval          [{low:.6f}, {high:.6f}]")
    print(f"  5th/95th percentile   {result.percentile(5):.6f} / {result.percentile(95):.6f}")

    stats = result.stats
    print(f"\n  engine: {stats.executor} x{stats.n_jobs}")
    print(f"  throughput            {stats.throughput():.0f} solves/s")
    print(f"  mean / p95 solve      {1e3 * stats.mean_time():.2f} / {1e3 * stats.percentile(95):.2f} ms")
    print(f"  worker utilization    {stats.utilization():.0%}")

    # Tornado ranking through a shared cache: the OAT design repeats the
    # all-medians baseline once per parameter; the cache collapses the
    # duplicates, and a follow-up tornado_sensitivity call reuses every
    # point it shares with the campaign.
    cache = EvaluationCache()
    spec = SwingCampaign(PRIORS, low_q=0.05, high_q=0.95)
    campaign = run_campaign(evaluate_availability, spec, cache=cache)
    print(f"\n  tornado campaign: {len(campaign)} points, "
          f"{campaign.stats.n_evaluated} solved, "
          f"{campaign.stats.cache_hits} served from cache")
    rows = tornado_sensitivity(evaluate_availability, PRIORS, cache=cache)
    print(f"  follow-up tornado reused cache: "
          f"{cache.hits} lifetime hits / {cache.misses} misses")
    print("\n  parameter swings (5th -> 95th quantile):")
    for name, at_low, at_high in rows:
        print(f"    {name:<24s} {at_low:.6f} -> {at_high:.6f}  "
              f"(swing {abs(at_high - at_low):.2e})")


if __name__ == "__main__":
    main()
