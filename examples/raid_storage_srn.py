"""RAID storage array modeled as a stochastic reward net.

A disk array with hot spares, imperfect automatic rebuild and a shared
repair technician — the kind of dependency cocktail that makes hand-built
CTMCs error-prone and is exactly what SRN automatic generation is for.

The net: ``disks`` data disks are active; on a failure an immediate
branch decides whether the spare pool covers it (successful rebuild
start, probability ``coverage``) or the array must run degraded until a
technician intervenes.  The array is down when fewer than ``required``
disks are active.

Run with ``python examples/raid_storage_srn.py``.
"""

from repro.petrinet import PetriNet, SRNDependabilityModel, StochasticRewardNet

N_DISKS = 6          # active data disks
REQUIRED = 5         # array survives one loss (RAID-6-ish)
N_SPARES = 2
DISK_FAILURE_RATE = 1.0 / 100_000.0   # per hour
REBUILD_RATE = 1.0 / 8.0              # 8 h rebuild
TECH_RATE = 1.0 / 24.0                # technician visit, 24 h
COVERAGE = 0.98                       # spare kicks in automatically


def build_array() -> PetriNet:
    net = PetriNet()
    net.add_place("active", N_DISKS)
    net.add_place("deciding", 0)
    net.add_place("rebuilding", 0)
    net.add_place("waiting_tech", 0)
    net.add_place("spares", N_SPARES)

    net.add_timed_transition("fail", rate=lambda m: DISK_FAILURE_RATE * m["active"])
    net.add_input_arc("fail", "active")
    net.add_output_arc("fail", "deciding")

    # Immediate branching: covered only while a spare is available.
    net.add_immediate_transition(
        "covered", weight=COVERAGE, guard=lambda m: m["spares"] >= 1
    )
    net.add_input_arc("covered", "deciding")
    net.add_input_arc("covered", "spares")
    net.add_output_arc("covered", "rebuilding")

    net.add_immediate_transition(
        "uncovered", weight=1.0 - COVERAGE, guard=lambda m: m["spares"] >= 1
    )
    net.add_input_arc("uncovered", "deciding")
    net.add_output_arc("uncovered", "waiting_tech")

    # No spare left: always a technician case.
    net.add_immediate_transition(
        "no_spare", weight=1.0, guard=lambda m: m["spares"] == 0
    )
    net.add_input_arc("no_spare", "deciding")
    net.add_output_arc("no_spare", "waiting_tech")

    net.add_timed_transition("rebuild", rate=lambda m: REBUILD_RATE * m["rebuilding"])
    net.add_input_arc("rebuild", "rebuilding")
    net.add_output_arc("rebuild", "active")

    # Technician restores the disk AND replenishes the spare pool slot.
    net.add_timed_transition("tech", rate=TECH_RATE)
    net.add_input_arc("tech", "waiting_tech")
    net.add_output_arc("tech", "active")
    net.add_timed_transition(
        "restock", rate=1.0 / 72.0, guard=lambda m: m["spares"] < N_SPARES
    )
    net.add_output_arc("restock", "spares")
    net.add_inhibitor_arc("restock", "spares", N_SPARES)
    return net


def main() -> None:
    srn = StochasticRewardNet(build_array())
    print("== State space ==")
    print(f"  tangible markings : {srn.n_tangible}")
    print(f"  vanishing removed : {srn.n_vanishing}")

    model = SRNDependabilityModel(srn, up=lambda m: m["active"] >= REQUIRED)

    print()
    print("== Measures ==")
    print(f"  P[array serving]        : {model.steady_state_availability():.9f}")
    print(f"  downtime                : {model.downtime_minutes_per_year():9.3f} min/yr")
    print(f"  MTTF (to first outage)  : {model.mttf():,.0f} h")
    print(f"  E[active disks]         : {srn.expected_tokens('active'):.4f}")
    print(f"  E[spares on shelf]      : {srn.expected_tokens('spares'):.4f}")
    print(f"  disk failure throughput : {srn.throughput('fail'):.3e} /h")
    print(f"  technician call rate    : {srn.throughput('tech'):.3e} /h")

    print()
    print("== What-if: no hot spares (every failure waits for the tech) ==")
    srn0 = StochasticRewardNet(_no_spare_variant())
    model0 = SRNDependabilityModel(srn0, up=lambda m: m["active"] >= REQUIRED)
    print(f"  P[array serving]        : {model0.steady_state_availability():.9f}")
    print(f"  downtime                : {model0.downtime_minutes_per_year():9.3f} min/yr")


def _no_spare_variant() -> PetriNet:
    net = PetriNet()
    net.add_place("active", N_DISKS)
    net.add_place("waiting_tech", 0)
    net.add_timed_transition("fail", rate=lambda m: DISK_FAILURE_RATE * m["active"])
    net.add_input_arc("fail", "active")
    net.add_output_arc("fail", "waiting_tech")
    net.add_timed_transition("tech", rate=TECH_RATE)
    net.add_input_arc("tech", "waiting_tech")
    net.add_output_arc("tech", "active")
    return net


if __name__ == "__main__":
    main()
