"""Software reliability growth models (NHPP family).

The software-reliability side of the tutorial's practice (the author's
SREPT tool): failures during test/debug follow a non-homogeneous Poisson
process whose mean-value function flattens as faults are removed.  The
three classical models:

* **Goel–Okumoto** — ``m(t) = a (1 - e^{-bt})``: finite fault content
  ``a``, exponential detection;
* **delayed S-shaped** — ``m(t) = a (1 - (1 + bt) e^{-bt})``: learning
  phase before the detection rate peaks;
* **Musa–Okumoto (logarithmic Poisson)** —
  ``m(t) = (1/θ) ln(1 + λ₀ θ t)``: infinite failures, geometrically
  decaying per-fault intensity.

Every model exposes the practitioner measures: expected cumulative
failures, failure intensity, expected residual faults, and conditional
reliability ``R(s | t) = exp(-(m(t+s) - m(t)))``.
"""

from __future__ import annotations

import abc
import math

import numpy as np

from .._validation import check_positive
from ..exceptions import ModelDefinitionError

__all__ = ["NHPPModel", "GoelOkumoto", "DelayedSShaped", "MusaOkumoto"]


class NHPPModel(abc.ABC):
    """A non-homogeneous Poisson process failure model."""

    @abc.abstractmethod
    def mean_value(self, t):
        """Expected cumulative failures ``m(t)``."""

    @abc.abstractmethod
    def intensity(self, t):
        """Failure intensity ``λ(t) = m'(t)``."""

    def reliability(self, mission: float, after: float = 0.0) -> float:
        """``P[no failure in (after, after + mission)]``.

        The conditional reliability practitioners quote at release time
        ``after``.
        """
        if mission < 0 or after < 0:
            raise ModelDefinitionError("times must be non-negative")
        delta = float(self.mean_value(after + mission)) - float(self.mean_value(after))
        return math.exp(-delta)

    def expected_failures(self, t1: float, t2: float) -> float:
        """Expected failures in the interval ``(t1, t2]``."""
        if not 0 <= t1 <= t2:
            raise ModelDefinitionError("need 0 <= t1 <= t2")
        return float(self.mean_value(t2)) - float(self.mean_value(t1))

    def sample_failure_times(self, horizon: float, rng: np.random.Generator) -> np.ndarray:
        """Simulate one realization on ``(0, horizon]``.

        Draws ``N ~ Poisson(m(T))`` and places the N event times i.i.d.
        with CDF ``m(t)/m(T)`` (the standard NHPP order-statistics
        construction), inverted numerically.
        """
        total = float(self.mean_value(horizon))
        n = int(rng.poisson(total))
        if n == 0:
            return np.empty(0)
        u = np.sort(rng.uniform(size=n)) * total
        # invert m on a fine grid
        grid = np.linspace(0.0, horizon, 20_001)
        values = np.asarray(self.mean_value(grid), dtype=float)
        return np.interp(u, values, grid)


class GoelOkumoto(NHPPModel):
    """Goel–Okumoto exponential NHPP: ``m(t) = a (1 - e^{-bt})``.

    Parameters
    ----------
    a:
        Expected total fault content.
    b:
        Per-fault detection rate.

    Examples
    --------
    >>> model = GoelOkumoto(a=100.0, b=0.05)
    >>> round(model.mean_value(20.0), 4)
    63.2121
    """

    def __init__(self, a: float, b: float):
        self.a = check_positive(a, "a")
        self.b = check_positive(b, "b")

    def mean_value(self, t):
        t = np.asarray(t, dtype=float)
        out = self.a * -np.expm1(-self.b * t)
        return out if out.ndim else float(out)

    def intensity(self, t):
        t = np.asarray(t, dtype=float)
        out = self.a * self.b * np.exp(-self.b * t)
        return out if out.ndim else float(out)

    def expected_remaining(self, t: float) -> float:
        """Expected undetected faults at time ``t``: ``a e^{-bt}``."""
        return self.a * math.exp(-self.b * float(t))


class DelayedSShaped(NHPPModel):
    """Yamada delayed S-shaped NHPP: ``m(t) = a (1 - (1 + bt) e^{-bt})``.

    Examples
    --------
    >>> model = DelayedSShaped(a=100.0, b=0.1)
    >>> model.intensity(0.0)
    0.0
    """

    def __init__(self, a: float, b: float):
        self.a = check_positive(a, "a")
        self.b = check_positive(b, "b")

    def mean_value(self, t):
        t = np.asarray(t, dtype=float)
        out = self.a * (1.0 - (1.0 + self.b * t) * np.exp(-self.b * t))
        return out if out.ndim else float(out)

    def intensity(self, t):
        t = np.asarray(t, dtype=float)
        out = self.a * self.b**2 * t * np.exp(-self.b * t)
        return out if out.ndim else float(out)

    def expected_remaining(self, t: float) -> float:
        """Expected undetected faults at time ``t``."""
        return self.a - float(self.mean_value(t))


class MusaOkumoto(NHPPModel):
    """Musa–Okumoto logarithmic Poisson: ``m(t) = ln(1 + λ₀ θ t) / θ``.

    Infinite-failure model: intensity decays geometrically with the
    number of failures experienced, never reaching zero.

    Examples
    --------
    >>> model = MusaOkumoto(initial_intensity=10.0, decay=0.05)
    >>> model.intensity(0.0)
    10.0
    """

    def __init__(self, initial_intensity: float, decay: float):
        self.initial_intensity = check_positive(initial_intensity, "initial_intensity")
        self.decay = check_positive(decay, "decay")

    def mean_value(self, t):
        t = np.asarray(t, dtype=float)
        out = np.log1p(self.initial_intensity * self.decay * t) / self.decay
        return out if out.ndim else float(out)

    def intensity(self, t):
        t = np.asarray(t, dtype=float)
        out = self.initial_intensity / (1.0 + self.initial_intensity * self.decay * t)
        return out if out.ndim else float(out)
