"""Software reliability growth models (the SREPT side of the tutorial).

NHPP models of failure occurrence during test/debug — Goel–Okumoto,
delayed S-shaped, Musa–Okumoto — with MLE fitting and the Laplace trend
test, used to answer "how many faults remain?" and "what reliability can
we claim at release?".
"""

from .fitting import GoelOkumotoFit, LaplaceTrend, fit_goel_okumoto, laplace_trend
from .models import DelayedSShaped, GoelOkumoto, MusaOkumoto, NHPPModel

__all__ = [
    "NHPPModel",
    "GoelOkumoto",
    "DelayedSShaped",
    "MusaOkumoto",
    "GoelOkumotoFit",
    "fit_goel_okumoto",
    "LaplaceTrend",
    "laplace_trend",
]
