"""Fitting software reliability growth models to failure data.

Maximum-likelihood estimation of the Goel–Okumoto model from exact
failure times, plus the Laplace trend test that should precede any SRGM
fit ("is reliability actually growing?").
"""

from __future__ import annotations

import math
from typing import NamedTuple, Sequence

import numpy as np
from scipy import optimize, stats

from ..exceptions import DistributionError
from .models import GoelOkumoto

__all__ = ["GoelOkumotoFit", "fit_goel_okumoto", "laplace_trend"]


class GoelOkumotoFit(NamedTuple):
    """MLE result for the Goel–Okumoto model."""

    a: float
    b: float
    n_failures: int
    observation_time: float
    log_likelihood: float

    def model(self) -> GoelOkumoto:
        """The fitted model object."""
        return GoelOkumoto(a=self.a, b=self.b)


def fit_goel_okumoto(
    failure_times: Sequence[float], observation_time: float
) -> GoelOkumotoFit:
    """MLE of Goel–Okumoto parameters from exact failure times.

    Solves the standard coupled equations for failure times
    ``t_1 <= ... <= t_n`` observed on ``(0, T]``::

        a = n / (1 - e^{-bT})
        n/b = Σ t_i + n T e^{-bT} / (1 - e^{-bT})

    Parameters
    ----------
    failure_times:
        Cumulative failure detection times (all in ``(0, T]``).
    observation_time:
        End of the observation window ``T``.

    Examples
    --------
    >>> import numpy as np
    >>> rng = np.random.default_rng(3)
    >>> truth = GoelOkumoto(a=200.0, b=0.02)
    >>> times = truth.sample_failure_times(200.0, rng)
    >>> fit = fit_goel_okumoto(times, 200.0)
    >>> 100.0 < fit.a < 400.0
    True
    """
    times = np.sort(np.asarray(list(failure_times), dtype=float))
    T = float(observation_time)
    if times.size < 3:
        raise DistributionError("need at least three failure times")
    if T <= 0 or np.any(times <= 0) or np.any(times > T + 1e-9):
        raise DistributionError("failure times must lie in (0, observation_time]")
    n = times.size
    sum_t = float(times.sum())

    def equation(b: float) -> float:
        ebt = math.exp(-b * T)
        return n / b - sum_t - n * T * ebt / (1.0 - ebt)

    # As b -> 0+, equation -> n T/2 - sum_t (positive iff failures skew
    # early); as b -> inf, equation -> -sum_t < 0.  If failures show no
    # early skew the MLE does not exist (no reliability growth).
    lo, hi = 1e-9, 1.0
    if equation(lo) <= 0:
        raise DistributionError(
            "no reliability growth in the data (mean failure time >= T/2); "
            "Goel-Okumoto MLE does not exist"
        )
    while equation(hi) > 0 and hi < 1e6:
        hi *= 2.0
    b = float(optimize.brentq(equation, lo, hi, xtol=1e-14))
    a = n / (1.0 - math.exp(-b * T))
    log_lik = (
        n * math.log(a * b) - b * sum_t - a * (1.0 - math.exp(-b * T))
    )
    return GoelOkumotoFit(
        a=a, b=b, n_failures=n, observation_time=T, log_likelihood=log_lik
    )


class LaplaceTrend(NamedTuple):
    """Laplace trend-test result."""

    #: standardized statistic; large negative = reliability growth
    statistic: float
    #: one-sided p-value for the growth hypothesis (small = growth)
    p_value_growth: float


def laplace_trend(failure_times: Sequence[float], observation_time: float) -> LaplaceTrend:
    """Laplace factor for trend in an observed point process.

    ``u = (mean(t_i) - T/2) / (T sqrt(1/(12 n)))``; under a homogeneous
    Poisson process ``u ~ N(0,1)``.  ``u << 0`` indicates inter-failure
    times growing — reliability growth; ``u >> 0`` indicates decay.

    Examples
    --------
    >>> trend = laplace_trend([1.0, 2.0, 4.0, 8.0], 100.0)
    >>> trend.statistic < -2.0     # strong growth signal
    True
    """
    times = np.asarray(list(failure_times), dtype=float)
    T = float(observation_time)
    if times.size < 2:
        raise DistributionError("need at least two failure times")
    if T <= 0 or np.any(times < 0) or np.any(times > T + 1e-9):
        raise DistributionError("failure times must lie in [0, observation_time]")
    n = times.size
    u = (float(times.mean()) - T / 2.0) / (T * math.sqrt(1.0 / (12.0 * n)))
    return LaplaceTrend(statistic=u, p_value_growth=float(stats.norm.cdf(u)))
