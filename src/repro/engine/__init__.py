"""Parallel batch-evaluation engine (E30).

The library's batch workhorse: every workload that maps one model
evaluator over many parameter assignments — uncertainty propagation,
tornado and central-difference sensitivity, what-if grids, Monte Carlo
designs — routes through :func:`evaluate_batch`, which composes

* an :class:`Executor` backend (:class:`SerialExecutor`,
  :class:`ThreadExecutor`, chunked :class:`ProcessExecutor`) with
  deterministic per-task RNG spawning, so results are bit-identical
  across executors for a given seed;
* an optional memoizing :class:`EvaluationCache` keyed on the frozen
  assignment, deduplicating repeated baseline/median points;
* :class:`EngineStats` instrumentation — per-evaluation wall times,
  throughput, cache hit rate, worker utilization — plus a
  ``progress(done, total)`` callback hook.

:mod:`~repro.engine.campaign` adds declarative designs
(:class:`GridCampaign`, :class:`SwingCampaign`,
:class:`SamplingCampaign`) on top.
"""

from .batch import BatchResult, evaluate_batch
from .cache import EvaluationCache, canonical_point_key, freeze_assignment
from .campaign import (
    CampaignResult,
    CampaignSpec,
    GridCampaign,
    PointsCampaign,
    SamplingCampaign,
    SwingCampaign,
    run_campaign,
)
from .executors import (
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    parallel_starmap,
    resolve_executor,
    spawn_generators,
)
from .options import EngineOptions, resolve_options
from .stats import EngineStats, ProgressPrinter

__all__ = [
    "evaluate_batch",
    "BatchResult",
    "EngineOptions",
    "resolve_options",
    "EvaluationCache",
    "canonical_point_key",
    "freeze_assignment",
    "Executor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "resolve_executor",
    "spawn_generators",
    "parallel_starmap",
    "EngineStats",
    "ProgressPrinter",
    "CampaignSpec",
    "PointsCampaign",
    "GridCampaign",
    "SwingCampaign",
    "SamplingCampaign",
    "CampaignResult",
    "run_campaign",
]
