"""Declarative evaluation campaigns.

A *campaign* is a named design over the parameter space — the engine
counterpart of DAVOS-style fault-injection campaign managers: describe
*what* to evaluate, let :func:`run_campaign` decide *how* (executor,
chunking, memoization, progress).

Three designs cover the tutorial's workloads:

* :class:`GridCampaign` — full-factorial grid (what-if tables, E18/E19
  style downtime-vs-parameter tables);
* :class:`SwingCampaign` — one-at-a-time tornado table: each parameter
  swung to its low/high quantile with the others at their medians,
  baseline row included per parameter (the duplicate baselines are
  exactly what the :class:`~repro.engine.cache.EvaluationCache`
  deduplicates);
* :class:`SamplingCampaign` — Monte Carlo / Latin-hypercube designs,
  reusing the uncertainty module's sampler.
"""

from __future__ import annotations

import itertools
import os
from contextlib import nullcontext
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import ModelDefinitionError
from ..obs.trace import activate_tracer, get_tracer
from .batch import BatchResult, evaluate_batch
from .cache import EvaluationCache
from .options import EngineOptions, resolve_options
from .stats import EngineStats

__all__ = [
    "CampaignSpec",
    "PointsCampaign",
    "GridCampaign",
    "SwingCampaign",
    "SamplingCampaign",
    "CampaignResult",
    "run_campaign",
]


class CampaignSpec:
    """A declarative description of which assignments to evaluate."""

    def assignments(self, rng: Optional[np.random.Generator] = None) -> List[Dict[str, float]]:
        """Materialize the design as a list of parameter assignments.

        ``rng`` is consumed only by randomized designs
        (:class:`SamplingCampaign`); deterministic designs ignore it.
        """
        raise NotImplementedError

    def run(self, evaluate, **engine_kwargs) -> "CampaignResult":
        """Shorthand for :func:`run_campaign` on this spec."""
        return run_campaign(evaluate, self, **engine_kwargs)


class PointsCampaign(CampaignSpec):
    """An explicit, pre-materialized list of design points.

    The degenerate-but-essential design: no generation rule, just the
    points themselves.  This is what :mod:`repro.store` reconstructs
    when it resumes a campaign from its durable task list (the stored
    point keys *are* the design), and what ad-hoc studies use to replay
    an exact point set.

    Examples
    --------
    >>> spec = PointsCampaign([{"x": 1.0}, {"x": 2.0}])
    >>> spec.assignments()
    [{'x': 1.0}, {'x': 2.0}]
    """

    def __init__(self, points: Sequence[Mapping[str, float]]):
        if not points:
            raise ModelDefinitionError("a points campaign needs at least one point")
        self.points: List[Dict[str, float]] = [
            {str(k): float(v) for k, v in point.items()} for point in points
        ]

    def assignments(self, rng=None):
        return [dict(point) for point in self.points]


class GridCampaign(CampaignSpec):
    """Full-factorial grid over explicit per-parameter value lists.

    Examples
    --------
    >>> spec = GridCampaign({"lam": [1e-4, 1e-3], "mu": [0.25, 0.5]})
    >>> len(spec.assignments())
    4
    """

    def __init__(self, axes: Mapping[str, Sequence[float]]):
        if not axes:
            raise ModelDefinitionError("a grid campaign needs at least one axis")
        self.axes: Dict[str, List[float]] = {}
        for name, values in axes.items():
            values = [float(v) for v in values]
            if not values:
                raise ModelDefinitionError(f"axis {name!r} has no values")
            self.axes[str(name)] = values

    @property
    def shape(self) -> Tuple[int, ...]:
        """Points per axis, in axis insertion order."""
        return tuple(len(v) for v in self.axes.values())

    def assignments(self, rng=None):
        names = list(self.axes)
        return [
            dict(zip(names, combo))
            for combo in itertools.product(*(self.axes[name] for name in names))
        ]


class SwingCampaign(CampaignSpec):
    """One-at-a-time tornado design from epistemic priors.

    For each parameter the design emits the classic OAT triple
    ``(low, baseline, high)`` — the parameter at its ``low_q`` / median
    / ``high_q`` quantile, every other parameter at its median.  The
    baseline row therefore repeats once per parameter; running the
    campaign with an :class:`~repro.engine.cache.EvaluationCache`
    collapses those duplicates to a single model solve (``k - 1`` cache
    hits for ``k`` parameters).  With ``include_baseline=False`` only
    the low/high rows are emitted (the raw tornado table).
    """

    def __init__(
        self,
        priors: Mapping[str, object],
        low_q: float = 0.05,
        high_q: float = 0.95,
        include_baseline: bool = True,
    ):
        if not priors:
            raise ModelDefinitionError("at least one uncertain parameter is required")
        if not 0.0 < low_q < high_q < 1.0:
            raise ModelDefinitionError(
                f"need 0 < low_q < high_q < 1, got {low_q} and {high_q}"
            )
        self.priors = dict(priors)
        self.low_q = float(low_q)
        self.high_q = float(high_q)
        self.include_baseline = bool(include_baseline)

    @property
    def baseline(self) -> Dict[str, float]:
        """The all-medians anchor point."""
        return {name: float(prior.ppf(0.5)) for name, prior in self.priors.items()}

    def assignments(self, rng=None):
        baseline = self.baseline
        rows: List[Dict[str, float]] = []
        for name, prior in self.priors.items():
            low = dict(baseline)
            high = dict(baseline)
            low[name] = float(prior.ppf(self.low_q))
            high[name] = float(prior.ppf(self.high_q))
            if self.include_baseline:
                rows.extend((low, dict(baseline), high))
            else:
                rows.extend((low, high))
        return rows

    def tornado_rows(self, outputs: Sequence[float]) -> List[Tuple[str, float, float]]:
        """Fold campaign outputs into ``(name, at_low, at_high)`` rows,
        sorted by decreasing absolute swing (the tornado ranking)."""
        stride = 3 if self.include_baseline else 2
        names = list(self.priors)
        if len(outputs) != stride * len(names):
            raise ModelDefinitionError(
                f"expected {stride * len(names)} outputs, got {len(outputs)}"
            )
        rows = [
            (name, float(outputs[stride * i]), float(outputs[stride * i + stride - 1]))
            for i, name in enumerate(names)
        ]
        rows.sort(key=lambda row: abs(row[2] - row[1]), reverse=True)
        return rows


class SamplingCampaign(CampaignSpec):
    """Monte Carlo (``"mc"``) or Latin-hypercube (``"lhs"``) design.

    Reuses the sampler behind
    :func:`repro.core.uncertainty.propagate_uncertainty`, so a campaign
    with the same priors, seed and method evaluates exactly the points
    that function would.
    """

    def __init__(self, priors: Mapping[str, object], n_samples: int, method: str = "lhs"):
        if not priors:
            raise ModelDefinitionError("at least one uncertain parameter is required")
        if n_samples < 1:
            raise ModelDefinitionError(f"n_samples must be >= 1, got {n_samples}")
        if method not in ("mc", "lhs"):
            raise ModelDefinitionError(f"unknown sampling method {method!r}; use 'mc' or 'lhs'")
        self.priors = dict(priors)
        self.n_samples = int(n_samples)
        self.method = method

    def assignments(self, rng=None):
        from ..core.uncertainty import _draw_parameters  # local: avoids an import cycle

        rng = rng if rng is not None else np.random.default_rng()
        draws = _draw_parameters(self.priors, self.n_samples, rng, self.method)
        names = list(self.priors)
        return [
            {name: float(draws[name][k]) for name in names} for k in range(self.n_samples)
        ]


class CampaignResult:
    """Assignments, outputs and instrumentation of one campaign run.

    Attributes
    ----------
    spec:
        The :class:`CampaignSpec` that was run.
    assignments:
        The materialized design points, in evaluation order.
    outputs:
        One output per design point (:class:`numpy.ndarray`); ``NaN``
        at points that failed under a ``"skip"`` / ``"retry"`` policy.
    stats:
        The run's :class:`~repro.engine.stats.EngineStats`.
    errors:
        Terminal :class:`~repro.robust.ErrorRecord` per failed design
        point (empty on a clean run).
    """

    def __init__(
        self,
        spec: CampaignSpec,
        assignments: List[Dict[str, float]],
        outputs: np.ndarray,
        stats: EngineStats,
        errors=None,
    ):
        self.spec = spec
        self.assignments = assignments
        self.outputs = np.asarray(outputs, dtype=float)
        self.stats = stats
        self.errors = list(errors or [])

    @property
    def n_failed(self) -> int:
        """Number of design points that failed terminally."""
        return len(self.errors)

    def __len__(self) -> int:
        return int(self.outputs.size)

    def parameter_values(self, name: str) -> np.ndarray:
        """The value of one parameter across the design points."""
        try:
            return np.asarray([a[name] for a in self.assignments], dtype=float)
        except KeyError:
            raise ModelDefinitionError(f"unknown parameter {name!r}") from None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CampaignResult({len(self)} points, {self.stats!r})"


def run_campaign(
    evaluate,
    spec: CampaignSpec,
    rng: Optional[np.random.Generator] = None,
    n_jobs: Optional[int] = None,
    chunk_size: Optional[int] = None,
    executor=None,
    cache: Optional[EvaluationCache] = None,
    progress=None,
    policy=None,
    options: Optional[EngineOptions] = None,
    tracer=None,
    compile=None,
    diagnostics: Optional[str] = None,
    store=None,
    resume: Optional[bool] = None,
    order: Optional[str] = None,
) -> CampaignResult:
    """Materialize ``spec`` and evaluate it through the engine.

    ``rng`` seeds randomized designs; the remaining keyword arguments —
    including an optional :class:`~repro.robust.FaultPolicy` ``policy``
    isolating per-point faults, or one bundled
    :class:`~repro.engine.EngineOptions` ``options`` (loose keywords
    override its fields) — are forwarded to
    :func:`~repro.engine.batch.evaluate_batch`.  When tracing is active
    the whole run is wrapped in an ``engine.campaign`` span.  ``compile``
    controls compiled-evaluator substitution (see :mod:`repro.compile`);
    the design ``rng`` never reaches the evaluator, so auto-compilation
    applies to campaigns exactly as it does to plain batches.
    ``diagnostics`` (``"ignore"``/``"warn"``/``"strict"``) runs the
    one-shot :mod:`repro.analyze` pre-flight of
    :func:`~repro.engine.batch.evaluate_batch` over the campaign's
    evaluator before the sweep.

    ``store`` (a :class:`~repro.store.CampaignStore` or a path string)
    makes the campaign durable: execution routes through
    :class:`~repro.store.ResumableCampaign`, committing each completed
    chunk so a killed process resumes instead of restarting — with
    ``resume=True`` (the default) stored successes are reused and
    stored failures re-dispatched; ``resume=False`` records durably but
    re-evaluates everything this run.  Outputs are bit-identical to the
    in-memory path either way.

    ``order="continuation"`` evaluates the points in the
    nearest-neighbor visiting order of
    :func:`repro.compile.continuation_order` — consecutive evaluations
    stay close in parameter space, which is what makes warm-started
    compiled sparse sweeps converge in a handful of Krylov iterations.
    Results (outputs, errors, stats) are always reported in the spec's
    own point order; evaluation order is an engine detail.  Not
    supported together with ``store=`` (the durable log keys chunks by
    spec order).
    """
    if order not in (None, "continuation"):
        raise ModelDefinitionError(
            f"unknown campaign order {order!r}; use None or 'continuation'"
        )
    opts = resolve_options(
        options,
        n_jobs=n_jobs,
        chunk_size=chunk_size,
        executor=executor,
        cache=cache,
        progress=progress,
        policy=policy,
        tracer=tracer,
        compile=compile,
        diagnostics=diagnostics,
        store=store,
        resume=resume,
    )
    scope = activate_tracer(opts.tracer) if opts.tracer is not None else nullcontext()
    with scope:
        if opts.store is not None:
            if order is not None:
                raise ModelDefinitionError(
                    "order= is not supported with store=: the durable log "
                    "commits chunks in spec order; drop one of the two"
                )
            return _run_stored_campaign(evaluate, spec, opts, rng)
        assignments = spec.assignments(rng)
        perm = None
        if order == "continuation" and len(assignments) > 2:
            from ..compile.sparse import continuation_order

            perm = continuation_order(assignments)
        active = get_tracer()
        span = (
            active.span(
                "engine.campaign",
                spec=type(spec).__name__,
                n_points=len(assignments),
                order=order or "spec",
            )
            if active.enabled
            else nullcontext()
        )
        with span:
            batch: BatchResult = evaluate_batch(
                evaluate,
                assignments if perm is None else [assignments[i] for i in perm],
                options=opts.replace(tracer=None),
            )
    if perm is None:
        return CampaignResult(spec, assignments, batch.outputs, batch.stats, batch.errors)
    # un-permute: outputs and error indices back into spec point order
    outputs = np.empty_like(batch.outputs)
    outputs[perm] = batch.outputs
    errors = [err.with_index(perm[err.index]) for err in batch.errors]
    return CampaignResult(spec, assignments, outputs, batch.stats, errors)


def _run_stored_campaign(
    evaluate, spec: CampaignSpec, opts: EngineOptions, rng
) -> CampaignResult:
    """The durable campaign path behind ``run_campaign(..., store=...)``.

    Imported lazily: :mod:`repro.store` builds on the engine, so the
    engine must not import it at module load.
    """
    from ..store import CampaignStore, ResumableCampaign, model_name_for

    owns_store = isinstance(opts.store, (str, bytes, os.PathLike))
    if owns_store:
        store = CampaignStore(opts.store)
    elif isinstance(opts.store, CampaignStore):
        store = opts.store
    else:
        raise ModelDefinitionError(
            "store= must be a path or a repro.store.CampaignStore, "
            f"got {type(opts.store).__name__}"
        )
    inner = opts.replace(store=None, resume=None, tracer=None, progress=None)
    try:
        if opts.resume is False:
            # record durably, but evaluate every point fresh this run
            assignments = spec.assignments(rng)
            batch = evaluate_batch(evaluate, assignments, options=inner)
            errors_by_index = {err.index: err for err in batch.errors}
            model = model_name_for(evaluate)
            store.record_many(
                model,
                [
                    (
                        assignment,
                        float(batch.outputs[i]),
                        errors_by_index.get(i),
                        0.0,
                        getattr(errors_by_index.get(i), "attempts", 1),
                    )
                    for i, assignment in enumerate(assignments)
                ],
            )
            return CampaignResult(
                spec, assignments, batch.outputs, batch.stats, batch.errors
            )
        campaign = ResumableCampaign(
            evaluate,
            spec,
            store,
            chunk_size=opts.chunk_size if opts.chunk_size else 25,
            options=inner.replace(chunk_size=None),
        )
        return campaign.run(rng)
    finally:
        if owns_store:
            store.close()
