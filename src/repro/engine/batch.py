"""The engine's front door: :func:`evaluate_batch`.

Takes an evaluator and a sequence of parameter assignments; returns the
outputs (in input order) plus an :class:`~repro.engine.stats.EngineStats`.
Optionally routes through an
:class:`~repro.engine.cache.EvaluationCache` — duplicate assignments
inside the batch are evaluated once, and assignments seen in earlier
batches are not evaluated at all — and fans the remaining work out to
the chosen :class:`~repro.engine.executors.Executor`.
"""

from __future__ import annotations

from contextlib import nullcontext
from time import perf_counter
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import ModelDefinitionError
from ..obs.trace import activate_tracer, get_tracer
from ..robust.policy import ErrorRecord, FaultPolicy
from .cache import EvaluationCache, freeze_assignment
from .executors import Executor, resolve_executor, spawn_generators
from .options import EngineOptions, resolve_options
from .stats import EngineStats

__all__ = ["BatchResult", "evaluate_batch"]

Evaluator = Callable[..., float]


class BatchResult:
    """Outputs and instrumentation of one :func:`evaluate_batch` call.

    Attributes
    ----------
    outputs:
        ``float`` array, one entry per input assignment, input order.
        Tasks that failed under a ``"skip"`` / ``"retry"`` fault policy
        hold ``NaN``.
    stats:
        The :class:`~repro.engine.stats.EngineStats` for the batch.
    errors:
        Terminal :class:`~repro.robust.ErrorRecord` per failed task
        (empty on a clean batch or under ``on_error="raise"``).
    """

    def __init__(
        self,
        outputs: np.ndarray,
        stats: EngineStats,
        errors: Optional[Sequence[ErrorRecord]] = None,
    ):
        self.outputs = np.asarray(outputs, dtype=float)
        self.stats = stats
        self.errors: List[ErrorRecord] = sorted(errors or [], key=lambda e: e.index)

    @property
    def n_failed(self) -> int:
        """Number of tasks that failed terminally."""
        return len(self.errors)

    @property
    def failed_indices(self) -> List[int]:
        """Input-order indices of the failed tasks."""
        return [error.index for error in self.errors]

    @property
    def ok(self) -> np.ndarray:
        """Boolean mask, ``True`` where the task produced a value."""
        mask = np.ones(self.outputs.size, dtype=bool)
        for error in self.errors:
            mask[error.index] = False
        return mask

    def __len__(self) -> int:
        return int(self.outputs.size)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        failed = f", {self.n_failed} failed" if self.errors else ""
        return f"BatchResult({self.outputs.size} outputs{failed}, {self.stats!r})"


def evaluate_batch(
    evaluate: Evaluator,
    assignments: Sequence[Mapping[str, float]],
    n_jobs: Optional[int] = None,
    chunk_size: Optional[int] = None,
    executor=None,
    cache: Optional[EvaluationCache] = None,
    rng: Optional[np.random.Generator] = None,
    progress=None,
    policy: Optional[FaultPolicy] = None,
    options: Optional[EngineOptions] = None,
    tracer=None,
    compile=None,
    diagnostics: Optional[str] = None,
) -> BatchResult:
    """Evaluate every assignment; outputs in input order plus stats.

    Parameters
    ----------
    evaluate:
        ``assignment -> float``, or ``(assignment, rng) -> float`` when
        ``rng`` is given.  Must be a picklable module-level callable for
        process-based execution.
    assignments:
        Parameter assignments (mappings name -> value).
    n_jobs:
        Worker count; 1 (default) runs serially, more selects a chunked
        process pool unless ``executor`` overrides the backend.
    chunk_size:
        Tasks per dispatch unit for pool backends (default ~4 chunks
        per worker).
    executor:
        ``None``, an :class:`~repro.engine.executors.Executor`
        instance, or ``"serial"`` / ``"thread"`` / ``"process"``.
    cache:
        Optional :class:`~repro.engine.cache.EvaluationCache`.
        Duplicate assignments (within this batch or remembered from
        earlier batches) are served without re-evaluation.  Requires a
        deterministic evaluator, so it cannot be combined with ``rng``.
    rng:
        Base generator for stochastic evaluators.  One child generator
        per task is spawned deterministically (by task index), so
        results are bit-identical across executors and worker counts
        for a given seed.
    progress:
        Optional ``progress(done, total)`` callback (see
        :class:`~repro.engine.stats.ProgressPrinter`), invoked in the
        calling process; cache hits count as immediately done.
    policy:
        Optional :class:`~repro.robust.FaultPolicy` isolating task
        faults: ``"skip"`` records failures and emits ``NaN``
        placeholders, ``"retry"`` re-attempts with deterministic
        backoff first, and a broken process pool is recovered by
        serial re-dispatch.  ``None`` (default) fails fast, exactly as
        before the policy existed.  Failed evaluations are never
        written to the ``cache``, so a later batch (or a retry at
        campaign level) re-attempts them.
    options:
        An :class:`~repro.engine.EngineOptions` naming the six loose
        keywords above plus ``tracer`` in one object.  Loose keywords
        explicitly passed override the corresponding field.
    tracer:
        Optional :class:`~repro.obs.Tracer` made active for the
        duration of the call; ``None`` uses the ambient one installed
        by a surrounding :func:`repro.obs.trace` block.
    compile:
        ``None`` (default) auto-substitutes the bit-identical compiled
        form of evaluators that advertise one (``__compiles_to__``,
        e.g. the case-study ``evaluate_availability`` functions) when
        no ``rng`` is given; ``True`` forces compilation via
        :func:`repro.compile.compile_model` (raising when the
        evaluator has no compiled form); ``False`` always runs the
        evaluator as passed.
    diagnostics:
        ``"ignore"`` (default), ``"warn"`` or ``"strict"`` — one-shot
        :mod:`repro.analyze` pre-flight over the (compiled) evaluator
        with the first assignment, run once in the parent process
        before any fan-out so every executor backend behaves
        identically.  ``"strict"`` raises
        :class:`~repro.exceptions.ModelDiagnosticError` on
        error-severity findings; ``"warn"`` emits one
        :class:`~repro.exceptions.DiagnosticWarning`.  Plain Python
        evaluators are opaque and skipped.

    Examples
    --------
    >>> result = evaluate_batch(lambda p: p["x"] ** 2, [{"x": 2.0}, {"x": 3.0}])
    >>> [float(v) for v in result.outputs]
    [4.0, 9.0]
    >>> result.stats.n_evaluated
    2
    """
    opts = resolve_options(
        options,
        n_jobs=n_jobs,
        chunk_size=chunk_size,
        executor=executor,
        cache=cache,
        progress=progress,
        policy=policy,
        tracer=tracer,
        compile=compile,
        diagnostics=diagnostics,
    )
    scope = activate_tracer(opts.tracer) if opts.tracer is not None else nullcontext()
    with scope:
        return _evaluate_batch(evaluate, assignments, opts, rng)


def _maybe_compile(evaluate: Evaluator, opts: EngineOptions, rng) -> Evaluator:
    """Substitute the compiled form of ``evaluate`` when appropriate.

    ``opts.compile`` is ``None`` (auto: compile evaluators advertising
    ``__compiles_to__``, unless an ``rng`` is in play), ``True`` (force:
    :func:`repro.compile.compile_model` raises when unsupported) or
    ``False`` (never).  Substitution is bit-preserving by construction —
    compiled evaluators replicate the uncompiled arithmetic exactly —
    so cached values and cross-executor determinism are unaffected.
    """
    mode = opts.compile
    if mode is False:
        return evaluate
    from ..compile.model import CompiledEvaluator, compile_model

    if isinstance(evaluate, CompiledEvaluator):
        return evaluate
    if mode is None:
        if rng is not None or getattr(evaluate, "__compiles_to__", None) is None:
            return evaluate
    elif rng is not None:
        raise ModelDefinitionError(
            "compile=True cannot be combined with rng: compiled evaluators "
            "are deterministic and do not take a per-task generator"
        )
    compiled = compile_model(evaluate)
    tracer = get_tracer()
    if tracer.enabled:
        tracer.metrics.counter(
            "engine.compiled_batches", evaluator=type(compiled).__name__
        ).inc()
    return compiled


def _preflight_diagnostics(
    evaluate: Evaluator,
    assignments: Sequence[Mapping[str, float]],
    mode: str,
) -> None:
    """One-shot :mod:`repro.analyze` pre-flight for the batch.

    Runs once in the parent process, before any executor fan-out, so the
    serial, thread and process backends behave identically.  Only
    structure-frozen evaluators — compiled evaluators and
    :class:`~repro.sparse.SparseCTMC` instances — expose analyzable
    structure; a plain Python callable is opaque and is skipped (after
    the mode string is validated).  The first assignment stands in for
    the sweep: frozen evaluators share one structure across all points,
    so the structural findings are batch-wide.
    """
    from ..analyze import DIAGNOSTIC_MODES, run_diagnostics

    if mode not in DIAGNOSTIC_MODES:
        raise ModelDefinitionError(
            f"diagnostics must be one of {DIAGNOSTIC_MODES}, got {mode!r}"
        )
    from ..compile.model import CompiledEvaluator
    from ..sparse.ctmc import SparseCTMC

    if not isinstance(evaluate, (CompiledEvaluator, SparseCTMC)):
        return
    params = dict(assignments[0]) if assignments else None
    run_diagnostics(evaluate, mode, params=params, where="evaluate_batch")


def _evaluate_batch(
    evaluate: Evaluator,
    assignments: Sequence[Mapping[str, float]],
    opts: EngineOptions,
    rng: Optional[np.random.Generator],
) -> BatchResult:
    assignments = list(assignments)
    n = len(assignments)
    chunk_size, cache, progress, policy = (
        opts.chunk_size,
        opts.cache,
        opts.progress,
        opts.policy,
    )
    if cache is not None and rng is not None:
        raise ModelDefinitionError(
            "cache and rng are mutually exclusive: memoization assumes a "
            "deterministic evaluator, per-task RNG spawning assumes a "
            "stochastic one"
        )
    evaluate = _maybe_compile(evaluate, opts, rng)
    if opts.diagnostics != "ignore":
        _preflight_diagnostics(evaluate, assignments, opts.diagnostics)
    ex = resolve_executor(opts.n_jobs, opts.executor)
    active = get_tracer()
    batch_span = (
        active.span("engine.batch", executor=ex.name, n_jobs=ex.n_jobs, n_tasks=n)
        if active.enabled
        else nullcontext()
    )
    with batch_span as span:
        result = _evaluate_resolved(
            evaluate, assignments, n, ex, chunk_size, cache, progress, policy, rng
        )
    if active.enabled:
        span.observe(result.stats, key="stats")
        metrics = active.metrics
        metrics.counter("engine.tasks").inc(n)
        metrics.counter("engine.evaluated").inc(result.stats.n_evaluated)
        if result.stats.cache_hits or result.stats.cache_misses:
            metrics.counter("engine.cache.hits").inc(result.stats.cache_hits)
            metrics.counter("engine.cache.misses").inc(result.stats.cache_misses)
        if result.stats.n_failed:
            metrics.counter("engine.failed").inc(result.stats.n_failed)
        if result.stats.n_retries:
            metrics.counter("engine.retries").inc(result.stats.n_retries)
        metrics.histogram("engine.eval_seconds").observe_many(result.stats.durations)
    return result


def _evaluate_resolved(
    evaluate: Evaluator,
    assignments: List[Mapping[str, float]],
    n: int,
    ex: Executor,
    chunk_size: Optional[int],
    cache: Optional[EvaluationCache],
    progress,
    policy: Optional[FaultPolicy],
    rng: Optional[np.random.Generator],
) -> BatchResult:
    start = perf_counter()

    if cache is None:
        rngs = spawn_generators(rng, n) if rng is not None else None
        values, durations, report = ex.run(
            evaluate,
            assignments,
            rngs=rngs,
            chunk_size=chunk_size,
            progress=progress,
            policy=policy,
        )
        stats = EngineStats(
            ex.name,
            ex.n_jobs,
            n,
            durations,
            perf_counter() - start,
            n_failed=report.n_failed,
            n_retries=report.n_retries,
            pool_recoveries=report.pool_recoveries,
        )
        return BatchResult(np.asarray(values, dtype=float), stats, report.errors)

    # Cache-aware path: resolve hits, dedupe within the batch, evaluate
    # only the unique misses, then fan values back out by index.
    outputs = np.empty(n)
    pending: Dict[Tuple, List[int]] = {}
    to_evaluate: List[Tuple[Tuple, Mapping[str, float]]] = []
    hits = 0
    for i, assignment in enumerate(assignments):
        key = freeze_assignment(assignment)
        found, value = cache.peek(key)
        if found:
            outputs[i] = value
            hits += 1
        elif key in pending:
            pending[key].append(i)
            hits += 1  # within-batch duplicate: served by the first evaluation
        else:
            pending[key] = [i]
            to_evaluate.append((key, assignment))
    misses = len(to_evaluate)
    cache.count_hits(hits)
    cache.count_misses(misses)

    if progress is not None and hits and not misses:
        progress(n, n)
    shifted = None
    if progress is not None and misses:
        if hits:
            progress(hits, n)

        def shifted(done, total, _hits=hits, _n=n):
            progress(_hits + done, _n)

    values, durations, report = ex.run(
        evaluate,
        [assignment for _, assignment in to_evaluate],
        chunk_size=chunk_size,
        progress=shifted,
        policy=policy,
    )
    # Failed evaluations fan their NaN out to every duplicate index but
    # are not memoized — a later batch through the same cache retries.
    failed_local = {error.index: error for error in report.errors}
    errors: List[ErrorRecord] = []
    for j, ((key, _), value) in enumerate(zip(to_evaluate, values)):
        error = failed_local.get(j)
        if error is None:
            cache.put(key, value)
        for i in pending[key]:
            outputs[i] = value
            if error is not None:
                errors.append(error.with_index(i))
    stats = EngineStats(
        ex.name,
        ex.n_jobs,
        n,
        durations,
        perf_counter() - start,
        cache_hits=hits,
        cache_misses=misses,
        n_failed=len(errors),
        n_retries=report.n_retries,
        pool_recoveries=report.pool_recoveries,
    )
    return BatchResult(outputs, stats, errors)
