"""Memoization of model evaluations.

The batch workloads this library generates — tornado swings, central
differences, fixed-point sweeps, repeated what-if analyses — re-evaluate
the same parameter assignment over and over (every tornado row anchors
the non-swung parameters at their medians; every central difference
shares the nominal point).  Re-solving a CTMC hierarchy for a point
already solved is pure waste, so :class:`EvaluationCache` memoizes
evaluator calls keyed on the *frozen* parameter assignment and counts
its own traffic so the payoff is measurable.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Mapping, Optional, Tuple

from ..exceptions import ModelDefinitionError

__all__ = ["EvaluationCache", "canonical_point_key", "freeze_assignment"]

Key = Tuple[Tuple[str, float], ...]


def canonical_point_key(assignment: Mapping[str, float]) -> Key:
    """Canonical hashable key for a parameter point.

    Name-sorted tuple of ``(name, float(value))`` pairs — insertion
    order of the mapping does not matter, so ``{"a": 1, "b": 2}`` and
    ``{"b": 2, "a": 1}`` share a cache entry.  Values are normalized
    through ``float()`` (ints, bools and numpy scalars collapse onto
    the equal float) and ``-0.0`` is canonicalized to ``0.0``, so every
    representation of the same mathematical point maps to the same key.

    This is the *single* key function for memoized parameter points:
    :class:`EvaluationCache` uses it (via its :func:`freeze_assignment`
    alias), and so does the :class:`repro.serve.ResultCache` — one
    definition, so the two can never drift.

    Examples
    --------
    >>> canonical_point_key({"b": 2, "a": 1}) == canonical_point_key({"a": 1.0, "b": 2.0})
    True
    >>> canonical_point_key({"x": -0.0}) == canonical_point_key({"x": 0.0})
    True
    """
    return tuple(sorted((str(k), float(v) + 0.0) for k, v in assignment.items()))


#: The engine cache's historical key-function name.  Deliberately a
#: module-level alias of :func:`canonical_point_key` (not a wrapper), so
#: the ``EvaluationCache`` keys and any other consumer of the canonical
#: helper are bit-identical by construction.
freeze_assignment = canonical_point_key


class EvaluationCache:
    """LRU-bounded memo table for ``assignment -> output`` evaluations.

    Parameters
    ----------
    maxsize:
        Optional entry bound; when exceeded the least-recently-used
        entry is evicted.  ``None`` (default) means unbounded.

    Attributes
    ----------
    hits / misses:
        Cumulative lookup counters across the cache's lifetime (a
        *hit* includes batch-internal deduplication — an assignment
        requested again before its first evaluation finished).

    Examples
    --------
    >>> cache = EvaluationCache()
    >>> evaluate = cache.wrap(lambda p: p["x"] ** 2)
    >>> evaluate({"x": 3.0}), evaluate({"x": 3.0})
    (9.0, 9.0)
    >>> cache.hits, cache.misses
    (1, 1)
    """

    def __init__(self, maxsize: Optional[int] = None):
        if maxsize is not None and maxsize < 1:
            raise ModelDefinitionError(f"maxsize must be >= 1 or None, got {maxsize}")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._data: "OrderedDict[Key, float]" = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, assignment: Mapping[str, float]) -> bool:
        return freeze_assignment(assignment) in self._data

    @property
    def hit_rate(self) -> float:
        """Lifetime hit fraction (0.0 before any lookup)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def peek(self, key: Key) -> Tuple[bool, float]:
        """(found, value) for a frozen key — does **not** touch counters.

        Used by the batch engine, which does its own hit/miss accounting
        (it also counts within-batch deduplication) and reports the
        totals back through :meth:`count_hits` / :meth:`count_misses`.
        """
        with self._lock:
            try:
                value = self._data[key]
            except KeyError:
                return False, float("nan")
            self._data.move_to_end(key)
            return True, value

    def put(self, key: Key, value: float) -> None:
        """Store a frozen-key entry, evicting LRU past ``maxsize``."""
        with self._lock:
            self._data[key] = float(value)
            self._data.move_to_end(key)
            if self.maxsize is not None:
                while len(self._data) > self.maxsize:
                    self._data.popitem(last=False)

    def count_hits(self, n: int) -> None:
        """Credit ``n`` hits to the lifetime counters (engine bookkeeping)."""
        with self._lock:
            self.hits += int(n)

    def count_misses(self, n: int) -> None:
        """Credit ``n`` misses to the lifetime counters (engine bookkeeping)."""
        with self._lock:
            self.misses += int(n)

    def clear(self) -> None:
        """Drop all entries (counters are kept)."""
        with self._lock:
            self._data.clear()

    def wrap(self, evaluate: Callable[[Mapping[str, float]], float]) -> Callable[[Mapping[str, float]], float]:
        """A drop-in memoized version of ``evaluate``.

        Thread-safe; the underlying evaluator runs outside the lock so
        concurrent misses on *different* assignments do not serialize.
        """

        def cached_evaluate(assignment: Mapping[str, float]) -> float:
            key = freeze_assignment(assignment)
            found, value = self.peek(key)
            if found:
                self.count_hits(1)
                return value
            self.count_misses(1)
            value = float(evaluate(assignment))
            self.put(key, value)
            return value

        return cached_evaluate

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        bound = self.maxsize if self.maxsize is not None else "inf"
        return (
            f"EvaluationCache({len(self._data)} entries, bound {bound}, "
            f"{self.hits} hits / {self.misses} misses)"
        )
