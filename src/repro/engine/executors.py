"""Execution backends for batch model evaluation.

One abstraction — :class:`Executor` — with three implementations:

* :class:`SerialExecutor` — plain loop, zero overhead, the reference;
* :class:`ThreadExecutor` — a thread pool, right when the evaluator
  releases the GIL (sparse linear algebra, native solvers) or does I/O;
* :class:`ProcessExecutor` — a *chunked* process pool, right for the
  pure-Python hot paths (BDD traversal, reachability, trajectory
  replay) where the GIL would serialize threads.

All three place results by submission index and spawn per-task random
generators deterministically from the caller's seed, so a batch is
**bit-identical across executors** for a given seed — swapping
``n_jobs=1`` for ``n_jobs=8`` is a pure performance decision, never a
numerical one.
"""

from __future__ import annotations

import concurrent.futures
import itertools
import math
import pickle
import time
from typing import Any, Callable, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import ModelDefinitionError

__all__ = [
    "Executor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "resolve_executor",
    "spawn_generators",
    "parallel_starmap",
]

Evaluator = Callable[..., float]
Progress = Callable[[int, int], None]


def spawn_generators(rng: np.random.Generator, n: int) -> List[np.random.Generator]:
    """``n`` independent child generators, deterministically derived.

    Uses ``Generator.spawn`` (NumPy >= 1.25) with a ``SeedSequence``
    fallback; for a generator seeded with a fixed value the children are
    reproducible, and child ``k`` is the same no matter how many workers
    eventually consume it — the basis of the engine's cross-executor
    determinism for stochastic evaluators.
    """
    if n < 0:
        raise ModelDefinitionError(f"cannot spawn {n} generators")
    if n == 0:
        return []
    try:
        return list(rng.spawn(n))
    except AttributeError:  # pragma: no cover - NumPy < 1.25 fallback
        children = rng.bit_generator.seed_seq.spawn(n)
        return [np.random.default_rng(child) for child in children]


def ensure_picklable(obj: Any, role: str) -> None:
    """Raise a clear :class:`ModelDefinitionError` when ``obj`` cannot cross
    a process boundary (lambdas, closures, locally defined functions)."""
    try:
        pickle.dumps(obj)
    except Exception as exc:
        raise ModelDefinitionError(
            f"{role} is not picklable ({type(exc).__name__}: {exc}); "
            f"process-based parallelism (n_jobs > 1) requires a module-level "
            f"function and picklable arguments — use a named top-level "
            f"function instead of a lambda/closure, or fall back to "
            f"n_jobs=1 or the thread executor"
        ) from exc


def default_chunk_size(n_tasks: int, n_jobs: int) -> int:
    """Heuristic chunk size: ~4 chunks per worker, at least 1 task each.

    Large enough to amortize inter-process dispatch, small enough to
    keep workers load-balanced when evaluation times vary.
    """
    if n_tasks <= 0:
        return 1
    return max(1, math.ceil(n_tasks / (4 * max(1, n_jobs))))


def _chunk_indices(n_tasks: int, chunk_size: int) -> List[range]:
    return [range(lo, min(lo + chunk_size, n_tasks)) for lo in range(0, n_tasks, chunk_size)]


def _run_chunk(
    evaluate: Evaluator,
    assignments: Sequence[Mapping[str, float]],
    rngs: Optional[Sequence[np.random.Generator]],
) -> List[Tuple[float, float]]:
    """Evaluate one chunk; ``(value, seconds)`` per task.

    Module-level so it pickles for the process pool; also the shared
    inner loop of the serial and thread backends.
    """
    results: List[Tuple[float, float]] = []
    for k, assignment in enumerate(assignments):
        start = time.perf_counter()
        if rngs is None:
            value = float(evaluate(assignment))
        else:
            value = float(evaluate(assignment, rngs[k]))
        results.append((value, time.perf_counter() - start))
    return results


class Executor:
    """Runs a batch of independent evaluations; results in input order.

    Subclasses implement :meth:`run`; construction is cheap and the
    underlying pool (if any) lives only for the duration of one batch,
    so an executor instance can be reused across batches safely.
    """

    name = "abstract"
    n_jobs = 1

    def run(
        self,
        evaluate: Evaluator,
        assignments: Sequence[Mapping[str, float]],
        rngs: Optional[Sequence[np.random.Generator]] = None,
        chunk_size: Optional[int] = None,
        progress: Optional[Progress] = None,
    ) -> Tuple[List[float], np.ndarray]:
        """``(values, durations)`` for the batch, both in input order.

        Parameters
        ----------
        evaluate:
            ``assignment -> float`` (or ``(assignment, rng) -> float``
            when ``rngs`` is given).
        assignments:
            The parameter assignments to evaluate.
        rngs:
            Optional per-task generators (same length as
            ``assignments``), for stochastic evaluators.
        chunk_size:
            Tasks per dispatch unit for pool executors; ``None`` uses
            :func:`default_chunk_size`.
        progress:
            Optional ``progress(done, total)`` callback, invoked from
            the calling process as tasks complete.
        """
        raise NotImplementedError

    def _validate(self, assignments, rngs) -> int:
        n = len(assignments)
        if rngs is not None and len(rngs) != n:
            raise ModelDefinitionError(
                f"rngs length {len(rngs)} does not match {n} assignments"
            )
        return n

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(n_jobs={self.n_jobs})"


class SerialExecutor(Executor):
    """In-process loop — the reference implementation and the default."""

    name = "serial"
    n_jobs = 1

    def run(self, evaluate, assignments, rngs=None, chunk_size=None, progress=None):
        n = self._validate(assignments, rngs)
        values: List[float] = []
        durations = np.empty(n)
        for k in range(n):
            chunk = _run_chunk(evaluate, assignments[k : k + 1], None if rngs is None else rngs[k : k + 1])
            values.append(chunk[0][0])
            durations[k] = chunk[0][1]
            if progress is not None:
                progress(k + 1, n)
        return values, durations


class _PoolExecutor(Executor):
    """Shared chunked fan-out logic for the thread and process pools."""

    def __init__(self, n_jobs: int = 2):
        if n_jobs < 1:
            raise ModelDefinitionError(f"n_jobs must be >= 1, got {n_jobs}")
        self.n_jobs = int(n_jobs)

    def _make_pool(self) -> concurrent.futures.Executor:
        raise NotImplementedError

    def _check_batch(self, evaluate, assignments, rngs) -> None:
        """Backend-specific pre-dispatch validation (pickling guard)."""

    def run(self, evaluate, assignments, rngs=None, chunk_size=None, progress=None):
        n = self._validate(assignments, rngs)
        if n == 0:
            return [], np.empty(0)
        self._check_batch(evaluate, assignments, rngs)
        size = chunk_size if chunk_size is not None else default_chunk_size(n, self.n_jobs)
        if size < 1:
            raise ModelDefinitionError(f"chunk_size must be >= 1, got {size}")
        chunks = _chunk_indices(n, size)
        values: List[Optional[float]] = [None] * n
        durations = np.empty(n)
        done = 0
        with self._make_pool() as pool:
            futures = {
                pool.submit(
                    _run_chunk,
                    evaluate,
                    [assignments[i] for i in chunk],
                    None if rngs is None else [rngs[i] for i in chunk],
                ): chunk
                for chunk in chunks
            }
            for future in concurrent.futures.as_completed(futures):
                chunk = futures[future]
                for i, (value, seconds) in zip(chunk, future.result()):
                    values[i] = value
                    durations[i] = seconds
                done += len(chunk)
                if progress is not None:
                    progress(done, n)
        return values, durations


class ThreadExecutor(_PoolExecutor):
    """Thread-pool backend — shared memory, no pickling requirements.

    Python-level evaluators stay GIL-bound (no speedup); use it when the
    evaluator spends its time in native code or I/O, or to overlap an
    expensive progress callback with evaluation.
    """

    name = "thread"

    def _make_pool(self):
        return concurrent.futures.ThreadPoolExecutor(max_workers=self.n_jobs)


class ProcessExecutor(_PoolExecutor):
    """Chunked process-pool backend — true parallelism for Python code.

    The evaluator and its assignments must pickle (checked up front with
    a clear error); chunking amortizes the per-dispatch IPC cost so even
    millisecond-scale model solves scale with cores.
    """

    name = "process"

    def _make_pool(self):
        return concurrent.futures.ProcessPoolExecutor(max_workers=self.n_jobs)

    def _check_batch(self, evaluate, assignments, rngs) -> None:
        ensure_picklable(evaluate, "the evaluator")
        if len(assignments):
            ensure_picklable(assignments[0], "the parameter assignment")


def resolve_executor(n_jobs: int = 1, executor=None) -> Executor:
    """Normalize user intent into an :class:`Executor` instance.

    ``executor`` may be an instance (returned as-is), one of the names
    ``"serial"`` / ``"thread"`` / ``"process"``, or ``None`` — in which
    case ``n_jobs`` decides: 1 is serial, more is a process pool (the
    backend that actually speeds up the library's pure-Python solvers).
    """
    if isinstance(executor, Executor):
        return executor
    if executor is None:
        if n_jobs < 1:
            raise ModelDefinitionError(f"n_jobs must be >= 1, got {n_jobs}")
        return SerialExecutor() if n_jobs == 1 else ProcessExecutor(n_jobs)
    names = {"serial": SerialExecutor, "thread": ThreadExecutor, "process": ProcessExecutor}
    try:
        cls = names[executor]
    except (KeyError, TypeError):
        raise ModelDefinitionError(
            f"unknown executor {executor!r}; use an Executor instance or one of "
            f"{sorted(names)}"
        ) from None
    return cls() if cls is SerialExecutor else cls(max(2, n_jobs))


def parallel_starmap(
    fn: Callable[..., Any],
    argtuples: Iterable[Tuple],
    n_jobs: int,
) -> List[Any]:
    """Order-preserving ``starmap`` over a process pool.

    The low-level sibling of :meth:`Executor.run` for workloads whose
    tasks are not parameter assignments (the Monte Carlo simulators map
    *trial chunks*, not parameter dicts).  ``n_jobs == 1`` degenerates
    to an in-process loop; otherwise ``fn`` and every argument tuple
    must pickle (checked up front with a clear error).
    """
    tasks = list(argtuples)
    if n_jobs < 1:
        raise ModelDefinitionError(f"n_jobs must be >= 1, got {n_jobs}")
    if n_jobs == 1 or len(tasks) <= 1:
        return [fn(*args) for args in tasks]
    ensure_picklable(fn, "the worker function")
    for args in tasks[:1]:
        ensure_picklable(args, "the worker arguments")
    with concurrent.futures.ProcessPoolExecutor(max_workers=n_jobs) as pool:
        return list(pool.map(fn, *zip(*tasks)))
