"""Execution backends for batch model evaluation.

One abstraction — :class:`Executor` — with three implementations:

* :class:`SerialExecutor` — plain loop, zero overhead, the reference;
* :class:`ThreadExecutor` — a thread pool, right when the evaluator
  releases the GIL (sparse linear algebra, native solvers) or does I/O;
* :class:`ProcessExecutor` — a *chunked* process pool, right for the
  pure-Python hot paths (BDD traversal, reachability, trajectory
  replay) where the GIL would serialize threads.

All three place results by submission index and spawn per-task random
generators deterministically from the caller's seed, so a batch is
**bit-identical across executors** for a given seed — swapping
``n_jobs=1`` for ``n_jobs=8`` is a pure performance decision, never a
numerical one.

Every backend accepts a :class:`~repro.robust.FaultPolicy` and then
isolates task faults instead of failing fast: exceptions become
``NaN`` placeholders plus :class:`~repro.robust.ErrorRecord` entries,
transient faults are retried with deterministic jittered backoff, slow
tasks are flagged against a soft wall-clock budget, and a process pool
that a dying worker takes down is recovered by re-dispatching the
unfinished chunks serially.  ``policy=None`` keeps the historical
fail-fast behaviour bit for bit.
"""

from __future__ import annotations

import concurrent.futures
import itertools
import math
import pickle
import time
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import EvaluationTimeout, ModelDefinitionError, SolverError
from ..obs.trace import get_tracer, record_span
from ..robust.policy import ErrorRecord, FaultPolicy, FaultReport

__all__ = [
    "Executor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "resolve_executor",
    "spawn_generators",
    "parallel_starmap",
]

Evaluator = Callable[..., float]
Progress = Callable[[int, int], None]


def spawn_generators(rng: np.random.Generator, n: int) -> List[np.random.Generator]:
    """``n`` independent child generators, deterministically derived.

    Uses ``Generator.spawn`` (NumPy >= 1.25) with a ``SeedSequence``
    fallback; for a generator seeded with a fixed value the children are
    reproducible, and child ``k`` is the same no matter how many workers
    eventually consume it — the basis of the engine's cross-executor
    determinism for stochastic evaluators.
    """
    if n < 0:
        raise ModelDefinitionError(f"cannot spawn {n} generators")
    if n == 0:
        return []
    try:
        return list(rng.spawn(n))
    except AttributeError:  # pragma: no cover - NumPy < 1.25 fallback
        children = rng.bit_generator.seed_seq.spawn(n)
        return [np.random.default_rng(child) for child in children]


def ensure_picklable(obj: Any, role: str) -> None:
    """Raise a clear :class:`ModelDefinitionError` when ``obj`` cannot cross
    a process boundary (lambdas, closures, locally defined functions)."""
    try:
        pickle.dumps(obj)
    except Exception as exc:
        raise ModelDefinitionError(
            f"{role} is not picklable ({type(exc).__name__}: {exc}); "
            f"process-based parallelism (n_jobs > 1) requires a module-level "
            f"function and picklable arguments — use a named top-level "
            f"function instead of a lambda/closure, or fall back to "
            f"n_jobs=1 or the thread executor"
        ) from exc


#: worker-side registry of evaluators installed by the pool initializer
_SHIPPED_EVALUATORS: Dict[str, Any] = {}

_ship_counter = itertools.count()


def _install_shipped_evaluator(key: str, payload: bytes) -> None:
    """Pool initializer: unpickle a ship-once evaluator into the worker.

    Runs exactly once per worker process, so a compiled evaluator (which
    may carry sizeable frozen structure) crosses the process boundary
    once per worker instead of once per submitted chunk.
    """
    _SHIPPED_EVALUATORS[key] = pickle.loads(payload)


class _ShippedEvaluator:
    """Lightweight stand-in submitted in place of a ship-once evaluator.

    Pickles to just its registry key; in a worker it resolves to the
    instance the pool initializer installed, in the parent (serial
    re-dispatch after a broken pool) it still holds the original.
    """

    def __init__(self, key: str, evaluate: Evaluator):
        self._key = key
        self._evaluate: Optional[Evaluator] = evaluate

    def __getstate__(self) -> Dict[str, Any]:
        return {"_key": self._key, "_evaluate": None}

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__dict__.update(state)

    def _resolve(self) -> Evaluator:
        if self._evaluate is None:
            try:
                self._evaluate = _SHIPPED_EVALUATORS[self._key]
            except KeyError:  # pragma: no cover - initializer never ran
                raise SolverError(
                    f"shipped evaluator {self._key!r} missing from the worker; "
                    "the pool initializer did not run"
                ) from None
        return self._evaluate

    def __call__(self, assignment, rng=None):
        evaluate = self._resolve()
        return evaluate(assignment) if rng is None else evaluate(assignment, rng)


def default_chunk_size(n_tasks: int, n_jobs: int) -> int:
    """Heuristic chunk size: ~4 chunks per worker, at least 1 task each.

    Large enough to amortize inter-process dispatch, small enough to
    keep workers load-balanced when evaluation times vary.
    """
    if n_tasks <= 0:
        return 1
    return max(1, math.ceil(n_tasks / (4 * max(1, n_jobs))))


def _chunk_indices(n_tasks: int, chunk_size: int) -> List[range]:
    return [range(lo, min(lo + chunk_size, n_tasks)) for lo in range(0, n_tasks, chunk_size)]


def _run_task(
    evaluate: Evaluator,
    assignment: Mapping[str, float],
    rng: Optional[np.random.Generator],
    policy: Optional[FaultPolicy],
    index: int,
) -> Tuple[float, float, Optional[ErrorRecord], int]:
    """One evaluation under the fault policy.

    Returns ``(value, seconds, error, attempts)``: *error* is ``None``
    on success and the terminal :class:`ErrorRecord` otherwise (value is
    then ``NaN``).  ``policy=None`` — and ``on_error="raise"`` — let the
    first exception propagate unchanged, preserving fail-fast semantics.
    """
    attempts = 0
    while True:
        attempts += 1
        start = time.perf_counter()
        try:
            if rng is None:
                value = float(evaluate(assignment))
            else:
                value = float(evaluate(assignment, rng))
            elapsed = time.perf_counter() - start
            if policy is not None:
                if policy.timeout is not None and elapsed > policy.timeout:
                    raise EvaluationTimeout(
                        f"evaluation took {elapsed:.3g}s, budget {policy.timeout:.3g}s"
                    )
                if policy.treat_nan_as_failure and not math.isfinite(value):
                    raise SolverError(f"evaluator returned non-finite value {value!r}")
            return value, elapsed, None, attempts
        except Exception as exc:
            elapsed = time.perf_counter() - start
            if policy is None or policy.on_error == "raise":
                raise
            if policy.should_retry(attempts):
                delay = policy.retry_delay(index, attempts)
                if delay > 0.0:
                    time.sleep(delay)
                continue
            record = ErrorRecord(
                index=int(index),
                error_type=type(exc).__name__,
                message=str(exc),
                attempts=attempts,
                duration=elapsed,
            )
            return float("nan"), elapsed, record, attempts


def _run_chunk(
    evaluate: Evaluator,
    assignments: Sequence[Mapping[str, float]],
    rngs: Optional[Sequence[np.random.Generator]],
    policy: Optional[FaultPolicy] = None,
    indices: Optional[Sequence[int]] = None,
) -> List[Tuple[float, float, Optional[ErrorRecord], int]]:
    """Evaluate one chunk; ``(value, seconds, error, attempts)`` per task.

    Module-level so it pickles for the process pool; also the shared
    inner loop of the serial and thread backends.  ``indices`` carries
    the batch-global task indices so error records and backoff jitter
    stay addressed in input order regardless of chunking.
    """
    results: List[Tuple[float, float, Optional[ErrorRecord], int]] = []
    for k, assignment in enumerate(assignments):
        results.append(
            _run_task(
                evaluate,
                assignment,
                None if rngs is None else rngs[k],
                policy,
                k if indices is None else indices[k],
            )
        )
    return results


def _run_chunk_traced(
    evaluate: Evaluator,
    assignments: Sequence[Mapping[str, float]],
    rngs: Optional[Sequence[np.random.Generator]],
    policy: Optional[FaultPolicy],
    indices: Optional[Sequence[int]],
    span_attributes: Mapping[str, Any],
):
    """:func:`_run_chunk` wrapped in the engine's trace envelope.

    Runs the chunk under a worker-local recorder tracer and returns
    ``(chunk_results, span_dict)``; any instrumented library code the
    evaluator calls (solver stages, BDD builds) nests under the chunk
    span and travels back with it.  Module-level so it pickles for the
    process pool.
    """
    return record_span(
        _run_chunk,
        (evaluate, assignments, rngs, policy, indices),
        name="engine.chunk",
        attributes=span_attributes,
    )


class Executor:
    """Runs a batch of independent evaluations; results in input order.

    Subclasses implement :meth:`run`; construction is cheap and the
    underlying pool (if any) lives only for the duration of one batch,
    so an executor instance can be reused across batches safely.
    """

    name = "abstract"
    n_jobs = 1

    def run(
        self,
        evaluate: Evaluator,
        assignments: Sequence[Mapping[str, float]],
        rngs: Optional[Sequence[np.random.Generator]] = None,
        chunk_size: Optional[int] = None,
        progress: Optional[Progress] = None,
        policy: Optional[FaultPolicy] = None,
    ) -> Tuple[List[float], np.ndarray, FaultReport]:
        """``(values, durations, report)`` for the batch, in input order.

        Parameters
        ----------
        evaluate:
            ``assignment -> float`` (or ``(assignment, rng) -> float``
            when ``rngs`` is given).
        assignments:
            The parameter assignments to evaluate.
        rngs:
            Optional per-task generators (same length as
            ``assignments``), for stochastic evaluators.
        chunk_size:
            Tasks per dispatch unit for pool executors; ``None`` uses
            :func:`default_chunk_size`.
        progress:
            Optional ``progress(done, total)`` callback, invoked from
            the calling process as tasks complete.
        policy:
            Optional :class:`~repro.robust.FaultPolicy`.  ``None`` (and
            ``on_error="raise"``) fails fast: the first evaluation error
            cancels the chunks not yet dispatched, waits for in-flight
            chunks, and re-raises the original exception.  ``"skip"`` /
            ``"retry"`` isolate the fault: the failed task yields ``NaN``
            and an :class:`~repro.robust.ErrorRecord` in the report, and
            every other task still completes.

        Returns
        -------
        ``values`` (``NaN`` at failed positions), per-task ``durations``
        (seconds), and the batch :class:`~repro.robust.FaultReport`
        (empty on a clean run).
        """
        raise NotImplementedError

    def _validate(self, assignments, rngs) -> int:
        n = len(assignments)
        if rngs is not None and len(rngs) != n:
            raise ModelDefinitionError(
                f"rngs length {len(rngs)} does not match {n} assignments"
            )
        return n

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(n_jobs={self.n_jobs})"


class SerialExecutor(Executor):
    """In-process loop — the reference implementation and the default."""

    name = "serial"
    n_jobs = 1

    def run(self, evaluate, assignments, rngs=None, chunk_size=None, progress=None, policy=None):
        n = self._validate(assignments, rngs)
        tracer = get_tracer()
        if tracer.enabled and n:
            return self._run_traced(
                tracer, evaluate, assignments, rngs, chunk_size, progress, policy
            )
        values: List[float] = []
        durations = np.empty(n)
        report = FaultReport()
        for k in range(n):
            value, seconds, error, attempts = _run_task(
                evaluate, assignments[k], None if rngs is None else rngs[k], policy, k
            )
            values.append(value)
            durations[k] = seconds
            report.record(error, attempts)
            if progress is not None:
                progress(k + 1, n)
        return values, durations, report

    def _run_traced(self, tracer, evaluate, assignments, rngs, chunk_size, progress, policy):
        """The traced serial path: the same loop, grouped into the same
        per-chunk spans the pool backends emit — so a serial trace of a
        batch is structurally identical to a pooled one (for the same
        ``chunk_size``) modulo timings."""
        n = len(assignments)
        size = chunk_size if chunk_size is not None else default_chunk_size(n, self.n_jobs)
        values: List[float] = []
        durations = np.empty(n)
        report = FaultReport()
        for ci, chunk in enumerate(_chunk_indices(n, max(1, size))):
            with tracer.span("engine.chunk", index=ci, tasks=len(chunk)):
                for k in chunk:
                    value, seconds, error, attempts = _run_task(
                        evaluate, assignments[k], None if rngs is None else rngs[k], policy, k
                    )
                    values.append(value)
                    durations[k] = seconds
                    report.record(error, attempts)
                    if progress is not None:
                        progress(k + 1, n)
        return values, durations, report


class _PoolExecutor(Executor):
    """Shared chunked fan-out logic for the thread and process pools."""

    def __init__(self, n_jobs: int = 2):
        if n_jobs < 1:
            raise ModelDefinitionError(f"n_jobs must be >= 1, got {n_jobs}")
        self.n_jobs = int(n_jobs)

    def _make_pool(self, **pool_kwargs: Any) -> concurrent.futures.Executor:
        raise NotImplementedError

    def _check_batch(self, evaluate, assignments, rngs) -> None:
        """Backend-specific pre-dispatch validation (pickling guard)."""

    def _prepare(self, evaluate: Evaluator) -> Tuple[Dict[str, Any], Evaluator]:
        """Backend hook: ``(pool kwargs, evaluator to submit)``.

        The process backend overrides this to ship ``__ship_once__``
        evaluators through a pool initializer instead of per chunk.
        """
        return {}, evaluate

    def run(self, evaluate, assignments, rngs=None, chunk_size=None, progress=None, policy=None):
        n = self._validate(assignments, rngs)
        if n == 0:
            return [], np.empty(0), FaultReport()
        self._check_batch(evaluate, assignments, rngs)
        pool_kwargs, evaluate = self._prepare(evaluate)
        size = chunk_size if chunk_size is not None else default_chunk_size(n, self.n_jobs)
        if size < 1:
            raise ModelDefinitionError(f"chunk_size must be >= 1, got {size}")
        chunks = _chunk_indices(n, size)
        values: List[Optional[float]] = [None] * n
        durations = np.empty(n)
        report = FaultReport()
        completed: set = set()
        done = 0
        tracer = get_tracer()
        traced = tracer.enabled
        # Worker-recorded chunk spans, keyed by chunk position so the
        # grafted tree is in submission order regardless of the
        # completion order `as_completed` happens to produce.
        span_dicts: Dict[int, dict] = {}
        chunk_pos = {chunk: ci for ci, chunk in enumerate(chunks)}

        def submit_args(chunk):
            args = (
                evaluate,
                [assignments[i] for i in chunk],
                None if rngs is None else [rngs[i] for i in chunk],
                policy,
                list(chunk),
            )
            if traced:
                ci = chunk_pos[chunk]
                return _run_chunk_traced, args + (
                    {"index": ci, "tasks": len(chunk)},
                )
            return _run_chunk, args

        def consume(chunk, outcome):
            nonlocal done
            if traced:
                chunk_results, span_dict = outcome
                span_dicts[chunk_pos[chunk]] = span_dict
            else:
                chunk_results = outcome
            for i, (value, seconds, error, attempts) in zip(chunk, chunk_results):
                values[i] = value
                durations[i] = seconds
                report.record(error, attempts)
            completed.add(chunk)
            done += len(chunk)
            if progress is not None:
                progress(done, n)

        broken: Optional[BaseException] = None
        with self._make_pool(**pool_kwargs) as pool:
            futures = {}
            for chunk in chunks:
                fn, args = submit_args(chunk)
                futures[pool.submit(fn, *args)] = chunk
            for future in concurrent.futures.as_completed(futures):
                chunk = futures[future]
                try:
                    outcome = future.result()
                except concurrent.futures.BrokenExecutor as exc:
                    # A worker died (segfault, os._exit, OOM kill): every
                    # outstanding future is lost.  Leave the pool; the
                    # unfinished chunks are re-dispatched serially below
                    # when the policy allows it.
                    broken = exc
                    break
                except Exception:
                    # Fail-fast path (policy None / on_error="raise"):
                    # drop the chunks not yet dispatched, let in-flight
                    # ones finish, re-raise the evaluator's exception.
                    for pending_future in futures:
                        pending_future.cancel()
                    raise
                consume(chunk, outcome)

        if broken is not None:
            if policy is None or not policy.recover_broken_pool:
                raise SolverError(
                    f"worker pool broke mid-batch ({type(broken).__name__}: {broken}); "
                    f"pass a FaultPolicy(recover_broken_pool=True) to re-dispatch the "
                    f"unfinished chunks serially"
                ) from broken
            # Evaluators routed through the engine are pure functions of
            # (assignment, rng), so chunks that finished in a worker but
            # were not yet consumed can simply be evaluated again.
            report.pool_recoveries += 1
            for chunk in chunks:
                if chunk in completed:
                    continue
                fn, args = submit_args(chunk)
                consume(chunk, fn(*args))
        if traced:
            for ci in sorted(span_dicts):
                tracer.graft(span_dicts[ci])
        return values, durations, report


class ThreadExecutor(_PoolExecutor):
    """Thread-pool backend — shared memory, no pickling requirements.

    Python-level evaluators stay GIL-bound (no speedup); use it when the
    evaluator spends its time in native code or I/O, or to overlap an
    expensive progress callback with evaluation.
    """

    name = "thread"

    def _make_pool(self, **pool_kwargs):
        return concurrent.futures.ThreadPoolExecutor(max_workers=self.n_jobs, **pool_kwargs)


class ProcessExecutor(_PoolExecutor):
    """Chunked process-pool backend — true parallelism for Python code.

    The evaluator and its assignments must pickle (checked up front with
    a clear error); chunking amortizes the per-dispatch IPC cost so even
    millisecond-scale model solves scale with cores.
    """

    name = "process"

    def _make_pool(self, **pool_kwargs):
        return concurrent.futures.ProcessPoolExecutor(max_workers=self.n_jobs, **pool_kwargs)

    def _check_batch(self, evaluate, assignments, rngs) -> None:
        ensure_picklable(evaluate, "the evaluator")
        if len(assignments):
            ensure_picklable(assignments[0], "the parameter assignment")

    def _prepare(self, evaluate: Evaluator) -> Tuple[Dict[str, Any], Evaluator]:
        """Ship ``__ship_once__`` evaluators once per worker.

        The evaluator is pickled a single time into the pool
        initializer's arguments; submitted chunks carry only a
        :class:`_ShippedEvaluator` key.  Values are unchanged — the
        worker calls the identical unpickled instance it would otherwise
        receive per chunk.
        """
        if not getattr(evaluate, "__ship_once__", False):
            return {}, evaluate
        key = f"ship-{next(_ship_counter)}"
        payload = pickle.dumps(evaluate)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.metrics.counter(
                "engine.shipped_evaluators", evaluator=type(evaluate).__name__
            ).inc()
        pool_kwargs = {
            "initializer": _install_shipped_evaluator,
            "initargs": (key, payload),
        }
        return pool_kwargs, _ShippedEvaluator(key, evaluate)


def resolve_executor(n_jobs: int = 1, executor=None) -> Executor:
    """Normalize user intent into an :class:`Executor` instance.

    ``executor`` may be an instance (returned as-is), one of the names
    ``"serial"`` / ``"thread"`` / ``"process"``, or ``None`` — in which
    case ``n_jobs`` decides: 1 is serial, more is a process pool (the
    backend that actually speeds up the library's pure-Python solvers).
    """
    if isinstance(executor, Executor):
        return executor
    if executor is None:
        if n_jobs < 1:
            raise ModelDefinitionError(f"n_jobs must be >= 1, got {n_jobs}")
        return SerialExecutor() if n_jobs == 1 else ProcessExecutor(n_jobs)
    names = {"serial": SerialExecutor, "thread": ThreadExecutor, "process": ProcessExecutor}
    try:
        cls = names[executor]
    except (KeyError, TypeError):
        raise ModelDefinitionError(
            f"unknown executor {executor!r}; use an Executor instance or one of "
            f"{sorted(names)}"
        ) from None
    if n_jobs < 1:
        raise ModelDefinitionError(f"n_jobs must be >= 1, got {n_jobs}")
    # The requested worker count is respected exactly — a named pool
    # backend with n_jobs=1 is a one-worker pool, not a silent upgrade.
    return cls() if cls is SerialExecutor else cls(n_jobs)


def parallel_starmap(
    fn: Callable[..., Any],
    argtuples: Iterable[Tuple],
    n_jobs: int,
) -> List[Any]:
    """Order-preserving ``starmap`` over a process pool.

    The low-level sibling of :meth:`Executor.run` for workloads whose
    tasks are not parameter assignments (the Monte Carlo simulators map
    *trial chunks*, not parameter dicts).  ``n_jobs == 1`` degenerates
    to an in-process loop; otherwise ``fn`` and every argument tuple
    must pickle (checked up front with a clear error).
    """
    tasks = list(argtuples)
    if n_jobs < 1:
        raise ModelDefinitionError(f"n_jobs must be >= 1, got {n_jobs}")
    if n_jobs == 1 or len(tasks) <= 1:
        return [fn(*args) for args in tasks]
    ensure_picklable(fn, "the worker function")
    for args in tasks[:1]:
        ensure_picklable(args, "the worker arguments")
    with concurrent.futures.ProcessPoolExecutor(max_workers=n_jobs) as pool:
        return list(pool.map(fn, *zip(*tasks)))
