"""Instrumentation for batch evaluation runs.

Every :func:`repro.engine.evaluate_batch` call returns an
:class:`EngineStats` alongside the outputs: per-evaluation wall times,
throughput, cache effectiveness and worker utilization.  The numbers are
what a practitioner needs to answer "is the sweep compute-bound, and is
the cache earning its keep?" before scaling a campaign up.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

__all__ = ["EngineStats", "ProgressPrinter"]


class EngineStats:
    """Timing and bookkeeping for one batch evaluation.

    Attributes
    ----------
    executor:
        Name of the executor that ran the batch (``"serial"``,
        ``"thread"``, ``"process"``).
    n_jobs:
        Worker count of that executor.
    n_tasks:
        Number of requested evaluations, including ones served from the
        cache.
    n_evaluated:
        Number of actual evaluator calls (``n_tasks`` minus cache hits).
    cache_hits / cache_misses:
        Cache traffic observed during this batch (both zero when no
        cache was supplied).
    durations:
        Per-evaluation wall time in seconds (length ``n_evaluated``),
        in submission order.
    wall_time:
        End-to-end wall time of the batch in seconds.
    n_failed / n_retries / pool_recoveries:
        Fault bookkeeping under a :class:`~repro.robust.FaultPolicy`:
        tasks that failed terminally (their outputs are ``NaN``), extra
        attempts spent on retries (recovered or not), and broken
        process pools survived by serial re-dispatch.  All zero on a
        clean batch or without a policy.
    """

    def __init__(
        self,
        executor: str,
        n_jobs: int,
        n_tasks: int,
        durations: Sequence[float],
        wall_time: float,
        cache_hits: int = 0,
        cache_misses: int = 0,
        n_failed: int = 0,
        n_retries: int = 0,
        pool_recoveries: int = 0,
    ):
        self.executor = str(executor)
        self.n_jobs = int(n_jobs)
        self.n_tasks = int(n_tasks)
        self.durations = np.asarray(durations, dtype=float)
        self.wall_time = float(wall_time)
        self.cache_hits = int(cache_hits)
        self.cache_misses = int(cache_misses)
        self.n_failed = int(n_failed)
        self.n_retries = int(n_retries)
        self.pool_recoveries = int(pool_recoveries)

    @property
    def n_evaluated(self) -> int:
        """Number of actual evaluator calls performed."""
        return int(self.durations.size)

    def throughput(self) -> float:
        """Completed tasks per second of wall time (cache hits included)."""
        if self.wall_time <= 0.0:
            return float("inf") if self.n_tasks else 0.0
        return self.n_tasks / self.wall_time

    def mean_time(self) -> float:
        """Mean per-evaluation wall time in seconds."""
        return float(self.durations.mean()) if self.durations.size else 0.0

    def percentile(self, q) -> float:
        """Percentile(s) of the per-evaluation wall times (``q`` in [0, 100])."""
        if not self.durations.size:
            return float("nan")
        result = np.percentile(self.durations, q)
        return float(result) if np.isscalar(q) else np.asarray(result)

    def cache_hit_rate(self) -> float:
        """Fraction of tasks served from the cache (0.0 without a cache)."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def completion_rate(self) -> float:
        """Fraction of tasks that produced a value (1.0 on a clean batch)."""
        if self.n_tasks <= 0:
            return 1.0
        return (self.n_tasks - self.n_failed) / self.n_tasks

    def utilization(self) -> float:
        """Fraction of worker capacity spent inside the evaluator.

        ``sum(durations) / (wall_time * n_jobs)`` — low values on a
        parallel executor mean the batch is dominated by dispatch
        overhead (use larger chunks or a cheaper executor).
        """
        if self.wall_time <= 0.0 or self.n_jobs <= 0:
            return 0.0
        return float(self.durations.sum()) / (self.wall_time * self.n_jobs)

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe dict of the run — the :class:`~repro.obs.Observation`
        archival form attached to ``engine.batch`` trace spans.

        Carries the executor identity alongside every :meth:`summary`
        number plus the raw fault counters; the per-evaluation durations
        array is summarized (not embedded) to keep span payloads small.
        """
        out: Dict[str, object] = {"executor": self.executor, "n_jobs": self.n_jobs}
        out.update(self.summary())
        out["cache_hits"] = self.cache_hits
        out["cache_misses"] = self.cache_misses
        out["pool_recoveries"] = self.pool_recoveries
        return out

    def summary(self) -> Dict[str, float]:
        """Flat dict of the headline numbers (handy for table printing)."""
        return {
            "n_tasks": float(self.n_tasks),
            "n_evaluated": float(self.n_evaluated),
            "wall_time_s": self.wall_time,
            "throughput_per_s": self.throughput(),
            "mean_eval_ms": 1e3 * self.mean_time(),
            "p95_eval_ms": 1e3 * self.percentile(95) if self.durations.size else 0.0,
            "cache_hit_rate": self.cache_hit_rate(),
            "utilization": self.utilization(),
            "n_failed": float(self.n_failed),
            "n_retries": float(self.n_retries),
            "completion_rate": self.completion_rate(),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        faults = ""
        if self.n_failed or self.n_retries or self.pool_recoveries:
            faults = (
                f", {self.n_failed} failed / {self.n_retries} retries"
                f"{f' / {self.pool_recoveries} pool recoveries' if self.pool_recoveries else ''}"
            )
        return (
            f"EngineStats({self.executor} x{self.n_jobs}: {self.n_tasks} tasks, "
            f"{self.n_evaluated} evaluated, {self.wall_time:.3g}s wall, "
            f"hit rate {self.cache_hit_rate():.1%}{faults})"
        )


class ProgressPrinter:
    """Minimal ``progress(done, total)`` callback that prints milestones.

    Prints at most ``n_reports`` evenly spaced progress lines, so a
    100k-sample sweep does not flood the terminal.

    Examples
    --------
    >>> progress = ProgressPrinter(n_reports=2, stream=None)
    >>> progress(5, 10)
    >>> progress(10, 10)
    """

    def __init__(self, n_reports: int = 10, prefix: str = "", stream="stdout"):
        self.n_reports = max(1, int(n_reports))
        self.prefix = prefix
        self._stream = stream
        self._last_milestone = 0

    def __call__(self, done: int, total: int) -> None:
        if total <= 0:
            return
        milestone = (done * self.n_reports) // total
        if milestone > self._last_milestone or done == total:
            self._last_milestone = milestone
            if self._stream is not None:  # pragma: no branch
                line = f"{self.prefix}{done}/{total} ({100.0 * done / total:.0f}%)"
                if self._stream == "stdout":
                    print(line)
                else:  # pragma: no cover - custom stream
                    self._stream.write(line + "\n")
