"""The engine's unified keyword surface: :class:`EngineOptions`.

PR 1/2 grew the same six loose keyword arguments (``n_jobs``,
``chunk_size``, ``executor``, ``cache``, ``progress``, ``policy``) on
every batch entry point, and this PR adds a seventh (``tracer``).  An
:class:`EngineOptions` instance names them once and travels as a single
``options=`` argument through :func:`~repro.engine.evaluate_batch`,
:func:`~repro.engine.run_campaign`,
:func:`~repro.core.uncertainty.propagate_uncertainty`,
:func:`~repro.core.uncertainty.tornado_sensitivity` and
:func:`~repro.core.sensitivity.parametric_sensitivity`.

The loose keywords still work everywhere and, when passed explicitly,
**override** the corresponding ``options`` field — so sharing one
options object across a study while bumping ``n_jobs`` for a single
heavy sweep reads exactly as you'd hope::

    opts = EngineOptions(cache=EvaluationCache(), policy=FaultPolicy("retry"))
    evaluate_batch(f, points, options=opts)             # serial
    evaluate_batch(f, points, options=opts, n_jobs=8)   # same cache/policy, 8 workers
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Callable, Optional

__all__ = ["EngineOptions", "resolve_options"]


@dataclass
class EngineOptions:
    """Execution options shared by every batch entry point.

    Attributes
    ----------
    n_jobs:
        Worker count; 1 runs serially, more selects a chunked process
        pool unless ``executor`` overrides the backend.
    chunk_size:
        Tasks per dispatch unit for pool backends (``None`` = ~4 chunks
        per worker).
    executor:
        ``None``, an :class:`~repro.engine.executors.Executor` instance,
        or ``"serial"`` / ``"thread"`` / ``"process"``.
    cache:
        Optional memoizing :class:`~repro.engine.EvaluationCache`.
    progress:
        Optional ``progress(done, total)`` callback.
    policy:
        Optional :class:`~repro.robust.FaultPolicy` isolating task
        faults.
    tracer:
        Optional :class:`~repro.obs.Tracer` installed as the active one
        for the duration of the call — equivalent to wrapping the call
        in ``with activate_tracer(tracer):``.  ``None`` (default) uses
        whatever tracer the ambient :func:`repro.obs.trace` block
        installed, or the no-op tracer outside any block.
    compile:
        Compiled-evaluator substitution (see :mod:`repro.compile`).
        ``None`` (default) auto-compiles evaluators that advertise a
        compiled form (``__compiles_to__``) whenever no ``rng`` is in
        play — results are bit-identical, so this is purely a
        performance decision.  ``True`` forces compilation (raising
        when the evaluator has no compiled form); ``False`` disables
        substitution entirely.
    diagnostics:
        Static-analysis mode for the evaluator (see
        :mod:`repro.analyze`): ``"ignore"`` (default) skips the lint,
        ``"warn"`` runs a one-shot pre-flight before the batch and
        reports findings as :class:`~repro.exceptions.DiagnosticWarning`,
        ``"strict"`` raises
        :class:`~repro.exceptions.ModelDiagnosticError` on any
        error-severity finding.  The pre-flight runs once in the parent
        process, so serial, thread and process executors behave
        identically.
    store:
        Optional durable :class:`~repro.store.CampaignStore` (or a path
        string opened as one).  Campaign entry points route through
        :class:`~repro.store.ResumableCampaign`, checkpointing each
        completed chunk so the sweep survives process death; see
        ``docs/DURABILITY.md``.  Non-campaign batch calls ignore it.
    resume:
        Only meaningful with ``store``.  ``None``/``True`` (default)
        reuses stored successes and re-dispatches stored failures —
        restart loses at most one in-flight chunk.  ``False`` records
        durably but evaluates every point fresh this run.
    """

    n_jobs: int = 1
    chunk_size: Optional[int] = None
    executor: Any = None
    cache: Any = None
    progress: Optional[Callable[[int, int], None]] = None
    policy: Any = None
    tracer: Any = None
    compile: Any = None
    diagnostics: str = "ignore"
    store: Any = None
    resume: Optional[bool] = None

    def replace(self, **changes: Any) -> "EngineOptions":
        """A copy with the given fields changed."""
        return dataclasses.replace(self, **changes)

    def merged(self, **overrides: Any) -> "EngineOptions":
        """A copy where every non-``None`` override wins over the field."""
        changes = {k: v for k, v in overrides.items() if v is not None}
        return dataclasses.replace(self, **changes) if changes else self


def resolve_options(options: Optional[EngineOptions] = None, **loose: Any) -> EngineOptions:
    """Fold loose keyword arguments over an optional options object.

    The merge rule of every batch entry point: start from ``options``
    (or defaults), then let each loose keyword that was explicitly
    passed (i.e. is not ``None``) override the corresponding field.
    """
    base = options if options is not None else EngineOptions()
    if not isinstance(base, EngineOptions):
        from ..exceptions import ModelDefinitionError

        raise ModelDefinitionError(
            f"options must be an EngineOptions instance, got {type(base).__name__}"
        )
    return base.merged(**loose)
