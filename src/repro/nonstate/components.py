"""Basic components for non-state-space models.

A :class:`Component` is the atomic unit of RBDs, fault trees and
reliability graphs.  It carries enough information to answer the three
questions the structural models ask of it:

* probability of being failed at mission time ``t`` (no repair) —
  drives system *reliability*;
* steady-state unavailability (failure/repair pair) — drives system
  *steady-state availability*;
* instantaneous unavailability at time ``t`` — drives *point
  availability* (closed form for the exponential/exponential case).

The statistical-independence assumption across components is what makes
these models "non-state-space": each component is summarized by a single
marginal probability, never by joint state.
"""

from __future__ import annotations


from typing import Optional

import numpy as np

from .._validation import check_positive, check_probability
from ..distributions import Exponential, LifetimeDistribution
from ..exceptions import ModelDefinitionError

__all__ = ["Component"]


class Component:
    """A named basic component / basic event.

    Exactly one of the following parameterizations must be supplied:

    * ``probability`` — a fixed, time-independent failure probability
      (classic fault-tree basic event);
    * ``failure`` — a time-to-failure distribution (reliability analysis);
    * ``failure`` and ``repair`` — both distributions (availability
      analysis; steady state uses only the means).

    Examples
    --------
    >>> from repro.distributions import Exponential
    >>> c = Component("cpu", failure=Exponential(rate=1e-4), repair=Exponential(rate=0.5))
    >>> round(c.steady_state_availability(), 6)
    0.9998
    """

    def __init__(
        self,
        name: str,
        failure: Optional[LifetimeDistribution] = None,
        repair: Optional[LifetimeDistribution] = None,
        probability: Optional[float] = None,
    ):
        if not name:
            raise ModelDefinitionError("component name must be non-empty")
        if probability is None and failure is None:
            raise ModelDefinitionError(
                f"component {name!r} needs a failure distribution or a fixed probability"
            )
        if probability is not None and failure is not None:
            raise ModelDefinitionError(
                f"component {name!r}: give either a probability or distributions, not both"
            )
        if repair is not None and failure is None:
            raise ModelDefinitionError(f"component {name!r}: repair given without failure")
        self.name = str(name)
        self.failure = failure
        self.repair = repair
        self.probability = None if probability is None else check_probability(probability)

    # --------------------------------------------------------- constructors
    @classmethod
    def from_rates(
        cls, name: str, failure_rate: float, repair_rate: Optional[float] = None
    ) -> "Component":
        """Exponential component from a failure rate and optional repair rate."""
        failure = Exponential(rate=check_positive(failure_rate, "failure_rate"))
        repair = None
        if repair_rate is not None:
            repair = Exponential(rate=check_positive(repair_rate, "repair_rate"))
        return cls(name, failure=failure, repair=repair)

    @classmethod
    def from_mttf_mttr(cls, name: str, mttf: float, mttr: Optional[float] = None) -> "Component":
        """Exponential component from MTTF (hours) and optional MTTR."""
        repair_rate = None if mttr is None else 1.0 / check_positive(mttr, "mttr")
        return cls.from_rates(name, 1.0 / check_positive(mttf, "mttf"), repair_rate)

    @classmethod
    def fixed(cls, name: str, probability: float) -> "Component":
        """Component with a fixed failure probability (basic event)."""
        return cls(name, probability=probability)

    # --------------------------------------------------------- reliability
    def reliability(self, t):
        """Probability the component has not failed by time ``t`` (no repair)."""
        if self.probability is not None:
            t = np.asarray(t, dtype=float)
            out = np.full_like(t, 1.0 - self.probability, dtype=float)
            return out if out.ndim else float(out)
        return self.failure.sf(t)

    def unreliability(self, t):
        """``1 - reliability(t)``."""
        return 1.0 - np.asarray(self.reliability(t))

    def mttf(self) -> float:
        """Mean time to failure of the component."""
        if self.failure is None:
            raise ModelDefinitionError(
                f"component {self.name!r} has a fixed probability, not a lifetime"
            )
        return self.failure.mean()

    # -------------------------------------------------------- availability
    def steady_state_availability(self) -> float:
        """``MTTF / (MTTF + MTTR)``, or ``1 - probability`` for fixed components.

        A component with a failure distribution but no repair is never
        restored, so its steady-state availability is zero.
        """
        if self.probability is not None:
            return 1.0 - self.probability
        if self.repair is None:
            return 0.0
        mttf = self.failure.mean()
        mttr = self.repair.mean()
        return mttf / (mttf + mttr)

    def steady_state_unavailability(self) -> float:
        """``1 - steady_state_availability()``."""
        return 1.0 - self.steady_state_availability()

    def availability(self, t):
        """Instantaneous availability ``A(t)``.

        Closed form for exponential failure & repair; fixed-probability
        components report the constant ``1 - probability``.  Other
        distribution pairs require state-space or simulation treatment and
        raise :class:`ModelDefinitionError`.
        """
        if self.probability is not None:
            t = np.asarray(t, dtype=float)
            out = np.full_like(t, 1.0 - self.probability, dtype=float)
            return out if out.ndim else float(out)
        if self.repair is None:
            return self.reliability(t)
        if isinstance(self.failure, Exponential) and isinstance(self.repair, Exponential):
            lam, mu = self.failure.rate, self.repair.rate
            t = np.asarray(t, dtype=float)
            out = mu / (lam + mu) + (lam / (lam + mu)) * np.exp(-(lam + mu) * t)
            return out if out.ndim else float(out)
        raise ModelDefinitionError(
            f"component {self.name!r}: instantaneous availability has a closed form only "
            "for exponential failure/repair; use an SMP or the simulator instead"
        )

    def unavailability(self, t):
        """``1 - availability(t)``."""
        return 1.0 - np.asarray(self.availability(t))

    # --------------------------------------------------------------- misc
    def failure_probability(self, t: Optional[float], measure: str = "reliability") -> float:
        """Marginal failure probability under the requested measure.

        ``measure`` is one of ``"reliability"`` (needs ``t``),
        ``"availability"`` (instantaneous, needs ``t``) or ``"steady"``.
        This is the single hook the structural models call.
        """
        if measure == "steady":
            return self.steady_state_unavailability()
        if t is None:
            raise ModelDefinitionError(f"measure {measure!r} requires a mission time")
        if measure == "reliability":
            return float(np.asarray(self.unreliability(t)))
        if measure == "availability":
            return float(np.asarray(self.unavailability(t)))
        raise ModelDefinitionError(f"unknown measure {measure!r}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = [repr(self.name)]
        if self.probability is not None:
            parts.append(f"probability={self.probability}")
        if self.failure is not None:
            parts.append(f"failure={self.failure!r}")
        if self.repair is not None:
            parts.append(f"repair={self.repair!r}")
        return f"Component({', '.join(parts)})"
