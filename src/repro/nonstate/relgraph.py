"""Reliability graphs (system S5 in DESIGN.md).

A reliability graph models the system as a directed graph whose edges are
components; the system is up while at least one source→target path
consists entirely of up edges.  Reliability graphs strictly generalize
series-parallel RBDs — the classic demonstration is the 5-component
bridge network, which no series-parallel diagram can express.

Two exact algorithms are provided:

* **BDD over minimal path sets** (production path): path sets are
  enumerated once, compiled to a BDD, and every quantification afterwards
  is linear in BDD size.  Repeated components across edges are handled
  exactly.
* **Factoring (conditioning)** on an edge component, the textbook
  algorithm: ``R = p_e R(G | e up) + (1-p_e) R(G | e down)`` — retained as
  an independent oracle and for the E04 benchmark.

Examples
--------
>>> from repro.nonstate import Component, ReliabilityGraph
>>> g = ReliabilityGraph("s", "t", directed=False)
>>> for name, (u, v) in {"e1": ("s", "a"), "e2": ("s", "b"), "e3": ("a", "t"),
...                      "e4": ("b", "t"), "e5": ("a", "b")}.items():
...     _ = g.add_edge(u, v, Component.fixed(name, 0.1))
>>> round(g.connectivity_probability({n: 0.9 for n in g.components}), 6)
0.97848
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

from ..core.model import DependabilityModel, mttf_from_reliability
from ..exceptions import ModelDefinitionError
from .bdd import BDD
from .components import Component
from .cutsets import minimize_cut_sets

__all__ = ["ReliabilityGraph"]


class ReliabilityGraph(DependabilityModel):
    """Source-to-target connectivity model over component-labelled edges.

    Parameters
    ----------
    source, target:
        Node labels of the two terminals.
    directed:
        When False (default True), each added edge is inserted in both
        directions sharing the same component.
    """

    def __init__(self, source, target, directed: bool = True):
        if source == target:
            raise ModelDefinitionError("source and target must differ")
        self.source = source
        self.target = target
        self.directed = bool(directed)
        self._graph = nx.MultiDiGraph()
        self._graph.add_node(source)
        self._graph.add_node(target)
        self._components: Dict[str, Component] = {}
        self._path_sets: Optional[List[FrozenSet[str]]] = None
        self._bdd: Optional[BDD] = None
        self._bdd_root: Optional[int] = None

    # ------------------------------------------------------------- build
    def add_edge(self, u, v, component: Component) -> "ReliabilityGraph":
        """Add an edge carried by ``component`` (shared names allowed)."""
        existing = self._components.get(component.name)
        if existing is not None and existing is not component:
            raise ModelDefinitionError(
                f"two distinct components share the name {component.name!r}"
            )
        self._components[component.name] = component
        self._graph.add_edge(u, v, component=component.name)
        if not self.directed:
            self._graph.add_edge(v, u, component=component.name)
        self._path_sets = None
        self._bdd = None
        self._bdd_root = None
        return self

    @property
    def components(self) -> Dict[str, Component]:
        """Mapping of component name to component."""
        return dict(self._components)

    # ---------------------------------------------------------- structure
    def minimal_path_sets(self) -> List[FrozenSet[str]]:
        """Minimal sets of components whose joint up-ness connects s to t."""
        if self._path_sets is None:
            raw: List[FrozenSet[str]] = []
            # Walk simple paths in the underlying simple digraph, expanding
            # parallel edges into alternative component choices.
            simple = nx.DiGraph()
            parallel: Dict[Tuple, List[str]] = {}
            for u, v, data in self._graph.edges(data=True):
                simple.add_edge(u, v)
                parallel.setdefault((u, v), []).append(data["component"])
            if self.source in simple and self.target in simple:
                for path in nx.all_simple_paths(simple, self.source, self.target):
                    hops = list(zip(path[:-1], path[1:]))
                    choices: List[FrozenSet[str]] = [frozenset()]
                    for hop in hops:
                        choices = [
                            cs | {name} for cs in choices for name in parallel[hop]
                        ]
                    raw.extend(choices)
            self._path_sets = minimize_cut_sets(raw)
        return list(self._path_sets)

    def minimal_cut_sets(self) -> List[FrozenSet[str]]:
        """Minimal sets of components whose joint failure disconnects s from t."""
        manager, node = self._ensure_bdd()
        return manager.minimal_cut_sets(manager.dual(node))

    def _ensure_bdd(self) -> "tuple[BDD, int]":
        if self._bdd is None:
            path_sets = self.minimal_path_sets()
            order = list(dict.fromkeys(name for ps in path_sets for name in ps))
            # Components on no s-t path are irrelevant but must stay known.
            for name in self._components:
                if name not in order:
                    order.append(name)
            manager = BDD(order)
            node = manager.disjoin(
                manager.conjoin(manager.var(name) for name in sorted(ps)) for ps in path_sets
            )
            self._bdd = manager
            self._bdd_root = node
        return self._bdd, self._bdd_root

    # --------------------------------------------------------- evaluation
    def connectivity_probability(self, p_up: Mapping[str, float]) -> float:
        """Probability that source and target are connected, given up probabilities."""
        manager, node = self._ensure_bdd()
        missing = [name for name in manager.support(node) if name not in p_up]
        if missing:
            raise ModelDefinitionError(f"missing up-probabilities for components: {missing}")
        return manager.prob(node, dict(p_up))

    def connectivity_by_factoring(self, p_up: Mapping[str, float]) -> float:
        """Exact connectivity probability by the factoring (conditioning) algorithm.

        Conditions on one component at a time over the relevant component
        set; exponential in the worst case but a useful independent oracle
        for the BDD path (benchmark E04 compares both).
        """
        relevant = sorted({name for ps in self.minimal_path_sets() for name in ps})
        missing = [name for name in relevant if name not in p_up]
        if missing:
            raise ModelDefinitionError(f"missing up-probabilities for components: {missing}")
        path_sets = self.minimal_path_sets()

        def solve(sets: Sequence[FrozenSet[str]], names: Sequence[str]) -> float:
            if any(not s for s in sets):
                return 1.0  # an empty path set means s-t already connected
            if not sets:
                return 0.0
            name = names[0]
            rest = names[1:]
            if not any(name in s for s in sets):
                return solve(sets, rest)
            p = float(p_up[name])
            up_sets = minimize_cut_sets([s - {name} for s in sets])
            down_sets = [s for s in sets if name not in s]
            return p * solve(up_sets, rest) + (1.0 - p) * solve(down_sets, rest)

        return solve(path_sets, relevant)

    def _component_up(self, t, measure: str) -> Dict[str, float]:
        return {
            name: 1.0 - comp.failure_probability(t, measure)
            for name, comp in self._components.items()
        }

    def reliability(self, t):
        """Probability of s-t connectivity throughout a no-repair mission of length ``t``."""
        scalar = np.isscalar(t)
        ts = np.atleast_1d(np.asarray(t, dtype=float))
        out = np.array(
            [self.connectivity_probability(self._component_up(ti, "reliability")) for ti in ts]
        )
        return float(out[0]) if scalar else out

    def availability(self, t):
        """Instantaneous availability of the s-t connection."""
        scalar = np.isscalar(t)
        ts = np.atleast_1d(np.asarray(t, dtype=float))
        out = np.array(
            [self.connectivity_probability(self._component_up(ti, "availability")) for ti in ts]
        )
        return float(out[0]) if scalar else out

    def steady_state_availability(self) -> float:
        """Steady-state availability of the s-t connection."""
        return self.connectivity_probability(self._component_up(None, "steady"))

    def mttf(self) -> float:
        """Mean time to loss of s-t connectivity (no repair)."""
        return mttf_from_reliability(lambda t: float(np.asarray(self.reliability(t))))
