"""Bounding algorithms for very large non-state-space models (system S6).

When a fault tree has too many (or too large) minimal cut sets for exact
quantification — the Boeing 787 current-return-network situation the
tutorial describes — the practical recourse is bounds:

* **Bonferroni (truncated inclusion–exclusion)** bounds, converging
  monotonically to the exact value with depth;
* **Cut-set truncation** bounds: quantify only the cut sets up to a
  probability/order threshold, then bound the contribution of everything
  discarded;
* **Esary–Proschan** min-path / min-cut bounds, cheap single products.

All bounds here are mathematically guaranteed (not heuristics) for
coherent systems with independent components.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..exceptions import ModelDefinitionError
from .cutsets import (
    minimize_cut_sets,
    rare_event_approximation,
    truncated_inclusion_exclusion,
)
from .faulttree import FaultTree

__all__ = [
    "esary_proschan_bounds",
    "truncated_cutset_bounds",
    "FaultTreeBounds",
]

CutSet = FrozenSet[str]


def esary_proschan_bounds(
    path_sets: Sequence[Iterable[str]],
    cut_sets: Sequence[Iterable[str]],
    q: Mapping[str, float],
) -> Tuple[float, float]:
    """Esary–Proschan bounds on the top-event (failure) probability.

    For a coherent system with independent components, failure
    probability ``Q`` satisfies::

        1 - Π_r (1 - Π_{i∈P_r} q_i*)   <=  Q  <=  1 - Π_j (1 - Π_{i∈K_j} q_i)

    where ``K_j`` are minimal cut sets evaluated on failure probabilities
    ``q_i`` and ``P_r`` are minimal path sets evaluated on survival
    probabilities (``q_i* = 1 - q_i`` appearing via the path product of
    reliabilities).

    Parameters
    ----------
    path_sets, cut_sets:
        Minimal path and cut sets of the structure.
    q:
        Failure probability of each component.

    Returns
    -------
    (lower, upper) bounds on the failure probability.
    """
    upper = 1.0
    for cut in cut_sets:
        prob = 1.0
        for name in cut:
            prob *= float(q[name])
        upper *= 1.0 - prob
    upper = 1.0 - upper

    lower = 1.0
    for path in path_sets:
        prob = 1.0
        for name in path:
            prob *= 1.0 - float(q[name])
        lower *= 1.0 - prob
    return lower, upper


def truncated_cutset_bounds(
    cut_sets: Sequence[Iterable[str]],
    q: Mapping[str, float],
    max_order: Optional[int] = None,
    probability_cutoff: float = 0.0,
) -> Tuple[float, float]:
    """Bounds from quantifying only the "important" cut sets.

    Cut sets are kept when their order (size) is at most ``max_order`` and
    their product probability is at least ``probability_cutoff``; the rest
    are discarded.  The kept subset is quantified exactly with the
    Esary–Proschan product (a guaranteed *upper* bound for the kept union,
    hence we use the depth-2 Bonferroni *lower* bound for the lower side)
    and the discarded mass is bounded by its rare-event sum:

    * lower bound: Bonferroni lower bound of the kept cut sets alone
      (a subset of failure modes can only under-estimate);
    * upper bound: Esary–Proschan upper bound of the kept cut sets plus
      the rare-event sum of every discarded cut set.

    This is the workhorse for "Boeing-scale" trees where the full cut-set
    family is enumerable but inclusion–exclusion over it is not.
    """
    sets = minimize_cut_sets(cut_sets)
    kept: List[CutSet] = []
    dropped: List[CutSet] = []
    for cut in sets:
        prob = 1.0
        for name in cut:
            prob *= float(q[name])
        order_ok = max_order is None or len(cut) <= max_order
        if order_ok and prob >= probability_cutoff:
            kept.append(cut)
        else:
            dropped.append(cut)

    if not kept:
        return 0.0, min(1.0, rare_event_approximation(sets, q))

    depth = 2 if len(kept) >= 2 else 1
    lower, _ = truncated_inclusion_exclusion(kept, q, depth=depth)

    kept_upper = 1.0
    for cut in kept:
        prob = 1.0
        for name in cut:
            prob *= float(q[name])
        kept_upper *= 1.0 - prob
    kept_upper = 1.0 - kept_upper

    upper = min(1.0, kept_upper + rare_event_approximation(dropped, q))
    return max(0.0, lower), upper


class FaultTreeBounds:
    """Bounding analysis bound to a concrete fault tree.

    Enumerates the minimal cut sets once (optionally capped) and exposes
    each bounding method over any probability assignment.

    Parameters
    ----------
    tree:
        A coherent fault tree.
    cut_set_limit:
        Optional cap on how many minimal cut sets to enumerate.  When the
        cap truncates enumeration the Bonferroni "bounds" are no longer
        two-sided guarantees — :attr:`truncated_enumeration` reports this.
    """

    def __init__(self, tree: FaultTree, cut_set_limit: Optional[int] = None):
        if not tree.is_coherent:
            raise ModelDefinitionError("bounding analysis requires a coherent fault tree")
        self.tree = tree
        all_sets = tree.minimal_cut_sets(limit=cut_set_limit)
        self.cut_sets: List[CutSet] = all_sets
        self.truncated_enumeration = cut_set_limit is not None and len(all_sets) >= cut_set_limit
        self._path_sets: Optional[List[CutSet]] = None

    @property
    def path_sets(self) -> List[CutSet]:
        """Minimal path sets (enumerated lazily; only needed by Esary–Proschan)."""
        if self._path_sets is None:
            self._path_sets = self.tree.minimal_path_sets()
        return list(self._path_sets)

    def _q(self, q: Optional[Mapping[str, float]]) -> Dict[str, float]:
        if q is not None:
            return dict(q)
        out: Dict[str, float] = {}
        for name, event in self.tree.basic_events.items():
            if event.component.probability is None:
                raise ModelDefinitionError(
                    f"basic event {name!r} has no fixed probability; pass q explicitly"
                )
            out[name] = event.component.probability
        return out

    def bonferroni(self, depth: int, q: Optional[Mapping[str, float]] = None) -> Tuple[float, float]:
        """Truncated inclusion–exclusion bounds at the given depth."""
        return truncated_inclusion_exclusion(self.cut_sets, self._q(q), depth)

    def esary_proschan(self, q: Optional[Mapping[str, float]] = None) -> Tuple[float, float]:
        """Min-path / min-cut product bounds."""
        return esary_proschan_bounds(self.path_sets, self.cut_sets, self._q(q))

    def truncated(
        self,
        max_order: Optional[int] = None,
        probability_cutoff: float = 0.0,
        q: Optional[Mapping[str, float]] = None,
    ) -> Tuple[float, float]:
        """Cut-set truncation bounds (see :func:`truncated_cutset_bounds`)."""
        return truncated_cutset_bounds(self.cut_sets, self._q(q), max_order, probability_cutoff)

    def rare_event(self, q: Optional[Mapping[str, float]] = None) -> float:
        """First-order (rare-event) upper bound."""
        return rare_event_approximation(self.cut_sets, self._q(q))

    def exact(self, q: Optional[Mapping[str, float]] = None) -> float:
        """Exact BDD value, for measuring bound tightness in benchmarks."""
        return self.tree.top_event_probability(self._q(q))
