"""Reduced ordered binary decision diagrams (ROBDD).

The BDD is the production engine for exact fault-tree and reliability-graph
quantification with repeated events (system S4 in DESIGN.md).  The
implementation is a classic hash-consed node store with memoized ``ite``;
probability evaluation is a single memoized bottom-up pass, so the cost of
computing top-event probability is linear in BDD size — the property that
lets non-state-space methods scale to hundreds of components.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..exceptions import ModelDefinitionError

__all__ = ["BDD", "TERMINAL_ZERO", "TERMINAL_ONE"]

#: Node id of the constant-false terminal.
TERMINAL_ZERO = 0
#: Node id of the constant-true terminal.
TERMINAL_ONE = 1


class BDD:
    """A shared ROBDD manager over a fixed variable order.

    Nodes are integers; ``0`` and ``1`` are the terminals.  Non-terminal
    node ``n`` has a level (index into the variable order), a ``low`` child
    (variable false) and a ``high`` child (variable true).

    Parameters
    ----------
    var_order:
        Variable names, outermost (root-most) first.  Quantification cost
        is highly order-sensitive; callers with structural knowledge (e.g.
        fault trees) should pass a DFS order of basic events.

    Examples
    --------
    >>> mgr = BDD(["a", "b"])
    >>> f = mgr.apply_or(mgr.var("a"), mgr.var("b"))
    >>> mgr.prob(f, {"a": 0.1, "b": 0.2})
    0.28
    """

    def __init__(self, var_order: Sequence[str]):
        if len(set(var_order)) != len(var_order):
            raise ModelDefinitionError("BDD variable order contains duplicates")
        self._order: Tuple[str, ...] = tuple(var_order)
        self._level_of: Dict[str, int] = {name: i for i, name in enumerate(self._order)}
        # node id -> (level, low, high); terminals are implicit
        self._nodes: List[Tuple[int, int, int]] = [(-1, -1, -1), (-1, -1, -1)]
        self._unique: Dict[Tuple[int, int, int], int] = {}
        self._ite_cache: Dict[Tuple[int, int, int], int] = {}

    # ------------------------------------------------------------ basics
    @property
    def var_order(self) -> Tuple[str, ...]:
        """The variable order this manager was created with."""
        return self._order

    def __len__(self) -> int:
        """Total number of allocated nodes, including the two terminals."""
        return len(self._nodes)

    def level(self, node: int) -> int:
        """Level of ``node`` (terminals report one past the last level)."""
        if node in (TERMINAL_ZERO, TERMINAL_ONE):
            return len(self._order)
        return self._nodes[node][0]

    def children(self, node: int) -> Tuple[int, int]:
        """(low, high) children of a non-terminal node."""
        level, low, high = self._nodes[node]
        if level < 0:
            raise ModelDefinitionError("terminals have no children")
        return low, high

    def var_at(self, node: int) -> str:
        """Variable name tested at a non-terminal node."""
        return self._order[self.level(node)]

    def _mk(self, level: int, low: int, high: int) -> int:
        if low == high:
            return low
        key = (level, low, high)
        found = self._unique.get(key)
        if found is not None:
            return found
        node = len(self._nodes)
        self._nodes.append(key)
        self._unique[key] = node
        return node

    def var(self, name: str) -> int:
        """BDD for the single-variable function ``name``."""
        try:
            level = self._level_of[name]
        except KeyError:
            raise ModelDefinitionError(f"unknown BDD variable: {name!r}") from None
        return self._mk(level, TERMINAL_ZERO, TERMINAL_ONE)

    def nvar(self, name: str) -> int:
        """BDD for the negated single-variable function ``not name``."""
        level = self._level_of.get(name)
        if level is None:
            raise ModelDefinitionError(f"unknown BDD variable: {name!r}")
        return self._mk(level, TERMINAL_ONE, TERMINAL_ZERO)

    # ------------------------------------------------------------ algebra
    def ite(self, f: int, g: int, h: int) -> int:
        """If-then-else: the function ``f ? g : h``.

        All boolean connectives reduce to ``ite``; results are memoized in
        a manager-wide cache.
        """
        if f == TERMINAL_ONE:
            return g
        if f == TERMINAL_ZERO:
            return h
        if g == h:
            return g
        if g == TERMINAL_ONE and h == TERMINAL_ZERO:
            return f
        key = (f, g, h)
        found = self._ite_cache.get(key)
        if found is not None:
            return found
        top = min(self.level(f), self.level(g), self.level(h))
        f0, f1 = self._cofactors(f, top)
        g0, g1 = self._cofactors(g, top)
        h0, h1 = self._cofactors(h, top)
        low = self.ite(f0, g0, h0)
        high = self.ite(f1, g1, h1)
        result = self._mk(top, low, high)
        self._ite_cache[key] = result
        return result

    def _cofactors(self, node: int, level: int) -> Tuple[int, int]:
        if self.level(node) != level:
            return node, node
        _, low, high = self._nodes[node]
        return low, high

    def apply_and(self, f: int, g: int) -> int:
        """Conjunction ``f AND g``."""
        return self.ite(f, g, TERMINAL_ZERO)

    def apply_or(self, f: int, g: int) -> int:
        """Disjunction ``f OR g``."""
        return self.ite(f, TERMINAL_ONE, g)

    def apply_xor(self, f: int, g: int) -> int:
        """Exclusive-or ``f XOR g``."""
        return self.ite(f, self.apply_not(g), g)

    def apply_not(self, f: int) -> int:
        """Negation ``NOT f``."""
        return self.ite(f, TERMINAL_ZERO, TERMINAL_ONE)

    def conjoin(self, nodes: Iterable[int]) -> int:
        """AND of an iterable of BDD nodes (1 for an empty iterable)."""
        acc = TERMINAL_ONE
        for node in nodes:
            acc = self.apply_and(acc, node)
            if acc == TERMINAL_ZERO:
                return acc
        return acc

    def disjoin(self, nodes: Iterable[int]) -> int:
        """OR of an iterable of BDD nodes (0 for an empty iterable)."""
        acc = TERMINAL_ZERO
        for node in nodes:
            acc = self.apply_or(acc, node)
            if acc == TERMINAL_ONE:
                return acc
        return acc

    def at_least_k(self, names: Sequence[str], k: int) -> int:
        """BDD for "at least ``k`` of ``names`` are true" (k-of-n gate).

        Built by dynamic programming over the counting lattice, giving a
        polynomially sized BDD rather than expanding all combinations.
        """
        n = len(names)
        if k <= 0:
            return TERMINAL_ONE
        if k > n:
            return TERMINAL_ZERO
        ordered = sorted(names, key=lambda v: self._level_of[v])
        # row[j] = BDD for "at least j of the remaining variables", built
        # from the innermost variable outwards.
        row = [TERMINAL_ONE] + [TERMINAL_ZERO] * k
        for name in reversed(ordered):
            var_node = self.var(name)
            new_row = [TERMINAL_ONE]
            for j in range(1, k + 1):
                new_row.append(self.ite(var_node, row[j - 1], row[j]))
            row = new_row
        return row[k]

    def negate_variables(self, node: int) -> int:
        """The function ``f(¬x1, ..., ¬xn)`` (every input complemented).

        Implemented by swapping low/high children throughout, which keeps
        the variable order intact.  Combined with :meth:`apply_not` this
        gives the dual structure function, the bridge between path sets
        and cut sets of coherent systems.
        """
        cache: Dict[int, int] = {TERMINAL_ZERO: TERMINAL_ZERO, TERMINAL_ONE: TERMINAL_ONE}

        def walk(n: int) -> int:
            found = cache.get(n)
            if found is not None:
                return found
            level, low, high = self._nodes[n]
            result = self._mk(level, walk(high), walk(low))
            cache[n] = result
            return result

        return walk(node)

    def dual(self, node: int) -> int:
        """Dual function ``¬f(¬x)``.

        For a coherent structure function over "component failed"
        variables, the prime implicants of the dual are the minimal path
        sets, and vice versa.
        """
        return self.apply_not(self.negate_variables(node))

    def restrict(self, node: int, name: str, value: bool) -> int:
        """Cofactor of ``node`` with variable ``name`` fixed to ``value``."""
        level = self._level_of.get(name)
        if level is None:
            raise ModelDefinitionError(f"unknown BDD variable: {name!r}")
        cache: Dict[int, int] = {}

        def walk(n: int) -> int:
            if self.level(n) > level:
                return n
            found = cache.get(n)
            if found is not None:
                return found
            lvl, low, high = self._nodes[n]
            if lvl == level:
                result = high if value else low
            else:
                result = self._mk(lvl, walk(low), walk(high))
            cache[n] = result
            return result

        return walk(node)

    # -------------------------------------------------------- evaluation
    def prob(self, node: int, probs: Mapping[str, float]) -> float:
        """Probability that the function is true.

        ``probs[name]`` is the marginal probability that variable ``name``
        is true; variables are assumed statistically independent (the
        defining assumption of non-state-space methods).
        """
        missing = [v for v in self.support(node) if v not in probs]
        if missing:
            raise ModelDefinitionError(f"missing probabilities for variables: {missing}")
        cache: Dict[int, float] = {TERMINAL_ZERO: 0.0, TERMINAL_ONE: 1.0}

        def walk(n: int) -> float:
            found = cache.get(n)
            if found is not None:
                return found
            level, low, high = self._nodes[n]
            p = float(probs[self._order[level]])
            value = (1.0 - p) * walk(low) + p * walk(high)
            cache[n] = value
            return value

        return walk(node)

    def evaluate(self, node: int, assignment: Mapping[str, bool]) -> bool:
        """Evaluate the function on a full (or sufficient) boolean assignment."""
        n = node
        while n not in (TERMINAL_ZERO, TERMINAL_ONE):
            level, low, high = self._nodes[n]
            name = self._order[level]
            if name not in assignment:
                raise ModelDefinitionError(f"assignment missing variable {name!r}")
            n = high if assignment[name] else low
        return n == TERMINAL_ONE

    def support(self, node: int) -> List[str]:
        """Variables the function actually depends on, in order."""
        seen_levels = set()
        visited = set()
        stack = [node]
        while stack:
            n = stack.pop()
            if n in (TERMINAL_ZERO, TERMINAL_ONE) or n in visited:
                continue
            visited.add(n)
            level, low, high = self._nodes[n]
            seen_levels.add(level)
            stack.append(low)
            stack.append(high)
        return [self._order[lvl] for lvl in sorted(seen_levels)]

    def count_nodes(self, node: int) -> int:
        """Number of distinct non-terminal nodes reachable from ``node``."""
        visited = set()
        stack = [node]
        while stack:
            n = stack.pop()
            if n in (TERMINAL_ZERO, TERMINAL_ONE) or n in visited:
                continue
            visited.add(n)
            _, low, high = self._nodes[n]
            stack.append(low)
            stack.append(high)
        return len(visited)

    def minimal_cut_sets(self, node: int, limit: Optional[int] = None) -> List[FrozenSet[str]]:
        """Minimal cut sets (prime implicants of a coherent function).

        Valid for *coherent* structure functions (monotone increasing in
        every variable), which covers fault trees without NOT gates.

        The computation is the classical recursive minimal-solutions
        algorithm on the BDD: at each node, the minimal sets are the
        low-branch minimal sets plus those high-branch minimal sets (with
        the node's variable added) not absorbed by a low-branch set.
        Memoization over shared nodes makes the cost output-sensitive
        rather than path-count-sensitive.

        Parameters
        ----------
        node:
            Root of the function.
        limit:
            Optional cap on the number of cut sets *returned* (smallest
            first); enumeration itself is not truncated.
        """
        cache: Dict[int, List[FrozenSet[str]]] = {
            TERMINAL_ZERO: [],
            TERMINAL_ONE: [frozenset()],
        }

        def walk(n: int) -> List[FrozenSet[str]]:
            found = cache.get(n)
            if found is not None:
                return found
            level, low, high = self._nodes[n]
            name = self._order[level]
            m_low = walk(low)
            m_high = walk(high)
            result = list(m_low)
            for cut in m_high:
                # cut ∪ {name} is minimal unless some low set already
                # covers it (low sets never contain `name`).
                if not any(s <= cut for s in m_low):
                    result.append(cut | {name})
            cache[n] = result
            return result

        sets = sorted(walk(node), key=lambda s: (len(s), sorted(s)))
        return sets[:limit] if limit is not None else sets
