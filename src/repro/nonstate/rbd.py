"""Reliability block diagrams (system S2 in DESIGN.md).

An RBD is a success-oriented structural model: the system is up when a
path of up blocks connects input to output.  Series, parallel and k-of-n
compositions cover the overwhelming majority of practical diagrams and
admit linear-time compositional evaluation; diagrams that *reuse* a
component in several blocks lose the independence between blocks and are
routed through the BDD engine automatically, which keeps the answer exact.

Examples
--------
>>> from repro.distributions import Exponential
>>> from repro.nonstate import Component, ReliabilityBlockDiagram, series, parallel
>>> a = Component.from_rates("a", failure_rate=1.0)
>>> b = Component.from_rates("b", failure_rate=1.0)
>>> rbd = ReliabilityBlockDiagram(parallel(a, b))
>>> round(rbd.reliability(1.0), 6)      # 1 - (1 - e^-1)^2
0.600424
"""

from __future__ import annotations

import abc
import itertools
from collections import Counter
from typing import Dict, List, Mapping, Optional, Sequence, Union

import numpy as np

from ..core.model import DependabilityModel, mttf_from_reliability
from ..exceptions import ModelDefinitionError
from .bdd import BDD
from .components import Component

__all__ = [
    "RBDBlock",
    "BasicBlock",
    "Series",
    "Parallel",
    "KofN",
    "series",
    "parallel",
    "k_of_n",
    "ReliabilityBlockDiagram",
]

BlockLike = Union["RBDBlock", Component]


def _as_block(value: BlockLike) -> "RBDBlock":
    if isinstance(value, RBDBlock):
        return value
    if isinstance(value, Component):
        return BasicBlock(value)
    raise ModelDefinitionError(f"expected a block or component, got {type(value).__name__}")


class RBDBlock(abc.ABC):
    """Abstract node of an RBD structure tree."""

    @abc.abstractmethod
    def up_probability(self, p_up: Mapping[str, float]) -> float:
        """System-up probability of this block given component up probabilities.

        Only valid when no component is shared between sibling subtrees;
        :class:`ReliabilityBlockDiagram` checks this and falls back to the
        BDD evaluation otherwise.
        """

    @abc.abstractmethod
    def components(self) -> List[Component]:
        """All component leaves in this subtree (with repetitions)."""

    @abc.abstractmethod
    def to_bdd(self, manager: BDD) -> int:
        """Structure function as a BDD over "component up" variables."""


class BasicBlock(RBDBlock):
    """A leaf block wrapping a single component."""

    def __init__(self, component: Component):
        self.component = component

    def up_probability(self, p_up: Mapping[str, float]) -> float:
        return float(p_up[self.component.name])

    def components(self) -> List[Component]:
        return [self.component]

    def to_bdd(self, manager: BDD) -> int:
        return manager.var(self.component.name)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BasicBlock({self.component.name!r})"


class Series(RBDBlock):
    """Series composition: up iff *every* child block is up."""

    def __init__(self, blocks: Sequence[BlockLike]):
        if not blocks:
            raise ModelDefinitionError("series block needs at least one child")
        self.blocks = [_as_block(b) for b in blocks]

    def up_probability(self, p_up: Mapping[str, float]) -> float:
        prob = 1.0
        for block in self.blocks:
            prob *= block.up_probability(p_up)
        return prob

    def components(self) -> List[Component]:
        return [c for block in self.blocks for c in block.components()]

    def to_bdd(self, manager: BDD) -> int:
        return manager.conjoin(block.to_bdd(manager) for block in self.blocks)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Series({self.blocks!r})"


class Parallel(RBDBlock):
    """Parallel composition: up iff *any* child block is up."""

    def __init__(self, blocks: Sequence[BlockLike]):
        if not blocks:
            raise ModelDefinitionError("parallel block needs at least one child")
        self.blocks = [_as_block(b) for b in blocks]

    def up_probability(self, p_up: Mapping[str, float]) -> float:
        prob_down = 1.0
        for block in self.blocks:
            prob_down *= 1.0 - block.up_probability(p_up)
        return 1.0 - prob_down

    def components(self) -> List[Component]:
        return [c for block in self.blocks for c in block.components()]

    def to_bdd(self, manager: BDD) -> int:
        return manager.disjoin(block.to_bdd(manager) for block in self.blocks)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Parallel({self.blocks!r})"


class KofN(RBDBlock):
    """k-out-of-n:G composition: up iff at least ``k`` children are up.

    Children may be heterogeneous; the evaluation uses an O(n·k) dynamic
    program over the number-up distribution rather than the exponential
    sum over subsets.
    """

    def __init__(self, k: int, blocks: Sequence[BlockLike]):
        if not blocks:
            raise ModelDefinitionError("k-of-n block needs at least one child")
        if not 1 <= k <= len(blocks):
            raise ModelDefinitionError(f"need 1 <= k <= n, got k={k}, n={len(blocks)}")
        self.k = int(k)
        self.blocks = [_as_block(b) for b in blocks]

    def up_probability(self, p_up: Mapping[str, float]) -> float:
        # dist[j] = P[j children up so far]
        dist = np.zeros(len(self.blocks) + 1)
        dist[0] = 1.0
        for i, block in enumerate(self.blocks):
            p = block.up_probability(p_up)
            upper = i + 1
            dist[1 : upper + 1] = dist[1 : upper + 1] * (1.0 - p) + dist[0:upper] * p
            dist[0] *= 1.0 - p
        return float(np.sum(dist[self.k :]))

    def components(self) -> List[Component]:
        return [c for block in self.blocks for c in block.components()]

    def to_bdd(self, manager: BDD) -> int:
        leaves_are_basic = all(isinstance(b, BasicBlock) for b in self.blocks)
        if leaves_are_basic:
            names = [b.component.name for b in self.blocks]
            if len(set(names)) == len(names):
                return manager.at_least_k(names, self.k)
        # General case: OR over all k-subsets of children being up.  Fine
        # for the small fan-ins where nested k-of-n blocks occur.
        child_nodes = [b.to_bdd(manager) for b in self.blocks]
        result = manager.disjoin(
            manager.conjoin(child_nodes[i] for i in subset)
            for subset in itertools.combinations(range(len(child_nodes)), self.k)
        )
        return result

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"KofN(k={self.k}, n={len(self.blocks)})"


def series(*blocks: BlockLike) -> Series:
    """Convenience constructor: ``series(a, b, c)``."""
    return Series(list(blocks))


def parallel(*blocks: BlockLike) -> Parallel:
    """Convenience constructor: ``parallel(a, b, c)``."""
    return Parallel(list(blocks))


def k_of_n(k: int, *blocks: BlockLike) -> KofN:
    """Convenience constructor: ``k_of_n(2, a, b, c)`` for a 2-of-3 block."""
    return KofN(k, list(blocks))


class ReliabilityBlockDiagram(DependabilityModel):
    """A complete RBD model over a structure tree of blocks.

    Shared components (same :class:`Component` name appearing in several
    leaves) are detected at construction; such diagrams are evaluated
    exactly through the BDD engine instead of the compositional product
    rules, which would otherwise double-count.

    Parameters
    ----------
    root:
        Root block of the structure tree (or a bare component).
    """

    def __init__(self, root: BlockLike):
        self.root = _as_block(root)
        comps = self.root.components()
        by_name: Dict[str, Component] = {}
        for comp in comps:
            existing = by_name.get(comp.name)
            if existing is not None and existing is not comp:
                raise ModelDefinitionError(
                    f"two distinct Component objects share the name {comp.name!r}"
                )
            by_name[comp.name] = comp
        self._components = by_name
        counts = Counter(c.name for c in comps)
        self._has_repeats = any(n > 1 for n in counts.values())
        self._bdd: Optional[BDD] = None
        self._bdd_root: Optional[int] = None

    # ------------------------------------------------------------- access
    @property
    def components(self) -> Dict[str, Component]:
        """Mapping of component name to component."""
        return dict(self._components)

    @property
    def has_repeated_components(self) -> bool:
        """True when some component appears in more than one leaf."""
        return self._has_repeats

    def _ensure_bdd(self) -> "tuple[BDD, int]":
        if self._bdd is None:
            order = list(dict.fromkeys(c.name for c in self.root.components()))
            self._bdd = BDD(order)
            self._bdd_root = self.root.to_bdd(self._bdd)
        return self._bdd, self._bdd_root

    # --------------------------------------------------------- evaluation
    def system_up_probability(self, p_up: Mapping[str, float]) -> float:
        """Probability the system is up given each component's up probability."""
        missing = [name for name in self._components if name not in p_up]
        if missing:
            raise ModelDefinitionError(f"missing up-probabilities for components: {missing}")
        if self._has_repeats:
            manager, node = self._ensure_bdd()
            return manager.prob(node, {name: float(p_up[name]) for name in self._components})
        return self.root.up_probability(p_up)

    def _component_up(self, t, measure: str) -> Dict[str, float]:
        return {
            name: 1.0 - comp.failure_probability(t, measure)
            for name, comp in self._components.items()
        }

    def reliability(self, t):
        """System reliability at mission time(s) ``t``."""
        scalar = np.isscalar(t)
        ts = np.atleast_1d(np.asarray(t, dtype=float))
        out = np.array(
            [self.system_up_probability(self._component_up(ti, "reliability")) for ti in ts]
        )
        return float(out[0]) if scalar else out

    def availability(self, t):
        """Instantaneous system availability at time(s) ``t``."""
        scalar = np.isscalar(t)
        ts = np.atleast_1d(np.asarray(t, dtype=float))
        out = np.array(
            [self.system_up_probability(self._component_up(ti, "availability")) for ti in ts]
        )
        return float(out[0]) if scalar else out

    def steady_state_availability(self) -> float:
        """Steady-state system availability from component MTTF/MTTR pairs."""
        return self.system_up_probability(self._component_up(None, "steady"))

    def mttf(self) -> float:
        """System mean time to failure, ``∫ R(t) dt``."""
        return mttf_from_reliability(lambda t: float(np.asarray(self.reliability(t))))

    # ---------------------------------------------------------- structure
    def minimal_path_sets(self) -> List[frozenset]:
        """Minimal path sets (minimal sets of components whose up-ness suffices)."""
        manager, node = self._ensure_bdd()
        return manager.minimal_cut_sets(node)

    def minimal_cut_sets(self) -> List[frozenset]:
        """Minimal cut sets (minimal sets of components whose failure downs the system).

        Uses the dual structure function so the extracted literals are the
        *down* components, not the up ones.
        """
        manager, node = self._ensure_bdd()
        return manager.minimal_cut_sets(manager.dual(node))
