"""Common-cause failures: the beta-factor model (system S3 extension).

Redundancy math collapses when the replicas can fail *together* — a
shared power feed, a bad firmware push, a cooling loss.  The standard
engineering treatment is the **beta-factor model**: a fraction ``β`` of
each component's failure rate is attributed to a common cause that takes
out the whole group at once.

This module rewrites a redundant group of components into the equivalent
independent structure: each component keeps an *independent* failure
mode at rate ``(1-β)λ``, and one extra *common-cause* basic event at
rate ``βλ`` is OR-ed above the group.  The transformation works on both
fixed-probability and rate-based components, so it composes with every
non-state-space model in the library.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from .._validation import check_probability
from ..distributions import Exponential
from ..exceptions import ModelDefinitionError
from .components import Component
from .faulttree import AndGate, BasicEvent, FTNode, KofNGate, OrGate

__all__ = ["beta_factor_split", "redundant_group_with_ccf"]


def beta_factor_split(
    component: Component, beta: float, ccf_name: Optional[str] = None
) -> Tuple[Component, Component]:
    """Split a component into (independent part, common-cause part).

    Parameters
    ----------
    component:
        An exponential-rate or fixed-probability component.
    beta:
        Fraction of the failure intensity attributed to the common cause
        (0 <= β <= 1; β = 0.05–0.1 is the usual assumption for similar
        redundant hardware).
    ccf_name:
        Name of the generated common-cause component (defaults to
        ``"<name>_ccf"``).

    Returns
    -------
    ``(independent, common)`` components.  For rate-based components the
    rates split as ``(1-β)λ`` / ``βλ`` (repair carried over); for
    fixed-probability components the unreliability splits as
    ``1-(1-q)^(1-β)`` / ``1-(1-q)^β`` so the series combination restores
    the original probability exactly.
    """
    beta = check_probability(beta, "beta")
    name = ccf_name or f"{component.name}_ccf"
    if component.probability is not None:
        q = component.probability
        independent = Component.fixed(component.name, 1.0 - (1.0 - q) ** (1.0 - beta))
        common = Component.fixed(name, 1.0 - (1.0 - q) ** beta)
        return independent, common
    if not isinstance(component.failure, Exponential):
        raise ModelDefinitionError(
            "beta-factor split needs exponential failures or fixed probabilities"
        )
    lam = component.failure.rate
    if beta < 1.0:
        independent = Component(
            component.name,
            failure=Exponential((1.0 - beta) * lam),
            repair=component.repair,
        )
    else:
        independent = Component(component.name, probability=0.0)
    if beta > 0.0:
        common = Component(
            name, failure=Exponential(beta * lam), repair=component.repair
        )
    else:
        common = Component(name, probability=0.0)
    return independent, common


def redundant_group_with_ccf(
    components: Sequence[Component],
    k_failures_to_fail: int,
    beta: float,
    ccf_name: str = "common_cause",
) -> FTNode:
    """Fault-tree node for a redundant group under the beta-factor model.

    The group fails when ``k_failures_to_fail`` of its members fail
    independently **or** the common-cause event occurs.

    Parameters
    ----------
    components:
        The redundant members (exponential or fixed-probability, all with
        the same parameters in the classical model; heterogeneous members
        are allowed and each is split with the same β).
    k_failures_to_fail:
        Number of member failures that down the group (e.g. 2 for a
        1-out-of-2 redundant pair).
    beta:
        Common-cause fraction.
    ccf_name:
        Basic-event name of the common cause.  The common-cause rate is
        taken from the *first* member's split (the classical model assumes
        identical members).

    Returns
    -------
    A fault-tree node: ``OR(KofN(k, independents), ccf_event)``.

    Examples
    --------
    >>> from repro.nonstate import Component, FaultTree
    >>> pair = [Component.fixed("a", 0.01), Component.fixed("b", 0.01)]
    >>> node = redundant_group_with_ccf(pair, k_failures_to_fail=2, beta=0.1)
    >>> tree = FaultTree(node)
    >>> tree.top_event_probability() > 0.01 * 0.01   # CCF dominates q^2
    True
    """
    if not components:
        raise ModelDefinitionError("redundant group must not be empty")
    if not 1 <= k_failures_to_fail <= len(components):
        raise ModelDefinitionError(
            f"need 1 <= k <= {len(components)}, got {k_failures_to_fail}"
        )
    beta = check_probability(beta, "beta")

    independents: List[BasicEvent] = []
    common_component: Optional[Component] = None
    for idx, comp in enumerate(components):
        indep, common = beta_factor_split(comp, beta, ccf_name=ccf_name)
        independents.append(BasicEvent(indep))
        if idx == 0:
            common_component = common

    if k_failures_to_fail == len(components):
        group: FTNode = AndGate(independents)
    elif k_failures_to_fail == 1:
        group = OrGate(independents)
    else:
        group = KofNGate(k_failures_to_fail, independents)

    if beta == 0.0:
        return group
    return OrGate([group, BasicEvent(common_component)])
