"""Phased-mission system analysis (Zang–Sun–Trivedi BDD method).

A phased mission — launch / cruise / descent, or backup / verify /
restore — changes its *success criterion* between phases while the same
components age across all of them.  Independence across phases does NOT
hold (a component failed in phase 1 stays failed), so multiplying
per-phase reliabilities is wrong; the tutorial's correct method encodes
"component c is up at the end of phase i" as a BDD variable and
evaluates the conjunction of all phase structure functions with
*conditional* probabilities along each component's timeline.

Assumptions (the classical setting): components do not repair during the
mission, structure functions are coherent, and component lifetimes are
independent with arbitrary distributions.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from .._validation import check_positive
from ..exceptions import ModelDefinitionError
from .bdd import BDD, TERMINAL_ONE, TERMINAL_ZERO
from .components import Component

__all__ = ["MissionPhase", "PhasedMission"]

#: a phase structure function: maps {component name: up?} to system-up
StructureFunction = Callable[[Mapping[str, bool]], bool]


class PhaseVariables:
    """Variable accessor handed to phase structure builders.

    Callable — ``v("pump")`` returns the BDD variable "pump up in this
    phase" — and provides :meth:`at_least_k` for k-of-n structures over
    component names.
    """

    def __init__(self, manager: BDD, components, suffix: str):
        self._manager = manager
        self._components = components
        self._suffix = suffix

    def __call__(self, name: str) -> int:
        if name not in self._components:
            raise ModelDefinitionError(f"unknown component {name!r}")
        return self._manager.var(f"{name}@{self._suffix}")

    def at_least_k(self, names: Sequence[str], k: int) -> int:
        """BDD for "at least k of these components up in this phase"."""
        unknown = [n for n in names if n not in self._components]
        if unknown:
            raise ModelDefinitionError(f"unknown components {unknown!r}")
        return self._manager.at_least_k([f"{n}@{self._suffix}" for n in names], k)


class MissionPhase:
    """One phase: a duration plus the success structure for that phase.

    Parameters
    ----------
    name:
        Phase label.
    duration:
        Phase length (same time unit as the component lifetimes).
    build_structure:
        Callable receiving ``(bdd, var_of)`` where ``var_of(name)``
        returns the BDD variable "component up *throughout this phase*";
        must return the BDD node of the phase's success function.
    """

    def __init__(self, name: str, duration: float, build_structure):
        self.name = str(name)
        self.duration = check_positive(duration, "duration")
        self.build_structure = build_structure


class PhasedMission:
    """Mission reliability of a multi-phase system over shared components.

    Examples
    --------
    A two-phase mission where phase 1 needs both units and phase 2
    tolerates one failure::

        >>> from repro.nonstate import Component
        >>> comps = [Component.from_rates("a", 0.1), Component.from_rates("b", 0.1)]
        >>> mission = PhasedMission(comps)
        >>> _ = mission.add_phase("strict", 1.0,
        ...     lambda bdd, v: bdd.apply_and(v("a"), v("b")))
        >>> _ = mission.add_phase("lenient", 2.0,
        ...     lambda bdd, v: bdd.apply_or(v("a"), v("b")))
        >>> 0.0 < mission.reliability() < 1.0
        True
    """

    def __init__(self, components: Sequence[Component]):
        if not components:
            raise ModelDefinitionError("a phased mission needs at least one component")
        names = [c.name for c in components]
        if len(set(names)) != len(names):
            raise ModelDefinitionError("duplicate component names")
        for comp in components:
            if comp.failure is None:
                raise ModelDefinitionError(
                    f"component {comp.name!r} needs a lifetime distribution"
                )
        self.components = {c.name: c for c in components}
        self.phases: List[MissionPhase] = []

    def add_phase(self, name: str, duration: float, build_structure) -> "PhasedMission":
        """Append a phase (executed in insertion order)."""
        self.phases.append(MissionPhase(name, duration, build_structure))
        return self

    # ------------------------------------------------------------ analysis
    def _phase_end_times(self) -> List[float]:
        times = []
        total = 0.0
        for phase in self.phases:
            total += phase.duration
            times.append(total)
        return times

    def _build_mission_bdd(self) -> Tuple[BDD, int, Dict[str, Tuple[str, int]]]:
        """Mission BDD over variables "component c up at end of phase i".

        Variable order groups all phases of a component consecutively
        (earliest phase outermost), which is what the conditional
        evaluation requires.
        """
        n_phases = len(self.phases)
        order: List[str] = []
        meta: Dict[str, Tuple[str, int]] = {}
        for comp in self.components:
            for i in range(n_phases):
                var = f"{comp}@{i}"
                order.append(var)
                meta[var] = (comp, i)
        manager = BDD(order)

        mission = TERMINAL_ONE
        for i, phase in enumerate(self.phases):
            variables = PhaseVariables(manager, self.components, str(i))
            node = phase.build_structure(manager, variables)
            mission = manager.apply_and(mission, node)
        return manager, mission, meta

    def reliability(self) -> float:
        """Probability the mission succeeds through every phase.

        Evaluates the mission BDD with chain-conditional probabilities:
        for component ``c`` with survival function ``R_c``,
        ``P[up at T_i | up at T_{i-1}] = R_c(T_i) / R_c(T_{i-1})`` and a
        component observed down stays down.
        """
        if not self.phases:
            raise ModelDefinitionError("add at least one phase first")
        manager, mission, meta = self._build_mission_bdd()
        end_times = self._phase_end_times()
        n_phases = len(self.phases)

        survival: Dict[Tuple[str, int], float] = {}
        for name, comp in self.components.items():
            for i, t in enumerate(end_times):
                survival[(name, i)] = float(np.asarray(comp.reliability(t)))

        def conditional_up(name: str, phase: int, last_up_phase: int) -> float:
            """P[c up at end of `phase` | c up at end of `last_up_phase`]."""
            numerator = survival[(name, phase)]
            if last_up_phase < 0:
                return numerator
            denominator = survival[(name, last_up_phase)]
            if denominator <= 0.0:
                return 0.0
            return numerator / denominator

        # Memoized walk.  Context = (component, last phase seen for it,
        # and whether it was up); entering a different component resets
        # the context.  Skipped variables of a *different* component
        # marginalize to 1 (the function does not depend on them); a
        # skipped variable of the same component needs no handling beyond
        # the conditional survival ratio, which telescopes.
        cache: Dict[Tuple[int, Optional[str], int, bool], float] = {}

        def walk(node: int, ctx_comp: Optional[str], ctx_phase: int, ctx_up: bool) -> float:
            if node == TERMINAL_ONE:
                return 1.0
            if node == TERMINAL_ZERO:
                return 0.0
            var = manager.var_at(node)
            comp, phase = meta[var]
            if comp != ctx_comp:
                ctx_comp, ctx_phase, ctx_up = comp, -1, True
            key = (node, ctx_comp, ctx_phase, ctx_up)
            found = cache.get(key)
            if found is not None:
                return found
            low, high = manager.children(node)
            if not ctx_up:
                # Component already observed down: it stays down.
                value = walk(low, comp, phase, False)
            else:
                p_up = conditional_up(comp, phase, ctx_phase)
                value = p_up * walk(high, comp, phase, True) + (1.0 - p_up) * walk(
                    low, comp, phase, False
                )
            cache[key] = value
            return value

        return walk(mission, None, -1, True)

    def naive_product_reliability(self) -> float:
        """The *wrong* answer: per-phase reliabilities multiplied.

        Treats phases as independent missions with fresh components aged
        only by their own phase — kept as the comparison baseline the
        tutorial warns about (benchmark E26).
        """
        if not self.phases:
            raise ModelDefinitionError("add at least one phase first")
        product = 1.0
        for phase in self.phases:
            manager = BDD([f"{name}@0" for name in self.components])
            node = phase.build_structure(
                manager, PhaseVariables(manager, self.components, "0")
            )
            probs = {
                f"{name}@0": float(np.asarray(comp.reliability(phase.duration)))
                for name, comp in self.components.items()
            }
            product *= manager.prob(node, probs)
        return product

    def brute_force_reliability(self, n_grid: int = 0) -> float:
        """Exact oracle by enumerating each component's failure phase.

        Exponential in the number of components — testing only.
        """
        import itertools

        if not self.phases:
            raise ModelDefinitionError("add at least one phase first")
        end_times = self._phase_end_times()
        n_phases = len(self.phases)
        names = list(self.components)

        # P[component fails during phase j] (j == n_phases means survives).
        fail_phase_probs: Dict[str, List[float]] = {}
        for name, comp in self.components.items():
            probs = []
            prev = 1.0
            for t in end_times:
                current = float(np.asarray(comp.reliability(t)))
                probs.append(prev - current)
                prev = current
            probs.append(prev)
            fail_phase_probs[name] = probs

        manager, mission, meta = self._build_mission_bdd()
        total = 0.0
        for assignment in itertools.product(range(n_phases + 1), repeat=len(names)):
            prob = 1.0
            values: Dict[str, bool] = {}
            for name, fail_phase in zip(names, assignment):
                prob *= fail_phase_probs[name][fail_phase]
                for i in range(n_phases):
                    values[f"{name}@{i}"] = i < fail_phase
            if prob > 0.0 and manager.evaluate(mission, values):
                total += prob
        return total
