"""Fault-tree modularization (Dutuit–Rauzy style module detection).

A *module* is a gate whose basic events appear nowhere else in the tree:
it interacts with the rest only through its own top value, so it can be
quantified in isolation and replaced by a single pseudo-event.  This is
the classical divide-and-conquer step of fault-tree tools — it bounds
BDD sizes by the largest module instead of the whole tree, and the
module structure itself is diagnostic information (which subsystems are
actually independent).

The detector uses the occurrence-counting characterization: a gate ``G``
is a module iff every basic event below ``G`` occurs *only* below ``G``.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Mapping, Optional, Tuple

from ..exceptions import ModelDefinitionError
from .faulttree import BasicEvent, FaultTree, FTNode, NotGate

__all__ = ["find_modules", "modular_top_probability"]


def _event_counts(node: FTNode) -> Counter:
    return Counter(e.name for e in node.basic_events())


def find_modules(tree: FaultTree) -> List[Tuple[FTNode, frozenset]]:
    """All proper modules of a coherent fault tree.

    Returns ``(gate, event_names)`` pairs, outermost (largest) first.
    The top node itself is excluded (it is trivially a module), as are
    basic events (trivial singleton modules unless repeated).

    Examples
    --------
    >>> from repro.nonstate import AndGate, BasicEvent, FaultTree, OrGate
    >>> a, b, c = (BasicEvent.fixed(n, 0.1) for n in "abc")
    >>> sub = AndGate([a, b])
    >>> tree = FaultTree(OrGate([sub, c]))
    >>> [sorted(events) for _gate, events in find_modules(tree)]
    [['a', 'b']]
    """
    if not tree.is_coherent:
        raise ModelDefinitionError("modularization requires a coherent tree")
    total = _event_counts(tree.top)
    modules: List[Tuple[FTNode, frozenset]] = []

    def visit(node: FTNode, is_top: bool) -> None:
        children = getattr(node, "children", None)
        if children is None:
            child = getattr(node, "child", None)
            children = [child] if child is not None else []
        for child in children:
            if isinstance(child, BasicEvent):
                continue
            counts = _event_counts(child)
            if all(counts[name] == total[name] for name in counts):
                modules.append((child, frozenset(counts)))
                # Still recurse: nested modules are reported too.
            visit(child, False)

    visit(tree.top, True)
    modules.sort(key=lambda pair: -len(pair[1]))
    return modules


def modular_top_probability(
    tree: FaultTree, q: Optional[Mapping[str, float]] = None
) -> Tuple[float, Dict[str, float]]:
    """Top-event probability by quantifying maximal modules separately.

    Each maximal module is quantified with its own (small) BDD and
    replaced by a pseudo-event carrying the module's probability; the
    residual tree is then quantified over pseudo-events and the
    remaining basic events.  For a coherent tree with independent
    components the result equals the direct BDD answer exactly — the
    benefit is that no single BDD ever spans more than the largest
    module.

    Returns
    -------
    ``(top_probability, module_probabilities)`` where the dict maps a
    synthetic module name (``"module0"``, ...) to its probability.

    Examples
    --------
    >>> from repro.nonstate import AndGate, BasicEvent, FaultTree, OrGate
    >>> a, b, c = (BasicEvent.fixed(n, 0.1) for n in "abc")
    >>> tree = FaultTree(OrGate([AndGate([a, b]), c]))
    >>> prob, mods = modular_top_probability(tree)
    >>> round(prob, 6) == round(tree.top_event_probability(), 6)
    True
    """
    if q is None:
        q = {}
        for name, event in tree.basic_events.items():
            if event.component.probability is None:
                raise ModelDefinitionError(
                    f"basic event {name!r} has no fixed probability; pass q explicitly"
                )
            q[name] = event.component.probability

    modules = find_modules(tree)
    # Keep only maximal, pairwise-disjoint modules.
    chosen: List[Tuple[FTNode, frozenset]] = []
    covered: set = set()
    for gate, events in modules:
        if events & covered:
            continue
        chosen.append((gate, events))
        covered |= events

    module_probs: Dict[str, float] = {}
    replacements: Dict[int, str] = {}
    for idx, (gate, _events) in enumerate(chosen):
        name = f"module{idx}"
        sub_tree = FaultTree(gate)
        module_probs[name] = sub_tree.top_event_probability(
            {k: float(q[k]) for k in sub_tree.basic_events}
        )
        replacements[id(gate)] = name

    def rebuild(node: FTNode) -> FTNode:
        replacement = replacements.get(id(node))
        if replacement is not None:
            return BasicEvent.fixed(replacement, module_probs[replacement])
        if isinstance(node, BasicEvent):
            return node
        if isinstance(node, NotGate):
            return NotGate(rebuild(node.child))
        clone = object.__new__(type(node))
        clone.__dict__.update(node.__dict__)
        clone.children = [rebuild(child) for child in node.children]
        return clone

    residual = FaultTree(rebuild(tree.top))
    residual_q = {**{k: float(v) for k, v in q.items()}, **module_probs}
    top = residual.top_event_probability(
        {name: residual_q[name] for name in residual.basic_events}
    )
    return top, module_probs
