"""Cut-set algebra: minimization, inclusion–exclusion, disjoint products.

These are the classical quantification routines that predate BDDs.  The
library keeps them for three reasons: they are the vocabulary of the
bounding algorithms (truncated inclusion–exclusion is exactly the Boeing
787 technique), the sum-of-disjoint-products (SDP) form is a useful exact
cross-check of the BDD engine, and the rare-event approximation is what
practitioners quote.
"""

from __future__ import annotations

import itertools
from typing import FrozenSet, Iterable, List, Mapping, Sequence, Tuple

from ..exceptions import ModelDefinitionError
from ..obs.trace import get_tracer

__all__ = [
    "minimize_cut_sets",
    "inclusion_exclusion",
    "truncated_inclusion_exclusion",
    "rare_event_approximation",
    "min_cut_upper_bound",
    "sum_of_disjoint_products",
    "disjoint_products_probability",
]

CutSet = FrozenSet[str]


def minimize_cut_sets(cut_sets: Iterable[Iterable[str]]) -> List[CutSet]:
    """Remove non-minimal (absorbed) cut sets.

    A cut set is absorbed when some other cut set is a subset of it.
    Returns cut sets sorted by (size, lexicographic) for determinism.
    """
    frozen = sorted({frozenset(cs) for cs in cut_sets}, key=len)
    minimal: List[CutSet] = []
    for cs in frozen:
        if not cs:
            return [frozenset()]
        if not any(existing <= cs for existing in minimal):
            minimal.append(cs)
    return sorted(minimal, key=lambda s: (len(s), sorted(s)))


def _cut_probability(cut: CutSet, q: Mapping[str, float]) -> float:
    prob = 1.0
    for event in cut:
        prob *= float(q[event])
    return prob


def _check_events(cut_sets: Sequence[CutSet], q: Mapping[str, float]) -> None:
    missing = sorted({e for cs in cut_sets for e in cs if e not in q})
    if missing:
        raise ModelDefinitionError(f"missing event probabilities: {missing}")


def inclusion_exclusion(cut_sets: Sequence[Iterable[str]], q: Mapping[str, float]) -> float:
    """Exact top-event probability by full inclusion–exclusion.

    Exponential in the number of cut sets — usable only as a small-model
    oracle (the point the tutorial makes before introducing SDP/BDD).
    """
    sets = [frozenset(cs) for cs in cut_sets]
    _check_events(sets, q)
    total = 0.0
    for r in range(1, len(sets) + 1):
        sign = 1.0 if r % 2 == 1 else -1.0
        for combo in itertools.combinations(sets, r):
            union: CutSet = frozenset().union(*combo)
            total += sign * _cut_probability(union, q)
    return total


def truncated_inclusion_exclusion(
    cut_sets: Sequence[Iterable[str]], q: Mapping[str, float], depth: int
) -> Tuple[float, float]:
    """Bonferroni bounds from inclusion–exclusion truncated at ``depth`` terms.

    Returns ``(lower, upper)``.  Odd partial sums over-estimate and even
    partial sums under-estimate, so truncating after an odd/even number of
    levels yields an upper/lower bound respectively; both converge to the
    exact value as ``depth`` grows.  This is the bounding technique used
    for the Boeing 787 subsystem model.

    Parameters
    ----------
    depth:
        Number of inclusion–exclusion levels to evaluate (>= 1).
    """
    sets = [frozenset(cs) for cs in cut_sets]
    _check_events(sets, q)
    if depth < 1:
        raise ModelDefinitionError(f"depth must be >= 1, got {depth}")
    depth = min(depth, len(sets))
    partial = 0.0
    upper = 1.0
    lower = 0.0
    for r in range(1, depth + 1):
        sign = 1.0 if r % 2 == 1 else -1.0
        level = 0.0
        for combo in itertools.combinations(sets, r):
            union: CutSet = frozenset().union(*combo)
            level += _cut_probability(union, q)
        partial += sign * level
        if r % 2 == 1:
            upper = min(upper, partial)
        else:
            lower = max(lower, partial)
    if depth == len(sets):
        # Exact: collapse the bracket.
        lower = upper = partial
    lower = max(lower, 0.0)
    upper = min(upper, 1.0)
    return lower, upper


def rare_event_approximation(cut_sets: Sequence[Iterable[str]], q: Mapping[str, float]) -> float:
    """First-order approximation: sum of cut-set probabilities.

    Coincides with the depth-1 Bonferroni upper bound; accurate when all
    event probabilities are small (the "rare event" regime of high-
    reliability systems).
    """
    sets = [frozenset(cs) for cs in cut_sets]
    _check_events(sets, q)
    return sum(_cut_probability(cs, q) for cs in sets)


def min_cut_upper_bound(cut_sets: Sequence[Iterable[str]], q: Mapping[str, float]) -> float:
    """Esary–Proschan upper bound on top-event probability.

    ``1 - Π_j (1 - P[cut_j])`` — exact when cut sets are disjoint, an
    upper bound for coherent systems with independent components.
    """
    sets = [frozenset(cs) for cs in cut_sets]
    _check_events(sets, q)
    prod = 1.0
    for cs in sets:
        prod *= 1.0 - _cut_probability(cs, q)
    return 1.0 - prod


def sum_of_disjoint_products(
    cut_sets: Sequence[Iterable[str]],
) -> List[Tuple[CutSet, CutSet]]:
    """Abraham-style sum of disjoint products.

    Rewrites the union of cut sets as a disjoint union of product terms.
    Each returned term is a pair ``(positive, negative)``: the event "all
    of *positive* failed AND none of *negative* failed".  The term
    probabilities then simply add up.

    The expansion processes cut sets in (size, lexicographic) order and
    expands each new cut set against the complement literals of its
    predecessors, splitting on one missing-or-negated event at a time.
    """
    sets = minimize_cut_sets(cut_sets)
    terms: List[Tuple[CutSet, CutSet]] = []
    with get_tracer().span("sdp.expand", n_cutsets=len(sets)) as span:
        for idx, cs in enumerate(sets):
            # Start with the raw product, then make it disjoint from all
            # earlier cut sets.
            pending: List[Tuple[CutSet, CutSet]] = [(cs, frozenset())]
            for prev in sets[:idx]:
                next_pending: List[Tuple[CutSet, CutSet]] = []
                for pos, neg in pending:
                    overlap_free = prev - pos
                    if not overlap_free:
                        # prev ⊆ pos: this term is inside an earlier cut
                        # set; drop it entirely.
                        continue
                    if overlap_free & neg:
                        # Already disjoint from prev via an existing
                        # negation.
                        next_pending.append((pos, neg))
                        continue
                    # Split on the events of prev not yet fixed: term
                    # stays if at least one of them is working.
                    fixed_neg = neg
                    fixed_pos = pos
                    for event in sorted(overlap_free):
                        next_pending.append((fixed_pos, fixed_neg | {event}))
                        fixed_pos = fixed_pos | {event}
                    # The branch with all of prev failed is absorbed by
                    # prev.
                pending = next_pending
            terms.extend(pending)
        span.set(n_products=len(terms))
    return terms


def disjoint_products_probability(
    terms: Sequence[Tuple[CutSet, CutSet]], q: Mapping[str, float]
) -> float:
    """Evaluate a sum-of-disjoint-products expansion.

    ``terms`` is the output of :func:`sum_of_disjoint_products`.
    """
    total = 0.0
    for pos, neg in terms:
        prob = 1.0
        for event in pos:
            prob *= float(q[event])
        for event in neg:
            prob *= 1.0 - float(q[event])
        total += prob
    return total
