"""Fault trees (system S3 in DESIGN.md).

A fault tree is a failure-oriented structural model: the *top event*
(system failure) is a boolean function of *basic events* (component
failures) built from AND / OR / k-of-n / NOT gates.  Unlike a
series-parallel RBD, a fault tree routinely *repeats* basic events under
several gates — the case where naive bottom-up multiplication is wrong
and the tutorial introduces sum-of-disjoint-products and BDD methods.

Quantification here is BDD-based (exact, repeated events included).  The
classical alternatives live in :mod:`repro.nonstate.cutsets` and are used
as oracles and for the bounding algorithms.

Examples
--------
>>> from repro.nonstate import BasicEvent, OrGate, AndGate, FaultTree
>>> a, b, c = BasicEvent.fixed("a", 0.1), BasicEvent.fixed("b", 0.2), BasicEvent.fixed("c", 0.3)
>>> tree = FaultTree(OrGate([AndGate([a, b]), c]))
>>> round(tree.top_event_probability(), 6)
0.314
"""

from __future__ import annotations

import abc
import itertools
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence

import numpy as np

from ..core.model import DependabilityModel, mttf_from_reliability
from ..distributions import LifetimeDistribution
from ..exceptions import ModelDefinitionError
from ..obs.trace import get_tracer
from .bdd import BDD
from .components import Component
from .cutsets import minimize_cut_sets


def _traced_to_bdd(gate, manager: BDD, fan_in: int, build):
    """Run one gate's BDD construction under a ``bdd.gate`` span.

    The node count is only computed when a real tracer is active —
    ``count_nodes`` walks the sub-BDD, which would be pure overhead on
    the untraced path.
    """
    tracer = get_tracer()
    if not tracer.enabled:
        return build()
    with tracer.span("bdd.gate", kind=type(gate).__name__, fan_in=fan_in) as span:
        node = build()
        span.set(nodes=manager.count_nodes(node))
    return node

__all__ = [
    "FTNode",
    "BasicEvent",
    "AndGate",
    "OrGate",
    "KofNGate",
    "NotGate",
    "FaultTree",
]


class FTNode(abc.ABC):
    """Abstract fault-tree node."""

    @abc.abstractmethod
    def basic_events(self) -> List["BasicEvent"]:
        """All basic-event leaves below this node (with repetitions)."""

    @abc.abstractmethod
    def to_bdd(self, manager: BDD) -> int:
        """Failure function as a BDD over "event occurred" variables."""

    @abc.abstractmethod
    def is_coherent(self) -> bool:
        """True when no NOT gate occurs in this subtree."""


class BasicEvent(FTNode):
    """A basic event: the failure of one component.

    Wraps a :class:`~repro.nonstate.components.Component`; the event
    "occurs" exactly when the component is failed under the measure being
    evaluated (mission reliability, point availability or steady state).
    """

    def __init__(self, component: Component):
        self.component = component

    @classmethod
    def fixed(cls, name: str, probability: float) -> "BasicEvent":
        """Basic event with a fixed occurrence probability."""
        return cls(Component.fixed(name, probability))

    @classmethod
    def from_rates(
        cls, name: str, failure_rate: float, repair_rate: Optional[float] = None
    ) -> "BasicEvent":
        """Basic event for an exponential component."""
        return cls(Component.from_rates(name, failure_rate, repair_rate))

    @classmethod
    def from_distribution(
        cls,
        name: str,
        failure: LifetimeDistribution,
        repair: Optional[LifetimeDistribution] = None,
    ) -> "BasicEvent":
        """Basic event with explicit lifetime (and optional repair) distributions."""
        return cls(Component(name, failure=failure, repair=repair))

    @property
    def name(self) -> str:
        return self.component.name

    def basic_events(self) -> List["BasicEvent"]:
        return [self]

    def to_bdd(self, manager: BDD) -> int:
        return manager.var(self.name)

    def is_coherent(self) -> bool:
        return True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BasicEvent({self.name!r})"


class _GateBase(FTNode):
    def __init__(self, children: Sequence[FTNode], minimum: int = 1):
        if len(children) < minimum:
            raise ModelDefinitionError(
                f"{type(self).__name__} needs at least {minimum} child(ren), got {len(children)}"
            )
        for child in children:
            if not isinstance(child, FTNode):
                raise ModelDefinitionError(
                    f"gate children must be fault-tree nodes, got {type(child).__name__}"
                )
        self.children = list(children)

    def basic_events(self) -> List[BasicEvent]:
        return [e for child in self.children for e in child.basic_events()]

    def is_coherent(self) -> bool:
        return all(child.is_coherent() for child in self.children)


class AndGate(_GateBase):
    """Output occurs iff *all* inputs occur (redundancy: all must fail)."""

    def to_bdd(self, manager: BDD) -> int:
        return _traced_to_bdd(
            self,
            manager,
            len(self.children),
            lambda: manager.conjoin(child.to_bdd(manager) for child in self.children),
        )


class OrGate(_GateBase):
    """Output occurs iff *any* input occurs (series: one failure suffices)."""

    def to_bdd(self, manager: BDD) -> int:
        return _traced_to_bdd(
            self,
            manager,
            len(self.children),
            lambda: manager.disjoin(child.to_bdd(manager) for child in self.children),
        )


class KofNGate(_GateBase):
    """Output occurs iff at least ``k`` of the inputs occur.

    Note the failure-space convention: a "2-of-3 good" redundant subsystem
    fails when 2 of 3 components fail, i.e. ``KofNGate(k=2, children=3)``.
    """

    def __init__(self, k: int, children: Sequence[FTNode]):
        super().__init__(children)
        if not 1 <= k <= len(children):
            raise ModelDefinitionError(f"need 1 <= k <= n, got k={k}, n={len(children)}")
        self.k = int(k)

    def to_bdd(self, manager: BDD) -> int:
        def build() -> int:
            if all(isinstance(c, BasicEvent) for c in self.children):
                names = [c.name for c in self.children]
                if len(set(names)) == len(names):
                    return manager.at_least_k(names, self.k)
            nodes = [c.to_bdd(manager) for c in self.children]
            return manager.disjoin(
                manager.conjoin(nodes[i] for i in subset)
                for subset in itertools.combinations(range(len(nodes)), self.k)
            )

        return _traced_to_bdd(self, manager, len(self.children), build)


class NotGate(FTNode):
    """Output occurs iff the input does not (makes the tree non-coherent)."""

    def __init__(self, child: FTNode):
        if not isinstance(child, FTNode):
            raise ModelDefinitionError("NOT gate child must be a fault-tree node")
        self.child = child

    def basic_events(self) -> List[BasicEvent]:
        return self.child.basic_events()

    def to_bdd(self, manager: BDD) -> int:
        return _traced_to_bdd(
            self, manager, 1, lambda: manager.apply_not(self.child.to_bdd(manager))
        )

    def is_coherent(self) -> bool:
        return False


class FaultTree(DependabilityModel):
    """A fault tree with BDD-based exact quantification.

    Parameters
    ----------
    top:
        The top-event node (usually a gate).

    Notes
    -----
    The BDD variable order is the depth-first discovery order of basic
    events, a standard structural heuristic that keeps related events
    adjacent and BDD sizes small for tree-like models.
    """

    def __init__(self, top: FTNode):
        if not isinstance(top, FTNode):
            raise ModelDefinitionError("top must be a fault-tree node")
        self.top = top
        events = top.basic_events()
        by_name: Dict[str, BasicEvent] = {}
        for event in events:
            existing = by_name.get(event.name)
            if existing is not None and existing.component is not event.component:
                raise ModelDefinitionError(
                    f"two distinct components share the basic-event name {event.name!r}"
                )
            by_name[event.name] = event
        self._events = by_name
        self._order = list(dict.fromkeys(e.name for e in events))
        self._bdd: Optional[BDD] = None
        self._bdd_top: Optional[int] = None

    # ------------------------------------------------------------- access
    @property
    def basic_events(self) -> Dict[str, BasicEvent]:
        """Mapping of basic-event name to event."""
        return dict(self._events)

    @property
    def is_coherent(self) -> bool:
        """True when the tree has no NOT gates."""
        return self.top.is_coherent()

    def _ensure_bdd(self) -> "tuple[BDD, int]":
        if self._bdd is None:
            tracer = get_tracer()
            if tracer.enabled:
                with tracer.span("bdd.build", n_events=len(self._order)) as span:
                    self._bdd = BDD(self._order)
                    self._bdd_top = self.top.to_bdd(self._bdd)
                    span.set(nodes=self._bdd.count_nodes(self._bdd_top))
                tracer.metrics.counter("bdd.builds").inc()
            else:
                self._bdd = BDD(self._order)
                self._bdd_top = self.top.to_bdd(self._bdd)
        return self._bdd, self._bdd_top

    def bdd_size(self) -> int:
        """Number of BDD nodes in the compiled top-event function."""
        manager, node = self._ensure_bdd()
        return manager.count_nodes(node)

    # --------------------------------------------------------- evaluation
    def top_event_probability(self, q: Optional[Mapping[str, float]] = None) -> float:
        """Exact top-event probability.

        Parameters
        ----------
        q:
            Event occurrence probabilities by name.  When omitted, each
            basic event must wrap a fixed-probability component and those
            probabilities are used.
        """
        manager, node = self._ensure_bdd()
        if q is None:
            q = {}
            for name, event in self._events.items():
                if event.component.probability is None:
                    raise ModelDefinitionError(
                        f"basic event {name!r} has no fixed probability; pass q explicitly"
                    )
                q[name] = event.component.probability
        return manager.prob(node, q)

    def _event_q(self, t, measure: str) -> Dict[str, float]:
        return {
            name: event.component.failure_probability(t, measure)
            for name, event in self._events.items()
        }

    def reliability(self, t):
        """Mission reliability: probability the top event has not occurred by ``t``."""
        scalar = np.isscalar(t)
        ts = np.atleast_1d(np.asarray(t, dtype=float))
        out = np.array([1.0 - self.top_event_probability(self._event_q(ti, "reliability")) for ti in ts])
        return float(out[0]) if scalar else out

    def availability(self, t):
        """Instantaneous availability: top event evaluated on point unavailabilities."""
        scalar = np.isscalar(t)
        ts = np.atleast_1d(np.asarray(t, dtype=float))
        out = np.array(
            [1.0 - self.top_event_probability(self._event_q(ti, "availability")) for ti in ts]
        )
        return float(out[0]) if scalar else out

    def steady_state_availability(self) -> float:
        """Steady-state availability from component MTTF/MTTR pairs."""
        return 1.0 - self.top_event_probability(self._event_q(None, "steady"))

    def mttf(self) -> float:
        """System mean time to failure."""
        return mttf_from_reliability(lambda t: float(np.asarray(self.reliability(t))))

    # ---------------------------------------------------------- structure
    def minimal_cut_sets(self, limit: Optional[int] = None) -> List[FrozenSet[str]]:
        """Minimal cut sets of the top event (coherent trees only)."""
        if not self.is_coherent:
            raise ModelDefinitionError("minimal cut sets require a coherent tree (no NOT gates)")
        manager, node = self._ensure_bdd()
        return manager.minimal_cut_sets(node, limit=limit)

    def minimal_path_sets(self) -> List[FrozenSet[str]]:
        """Minimal path sets (sets of components whose survival keeps the system up)."""
        if not self.is_coherent:
            raise ModelDefinitionError("minimal path sets require a coherent tree")
        manager, node = self._ensure_bdd()
        return manager.minimal_cut_sets(manager.dual(node))

    def mocus_cut_sets(self) -> List[FrozenSet[str]]:
        """Minimal cut sets by the classical MOCUS top-down expansion.

        Kept as an independent oracle for the BDD extraction.  Exponential
        in the worst case; use :meth:`minimal_cut_sets` in production.
        """
        if not self.is_coherent:
            raise ModelDefinitionError("MOCUS requires a coherent tree")

        def expand(node: FTNode) -> List[FrozenSet[str]]:
            if isinstance(node, BasicEvent):
                return [frozenset([node.name])]
            if isinstance(node, OrGate):
                out: List[FrozenSet[str]] = []
                for child in node.children:
                    out.extend(expand(child))
                return minimize_cut_sets(out)
            if isinstance(node, AndGate):
                acc: List[FrozenSet[str]] = [frozenset()]
                for child in node.children:
                    child_sets = expand(child)
                    acc = [a | b for a in acc for b in child_sets]
                return minimize_cut_sets(acc)
            if isinstance(node, KofNGate):
                out = []
                for combo in itertools.combinations(node.children, node.k):
                    acc = [frozenset()]
                    for child in combo:
                        child_sets = expand(child)
                        acc = [a | b for a in acc for b in child_sets]
                    out.extend(acc)
                return minimize_cut_sets(out)
            raise ModelDefinitionError(f"MOCUS cannot expand {type(node).__name__}")

        return expand(self.top)
