"""Non-state-space dependability models (systems S2–S7 in DESIGN.md).

Reliability block diagrams, fault trees and reliability graphs, their
exact quantification engines (BDD, sum of disjoint products), bounding
algorithms for very large models, and component importance measures.
These methods assume statistically independent components; dependencies
require the state-space models in :mod:`repro.markov` and
:mod:`repro.petrinet`.
"""

from .bdd import BDD, TERMINAL_ONE, TERMINAL_ZERO
from .ccf import beta_factor_split, redundant_group_with_ccf
from .bounds import FaultTreeBounds, esary_proschan_bounds, truncated_cutset_bounds
from .components import Component
from .cutsets import (
    disjoint_products_probability,
    inclusion_exclusion,
    min_cut_upper_bound,
    minimize_cut_sets,
    rare_event_approximation,
    sum_of_disjoint_products,
    truncated_inclusion_exclusion,
)
from .faulttree import AndGate, BasicEvent, FaultTree, FTNode, KofNGate, NotGate, OrGate
from .modules import find_modules, modular_top_probability
from .phased import MissionPhase, PhasedMission, PhaseVariables
from .importance import (
    ImportanceRow,
    birnbaum,
    criticality,
    fussell_vesely,
    importance_table,
    risk_achievement_worth,
    risk_reduction_worth,
)
from .rbd import (
    BasicBlock,
    KofN,
    Parallel,
    RBDBlock,
    ReliabilityBlockDiagram,
    Series,
    k_of_n,
    parallel,
    series,
)
from .relgraph import ReliabilityGraph

__all__ = [
    # components & diagrams
    "Component",
    "ReliabilityBlockDiagram",
    "RBDBlock",
    "BasicBlock",
    "Series",
    "Parallel",
    "KofN",
    "series",
    "parallel",
    "k_of_n",
    # fault trees
    "FaultTree",
    "FTNode",
    "BasicEvent",
    "AndGate",
    "OrGate",
    "KofNGate",
    "NotGate",
    # reliability graphs
    "ReliabilityGraph",
    # modularization
    "find_modules",
    "modular_top_probability",
    # phased missions
    "PhasedMission",
    "MissionPhase",
    "PhaseVariables",
    # BDD engine
    "BDD",
    "TERMINAL_ZERO",
    "TERMINAL_ONE",
    # cut-set algebra
    "minimize_cut_sets",
    "inclusion_exclusion",
    "truncated_inclusion_exclusion",
    "rare_event_approximation",
    "min_cut_upper_bound",
    "sum_of_disjoint_products",
    "disjoint_products_probability",
    # bounds
    "FaultTreeBounds",
    "esary_proschan_bounds",
    "truncated_cutset_bounds",
    # common-cause failures
    "beta_factor_split",
    "redundant_group_with_ccf",
    # importance
    "ImportanceRow",
    "birnbaum",
    "criticality",
    "fussell_vesely",
    "risk_achievement_worth",
    "risk_reduction_worth",
    "importance_table",
]
