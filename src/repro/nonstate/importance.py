"""Component importance measures (system S7 in DESIGN.md).

Importance measures rank components by how much they matter to system
failure — the quantitative answer to "where should the next reliability
dollar go?".  All measures are evaluated exactly through the model's
top-event probability function, so they are consistent across fault
trees, RBDs and reliability graphs.

Definitions (``Q`` = top-event probability, ``q_i`` = component failure
probability, ``Q(q_i := x)`` = top-event probability with component i's
failure probability forced to x):

* Birnbaum:        ``I_B(i) = Q(q_i := 1) - Q(q_i := 0)`` (= ∂Q/∂q_i)
* Criticality:     ``I_C(i) = I_B(i) * q_i / Q``
* Fussell–Vesely:  ``I_FV(i) = (Q - Q(q_i := 0)) / Q``
* RAW:             ``Q(q_i := 1) / Q`` (risk achievement worth)
* RRW:             ``Q / Q(q_i := 0)`` (risk reduction worth)
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Mapping, NamedTuple

from ..exceptions import ModelDefinitionError

__all__ = [
    "ImportanceRow",
    "birnbaum",
    "criticality",
    "fussell_vesely",
    "risk_achievement_worth",
    "risk_reduction_worth",
    "importance_table",
]

TopProbability = Callable[[Mapping[str, float]], float]


class ImportanceRow(NamedTuple):
    """All importance measures for one component."""

    name: str
    birnbaum: float
    criticality: float
    fussell_vesely: float
    raw: float
    rrw: float


def _conditioned(top: TopProbability, q: Mapping[str, float], name: str, value: float) -> float:
    if name not in q:
        raise ModelDefinitionError(f"unknown component {name!r}")
    modified = dict(q)
    modified[name] = value
    return top(modified)


def birnbaum(top: TopProbability, q: Mapping[str, float], name: str) -> float:
    """Birnbaum (marginal) importance of component ``name``."""
    return _conditioned(top, q, name, 1.0) - _conditioned(top, q, name, 0.0)


def criticality(top: TopProbability, q: Mapping[str, float], name: str) -> float:
    """Criticality importance: Birnbaum scaled by ``q_i / Q``."""
    q_sys = top(q)
    if q_sys <= 0.0:
        return 0.0
    return birnbaum(top, q, name) * float(q[name]) / q_sys


def fussell_vesely(top: TopProbability, q: Mapping[str, float], name: str) -> float:
    """Fussell–Vesely importance: fraction of risk involving component ``name``."""
    q_sys = top(q)
    if q_sys <= 0.0:
        return 0.0
    return (q_sys - _conditioned(top, q, name, 0.0)) / q_sys


def risk_achievement_worth(top: TopProbability, q: Mapping[str, float], name: str) -> float:
    """RAW: risk multiplier when the component is assumed always failed."""
    q_sys = top(q)
    if q_sys <= 0.0:
        return math.inf
    return _conditioned(top, q, name, 1.0) / q_sys


def risk_reduction_worth(top: TopProbability, q: Mapping[str, float], name: str) -> float:
    """RRW: risk divisor when the component is assumed perfect."""
    q_without = _conditioned(top, q, name, 0.0)
    q_sys = top(q)
    if q_without <= 0.0:
        return math.inf
    return q_sys / q_without


def importance_table(top: TopProbability, q: Mapping[str, float]) -> Dict[str, ImportanceRow]:
    """All importance measures for every component, ranked computation-ready.

    Parameters
    ----------
    top:
        Top-event probability as a function of the failure-probability
        assignment — e.g. ``tree.top_event_probability`` for a
        :class:`~repro.nonstate.faulttree.FaultTree`.
    q:
        Base failure probabilities.

    Returns
    -------
    dict mapping component name to its :class:`ImportanceRow`.

    Examples
    --------
    >>> from repro.nonstate import BasicEvent, OrGate, FaultTree
    >>> tree = FaultTree(OrGate([BasicEvent.fixed("a", 0.1), BasicEvent.fixed("b", 0.01)]))
    >>> table = importance_table(tree.top_event_probability, {"a": 0.1, "b": 0.01})
    >>> table["a"].birnbaum > table["b"].birnbaum
    True
    """
    q_sys = top(q)
    rows: Dict[str, ImportanceRow] = {}
    for name in q:
        with_failed = _conditioned(top, q, name, 1.0)
        with_perfect = _conditioned(top, q, name, 0.0)
        birn = with_failed - with_perfect
        crit = birn * float(q[name]) / q_sys if q_sys > 0 else 0.0
        fv = (q_sys - with_perfect) / q_sys if q_sys > 0 else 0.0
        raw = with_failed / q_sys if q_sys > 0 else math.inf
        rrw = q_sys / with_perfect if with_perfect > 0 else math.inf
        rows[name] = ImportanceRow(name, birn, crit, fv, raw, rrw)
    return rows
