"""Shared argument-validation helpers.

These helpers centralise the checks that every public entry point needs
(positive rates, probabilities in [0, 1], non-negative times) so error
messages are uniform across the library.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from .exceptions import DistributionError, ModelDefinitionError

__all__ = [
    "check_probability",
    "check_positive",
    "check_non_negative",
    "check_rate",
    "check_time",
    "check_times",
    "as_time_array",
]


def check_probability(value: float, name: str = "probability") -> float:
    """Validate that ``value`` is a probability in the closed interval [0, 1]."""
    value = float(value)
    if not (0.0 <= value <= 1.0) or np.isnan(value):
        raise ModelDefinitionError(f"{name} must be in [0, 1], got {value!r}")
    return value


def check_positive(value: float, name: str = "value") -> float:
    """Validate that ``value`` is strictly positive and finite."""
    value = float(value)
    if not (value > 0.0) or not np.isfinite(value):
        raise DistributionError(f"{name} must be positive and finite, got {value!r}")
    return value


def check_non_negative(value: float, name: str = "value") -> float:
    """Validate that ``value`` is non-negative and finite."""
    value = float(value)
    if value < 0.0 or not np.isfinite(value):
        raise DistributionError(f"{name} must be non-negative and finite, got {value!r}")
    return value


def check_rate(value: float, name: str = "rate") -> float:
    """Validate a transition/failure/repair rate (strictly positive)."""
    return check_positive(value, name)


def check_time(value: float, name: str = "t") -> float:
    """Validate a single mission time (non-negative, finite)."""
    return check_non_negative(value, name)


def check_times(values: Iterable[float], name: str = "t") -> np.ndarray:
    """Validate an iterable of mission times, returning a float array."""
    arr = np.asarray(list(values) if not isinstance(values, np.ndarray) else values, dtype=float)
    if arr.ndim != 1:
        raise ModelDefinitionError(f"{name} must be one-dimensional, got shape {arr.shape}")
    if arr.size and (np.any(arr < 0) or not np.all(np.isfinite(arr))):
        raise ModelDefinitionError(f"all entries of {name} must be non-negative and finite")
    return arr


def as_time_array(t) -> "tuple[np.ndarray, bool]":
    """Coerce a scalar-or-sequence time argument to an array.

    Returns the array and a flag that is True when the input was scalar,
    so callers can unwrap the result symmetrically.
    """
    if np.isscalar(t):
        return np.array([check_time(float(t))]), True
    return check_times(t), False


def check_unique_names(names: Sequence[str], what: str = "component") -> None:
    """Raise if ``names`` contains duplicates."""
    seen = set()
    for name in names:
        if name in seen:
            raise ModelDefinitionError(f"duplicate {what} name: {name!r}")
        seen.add(name)
